package diversification

// This file is the acceptance proof for the Request → Plan → Execute
// redesign: it carries verbatim copies of the five pre-pipeline method
// bodies (operating on the same unexported helpers they always used) and
// asserts that the pipeline returns byte-identical selections, decisions,
// counts, ranks and solver statistics across the full objective ×
// algorithm × plane-regime matrix, through cold starts, warm caches and
// journal-delta refreshes.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/big"
	"testing"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/objective"
	"repro/internal/online"
	"repro/internal/solver"
)

// legacyInstance is the pre-pipeline Prepared.instance, verbatim.
func legacyInstance(ctx context.Context, p *Prepared, s settings, materialize bool) (*core.Instance, error) {
	sigma, err := p.sigmaFor(s)
	if err != nil {
		return nil, err
	}
	in := &core.Instance{
		Query: p.q,
		DB:    p.eng.db,
		Obj:   p.objectiveFor(s),
		K:     s.k,
		B:     s.bound,
		R:     s.rank,
		Sigma: sigma,
	}
	in.PlaneMaxBytes = s.planeMaxBytes
	in.Parallelism = s.workers()
	if !s.scorePlane {
		in.PlaneOff = true
	}
	if materialize {
		snap, err := p.snapshotFor(ctx)
		if err != nil {
			return nil, err
		}
		in.SetAnswers(snap.answers)
		in.SetAnswerIndex(snap.index)
		if s.scorePlane && s.dirty&(dirtyRelevance|dirtyDistance|dirtyPlaneLimit) == 0 {
			pl, err := p.planeFor(ctx, snap, &s)
			if err != nil {
				return nil, err
			}
			if pl != nil {
				in.SetPlane(pl)
			}
		}
	}
	return in, nil
}

// legacyDiversify is the pre-pipeline Prepared.Diversify, verbatim, plus
// the stats capture the pipeline surfaces in its Response.
func legacyDiversify(ctx context.Context, p *Prepared, opts ...Option) (*Selection, Stats, error) {
	s, err := p.call(opts)
	if err != nil {
		return nil, Stats{}, err
	}
	in, err := legacyInstance(ctx, p, s, s.algorithm != Online)
	if err != nil {
		return nil, Stats{}, err
	}
	switch s.algorithm {
	case Auto, Exact:
		res, err := solver.QRDBestContext(ctx, in)
		if err != nil {
			return nil, Stats{}, err
		}
		if !res.Exists {
			return nil, Stats{}, ErrNoCandidate
		}
		return newSelection(p.schema, res.Witness, res.Value, "exact"), searchStats(res.Stats), nil
	case Greedy:
		if in.Sigma.Len() > 0 {
			return nil, Stats{}, errors.New("diversification: greedy does not support constraints")
		}
		res, err := approx.GreedyContext(ctx, in)
		if err != nil {
			return nil, Stats{}, err
		}
		if len(res.Set) == 0 {
			return nil, Stats{}, ErrNoCandidate
		}
		return newSelection(p.schema, res.Set, res.Value, "greedy"), Stats{Steps: res.Steps, Answers: len(in.Answers())}, nil
	case LocalSearch:
		if in.Sigma.Len() > 0 {
			return nil, Stats{}, errors.New("diversification: local-search does not support constraints")
		}
		seed, err := approx.GreedyContext(ctx, in)
		if err != nil {
			return nil, Stats{}, err
		}
		if len(seed.Set) == 0 {
			return nil, Stats{}, ErrNoCandidate
		}
		res, err := approx.LocalSearchSwapContext(ctx, in, seed.Set)
		if err != nil {
			return nil, Stats{}, err
		}
		return newSelection(p.schema, res.Set, res.Value, "local-search"), Stats{Steps: seed.Steps + res.Steps, Answers: len(in.Answers())}, nil
	case Online:
		gen := p.eng.db.Generation()
		pool := p.pooled()
		collect := pool == nil
		res, err := online.Diversify(ctx, in, online.Options{CollectAnswers: collect, Pool: pool, HavePool: pool != nil})
		if err != nil {
			return nil, Stats{}, err
		}
		if collect && res.Exhausted {
			p.storePool(res.Answers, gen)
		}
		if !res.Exists {
			return nil, Stats{}, ErrNoCandidate
		}
		return newSelection(p.schema, res.Witness, res.Value, "online"), Stats{Seen: res.Seen, Exhausted: res.Exhausted}, nil
	default:
		return nil, Stats{}, fmt.Errorf("diversification: unknown algorithm %s", s.algorithm)
	}
}

// legacyDecide is the pre-pipeline Prepared.Decide, verbatim.
func legacyDecide(ctx context.Context, p *Prepared, opts ...Option) (bool, Stats, error) {
	s, err := p.call(opts)
	if err != nil {
		return false, Stats{}, err
	}
	if s.objective == Mono && len(s.constraints) == 0 {
		in, err := legacyInstance(ctx, p, s, true)
		if err != nil {
			return false, Stats{}, err
		}
		res, err := solver.QRDMonoPTime(in)
		if err == nil {
			return res.Exists, searchStats(res.Stats), nil
		}
	}
	if p.current() == nil && !p.refreshableDelta() {
		gen := p.eng.db.Generation()
		in, err := legacyInstance(ctx, p, s, false)
		if err != nil {
			return false, Stats{}, err
		}
		res, err := online.QRD(ctx, in, online.Options{})
		if err == nil {
			if res.Exhausted {
				p.storePool(res.Answers, gen)
			}
			return res.Exists, Stats{Seen: res.Seen, Exhausted: res.Exhausted}, nil
		}
		if !errors.Is(err, online.ErrMono) && !errors.Is(err, online.ErrConstrained) {
			return false, Stats{}, err
		}
	}
	in, err := legacyInstance(ctx, p, s, true)
	if err != nil {
		return false, Stats{}, err
	}
	res, err := solver.QRDExactContext(ctx, in)
	if err != nil {
		return false, Stats{}, err
	}
	return res.Exists, searchStats(res.Stats), nil
}

// legacyCount is the pre-pipeline Prepared.Count, verbatim.
func legacyCount(ctx context.Context, p *Prepared, opts ...Option) (*big.Int, Stats, error) {
	s, err := p.call(opts)
	if err != nil {
		return nil, Stats{}, err
	}
	in, err := legacyInstance(ctx, p, s, true)
	if err != nil {
		return nil, Stats{}, err
	}
	res, err := solver.RDCExactContext(ctx, in)
	if err != nil {
		return nil, Stats{}, err
	}
	return res.Count, searchStats(res.Stats), nil
}

// legacyInTopR is the pre-pipeline Prepared.InTopR, verbatim.
func legacyInTopR(ctx context.Context, p *Prepared, set [][]interface{}, opts ...Option) (bool, Stats, error) {
	s, err := p.call(opts)
	if err != nil {
		return false, Stats{}, err
	}
	if s.rank < 1 {
		return false, Stats{}, errors.New("diversification: Rank must be at least 1 (set it with WithRank)")
	}
	u, err := p.checkSet(set, s.k)
	if err != nil {
		return false, Stats{}, err
	}
	in, err := legacyInstance(ctx, p, s, true)
	if err != nil {
		return false, Stats{}, err
	}
	in.U = u
	if in.Obj.Kind == objective.Mono && in.Sigma.Len() == 0 {
		if res, err := solver.DRPMonoPTime(in); err == nil {
			return res.InTopR, searchStats(res.Stats), nil
		}
	}
	res, err := solver.DRPExactContext(ctx, in)
	if err != nil {
		return false, Stats{}, err
	}
	return res.InTopR, searchStats(res.Stats), nil
}

// legacyRank is the pre-pipeline Prepared.Rank, verbatim.
func legacyRank(ctx context.Context, p *Prepared, set [][]interface{}, opts ...Option) (int, Stats, error) {
	s, err := p.call(opts)
	if err != nil {
		return 0, Stats{}, err
	}
	s.rank = int(^uint(0) >> 1)
	u, err := p.checkSet(set, s.k)
	if err != nil {
		return 0, Stats{}, err
	}
	in, err := legacyInstance(ctx, p, s, true)
	if err != nil {
		return 0, Stats{}, err
	}
	in.U = u
	res, err := solver.DRPExactContext(ctx, in)
	if err != nil {
		return 0, Stats{}, err
	}
	return res.Better + 1, Stats{}, nil
}

// rowsAsSet converts a selection's rows back into the [][]interface{}
// candidate-set form InTopR/Rank accept.
func rowsAsSet(sel *Selection) [][]interface{} {
	out := make([][]interface{}, len(sel.Rows))
	for i, r := range sel.Rows {
		out[i] = r.Values()
	}
	return out
}

func sameStats(t *testing.T, label string, legacy, pipeline Stats) {
	t.Helper()
	if legacy != pipeline {
		t.Errorf("%s: stats diverged\n  legacy   %+v\n  pipeline %+v", label, legacy, pipeline)
	}
}

// TestPipelineMatchesLegacyMatrix drives a legacy-copy handle and a
// pipeline handle through the same call sequence — cold decide, diversify,
// warm decide, count, in-top-r, rank, then a mutation batch and a second
// pass over the delta-refreshed cache — and requires byte-identical
// results in every cell of FMS/FMM/Fmono × exact/greedy/online ×
// materialized/memoized plane.
func TestPipelineMatchesLegacyMatrix(t *testing.T) {
	ctx := context.Background()
	regimes := map[string][]Option{
		"materialized": nil,
		"memoized":     {WithPlaneMemoryLimit(64)}, // far below n(n-1)/2 cells
	}
	for _, obj := range []Objective{MaxSum, MaxMin, Mono} {
		for _, alg := range []Algorithm{Exact, Greedy, Online} {
			if obj == Mono && alg == Online {
				continue // the online procedures reject Fmono by design
			}
			for regime, extra := range regimes {
				name := obj.String() + "/" + alg.String() + "/" + regime
				t.Run(name, func(t *testing.T) {
					e := refreshEngine(t, 24)
					opts := refreshOpts(3, obj, alg, extra...)
					legacy := e.MustPrepare(refreshQuery, opts...)
					pipe := e.MustPrepare(refreshQuery, opts...)

					compareOnce := func(phase string) {
						// Cold/warm decide at a fixed bound: the route
						// depends on the cache state, which both handles
						// share by construction.
						lb, ls, lerr := legacyDecide(ctx, legacy, WithBound(1))
						presp, perr := pipe.Do(ctx, Request{Problem: ProblemDecide, Options: []Option{WithBound(1)}})
						if (lerr == nil) != (perr == nil) {
							t.Fatalf("%s decide errors diverged: legacy %v, pipeline %v", phase, lerr, perr)
						}
						if lerr == nil {
							if lb != presp.Decided() {
								t.Errorf("%s decide: legacy %v, pipeline %v", phase, lb, presp.Decided())
							}
							sameStats(t, phase+" decide", ls, presp.Stats)
						}

						lsel, lst, lerr := legacyDiversify(ctx, legacy)
						dresp, perr := pipe.Do(ctx, Request{Problem: ProblemDiversify})
						if (lerr == nil) != (perr == nil) {
							t.Fatalf("%s diversify errors diverged: legacy %v, pipeline %v", phase, lerr, perr)
						}
						if lerr != nil {
							return
						}
						sameSelection(t, phase+" diversify", lsel, dresp.Selection)
						sameStats(t, phase+" diversify", lst, dresp.Stats)

						bound := lsel.Value
						lb2, ls2, lerr := legacyDecide(ctx, legacy, WithBound(bound))
						p2, perr := pipe.Do(ctx, Request{Problem: ProblemDecide, Bound: &bound})
						if lerr != nil || perr != nil {
							t.Fatalf("%s warm decide: legacy %v, pipeline %v", phase, lerr, perr)
						}
						if lb2 != p2.Decided() {
							t.Errorf("%s warm decide: legacy %v, pipeline %v", phase, lb2, p2.Decided())
						}
						sameStats(t, phase+" warm decide", ls2, p2.Stats)

						lc, lcs, lerr := legacyCount(ctx, legacy, WithBound(bound))
						cresp, perr := pipe.Do(ctx, Request{Problem: ProblemCount, Bound: &bound})
						if lerr != nil || perr != nil {
							t.Fatalf("%s count: legacy %v, pipeline %v", phase, lerr, perr)
						}
						if lc.Cmp(cresp.Count) != 0 {
							t.Errorf("%s count: legacy %v, pipeline %v", phase, lc, cresp.Count)
						}
						sameStats(t, phase+" count", lcs, cresp.Stats)

						set := rowsAsSet(lsel)
						ltop, lts, lerr := legacyInTopR(ctx, legacy, set, WithRank(1))
						rank1 := 1
						tresp, perr := pipe.Do(ctx, Request{Problem: ProblemInTopR, Set: set, Rank: &rank1})
						if lerr != nil || perr != nil {
							t.Fatalf("%s in-top-r: legacy %v, pipeline %v", phase, lerr, perr)
						}
						if ltop != tresp.TopR() {
							t.Errorf("%s in-top-r: legacy %v, pipeline %v", phase, ltop, tresp.TopR())
						}
						sameStats(t, phase+" in-top-r", lts, tresp.Stats)

						lrank, _, lerr := legacyRank(ctx, legacy, set)
						rresp, perr := pipe.Do(ctx, Request{Problem: ProblemRank, Set: set})
						if lerr != nil || perr != nil {
							t.Fatalf("%s rank: legacy %v, pipeline %v", phase, lerr, perr)
						}
						if lrank != rresp.Rank {
							t.Errorf("%s rank: legacy %d, pipeline %d", phase, lrank, rresp.Rank)
						}
					}

					compareOnce("cold")
					mutate(t, e)
					compareOnce("after-delta")
				})
			}
		}
	}
}

// TestPipelineMatchesLegacyConstrained covers the Σ cells: exact
// diversify/decide/count/in-top-r under a compatibility constraint must be
// byte-identical between the legacy copies and the pipeline.
func TestPipelineMatchesLegacyConstrained(t *testing.T) {
	ctx := context.Background()
	e := refreshEngine(t, 18)
	opts := refreshOpts(3, MaxSum, Exact, WithConstraints(`exists s (s.cat = "a")`))
	legacy := e.MustPrepare(refreshQuery, opts...)
	pipe := e.MustPrepare(refreshQuery, opts...)

	lsel, lst, lerr := legacyDiversify(ctx, legacy)
	dresp, perr := pipe.Do(ctx, Request{Problem: ProblemDiversify})
	if lerr != nil || perr != nil {
		t.Fatalf("diversify: legacy %v, pipeline %v", lerr, perr)
	}
	sameSelection(t, "constrained diversify", lsel, dresp.Selection)
	sameStats(t, "constrained diversify", lst, dresp.Stats)

	bound := lsel.Value
	lb, lbs, lerr := legacyDecide(ctx, legacy, WithBound(bound))
	presp, perr := pipe.Do(ctx, Request{Problem: ProblemDecide, Bound: &bound})
	if lerr != nil || perr != nil {
		t.Fatalf("decide: legacy %v, pipeline %v", lerr, perr)
	}
	if lb != presp.Decided() {
		t.Errorf("decide: legacy %v, pipeline %v", lb, presp.Decided())
	}
	sameStats(t, "constrained decide", lbs, presp.Stats)

	lc, lcs, lerr := legacyCount(ctx, legacy, WithBound(bound))
	cresp, perr := pipe.Do(ctx, Request{Problem: ProblemCount, Bound: &bound})
	if lerr != nil || perr != nil {
		t.Fatalf("count: legacy %v, pipeline %v", lerr, perr)
	}
	if lc.Cmp(cresp.Count) != 0 {
		t.Errorf("count: legacy %v, pipeline %v", lc, cresp.Count)
	}
	sameStats(t, "constrained count", lcs, cresp.Stats)

	set := rowsAsSet(lsel)
	rank1 := 1
	ltop, lts, lerr := legacyInTopR(ctx, legacy, set, WithRank(1))
	tresp, perr := pipe.Do(ctx, Request{Problem: ProblemInTopR, Set: set, Rank: &rank1})
	if lerr != nil || perr != nil {
		t.Fatalf("in-top-r: legacy %v, pipeline %v", lerr, perr)
	}
	if ltop != tresp.TopR() {
		t.Errorf("in-top-r: legacy %v, pipeline %v", ltop, tresp.InTopR)
	}
	sameStats(t, "constrained in-top-r", lts, tresp.Stats)
}

// TestPipelinePerCallPlaneBypass pins the dirty-mask behavior through the
// pipeline: a per-request scoring override must bypass the shared plane
// and agree byte-for-byte with the legacy path doing the same.
func TestPipelinePerCallPlaneBypass(t *testing.T) {
	ctx := context.Background()
	e := refreshEngine(t, 20)
	opts := refreshOpts(3, MaxSum, Exact)
	legacy := e.MustPrepare(refreshQuery, opts...)
	pipe := e.MustPrepare(refreshQuery, opts...)

	override := WithDistance(func(a, b Row) float64 {
		return math.Abs(float64(a.Get("price").(int64) - b.Get("price").(int64)))
	})
	lsel, lst, lerr := legacyDiversify(ctx, legacy, override)
	dresp, perr := pipe.Do(ctx, Request{Problem: ProblemDiversify, Options: []Option{override}})
	if lerr != nil || perr != nil {
		t.Fatalf("legacy %v, pipeline %v", lerr, perr)
	}
	sameSelection(t, "override diversify", lsel, dresp.Selection)
	sameStats(t, "override diversify", lst, dresp.Stats)
}
