package diversification

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Coreset is a shard-local diversification summary: the k′ = k + slack
// rows the greedy heuristic selects, with their relevance scores, packaged
// for a cluster coordinator to union with other shards' coresets and
// re-solve. The greedy 2-approximation survives that composition (solve
// shard-locally, solve again over the union), which is what makes the
// coreset — rather than the full answer set — a sufficient shard response.
//
// Rows carry attribute values in schema order (the same form Request.Set
// and Engine.Insert accept); Scores[i] is δrel of Rows[i] under the
// statement's relevance binding, so a coordinator can reproduce the
// relevance half of the objective without the shard's scoring code.
// Pairwise distances are NOT shippable (they are quadratic); cluster mode
// therefore requires an attribute-based δdis the coordinator can
// re-evaluate from the row values.
type Coreset struct {
	// Schema names the statement's answer attributes, in row order.
	Schema []string `json:"schema"`
	// Rows are the selected k′ answers, values in schema order.
	Rows [][]interface{} `json:"rows"`
	// Scores[i] is δrel(Rows[i]) under the statement's relevance binding.
	Scores []float64 `json:"scores"`

	// K is the effective selection size the final solve targets; KPrime is
	// the per-shard coreset size actually extracted (min(k + slack, |Q(D)|)).
	K      int `json:"k"`
	KPrime int `json:"k_prime"`
	// Lambda and Objective echo the effective settings the coreset was
	// extracted under, so the coordinator's final solve cannot drift from
	// the shards'.
	Lambda    float64 `json:"lambda"`
	Objective string  `json:"objective"`

	// Answers is |Q(D)| on this shard; Generation the database generation
	// the coreset is paired with.
	Answers    int    `json:"answers"`
	Generation uint64 `json:"generation"`

	// Degraded/DegradedFrom/Cached mirror the underlying solve's markers;
	// a coordinator ORs them into its merged response so cluster answers
	// stay truthful about approximation and cache provenance.
	Degraded     bool   `json:"degraded,omitempty"`
	DegradedFrom string `json:"degraded_from,omitempty"`
	Cached       bool   `json:"cached,omitempty"`

	// Elapsed is the shard-side wall clock of the extraction.
	Elapsed time.Duration `json:"elapsed_ns,omitempty"`
}

// CoresetSpec parameterizes a coreset extraction. The pointer fields are
// per-request overrides of the statement's prepared bindings, exactly like
// Request; Slack sets k′ = k + slack, nil defaulting to slack = k (the
// paper-safe default: doubling the shard budget keeps the union rich
// enough that the merged greedy solve empirically tracks the single-engine
// one).
type CoresetSpec struct {
	K         *int
	Lambda    *float64
	Objective *Objective
	Slack     *int
}

// coresetAttempts bounds the count-then-solve retry when mutations land
// between the answer-count read and the solve (the clamped k′ can go stale
// either way; one re-read almost always settles it).
const coresetAttempts = 2

// Coreset extracts a shard-local coreset from a registered statement: the
// greedy heuristic's k′-selection over this engine's answer set, with
// relevance scores and the effective settings echoed for the coordinator.
// The solve itself goes through Service.Do, so it is admission-gated,
// result-cached and coalesced exactly like a query; only the k′ clamp and
// the score extraction are coreset-specific.
//
// Mono objectives are refused — Fmono's value depends on all of Q(D), so
// shard-local solves do not compose — and so are constrained statements
// (the greedy heuristic cannot honor σ).
func (s *Service) Coreset(ctx context.Context, name string, spec CoresetSpec) (*Coreset, error) {
	p, ok := s.Prepared(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownStatement, name)
	}
	var opts []Option
	if spec.K != nil {
		opts = append(opts, WithK(*spec.K))
	}
	if spec.Lambda != nil {
		opts = append(opts, WithLambda(*spec.Lambda))
	}
	if spec.Objective != nil {
		opts = append(opts, WithObjective(*spec.Objective))
	}
	ms, err := p.call(opts)
	if err != nil {
		return nil, err
	}
	if ms.objective == Mono {
		return nil, argErrorf("objective", "mono objective is not coreset-mergeable (its value depends on all of Q(D), which no shard holds)")
	}
	if len(ms.constraints) > 0 {
		return nil, argErrorf("constraints", "coreset extraction runs the greedy heuristic, which does not support constraints")
	}
	slack := ms.k
	if spec.Slack != nil {
		if *spec.Slack < 0 {
			return nil, argErrorf("slack", "must be >= 0, got %d", *spec.Slack)
		}
		slack = *spec.Slack
	}

	ctx, cancel := s.withDeadline(ctx)
	defer cancel()
	start := time.Now()
	var lastErr error
	for attempt := 0; attempt < coresetAttempts; attempt++ {
		n, gen, err := s.answerCount(ctx, p)
		if err != nil {
			return nil, err
		}
		kp := ms.k + slack
		if kp > n {
			kp = n
		}
		cs := &Coreset{
			Schema:     append([]string(nil), p.schema.Attrs...),
			K:          ms.k,
			KPrime:     kp,
			Lambda:     ms.lambda,
			Objective:  ms.objective.String(),
			Answers:    n,
			Generation: gen,
		}
		if kp == 0 {
			// An empty shard contributes an empty coreset, not an error: the
			// coordinator's union may still satisfy k from other shards.
			cs.Elapsed = time.Since(start)
			return cs, nil
		}
		greedy := Greedy
		resp, err := s.Do(ctx, name, Request{
			Problem:   ProblemDiversify,
			K:         &kp,
			Lambda:    spec.Lambda,
			Objective: spec.Objective,
			Algorithm: &greedy,
		})
		if err != nil {
			if errors.Is(err, ErrNoCandidate) {
				// The answer set shrank between the count and the solve:
				// re-read and retry with a fresh clamp.
				lastErr = err
				continue
			}
			return nil, err
		}
		rel := ms.relevance
		if rel == nil {
			rel = func(Row) float64 { return 1 }
		}
		cs.Rows = make([][]interface{}, len(resp.Selection.Rows))
		cs.Scores = make([]float64, len(resp.Selection.Rows))
		for i, row := range resp.Selection.Rows {
			cs.Rows[i] = row.Values()
			cs.Scores[i] = rel(row)
		}
		if resp.Stats.Answers > 0 {
			cs.Answers = resp.Stats.Answers
		}
		cs.Generation = resp.Generation
		cs.Degraded = resp.Degraded
		cs.DegradedFrom = resp.DegradedFrom
		cs.Cached = resp.Cached
		cs.Elapsed = time.Since(start)
		return cs, nil
	}
	return nil, lastErr
}

// answerCount reports |Q(D)| (and its generation) for a statement,
// admission-gated: a cold statement pays its rebuild here, which is the
// same work a query would perform and must respect the concurrency bound.
func (s *Service) answerCount(ctx context.Context, p *Prepared) (int, uint64, error) {
	release, err := s.admit(ctx)
	if err != nil {
		return 0, 0, err
	}
	defer release()
	p.eng.mu.RLock()
	defer p.eng.mu.RUnlock()
	snap, err := p.snapshotFor(ctx)
	if err != nil {
		return 0, 0, err
	}
	return len(snap.answers), snap.gen, nil
}

// ClusterMetrics is the coordinator's counter block inside Metrics: the
// shard fan-out traffic, its failures, and per-shard observations. It is
// populated only by a cluster coordinator (see internal/cluster); a plain
// Service leaves Metrics.Cluster nil.
type ClusterMetrics struct {
	Shards         int   `json:"shards"`
	FanOuts        int64 `json:"fan_outs"`        // coordinated diversify requests fanned to shards
	FanOutErrors   int64 `json:"fan_out_errors"`  // individual shard calls that failed
	PartialResults int64 `json:"partial_results"` // merged responses served with >= 1 shard missing

	// ShardStats is one entry per configured shard, in shard-index order.
	ShardStats []ClusterShardMetrics `json:"shard_stats,omitempty"`
}

// ClusterShardMetrics is one shard's view from the coordinator: traffic,
// failures, the latest/worst observed fan-out latency and the size of the
// last coreset it returned.
type ClusterShardMetrics struct {
	Addr            string `json:"addr"`
	Requests        int64  `json:"requests"`
	Errors          int64  `json:"errors"`
	LastLatencyNS   int64  `json:"last_latency_ns,omitempty"`
	MaxLatencyNS    int64  `json:"max_latency_ns,omitempty"`
	LastCoresetSize int64  `json:"last_coreset_size,omitempty"`
}
