package diversification

import (
	"errors"
	"time"

	"repro/internal/wal"
)

// ErrReadOnly is returned by mutations while the engine is in read-only
// degraded mode: the write-ahead log failed, solves keep serving from the
// in-memory database, and a background probe is retrying the log. The
// mutation was NOT applied — retrying after the probe restores write mode
// is safe. Serving layers map it to 503 with a Retry-After.
var ErrReadOnly = errors.New("diversification: engine is read-only (write-ahead log failed; recovery probe running)")

// Default probe backoff bounds (DurabilityConfig.ProbeBackoff/-Max).
const (
	defaultProbeBackoff    = 100 * time.Millisecond
	defaultProbeBackoffMax = 5 * time.Second
)

// ReadOnly reports whether the engine is in read-only degraded mode.
func (e *Engine) ReadOnly() bool { return e.degraded.Load() }

// WALError returns the write failure that tripped read-only mode, nil when
// the engine is healthy.
func (e *Engine) WALError() error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.walErr
}

// enterReadOnlyLocked trips degraded mode after a WAL failure: the broken
// log is detached from the mutation stream (its on-disk prefix stays valid
// evidence), mutations start returning ErrReadOnly, and the recovery probe
// starts unless one is already running. Caller holds the engine write
// lock.
func (e *Engine) enterReadOnlyLocked(err error) {
	e.db.SetTap(nil)
	e.walErr = err
	e.walFailures.Add(1)
	e.degraded.Store(true)
	if !e.probeRunning {
		e.probeRunning = true
		e.probeStop = make(chan struct{})
		e.probeDone = make(chan struct{})
		go e.probeLoop(e.probeStop, e.probeDone)
	}
}

// probeLoop retries the write-ahead log with capped exponential backoff
// until it restores write mode or the engine closes.
func (e *Engine) probeLoop(stop, done chan struct{}) {
	defer close(done)
	backoff := e.walProbe
	if backoff <= 0 {
		backoff = defaultProbeBackoff
	}
	max := e.walProbeMax
	if max <= 0 {
		max = defaultProbeBackoffMax
	}
	timer := time.NewTimer(backoff)
	defer timer.Stop()
	for {
		select {
		case <-stop:
			return
		case <-timer.C:
		}
		e.probeAttempts.Add(1)
		if e.tryRestoreWAL() {
			return
		}
		backoff *= 2
		if backoff > max {
			backoff = max
		}
		timer.Reset(backoff)
	}
}

// tryRestoreWAL attempts one recovery: open a fresh log segment, write a
// full snapshot through it, and only then swap it in and clear degraded
// mode. The snapshot is what makes recovery sound — mutations that reached
// memory but not the broken log would otherwise be a generation gap in
// replay; a snapshot at the current generation subsumes everything the
// lost records held. Returns true when the probe should stop (restored, or
// nothing to do).
func (e *Engine) tryRestoreWAL() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.degraded.Load() {
		return true
	}
	log, err := wal.Create(e.walDir, e.walOpts)
	if err != nil {
		return false
	}
	if _, err := log.Snapshot(e.db); err != nil {
		log.Close()
		return false
	}
	old := e.wal
	e.wal = log
	e.db.SetTap(log)
	e.walErr = nil
	e.degraded.Store(false)
	e.walRecoveries.Add(1)
	e.probeRunning = false
	if old != nil {
		old.Close() // best-effort: it is the broken log
	}
	return true
}

// stopProbe halts the recovery probe (if any) and waits for it to exit.
// Must be called without the engine lock held.
func (e *Engine) stopProbe() {
	e.mu.Lock()
	stop, done := e.probeStop, e.probeDone
	e.probeStop, e.probeDone = nil, nil
	e.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}
