package diversification

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/bench"
)

// costModel is the engine's per-route latency memory, feeding the plan
// stage's deadline-aware route degradation. Every diversify solve records
// (answer-set size, wall-clock seconds) under its route; predictions
// extrapolate through the growth-fitting machinery in internal/bench
// (log-log least squares, polynomial vs exponential by R²). Until a route
// has enough observations to fit, a seeded hint (SeedCostHint, the
// divserve -cost-hint flag) stands in as a flat per-call estimate.
//
// The zero value is ready to use; all methods are safe for concurrent use.
type costModel struct {
	mu    sync.Mutex
	obs   map[string][]bench.Measurement // route → bounded observation window
	hints map[string]float64             // route → flat seconds estimate
}

// costObsCap bounds the per-route observation window: old observations age
// out so the model tracks the current data distribution, not boot-time
// warmup.
const costObsCap = 64

// costRouteKey names the cost bucket an exact diversify solve lands in:
// the sequential and parallel searches scale differently, so they are
// fitted separately.
func costRouteKey(workers int) string {
	if workers > 1 {
		return "parallel-exact"
	}
	return "exact"
}

// observe records one completed solve.
func (c *costModel) observe(route string, n int, secs float64) {
	if n <= 0 || secs <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.obs == nil {
		c.obs = make(map[string][]bench.Measurement)
	}
	window := append(c.obs[route], bench.Measurement{N: n, Secs: secs})
	if len(window) > costObsCap {
		window = window[len(window)-costObsCap:]
	}
	c.obs[route] = window
}

// hint installs a flat per-call estimate used until real observations
// accumulate. d <= 0 removes the hint.
func (c *costModel) hint(route string, d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.hints == nil {
		c.hints = make(map[string]float64)
	}
	if d <= 0 {
		delete(c.hints, route)
		return
	}
	c.hints[route] = d.Seconds()
}

// predict estimates the route's cost at answer-set size n, preferring a
// fitted extrapolation, then a coarse scale from the largest observation,
// then the seeded hint. ok is false when the model knows nothing about the
// route — the caller must then fall back to the mid-solve abort guard
// rather than degrade eagerly.
func (c *costModel) predict(route string, n int) (secs float64, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if window := c.obs[route]; len(window) > 0 {
		if pred, ok := bench.PredictAt(window, n); ok {
			return pred, true
		}
		// Too few points to fit: scale the largest observation linearly in
		// both directions — deliberately optimistic for the superlinear
		// exact search, so a thin model never degrades a request a fuller
		// one would have served exactly. Scaling down matters as much as
		// up: returning big.Secs unscaled for n < big.N would pessimize
		// every request smaller than the largest one seen.
		big := window[0]
		for _, m := range window[1:] {
			if m.N > big.N {
				big = m
			}
		}
		return big.Secs * float64(n) / float64(big.N), true
	}
	if h, found := c.hints[route]; found {
		return h, true
	}
	return 0, false
}

// predictExactChain estimates the sequential exact route and, when a
// parallel downgrade is on the table, the parallel-exact route (dividing
// the sequential estimate by GOMAXPROCS when the parallel route has no
// data of its own).
func (c *costModel) predictExactChain(n int) (exact float64, parallel float64, ok bool) {
	exact, ok = c.predict("exact", n)
	if !ok {
		return 0, 0, false
	}
	if p, pok := c.predict("parallel-exact", n); pok {
		return exact, p, true
	}
	return exact, exact / float64(runtime.GOMAXPROCS(0)), true
}

// SeedCostHint seeds the deadline-degradation cost model with a flat
// per-call estimate for a solver route ("exact", "parallel-exact",
// "greedy"), standing in until real observations accumulate. Serving
// deployments seed pessimistic exact-route hints (divserve -cost-hint)
// so the very first deadline-pressured request already degrades instead
// of burning its budget discovering the route is too slow.
func (e *Engine) SeedCostHint(route string, perCall time.Duration) {
	e.cost.hint(route, perCall)
}
