package diversification

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"
)

// serviceEngine builds an items engine with a stable core of rows the
// hammer never deletes, so k answers always exist.
func serviceEngine(t testing.TB, n int) *Engine {
	t.Helper()
	e := NewEngine()
	e.MustCreateTable("items", "id", "cat", "price")
	cats := []string{"a", "b", "c", "d", "e"}
	for i := 0; i < n; i++ {
		e.MustInsert("items", i, cats[i%len(cats)], 10+(i*37)%70)
	}
	return e
}

const serviceQuery = "Q(id, cat, price) :- items(id, cat, price), price <= 80"

func serviceOpts(k int) []Option {
	return []Option{
		WithK(k), WithObjective(MaxSum), WithLambda(0.6),
		WithRelevance(func(r Row) float64 { return 100 - float64(r.Get("price").(int64)) }),
		WithDistance(func(a, b Row) float64 {
			if a.Get("cat") == b.Get("cat") {
				return 0
			}
			return 1
		}),
	}
}

func TestServiceRegistry(t *testing.T) {
	e := serviceEngine(t, 10)
	svc := NewService(e, ServiceConfig{})
	ctx := context.Background()

	if err := svc.Register("", serviceQuery); err == nil {
		t.Error("empty statement name should be rejected")
	}
	if err := svc.Register("hot", "not a query"); err == nil {
		t.Error("invalid query should fail registration")
	}
	if err := svc.Register("hot", serviceQuery, serviceOpts(3)...); err != nil {
		t.Fatal(err)
	}
	if got := svc.Statements(); len(got) != 1 || got[0] != "hot" {
		t.Errorf("Statements() = %v, want [hot]", got)
	}
	if _, ok := svc.Prepared("hot"); !ok {
		t.Error("Prepared(hot) should resolve")
	}

	resp, err := svc.Do(ctx, "hot", Request{Problem: ProblemDiversify})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Selection.Rows) != 3 {
		t.Errorf("selected %d rows, want 3", len(resp.Selection.Rows))
	}
	if _, err := svc.Do(ctx, "missing", Request{}); !errors.Is(err, ErrUnknownStatement) {
		t.Errorf("unknown statement returned %v, want ErrUnknownStatement", err)
	}
	if _, err := svc.Refresh(ctx, "missing"); !errors.Is(err, ErrUnknownStatement) {
		t.Errorf("unknown refresh returned %v, want ErrUnknownStatement", err)
	}
	info, err := svc.Refresh(ctx, "hot")
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode != "warm" {
		t.Errorf("refresh after a solve = %q, want warm", info.Mode)
	}

	// Re-registering replaces; deregistering removes.
	if err := svc.Register("hot", serviceQuery, serviceOpts(2)...); err != nil {
		t.Fatal(err)
	}
	resp, err = svc.Do(ctx, "hot", Request{Problem: ProblemDiversify})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Selection.Rows) != 2 {
		t.Errorf("re-registered statement selected %d rows, want 2", len(resp.Selection.Rows))
	}
	if !svc.Deregister("hot") || svc.Deregister("hot") {
		t.Error("Deregister should report the first removal only")
	}
	m := svc.Metrics()
	if m.Statements != 0 || m.Requests == 0 {
		t.Errorf("metrics after traffic: %+v", m)
	}
}

func TestServiceAdmission(t *testing.T) {
	e := serviceEngine(t, 10)
	svc := NewService(e, ServiceConfig{MaxConcurrent: 1, MaxQueue: 1})
	ctx := context.Background()

	release1, err := svc.admit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// One waiter fits in the queue; it must drain once the slot frees.
	var wg sync.WaitGroup
	wg.Add(1)
	waited := make(chan error, 1)
	go func() {
		defer wg.Done()
		release, err := svc.admit(ctx)
		waited <- err
		if err == nil {
			release()
		}
	}()
	// Wait until the waiter is queued, then overflow the queue.
	deadline := time.Now().Add(2 * time.Second)
	for svc.Metrics().QueueDepth == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if d := svc.Metrics().QueueDepth; d != 1 {
		t.Fatalf("queue depth = %d, want 1", d)
	}
	if _, err := svc.admit(ctx); !errors.Is(err, ErrOverloaded) {
		t.Errorf("overflowing the queue returned %v, want ErrOverloaded", err)
	}
	release1()
	wg.Wait()
	if err := <-waited; err != nil {
		t.Errorf("queued waiter failed: %v", err)
	}
	m := svc.Metrics()
	if m.Rejected == 0 || m.QueuePeak == 0 {
		t.Errorf("admission metrics not recorded: %+v", m)
	}
	if m.InFlight != 0 || m.QueueDepth != 0 {
		t.Errorf("admission counters leaked: %+v", m)
	}

	// A queued caller that gives up leaves immediately (probed on a
	// service whose queue has headroom, so cancellation is what decides).
	roomy := NewService(e, ServiceConfig{MaxConcurrent: 1, MaxQueue: 4})
	hold, err := roomy.admit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := roomy.admit(cancelled); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled waiter returned %v, want context.Canceled", err)
	}
	hold()
}

func TestServiceDeadline(t *testing.T) {
	e := serviceEngine(t, 10)
	svc := NewService(e, ServiceConfig{DefaultTimeout: time.Nanosecond})
	if err := svc.Register("hot", serviceQuery, serviceOpts(3)...); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Do(context.Background(), "hot", Request{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("default deadline returned %v, want DeadlineExceeded", err)
	}
	// An explicit caller deadline wins over the default.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if _, err := svc.Do(ctx, "hot", Request{}); err != nil {
		t.Errorf("caller deadline should override the 1ns default: %v", err)
	}
}

// TestServiceHammer is the concurrency acceptance test: 8 goroutines drive
// queries, refreshes and engine mutations against one registry entry, and
// every response must be internally consistent — a selection of exactly k
// distinct rows whose recomputed FMS value matches the reported one, with
// the solver's answer count agreeing with the refresh report from the same
// snapshot. Run under -race in CI.
func TestServiceHammer(t *testing.T) {
	const (
		k          = 3
		lambda     = 0.6
		goroutines = 8
		iters      = 60
	)
	e := serviceEngine(t, 20)
	svc := NewService(e, ServiceConfig{MaxConcurrent: 4, MaxQueue: goroutines * iters})
	if err := svc.Register("hot", serviceQuery, serviceOpts(k)...); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// recompute scores a selection's FMS value from its own rows: the
	// response is self-consistent only if the reported value is the
	// objective of the reported rows, whatever generation they came from.
	recompute := func(sel *Selection) float64 {
		var rel, dis float64
		for i, a := range sel.Rows {
			rel += 100 - float64(a.Get("price").(int64))
			for j := i + 1; j < len(sel.Rows); j++ {
				if a.Get("cat") != sel.Rows[j].Get("cat") {
					dis++
				}
			}
		}
		return float64(k-1)*(1-lambda)*rel + 2*lambda*dis
	}

	var wg sync.WaitGroup
	errs := make(chan error, goroutines*iters)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			churnID := 1000 + g
			churnLive := false
			for i := 0; i < iters; i++ {
				switch i % 6 {
				case 0: // mutate: each goroutine owns one churn row
					if churnLive {
						if _, err := e.Delete("items", churnID, "z", 15); err != nil {
							errs <- err
							return
						}
					} else if err := e.Insert("items", churnID, "z", 15); err != nil {
						errs <- err
						return
					}
					churnLive = !churnLive
				case 1: // refresh
					if _, err := svc.Refresh(ctx, "hot"); err != nil {
						errs <- err
						return
					}
				case 2: // decide
					bound := 1.0
					if _, err := svc.Do(ctx, "hot", Request{Problem: ProblemDecide, Bound: &bound}); err != nil {
						errs <- err
						return
					}
				default: // diversify, the consistency workhorse
					resp, err := svc.Do(ctx, "hot", Request{Problem: ProblemDiversify})
					if err != nil {
						errs <- err
						return
					}
					sel := resp.Selection
					if len(sel.Rows) != k {
						errs <- errors.New("selection size != k")
						return
					}
					seen := map[interface{}]bool{}
					for _, r := range sel.Rows {
						seen[r.Get("id")] = true
					}
					if len(seen) != k {
						errs <- errors.New("selection rows not distinct")
						return
					}
					if got := recompute(sel); math.Abs(got-sel.Value) > 1e-6 {
						errs <- errors.New("selection value does not match its own rows")
						return
					}
					if resp.Generation == 0 {
						errs <- errors.New("response lost its generation")
						return
					}
					// Stats.Answers and Refresh.Answers both describe the
					// snapshot the solve ran over; they must agree.
					if resp.Stats.Answers != 0 && resp.Refresh.Answers != 0 &&
						resp.Stats.Answers != resp.Refresh.Answers {
						errs <- errors.New("solver and refresh disagree on |Q(D)|")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	m := svc.Metrics()
	if m.Requests == 0 || m.InFlight != 0 || m.QueueDepth != 0 {
		t.Errorf("hammer metrics inconsistent: %+v", m)
	}
}
