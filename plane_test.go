// Differential tests for the interned score plane: every solver and
// heuristic must return byte-identical results — selected sets, objective
// values, and deterministic work stats — whether it scores through the
// plane's precomputed arrays or directly through the Relevance/Distance
// interfaces, across all three objective kinds, λ ∈ {0, ½, 1}, and
// constrained (Σ) instances.
package diversification

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/objective"
	"repro/internal/online"
	"repro/internal/reduction"
	"repro/internal/relation"
	"repro/internal/sat"
	"repro/internal/solver"
	"repro/internal/workload"
)

// tableInstance builds a deterministic identity-query instance whose δrel
// and δdis are table-backed (the shape the plane's keyed fast path targets).
func tableInstance(n, k int, kind objective.Kind, lambda float64) *core.Instance {
	rng := rand.New(rand.NewSource(int64(n*31 + k)))
	in := workload.Points(rng, n, 2, 64, kind, lambda, k)
	answers := in.Answers()
	tr := &objective.TableRelevance{Scores: map[string]float64{}, Default: 0.1}
	td := objective.NewTableDistance(0.3)
	for i, t := range answers {
		tr.Set(t, float64((i*13)%29)/29)
		for j := i + 1; j < len(answers); j++ {
			td.Set(t, answers[j], float64((i*7+j*3)%23)/23)
		}
	}
	in.Obj = objective.New(kind, tr, td, lambda)
	in.SetAnswers(answers)
	return in
}

// offTwin returns a second, independently built instance with the plane
// disabled, so memoized state never leaks between the two paths.
func twinInstances(mk func() *core.Instance) (plane, direct *core.Instance) {
	plane = mk()
	direct = mk()
	direct.PlaneOff = true
	return plane, direct
}

func keysOf(ts []relation.Tuple) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.Key()
	}
	return out
}

func sameKeys(a, b []relation.Tuple) bool {
	ka, kb := keysOf(a), keysOf(b)
	if len(ka) != len(kb) {
		return false
	}
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

func checkQRD(t *testing.T, label string, a, b solver.QRDResult) {
	t.Helper()
	if a.Exists != b.Exists || a.Value != b.Value || !sameKeys(a.Witness, b.Witness) {
		t.Fatalf("%s: plane (%v, %v, %v) != direct (%v, %v, %v)",
			label, a.Exists, a.Value, keysOf(a.Witness), b.Exists, b.Value, keysOf(b.Witness))
	}
	if a.Stats.Nodes != b.Stats.Nodes || a.Stats.Leaves != b.Stats.Leaves || a.Stats.Pruned != b.Stats.Pruned {
		t.Fatalf("%s: stats diverge: plane %+v, direct %+v", label, a.Stats, b.Stats)
	}
}

func diffConfigs() []struct {
	kind   objective.Kind
	lambda float64
} {
	var out []struct {
		kind   objective.Kind
		lambda float64
	}
	for _, kind := range []objective.Kind{objective.MaxSum, objective.MaxMin, objective.Mono} {
		for _, lambda := range []float64{0, 0.5, 1} {
			out = append(out, struct {
				kind   objective.Kind
				lambda float64
			}{kind, lambda})
		}
	}
	return out
}

// TestPlaneDifferentialExact runs the exact solvers (QRDBest, QRDExact,
// DRPExact, RDCExact) on both paths across the full kind × λ grid, for both
// the memoized and the materialized plane regime.
func TestPlaneDifferentialExact(t *testing.T) {
	for _, memo := range []bool{false, true} {
		for _, cfg := range diffConfigs() {
			label := fmt.Sprintf("%s λ=%v memo=%v", cfg.kind, cfg.lambda, memo)
			mk := func() *core.Instance {
				in := tableInstance(16, 4, cfg.kind, cfg.lambda)
				if memo {
					in.PlaneMaxBytes = 8 // force the sharded-cache fallback
				}
				return in
			}
			pin, din := twinInstances(mk)
			pBest := solver.QRDBest(pin)
			dBest := solver.QRDBest(din)
			checkQRD(t, label+" QRDBest", pBest, dBest)

			pin, din = twinInstances(mk)
			pin.B, din.B = pBest.Value/2, pBest.Value/2
			checkQRD(t, label+" QRDExact/reachable", solver.QRDExact(pin), solver.QRDExact(din))

			pin, din = twinInstances(mk)
			pin.B, din.B = pBest.Value+1, dBest.Value+1
			checkQRD(t, label+" QRDExact/refute", solver.QRDExact(pin), solver.QRDExact(din))

			pin, din = twinInstances(mk)
			pin.U, din.U = pin.Answers()[:4], din.Answers()[:4]
			pin.R, din.R = 10, 10
			pd, perr := solver.DRPExact(pin)
			dd, derr := solver.DRPExact(din)
			if (perr == nil) != (derr == nil) {
				t.Fatalf("%s DRPExact: errors diverge: %v vs %v", label, perr, derr)
			}
			if pd.InTopR != dd.InTopR || pd.Better != dd.Better || pd.FU != dd.FU {
				t.Fatalf("%s DRPExact: plane %+v != direct %+v", label, pd, dd)
			}

			pin, din = twinInstances(mk)
			pin.B, din.B = pBest.Value/2, pBest.Value/2
			pc := solver.RDCExact(pin)
			dc := solver.RDCExact(din)
			if pc.Count.Cmp(dc.Count) != 0 || pc.Stats != dc.Stats {
				t.Fatalf("%s RDCExact: plane (%v %+v) != direct (%v %+v)",
					label, pc.Count, pc.Stats, dc.Count, dc.Stats)
			}
		}
	}
}

// TestPlaneDifferentialPTime covers the paper's PTIME special cases.
func TestPlaneDifferentialPTime(t *testing.T) {
	for _, lambda := range []float64{0, 0.5, 1} {
		label := fmt.Sprintf("mono λ=%v", lambda)
		mk := func() *core.Instance {
			in := tableInstance(40, 5, objective.Mono, lambda)
			in.B = 1
			return in
		}
		pin, din := twinInstances(mk)
		pres, perr := solver.QRDMonoPTime(pin)
		dres, derr := solver.QRDMonoPTime(din)
		if perr != nil || derr != nil {
			t.Fatalf("%s QRDMonoPTime: %v / %v", label, perr, derr)
		}
		checkQRD(t, label+" QRDMonoPTime", pres, dres)

		pin, din = twinInstances(mk)
		pin.U, din.U = pin.Answers()[:5], din.Answers()[:5]
		pin.R, din.R = 4, 4
		pd, perr := solver.DRPMonoPTime(pin)
		dd, derr := solver.DRPMonoPTime(din)
		if perr != nil || derr != nil {
			t.Fatalf("%s DRPMonoPTime: %v / %v", label, perr, derr)
		}
		if pd.InTopR != dd.InTopR || pd.Better != dd.Better || pd.FU != dd.FU {
			t.Fatalf("%s DRPMonoPTime: plane %+v != direct %+v", label, pd, dd)
		}
	}
	for _, kind := range []objective.Kind{objective.MaxSum, objective.MaxMin} {
		label := fmt.Sprintf("%s λ=0", kind)
		mk := func() *core.Instance {
			in := tableInstance(40, 5, kind, 0)
			in.B = 0.2
			return in
		}
		pin, din := twinInstances(mk)
		pres, perr := solver.QRDRelevanceOnlyPTime(pin)
		dres, derr := solver.QRDRelevanceOnlyPTime(din)
		if perr != nil || derr != nil {
			t.Fatalf("%s QRDRelevanceOnlyPTime: %v / %v", label, perr, derr)
		}
		checkQRD(t, label+" QRDRelevanceOnlyPTime", pres, dres)

		pin, din = twinInstances(mk)
		pin.U, din.U = pin.Answers()[:5], din.Answers()[:5]
		pin.R, din.R = 8, 8
		pd, perr := solver.DRPRelevanceOnlyPTime(pin)
		dd, derr := solver.DRPRelevanceOnlyPTime(din)
		if perr != nil || derr != nil {
			t.Fatalf("%s DRPRelevanceOnlyPTime: %v / %v", label, perr, derr)
		}
		if pd.InTopR != dd.InTopR || pd.Better != dd.Better || pd.FU != dd.FU {
			t.Fatalf("%s DRPRelevanceOnlyPTime: plane %+v != direct %+v", label, pd, dd)
		}
	}
	// RDC FP cells.
	mkFMM := func() *core.Instance {
		in := tableInstance(40, 5, objective.MaxMin, 0)
		in.B = 0.2
		return in
	}
	pin, din := twinInstances(mkFMM)
	pc, perr := solver.RDCMaxMinRelevanceOnlyFP(pin)
	dc, derr := solver.RDCMaxMinRelevanceOnlyFP(din)
	if perr != nil || derr != nil {
		t.Fatalf("RDCMaxMinRelevanceOnlyFP: %v / %v", perr, derr)
	}
	if pc.Count.Cmp(dc.Count) != 0 {
		t.Fatalf("RDCMaxMinRelevanceOnlyFP: %v != %v", pc.Count, dc.Count)
	}
	mkDP := func() *core.Instance {
		rng := rand.New(rand.NewSource(10))
		in := workload.Points(rng, 32, 2, 128, objective.Mono, 0, 6)
		in.B = 3
		return in
	}
	pin, din = twinInstances(mkDP)
	pdp, perr := solver.RDCModularDP(pin, 128)
	ddp, derr := solver.RDCModularDP(din, 128)
	if perr != nil || derr != nil {
		t.Fatalf("RDCModularDP: %v / %v", perr, derr)
	}
	if pdp.Count.Cmp(ddp.Count) != 0 {
		t.Fatalf("RDCModularDP: %v != %v", pdp.Count, ddp.Count)
	}
}

// TestPlaneDifferentialHeuristics covers all four Section-10 heuristics.
func TestPlaneDifferentialHeuristics(t *testing.T) {
	check := func(label string, a, b approx.Result) {
		t.Helper()
		if a.Value != b.Value || a.Steps != b.Steps || !sameKeys(a.Set, b.Set) {
			t.Fatalf("%s: plane (%v, %d, %v) != direct (%v, %d, %v)",
				label, a.Value, a.Steps, keysOf(a.Set), b.Value, b.Steps, keysOf(b.Set))
		}
	}
	for _, memo := range []bool{false, true} {
		for _, cfg := range diffConfigs() {
			label := fmt.Sprintf("%s λ=%v memo=%v", cfg.kind, cfg.lambda, memo)
			mk := func() *core.Instance {
				in := tableInstance(60, 6, cfg.kind, cfg.lambda)
				if memo {
					in.PlaneMaxBytes = 8
				}
				return in
			}
			pin, din := twinInstances(mk)
			check(label+" GreedyMaxSum", approx.GreedyMaxSum(pin), approx.GreedyMaxSum(din))
			pin, din = twinInstances(mk)
			check(label+" GreedyMaxMin", approx.GreedyMaxMin(pin), approx.GreedyMaxMin(din))
			pin, din = twinInstances(mk)
			check(label+" MMR", approx.MMR(pin), approx.MMR(din))
			pin, din = twinInstances(mk)
			check(label+" Greedy", approx.Greedy(pin), approx.Greedy(din))

			pin, din = twinInstances(mk)
			pseed := approx.Greedy(pin)
			dseed := approx.Greedy(din)
			check(label+" seed", pseed, dseed)
			check(label+" LocalSearchSwap",
				approx.LocalSearchSwap(pin, pseed.Set),
				approx.LocalSearchSwap(din, dseed.Set))
		}
	}
}

// TestPlaneDifferentialOnline covers the streaming procedures (FMS/FMM
// only; Fmono is rejected by design).
func TestPlaneDifferentialOnline(t *testing.T) {
	ctx := context.Background()
	for _, kind := range []objective.Kind{objective.MaxSum, objective.MaxMin} {
		for _, lambda := range []float64{0, 0.5, 1} {
			label := fmt.Sprintf("%s λ=%v", kind, lambda)
			mk := func() *core.Instance {
				rng := rand.New(rand.NewSource(7))
				in := workload.GiftInstance(rng, 40, 80, 3, kind, lambda)
				in.B = 0.5
				return in
			}
			pin, din := twinInstances(mk)
			pres, perr := online.QRD(ctx, pin, online.Options{CheckInterval: 3})
			dres, derr := online.QRD(ctx, din, online.Options{CheckInterval: 3})
			if perr != nil || derr != nil {
				t.Fatalf("%s online.QRD: %v / %v", label, perr, derr)
			}
			if pres.Exists != dres.Exists || pres.Value != dres.Value ||
				pres.Seen != dres.Seen || pres.Exhausted != dres.Exhausted ||
				!sameKeys(pres.Witness, dres.Witness) {
				t.Fatalf("%s online.QRD diverges: plane %+v != direct %+v", label, pres, dres)
			}

			pin, din = twinInstances(mk)
			pdiv, perr := online.Diversify(ctx, pin, online.Options{})
			ddiv, derr := online.Diversify(ctx, din, online.Options{})
			if perr != nil || derr != nil {
				t.Fatalf("%s online.Diversify: %v / %v", label, perr, derr)
			}
			if pdiv.Exists != ddiv.Exists || pdiv.Value != ddiv.Value ||
				pdiv.Seen != ddiv.Seen || !sameKeys(pdiv.Witness, ddiv.Witness) {
				t.Fatalf("%s online.Diversify diverges: plane %+v != direct %+v", label, pdiv, ddiv)
			}
		}
	}
}

// preparedPlaneEngine builds a small engine + prepared handle pair for the
// public-API plane tests.
func preparedPlaneEngine(t *testing.T, opts ...Option) (*Engine, *Prepared) {
	t.Helper()
	e := NewEngine()
	e.MustCreateTable("items", "id", "cat", "price")
	cats := []string{"a", "b", "c", "d", "e"}
	for i := 0; i < 60; i++ {
		e.MustInsert("items", i, cats[i%len(cats)], 10+(i*37)%90)
	}
	base := []Option{
		WithK(4), WithObjective(MaxSum), WithLambda(0.5),
		WithAlgorithm(Greedy),
		WithRelevance(func(r Row) float64 { return 100 - float64(r.Get("price").(int64)) }),
		WithDistance(func(a, b Row) float64 {
			if a.Get("cat") == b.Get("cat") {
				return 0
			}
			return 1
		}),
	}
	p, err := e.Prepare("Q(id, cat, price) :- items(id, cat, price), price <= 80",
		append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return e, p
}

// TestPreparedPlaneCacheAndInvalidation proves the plane is built once per
// database generation, reused across calls and solvers, and rebuilt after a
// mutation.
func TestPreparedPlaneCacheAndInvalidation(t *testing.T) {
	ctx := context.Background()
	e, p := preparedPlaneEngine(t)
	sel1, err := p.Diversify(ctx)
	if err != nil {
		t.Fatal(err)
	}
	p.mu.Lock()
	pl1 := p.snap.plane
	p.mu.Unlock()
	if pl1 == nil {
		t.Fatal("no plane cached after first solve")
	}
	if !pl1.Materialized() {
		t.Fatal("prepared plane should be materialized under the default guard")
	}
	if _, err := p.Decide(ctx, WithBound(sel1.Value)); err != nil {
		t.Fatal(err)
	}
	p.mu.Lock()
	pl2 := p.snap.plane
	p.mu.Unlock()
	if pl2 != pl1 {
		t.Fatal("plane rebuilt although the generation did not advance")
	}
	e.MustInsert("items", 1000, "f", 15)
	sel2, err := p.Diversify(ctx)
	if err != nil {
		t.Fatal(err)
	}
	p.mu.Lock()
	pl3 := p.snap.plane
	p.mu.Unlock()
	if pl3 == pl1 {
		t.Fatal("plane not invalidated by a database mutation")
	}
	_ = sel2
}

// TestPreparedPlaneOffEquivalence proves WithScorePlane(false) changes
// nothing about the results, only the scoring path.
func TestPreparedPlaneOffEquivalence(t *testing.T) {
	ctx := context.Background()
	_, pOn := preparedPlaneEngine(t)
	_, pOff := preparedPlaneEngine(t, WithScorePlane(false))
	for _, alg := range []Algorithm{Exact, Greedy, LocalSearch, Online} {
		a, errA := pOn.Diversify(ctx, WithAlgorithm(alg))
		b, errB := pOff.Diversify(ctx, WithAlgorithm(alg))
		if errA != nil || errB != nil {
			t.Fatalf("%s: %v / %v", alg, errA, errB)
		}
		if a.Value != b.Value || len(a.Rows) != len(b.Rows) {
			t.Fatalf("%s: plane (%v, %d rows) != direct (%v, %d rows)",
				alg, a.Value, len(a.Rows), b.Value, len(b.Rows))
		}
	}
	nA, errA := pOn.Count(ctx, WithBound(1))
	nB, errB := pOff.Count(ctx, WithBound(1))
	if errA != nil || errB != nil || nA.Cmp(nB) != 0 {
		t.Fatalf("Count: %v (%v) != %v (%v)", nA, errA, nB, errB)
	}
}

// TestPreparedPlanePerCallOverride proves a per-call WithDistance /
// WithRelevance never sees the prepared plane's stale scores.
func TestPreparedPlanePerCallOverride(t *testing.T) {
	ctx := context.Background()
	_, p := preparedPlaneEngine(t)
	base, err := p.Diversify(ctx, WithAlgorithm(Exact), WithK(2), WithLambda(1))
	if err != nil {
		t.Fatal(err)
	}
	// λ=1, k=2 exact: the value is 2·max pairwise distance. The override
	// makes every pair twice as distant, so the optimum must double; a
	// stale plane would reproduce base.Value.
	over, err := p.Diversify(ctx, WithAlgorithm(Exact), WithK(2), WithLambda(1),
		WithDistance(func(a, b Row) float64 {
			if a.Get("cat") == b.Get("cat") {
				return 0
			}
			return 2
		}))
	if err != nil {
		t.Fatal(err)
	}
	if over.Value != 2*base.Value {
		t.Fatalf("per-call distance override ignored: base %v, override %v", base.Value, over.Value)
	}
	// And the handle's cached plane still serves the original binding.
	again, err := p.Diversify(ctx, WithAlgorithm(Exact), WithK(2), WithLambda(1))
	if err != nil {
		t.Fatal(err)
	}
	if again.Value != base.Value {
		t.Fatalf("prepared binding corrupted by per-call override: %v != %v", again.Value, base.Value)
	}
}

// TestPreparedPlaneRegime proves WithPlaneRegime steers the prepared
// plane's storage regime, Explain reports the choice with its estimated
// footprint, and a per-call regime override bypasses the shared plane
// without changing the answer.
func TestPreparedPlaneRegime(t *testing.T) {
	ctx := context.Background()
	_, p := preparedPlaneEngine(t, WithPlaneRegime(PlaneMemoized))
	if _, err := p.Diversify(ctx); err != nil {
		t.Fatal(err)
	}
	p.mu.Lock()
	pl := p.snap.plane
	p.mu.Unlock()
	if pl == nil {
		t.Fatal("no plane cached after the first solve")
	}
	if got := pl.Regime(); got != objective.RegimeMemoized {
		t.Fatalf("prepared regime = %v, want memoized", got)
	}
	plan, err := p.Plan(ctx, Request{Problem: ProblemDiversify})
	if err != nil {
		t.Fatal(err)
	}
	if ex := plan.Explain(); !strings.Contains(ex, "memoized cache, ~") {
		t.Fatalf("Explain does not report the regime with its footprint:\n%s", ex)
	}

	// The default auto plan at this size materializes the matrix.
	_, pAuto := preparedPlaneEngine(t)
	plan, err = pAuto.Plan(ctx, Request{Problem: ProblemDiversify})
	if err != nil {
		t.Fatal(err)
	}
	if ex := plan.Explain(); !strings.Contains(ex, "materialized matrix, ~") {
		t.Fatalf("auto regime did not materialize:\n%s", ex)
	}

	// A per-call regime override must bypass the shared plane (whose store
	// was built under a different regime) and still answer identically.
	plan, err = pAuto.Plan(ctx, Request{Problem: ProblemDiversify,
		Options: []Option{WithPlaneRegime(PlaneMemoized)}})
	if err != nil {
		t.Fatal(err)
	}
	if ex := plan.Explain(); !strings.Contains(ex, "per-request") {
		t.Fatalf("per-call regime override did not bypass the shared plane:\n%s", ex)
	}
	a, err := pAuto.Diversify(ctx)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pAuto.Diversify(ctx, WithPlaneRegime(PlaneMemoized))
	if err != nil {
		t.Fatal(err)
	}
	if a.Value != b.Value {
		t.Fatalf("per-call memoized regime changed the answer: %v != %v", a.Value, b.Value)
	}
}

// TestPlaneRegimeParseAndValidate pins the enum round-trip and the typed
// rejection of out-of-range values.
func TestPlaneRegimeParseAndValidate(t *testing.T) {
	for _, r := range []PlaneRegime{PlaneAuto, PlaneMaterialized, PlaneTiled, PlaneIndexed, PlaneMemoized} {
		got, err := ParsePlaneRegime(r.String())
		if err != nil || got != r {
			t.Fatalf("round-trip %v: got %v, %v", r, got, err)
		}
	}
	if r, err := ParsePlaneRegime(""); err != nil || r != PlaneAuto {
		t.Fatalf("empty string should parse as auto, got %v, %v", r, err)
	}
	if _, err := ParsePlaneRegime("bogus"); err == nil {
		t.Fatal("ParsePlaneRegime accepted an unknown name")
	}
	_, p := preparedPlaneEngine(t)
	var argErr *ArgError
	if _, err := p.Diversify(context.Background(), WithPlaneRegime(PlaneRegime(99))); !errors.As(err, &argErr) || argErr.Field != "plane-regime" {
		t.Fatalf("invalid regime not rejected as a plane-regime ArgError: %v", err)
	}
}

// TestPlaneDifferentialConstrained covers Σ instances (Section 9) through
// the 3SAT-to-constrained-QRD gadget, on exact search and counting.
func TestPlaneDifferentialConstrained(t *testing.T) {
	mk := func() *core.Instance {
		rng := rand.New(rand.NewSource(15))
		f := sat.Random3SAT(rng, 4, 6)
		return reduction.ThreeSATToConstrainedQRD(f)
	}
	pin, din := twinInstances(mk)
	checkQRD(t, "constrained QRDExact", solver.QRDExact(pin), solver.QRDExact(din))

	pin, din = twinInstances(mk)
	pc := solver.RDCExact(pin)
	dc := solver.RDCExact(din)
	if pc.Count.Cmp(dc.Count) != 0 || pc.Stats != dc.Stats {
		t.Fatalf("constrained RDCExact: plane (%v %+v) != direct (%v %+v)",
			pc.Count, pc.Stats, dc.Count, dc.Stats)
	}
}

// TestExplainFormatting pins the Explain helpers white-box: formatBytes
// picks the binary-prefix unit at each power-of-two threshold, and
// planeRegime names every resolved store.
func TestExplainFormatting(t *testing.T) {
	for _, c := range []struct {
		n    int64
		want string
	}{
		{0, "0 B"},
		{520, "520 B"},
		{1 << 10, "1.0 KiB"},
		{9 << 20, "9.0 MiB"},
		{3 << 30, "3.0 GiB"},
	} {
		if got := formatBytes(c.n); got != c.want {
			t.Fatalf("formatBytes(%d) = %q, want %q", c.n, got, c.want)
		}
	}

	answers := make([]relation.Tuple, 200)
	for i := range answers {
		answers[i] = relation.Ints(int64(i), int64((i*7)%13))
	}
	o := objective.New(objective.MaxSum, nil, objective.EuclideanDistance(), 0.5)
	for _, c := range []struct {
		regime objective.Regime
		want   string
	}{
		{objective.RegimeMaterialized, "materialized matrix"},
		{objective.RegimeTiled, "tiled float32 matrix"},
		{objective.RegimeIndexed, "metric index"},
		{objective.RegimeMemoized, "memoized cache"},
	} {
		p := objective.NewPlane(o, answers, objective.PlaneOptions{Regime: c.regime})
		if err := p.EnsureReadyContext(context.Background()); err != nil {
			t.Fatal(err)
		}
		if got := planeRegime(p); got != c.want {
			t.Fatalf("planeRegime(%v) = %q, want %q", c.regime, got, c.want)
		}
	}
}
