package diversification

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServeChaosWAL boots the real divserve binary with a sticky WAL fault
// schedule armed via -chaos-wal and drives the degradation contract over
// real HTTP: mutations keep succeeding until the schedule fires, the
// failure is surfaced (500 for the ambiguous first failure, 503 +
// Retry-After once read-only), queries and /healthz keep serving (the
// latter reporting "degraded"), and SIGTERM still shuts down cleanly.
func TestServeChaosWAL(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a server binary")
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	bin := filepath.Join(t.TempDir(), "divserve")
	build := exec.Command("go", "build", "-o", bin, "./cmd/divserve")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building divserve: %v\n%s", err, out)
	}
	// Sticky schedule: every fsync from the 40th on fails. Demo seeding
	// costs ~14 syncs, so the server boots healthy and the fault lands
	// mid-traffic; sticky means the recovery probe cannot heal it, keeping
	// the degraded state observable.
	cmd := exec.Command(bin, "-demo", "-data-dir", t.TempDir(), "-fsync", "always",
		"-addr", addr, "-chaos-wal", "sync:40+", "-wal-probe", "5ms", "-shutdown-grace", "2s")
	cmd.Env = os.Environ()
	var serverLog bytes.Buffer
	cmd.Stdout, cmd.Stderr = &serverLog, &serverLog
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	killed := false
	defer func() {
		if !killed {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	}()

	base := "http://" + addr
	client := &http.Client{Timeout: 5 * time.Second}
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("divserve never became healthy: %v\nserver log:\n%s", err, serverLog.String())
		}
		time.Sleep(50 * time.Millisecond)
	}

	post := func(path, body string) (int, string) {
		t.Helper()
		resp, err := client.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.String()
	}

	// Mutate until the armed schedule fires. The first failure is the
	// ambiguous one (applied in memory, not logged): a 500-class error,
	// never a silent success.
	firstFailure := 0
	for i := 0; i < 100; i++ {
		row := fmt.Sprintf(`{"rows":[["chaos-%d","toy",5,1]]}`, i)
		status, body := post("/v1/insert/catalog", row)
		if status == http.StatusOK {
			continue
		}
		firstFailure = status
		if status != http.StatusInternalServerError {
			t.Fatalf("first failing insert: status %d (%s), want 500", status, body)
		}
		if !strings.Contains(body, "read-only") {
			t.Fatalf("first failure body %q does not announce read-only mode", body)
		}
		break
	}
	if firstFailure == 0 {
		t.Fatalf("schedule never fired in 100 inserts\nserver log:\n%s", serverLog.String())
	}

	// From here every mutation is refused up front: 503 with Retry-After.
	status, body := post("/v1/insert/catalog", `{"rows":[["late","toy",5,1]]}`)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("insert while read-only: status %d (%s), want 503", status, body)
	}

	// Queries keep serving, and liveness reports the degradation.
	status, body = post("/v1/query/gifts", `{}`)
	if status != http.StatusOK || !strings.Contains(body, `"selection"`) {
		t.Fatalf("query while read-only: status %d (%s)", status, body)
	}
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status   string `json:"status"`
		ReadOnly bool   `json:"read_only"`
	}
	err = json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if health.Status != "degraded" || !health.ReadOnly {
		t.Fatalf("healthz = %+v, want degraded/read-only", health)
	}
	resp, err = client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics struct {
		Durability struct {
			ReadOnly      bool  `json:"read_only"`
			WALFailures   int64 `json:"wal_failures"`
			ProbeAttempts int64 `json:"wal_probe_attempts"`
		} `json:"durability"`
	}
	err = json.NewDecoder(resp.Body).Decode(&metrics)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !metrics.Durability.ReadOnly || metrics.Durability.WALFailures == 0 {
		t.Fatalf("durability metrics do not report the failure: %+v", metrics.Durability)
	}

	// A degraded server still honors graceful shutdown: drain, exit 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		killed = true
		if err != nil {
			t.Fatalf("SIGTERM exit: %v\nserver log:\n%s", err, serverLog.String())
		}
	case <-time.After(20 * time.Second):
		t.Fatalf("server did not exit on SIGTERM\nserver log:\n%s", serverLog.String())
	}
	if !strings.Contains(serverLog.String(), "shut down cleanly") {
		t.Fatalf("shutdown was not clean:\n%s", serverLog.String())
	}
}
