// Benchmarks regenerating the paper's tables and figures. Each table and
// figure of the evaluation has at least one testing.B benchmark exercising
// the cell's designated workload and solver; `go test -bench=. -benchmem`
// prints the full suite, and `cmd/divbench` runs the scaling sweeps that
// classify growth against the proved bounds.
package diversification

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/approx"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/objective"
	"repro/internal/online"
	"repro/internal/query/eval"
	"repro/internal/reduction"
	"repro/internal/relation"
	"repro/internal/sat"
	"repro/internal/solver"
	"repro/internal/subset"
	"repro/internal/value"
	"repro/internal/wal"
	"repro/internal/workload"
)

// --- Table I: combined complexity ---

// BenchmarkTableI_QRD_CQ_FMS_Combined exercises the NP-complete cell via the
// Theorem 5.1 3SAT gadget.
func BenchmarkTableI_QRD_CQ_FMS_Combined(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	f := sat.Random3SAT(rng, 5, 12)
	in := reduction.ThreeSATToQRDMaxSum(f)
	in.Answers() // materialize outside the loop
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		solver.QRDExact(in)
	}
}

// BenchmarkTableI_QRD_CQ_FMM_Combined is the FMM twin.
func BenchmarkTableI_QRD_CQ_FMM_Combined(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	f := sat.Random3SAT(rng, 5, 12)
	in := reduction.ThreeSATToQRDMaxMin(f)
	in.Answers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		solver.QRDExact(in)
	}
}

// BenchmarkTableI_QRD_FO_Combined exercises the PSPACE-complete FO cell:
// membership-style FO evaluation dominates.
func BenchmarkTableI_QRD_FO_Combined(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	in := workload.GiftInstance(rng, 30, 60, 3, objective.MaxSum, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.ResetAnswers() // force FO re-evaluation: the dominant cost
		solver.QRDExact(in)
	}
}

// BenchmarkTableI_QRD_CQ_Fmono_Combined exercises the Theorem 5.2 cell: the
// cube query blows |Q(D)| up to 2^m from a constant database.
func BenchmarkTableI_QRD_CQ_Fmono_Combined(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	q := sat.RandomQBF(rng, 8, 16)
	q.Matrix.NumVars = 8
	in := reduction.Q3SATToQRDMono(q)
	in.Answers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		solver.QRDExact(in)
	}
}

// --- Table I: data complexity ---

// BenchmarkTableI_QRD_FMS_Data exercises the NP-complete data cell:
// dispersion search with an unreachable bound.
func BenchmarkTableI_QRD_FMS_Data(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	in := workload.Points(rng, 14, 2, 64, objective.MaxSum, 1, 7)
	best := solver.QRDBest(in)
	in.B = best.Value + 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		solver.QRDExact(in)
	}
}

// BenchmarkTableI_QRD_Fmono_Data exercises the PTIME cell (Thm 5.4).
func BenchmarkTableI_QRD_Fmono_Data(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	in := workload.Points(rng, 1024, 2, 1<<20, objective.Mono, 0.5, 10)
	in.B = 1
	in.Answers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.QRDMonoPTime(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableI_DRP_FMM_Data exercises the coNP-complete cell.
func BenchmarkTableI_DRP_FMM_Data(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	in := workload.Points(rng, 14, 2, 64, objective.MaxMin, 1, 7)
	in.U = in.Answers()[:7]
	in.R = 1 << 30
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.DRPExact(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableI_DRP_Fmono_Data exercises the PTIME FindNext cell (Thm 6.4).
func BenchmarkTableI_DRP_Fmono_Data(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	in := workload.Points(rng, 512, 2, 1<<20, objective.Mono, 0.5, 8)
	in.U = in.Answers()[:8]
	in.R = 16
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.DRPMonoPTime(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableI_RDC_FMS_Data exercises the #P-complete counting cell.
func BenchmarkTableI_RDC_FMS_Data(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	in := workload.Points(rng, 16, 2, 64, objective.MaxSum, 1, 8)
	in.B = 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		solver.RDCExact(in)
	}
}

// BenchmarkTableI_RDC_Fmono_Data exercises the #P-complete (Turing) cell
// through the subset-sum dynamic program.
func BenchmarkTableI_RDC_Fmono_Data(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	// λ = 0 Fmono scores are c0/side: integral at scale = side. The bound
	// asks for 8-sets whose score sum reaches half the attainable maximum.
	in := workload.Points(rng, 64, 2, 128, objective.Mono, 0, 8)
	in.B = 4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.RDCModularDP(in, 128); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table II: special cases ---

// BenchmarkTableII_Identity_Fmono exercises the PTIME identity-query cell
// (Cor 8.1).
func BenchmarkTableII_Identity_Fmono(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	in := workload.Points(rng, 1024, 2, 1<<20, objective.Mono, 0.5, 10)
	in.B = 1
	in.Answers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.QRDMonoPTime(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableII_Lambda0_QRD exercises the λ=0 PTIME cell (Thm 8.2).
func BenchmarkTableII_Lambda0_QRD(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	in := workload.Points(rng, 1024, 2, 1<<20, objective.MaxSum, 0, 10)
	in.B = 1
	in.Answers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.QRDRelevanceOnlyPTime(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableII_Lambda0_RDC_FMM exercises the FP counting cell (Thm 8.2).
func BenchmarkTableII_Lambda0_RDC_FMM(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	in := workload.Points(rng, 2048, 2, 1<<20, objective.MaxMin, 0, 10)
	in.B = 0.25
	in.Answers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.RDCMaxMinRelevanceOnlyFP(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableII_ConstantK_RDC exercises the FP constant-k cell (Cor 8.4).
func BenchmarkTableII_ConstantK_RDC(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	in := workload.Points(rng, 128, 2, 64, objective.MaxSum, 0.5, 2)
	in.B = 0
	in.Answers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		solver.RDCConstantK(in)
	}
}

// --- Table III: compatibility constraints ---

// BenchmarkTableIII_Constrained_Fmono_Data exercises the Theorem 9.3 cell:
// constraints flip the PTIME mono cell to NP-complete.
func BenchmarkTableIII_Constrained_Fmono_Data(b *testing.B) {
	rng := rand.New(rand.NewSource(15))
	f := sat.Random3SAT(rng, 6, 18)
	in := reduction.ThreeSATToConstrainedQRD(f)
	in.Answers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		solver.QRDExact(in)
	}
}

// BenchmarkTableIII_Constrained_ConstantK exercises Cor 9.7: constant k
// stays tractable under constraints.
func BenchmarkTableIII_Constrained_ConstantK(b *testing.B) {
	rng := rand.New(rand.NewSource(16))
	f := sat.Random3SAT(rng, 6, 18)
	in := reduction.ThreeSATToConstrainedQRD(f)
	in.K = 2 // constant k overrides the clause count
	in.Answers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		solver.QRDExact(in)
	}
}

// --- Figures ---

// BenchmarkFigure1_QRD_BoundMap regenerates the Figure 1 bound map.
func BenchmarkFigure1_QRD_BoundMap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if s := bench.RenderFigure(core.QRD); len(s) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFigure2_DistanceConstruction builds and fully evaluates the
// Lemma 5.3 inductive distance of Figure 2's example.
func BenchmarkFigure2_DistanceConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pd := reduction.NewPrefixDistance(reduction.Figure2QBF())
		for x := 1; x <= 16; x++ {
			for y := x + 1; y <= 16; y++ {
				pd.Dis(reduction.Figure2Tuple(x), reduction.Figure2Tuple(y))
			}
		}
	}
}

// BenchmarkFigure3_DRP_BoundMap regenerates the Figure 3 bound map.
func BenchmarkFigure3_DRP_BoundMap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if s := bench.RenderFigure(core.DRP); len(s) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFigure4_RDC_BoundMap regenerates the Figure 4 bound map.
func BenchmarkFigure4_RDC_BoundMap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if s := bench.RenderFigure(core.RDC); len(s) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFigure5_GadgetDatabase builds the Boolean gadget relations.
func BenchmarkFigure5_GadgetDatabase(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if db := reduction.GadgetDatabase(); db.Size() != 12 {
			b.Fatal("gadget size wrong")
		}
	}
}

// --- Ablations (Section 10's call for heuristics, and design choices) ---

// BenchmarkAblation_GreedyVsExact compares the 2-approximation greedy with
// exact search on the same instance.
func BenchmarkAblation_GreedyVsExact(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	in := workload.Clustered(rng, 4, 6, 1000, 10, objective.MaxSum, 0.7, 5)
	in.Answers()
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			approx.Greedy(in)
		}
	})
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			solver.QRDBest(in)
		}
	})
	b.Run("local-search", func(b *testing.B) {
		seed := approx.Greedy(in)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			approx.LocalSearchSwap(in, seed.Set)
		}
	})
}

// BenchmarkAblation_PruningOnOff measures the branch-and-bound pruning gain
// on a refutation instance (unreachable bound).
func BenchmarkAblation_PruningOnOff(b *testing.B) {
	rng := rand.New(rand.NewSource(18))
	in := workload.Points(rng, 14, 2, 64, objective.MaxSum, 1, 7)
	best := solver.QRDBest(in)
	b.Run("pruned", func(b *testing.B) {
		in.B = best.Value + 1
		for i := 0; i < b.N; i++ {
			solver.QRDExact(in)
		}
	})
	b.Run("unpruned-full-enumeration", func(b *testing.B) {
		// B = 0 admits everything: the search cannot prune and must touch
		// every leaf, the brute-force baseline.
		in.B = 0
		for i := 0; i < b.N; i++ {
			solver.RDCExact(in)
		}
	})
}

// BenchmarkAblation_EarlyTermination compares the paper's Section 1
// embed-diversification-in-evaluation mode (stop at the first valid set
// while streaming Q(D)) against materialize-then-solve on a reachable
// bound, where early termination should avoid most of the evaluation.
func BenchmarkAblation_EarlyTermination(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	mk := func() *core.Instance {
		return workload.GiftInstance(rng, 60, 120, 3, objective.MaxSum, 1)
	}
	probe := mk()
	best := solver.QRDBest(probe)
	bound := best.Value / 2
	b.Run("online-early-stop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			in := mk()
			in.B = bound
			if _, err := online.QRD(context.Background(), in, online.Options{CheckInterval: 4}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("materialize-then-solve", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			in := mk()
			in.B = bound
			in.Answers()
			solver.QRDExact(in)
		}
	})
}

// BenchmarkAblation_RankedVsExactDRP compares the Theorem 6.4 FindNext
// enumeration against exhaustive DRP on a modular objective.
func BenchmarkAblation_RankedVsExactDRP(b *testing.B) {
	rng := rand.New(rand.NewSource(19))
	in := workload.Points(rng, 18, 2, 1<<20, objective.Mono, 0.5, 6)
	in.U = in.Answers()[:6]
	in.R = 8
	b.Run("findnext-ptime", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := solver.DRPMonoPTime(in); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exhaustive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := solver.DRPExact(in); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_EvaluatorLanguages compares query evaluation cost across
// the language hierarchy on the gift workload (the combined-complexity
// story at fixed data).
func BenchmarkAblation_EvaluatorLanguages(b *testing.B) {
	rng := rand.New(rand.NewSource(20))
	db := workload.GiftShop(rng, 50, 100)
	queries := map[string]func() *core.Instance{
		"CQ": func() *core.Instance {
			return &core.Instance{Query: workload.GiftCQQuery(20, 60), DB: db,
				Obj: objective.New(objective.MaxSum, nil, nil, 0.5), K: 3}
		},
		"FO": func() *core.Instance {
			return &core.Instance{Query: workload.GiftQuery("buyer00", "recipient00", 20, 60), DB: db,
				Obj: objective.New(objective.MaxSum, nil, nil, 0.5), K: 3}
		},
	}
	for name, mk := range queries {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				in := mk()
				_ = in.Answers()
			}
		})
	}
}

// BenchmarkAblation_EvaluatorOptimizer measures the hash-index and
// conjunct-reordering gains on a three-way chain join with a late selective
// filter — the shape where join order and index probes decide the constant
// factors of the (polynomial) data-complexity regime.
func BenchmarkAblation_EvaluatorOptimizer(b *testing.B) {
	db, q := workload.ChainJoin(rand.New(rand.NewSource(22)), 400, 40)
	configs := []struct {
		name string
		opts eval.Options
	}{
		{"indexed+reordered", eval.Options{}},
		{"no-index", eval.Options{NoIndex: true}},
		{"no-reorder", eval.Options{NoReorder: true}},
		{"naive", eval.Options{NoIndex: true, NoReorder: true}},
	}
	want := -1
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ev := eval.NewWithOptions(q, db, cfg.opts)
				n := ev.Result().Len()
				if want == -1 {
					want = n
				}
				if n != want {
					b.Fatalf("config %s: %d answers, want %d", cfg.name, n, want)
				}
			}
		})
	}
}

// BenchmarkAblation_SubsetEnumeration isolates the candidate-set generator.
func BenchmarkAblation_SubsetEnumeration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		count := 0
		subset.ForEach(20, 5, func([]int) bool {
			count++
			return true
		})
		if count != 15504 {
			b.Fatalf("C(20,5) = %d", count)
		}
	}
}

// BenchmarkFacade_EndToEnd runs the public API end to end on the quickstart
// shape, the workload a downstream user hits first.
func BenchmarkFacade_EndToEnd(b *testing.B) {
	e := NewEngine()
	e.MustCreateTable("items", "id", "cat", "price")
	rng := rand.New(rand.NewSource(21))
	cats := []string{"a", "b", "c", "d"}
	for i := 0; i < 40; i++ {
		e.MustInsert("items", i, cats[rng.Intn(len(cats))], rng.Intn(100))
	}
	opts := []Option{
		WithK(4), WithObjective(MaxSum), WithLambda(0.6), WithAlgorithm(Greedy),
		WithDistance(func(a, c Row) float64 {
			if a.Get("cat") == c.Get("cat") {
				return 0
			}
			return 1
		}),
	}
	const src = "Q(id, cat, price) :- items(id, cat, price), price < 80"
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := e.Prepare(src, opts...)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.Diversify(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// scorePlaneInstance builds an identity-query instance over n tuples whose
// δrel/δdis are table-backed — the workload where per-lookup Tuple.Key()
// string building dominates and the interned score plane pays off most.
func scorePlaneInstance(n, k int, kind objective.Kind, lambda float64) *core.Instance {
	rng := rand.New(rand.NewSource(42))
	in := workload.Points(rng, n, 2, 1<<20, kind, lambda, k)
	answers := in.Answers()
	tr := &objective.TableRelevance{Scores: map[string]float64{}, Default: 0.1}
	td := objective.NewTableDistance(0.5)
	for i, t := range answers {
		tr.Set(t, rng.Float64())
		for j := i + 1; j < len(answers); j++ {
			td.Set(t, answers[j], rng.Float64())
		}
	}
	in.Obj = objective.New(kind, tr, td, lambda)
	in.SetAnswers(answers)
	return in
}

// BenchmarkScorePlane tracks the interned score plane: build cost, the
// solve-time gap with and without it, and the memoized fallback regime
// above the materialization threshold. The plane/direct pairs are the
// before/after numbers quoted in README's Performance section.
func BenchmarkScorePlane(b *testing.B) {
	b.Run("build-materialized-n1000", func(b *testing.B) {
		in := scorePlaneInstance(1000, 8, objective.MaxSum, 0.5)
		answers := in.Answers()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := objective.NewPlane(in.Obj, answers, objective.PlaneOptions{})
			if !p.Materialize() {
				b.Fatal("materialization refused")
			}
		}
	})
	b.Run("greedy-fms-n200", func(b *testing.B) {
		for _, mode := range []string{"plane", "memo-fallback", "direct"} {
			b.Run(mode, func(b *testing.B) {
				in := scorePlaneInstance(200, 10, objective.MaxSum, 0.5)
				switch mode {
				case "plane":
					in.Plane().Materialize()
				case "memo-fallback":
					// Too small for the n=200 matrix (~156 KiB), so the
					// plane serves from the capped sharded cache.
					in.PlaneMaxBytes = 64 << 10
				case "direct":
					in.PlaneOff = true
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if res := approx.GreedyMaxSum(in); len(res.Set) != 10 {
						b.Fatal("greedy failed")
					}
				}
			})
		}
	})
	b.Run("exact-fms-n200-k3", func(b *testing.B) {
		for _, mode := range []string{"plane", "direct"} {
			b.Run(mode, func(b *testing.B) {
				in := scorePlaneInstance(200, 3, objective.MaxSum, 0.5)
				if mode == "direct" {
					in.PlaneOff = true
				} else {
					in.Plane().Materialize()
				}
				best := solver.QRDBest(in)
				in.B = best.Value + 1 // refutation: the search must prove it
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if res := solver.QRDExact(in); res.Exists {
						b.Fatal("refutation instance admitted a witness")
					}
				}
			})
		}
	})
	b.Run("mono-ptime-n1000", func(b *testing.B) {
		for _, mode := range []string{"plane", "direct"} {
			b.Run(mode, func(b *testing.B) {
				in := scorePlaneInstance(1000, 10, objective.Mono, 0.5)
				in.B = 1
				if mode == "direct" {
					in.PlaneOff = true
				} else {
					in.Plane() // warm: row sums cache on first solve
					if _, err := solver.QRDMonoPTime(in); err != nil {
						b.Fatal(err)
					}
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := solver.QRDMonoPTime(in); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	})
}

// BenchmarkPreparedVsOneShot measures the prepared-query API against the
// deprecated one-shot Request path on the same workload: Prepare performs
// parse/classify/validate once and caches the materialized answer set
// across calls, while each Request call repeats the full build-and-evaluate
// pipeline. The per-call gap is the entire point of compile-once/solve-many
// serving (expect well over 5x here, since the greedy solve itself is a
// small fraction of the one-shot cost).
func BenchmarkPreparedVsOneShot(b *testing.B) {
	e := NewEngine()
	e.MustCreateTable("items", "id", "category", "price")
	for i := 0; i < 200; i++ {
		e.MustInsert("items", i, []string{"book", "toy", "jewelry", "fashion", "artsy"}[i%5], 10+(i*37)%90)
	}
	const src = "Q(id, category, price) :- items(id, category, price), price <= 30"
	relevance := func(r Row) float64 { return 100 - float64(r.Get("price").(int64)) }
	distance := func(x, y Row) float64 {
		if x.Get("category") == y.Get("category") {
			return 0
		}
		return 1
	}

	b.Run("prepared", func(b *testing.B) {
		p, err := e.Prepare(src,
			WithK(3), WithObjective(MaxSum), WithLambda(0.5),
			WithAlgorithm(Greedy), WithRelevance(relevance), WithDistance(distance))
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.Diversify(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("oneshot", func(b *testing.B) {
		// The one-shot shape: re-prepare (parse, validate, classify) and
		// re-materialize on every call, the cost Prepare amortizes away.
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p, err := e.Prepare(src,
				WithK(3), WithObjective(MaxSum), WithLambda(0.5),
				WithAlgorithm(Greedy), WithRelevance(relevance), WithDistance(distance))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := p.Diversify(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkParallelSearch measures the PR 3 tentpole: the work-stealing
// parallel branch-and-bound with a warm-started shared incumbent against
// the sequential exact search, at n≈30, k=8 across the three objectives.
// Results are byte-identical between the two paths (asserted by the
// differential and fuzz suites); what changes is wall-clock and the node
// count — the warm-started incumbent prunes the bulk of the tree for the
// min-based and modular objectives before any frame is explored, and on
// multi-core hardware the frames then divide the surviving work. The
// "nodes/op" metric records visited search-tree nodes so the pruning effect
// is visible independently of the host's core count.
func BenchmarkParallelSearch(b *testing.B) {
	kinds := []struct {
		name string
		kind objective.Kind
	}{
		{"FMS", objective.MaxSum},
		{"FMM", objective.MaxMin},
		{"Fmono", objective.Mono},
	}
	for _, k := range kinds {
		for _, workers := range []int{1, 2, 4} {
			name := fmt.Sprintf("%s/seq", k.name)
			if workers > 1 {
				name = fmt.Sprintf("%s/par%d", k.name, workers)
			}
			b.Run(name, func(b *testing.B) {
				rng := rand.New(rand.NewSource(42))
				in := workload.Points(rng, 30, 2, 64, k.kind, 0.5, 8)
				in.Parallelism = workers
				in.Answers()
				in.Plane() // build the shared plane outside the loop
				b.ResetTimer()
				nodes := 0
				for i := 0; i < b.N; i++ {
					res, err := solver.QRDBestContext(context.Background(), in)
					if err != nil {
						b.Fatal(err)
					}
					nodes = res.Stats.Nodes
				}
				b.ReportMetric(float64(nodes), "nodes/op")
			})
		}
	}
}

// BenchmarkDiversifyBatch measures the batch API against a sequential loop
// of standalone solves over the same variants: the batch shares one cached
// plane and runs items on a worker pool.
func BenchmarkDiversifyBatch(b *testing.B) {
	e := NewEngine()
	e.MustCreateTable("items", "id", "category", "price")
	for i := 0; i < 28; i++ {
		e.MustInsert("items", i, []string{"book", "toy", "jewelry", "fashion", "artsy"}[i%5], 10+(i*37)%90)
	}
	const src = "Q(id, category, price) :- items(id, category, price), price <= 99"
	opts := []Option{
		WithK(6), WithObjective(MaxMin), WithAlgorithm(Exact),
		WithRelevance(func(r Row) float64 { return 100 - float64(r.Get("price").(int64)) }),
		WithDistance(func(x, y Row) float64 {
			if x.Get("category") == y.Get("category") {
				return 0
			}
			return 1 + math.Abs(float64(x.Get("price").(int64))-float64(y.Get("price").(int64)))/90
		}),
	}
	var items []BatchItem
	for _, lambda := range []float64{0, 0.25, 0.5, 0.75, 1} {
		for _, k := range []int{4, 5, 6} {
			items = append(items, BatchItem{Opts: []Option{WithLambda(lambda), WithK(k)}})
		}
	}
	ctx := context.Background()
	b.Run("batch", func(b *testing.B) {
		p := e.MustPrepare(src, opts...)
		if _, err := p.Diversify(ctx); err != nil { // warm the plane
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.DiversifyBatch(ctx, items); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("loop", func(b *testing.B) {
		p := e.MustPrepare(src, opts...)
		if _, err := p.Diversify(ctx); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, item := range items {
				if _, err := p.Diversify(ctx, item.Opts...); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkIncrementalRefresh measures the PR 4 tentpole: bringing a
// Prepared handle's caches current after a single-tuple insert, with the
// change journal (delta evaluation + plane extension) against the
// rebuild-on-every-mutation path it replaced (WithIncrementalRefresh(false):
// full re-evaluation plus an O(n²) plane refill — the cost every mutation
// paid before the journal existed). Each iteration inserts one fresh point
// and refreshes; the delta path re-scores only the n pairs touching the new
// tuple.
func BenchmarkIncrementalRefresh(b *testing.B) {
	for _, n := range []int{200, 400} {
		for _, mode := range []string{"delta", "rebuild"} {
			b.Run(fmt.Sprintf("n%d/%s", n, mode), func(b *testing.B) {
				e := NewEngine()
				e.MustCreateTable("P", "c0", "c1")
				rng := rand.New(rand.NewSource(42))
				seen := map[[2]int64]bool{}
				fresh := func() [2]int64 {
					for {
						pt := [2]int64{rng.Int63n(1 << 20), rng.Int63n(1 << 20)}
						if !seen[pt] {
							seen[pt] = true
							return pt
						}
					}
				}
				for i := 0; i < n; i++ {
					pt := fresh()
					e.MustInsert("P", pt[0], pt[1])
				}
				opts := []Option{
					WithK(5), WithObjective(MaxSum), WithLambda(0.5), WithAlgorithm(Greedy),
					WithRelevance(func(r Row) float64 { return float64(r.Get("c0").(int64)) / (1 << 20) }),
					WithDistance(func(x, y Row) float64 {
						dx := float64(x.Get("c0").(int64) - y.Get("c0").(int64))
						dy := float64(x.Get("c1").(int64) - y.Get("c1").(int64))
						return math.Sqrt(dx*dx + dy*dy)
					}),
				}
				if mode == "rebuild" {
					opts = append(opts, WithIncrementalRefresh(false))
				}
				p := e.MustPrepare("Q(c0, c1) :- P(c0, c1)", opts...)
				ctx := context.Background()
				if _, err := p.Refresh(ctx); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					pt := fresh()
					e.MustInsert("P", pt[0], pt[1])
					info, err := p.Refresh(ctx)
					if err != nil {
						b.Fatal(err)
					}
					if info.Mode != mode {
						b.Fatalf("refresh mode = %q, want %q", info.Mode, mode)
					}
				}
			})
		}
	}
}

// benchTuple is the deterministic row stream the recovery benchmarks
// persist and rebuild: mixed int/float columns like the points workloads.
func benchTuple(i int) relation.Tuple {
	return relation.Tuple{value.Int(int64(i * 37 % (1 << 20))), value.Float(float64(i) / 7)}
}

// benchMutate drives n inserts (plus the schema Add) through a tapped
// database, producing the WAL history the recovery arms consume.
func benchMutate(db *relation.Database, n int) {
	db.Add(relation.NewRelation(relation.NewSchema("P", "c0", "c1")))
	r := db.Relation("P")
	for i := 0; i < n; i++ {
		r.Insert(benchTuple(i))
	}
}

// BenchmarkRecovery measures the PR 6 warm-restart claim: reconstructing an
// n-row database from the durability subsystem — full log replay (crash
// with no snapshot) and snapshot load (the post-checkpoint fast path) —
// against the cold in-memory rebuild a restart cost before the WAL existed.
// Replay re-runs every mutation through the relation layer, so it tracks
// the rebuild arm plus decoding; the snapshot arm skips per-mutation work
// entirely and is the reason the snapshot cadence exists.
func BenchmarkRecovery(b *testing.B) {
	for _, n := range []int{200, 400} {
		// One directory per shape, prepared outside the timed loops.
		replayDir, snapDir := b.TempDir(), b.TempDir()
		for _, arm := range []struct {
			dir  string
			snap bool
		}{{replayDir, false}, {snapDir, true}} {
			l, err := wal.Create(arm.dir, wal.Options{Fsync: wal.FsyncOff})
			if err != nil {
				b.Fatal(err)
			}
			db := relation.NewDatabase()
			db.SetTap(l)
			benchMutate(db, n)
			if arm.snap {
				if _, err := l.Snapshot(db); err != nil {
					b.Fatal(err)
				}
			}
			if err := l.Close(); err != nil {
				b.Fatal(err)
			}
		}
		recoverArm := func(b *testing.B, dir string) {
			b.Helper()
			for i := 0; i < b.N; i++ {
				db, _, err := wal.Recover(dir)
				if err != nil {
					b.Fatal(err)
				}
				if db.Size() != n {
					b.Fatalf("recovered %d tuples, want %d", db.Size(), n)
				}
			}
		}
		b.Run(fmt.Sprintf("n%d/replay", n), func(b *testing.B) { recoverArm(b, replayDir) })
		b.Run(fmt.Sprintf("n%d/snapshot", n), func(b *testing.B) { recoverArm(b, snapDir) })
		b.Run(fmt.Sprintf("n%d/rebuild", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				db := relation.NewDatabase()
				benchMutate(db, n)
				if db.Size() != n {
					b.Fatalf("rebuilt %d tuples, want %d", db.Size(), n)
				}
			}
		})
	}
}
