// Command divcli runs diversified queries from the command line. It loads
// relations from tab-separated files (one file per relation, first line the
// schema), prepares a query in the rule syntax once, and selects a diverse
// top-k under one of the paper's three objective functions.
//
// Usage:
//
//	divcli -load catalog=catalog.tsv -query 'Q(item, type, price) :- catalog(item, type, price, s), price <= 30' \
//	       -k 3 -objective max-sum -lambda 0.7 -distance-attr type
//
//	divcli -demo -k 4 -objective max-min          # built-in gift-shop demo
//
// Flags:
//
//	-load name=file     load a relation (repeatable)
//	-demo               use the built-in Example 1.1 gift-shop database
//	-query Q            the query; required unless -demo supplies a default
//	-k N                number of results to select
//	-objective F        max-sum | max-min | mono
//	-lambda X           relevance/diversity trade-off in [0,1]
//	-relevance-attr A   numeric attribute used as δrel (default: constant 1)
//	-distance-attr A    attribute whose inequality defines δdis (default: zero)
//	-constraint C       compatibility constraint in Cm syntax (repeatable)
//	-algorithm A        auto | exact | greedy | local-search | online
//	-count B            instead of selecting, count the k-sets with F >= B
//	-updates file.tsv   replay an update stream (divgen -stream) between
//	                    solves: each line inserts (or, with a leading "-" on
//	                    the relation name, deletes) a tuple; "--" re-solves.
//	                    The prepared handle refreshes incrementally where
//	                    the query allows, and each checkpoint reports the
//	                    refresh mode (delta vs rebuild) and the delta size
//	-timeout D          abort long-running (exponential) solves after D, e.g. 30s
//	-parallel N         exact-search workers (0 = all cores, 1 = sequential);
//	                    results are byte-identical to the sequential search
//	-batch SPEC         solve an extra variant concurrently over the shared
//	                    plane (repeatable), e.g. -batch k=4,lambda=0.8,objective=max-min
//	-explain            print the query's language class and the answer set
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro"
	"repro/internal/load"
	"repro/internal/tsvio"
)

// multiFlag collects repeatable string flags.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var (
		loads       multiFlag
		constraints multiFlag
		batches     multiFlag
		demo        = flag.Bool("demo", false, "use the built-in gift-shop database")
		querySrc    = flag.String("query", "", "query in rule syntax")
		k           = flag.Int("k", 3, "number of results to select")
		objName     = flag.String("objective", "max-sum", "max-sum | max-min | mono")
		lambda      = flag.Float64("lambda", 0.5, "trade-off λ in [0,1]")
		relAttr     = flag.String("relevance-attr", "", "numeric attribute used as relevance")
		disAttr     = flag.String("distance-attr", "", "attribute whose inequality is the distance")
		algName     = flag.String("algorithm", "auto", "auto | exact | greedy | local-search | online")
		countBound  = flag.Float64("count", -1, "count valid k-sets with F >= bound instead of selecting")
		updates     = flag.String("updates", "", "replay an update stream between solves (see divgen -stream)")
		timeout     = flag.Duration("timeout", 0, "abort the solve after this long (0 = no limit)")
		parallel    = flag.Int("parallel", 1, "exact-search workers (0 = all cores, 1 = sequential)")
		explain     = flag.Bool("explain", false, "print language class and the full answer set")
	)
	flag.Var(&loads, "load", "relation to load, as name=file.tsv (repeatable)")
	flag.Var(&constraints, "constraint", "compatibility constraint in Cm syntax (repeatable)")
	flag.Var(&batches, "batch", "extra variant to solve concurrently, as k=N,lambda=X,objective=F,algorithm=A (repeatable)")
	flag.Parse()

	e := diversification.NewEngine()
	switch {
	case *demo:
		load.Demo(e)
		if *querySrc == "" {
			*querySrc = "Q(item, type, price) :- catalog(item, type, price, s), price <= 40"
		}
	case len(loads) > 0:
		for _, spec := range loads {
			name, file, ok := strings.Cut(spec, "=")
			if !ok {
				fatalf("bad -load %q: want name=file.tsv", spec)
			}
			if err := load.TSV(e, name, file); err != nil {
				fatalf("loading %s: %v", spec, err)
			}
		}
	default:
		fmt.Fprintln(os.Stderr, "divcli: need -demo or at least one -load name=file.tsv")
		flag.Usage()
		os.Exit(2)
	}
	if *querySrc == "" {
		fatalf("need -query")
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *explain {
		lang, err := e.Language(*querySrc)
		if err != nil {
			fatalf("query: %v", err)
		}
		fmt.Printf("language class: %s\n", lang)
		rs, err := e.QueryContext(ctx, *querySrc)
		if err != nil {
			fatalf("query: %v", err)
		}
		fmt.Printf("answer set Q(D): %d tuples\n", rs.Len())
		for i := 0; i < rs.Len(); i++ {
			fmt.Printf("  %s\n", rs.Row(i))
		}
		fmt.Println()
	}

	objective, err := diversification.ParseObjective(*objName)
	if err != nil {
		fatalf("%v", err)
	}
	algorithm, err := diversification.ParseAlgorithm(*algName)
	if err != nil {
		fatalf("%v", err)
	}
	opts := []diversification.Option{
		diversification.WithK(*k),
		diversification.WithObjective(objective),
		diversification.WithLambda(*lambda),
		diversification.WithAlgorithm(algorithm),
		diversification.WithConstraints(constraints...),
	}
	// Only pass the option when -parallel was given explicitly: the library
	// defaults DiversifyBatch's pool to GOMAXPROCS when the option is
	// absent, and an unconditional WithParallelism(1) would serialize -batch.
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "parallel" {
			opts = append(opts, diversification.WithParallelism(*parallel))
		}
	})
	if *relAttr != "" {
		opts = append(opts, diversification.WithRelevance(diversification.AttrRelevance(*relAttr)))
	}
	if *disAttr != "" {
		opts = append(opts, diversification.WithDistance(diversification.AttrDistance(*disAttr)))
	}

	p, err := e.Prepare(*querySrc, opts...)
	if err != nil {
		fatalf("prepare: %v", err)
	}

	if *countBound >= 0 {
		n, err := p.Count(ctx, diversification.WithBound(*countBound))
		if err != nil {
			fatalf("count: %v", err)
		}
		fmt.Printf("valid %d-sets with F >= %g: %s\n", *k, *countBound, n)
		return
	}

	if len(batches) > 0 {
		runBatch(ctx, p, batches, *k, *lambda, objective, algorithm)
		return
	}

	if *updates != "" {
		runUpdates(ctx, e, p, *updates)
		return
	}

	// The main solve goes through the request pipeline rather than bare
	// Diversify: under a -timeout too tight for the exact route the plan
	// degrades to greedy (or the solver abandons mid-search and returns its
	// greedy incumbent), and the response says so instead of timing out.
	resp, err := p.Do(ctx, diversification.Request{Problem: diversification.ProblemDiversify})
	if err != nil {
		fatalf("diversify: %v", err)
	}
	if resp.Degraded {
		fmt.Printf("degraded: %s abandoned under deadline pressure; selection below is approximate (greedy)\n", resp.DegradedFrom)
	}
	sel := resp.Selection
	fmt.Printf("selected %d of the answers (%s, F = %.4f):\n", len(sel.Rows), sel.Method, sel.Value)
	for _, r := range sel.Rows {
		fmt.Printf("  %s\n", r)
	}
}

// runUpdates replays an update stream against the engine, re-solving the
// prepared query at every checkpoint. The handle's caches are maintained
// incrementally by the relation change journal when the query allows it;
// each checkpoint line reports which path the refresh took.
func runUpdates(ctx context.Context, e *diversification.Engine, p *diversification.Prepared, file string) {
	f, err := os.Open(file)
	if err != nil {
		fatalf("updates: %v", err)
	}
	stream, err := tsvio.ReadUpdates(f)
	f.Close()
	if err != nil {
		fatalf("updates: %v", err)
	}
	solve := func(label string) {
		info, err := p.Refresh(ctx)
		if err != nil {
			fatalf("%s: refresh: %v", label, err)
		}
		fmt.Printf("[%s] refresh=%s added=%d removed=%d answers=%d\n",
			label, info.Mode, info.Added, info.Removed, info.Answers)
		sel, err := p.Diversify(ctx)
		if err != nil {
			fatalf("%s: diversify: %v", label, err)
		}
		fmt.Printf("  selected %d of the answers (%s, F = %.4f):\n", len(sel.Rows), sel.Method, sel.Value)
		for _, r := range sel.Rows {
			fmt.Printf("    %s\n", r)
		}
	}
	solve("base")
	batch, applied := 0, 0
	apply := func(u tsvio.Update) {
		vals := make([]interface{}, len(u.Tuple))
		for i, v := range u.Tuple {
			vals[i] = v
		}
		if u.Delete {
			ok, err := e.Delete(u.Rel, vals...)
			if err != nil {
				fatalf("updates: delete %s%s: %v", u.Rel, u.Tuple, err)
			}
			if !ok {
				// A delete of an absent tuple means the stream does not
				// match the loaded base data; fail loudly rather than
				// replay a silently wrong transcript.
				fatalf("updates: delete %s%s: tuple not present (stream/base mismatch?)", u.Rel, u.Tuple)
			}
		} else if err := e.Insert(u.Rel, vals...); err != nil {
			fatalf("updates: insert %s%s: %v", u.Rel, u.Tuple, err)
		}
		applied++
	}
	for _, u := range stream {
		if u.Checkpoint {
			batch++
			fmt.Printf("applied %d updates\n", applied)
			solve(fmt.Sprintf("batch %d", batch))
			applied = 0
			continue
		}
		apply(u)
	}
	if applied > 0 {
		batch++
		fmt.Printf("applied %d updates\n", applied)
		solve(fmt.Sprintf("batch %d", batch))
	}
}

// runBatch solves the base variant plus every -batch spec concurrently over
// the shared score plane and prints each selection in spec order.
func runBatch(ctx context.Context, p *diversification.Prepared, specs []string, k int, lambda float64, obj diversification.Objective, alg diversification.Algorithm) {
	labels := []string{fmt.Sprintf("base (k=%d, lambda=%g, %s, %s)", k, lambda, obj, alg)}
	items := []diversification.BatchItem{{}}
	for _, spec := range specs {
		opts, err := parseBatchSpec(spec)
		if err != nil {
			fatalf("bad -batch %q: %v", spec, err)
		}
		labels = append(labels, spec)
		items = append(items, diversification.BatchItem{Opts: opts})
	}
	results, err := p.DiversifyBatch(ctx, items)
	if err != nil {
		fatalf("batch: %v", err)
	}
	failed := false
	for i, res := range results {
		fmt.Printf("[%s]\n", labels[i])
		if res.Err != nil {
			failed = true
			fmt.Printf("  error: %v\n", res.Err)
			continue
		}
		fmt.Printf("  selected %d of the answers (%s, F = %.4f):\n", len(res.Selection.Rows), res.Selection.Method, res.Selection.Value)
		for _, r := range res.Selection.Rows {
			fmt.Printf("    %s\n", r)
		}
	}
	if failed {
		// Scripts checking the exit status must see failed variants, just
		// as the same solve failing without -batch exits 1.
		os.Exit(1)
	}
}

// parseBatchSpec turns "k=4,lambda=0.8,objective=max-min,algorithm=exact"
// into per-item options.
func parseBatchSpec(spec string) ([]diversification.Option, error) {
	var opts []diversification.Option
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("field %q is not key=value", field)
		}
		switch key {
		case "k":
			n, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("k: %v", err)
			}
			opts = append(opts, diversification.WithK(n))
		case "lambda":
			x, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("lambda: %v", err)
			}
			opts = append(opts, diversification.WithLambda(x))
		case "objective":
			o, err := diversification.ParseObjective(val)
			if err != nil {
				return nil, err
			}
			opts = append(opts, diversification.WithObjective(o))
		case "algorithm":
			a, err := diversification.ParseAlgorithm(val)
			if err != nil {
				return nil, err
			}
			opts = append(opts, diversification.WithAlgorithm(a))
		default:
			return nil, fmt.Errorf("unknown field %q (want k, lambda, objective or algorithm)", key)
		}
	}
	return opts, nil
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "divcli: "+format+"\n", args...)
	os.Exit(1)
}
