// Command divgen generates synthetic workload data as tab-separated files
// that divcli can load. It covers the paper's motivating scenarios: the
// Example 1.1 gift-shop schema (catalog + purchase history), random points
// for dispersion-style diversification, and clustered points where diverse
// and relevant selections disagree.
//
// With -stream N it also emits a dynamic workload: updates.tsv holds N
// timed inserts (a solve checkpoint every -stream-batch of them) that
// divcli -updates replays between solves, exercising the incremental
// refresh path.
//
// Usage:
//
//	divgen -workload gift -catalog 100 -history 300 -dir ./data
//	divgen -workload points -n 200 -dim 3 -side 1000 -dir ./data
//	divgen -workload points -n 200 -stream 50 -stream-batch 10 -dir ./data
//	divgen -workload clustered -clusters 5 -per 40 -dir ./data
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/relation"
	"repro/internal/tsvio"
	"repro/internal/workload"
)

func main() {
	var (
		kind     = flag.String("workload", "gift", "gift | points | clustered")
		dir      = flag.String("dir", ".", "output directory")
		seed     = flag.Int64("seed", 1, "random seed")
		nCatalog = flag.Int("catalog", 100, "gift: catalog rows")
		nHistory = flag.Int("history", 300, "gift: history rows")
		n        = flag.Int("n", 200, "points: number of points")
		dim      = flag.Int("dim", 2, "points: dimensions")
		side     = flag.Int64("side", 1000, "points: coordinate range")
		clusters = flag.Int("clusters", 5, "clustered: cluster count")
		per      = flag.Int("per", 40, "clustered: points per cluster")
		spread   = flag.Int64("spread", 25, "clustered: intra-cluster spread")
		stream   = flag.Int("stream", 0, "gift/points: also emit updates.tsv with this many timed inserts")
		streamB  = flag.Int("stream-batch", 1, "inserts per solve checkpoint in the update stream")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var db *relation.Database
	var updates []tsvio.Update
	switch *kind {
	case "gift":
		if *stream > 0 {
			db, updates = workload.DynamicGift(rng, *nCatalog, *nHistory, *stream, *streamB)
		} else {
			db = workload.GiftShop(rng, *nCatalog, *nHistory)
		}
	case "points":
		if *stream > 0 {
			db, updates = workload.DynamicPoints(rng, *n, *stream, *streamB, *dim, *side)
		} else {
			in := workload.Points(rng, *n, *dim, *side, 0, 0.5, 1)
			db = in.DB
		}
	case "clustered":
		in := workload.Clustered(rng, *clusters, *per, *side, *spread, 0, 0.5, 1)
		db = in.DB
	default:
		fmt.Fprintf(os.Stderr, "divgen: unknown workload %q\n", *kind)
		os.Exit(2)
	}

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "divgen: %v\n", err)
		os.Exit(1)
	}
	for _, name := range db.Names() {
		path := filepath.Join(*dir, name+".tsv")
		if err := writeTSV(path, db.Relation(name)); err != nil {
			fmt.Fprintf(os.Stderr, "divgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d rows)\n", path, db.Relation(name).Len())
	}
	if len(updates) > 0 {
		path := filepath.Join(*dir, "updates.tsv")
		if err := writeUpdates(path, updates); err != nil {
			fmt.Fprintf(os.Stderr, "divgen: %v\n", err)
			os.Exit(1)
		}
		checkpoints := 0
		for _, u := range updates {
			if u.Checkpoint {
				checkpoints++
			}
		}
		fmt.Printf("wrote %s (%d inserts, %d checkpoints)\n", path, len(updates)-checkpoints, checkpoints)
	}
}

// writeUpdates emits the update stream in divcli's -updates format.
func writeUpdates(path string, updates []tsvio.Update) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return tsvio.WriteUpdates(f, updates)
}

// writeTSV emits the relation with a header line of attribute names.
func writeTSV(path string, r *relation.Relation) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return tsvio.Write(f, r)
}
