// Command divgen generates synthetic workload data as tab-separated files
// that divcli can load. It covers the paper's motivating scenarios: the
// Example 1.1 gift-shop schema (catalog + purchase history), random points
// for dispersion-style diversification, and clustered points where diverse
// and relevant selections disagree.
//
// With -stream N it also emits a dynamic workload: updates.tsv holds N
// timed inserts (a solve checkpoint every -stream-batch of them) that
// divcli -updates replays between solves, exercising the incremental
// refresh path.
//
// Usage:
//
//	divgen -workload gift -catalog 100 -history 300 -dir ./data
//	divgen -workload points -n 200 -dim 3 -side 1000 -dir ./data
//	divgen -workload points -n 200 -stream 50 -stream-batch 10 -dir ./data
//	divgen -workload clustered -clusters 5 -per 40 -dir ./data
//	divgen -workload clustered -clusters 50 -n 100000 -dir ./data
//	divgen -workload replay -requests 2000 -shapes 16 -zipf-s 1.3 -dir ./data
//
// The replay workload emits replay.tsv: a zipf-skewed stream of request
// shapes (problem, k, lambda, bound) against a single statement — the
// access pattern the serving tier's result cache is measured against.
// divbench -cache-replay drives the same generator in-process and reports
// hit-rate and latency percentiles.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/relation"
	"repro/internal/tsvio"
	"repro/internal/workload"
)

func main() {
	var (
		kind     = flag.String("workload", "gift", "gift | points | clustered")
		dir      = flag.String("dir", ".", "output directory")
		seed     = flag.Int64("seed", 1, "random seed")
		nCatalog = flag.Int("catalog", 100, "gift: catalog rows")
		nHistory = flag.Int("history", 300, "gift: history rows")
		n        = flag.Int("n", 200, "points: number of points; clustered: total points (overrides -per)")
		dim      = flag.Int("dim", 2, "points: dimensions")
		side     = flag.Int64("side", 1000, "points: coordinate range")
		clusters = flag.Int("clusters", 5, "clustered: cluster count")
		per      = flag.Int("per", 40, "clustered: points per cluster")
		spread   = flag.Int64("spread", 25, "clustered: intra-cluster spread")
		stream   = flag.Int("stream", 0, "gift/points: also emit updates.tsv with this many timed inserts")
		streamB  = flag.Int("stream-batch", 1, "inserts per solve checkpoint in the update stream")
		requests = flag.Int("requests", 2000, "replay: number of requests in the stream")
		shapes   = flag.Int("shapes", 16, "replay: distinct request shapes in the universe")
		zipfS    = flag.Float64("zipf-s", 1.3, "replay: zipf skew over the shapes (<=1 = uniform)")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	if *kind == "replay" {
		if err := writeReplay(*dir, rng, *shapes, *requests, *zipfS); err != nil {
			fmt.Fprintf(os.Stderr, "divgen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	var db *relation.Database
	var updates []tsvio.Update
	switch *kind {
	case "gift":
		if *stream > 0 {
			db, updates = workload.DynamicGift(rng, *nCatalog, *nHistory, *stream, *streamB)
		} else {
			db = workload.GiftShop(rng, *nCatalog, *nHistory)
		}
	case "points":
		if *stream > 0 {
			db, updates = workload.DynamicPoints(rng, *n, *stream, *streamB, *dim, *side)
		} else {
			in := workload.Points(rng, *n, *dim, *side, 0, 0.5, 1)
			db = in.DB
		}
	case "clustered":
		// An explicit -n sets the total point count for the large-n scaling
		// runs (10⁵–10⁶ candidates): it wins over -per, which then derives
		// as ⌈n/clusters⌉.
		perCluster := *per
		nSet := false
		flag.Visit(func(f *flag.Flag) { nSet = nSet || f.Name == "n" })
		if nSet {
			perCluster = (*n + *clusters - 1) / *clusters
		}
		in := workload.Clustered(rng, *clusters, perCluster, *side, *spread, 0, 0.5, 1)
		db = in.DB
	default:
		fmt.Fprintf(os.Stderr, "divgen: unknown workload %q (want gift | points | clustered | replay)\n", *kind)
		os.Exit(2)
	}

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "divgen: %v\n", err)
		os.Exit(1)
	}
	for _, name := range db.Names() {
		path := filepath.Join(*dir, name+".tsv")
		if err := writeTSV(path, db.Relation(name)); err != nil {
			fmt.Fprintf(os.Stderr, "divgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d rows)\n", path, db.Relation(name).Len())
	}
	if len(updates) > 0 {
		path := filepath.Join(*dir, "updates.tsv")
		if err := writeUpdates(path, updates); err != nil {
			fmt.Fprintf(os.Stderr, "divgen: %v\n", err)
			os.Exit(1)
		}
		checkpoints := 0
		for _, u := range updates {
			if u.Checkpoint {
				checkpoints++
			}
		}
		fmt.Printf("wrote %s (%d inserts, %d checkpoints)\n", path, len(updates)-checkpoints, checkpoints)
	}
}

// writeReplay emits a zipfian-statement request stream as replay.tsv: one
// request per line, drawn from a deterministic shape universe with a
// zipf-skewed popularity. Repeats are the point — the stream is what a
// result cache is measured against (divbench -cache-replay drives the same
// generator in-process) — so the rows go out verbatim, not deduplicated
// through a relation.
func writeReplay(dir string, rng *rand.Rand, shapes, requests int, s float64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	universe := workload.ReplayShapes(shapes)
	mix := workload.ZipfMix(rng, len(universe), requests, s)
	path := filepath.Join(dir, "replay.tsv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, "problem\tk\tlambda\tbound")
	hist := make([]int, len(universe))
	for _, idx := range mix {
		sh := universe[idx]
		fmt.Fprintf(w, "%s\t%d\t%g\t%g\n", sh.Problem, sh.K, sh.Lambda, sh.Bound)
		hist[idx]++
	}
	if err := w.Flush(); err != nil {
		return err
	}
	hottest := 0
	for _, n := range hist {
		if n > hottest {
			hottest = n
		}
	}
	fmt.Printf("wrote %s (%d requests over %d shapes, zipf s=%g, hottest shape %.0f%%)\n",
		path, requests, len(universe), s, 100*float64(hottest)/float64(requests))
	return nil
}

// writeUpdates emits the update stream in divcli's -updates format.
func writeUpdates(path string, updates []tsvio.Update) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return tsvio.WriteUpdates(f, updates)
}

// writeTSV emits the relation with a header line of attribute names.
func writeTSV(path string, r *relation.Relation) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return tsvio.Write(f, r)
}
