package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/objective"
	"repro/internal/workload"
)

// planeRegimesReport is the JSON the -plane-regimes experiment emits: the
// plane build time, greedy FMS/FMM solve times and resident plane bytes per
// (n, regime) arm, for uniform and clustered metric point workloads.
type planeRegimesReport struct {
	Dim     int               `json:"dim"`
	K       int               `json:"k"`
	Lambda  float64           `json:"lambda"`
	Seed    int64             `json:"seed"`
	MaxN    int               `json:"max_n"`
	Results []planeRegimeArm  `json:"results"`
	Auto    []planeAutoChoice `json:"auto"`
}

// planeRegimeArm is one measured (workload, n, regime) cell. Arms whose
// requested quadratic store exceeds the memory guard are recorded skipped
// (the plane degrades to the memo cache, which has its own arm) instead of
// measured twice.
type planeRegimeArm struct {
	Workload   string `json:"workload"`
	N          int    `json:"n"`
	Regime     string `json:"regime"`
	Resolved   string `json:"resolved,omitempty"`
	Skipped    bool   `json:"skipped,omitempty"`
	BuildNs    int64  `json:"build_ns,omitempty"`
	FMSNs      int64  `json:"fms_ns,omitempty"`
	FMMNs      int64  `json:"fmm_ns,omitempty"`
	PlaneBytes int64  `json:"plane_bytes,omitempty"`
	MemoEntr   int64  `json:"memo_entries,omitempty"`
	MemoEvict  int64  `json:"memo_evictions,omitempty"`
}

// planeAutoChoice records what RegimeAuto resolves to at each n, so the
// report pins the planner's selection rule alongside the measurements.
type planeAutoChoice struct {
	N      int    `json:"n"`
	Regime string `json:"regime"`
}

// runPlaneRegimes sweeps the plane's storage regimes over growing metric
// point sets: for each n and each regime that holds the default 64 MiB
// guard, it builds the plane store, runs greedy FMS and FMM over it, and
// records wall times plus the plane's estimated resident bytes. The sweep
// is the evidence for the regime-selection rule: the matrix wins small n,
// the tiles stretch the guard ~2x, and the metric index is the only store
// whose bytes stay O(n) at 10^5 and beyond.
func runPlaneRegimes(maxN int, seed int64) {
	const dim, k, lambda = 2, 10, 0.5
	sizes := []int{2_000, 5_000, 20_000, 100_000}
	regimes := []objective.Regime{
		objective.RegimeMaterialized, objective.RegimeTiled,
		objective.RegimeIndexed, objective.RegimeMemoized,
	}
	rep := planeRegimesReport{Dim: dim, K: k, Lambda: lambda, Seed: seed, MaxN: maxN}

	for _, n := range sizes {
		if n > maxN {
			continue
		}
		for _, kind := range []string{"uniform", "clustered"} {
			base := regimePointsInstance(kind, n, dim, k, lambda, seed)
			answers := base.Answers()
			for _, regime := range regimes {
				arm := planeRegimeArm{Workload: kind, N: n, Regime: regime.String()}
				in := regimePointsInstance(kind, n, dim, k, lambda, seed)
				in.SetAnswers(answers)
				in.PlaneRegime = regime

				ctx := context.Background()
				start := time.Now()
				plane, err := in.PlaneContext(ctx)
				if err != nil {
					fatal(err)
				}
				if err := plane.EnsureReadyContext(ctx); err != nil {
					fatal(err)
				}
				arm.BuildNs = time.Since(start).Nanoseconds()
				arm.Resolved = plane.Regime().String()
				if plane.Regime() != regime {
					// The guard degraded the request (e.g. the matrix at
					// n=20000 needs ~1.6 GB): the resolved regime has its
					// own arm, so record the refusal and move on.
					arm.Skipped = true
					arm.BuildNs = 0
					rep.Results = append(rep.Results, arm)
					continue
				}

				start = time.Now()
				sum, err := approx.GreedyMaxSumContext(ctx, in)
				if err != nil {
					fatal(err)
				}
				arm.FMSNs = time.Since(start).Nanoseconds()

				inMin := regimePointsInstance(kind, n, dim, k, lambda, seed)
				inMin.Obj = objective.New(objective.MaxMin, inMin.Obj.Rel, inMin.Obj.Dis, lambda)
				inMin.SetAnswers(answers)
				inMin.SetPlane(plane)
				start = time.Now()
				min, err := approx.GreedyMaxMinContext(ctx, inMin)
				if err != nil {
					fatal(err)
				}
				arm.FMMNs = time.Since(start).Nanoseconds()
				if len(sum.Set) != k || len(min.Set) != k {
					fatal(fmt.Errorf("plane-regimes: n=%d %s picked %d/%d of k=%d",
						n, regime, len(sum.Set), len(min.Set), k))
				}

				arm.PlaneBytes = plane.MemoryFootprint()
				arm.MemoEntr, arm.MemoEvict = plane.MemoStats()
				rep.Results = append(rep.Results, arm)
			}
		}
		auto := regimePointsInstance("uniform", n, dim, k, lambda, seed)
		plane, err := auto.PlaneContext(context.Background())
		if err != nil {
			fatal(err)
		}
		rep.Auto = append(rep.Auto, planeAutoChoice{N: n, Regime: plane.Regime().String()})
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(out))
}

// regimePointsInstance builds the sweep's FMS point instance: n uniform or
// clustered integer points on a million-unit grid under Euclidean δdis.
func regimePointsInstance(kind string, n, dim, k int, lambda float64, seed int64) *core.Instance {
	rng := rand.New(rand.NewSource(seed))
	if kind == "clustered" {
		clusters := 50
		per := (n + clusters - 1) / clusters
		return workload.Clustered(rng, clusters, per, 1_000_000, 25_000, objective.MaxSum, lambda, k)
	}
	return workload.Points(rng, n, dim, 1_000_000, objective.MaxSum, lambda, k)
}
