package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"

	diversification "repro"
	"repro/internal/workload"
)

// cacheReplayReport is the JSON the -cache-replay experiment emits: the
// serving tier's result cache measured against a zipf-skewed statement
// replay, cached and uncached arms over the identical request stream.
type cacheReplayReport struct {
	Requests  int     `json:"requests"`
	Shapes    int     `json:"shapes"`
	ZipfS     float64 `json:"zipf_s"`
	CatalogN  int     `json:"catalog_rows"`
	HitRate   float64 `json:"hit_rate"`
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Coalesced int64   `json:"coalesced"`
	Identical bool    `json:"responses_identical"`

	Cached   replayLatencies `json:"cached_ns"`
	Uncached replayLatencies `json:"uncached_ns"`
	Speedup  struct {
		P50  float64 `json:"p50"`
		P99  float64 `json:"p99"`
		Mean float64 `json:"mean"`
	} `json:"speedup"`
}

type replayLatencies struct {
	P50  int64 `json:"p50"`
	P99  int64 `json:"p99"`
	Mean int64 `json:"mean"`
}

// runCacheReplay measures the result cache on a zipfian statement replay:
// one gift-shop statement, nShapes distinct request shapes, nReq requests
// drawn zipf(s). Both arms replay the identical stream against the same
// engine; every cached-arm response must be byte-identical (scrubbed of
// elapsed_ns and the cached marker) to the uncached arm's response for
// the same shape, or the run fails.
func runCacheReplay(nReq, nShapes int, zipfS float64, seed int64) {
	const catalogN = 120
	rng := rand.New(rand.NewSource(seed))
	e := diversification.NewEngine()
	e.MustCreateTable("catalog", "item", "type", "price", "inStock")
	types := []string{"jewelry", "book", "toy", "fashion", "artsy", "educational"}
	for i := 0; i < catalogN; i++ {
		e.MustInsert("catalog",
			fmt.Sprintf("item%03d", i),
			types[rng.Intn(len(types))],
			5+rng.Intn(95),
			rng.Intn(20))
	}
	const stmt = "Q(item, type, price) :- catalog(item, type, price, s), price <= 35"
	opts := []diversification.Option{
		diversification.WithObjective(diversification.MaxSum),
		diversification.WithRelevance(diversification.AttrRelevance("price")),
		diversification.WithDistance(diversification.AttrDistance("type")),
	}

	shapes := workload.ReplayShapes(nShapes)
	mix := workload.ZipfMix(rng, len(shapes), nReq, zipfS)
	requests := make([]diversification.Request, len(shapes))
	for i, sh := range shapes {
		k, lambda := sh.K, sh.Lambda
		req := diversification.Request{K: &k, Lambda: &lambda}
		if sh.Problem == "decide" {
			bound := sh.Bound
			req.Problem = diversification.ProblemDecide
			req.Bound = &bound
		}
		requests[i] = req
	}

	run := func(cacheEntries int) ([]time.Duration, [][]byte, diversification.Metrics) {
		svc := diversification.NewService(e, diversification.ServiceConfig{CacheEntries: cacheEntries})
		if err := svc.Register("gifts", stmt, opts...); err != nil {
			fatal(err)
		}
		ctx := context.Background()
		lats := make([]time.Duration, 0, len(mix))
		byShape := make([][]byte, len(shapes))
		for _, idx := range mix {
			start := time.Now()
			resp, err := svc.Do(ctx, "gifts", requests[idx])
			if err != nil {
				fatal(err)
			}
			lats = append(lats, time.Since(start))
			if byShape[idx] == nil {
				byShape[idx] = scrubResponse(resp)
			}
		}
		return lats, byShape, svc.Metrics()
	}

	uncachedLats, uncachedResp, _ := run(-1)
	cachedLats, cachedResp, m := run(0)

	identical := true
	for i := range shapes {
		if string(cachedResp[i]) != string(uncachedResp[i]) {
			identical = false
			fmt.Fprintf(os.Stderr, "divbench: shape %d diverges between arms:\n  cached:   %s\n  uncached: %s\n",
				i, cachedResp[i], uncachedResp[i])
		}
	}

	rep := cacheReplayReport{
		Requests:  nReq,
		Shapes:    nShapes,
		ZipfS:     zipfS,
		CatalogN:  catalogN,
		Hits:      m.Cache.Hits,
		Misses:    m.Cache.Misses,
		Coalesced: m.Cache.Coalesced,
		HitRate:   float64(m.Cache.Hits+m.Cache.Coalesced) / float64(nReq),
		Identical: identical,
		Cached:    summarize(cachedLats),
		Uncached:  summarize(uncachedLats),
	}
	rep.Speedup.P50 = ratio(rep.Uncached.P50, rep.Cached.P50)
	rep.Speedup.P99 = ratio(rep.Uncached.P99, rep.Cached.P99)
	rep.Speedup.Mean = ratio(rep.Uncached.Mean, rep.Cached.Mean)

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(out))
	if !identical {
		fatal(fmt.Errorf("cached responses diverge from the uncached arm"))
	}
}

// scrubResponse strips the per-call advisory fields — elapsed wall clock
// and the cached marker — so responses from the two arms compare
// byte-for-byte on the answer alone.
func scrubResponse(r *diversification.Response) []byte {
	c := *r
	c.Elapsed = 0
	c.Cached = false
	b, err := json.Marshal(&c)
	if err != nil {
		fatal(err)
	}
	return b
}

func summarize(lats []time.Duration) replayLatencies {
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	pct := func(p float64) int64 {
		i := int(p*float64(len(sorted))) - 1
		if i < 0 {
			i = 0
		}
		return int64(sorted[i])
	}
	return replayLatencies{
		P50:  pct(0.50),
		P99:  pct(0.99),
		Mean: int64(sum) / int64(len(sorted)),
	}
}

func ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "divbench: %v\n", err)
	os.Exit(1)
}
