package main

import "testing"

// TestCacheReplaySmoke runs the -cache-replay experiment at a tiny size so
// the replay harness cannot rot: both arms must complete, the cached arm's
// responses must stay byte-identical to the uncached arm's (runCacheReplay
// fatals otherwise), and the report generator must not fatal.
func TestCacheReplaySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cache replay skipped in -short mode")
	}
	runCacheReplay(40, 4, 1.3, 1)
}
