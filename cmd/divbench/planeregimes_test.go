package main

import (
	"testing"

	"repro/internal/objective"
)

// TestPlaneRegimesSweepSmoke runs the -plane-regimes experiment at its
// smallest size so the sweep code cannot rot: every regime arm must build
// and solve (the 2000-point plane fits all four stores under the default
// guard), and the report generator must not fatal.
func TestPlaneRegimesSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("plane-regimes sweep skipped in -short mode")
	}
	runPlaneRegimes(2_000, 1)
}

// TestRegimePointsInstance pins the sweep's two workload shapes: both build
// identity-query instances of the requested size with a metric δdis.
func TestRegimePointsInstance(t *testing.T) {
	for _, kind := range []string{"uniform", "clustered"} {
		in := regimePointsInstance(kind, 500, 2, 5, 0.5, 7)
		if got := len(in.Answers()); got == 0 || got > 500 {
			t.Fatalf("%s: %d answers, want (0, 500]", kind, got)
		}
		if in.Obj.Kind != objective.MaxSum {
			t.Fatalf("%s: kind %v", kind, in.Obj.Kind)
		}
	}
}
