// Command divbench regenerates the tables and figures of Deng & Fan,
// "On the Complexity of Query Result Diversification" (VLDB 2013 / TODS
// 2014), and runs the empirical scaling sweeps that compare observed growth
// against the proved complexity bounds.
//
// Usage:
//
//	divbench -table I            # render Table I (complexity matrix)
//	divbench -table all          # render Tables I, II and III
//	divbench -figure 2           # render a figure (1-5)
//	divbench -sweep              # run every experiment in the catalog
//	divbench -sweep -match RDC   # run experiments whose ID contains "RDC"
//	divbench -budget 2s          # per-size time budget for sweeps
//	divbench -list               # list the experiment catalog
//	divbench -cache-replay       # result cache vs a zipfian statement replay
//	divbench -cache-replay -requests 2000 -shapes 16 -zipf-s 1.3
//	divbench -plane-regimes      # plane storage regimes vs n (matrix/tiles/index/memo)
//	divbench -plane-regimes -regime-max-n 20000
//	divbench -cluster            # sharded coreset merge vs a single engine
//	divbench -cluster -cluster-max-n 10000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/reduction"
)

func main() {
	var (
		table  = flag.String("table", "", "render a paper table: I, II, III or all")
		figure = flag.String("figure", "", "render a paper figure: 1, 2, 3, 4, 5 or all")
		sweep  = flag.Bool("sweep", false, "run the empirical scaling sweeps")
		match  = flag.String("match", "", "substring filter for sweep experiment IDs")
		budget = flag.Duration("budget", 2*time.Second, "per-size time budget for sweeps")
		list   = flag.Bool("list", false, "list the experiment catalog and exit")

		planeRegimes = flag.Bool("plane-regimes", false, "sweep the score plane's storage regimes (matrix/tiles/index/memo) over growing point sets")
		regimeMaxN   = flag.Int("regime-max-n", 100_000, "plane-regimes: largest point count in the sweep")

		clusterSweep = flag.Bool("cluster", false, "benchmark the sharded coreset-merge cluster against a single engine")
		clusterMaxN  = flag.Int("cluster-max-n", 100_000, "cluster: largest candidate count in the sweep")

		cacheReplay = flag.Bool("cache-replay", false, "measure the serving tier's result cache on a zipfian statement replay")
		replayReq   = flag.Int("requests", 2000, "cache-replay: requests in the stream")
		replayShp   = flag.Int("shapes", 16, "cache-replay: distinct request shapes")
		replayZipf  = flag.Float64("zipf-s", 1.3, "cache-replay: zipf skew over the shapes (<=1 = uniform)")
		replaySeed  = flag.Int64("seed", 1, "cache-replay: random seed")
	)
	flag.Parse()

	ran := false
	if *planeRegimes {
		runPlaneRegimes(*regimeMaxN, *replaySeed)
		ran = true
	}
	if *clusterSweep {
		runClusterSweep(*clusterMaxN, *replaySeed)
		ran = true
	}
	if *cacheReplay {
		runCacheReplay(*replayReq, *replayShp, *replayZipf, *replaySeed)
		ran = true
	}
	if *list {
		listCatalog()
		ran = true
	}
	if *table != "" {
		renderTables(*table)
		ran = true
	}
	if *figure != "" {
		renderFigures(*figure)
		ran = true
	}
	if *sweep {
		runSweeps(*match, *budget)
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func listCatalog() {
	fmt.Println("Experiment catalog (use -sweep -match <substring> to run a subset):")
	for _, e := range bench.Catalog() {
		fmt.Printf("  [Table %-8s] %-40s %s\n", e.Table, e.ID, e.Setting)
	}
}

func renderTables(which string) {
	w := strings.ToUpper(which)
	if w == "ALL" {
		w = "I II III"
	}
	for _, t := range strings.Fields(w) {
		switch t {
		case "I":
			fmt.Println(bench.RenderTableI())
		case "II":
			fmt.Println(bench.RenderTableII())
		case "III":
			fmt.Println(bench.RenderTableIII())
		default:
			fmt.Fprintf(os.Stderr, "divbench: unknown table %q (want I, II, III or all)\n", t)
			os.Exit(2)
		}
	}
}

func renderFigures(which string) {
	w := strings.ToLower(which)
	if w == "all" {
		w = "1 2 3 4 5"
	}
	for _, f := range strings.Fields(w) {
		switch f {
		case "1":
			fmt.Println(bench.RenderFigure(core.QRD))
		case "2":
			fmt.Println(renderFigure2())
		case "3":
			fmt.Println(bench.RenderFigure(core.DRP))
		case "4":
			fmt.Println(bench.RenderFigure(core.RDC))
		case "5":
			fmt.Println(renderFigure5())
		default:
			fmt.Fprintf(os.Stderr, "divbench: unknown figure %q (want 1-5 or all)\n", f)
			os.Exit(2)
		}
	}
}

// renderFigure2 reproduces the paper's Figure 2: the inductive distance
// function δdis of Lemma 5.3 for ϕ = ∃x1∀x2∃x3∀x4 ψ with
// ψ = (x1∨x2∨¬x3)∧(¬x2∨¬x3∨x4), evaluated on the 16 Boolean tuples
// t1..t16.
func renderFigure2() string {
	var b strings.Builder
	q := reduction.Figure2QBF()
	pd := reduction.NewPrefixDistance(q)
	b.WriteString("Figure 2: example distance function δdis (m = 4), Lemma 5.3\n")
	b.WriteString("ϕ = ∃x1∀x2∃x3∀x4 ψ, ψ = (x1 ∨ x2 ∨ ¬x3) ∧ (¬x2 ∨ ¬x3 ∨ x4)\n\n")
	b.WriteString("     ")
	for j := 1; j <= 16; j++ {
		fmt.Fprintf(&b, "t%-3d", j)
	}
	b.WriteString("\n")
	for i := 1; i <= 16; i++ {
		fmt.Fprintf(&b, "t%-3d ", i)
		for j := 1; j <= 16; j++ {
			d := pd.Dis(reduction.Figure2Tuple(i), reduction.Figure2Tuple(j))
			fmt.Fprintf(&b, "%-4.0f", d)
		}
		b.WriteString("\n")
	}
	b.WriteString("\nPaper's spot checks (levels l = 3, 2, 1, 0):\n")
	checks := []struct {
		i, j int
		want float64
	}{
		{1, 2, 0}, {3, 4, 1}, {5, 6, 1}, {7, 8, 1},
		{9, 10, 0}, {11, 12, 1}, {13, 14, 0}, {15, 16, 1},
		{1, 8, 1}, {9, 16, 1},
	}
	for _, c := range checks {
		got := pd.Dis(reduction.Figure2Tuple(c.i), reduction.Figure2Tuple(c.j))
		status := "✓"
		if got != c.want {
			status = "✗"
		}
		fmt.Fprintf(&b, "  δdis(t%d, t%d) = %.0f (paper: %.0f) %s\n", c.i, c.j, got, c.want, status)
	}
	return b.String()
}

// renderFigure5 reproduces the paper's Figure 5: the Boolean gadget
// relations I01, I∨, I∧ and I¬ used in the Theorem 7.1/7.2 lower-bound
// constructions.
func renderFigure5() string {
	var b strings.Builder
	b.WriteString("Figure 5: gadget relations used in the Theorem 7.1/7.2 reductions\n\n")
	db := reduction.GadgetDatabase()
	for _, name := range db.Names() {
		b.WriteString(db.Relation(name).String())
		b.WriteString("\n")
	}
	return b.String()
}

func runSweeps(match string, budget time.Duration) {
	exps := bench.Catalog()
	ran := 0
	for _, e := range exps {
		if match != "" && !strings.Contains(e.ID, match) && !strings.Contains(e.Table, match) {
			continue
		}
		res := e.Execute(budget)
		fmt.Print(bench.RenderResult(res))
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "divbench: no experiments match %q\n", match)
		os.Exit(1)
	}
	fmt.Printf("ran %d experiments\n", ran)
}
