package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sort"
	"time"

	diversification "repro"
	"repro/httpapi"
	"repro/internal/cluster"
)

// clusterReport is the JSON the -cluster experiment emits: for each
// candidate count n, the coreset-merge answer quality relative to a
// single engine holding all rows, and the fan-out latency distribution
// of the coordinator against the single engine's solve latency. Both
// sides run with result caching disabled so every sample measures a real
// solve, not a cache hit.
type clusterReport struct {
	K       int          `json:"k"`
	Lambda  float64      `json:"lambda"`
	Shards  int          `json:"shards"`
	Queries int          `json:"queries"`
	Seed    int64        `json:"seed"`
	MaxN    int          `json:"max_n"`
	Results []clusterArm `json:"results"`
}

// clusterArm is one measured (n, slack) cell. QualityRatio is the merged
// objective value over the single-engine value — the greedy composition
// argument guarantees >= 0.5, and the sweep records how close to 1.0 the
// merge lands in practice. CoresetRowsTotal is the sum of the per-shard
// coreset sizes shipped to the coordinator on the last query, i.e. the
// wire cost the k' budget bought.
type clusterArm struct {
	N                int     `json:"n"`
	Slack            int     `json:"slack"`
	SingleValue      float64 `json:"single_value"`
	MergedValue      float64 `json:"merged_value"`
	QualityRatio     float64 `json:"quality_ratio"`
	CoresetRowsTotal int64   `json:"coreset_rows_total"`
	SingleP50Ns      int64   `json:"single_p50_ns"`
	SingleP99Ns      int64   `json:"single_p99_ns"`
	ClusterP50Ns     int64   `json:"cluster_p50_ns"`
	ClusterP99Ns     int64   `json:"cluster_p99_ns"`
}

const clusterStmt = "Q(id, cat, rel) :- pts(id, cat, rel)"

// runClusterSweep benchmarks the distributed serving tier: n candidates
// hash-partitioned across 4 shard services behind real HTTP servers with
// a coordinator merging k'-coresets, against one engine holding all n
// rows. For each n and slack it records the merged-vs-single quality
// ratio and the p50/p99 solve latencies of both sides.
func runClusterSweep(maxN int, seed int64) {
	const k, lambda, shards, queries = 10, 0.5, 4, 20
	sizes := []int{10_000, 100_000}
	rep := clusterReport{K: k, Lambda: lambda, Shards: shards, Queries: queries, Seed: seed, MaxN: maxN}
	ctx := context.Background()

	for _, n := range sizes {
		if n > maxN {
			continue
		}
		rows := clusterRows(n, seed)

		svc := clusterService(rows)
		single, singleLat := timeSolves(ctx, svc, queries)

		// The shard tier is shared across the slack arms; only the
		// coordinator (which owns the k' budget) is rebuilt per arm.
		parts := make([][][]interface{}, shards)
		for _, row := range rows {
			i := cluster.ShardOf(row, shards)
			parts[i] = append(parts[i], row)
		}
		servers := make([]*httptest.Server, shards)
		addrs := make([]string, shards)
		for i := 0; i < shards; i++ {
			servers[i] = httptest.NewServer(httpapi.NewHandler(clusterService(parts[i])))
			addrs[i] = servers[i].URL
		}

		for _, slack := range []int{0, k} {
			coord, err := cluster.New(cluster.Config{Shards: addrs, Slack: slack, DistanceAttr: "cat"})
			if err != nil {
				fatal(err)
			}
			merged, mergedLat := timeClusterSolves(ctx, coord, queries)
			arm := clusterArm{
				N:            n,
				Slack:        slack,
				SingleValue:  single.Selection.Value,
				MergedValue:  merged.Selection.Value,
				QualityRatio: merged.Selection.Value / single.Selection.Value,
				SingleP50Ns:  pctNs(singleLat, 0.50),
				SingleP99Ns:  pctNs(singleLat, 0.99),
				ClusterP50Ns: pctNs(mergedLat, 0.50),
				ClusterP99Ns: pctNs(mergedLat, 0.99),
			}
			if cm := coord.Metrics().Cluster; cm != nil {
				for _, ss := range cm.ShardStats {
					arm.CoresetRowsTotal += ss.LastCoresetSize
				}
			}
			rep.Results = append(rep.Results, arm)
		}
		for _, srv := range servers {
			srv.Close()
		}
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(out))
}

// clusterRows builds n candidates with distinct relevance scores (a
// permutation, so greedy never tie-breaks) over 50 categories under the
// 0/1 attribute distance — the distance family the cluster contract
// requires, since pairwise matrices cannot ship across shards.
func clusterRows(n int, seed int64) [][]interface{} {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	rows := make([][]interface{}, n)
	for i := range rows {
		rows[i] = []interface{}{
			fmt.Sprintf("id-%06d", i),
			fmt.Sprintf("c%02d", i%50),
			int64(1 + perm[i]),
		}
	}
	return rows
}

// clusterService boots one cache-disabled Service over the given rows —
// caching off so every timed query is a real solve.
func clusterService(rows [][]interface{}) *diversification.Service {
	e := diversification.NewEngine()
	if err := e.CreateTable("pts", "id", "cat", "rel"); err != nil {
		fatal(err)
	}
	for _, row := range rows {
		if err := e.Insert("pts", row...); err != nil {
			fatal(err)
		}
	}
	svc := diversification.NewService(e, diversification.ServiceConfig{CacheEntries: -1})
	err := svc.Register("pts", clusterStmt,
		diversification.WithK(10),
		diversification.WithLambda(0.5),
		diversification.WithObjective(diversification.MaxSum),
		diversification.WithRelevance(diversification.AttrRelevance("rel")),
		diversification.WithDistance(diversification.AttrDistance("cat")),
	)
	if err != nil {
		fatal(err)
	}
	return svc
}

// timeSolves runs queries greedy solves on the single engine (plus one
// untimed warm-up to absorb the snapshot and plane build) and returns the
// last response with the sorted latencies.
func timeSolves(ctx context.Context, svc *diversification.Service, queries int) (*diversification.Response, []time.Duration) {
	greedy := diversification.Greedy
	req := diversification.Request{Problem: diversification.ProblemDiversify, Algorithm: &greedy}
	if _, err := svc.Do(ctx, "pts", req); err != nil {
		fatal(err)
	}
	var resp *diversification.Response
	var err error
	lat := make([]time.Duration, queries)
	for i := 0; i < queries; i++ {
		start := time.Now()
		if resp, err = svc.Do(ctx, "pts", req); err != nil {
			fatal(err)
		}
		lat[i] = time.Since(start)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return resp, lat
}

// timeClusterSolves is timeSolves for the coordinator: each sample is a
// full fan-out, coreset merge and final solve over real HTTP.
func timeClusterSolves(ctx context.Context, coord *cluster.Coordinator, queries int) (*diversification.Response, []time.Duration) {
	if _, err := coord.Do(ctx, "pts", httpapi.QueryRequest{}); err != nil {
		fatal(err)
	}
	var resp *diversification.Response
	var err error
	lat := make([]time.Duration, queries)
	for i := 0; i < queries; i++ {
		start := time.Now()
		if resp, err = coord.Do(ctx, "pts", httpapi.QueryRequest{}); err != nil {
			fatal(err)
		}
		lat[i] = time.Since(start)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return resp, lat
}

// pctNs reads the p-th percentile (nearest-rank on the sorted sample) in
// nanoseconds.
func pctNs(lat []time.Duration, p float64) int64 {
	idx := int(p * float64(len(lat)-1))
	return lat[idx].Nanoseconds()
}
