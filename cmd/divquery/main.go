// Command divquery is the thin client for a divserve instance: it issues
// one wire request (query, refresh, metrics or health probe) and prints
// the response.
//
// Usage:
//
//	divquery -addr http://127.0.0.1:8080 -stmt gifts                 # diversify
//	divquery -addr http://127.0.0.1:8080 -stmt gifts -problem decide -bound 2
//	divquery -addr http://127.0.0.1:8080 -stmt gifts -refresh
//	divquery -addr http://127.0.0.1:8080 -metrics
//	divquery -addr http://127.0.0.1:8080 -health
//
// Flags:
//
//	-addr URL        server base URL (default http://127.0.0.1:8080)
//	-stmt NAME       statement to query or refresh
//	-problem P       diversify | decide | count | in-top-r | rank
//	-k N             per-request selection size override
//	-lambda X        per-request λ override
//	-objective F     per-request objective override
//	-algorithm A     per-request algorithm override
//	-bound B         objective bound for decide/count
//	-rank R          rank threshold for in-top-r
//	-set JSON        candidate set for in-top-r/rank, as JSON rows of
//	                 attribute values in schema order, e.g.
//	                 '[["kite","toy",38],["scarf","fashion",30]]'
//	-explain         ask the server for the plan resolution report
//	-timeout D       per-request deadline, e.g. 10s
//	-refresh         refresh the statement instead of querying
//	-coreset         fetch the statement's shard-local k′-coreset (the
//	                 cluster merge payload) instead of querying
//	-slack N         coreset budget k′ = k + N (with -coreset; negative =
//	                 server default of k)
//	-metrics         print the service counters
//	-health          probe /healthz (prints "ok" or "degraded")
//	-json            print the raw JSON response instead of a summary
//	-retries N       max attempts for retryable failures (default 3)
//	-hedge P         hedge slow idempotent calls at latency percentile P
//
// Degraded responses — the server abandoned an exact route under deadline
// pressure — are flagged on their own output line (and carried in the
// degraded/degraded_from fields of -json output). Client-side retries and
// hedges are reported on stderr so stdout stays the pure response.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/httpapi"
)

func main() {
	var (
		addr      = flag.String("addr", "http://127.0.0.1:8080", "server base URL")
		stmt      = flag.String("stmt", "", "statement to query or refresh")
		problem   = flag.String("problem", "", "diversify | decide | count | in-top-r | rank")
		k         = flag.Int("k", 0, "per-request selection size override")
		lambda    = flag.Float64("lambda", 0, "per-request λ override")
		objName   = flag.String("objective", "", "per-request objective override")
		algName   = flag.String("algorithm", "", "per-request algorithm override")
		bound     = flag.Float64("bound", 0, "objective bound for decide/count")
		rank      = flag.Int("rank", 0, "rank threshold for in-top-r")
		setJSON   = flag.String("set", "", "candidate set for in-top-r/rank, as JSON rows")
		doExplain = flag.Bool("explain", false, "ask the server for the plan resolution report")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-request deadline")
		doRefresh = flag.Bool("refresh", false, "refresh the statement instead of querying")
		doCoreset = flag.Bool("coreset", false, "fetch the statement's shard-local coreset instead of querying")
		slack     = flag.Int("slack", -1, "coreset budget k' = k + N (with -coreset; negative = server default)")
		doMetrics = flag.Bool("metrics", false, "print the service counters")
		doHealth  = flag.Bool("health", false, "probe /healthz")
		rawJSON   = flag.Bool("json", false, "print the raw JSON response")
		retries   = flag.Int("retries", 0, "max attempts for retryable failures (0 = client default of 3)")
		hedge     = flag.Float64("hedge", 0, "hedge slow idempotent calls at this latency percentile in (0,1); 0 = off")
	)
	flag.Parse()

	client := &httpapi.Client{
		BaseURL:         *addr,
		Retry:           httpapi.RetryPolicy{MaxAttempts: *retries},
		HedgePercentile: *hedge,
	}
	statsClient = client
	defer reportStats()
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	switch {
	case *doHealth:
		h, err := client.Health(ctx)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Println(h.Status)
	case *doMetrics:
		m, err := client.Metrics(ctx)
		if err != nil {
			fatalf("%v", err)
		}
		printJSON(m)
	case *doRefresh:
		if *stmt == "" {
			fatalf("need -stmt")
		}
		info, err := client.Refresh(ctx, *stmt)
		if err != nil {
			fatalf("%v", err)
		}
		printJSON(info)
	case *doCoreset:
		if *stmt == "" {
			fatalf("need -stmt")
		}
		cr := httpapi.CoresetRequest{}
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "k":
				cr.K = k
			case "lambda":
				cr.Lambda = lambda
			case "objective":
				cr.Objective = objName
			}
		})
		if *slack >= 0 {
			cr.Slack = slack
		}
		cs, err := client.Coreset(ctx, *stmt, cr)
		if err != nil {
			fatalf("%v", err)
		}
		if *rawJSON {
			printJSON(cs)
			return
		}
		fmt.Printf("coreset k=%d k'=%d %s λ=%g: %d of %d answers, generation %d\n",
			cs.K, cs.KPrime, cs.Objective, cs.Lambda, len(cs.Rows), cs.Answers, cs.Generation)
		for i, row := range cs.Rows {
			vals, _ := json.Marshal(row)
			fmt.Printf("  %s score=%g\n", vals, cs.Scores[i])
		}
	default:
		if *stmt == "" {
			fatalf("need -stmt (or -metrics/-health)")
		}
		qr := httpapi.QueryRequest{Problem: *problem, Explain: *doExplain}
		if *setJSON != "" {
			if err := json.Unmarshal([]byte(*setJSON), &qr.Set); err != nil {
				fatalf("bad -set: %v", err)
			}
		}
		// Overrides are sent exactly when their flag was given — no value
		// sentinels, so -k 0 or -lambda 0 are real overrides.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "k":
				qr.K = k
			case "lambda":
				qr.Lambda = lambda
			case "objective":
				qr.Objective = objName
			case "algorithm":
				qr.Algorithm = algName
			case "bound":
				qr.Bound = bound
			case "rank":
				qr.Rank = rank
			}
		})
		resp, err := client.Query(ctx, *stmt, qr)
		if err != nil {
			fatalf("%v", err)
		}
		if *rawJSON {
			printJSON(resp)
			return
		}
		fmt.Printf("problem=%s route=%s generation=%d elapsed=%s\n",
			resp.Problem, resp.Route, resp.Generation, resp.Elapsed)
		if resp.DegradedFrom != "" {
			if resp.Degraded {
				fmt.Printf("degraded: %s abandoned under deadline pressure; answer is approximate\n", resp.DegradedFrom)
			} else {
				fmt.Printf("degraded: downgraded from %s under deadline pressure; answer is exact\n", resp.DegradedFrom)
			}
		}
		if resp.Explain != "" {
			fmt.Print(resp.Explain)
		}
		switch {
		case resp.Selection != nil:
			fmt.Printf("selected %d rows (%s, F = %.4f):\n",
				len(resp.Selection.Rows), resp.Selection.Method, resp.Selection.Value)
			for _, r := range resp.Selection.Rows {
				vals, _ := json.Marshal(r)
				fmt.Printf("  %s\n", vals)
			}
		case resp.Count != nil:
			fmt.Printf("count = %s\n", resp.Count)
		case resp.Problem.String() == "decide":
			fmt.Printf("exists = %v\n", resp.Decided())
		case resp.Problem.String() == "in-top-r":
			fmt.Printf("in top r = %v\n", resp.TopR())
		case resp.Problem.String() == "rank":
			fmt.Printf("rank = %d\n", resp.Rank)
		}
	}
}

func printJSON(v interface{}) {
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Println(string(out))
}

// statsClient lets fatalf report retry/hedge counts on the failure path
// too — os.Exit skips main's deferred report.
var statsClient *httpapi.Client

// reportStats prints the client's resilience interventions to stderr, so
// stdout stays the pure response (and transcripts stay byte-stable).
func reportStats() {
	if statsClient == nil {
		return
	}
	if st := statsClient.Stats(); st.Retries > 0 || st.Hedges > 0 {
		fmt.Fprintf(os.Stderr, "divquery: client retries=%d hedges=%d\n", st.Retries, st.Hedges)
	}
}

func fatalf(format string, args ...interface{}) {
	reportStats()
	fmt.Fprintf(os.Stderr, "divquery: "+format+"\n", args...)
	os.Exit(1)
}
