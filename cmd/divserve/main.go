// Command divserve serves diversified queries over JSON/HTTP: it loads
// relations, registers named prepared statements, and exposes the
// diversification service's wire protocol with bounded admission.
//
// Usage:
//
//	divserve -load catalog=catalog.tsv \
//	         -stmt 'cheap=Q(item, type, price) :- catalog(item, type, price, s), price <= 30' \
//	         -k 3 -objective max-sum -lambda 0.7 -distance-attr type \
//	         -addr :8080
//
//	divserve -demo -addr :8080     # built-in gift-shop catalog, statement "gifts"
//
// Routes:
//
//	POST /v1/query/{name}    run a query request against a statement
//	POST /v1/refresh/{name}  refresh a statement's caches
//	GET  /healthz            liveness
//	GET  /metrics            service counters
//
// Flags:
//
//	-addr HOST:PORT     listen address (default :8080)
//	-load name=file     load a relation from TSV (repeatable)
//	-demo               use the built-in gift-shop database and statement
//	-stmt name=query    register a prepared statement (repeatable); the
//	                    scoring flags below become its prepared bindings
//	-k N                selection size bound to every statement
//	-objective F        max-sum | max-min | mono
//	-lambda X           relevance/diversity trade-off in [0,1]
//	-algorithm A        auto | exact | greedy | local-search | online
//	-relevance-attr A   numeric attribute used as δrel
//	-distance-attr A    attribute whose inequality defines δdis
//	-constraint C       compatibility constraint in Cm syntax (repeatable)
//	-parallel N         exact-search workers per request (0 = all cores)
//	-max-concurrent N   execution slots (0 = GOMAXPROCS)
//	-max-queue N        admission queue bound (0 = 4×slots, -1 = none)
//	-timeout D          default per-request deadline, e.g. 5s (0 = none)
//	-warm               refresh every statement before serving
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"

	diversification "repro"
	"repro/httpapi"
	"repro/internal/load"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var (
		loads       multiFlag
		stmts       multiFlag
		constraints multiFlag
		addr        = flag.String("addr", ":8080", "listen address")
		demo        = flag.Bool("demo", false, "use the built-in gift-shop database and statement")
		k           = flag.Int("k", 3, "number of results to select")
		objName     = flag.String("objective", "max-sum", "max-sum | max-min | mono")
		lambda      = flag.Float64("lambda", 0.5, "trade-off λ in [0,1]")
		algName     = flag.String("algorithm", "auto", "auto | exact | greedy | local-search | online")
		relAttr     = flag.String("relevance-attr", "", "numeric attribute used as relevance")
		disAttr     = flag.String("distance-attr", "", "attribute whose inequality is the distance")
		parallel    = flag.Int("parallel", 1, "exact-search workers per request (0 = all cores)")
		maxConc     = flag.Int("max-concurrent", 0, "execution slots (0 = GOMAXPROCS)")
		maxQueue    = flag.Int("max-queue", 0, "admission queue bound (0 = 4×slots, -1 = none)")
		timeout     = flag.Duration("timeout", 0, "default per-request deadline (0 = none)")
		warm        = flag.Bool("warm", false, "refresh every statement before serving")
	)
	flag.Var(&loads, "load", "relation to load, as name=file.tsv (repeatable)")
	flag.Var(&stmts, "stmt", "statement to register, as name=query (repeatable)")
	flag.Var(&constraints, "constraint", "compatibility constraint in Cm syntax (repeatable)")
	flag.Parse()

	e := diversification.NewEngine()
	switch {
	case *demo:
		load.Demo(e)
		if len(stmts) == 0 {
			stmts = append(stmts, "gifts=Q(item, type, price) :- catalog(item, type, price, s), price <= 40")
			*relAttr, *disAttr, *lambda = "price", "type", 0.7
		}
	case len(loads) > 0:
		for _, spec := range loads {
			name, file, ok := strings.Cut(spec, "=")
			if !ok {
				fatalf("bad -load %q: want name=file.tsv", spec)
			}
			if err := load.TSV(e, name, file); err != nil {
				fatalf("loading %s: %v", spec, err)
			}
		}
	default:
		fmt.Fprintln(os.Stderr, "divserve: need -demo or at least one -load name=file.tsv")
		flag.Usage()
		os.Exit(2)
	}
	if len(stmts) == 0 {
		fatalf("need at least one -stmt name=query")
	}

	objective, err := diversification.ParseObjective(*objName)
	if err != nil {
		fatalf("%v", err)
	}
	algorithm, err := diversification.ParseAlgorithm(*algName)
	if err != nil {
		fatalf("%v", err)
	}
	opts := []diversification.Option{
		diversification.WithK(*k),
		diversification.WithObjective(objective),
		diversification.WithLambda(*lambda),
		diversification.WithAlgorithm(algorithm),
		diversification.WithConstraints(constraints...),
	}
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "parallel" {
			opts = append(opts, diversification.WithParallelism(*parallel))
		}
	})
	if *relAttr != "" {
		opts = append(opts, diversification.WithRelevance(diversification.AttrRelevance(*relAttr)))
	}
	if *disAttr != "" {
		opts = append(opts, diversification.WithDistance(diversification.AttrDistance(*disAttr)))
	}

	svc := diversification.NewService(e, diversification.ServiceConfig{
		MaxConcurrent:  *maxConc,
		MaxQueue:       *maxQueue,
		DefaultTimeout: *timeout,
	})
	for _, spec := range stmts {
		name, src, ok := strings.Cut(spec, "=")
		if !ok {
			fatalf("bad -stmt %q: want name=query", spec)
		}
		if err := svc.Register(name, src, opts...); err != nil {
			fatalf("registering %q: %v", name, err)
		}
		log.Printf("registered statement %q: %s", name, src)
	}
	if *warm {
		for _, name := range svc.Statements() {
			info, err := svc.Refresh(context.Background(), name)
			if err != nil {
				fatalf("warming %q: %v", name, err)
			}
			log.Printf("warmed %q: %d answers (%s)", name, info.Answers, info.Mode)
		}
	}

	log.Printf("divserve listening on %s (%d statements)", *addr, len(svc.Statements()))
	if err := http.ListenAndServe(*addr, httpapi.NewHandler(svc)); err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "divserve: "+format+"\n", args...)
	os.Exit(1)
}
