// Command divserve serves diversified queries over JSON/HTTP: it loads
// relations, registers named prepared statements, and exposes the
// diversification service's wire protocol with bounded admission.
//
// Usage:
//
//	divserve -load catalog=catalog.tsv \
//	         -stmt 'cheap=Q(item, type, price) :- catalog(item, type, price, s), price <= 30' \
//	         -k 3 -objective max-sum -lambda 0.7 -distance-attr type \
//	         -addr :8080
//
//	divserve -demo -addr :8080     # built-in gift-shop catalog, statement "gifts"
//
//	divserve -demo -data-dir /var/lib/divserve -fsync always -addr :8080
//
// With -data-dir the server is durable: every committed mutation streams
// to a write-ahead log in that directory before the mutating request is
// acknowledged, and on boot the newest snapshot plus the log rebuild the
// database exactly as it was — -demo and -load seed data only on the
// first boot of an empty directory. SIGTERM/SIGINT shut down gracefully:
// in-flight requests drain, the log is flushed and fsynced, and a
// clean-shutdown marker is written.
//
// Routes:
//
//	POST /v1/query/{name}    run a query request against a statement
//	POST /v1/refresh/{name}  refresh a statement's caches
//	POST /v1/insert/{table}  insert rows into a table
//	POST /v1/delete/{table}  delete rows from a table
//	POST /v1/admin/snapshot  persist the database, prune the WAL
//	GET  /healthz            liveness
//	GET  /metrics            service counters
//
// Flags:
//
//	-addr HOST:PORT     listen address (default :8080)
//	-load name=file     load a relation from TSV (repeatable)
//	-demo               use the built-in gift-shop database and statement
//	-stmt name=query    register a prepared statement (repeatable); the
//	                    scoring flags below become its prepared bindings
//	-k N                selection size bound to every statement
//	-objective F        max-sum | max-min | mono
//	-lambda X           relevance/diversity trade-off in [0,1]
//	-algorithm A        auto | exact | greedy | local-search | online
//	-relevance-attr A   numeric attribute used as δrel
//	-distance-attr A    attribute whose inequality defines δdis
//	-constraint C       compatibility constraint in Cm syntax (repeatable)
//	-parallel N         exact-search workers per request (0 = all cores)
//	-max-concurrent N   execution slots (0 = GOMAXPROCS)
//	-max-queue N        admission queue bound (0 = 4×slots, -1 = none)
//	-timeout D          default per-request deadline, e.g. 5s (0 = none)
//	-cache              generation-keyed result cache + request coalescing
//	                    (default on; -cache=false disables)
//	-cache-entries N    result cache entry bound (0 = default 1024)
//	-warm               refresh every statement before serving
//	-data-dir DIR       durable mode: WAL + snapshots live here
//	-fsync P            WAL sync policy: always | interval | off
//	-fsync-interval D   period of the "interval" policy (default 100ms)
//	-snapshot-every N   automatic snapshot after N mutations (0 = manual)
//	-shutdown-grace D   how long shutdown waits for in-flight requests
//	-cost-hint R=D      seed the deadline-degradation cost model, e.g.
//	                    exact=300ms (repeatable)
//	-wal-probe D        read-only recovery probe base backoff (default 100ms)
//	-wal-probe-max D    read-only recovery probe backoff cap (default 5s)
//	-chaos-wal SPEC     TESTING: WAL fault schedule, e.g. sync:5 or write:3+
//
// Cluster flags:
//
//	-shards a,b,c       coordinator mode: serve by fanning diversify
//	                    requests out to these shard servers, merging their
//	                    k′-coresets and solving over the union; mutations
//	                    route to the owning shard by partition hash. Data
//	                    flags (-demo/-load/-data-dir) do not apply — data
//	                    lives on the shards.
//	-coreset-slack N    coordinator: per-shard coreset budget k′ = k + N
//	                    (negative, the default, defers to the shard-side
//	                    default of slack = k)
//	-shard-id I         shard mode: this server is shard I of -shard-count;
//	                    -demo/-load install only the rows the partition
//	                    hash routes here, so a fleet of shards booted from
//	                    the same source splits it without overlap
//	-shard-count S      shard mode: total shards in the cluster
//
// A coordinator answers the same wire protocol as a single engine. When a
// shard is down, diversify answers still come back from the remaining
// shards' coresets — flagged degraded, never wrong — and /healthz reports
// "degraded"; /metrics grows a cluster block (per-shard latency, coreset
// sizes, fan-out errors).
//
// A WAL failure degrades the server to read-only instead of killing it:
// queries keep serving, mutations return 503 with Retry-After, /healthz
// reports "degraded", and a background probe restores write mode when the
// disk recovers. A request deadline too tight for the exact search
// degrades the route (exact -> parallel -> greedy), flagged in the
// response rather than answered with a 504.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	diversification "repro"
	"repro/httpapi"
	"repro/internal/cluster"
	"repro/internal/faultfs"
	"repro/internal/fsio"
	"repro/internal/load"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var (
		loads       multiFlag
		stmts       multiFlag
		constraints multiFlag
		addr        = flag.String("addr", ":8080", "listen address")
		demo        = flag.Bool("demo", false, "use the built-in gift-shop database and statement")
		k           = flag.Int("k", 3, "number of results to select")
		objName     = flag.String("objective", "max-sum", "max-sum | max-min | mono")
		lambda      = flag.Float64("lambda", 0.5, "trade-off λ in [0,1]")
		algName     = flag.String("algorithm", "auto", "auto | exact | greedy | local-search | online")
		relAttr     = flag.String("relevance-attr", "", "numeric attribute used as relevance")
		disAttr     = flag.String("distance-attr", "", "attribute whose inequality is the distance")
		parallel    = flag.Int("parallel", 1, "exact-search workers per request (0 = all cores)")
		maxConc     = flag.Int("max-concurrent", 0, "execution slots (0 = GOMAXPROCS)")
		maxQueue    = flag.Int("max-queue", 0, "admission queue bound (0 = 4×slots, -1 = none)")
		timeout     = flag.Duration("timeout", 0, "default per-request deadline (0 = none)")
		cache       = flag.Bool("cache", true, "generation-keyed result cache + request coalescing")
		cacheSize   = flag.Int("cache-entries", 0, "result cache entry bound (0 = default 1024)")
		warm        = flag.Bool("warm", false, "refresh every statement before serving")
		dataDir     = flag.String("data-dir", "", "durable mode: directory for the WAL and snapshots")
		fsync       = flag.String("fsync", "always", "WAL sync policy: always | interval | off")
		fsyncEvery  = flag.Duration("fsync-interval", 100*time.Millisecond, `period of the "interval" fsync policy`)
		snapEvery   = flag.Int("snapshot-every", 0, "automatic snapshot after N mutations (0 = manual only)")
		grace       = flag.Duration("shutdown-grace", 5*time.Second, "how long shutdown waits for in-flight requests")
		walProbe    = flag.Duration("wal-probe", 0, "read-only recovery probe base backoff (0 = 100ms)")
		walProbeMax = flag.Duration("wal-probe-max", 0, "read-only recovery probe backoff cap (0 = 5s)")
		chaosWAL    = flag.String("chaos-wal", "", "TESTING: WAL fault schedule, e.g. sync:5 or write:3+ (op:N fails the Nth once, op:N+ fails from the Nth on)")
		shards      = flag.String("shards", "", "coordinator mode: comma-separated shard addresses to fan out to")
		slack       = flag.Int("coreset-slack", -1, "coordinator: per-shard coreset budget k' = k + N (negative = shard default of k)")
		shardID     = flag.Int("shard-id", -1, "shard mode: this server's shard index (with -shard-count)")
		shardCount  = flag.Int("shard-count", 0, "shard mode: total shards in the cluster")
	)
	var costHints multiFlag
	flag.Var(&loads, "load", "relation to load, as name=file.tsv (repeatable)")
	flag.Var(&stmts, "stmt", "statement to register, as name=query (repeatable)")
	flag.Var(&constraints, "constraint", "compatibility constraint in Cm syntax (repeatable)")
	flag.Var(&costHints, "cost-hint", "seed the deadline-degradation cost model, as route=duration, e.g. exact=300ms (repeatable)")
	flag.Parse()

	if *shards != "" {
		if *demo || len(loads) > 0 || *dataDir != "" {
			fatalf("-shards (coordinator mode) does not take -demo/-load/-data-dir: data lives on the shards")
		}
		if *shardID >= 0 || *shardCount > 0 {
			fatalf("-shards and -shard-id/-shard-count are mutually exclusive: a server is a coordinator or a shard, not both")
		}
		runCoordinator(*addr, strings.Split(*shards, ","), *slack, *disAttr, *timeout, *grace)
		return
	}

	var keep func(row []interface{}) bool
	if *shardCount > 0 || *shardID >= 0 {
		if *shardID < 0 || *shardID >= *shardCount {
			fatalf("shard mode needs 0 <= -shard-id < -shard-count, got id %d of %d", *shardID, *shardCount)
		}
		id, n := *shardID, *shardCount
		keep = func(row []interface{}) bool { return cluster.ShardOf(row, n) == id }
		log.Printf("shard mode: serving partition %d of %d", id, n)
	}

	var e *diversification.Engine
	recovered := false
	if *dataDir != "" {
		var chaosFS fsio.FS
		if *chaosWAL != "" {
			inj, err := faultfs.ParseSpec(*chaosWAL)
			if err != nil {
				fatalf("%v", err)
			}
			ffs := faultfs.Wrap(nil)
			ffs.SetInjector(inj)
			chaosFS = ffs
			log.Printf("CHAOS: WAL fault schedule %q armed", *chaosWAL)
		}
		eng, rec, err := diversification.OpenEngine(diversification.DurabilityConfig{
			Dir:             *dataDir,
			Fsync:           *fsync,
			FsyncInterval:   *fsyncEvery,
			SnapshotEvery:   *snapEvery,
			ProbeBackoff:    *walProbe,
			ProbeBackoffMax: *walProbeMax,
			FS:              chaosFS,
		})
		if err != nil {
			fatalf("%v", err)
		}
		e = eng
		recovered = rec.Generation > 0
		log.Printf("recovered %s: snapshot gen %d + %d log entries -> gen %d in %s (torn tail: %v, clean shutdown: %v)",
			*dataDir, rec.SnapshotGen, rec.ReplayedEntries, rec.Generation,
			rec.ReplayDuration.Round(time.Microsecond), rec.TornTail, rec.CleanShutdown)
	} else {
		e = diversification.NewEngine()
	}

	switch {
	case *demo:
		// A recovered database already holds its data (possibly mutated far
		// beyond the seed); re-seeding would duplicate or clash. The demo
		// statement and its bindings are still registered — statements are
		// not persisted.
		if !recovered {
			load.DemoFilter(e, keep)
		}
		if len(stmts) == 0 {
			stmts = append(stmts, "gifts=Q(item, type, price) :- catalog(item, type, price, s), price <= 40")
			*relAttr, *disAttr, *lambda = "price", "type", 0.7
		}
	case len(loads) > 0:
		for _, spec := range loads {
			name, file, ok := strings.Cut(spec, "=")
			if !ok {
				fatalf("bad -load %q: want name=file.tsv", spec)
			}
			if recovered {
				log.Printf("skipping -load %s: database recovered from %s", spec, *dataDir)
				continue
			}
			if err := load.TSVFilter(e, name, file, keep); err != nil {
				fatalf("loading %s: %v", spec, err)
			}
		}
	case recovered:
		// Durable restart with neither -demo nor -load: the recovered
		// database is the data source.
	default:
		fmt.Fprintln(os.Stderr, "divserve: need -demo, -load name=file.tsv, or a recoverable -data-dir")
		flag.Usage()
		os.Exit(2)
	}
	if len(stmts) == 0 {
		fatalf("need at least one -stmt name=query")
	}

	objective, err := diversification.ParseObjective(*objName)
	if err != nil {
		fatalf("%v", err)
	}
	algorithm, err := diversification.ParseAlgorithm(*algName)
	if err != nil {
		fatalf("%v", err)
	}
	opts := []diversification.Option{
		diversification.WithK(*k),
		diversification.WithObjective(objective),
		diversification.WithLambda(*lambda),
		diversification.WithAlgorithm(algorithm),
		diversification.WithConstraints(constraints...),
	}
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "parallel" {
			opts = append(opts, diversification.WithParallelism(*parallel))
		}
	})
	if *relAttr != "" {
		opts = append(opts, diversification.WithRelevance(diversification.AttrRelevance(*relAttr)))
	}
	if *disAttr != "" {
		opts = append(opts, diversification.WithDistance(diversification.AttrDistance(*disAttr)))
	}

	for _, spec := range costHints {
		route, durStr, ok := strings.Cut(spec, "=")
		if !ok {
			fatalf("bad -cost-hint %q: want route=duration", spec)
		}
		d, err := time.ParseDuration(durStr)
		if err != nil {
			fatalf("bad -cost-hint %q: %v", spec, err)
		}
		e.SeedCostHint(route, d)
	}

	cacheEntries := *cacheSize
	if !*cache {
		cacheEntries = -1
	}
	svc := diversification.NewService(e, diversification.ServiceConfig{
		MaxConcurrent:  *maxConc,
		MaxQueue:       *maxQueue,
		DefaultTimeout: *timeout,
		ShutdownGrace:  *grace,
		CacheEntries:   cacheEntries,
	})
	for _, spec := range stmts {
		name, src, ok := strings.Cut(spec, "=")
		if !ok {
			fatalf("bad -stmt %q: want name=query", spec)
		}
		if err := svc.Register(name, src, opts...); err != nil {
			fatalf("registering %q: %v", name, err)
		}
		log.Printf("registered statement %q: %s", name, src)
	}
	if *warm {
		for _, name := range svc.Statements() {
			info, err := svc.Refresh(context.Background(), name)
			if err != nil {
				fatalf("warming %q: %v", name, err)
			}
			log.Printf("warmed %q: %d answers (%s)", name, info.Answers, info.Mode)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := &http.Server{Addr: *addr, Handler: httpapi.NewHandler(svc)}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("divserve listening on %s (%d statements)", *addr, len(svc.Statements()))

	select {
	case err := <-errc:
		fatalf("%v", err)
	case <-ctx.Done():
		stop()
		log.Printf("divserve shutting down: draining requests, flushing log")
		// Drain order: the service gate first (new admissions rejected,
		// in-flight requests finish), then the HTTP listener, then the
		// engine (WAL flush + clean-shutdown marker).
		if err := svc.Close(context.Background()); err != nil {
			log.Printf("drain: %v", err)
		}
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Printf("shutdown: %v", err)
		}
		if err := e.Close(); err != nil {
			fatalf("closing engine: %v", err)
		}
		log.Printf("divserve shut down cleanly")
	}
}

// runCoordinator serves cluster-coordinator mode: no local engine, just
// the fan-out/merge backend behind the same wire protocol.
func runCoordinator(addr string, shardAddrs []string, slack int, distanceAttr string, timeout, grace time.Duration) {
	coord, err := cluster.New(cluster.Config{
		Shards:       shardAddrs,
		Slack:        slack,
		DistanceAttr: distanceAttr,
		Timeout:      timeout,
	})
	if err != nil {
		fatalf("%v", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := &http.Server{Addr: addr, Handler: httpapi.NewClusterHandler(coord)}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("divserve coordinating %d shards on %s: %s", len(shardAddrs), addr, strings.Join(shardAddrs, ", "))

	select {
	case err := <-errc:
		fatalf("%v", err)
	case <-ctx.Done():
		stop()
		log.Printf("divserve coordinator shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), grace+10*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Printf("shutdown: %v", err)
		}
		log.Printf("divserve coordinator shut down cleanly")
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "divserve: "+format+"\n", args...)
	os.Exit(1)
}
