package diversification

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testStatement is the query/option pair the durability tests solve with;
// the response JSON (scrubbed of elapsed time) is the bit-exact identity
// witness between a recovered engine and its reference.
const testQuery = "Q(x, y) :- p(x, y), x <= 400"

func testOpts() []Option {
	return []Option{
		WithK(3),
		WithObjective(MaxSum),
		WithLambda(0.7),
		WithRelevance(AttrRelevance("x")),
		WithDistance(AttrDistance("y")),
	}
}

// solveJSON answers the test statement on e and returns the response JSON
// with the elapsed field scrubbed — every other byte (float bits of the
// objective value, solver stats, generation) must survive recovery.
func solveJSON(t *testing.T, e *Engine) string {
	t.Helper()
	p, err := e.Prepare(testQuery, testOpts()...)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if _, err := p.Refresh(context.Background()); err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	resp, err := p.Do(context.Background(), Request{})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	raw, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	return elapsedRE.ReplaceAllString(string(raw), `"elapsed_ns":0`)
}

// assertEnginesEqual checks that two engines are observably identical:
// generation, full answer set, and a solver response byte-for-byte.
func assertEnginesEqual(t *testing.T, got, want *Engine) {
	t.Helper()
	if g, w := got.Generation(), want.Generation(); g != w {
		t.Fatalf("generation: got %d want %d", g, w)
	}
	gr, err := got.Query(testQuery)
	if err != nil {
		t.Fatalf("Query(got): %v", err)
	}
	wr, err := want.Query(testQuery)
	if err != nil {
		t.Fatalf("Query(want): %v", err)
	}
	if gr.Len() != wr.Len() {
		t.Fatalf("answers: got %d want %d", gr.Len(), wr.Len())
	}
	for i := 0; i < wr.Len(); i++ {
		if gr.Row(i).String() != wr.Row(i).String() {
			t.Fatalf("answer %d: got %s want %s", i, gr.Row(i), wr.Row(i))
		}
	}
	if g, w := solveJSON(t, got), solveJSON(t, want); g != w {
		t.Fatalf("solver response diverged:\n got %s\nwant %s", g, w)
	}
}

func seedEngine(t *testing.T, e *Engine) {
	t.Helper()
	if err := e.CreateTable("p", "x", "y"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := e.Insert("p", int64(i*37%500), float64(i)/7); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Delete("p", int64(5*37%500), float64(5)/7); err != nil {
		t.Fatal(err)
	}
}

func TestOpenEngineArgErrors(t *testing.T) {
	var argErr *ArgError
	_, _, err := OpenEngine(DurabilityConfig{})
	if !errors.As(err, &argErr) || argErr.Field != "data-dir" {
		t.Fatalf("missing dir: %v", err)
	}
	_, _, err = OpenEngine(DurabilityConfig{Dir: t.TempDir(), Fsync: "sometimes"})
	if !errors.As(err, &argErr) || argErr.Field != "fsync" {
		t.Fatalf("bad fsync: %v", err)
	}
}

func TestDurableEngineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	e, rec, err := OpenEngine(DurabilityConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Generation != 0 || rec.ReplayedEntries != 0 {
		t.Fatalf("first boot should recover nothing: %+v", rec)
	}
	seedEngine(t, e)
	gen := e.Generation()
	want := solveJSON(t, e)
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	e2, rec2, err := OpenEngine(DurabilityConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if !rec2.CleanShutdown {
		t.Fatalf("clean shutdown not recognized: %+v", rec2)
	}
	if rec2.Generation != gen || rec2.ReplayedEntries != int(gen) {
		t.Fatalf("recovery %+v, want generation %d with full-log replay", rec2, gen)
	}
	if got := solveJSON(t, e2); got != want {
		t.Fatalf("recovered response diverged:\n got %s\nwant %s", got, want)
	}
	if info, ok := e2.Recovery(); !ok || info != rec2 {
		t.Fatalf("Recovery() = %+v, %v; want %+v", info, ok, rec2)
	}
}

func TestSnapshotThenReplay(t *testing.T) {
	dir := t.TempDir()
	e, _, err := OpenEngine(DurabilityConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	seedEngine(t, e)
	snapGen, err := e.Snapshot(context.Background())
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if snapGen != e.Generation() {
		t.Fatalf("snapshot at %d, generation %d", snapGen, e.Generation())
	}
	// Three more mutations after the snapshot; no Close — a crash.
	for i := 0; i < 3; i++ {
		if err := e.Insert("p", int64(1000+i), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	gen := e.Generation()

	e2, rec, err := OpenEngine(DurabilityConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if rec.SnapshotGen != snapGen || rec.ReplayedEntries != 3 || rec.Generation != gen {
		t.Fatalf("recovery %+v, want snapshot %d + 3 replayed to gen %d", rec, snapGen, gen)
	}
	assertEnginesEqual(t, e2, e)
}

func TestAutoSnapshotCadence(t *testing.T) {
	dir := t.TempDir()
	e, _, err := OpenEngine(DurabilityConfig{Dir: dir, SnapshotEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	seedEngine(t, e) // 21 mutations: several automatic snapshots
	dm, ok := e.durabilityMetrics()
	if !ok || dm.LastSnapshotGen == 0 {
		t.Fatalf("no automatic snapshot happened: %+v", dm)
	}
	gen := e.Generation()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2, rec, err := OpenEngine(DurabilityConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if rec.Generation != gen {
		t.Fatalf("recovered to %d, want %d", rec.Generation, gen)
	}
	if rec.SnapshotGen == 0 || rec.ReplayedEntries > 5 {
		t.Fatalf("snapshot cadence not honored: %+v (replay should cover at most one interval)", rec)
	}
}

func TestSnapshotNotDurable(t *testing.T) {
	e := NewEngine()
	if _, err := e.Snapshot(context.Background()); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("Engine.Snapshot on in-memory engine: %v", err)
	}
	svc := NewService(e, ServiceConfig{})
	if _, err := svc.Snapshot(context.Background()); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("Service.Snapshot on in-memory engine: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close of in-memory engine must be a no-op: %v", err)
	}
	if _, ok := e.Recovery(); ok {
		t.Fatal("in-memory engine reported a recovery")
	}
}

func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	e, _, err := OpenEngine(DurabilityConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	seedEngine(t, e)
	gen := e.Generation()
	// Simulate a crash mid-append: cut bytes off the newest segment (no
	// Close, so no clean marker and the tail is legitimately suspect).
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-4); err != nil {
		t.Fatal(err)
	}

	e2, rec, err := OpenEngine(DurabilityConfig{Dir: dir})
	if err != nil {
		t.Fatalf("torn tail must recover, not fail: %v", err)
	}
	defer e2.Close()
	if !rec.TornTail {
		t.Fatalf("torn tail not reported: %+v", rec)
	}
	if rec.Generation != gen-1 {
		t.Fatalf("recovered to %d, want %d (exactly the torn record lost)", rec.Generation, gen-1)
	}
}

func TestWALFailureSurfacesOnMutation(t *testing.T) {
	dir := t.TempDir()
	e, _, err := OpenEngine(DurabilityConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	seedEngine(t, e)
	// Closing the engine makes the log refuse appends; the next mutation
	// must report the lost durability rather than succeed silently.
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	err = e.Insert("p", int64(9999), 1.0)
	if err == nil || !strings.Contains(err.Error(), "write-ahead log") {
		t.Fatalf("mutation after WAL failure: %v", err)
	}
}

// TestWALReplayMatchesColdRebuild is the durability property test: for
// random mutation histories — with the change journal compacted to a tiny
// window (SetJournalBound) and a snapshot cut mid-history — recovering
// from disk must equal a cold in-memory rebuild of the same history
// bit-for-bit: generation, answer set, solver response. The WAL taps the
// mutation stream itself, so journal compaction (which forces Prepared
// rebuilds) must be invisible to it.
func TestWALReplayMatchesColdRebuild(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			e, _, err := OpenEngine(DurabilityConfig{Dir: dir, Fsync: "off"})
			if err != nil {
				t.Fatal(err)
			}
			e.SetJournalBound(4)
			cold := NewEngine()

			apply := func(f func(*Engine) error) {
				t.Helper()
				if err := f(e); err != nil {
					t.Fatal(err)
				}
				if err := f(cold); err != nil {
					t.Fatal(err)
				}
			}
			apply(func(x *Engine) error { return x.CreateTable("p", "x", "y") })
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 120; i++ {
				// A small domain so deletes hit live rows and inserts collide
				// with existing ones: duplicate inserts and missed deletes
				// must not advance the generation (or the log) on either side.
				x, y := int64(rng.Intn(30)*20), float64(rng.Intn(8))/3
				if rng.Intn(4) == 0 {
					apply(func(e *Engine) error { _, err := e.Delete("p", x, y); return err })
				} else {
					apply(func(e *Engine) error { return e.Insert("p", x, y) })
				}
				if i == 60 {
					if _, err := e.Snapshot(context.Background()); err != nil {
						t.Fatalf("mid-history snapshot: %v", err)
					}
				}
			}
			if err := e.Close(); err != nil {
				t.Fatal(err)
			}

			e2, rec, err := OpenEngine(DurabilityConfig{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			defer e2.Close()
			if rec.SnapshotGen == 0 {
				t.Fatalf("recovery ignored the snapshot: %+v", rec)
			}
			assertEnginesEqual(t, e2, cold)
		})
	}
}
