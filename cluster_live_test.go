package diversification

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// clusterProc is one real divserve process in the live cluster test.
type clusterProc struct {
	addr string
	cmd  *exec.Cmd
	log  *bytes.Buffer
}

// startDivserve builds (once per call site via bin) and starts the real
// binary with the given extra flags on a fresh loopback port, returning
// once /healthz answers.
func startDivserve(t *testing.T, bin string, client *http.Client, extra ...string) *clusterProc {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	args := append([]string{"-addr", addr}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Env = os.Environ()
	var logBuf bytes.Buffer
	cmd.Stdout, cmd.Stderr = &logBuf, &logBuf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &clusterProc{addr: addr, cmd: cmd, log: &logBuf}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	})
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := client.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			return p
		}
		if time.Now().After(deadline) {
			t.Fatalf("divserve %v never became healthy: %v\nlog:\n%s", args, err, logBuf.String())
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestClusterLive boots a real 3-shard cluster over TCP — three shard
// divserve processes partitioning the demo catalog plus a coordinator —
// and exercises the acceptance path: a merged diversify answer, a routed
// mutation visible in the next merge, and a SIGKILLed shard yielding a
// flagged degraded partial result, never an error and never a silently
// wrong answer.
func TestClusterLive(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns four divserve processes over TCP")
	}
	bin := filepath.Join(t.TempDir(), "divserve")
	build := exec.Command("go", "build", "-o", bin, "./cmd/divserve")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building divserve: %v\n%s", err, out)
	}
	client := &http.Client{Timeout: 10 * time.Second}

	const shards = 3
	var shardProcs []*clusterProc
	var shardAddrs []string
	for i := 0; i < shards; i++ {
		p := startDivserve(t, bin, client, "-demo",
			"-shard-id", fmt.Sprint(i), "-shard-count", fmt.Sprint(shards))
		shardProcs = append(shardProcs, p)
		shardAddrs = append(shardAddrs, p.addr)
	}
	coord := startDivserve(t, bin, client,
		"-shards", strings.Join(shardAddrs, ","), "-distance-attr", "type")
	base := "http://" + coord.addr

	post := func(path, body string) (int, map[string]interface{}) {
		t.Helper()
		resp, err := client.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		var out map[string]interface{}
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("POST %s: bad JSON %q: %v", path, raw, err)
		}
		return resp.StatusCode, out
	}

	// Merged diversify over the partitioned demo catalog: the demo
	// statement asks for k=3 over items under 40, which the full catalog
	// satisfies — so the partitioned cluster must too.
	status, body := post("/v1/query/gifts", `{"explain":true}`)
	if status != http.StatusOK {
		t.Fatalf("query: status %d body %v", status, body)
	}
	if body["degraded"] == true {
		t.Fatalf("healthy cluster answered degraded: %v", body)
	}
	sel := body["selection"].(map[string]interface{})
	if rows := sel["rows"].([]interface{}); len(rows) != 3 {
		t.Fatalf("merged selection has %d rows, want 3: %v", len(rows), rows)
	}
	if expl, _ := body["explain"].(string); !strings.Contains(expl, "cluster:   3 shards") {
		t.Fatalf("explain missing cluster trailer:\n%s", expl)
	}

	// Mutations route through the coordinator to the owning shard and the
	// next merge sees them: a top-relevance unique-type item must enter
	// the answer (price is the demo δrel, so 39 outranks all but the kite).
	status, body = post("/v1/insert/catalog", `{"rows":[["crystal chess set","strategy",39,2]]}`)
	if status != http.StatusOK || body["applied"] != float64(1) {
		t.Fatalf("insert: status %d body %v", status, body)
	}
	status, body = post("/v1/query/gifts", `{"k":5}`)
	if status != http.StatusOK {
		t.Fatalf("post-insert query: status %d body %v", status, body)
	}
	sel = body["selection"].(map[string]interface{})
	if !strings.Contains(fmt.Sprint(sel["rows"]), "crystal chess set") {
		t.Fatalf("inserted row missing from merged selection: %v", sel["rows"])
	}

	// Kill one shard outright (SIGKILL — no graceful drain) and query
	// again: the answer must come back flagged degraded with the dead
	// shard named, not as an error.
	if err := shardProcs[1].cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_, _ = shardProcs[1].cmd.Process.Wait()
	status, body = post("/v1/query/gifts", `{}`)
	if status != http.StatusOK {
		t.Fatalf("query with dead shard: status %d body %v", status, body)
	}
	if body["degraded"] != true {
		t.Fatalf("dead shard but response not degraded: %v", body)
	}
	if from, _ := body["degraded_from"].(string); !strings.Contains(from, "shard[1]") {
		t.Fatalf("degraded_from does not name the dead shard: %q", from)
	}
	sel = body["selection"].(map[string]interface{})
	if rows := sel["rows"].([]interface{}); len(rows) == 0 {
		t.Fatal("degraded response carries no partial selection")
	}

	// The coordinator's health and metrics reflect the loss.
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(raw), "degraded") {
		t.Fatalf("coordinator health with dead shard: %s", raw)
	}
	resp, err = client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var metrics map[string]interface{}
	if err := json.Unmarshal(raw, &metrics); err != nil {
		t.Fatal(err)
	}
	cm, ok := metrics["cluster"].(map[string]interface{})
	if !ok {
		t.Fatalf("coordinator metrics missing cluster block: %s", raw)
	}
	if cm["fan_out_errors"] == float64(0) || cm["partial_results"] == float64(0) {
		t.Fatalf("cluster metrics did not record the failure: %v", cm)
	}
}
