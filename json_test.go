package diversification

import (
	"context"
	"encoding/json"
	"math"
	"math/big"
	"strings"
	"testing"
)

// TestRowJSONRoundTrip: a row marshals as an ordered attribute→value
// object and unmarshals back to the same bytes, preserving value kinds
// (int stays int, float stays float).
func TestRowJSONRoundTrip(t *testing.T) {
	e := NewEngine()
	e.MustCreateTable("m", "name", "count", "score", "ok")
	e.MustInsert("m", "alpha", 42, 2.5, true)
	rs, err := e.Query("Q(name, count, score, ok) :- m(name, count, score, ok)")
	if err != nil {
		t.Fatal(err)
	}
	row := rs.Row(0)
	first, err := json.Marshal(row)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"name":"alpha","count":42,"score":2.5,"ok":true}`
	if string(first) != want {
		t.Errorf("row JSON = %s, want %s", first, want)
	}
	var back Row
	if err := json.Unmarshal(first, &back); err != nil {
		t.Fatal(err)
	}
	if got := back.Get("count"); got != int64(42) {
		t.Errorf("count round-tripped to %T %v, want int64 42", got, got)
	}
	if got := back.Get("score"); got != 2.5 {
		t.Errorf("score round-tripped to %T %v, want float64 2.5", got, got)
	}
	second, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Errorf("round trip not stable: %s vs %s", first, second)
	}
	// Values() exposes the row in candidate-set form.
	vals := back.Values()
	if len(vals) != 4 || vals[0] != "alpha" || vals[1] != int64(42) {
		t.Errorf("Values() = %v", vals)
	}
}

func TestRowJSONRejectsMalformed(t *testing.T) {
	var r Row
	for _, bad := range []string{`[1,2]`, `{"a":null}`, `{"a":{"nested":1}}`, `{"a":`} {
		if err := json.Unmarshal([]byte(bad), &r); err == nil {
			t.Errorf("unmarshal of %s should fail", bad)
		}
	}
}

// TestSelectionJSONRoundTrip: a real solver selection survives the wire
// with its exact float value.
func TestSelectionJSONRoundTrip(t *testing.T) {
	e := giftEngine(t)
	sel, err := e.MustPrepare("Q(item, type, price) :- catalog(item, type, price, s)",
		WithK(3), WithObjective(MaxSum), WithLambda(0.5),
		WithRelevance(priceRelevance), WithDistance(typeDistance),
	).Diversify(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(sel)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"rows"`, `"value"`, `"method"`} {
		if !strings.Contains(string(raw), field) {
			t.Errorf("selection JSON %s lacks %s", raw, field)
		}
	}
	var back Selection
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(back.Value) != math.Float64bits(sel.Value) {
		t.Errorf("value drifted across the wire: %x vs %x",
			math.Float64bits(back.Value), math.Float64bits(sel.Value))
	}
	if back.Method != sel.Method || len(back.Rows) != len(sel.Rows) {
		t.Errorf("selection shape drifted: %+v", back)
	}
	for i := range back.Rows {
		if back.Rows[i].Get("item") != sel.Rows[i].Get("item") {
			t.Errorf("row %d drifted: %v vs %v", i, back.Rows[i], sel.Rows[i])
		}
	}
}

func TestRefreshInfoAndStatsJSONRoundTrip(t *testing.T) {
	info := RefreshInfo{Mode: "delta", Added: 3, Removed: 1, Rechecked: 2, Answers: 40}
	raw, err := json.Marshal(info)
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"mode":"delta","added":3,"removed":1,"rechecked":2,"answers":40}`; string(raw) != want {
		t.Errorf("RefreshInfo JSON = %s, want %s", raw, want)
	}
	var infoBack RefreshInfo
	if err := json.Unmarshal(raw, &infoBack); err != nil {
		t.Fatal(err)
	}
	if infoBack != info {
		t.Errorf("RefreshInfo round trip: %+v != %+v", infoBack, info)
	}

	st := Stats{Nodes: 10, Leaves: 4, Pruned: 2, Answers: 9, Explored: true, Frames: 3, Warm: true, Steps: 7, Seen: 5, Exhausted: true}
	raw, err = json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var stBack Stats
	if err := json.Unmarshal(raw, &stBack); err != nil {
		t.Fatal(err)
	}
	if stBack != st {
		t.Errorf("Stats round trip: %+v != %+v", stBack, st)
	}
	// omitempty keeps zero-valued solver families off the wire.
	raw, err = json.Marshal(Stats{Seen: 5})
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"seen":5}`; string(raw) != want {
		t.Errorf("sparse stats JSON = %s, want %s", raw, want)
	}
}

// TestResponseJSONRoundTrip covers the full response envelope, including
// the textual problem enum and a big.Int count.
func TestResponseJSONRoundTrip(t *testing.T) {
	e := giftEngine(t)
	ctx := context.Background()
	p := e.MustPrepare("Q(item) :- catalog(item, t, p, s)", WithK(2))
	resp, err := p.Do(ctx, Request{Problem: ProblemCount})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"problem":"count"`) {
		t.Errorf("response JSON lacks the textual problem: %s", raw)
	}
	var back Response
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Problem != ProblemCount {
		t.Errorf("problem round-tripped to %v", back.Problem)
	}
	if back.Count.Cmp(big.NewInt(15)) != 0 {
		t.Errorf("count round-tripped to %v, want 15", back.Count)
	}
	if back.Generation != resp.Generation || back.Route != resp.Route {
		t.Errorf("envelope drifted: %+v vs %+v", back, resp)
	}
	// The request side round-trips too (pointer overrides survive).
	k, bound := 4, 1.5
	reqRaw, err := json.Marshal(Request{Problem: ProblemDecide, K: &k, Bound: &bound})
	if err != nil {
		t.Fatal(err)
	}
	var reqBack Request
	if err := json.Unmarshal(reqRaw, &reqBack); err != nil {
		t.Fatal(err)
	}
	if reqBack.Problem != ProblemDecide || *reqBack.K != 4 || *reqBack.Bound != 1.5 {
		t.Errorf("request round trip: %+v", reqBack)
	}
	if err := json.Unmarshal([]byte(`{"problem":"nope"}`), &reqBack); err == nil {
		t.Error("unknown problem name should fail to unmarshal")
	}
}
