package diversification

import (
	"fmt"
	"math"
	"runtime"

	"repro/internal/objective"
)

// Objective identifies one of the paper's three objective-function families
// (Section 3, after Gollapudi & Sharma): max-sum (FMS), max-min (FMM) and
// mono-objective (Fmono). The zero value is MaxSum.
type Objective int

const (
	// MaxSum is FMS: (k-1)(1-λ)·Σ δrel + 2λ·Σ pairwise δdis.
	MaxSum Objective = iota
	// MaxMin is FMM: (1-λ)·min δrel + λ·min pairwise δdis.
	MaxMin
	// Mono is Fmono: per-tuple relevance plus mean distance to the entire
	// answer set Q(D) — the one objective whose value depends on all of
	// Q(D), not just the selected set.
	Mono
)

// String returns the conventional lowercase name ("max-sum", "max-min",
// "mono").
func (o Objective) String() string {
	switch o {
	case MaxSum:
		return "max-sum"
	case MaxMin:
		return "max-min"
	case Mono:
		return "mono"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

func (o Objective) valid() bool { return o == MaxSum || o == MaxMin || o == Mono }

// ParseObjective maps the textual objective names (including the paper's
// FMS/FMM/Fmono abbreviations) to the typed enum; the empty string selects
// the default MaxSum.
func ParseObjective(s string) (Objective, error) {
	switch s {
	case "max-sum", "FMS", "":
		return MaxSum, nil
	case "max-min", "FMM":
		return MaxMin, nil
	case "mono", "Fmono":
		return Mono, nil
	default:
		return 0, argErrorf("objective", "unknown objective %q", s)
	}
}

// Algorithm selects the solving strategy. The zero value is Auto.
type Algorithm int

const (
	// Auto picks for the instance: exact branch-and-bound search (pruned
	// by admissible bounds, with the modular shortcut applying to Fmono).
	Auto Algorithm = iota
	// Exact forces the exact branch-and-bound search.
	Exact
	// Greedy runs the objective-matched polynomial heuristic (max-sum
	// dispersion greedy, Gonzalez farthest-point, or exact top-k for the
	// modular Fmono). No constraint support.
	Greedy
	// LocalSearch improves a greedy seed by single-swap hill climbing. No
	// constraint support.
	LocalSearch
	// Online maintains an anytime selection while the query evaluates —
	// the paper's embed-diversification-in-evaluation mode (Section 1).
	// FMS/FMM only, no constraint support.
	Online
)

// String returns the conventional lowercase name.
func (a Algorithm) String() string {
	switch a {
	case Auto:
		return "auto"
	case Exact:
		return "exact"
	case Greedy:
		return "greedy"
	case LocalSearch:
		return "local-search"
	case Online:
		return "online"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

func (a Algorithm) valid() bool {
	switch a {
	case Auto, Exact, Greedy, LocalSearch, Online:
		return true
	default:
		return false
	}
}

// ParseAlgorithm maps the textual algorithm names to the typed enum; the
// empty string selects Auto.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "auto", "":
		return Auto, nil
	case "exact":
		return Exact, nil
	case "greedy":
		return Greedy, nil
	case "local-search":
		return LocalSearch, nil
	case "online":
		return Online, nil
	default:
		return 0, argErrorf("algorithm", "unknown algorithm %q", s)
	}
}

// PlaneRegime selects how the score plane stores pairwise distances. The
// zero value PlaneAuto lets the planner pick from the answer count and the
// plane memory limit; the other values force a regime (falling back to the
// memo cache when a quadratic store would exceed the limit).
type PlaneRegime int

const (
	// PlaneAuto resolves the regime from n and the memory limit: the
	// float64 matrix when it fits, otherwise float32 tiles when those fit,
	// otherwise the metric index for large metric candidate sets, with the
	// sharded memo cache as the small-n fallback.
	PlaneAuto PlaneRegime = iota
	// PlaneMaterialized forces the full float64 triangular matrix — exact,
	// O(n²) memory.
	PlaneMaterialized
	// PlaneTiled forces the float32 block-tiled matrix — half the memory
	// of the matrix, distances rounded to float32.
	PlaneTiled
	// PlaneIndexed forces the metric (vantage-point) index — O(n) memory,
	// exact distances computed on demand with index-pruned greedy scans.
	PlaneIndexed
	// PlaneMemoized forces the sharded memoizing cache — O(pairs touched)
	// memory with random eviction beyond the per-shard cap.
	PlaneMemoized
)

// String returns the conventional lowercase name.
func (r PlaneRegime) String() string {
	switch r {
	case PlaneAuto:
		return "auto"
	case PlaneMaterialized:
		return "materialized"
	case PlaneTiled:
		return "tiled"
	case PlaneIndexed:
		return "indexed"
	case PlaneMemoized:
		return "memoized"
	default:
		return fmt.Sprintf("PlaneRegime(%d)", int(r))
	}
}

func (r PlaneRegime) valid() bool {
	switch r {
	case PlaneAuto, PlaneMaterialized, PlaneTiled, PlaneIndexed, PlaneMemoized:
		return true
	default:
		return false
	}
}

// toObjective lowers the public enum to the objective package's Regime,
// which it mirrors value for value.
func (r PlaneRegime) toObjective() objective.Regime { return objective.Regime(r) }

// ParsePlaneRegime maps the textual regime names to the typed enum; the
// empty string selects PlaneAuto.
func ParsePlaneRegime(s string) (PlaneRegime, error) {
	switch s {
	case "auto", "":
		return PlaneAuto, nil
	case "materialized":
		return PlaneMaterialized, nil
	case "tiled":
		return PlaneTiled, nil
	case "indexed":
		return PlaneIndexed, nil
	case "memoized":
		return PlaneMemoized, nil
	default:
		return 0, argErrorf("plane-regime", "unknown plane regime %q", s)
	}
}

// ArgError reports an invalid caller-supplied argument: which field was at
// fault and why. Every validation failure of the option set, the request
// compiler and the candidate-set checks wraps into one, so serving layers
// can tell user errors (map to HTTP 400) from internal failures (500) with
// a single errors.As test.
type ArgError struct {
	// Field names the offending argument in its user-facing spelling:
	// "k", "lambda", "objective", "algorithm", "rank", "bound", "set",
	// "problem", "parallelism", "plane-memory-limit", "plane-regime".
	Field string
	// Reason says what was wrong with it, including the rejected value.
	Reason string
}

// Error renders "diversification: invalid <field>: <reason>".
func (e *ArgError) Error() string {
	return fmt.Sprintf("diversification: invalid %s: %s", e.Field, e.Reason)
}

// argErrorf builds an ArgError with a formatted reason.
func argErrorf(field, format string, args ...interface{}) *ArgError {
	return &ArgError{Field: field, Reason: fmt.Sprintf(format, args...)}
}

// settings is the resolved option state shared by Prepare and the per-call
// overrides. The defaults are the paper's: constant relevance 1, zero
// distance, λ = 0.5, objective FMS, automatic solver selection.
type settings struct {
	k             int
	objective     Objective
	algorithm     Algorithm
	lambda        float64
	relevance     func(Row) float64
	distance      func(Row, Row) float64
	constraints   []string
	bound         float64
	rank          int
	scorePlane    bool
	planeMaxBytes int64
	planeRegime   PlaneRegime
	parallelism   int  // solver workers; 0 = GOMAXPROCS, 1 = sequential
	parallelSet   bool // WithParallelism given (0 means auto, not default)
	incremental   bool // maintain caches from the change journal (default on)

	// dirty records which scoring bindings a per-call option replaced;
	// Prepared.call clears it before applying the call's options, so a set
	// bit means "this call overrides the prepared δrel/δdis" and the cached
	// score plane (whose values bake those functions in) must not be used.
	dirty uint8
}

const (
	dirtyRelevance uint8 = 1 << iota
	dirtyDistance
	dirtyPlaneLimit
	dirtyPlaneRegime
)

func defaultSettings() settings {
	return settings{lambda: 0.5, scorePlane: true, incremental: true}
}

// validate rejects inconsistent settings with typed ArgErrors; it is the
// single checkpoint for both Prepare-time and per-call option sets, so a
// serving layer can classify any failure it produces as a user error.
func (s *settings) validate() error {
	if s.k < 0 {
		return argErrorf("k", "must be non-negative, got %d", s.k)
	}
	if !s.objective.valid() {
		return argErrorf("objective", "unknown objective %s", s.objective)
	}
	if !s.algorithm.valid() {
		return argErrorf("algorithm", "unknown algorithm %s", s.algorithm)
	}
	if math.IsNaN(s.lambda) || s.lambda < 0 || s.lambda > 1 {
		return argErrorf("lambda", "must be in [0,1], got %v", s.lambda)
	}
	if s.rank < 0 {
		return argErrorf("rank", "must be non-negative, got %d", s.rank)
	}
	if s.planeMaxBytes < 0 {
		return argErrorf("plane-memory-limit", "must be non-negative, got %d", s.planeMaxBytes)
	}
	if !s.planeRegime.valid() {
		return argErrorf("plane-regime", "unknown plane regime %s", s.planeRegime)
	}
	if s.parallelism < 0 {
		return argErrorf("parallelism", "must be non-negative, got %d", s.parallelism)
	}
	return nil
}

// workers resolves the effective solver worker count: the explicit
// WithParallelism value, GOMAXPROCS for WithParallelism(0), and 1
// (sequential) when the option was never given.
func (s *settings) workers() int {
	if !s.parallelSet {
		return 1
	}
	if s.parallelism == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return s.parallelism
}

// An Option configures a prepared query at Prepare time or overrides its
// bindings for a single solve call.
type Option func(*settings)

// WithK sets the selection size k.
func WithK(k int) Option { return func(s *settings) { s.k = k } }

// WithObjective selects the objective-function family F.
func WithObjective(o Objective) Option { return func(s *settings) { s.objective = o } }

// WithAlgorithm selects the solving strategy.
func WithAlgorithm(a Algorithm) Option { return func(s *settings) { s.algorithm = a } }

// WithLambda sets the relevance/diversity trade-off λ ∈ [0,1]. Unlike the
// deprecated Request.Lambda/LambdaSet pair, WithLambda(0) means exactly
// λ = 0 (pure relevance, the tractable Section 8 setting); omitting the
// option keeps the default λ = 0.5.
func WithLambda(lambda float64) Option { return func(s *settings) { s.lambda = lambda } }

// WithRelevance sets δrel; nil restores the default constant 1.
func WithRelevance(f func(Row) float64) Option {
	return func(s *settings) {
		s.relevance = f
		s.dirty |= dirtyRelevance
	}
}

// WithDistance sets δdis; nil restores the default zero distance.
func WithDistance(f func(Row, Row) float64) Option {
	return func(s *settings) {
		s.distance = f
		s.dirty |= dirtyDistance
	}
}

// WithScorePlane toggles the interned score plane (on by default): the
// precomputed relevance vector and pairwise distance matrix that every
// solver runs on. Turning it off forces scoring through the δrel/δdis
// interfaces per lookup — useful only for debugging and for measuring the
// plane's own speedup.
func WithScorePlane(on bool) Option { return func(s *settings) { s.scorePlane = on } }

// WithPlaneMemoryLimit caps the score plane's materialized distance matrix
// in bytes. Answer sets whose n(n-1)/2 pairwise entries would exceed the
// limit keep the precomputed relevance vector but serve distances from a
// sharded memoizing cache instead of a full matrix. Zero restores the
// default (64 MiB, n ≈ 4096).
func WithPlaneMemoryLimit(bytes int64) Option {
	return func(s *settings) {
		s.planeMaxBytes = bytes
		s.dirty |= dirtyPlaneLimit
	}
}

// WithPlaneRegime overrides the score plane's distance-storage regime. The
// default PlaneAuto picks from the answer count and the memory limit:
// materialized matrix when n(n-1)/2 float64 entries fit, float32 tiles when
// those fit and n is large, the metric index for large metric candidate
// sets, and the memo cache otherwise. Forcing PlaneMaterialized or
// PlaneTiled above the memory limit degrades to PlaneMemoized;
// PlaneIndexed and PlaneMemoized are always honored.
func WithPlaneRegime(r PlaneRegime) Option {
	return func(s *settings) {
		s.planeRegime = r
		s.dirty |= dirtyPlaneRegime
	}
}

// WithParallelism sets the worker count for the exact branch-and-bound
// search: n > 1 splits the search tree into prefix frames solved by n
// goroutines pruning against a shared atomic incumbent bound that is
// warm-started from the greedy heuristics, n = 1 keeps the sequential walk,
// and n = 0 uses GOMAXPROCS. The parallel search is deterministic: it
// returns byte-identical sets and scores to the sequential path — only the
// visited-node statistics differ run to run.
//
// With the score plane disabled (WithScorePlane(false)), parallel solves
// call the δrel/δdis functions from multiple goroutines; custom scoring
// functions must then be safe for concurrent use.
func WithParallelism(n int) Option {
	return func(s *settings) {
		s.parallelism = n
		s.parallelSet = true
	}
}

// WithIncrementalRefresh toggles incremental cache maintenance (on by
// default): after database mutations, a Prepared handle consults the
// relation change journal and — for delta-maintainable queries — applies
// the answer-set delta and extends/retires the score plane instead of
// rebuilding both from scratch. Turning it off forces the rebuild-on-
// every-mutation behavior; useful for differential testing and for
// measuring the incremental path's own speedup. A Prepare-time option:
// per-call overrides do not affect how the shared cache is maintained.
func WithIncrementalRefresh(on bool) Option {
	return func(s *settings) { s.incremental = on }
}

// AttrRelevance returns a δrel that reads the named attribute as a
// number: ints and floats coerce to float64, booleans to 0/1, anything
// else (including a missing attribute) to 0. It is the one definition of
// attribute-based relevance shared by the CLIs and the wire protocol's
// relevance_attr field.
func AttrRelevance(attr string) func(Row) float64 {
	return func(r Row) float64 {
		switch x := r.Get(attr).(type) {
		case int64:
			return float64(x)
		case float64:
			return x
		case bool:
			if x {
				return 1
			}
			return 0
		default:
			return 0
		}
	}
}

// AttrDistance returns the 0/1 δdis on the named attribute's inequality —
// rows agreeing on the attribute are distance 0, all others 1. Shared by
// the CLIs and the wire protocol's distance_attr field.
func AttrDistance(attr string) func(Row, Row) float64 {
	return func(a, b Row) float64 {
		if a.Get(attr) == b.Get(attr) {
			return 0
		}
		return 1
	}
}

// WithConstraints sets the compatibility constraints (class Cm, Section 9),
// replacing any previously configured set. Constraints given at Prepare
// time are parsed and validated once; per-call constraint overrides are
// compiled on that call.
func WithConstraints(constraints ...string) Option {
	return func(s *settings) { s.constraints = append([]string(nil), constraints...) }
}

// WithBound sets the objective bound B used by Decide and Count.
func WithBound(b float64) Option { return func(s *settings) { s.bound = b } }

// WithRank sets the rank threshold r used by InTopR.
func WithRank(r int) Option { return func(s *settings) { s.rank = r } }
