package diversification

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestDegradedAnswerMatchesGreedy is the differential pin for the
// mid-solve abort: the flagged approximate answer an exact search ships
// when it hits its soft deadline must be byte-identical — same rows, same
// value — to what the greedy route computes on the same instance, because
// it IS the warm-start greedy incumbent.
func TestDegradedAnswerMatchesGreedy(t *testing.T) {
	_, p := intractableEngine(t)

	greedyAlg := Greedy
	want, err := p.Do(context.Background(), Request{Problem: ProblemDiversify, Algorithm: &greedyAlg})
	if err != nil {
		t.Fatalf("greedy reference solve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	got, err := p.Do(ctx, Request{Problem: ProblemDiversify})
	if err != nil {
		t.Fatalf("deadline-pressured solve: %v", err)
	}
	if !got.Degraded || got.Route != "greedy" {
		t.Fatalf("got route=%q degraded=%v, want flagged greedy degradation", got.Route, got.Degraded)
	}
	if got.Selection.Value != want.Selection.Value {
		t.Errorf("degraded value %v != greedy incumbent value %v", got.Selection.Value, want.Selection.Value)
	}
	if len(got.Selection.Rows) != len(want.Selection.Rows) {
		t.Fatalf("degraded selection has %d rows, greedy %d", len(got.Selection.Rows), len(want.Selection.Rows))
	}
	for i := range got.Selection.Rows {
		if got.Selection.Rows[i].String() != want.Selection.Rows[i].String() {
			t.Errorf("row %d: degraded %v != greedy %v", i, got.Selection.Rows[i], want.Selection.Rows[i])
		}
	}
}

// TestPlanStageDegradeFromHint checks the plan-stage downgrade: a seeded
// pessimistic cost hint makes a deadline-pressured request route straight
// to greedy — no exact search is attempted at all — with the abandoned
// chain recorded.
func TestPlanStageDegradeFromHint(t *testing.T) {
	e, p := intractableEngine(t)
	e.SeedCostHint("exact", time.Hour)
	e.SeedCostHint("parallel-exact", time.Hour)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	pl, err := p.Plan(ctx, Request{Problem: ProblemDiversify})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Route() != "greedy" {
		t.Fatalf("plan chose route %q, want greedy (hinted exact cost 1h against a 2s deadline)", pl.Route())
	}
	if !strings.Contains(pl.Explain(), "degraded:") {
		t.Errorf("Explain does not report the degradation:\n%s", pl.Explain())
	}

	resp, err := p.Do(ctx, Request{Problem: ProblemDiversify})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded || resp.Route != "greedy" {
		t.Errorf("got route=%q degraded=%v, want plan-stage greedy degradation", resp.Route, resp.Degraded)
	}
	if want := "exact→parallel-exact"; resp.DegradedFrom != want {
		t.Errorf("DegradedFrom = %q, want %q", resp.DegradedFrom, want)
	}
	if resp.Stats.Nodes != 0 {
		t.Errorf("plan-stage degradation still ran the exact search (%d nodes)", resp.Stats.Nodes)
	}
}

// TestPlanStageParallelDowngrade checks the intermediate step of the
// chain: when the parallel search is predicted to fit the budget, the
// plan switches to it — the answer stays exact (Degraded false) but
// DegradedFrom records the deadline intervened.
func TestPlanStageParallelDowngrade(t *testing.T) {
	e := NewEngine()
	e.MustCreateTable("points", "id")
	for i := 0; i < 12; i++ {
		e.MustInsert("points", i)
	}
	p, err := e.Prepare("Q(id) :- points(id)", WithK(3))
	if err != nil {
		t.Fatal(err)
	}
	e.SeedCostHint("exact", 10*time.Second)
	e.SeedCostHint("parallel-exact", time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, err := p.Do(ctx, Request{Problem: ProblemDiversify})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Route != "exact" {
		t.Fatalf("route %q, want exact (parallel downgrade keeps the exact route)", resp.Route)
	}
	if resp.Degraded {
		t.Error("parallel downgrade flagged the answer Degraded; it is still exact")
	}
	if resp.DegradedFrom != "exact" {
		t.Errorf("DegradedFrom = %q, want %q", resp.DegradedFrom, "exact")
	}
}

// TestNoDegradeWithoutPressure: with no deadline, or a roomy one, nothing
// changes — no flags, exact route, exact answer.
func TestNoDegradeWithoutPressure(t *testing.T) {
	e := NewEngine()
	e.MustCreateTable("points", "id")
	for i := 0; i < 10; i++ {
		e.MustInsert("points", i)
	}
	p, err := e.Prepare("Q(id) :- points(id)", WithK(3))
	if err != nil {
		t.Fatal(err)
	}
	e.SeedCostHint("exact", time.Microsecond)

	resp, err := p.Do(context.Background(), Request{Problem: ProblemDiversify})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Degraded || resp.DegradedFrom != "" || resp.Route != "exact" {
		t.Errorf("undeadlined request degraded: route=%q degraded=%v from=%q",
			resp.Route, resp.Degraded, resp.DegradedFrom)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	resp, err = p.Do(ctx, Request{Problem: ProblemDiversify})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Degraded || resp.DegradedFrom != "" {
		t.Errorf("roomy deadline degraded: degraded=%v from=%q", resp.Degraded, resp.DegradedFrom)
	}
}

// TestCostObservationsFeedPrediction: after enough real solves the model
// predicts from observations, and an absurd hint no longer dominates.
func TestCostObservationsFeedPrediction(t *testing.T) {
	var c costModel
	c.hint("exact", time.Hour)
	if pred, ok := c.predict("exact", 100); !ok || pred != 3600 {
		t.Fatalf("hint-only predict = %v, %v; want 3600s", pred, ok)
	}
	// Quadratic-ish growth observations take over.
	for _, n := range []int{10, 20, 40, 80} {
		c.observe("exact", n, float64(n*n)*1e-6)
	}
	pred, ok := c.predict("exact", 160)
	if !ok {
		t.Fatal("predict after observations not ok")
	}
	if pred < 0.015 || pred > 0.04 { // true value ≈ 0.0256s
		t.Errorf("predict(160) = %vs, want ≈0.0256s from the fitted curve", pred)
	}
}

// TestCostPredictScalesDownThinModel pins the thin-model fallback in both
// directions: with too few observations to fit a curve, the prediction
// scales the largest observation linearly for n below it as well as above.
// The regression this guards: predict used to return the largest
// observation's cost unscaled for any smaller n, so one slow solve over a
// big answer set made every small request look expensive and degrade under
// a deadline a fuller model would have served exactly.
func TestCostPredictScalesDownThinModel(t *testing.T) {
	var c costModel
	// Two observations: below bench.PredictAt's three-point fitting
	// minimum, so predict must take the linear-scaling fallback.
	c.observe("exact", 1000, 10.0)
	c.observe("exact", 500, 5.0)

	pred, ok := c.predict("exact", 100)
	if !ok {
		t.Fatal("predict with observations not ok")
	}
	if want := 1.0; pred != want { // 10s × 100/1000
		t.Errorf("predict(100) = %vs, want %vs (linear scale below the largest observation)", pred, want)
	}
	// Above the largest observation the behavior is unchanged.
	if pred, _ := c.predict("exact", 2000); pred != 20.0 {
		t.Errorf("predict(2000) = %vs, want 20s (linear scale above)", pred)
	}
	// At the largest observation the prediction is the observation itself.
	if pred, _ := c.predict("exact", 1000); pred != 10.0 {
		t.Errorf("predict(1000) = %vs, want the observation's 10s", pred)
	}
}
