package diversification

import (
	"context"
	"errors"
	"math/big"
	"strings"
	"testing"
	"time"
)

// preparedEngine builds a catalog engine shared by the prepared-API tests.
func preparedEngine(t testing.TB) *Engine {
	t.Helper()
	e := NewEngine()
	e.MustCreateTable("catalog", "item", "type", "price", "inStock")
	rows := []struct {
		item, typ string
		price     int
		stock     int
	}{
		{"ring", "jewelry", 28, 2},
		{"novel", "book", 22, 9},
		{"puzzle", "toy", 25, 4},
		{"scarf", "fashion", 30, 1},
		{"paints", "artsy", 21, 7},
		{"kite", "toy", 55, 3},
	}
	for _, r := range rows {
		e.MustInsert("catalog", r.item, r.typ, r.price, r.stock)
	}
	return e
}

func selectionItems(sel *Selection) []string {
	out := make([]string, len(sel.Rows))
	for i, r := range sel.Rows {
		out[i] = r.Get("item").(string)
	}
	return out
}

func TestPreparedMatchesOneShot(t *testing.T) {
	e := preparedEngine(t)
	ctx := context.Background()
	const src = "Q(item, type, price) :- catalog(item, type, price, s), price <= 30"

	p, err := e.Prepare(src,
		WithK(3),
		WithObjective(MaxSum),
		WithLambda(0.5),
		WithRelevance(priceRelevance),
		WithDistance(typeDistance),
	)
	if err != nil {
		t.Fatal(err)
	}
	if p.Language() != "CQ" {
		t.Errorf("Language() = %q, want CQ", p.Language())
	}
	if p.Source() != src {
		t.Errorf("Source() = %q", p.Source())
	}

	oneShot, err := e.MustPrepare(src,
		WithK(3), WithObjective(MaxSum), WithLambda(0.5),
		WithRelevance(priceRelevance), WithDistance(typeDistance),
	).Diversify(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Repeated prepared solves must agree with each other and with a
	// freshly prepared handle solved once (the one-shot shape).
	var first *Selection
	for i := 0; i < 3; i++ {
		sel, err := p.Diversify(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if sel.Value != oneShot.Value {
			t.Errorf("prepared value %v != one-shot value %v", sel.Value, oneShot.Value)
		}
		if first == nil {
			first = sel
			continue
		}
		a, b := selectionItems(first), selectionItems(sel)
		for j := range a {
			if a[j] != b[j] {
				t.Errorf("call %d selection drifted: %v vs %v", i, a, b)
			}
		}
	}

	// Decide and Count agree too.
	pd, err := p.Decide(ctx, WithBound(oneShot.Value))
	if err != nil {
		t.Fatal(err)
	}
	if !pd {
		t.Error("Decide at the optimum bound should hold")
	}
	pc, err := p.Count(ctx, WithBound(oneShot.Value))
	if err != nil {
		t.Fatal(err)
	}
	oc, err := e.MustPrepare(src,
		WithK(3), WithObjective(MaxSum), WithLambda(0.5),
		WithRelevance(priceRelevance), WithDistance(typeDistance),
	).Count(ctx, WithBound(oneShot.Value))
	if err != nil {
		t.Fatal(err)
	}
	if pc.Cmp(oc) != 0 {
		t.Errorf("prepared count %v != one-shot count %v", pc, oc)
	}
}

func TestPreparedPerCallOverridesDoNotStick(t *testing.T) {
	e := preparedEngine(t)
	ctx := context.Background()
	p, err := e.Prepare("Q(item, price) :- catalog(item, t, price, s)",
		WithK(2), WithObjective(Mono), WithLambda(0),
		WithRelevance(func(r Row) float64 { return float64(r.Get("price").(int64)) }))
	if err != nil {
		t.Fatal(err)
	}
	big5, err := p.Diversify(ctx, WithK(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(big5.Rows) != 5 {
		t.Fatalf("override k=5 selected %d rows", len(big5.Rows))
	}
	base, err := p.Diversify(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Rows) != 2 {
		t.Fatalf("base k=2 selected %d rows after an override call", len(base.Rows))
	}
}

func TestPreparedCacheInvalidationOnInsert(t *testing.T) {
	e := preparedEngine(t)
	ctx := context.Background()
	p, err := e.Prepare("Q(item, price) :- catalog(item, t, price, s)",
		WithK(1), WithObjective(Mono), WithLambda(0),
		WithRelevance(func(r Row) float64 { return float64(r.Get("price").(int64)) }))
	if err != nil {
		t.Fatal(err)
	}
	sel, err := p.Diversify(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := sel.Rows[0].Get("item"); got != "kite" {
		t.Fatalf("before insert, best item = %v, want kite", got)
	}
	// A strictly more relevant row must show up on the very next call: the
	// database generation advanced, so the cached answer set is stale.
	e.MustInsert("catalog", "diamond", "jewelry", 900, 1)
	sel, err = p.Diversify(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := sel.Rows[0].Get("item"); got != "diamond" {
		t.Errorf("after insert, best item = %v, want diamond (stale cache?)", got)
	}
	// CreateTable also advances the generation without breaking the handle.
	if err := e.CreateTable("unrelated", "x"); err != nil {
		t.Fatal(err)
	}
	sel, err = p.Diversify(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := sel.Rows[0].Get("item"); got != "diamond" {
		t.Errorf("after CreateTable, best item = %v, want diamond", got)
	}
}

// intractableEngine builds an instance big enough that exhaustive
// enumeration of C(55, 12) ≈ 2·10^11 candidate sets takes minutes. One
// tuple's relevance dwarfs the rest, so the solver's optimistic upper bound
// (which multiplies the remaining slots by the global maximum relevance)
// stays far above any reachable score and almost nothing prunes: only
// cancellation stops the search.
func intractableEngine(t testing.TB) (*Engine, *Prepared) {
	t.Helper()
	e := NewEngine()
	e.MustCreateTable("points", "id")
	for i := 0; i < 55; i++ {
		e.MustInsert("points", i)
	}
	p, err := e.Prepare("Q(id) :- points(id)",
		WithK(12), WithObjective(MaxSum), WithLambda(0.5),
		WithRelevance(func(r Row) float64 {
			id := r.Get("id").(int64)
			if id == 0 {
				return 1000
			}
			return 1 + float64(id%13)*0.001
		}))
	if err != nil {
		t.Fatal(err)
	}
	return e, p
}

func TestCancelCount(t *testing.T) {
	_, p := intractableEngine(t)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := p.Count(ctx) // B = 0: every C(55,12) ≈ 2.3e11 set is valid
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Count returned %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("cancellation took %v; the solver is not polling the context", elapsed)
	}
}

func TestCancelDiversify(t *testing.T) {
	// A deadline-pressured exact diversify no longer times out
	// empty-handed: the mid-solve abort fires at the soft deadline and the
	// warm-start greedy incumbent ships as a flagged approximate answer.
	_, p := intractableEngine(t)
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	resp, err := p.Do(ctx, Request{Problem: ProblemDiversify}) // flat objective: the exact search cannot prune
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("Diversify under deadline pressure returned %v, want a degraded greedy answer", err)
	}
	if !resp.Degraded || resp.Route != "greedy" || resp.DegradedFrom == "" {
		t.Errorf("got route=%q degraded=%v degraded_from=%q, want a flagged greedy degradation",
			resp.Route, resp.Degraded, resp.DegradedFrom)
	}
	if resp.Selection == nil {
		t.Fatal("degraded response carries no selection")
	}
	if elapsed > 5*time.Second {
		t.Errorf("degraded answer took %v; the solver is not honoring the soft deadline", elapsed)
	}
}

func TestCancelAlreadyExpired(t *testing.T) {
	_, p := intractableEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the call
	if _, err := p.Decide(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("Decide on a cancelled context returned %v, want context.Canceled", err)
	}
}

func TestPreparedUnknownEnums(t *testing.T) {
	e := preparedEngine(t)
	const src = "Q(item) :- catalog(item, t, p, s)"
	if _, err := e.Prepare(src, WithK(1), WithObjective(Objective(42))); err == nil {
		t.Error("unknown objective enum should fail Prepare")
	} else if !strings.Contains(err.Error(), "unknown objective") {
		t.Errorf("unhelpful error: %v", err)
	}
	if _, err := e.Prepare(src, WithK(1), WithAlgorithm(Algorithm(42))); err == nil {
		t.Error("unknown algorithm enum should fail Prepare")
	}
	if _, err := e.Prepare(src, WithK(-1)); err == nil {
		t.Error("negative K should fail Prepare")
	}
	if _, err := e.Prepare(src, WithK(1), WithLambda(1.5)); err == nil {
		t.Error("lambda out of [0,1] should fail Prepare")
	}
	// Per-call overrides are validated too.
	p, err := e.Prepare(src, WithK(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Diversify(context.Background(), WithObjective(Objective(-3))); err == nil {
		t.Error("unknown per-call objective enum should fail")
	}
	if _, err := p.Count(context.Background(), WithAlgorithm(Algorithm(7))); err == nil {
		t.Error("unknown per-call algorithm enum should fail")
	}
	if _, err := ParseObjective("nope"); err == nil {
		t.Error("ParseObjective should reject unknown names")
	}
	if _, err := ParseAlgorithm("nope"); err == nil {
		t.Error("ParseAlgorithm should reject unknown names")
	}
}

func TestPreparedSetValidation(t *testing.T) {
	e := preparedEngine(t)
	ctx := context.Background()
	p, err := e.Prepare("Q(item, price) :- catalog(item, price0, price, s)",
		WithK(2), WithObjective(Mono), WithLambda(0),
		WithRelevance(func(r Row) float64 { return float64(r.Get("price").(int64)) }),
		WithRank(1))
	if err != nil {
		t.Fatal(err)
	}
	// Wrong row count: 1 row for k = 2, surfaced as a typed ArgError.
	var argErr *ArgError
	if _, err := p.InTopR(ctx, [][]interface{}{{"kite", 55}}); err == nil {
		t.Error("wrong-size set should fail")
	} else if !strings.Contains(err.Error(), "want exactly k") {
		t.Errorf("unhelpful row-count error: %v", err)
	} else if !errors.As(err, &argErr) || argErr.Field != "set" {
		t.Errorf("row-count error is not an ArgError on \"set\": %v", err)
	}
	// Wrong arity: 3 values against a 2-ary head.
	if _, err := p.InTopR(ctx, [][]interface{}{{"kite", 55, 1}, {"scarf", 30}}); err == nil {
		t.Error("wrong-arity row should fail")
	} else if !strings.Contains(err.Error(), "arity") {
		t.Errorf("unhelpful arity error: %v", err)
	}
	// Unsupported value type names its position.
	if _, err := p.Rank(ctx, [][]interface{}{{"kite", struct{}{}}, {"scarf", 30}}); err == nil {
		t.Error("unsupported value type should fail")
	}
	// Rank must be at least 1 for InTopR.
	if _, err := p.InTopR(ctx, [][]interface{}{{"kite", 55}, {"scarf", 30}}, WithRank(0)); err == nil {
		t.Error("rank 0 should fail")
	}
	// A valid call still works after all those rejections.
	ok, err := p.InTopR(ctx, [][]interface{}{{"kite", 55}, {"scarf", 30}})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("best pair should be rank 1")
	}
	rank, err := p.Rank(ctx, [][]interface{}{{"paints", 21}, {"novel", 22}})
	if err != nil {
		t.Fatal(err)
	}
	if rank != 15 {
		t.Errorf("worst pair ranks %d, want 15", rank)
	}
}

func TestPreparedConstraintOverride(t *testing.T) {
	e := preparedEngine(t)
	ctx := context.Background()
	p, err := e.Prepare("Q(item) :- catalog(item, t, p, s)", WithK(2))
	if err != nil {
		t.Fatal(err)
	}
	n, err := p.Count(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if n.Cmp(big.NewInt(15)) != 0 {
		t.Fatalf("unconstrained count = %v, want 15", n)
	}
	// Per-call constraints are compiled for that call only.
	n, err = p.Count(ctx, WithConstraints(`exists s (s.item = "ring")`))
	if err != nil {
		t.Fatal(err)
	}
	if n.Cmp(big.NewInt(5)) != 0 {
		t.Errorf("constrained count = %v, want 5", n)
	}
	if _, err := p.Count(ctx, WithConstraints("(((")); err == nil {
		t.Error("unparsable per-call constraint should fail")
	}
	if _, err := p.Count(ctx, WithConstraints(`exists s (s.nope = 1)`)); err == nil {
		t.Error("unknown attribute in per-call constraint should fail")
	}
	// The base (unconstrained) setting is untouched.
	n, err = p.Count(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if n.Cmp(big.NewInt(15)) != 0 {
		t.Errorf("base count drifted to %v after overrides", n)
	}
}

func TestPreparedOnlineAndHeuristics(t *testing.T) {
	e := preparedEngine(t)
	ctx := context.Background()
	p, err := e.Prepare("Q(item, type, price) :- catalog(item, type, price, s)",
		WithK(3), WithObjective(MaxSum), WithLambda(0.5),
		WithRelevance(priceRelevance), WithDistance(typeDistance))
	if err != nil {
		t.Fatal(err)
	}
	exact, err := p.Diversify(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{Greedy, LocalSearch, Online} {
		sel, err := p.Diversify(ctx, WithAlgorithm(alg))
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if sel.Method != alg.String() {
			t.Errorf("method = %q, want %q", sel.Method, alg)
		}
		if sel.Value > exact.Value+1e-9 {
			t.Errorf("%s value %v beats exact %v", alg, sel.Value, exact.Value)
		}
	}
	// Online refuses the mono objective (needs all of Q(D)).
	if _, err := p.Diversify(ctx, WithAlgorithm(Online), WithObjective(Mono)); err == nil {
		t.Error("online with mono should be refused")
	}
}

func TestDecideSurfacesRealErrors(t *testing.T) {
	// A cancelled context is a "real" error on the online path: Decide must
	// surface it instead of silently falling back to exact search (which
	// would burn the full exponential cost after the caller gave up).
	_, p := intractableEngine(t)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	// The bound is just above the true optimum ((k-1)(1-λ)·top-12 relevance
	// sum ≈ 5561 with zero distance) but far below the solver's inflated
	// upper bounds, so neither the online probe nor pruning short-circuits.
	_, err := p.Decide(ctx, WithBound(5610))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Decide returned %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("Decide kept solving for %v after cancellation", elapsed)
	}
}

func TestDecideWarmsCacheWhenStreamExhausts(t *testing.T) {
	e := preparedEngine(t)
	ctx := context.Background()
	p, err := e.Prepare("Q(item, type, price) :- catalog(item, type, price, s)",
		WithK(3), WithObjective(MaxSum), WithLambda(0.5), WithDistance(typeDistance))
	if err != nil {
		t.Fatal(err)
	}
	if p.cacheWarm() {
		t.Fatal("cache unexpectedly warm before any solve")
	}
	// An unreachable bound forces the online stream to exhaust Q(D); the
	// materialized pool must land in the cache.
	ok, err := p.Decide(ctx, WithBound(1e9))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("unreachable bound decided true")
	}
	if !p.cacheWarm() {
		t.Error("an exhausted online stream should warm the answer cache")
	}
	// The warmed cache serves the same answers as a fresh evaluation.
	sel, err := p.Diversify(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Rows) != 3 {
		t.Errorf("diversify off the warmed cache selected %d rows", len(sel.Rows))
	}
}

func TestCancelOnlineDiversifySmallSet(t *testing.T) {
	// Small answer sets finish streaming before the evaluator's throttled
	// poll fires; the online path must honour cancellation anyway.
	e := preparedEngine(t)
	p, err := e.Prepare("Q(item, type, price) :- catalog(item, type, price, s)",
		WithK(2), WithObjective(MaxSum), WithAlgorithm(Online))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Diversify(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("online Diversify on a cancelled context returned %v, want context.Canceled", err)
	}
}

func TestRequestTypedOverrides(t *testing.T) {
	// The Request's typed pointer fields override the Prepare-time
	// bindings exactly as the matching functional options do, and Options
	// wins when both are given (it is applied last).
	e := preparedEngine(t)
	ctx := context.Background()
	p, err := e.Prepare("Q(item, type, price) :- catalog(item, type, price, s)",
		WithK(2), WithObjective(MaxSum), WithLambda(1), WithDistance(typeDistance))
	if err != nil {
		t.Fatal(err)
	}
	k3, lambda0, mono := 3, 0.0, Mono
	viaOptions, err := p.Diversify(ctx, WithK(k3))
	if err != nil {
		t.Fatal(err)
	}
	viaTyped, err := p.Do(ctx, Request{Problem: ProblemDiversify, K: &k3})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := selectionItems(viaOptions), selectionItems(viaTyped.Selection); strings.Join(a, ",") != strings.Join(b, ",") {
		t.Errorf("typed K override selected %v, option form %v", b, a)
	}
	// Options is applied after the typed fields, so it wins on conflict.
	resp, err := p.Do(ctx, Request{
		Problem:   ProblemDiversify,
		Lambda:    &lambda0,
		Objective: &mono,
		Options:   []Option{WithObjective(MaxSum), WithLambda(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	base, err := p.Diversify(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Selection.Value != base.Value {
		t.Errorf("Options should override typed fields: got %v, want %v", resp.Selection.Value, base.Value)
	}
}

func TestRequestProblemValidation(t *testing.T) {
	e := preparedEngine(t)
	ctx := context.Background()
	p := e.MustPrepare("Q(item) :- catalog(item, t, p, s)", WithK(2))
	var argErr *ArgError
	if _, err := p.Do(ctx, Request{Problem: ProblemKind(99)}); !errors.As(err, &argErr) || argErr.Field != "problem" {
		t.Errorf("unknown problem returned %v, want ArgError on \"problem\"", err)
	}
	// A negative rank only matters to the problems that read it.
	if _, err := p.Count(ctx); err != nil {
		t.Errorf("Count must not consult rank, got %v", err)
	}
	if _, err := p.InTopR(ctx, [][]interface{}{{"ring"}, {"kite"}}); !errors.As(err, &argErr) || argErr.Field != "rank" {
		t.Errorf("InTopR without a rank returned %v, want ArgError on \"rank\"", err)
	}
}

func TestCancelSmallWorkloads(t *testing.T) {
	// An already-cancelled context must abort every solve method even when
	// the workload is far too small for the throttled poll interval: the
	// cancellation contract cannot depend on |Q(D)| or the algorithm.
	e := preparedEngine(t)
	p, err := e.Prepare("Q(item) :- catalog(item, t, p, s)", WithK(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Count(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("Count on a 6-row table with a cancelled ctx returned %v, want context.Canceled", err)
	}
	if _, err := p.Diversify(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("Diversify with a cancelled ctx returned %v, want context.Canceled", err)
	}
}

func TestOnlineDiversifyWarmsCache(t *testing.T) {
	e := preparedEngine(t)
	ctx := context.Background()
	p, err := e.Prepare("Q(item, type, price) :- catalog(item, type, price, s)",
		WithK(3), WithObjective(MaxSum), WithAlgorithm(Online), WithDistance(typeDistance))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Diversify(ctx); err != nil {
		t.Fatal(err)
	}
	if !p.cacheWarm() {
		t.Error("online Diversify consumes the full stream and must warm the cache")
	}
	// The warmed cache must hold the complete, correctly ordered Q(D):
	// an exact solve off it agrees with a freshly prepared exact solve.
	warm, err := p.Diversify(ctx, WithAlgorithm(Exact))
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := e.MustPrepare("Q(item, type, price) :- catalog(item, type, price, s)",
		WithK(3), WithObjective(MaxSum), WithDistance(typeDistance)).Diversify(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Value != fresh.Value {
		t.Errorf("exact solve off online-warmed cache scored %v, fresh eval %v", warm.Value, fresh.Value)
	}
}

func TestPreparedEmptyAnswerSetCaches(t *testing.T) {
	// A prepared query with zero answers must cache the emptiness: every
	// solve succeeds (vacuously) without tripping over a nil-slice cache
	// sentinel.
	e := preparedEngine(t)
	ctx := context.Background()
	p, err := e.Prepare("Q(item) :- catalog(item, t, price, s), price > 1000", WithK(0))
	if err != nil {
		t.Fatal(err)
	}
	n, err := p.Count(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if n.Cmp(big.NewInt(1)) != 0 { // the empty set is the one valid 0-set at B=0
		t.Errorf("count over empty answers = %v, want 1", n)
	}
	if !p.cacheWarm() {
		t.Error("empty answer set must still warm the cache")
	}
	if _, err := p.Diversify(ctx, WithK(1)); err == nil {
		t.Error("k=1 over an empty answer set should report no candidate set")
	}
}
