package diversification

import (
	"repro/internal/relation"
	"repro/internal/value"
)

// Row is one query answer with named attribute access.
type Row struct {
	schema relation.Schema
	tuple  relation.Tuple
}

// Get returns the named attribute's value as an interface (int64, float64,
// string or bool), or nil when absent.
func (r Row) Get(attr string) interface{} {
	i := r.schema.AttrIndex(attr)
	if i < 0 || i >= len(r.tuple) {
		return nil
	}
	v := r.tuple[i]
	switch v.Kind() {
	case value.KindInt:
		return v.AsInt()
	case value.KindFloat:
		return v.AsFloat()
	case value.KindBool:
		return v.AsBool()
	default:
		return v.AsString()
	}
}

// String renders the row.
func (r Row) String() string { return r.tuple.String() }

// ResultSet is a materialized query answer.
type ResultSet struct {
	schema relation.Schema
	rows   []relation.Tuple
}

// Len reports the number of answers.
func (rs *ResultSet) Len() int { return len(rs.rows) }

// Row returns the i-th answer.
func (rs *ResultSet) Row(i int) Row { return Row{schema: rs.schema, tuple: rs.rows[i]} }

// Selection is a chosen k-set with its objective value. It marshals to
// JSON with stable field names ("rows", "value", "method") and
// round-trips: each row serializes as an attribute→value object in schema
// order.
type Selection struct {
	Rows  []Row   `json:"rows"`
	Value float64 `json:"value"`
	// Method names the algorithm that produced the selection.
	Method string `json:"method,omitempty"`
}

// newSelection wraps solver-level tuples into the named-row Selection.
func newSelection(schema relation.Schema, set []relation.Tuple, val float64, method string) *Selection {
	sel := &Selection{Value: val, Method: method}
	for _, t := range set {
		sel.Rows = append(sel.Rows, Row{schema: schema, tuple: t})
	}
	return sel
}
