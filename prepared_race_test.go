package diversification

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// The concurrency contract under test: one Prepared handle is safe for any
// number of concurrent solves as long as the database is not mutated. These
// tests hammer the shared paths — the cached answer set, the shared score
// plane (materialized and sharded-memo regimes), the parallel search, the
// batch API and the cold-cache online streaming of Decide — from 8
// goroutines each, and are meant to run under -race (the CI race job
// includes this package).

const raceWorkers = 8

// raceEngine builds a mid-size catalog so solves overlap in time.
func raceEngine(t testing.TB) *Engine {
	t.Helper()
	return batchEngine(t, 16)
}

// TestRaceSharedPreparedSolvers: every solver family against one handle.
func TestRaceSharedPreparedSolvers(t *testing.T) {
	e := raceEngine(t)
	ctx := context.Background()
	p := e.MustPrepare(batchQuery, append(scoringOpts(), WithK(3))...)

	// One warm reference result to compare against.
	want, err := p.Diversify(ctx, WithAlgorithm(Exact))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, raceWorkers*16)
	for w := 0; w < raceWorkers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				switch (w + i) % 6 {
				case 0:
					sel, err := p.Diversify(ctx, WithAlgorithm(Exact), WithParallelism(4))
					if err != nil {
						errs <- err
						continue
					}
					if sel.Value != want.Value {
						errs <- errors.New("parallel solve diverged under concurrency")
					}
				case 1:
					if _, err := p.Diversify(ctx, WithAlgorithm(Greedy)); err != nil {
						errs <- err
					}
				case 2:
					if _, err := p.Diversify(ctx, WithAlgorithm(LocalSearch)); err != nil {
						errs <- err
					}
				case 3:
					if _, err := p.Decide(ctx, WithBound(want.Value/2)); err != nil {
						errs <- err
					}
				case 4:
					if _, err := p.Count(ctx, WithBound(want.Value)); err != nil {
						errs <- err
					}
				case 5:
					if _, err := p.Diversify(ctx, WithObjective(Mono)); err != nil {
						errs <- err
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestRaceColdCacheDecide: 8 goroutines race a cold answer-set cache, so
// several drive online.QRD's streaming Append (each on its own streaming
// plane) while the winners fill the shared cache via storeAnswers.
func TestRaceColdCacheDecide(t *testing.T) {
	e := raceEngine(t)
	ctx := context.Background()
	p := e.MustPrepare(batchQuery, append(scoringOpts(), WithK(3))...)
	var wg sync.WaitGroup
	errs := make(chan error, raceWorkers)
	results := make([]bool, raceWorkers)
	for w := 0; w < raceWorkers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			ok, err := p.Decide(ctx, WithBound(1))
			if err != nil {
				errs <- err
				return
			}
			results[w] = ok
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for w := 1; w < raceWorkers; w++ {
		if results[w] != results[0] {
			t.Fatal("concurrent cold-cache Decide calls disagreed")
		}
	}
}

// TestRaceSharedPlaneMemoRegime forces the sharded memoizing distance cache
// (a tiny matrix budget) and hammers it through exact parallel solves.
func TestRaceSharedPlaneMemoRegime(t *testing.T) {
	e := raceEngine(t)
	ctx := context.Background()
	p := e.MustPrepare(batchQuery,
		append(scoringOpts(), WithK(3), WithPlaneMemoryLimit(64), WithParallelism(4))...)
	want, err := p.Diversify(ctx, WithAlgorithm(Exact))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, raceWorkers)
	for w := 0; w < raceWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sel, err := p.Diversify(ctx, WithAlgorithm(Exact))
			if err != nil {
				errs <- err
				return
			}
			if sel.Value != want.Value {
				errs <- errors.New("memo-regime parallel solve diverged under concurrency")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestRaceDiversifyBatchConcurrentHandles: batches on the same handle from
// multiple goroutines (batch workers inside, goroutines outside).
func TestRaceDiversifyBatchConcurrentHandles(t *testing.T) {
	e := raceEngine(t)
	ctx := context.Background()
	p := e.MustPrepare(batchQuery, append(scoringOpts(), WithK(3))...)
	items := []BatchItem{
		{Opts: []Option{WithK(2)}},
		{Opts: []Option{WithK(3), WithLambda(1)}},
		{Opts: []Option{WithK(3), WithObjective(MaxMin)}},
		{Opts: []Option{WithK(4), WithObjective(Mono)}},
	}
	want, err := p.DiversifyBatch(ctx, items)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, raceWorkers)
	for w := 0; w < raceWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := p.DiversifyBatch(ctx, items)
			if err != nil {
				errs <- err
				return
			}
			for i := range want {
				if (want[i].Err == nil) != (got[i].Err == nil) {
					errs <- errors.New("batch error slots diverged under concurrency")
					return
				}
				if want[i].Err == nil && want[i].Selection.Value != got[i].Selection.Value {
					errs <- errors.New("batch values diverged under concurrency")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
