package diversification

import (
	"context"
	"errors"
	"math"
	"math/big"
	"strings"
	"testing"
)

// giftEngine builds a small engine in the spirit of Example 1.1.
func giftEngine(t *testing.T) *Engine {
	t.Helper()
	e := NewEngine()
	e.MustCreateTable("catalog", "item", "type", "price", "inStock")
	rows := []struct {
		item, typ string
		price     int
		stock     int
	}{
		{"ring", "jewelry", 28, 2},
		{"novel", "book", 22, 9},
		{"puzzle", "toy", 25, 4},
		{"scarf", "fashion", 30, 1},
		{"paints", "artsy", 21, 7},
		{"kite", "toy", 55, 3},
	}
	for _, r := range rows {
		e.MustInsert("catalog", r.item, r.typ, r.price, r.stock)
	}
	return e
}

func typeDistance(a, b Row) float64 {
	if a.Get("type") == b.Get("type") {
		return 0
	}
	return 1
}

func priceRelevance(r Row) float64 { return float64(30 - absInt(r.Get("price").(int64)-25)) }

func absInt(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestEngineTableLifecycle(t *testing.T) {
	e := NewEngine()
	if err := e.CreateTable("t", "a"); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateTable("t", "a"); err == nil {
		t.Error("duplicate table should fail")
	}
	if err := e.CreateTable("u"); err == nil {
		t.Error("attribute-less table should fail")
	}
	if err := e.Insert("missing", 1); err == nil {
		t.Error("insert into missing table should fail")
	}
	if err := e.Insert("t", 1, 2); err == nil {
		t.Error("arity mismatch should fail")
	}
	if err := e.Insert("t", struct{}{}); err == nil {
		t.Error("unsupported type should fail")
	}
	if err := e.Insert("t", 1); err != nil {
		t.Fatal(err)
	}
}

func TestEngineDeleteValidation(t *testing.T) {
	e := giftEngine(t)
	if _, err := e.Delete("missing", 1); err == nil {
		t.Error("delete from missing table should fail")
	}
	if _, err := e.Delete("catalog", "ring"); err == nil {
		t.Error("arity mismatch should fail")
	}
	if _, err := e.Delete("catalog", struct{}{}, "jewelry", 28, 2); err == nil {
		t.Error("unsupported type should fail")
	}
	if ok, err := e.Delete("catalog", "ghost", "jewelry", 1, 1); err != nil || ok {
		t.Errorf("absent tuple: ok=%v err=%v, want false,nil", ok, err)
	}
	if ok, err := e.Delete("catalog", "ring", "jewelry", 28, 2); err != nil || !ok {
		t.Errorf("present tuple: ok=%v err=%v, want true,nil", ok, err)
	}
}

func TestMustHelpersPanic(t *testing.T) {
	e := NewEngine()
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		f()
	}
	mustPanic("MustCreateTable", func() { e.MustCreateTable("t") })
	mustPanic("MustInsert", func() { e.MustInsert("missing", 1) })
	mustPanic("MustPrepare", func() { e.MustPrepare("not a query") })
	if _, err := ClassifyQuery("not a query"); err == nil {
		t.Error("ClassifyQuery should surface parse errors")
	}
}

func TestEngineQuery(t *testing.T) {
	e := giftEngine(t)
	rs, err := e.Query("Q(item, price) :- catalog(item, t, price, s), price <= 30")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 5 {
		t.Fatalf("got %d rows, want 5", rs.Len())
	}
	row := rs.Row(0)
	if row.Get("item") == nil || row.Get("price") == nil {
		t.Error("named access failed")
	}
	if row.Get("nope") != nil {
		t.Error("missing attribute should be nil")
	}
}

func TestEngineQueryParseError(t *testing.T) {
	e := giftEngine(t)
	if _, err := e.Query("not a query"); err == nil {
		t.Error("parse error expected")
	}
}

func TestLanguageClassification(t *testing.T) {
	e := giftEngine(t)
	cases := map[string]string{
		"Q(i, t, p, s) :- catalog(i, t, p, s)":                 "identity",
		"Q(i) :- catalog(i, t, p, s), p < 30":                  "CQ",
		"Q(i) :- catalog(i, t, p, s), not catalog(i, t, p, s)": "FO",
	}
	for src, want := range cases {
		got, err := e.Language(src)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("Language(%q) = %q, want %q", src, got, want)
		}
	}
	if _, err := ClassifyQuery("Q(x) :- R(x) or S(x)"); err != nil {
		t.Fatal(err)
	}
}

func TestDiversifyExact(t *testing.T) {
	e := giftEngine(t)
	sel, err := e.MustPrepare(
		"Q(item, type, price) :- catalog(item, type, price, s), price <= 30",
		WithK(3), WithObjective(MaxSum), WithLambda(1), WithDistance(typeDistance),
	).Diversify(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Rows) != 3 || sel.Method != "exact" {
		t.Fatalf("selection malformed: %+v", sel)
	}
	// λ=1 with type distance: the three picks must have pairwise distinct
	// types (value 6 = 3 ordered pairs × 2).
	types := map[interface{}]bool{}
	for _, r := range sel.Rows {
		types[r.Get("type")] = true
	}
	if len(types) != 3 {
		t.Errorf("types not diverse: %v", sel.Rows)
	}
}

func TestDiversifyGreedyAndLocalSearch(t *testing.T) {
	e := giftEngine(t)
	ctx := context.Background()
	p := e.MustPrepare("Q(item, type, price) :- catalog(item, type, price, s)",
		WithK(3), WithObjective(MaxSum), WithLambda(0.5),
		WithRelevance(priceRelevance), WithDistance(typeDistance))
	exact, err := p.Diversify(ctx)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := p.Diversify(ctx, WithAlgorithm(Greedy))
	if err != nil {
		t.Fatal(err)
	}
	if greedy.Value > exact.Value+1e-9 {
		t.Errorf("greedy %v beat exact %v", greedy.Value, exact.Value)
	}
	improved, err := p.Diversify(ctx, WithAlgorithm(LocalSearch))
	if err != nil {
		t.Fatal(err)
	}
	if improved.Value < greedy.Value-1e-9 || improved.Value > exact.Value+1e-9 {
		t.Errorf("local-search %v outside [greedy %v, exact %v]", improved.Value, greedy.Value, exact.Value)
	}
}

func TestDiversifyOnline(t *testing.T) {
	e := giftEngine(t)
	ctx := context.Background()
	p := e.MustPrepare("Q(item, type, price) :- catalog(item, type, price, s)",
		WithK(3), WithObjective(MaxSum), WithLambda(0.5),
		WithRelevance(priceRelevance), WithDistance(typeDistance))
	exact, err := p.Diversify(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := p.Diversify(ctx, WithAlgorithm(Online))
	if err != nil {
		t.Fatal(err)
	}
	if sel.Method != "online" || len(sel.Rows) != 3 {
		t.Fatalf("selection malformed: %+v", sel)
	}
	if sel.Value > exact.Value+1e-9 {
		t.Errorf("online %v beat exact %v", sel.Value, exact.Value)
	}
	// Online rejects mono (needs all of Q(D)) — surfaced as an error.
	if _, err := p.Diversify(ctx, WithAlgorithm(Online), WithObjective(Mono)); err == nil {
		t.Error("online with mono should be refused")
	}
}

func TestDiversifyErrors(t *testing.T) {
	e := giftEngine(t)
	ctx := context.Background()
	if _, err := e.Prepare("bad", WithK(1)); err == nil {
		t.Error("bad query should fail")
	}
	p := e.MustPrepare("Q(i) :- catalog(i, t, p, s)", WithK(1))
	if _, err := p.Diversify(ctx, WithK(100)); !errors.Is(err, ErrNoCandidate) {
		t.Errorf("k too large returned %v, want ErrNoCandidate", err)
	}
	var argErr *ArgError
	if _, err := p.Diversify(ctx, WithK(-1)); !errors.As(err, &argErr) || argErr.Field != "k" {
		t.Errorf("negative k returned %v, want ArgError on \"k\"", err)
	}
	if _, err := p.Diversify(ctx, WithObjective(Objective(9))); !errors.As(err, &argErr) || argErr.Field != "objective" {
		t.Errorf("unknown objective returned %v, want ArgError on \"objective\"", err)
	}
	if _, err := p.Diversify(ctx, WithAlgorithm(Algorithm(9))); !errors.As(err, &argErr) || argErr.Field != "algorithm" {
		t.Errorf("unknown algorithm returned %v, want ArgError on \"algorithm\"", err)
	}
}

func TestDecideRespectsBound(t *testing.T) {
	e := giftEngine(t)
	ctx := context.Background()
	p := e.MustPrepare("Q(item, type, price) :- catalog(item, type, price, s)",
		WithK(2), WithObjective(MaxMin), WithLambda(1), WithDistance(typeDistance))
	bound := 1.0
	resp, err := p.Do(ctx, Request{Problem: ProblemDecide, Bound: &bound})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Decided() {
		t.Error("bound 1 should be reachable")
	}
	bound = 5
	resp, err = p.Do(ctx, Request{Problem: ProblemDecide, Bound: &bound})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Decided() {
		t.Error("bound 5 should be unreachable (distances are 0/1)")
	}
}

func TestDecideMonoUsesPTimePath(t *testing.T) {
	e := giftEngine(t)
	ctx := context.Background()
	p := e.MustPrepare("Q(item, type, price) :- catalog(item, type, price, s)",
		WithK(3), WithObjective(Mono), WithLambda(0), // λ = 0: pure relevance
		WithRelevance(priceRelevance), WithBound(60))
	resp, err := p.Do(ctx, Request{Problem: ProblemDecide})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Decided() {
		t.Error("three items near price 25 should reach 60")
	}
	if resp.Route != "mono-ptime" {
		t.Errorf("mono decide routed through %q, want mono-ptime", resp.Route)
	}
}

func TestCount(t *testing.T) {
	e := giftEngine(t)
	// All 2-subsets of the 6 items with B=0: C(6,2) = 15.
	n, err := e.MustPrepare("Q(item) :- catalog(item, t, p, s)",
		WithK(2), WithObjective(MaxSum)).Count(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n.Cmp(big.NewInt(15)) != 0 {
		t.Errorf("count = %v, want 15", n)
	}
}

func TestCountWithConstraints(t *testing.T) {
	e := giftEngine(t)
	// Pairs containing the ring only: 5.
	n, err := e.MustPrepare("Q(item) :- catalog(item, t, p, s)",
		WithK(2), WithObjective(MaxSum),
		WithConstraints(`exists s (s.item = "ring")`)).Count(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n.Cmp(big.NewInt(5)) != 0 {
		t.Errorf("constrained count = %v, want 5", n)
	}
}

func TestConstraintErrors(t *testing.T) {
	e := giftEngine(t)
	ctx := context.Background()
	const src = "Q(item) :- catalog(item, t, p, s)"
	if _, err := e.Prepare(src, WithK(1), WithConstraints("(((")); err == nil {
		t.Error("unparsable constraint should fail")
	}
	if _, err := e.Prepare(src, WithK(1), WithConstraints(`exists s (s.nope = 1)`)); err == nil {
		t.Error("unknown attribute should fail validation")
	}
	p := e.MustPrepare(src, WithK(1), WithConstraints(`exists s (s.item = "ring")`))
	if _, err := p.Diversify(ctx, WithAlgorithm(Greedy)); err == nil {
		t.Error("greedy with constraints should be refused")
	}
}

func TestInTopR(t *testing.T) {
	e := giftEngine(t)
	ctx := context.Background()
	p := e.MustPrepare("Q(item, price) :- catalog(item, price0, price, s)",
		WithK(2), WithObjective(Mono), WithLambda(0),
		WithRelevance(func(r Row) float64 { return float64(r.Get("price").(int64)) }),
		WithRank(1))
	// Top pair by price sum: kite(55) + scarf(30).
	ok, err := p.InTopR(ctx, [][]interface{}{{"kite", 55}, {"scarf", 30}})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("highest-price pair should be rank 1")
	}
	ok, err = p.InTopR(ctx, [][]interface{}{{"paints", 21}, {"novel", 22}})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("lowest-price pair should not be rank 1")
	}
	if _, err := p.InTopR(ctx, [][]interface{}{{"kite", 55}}); err == nil {
		t.Error("wrong-size set should fail")
	}
	if _, err := p.InTopR(ctx, nil, WithRank(0)); err == nil {
		t.Error("rank 0 should fail")
	}
}

func TestRankExact(t *testing.T) {
	e := giftEngine(t)
	ctx := context.Background()
	p := e.MustPrepare("Q(item, price) :- catalog(item, price0, price, s)",
		WithK(2), WithObjective(Mono), WithLambda(0),
		WithRelevance(func(r Row) float64 { return float64(r.Get("price").(int64)) }))
	// Top pair by price sum is rank 1; the bottom pair is rank C(6,2) = 15.
	rank, err := p.Rank(ctx, [][]interface{}{{"kite", 55}, {"scarf", 30}})
	if err != nil {
		t.Fatal(err)
	}
	if rank != 1 {
		t.Errorf("best pair ranks %d, want 1", rank)
	}
	rank, err = p.Rank(ctx, [][]interface{}{{"paints", 21}, {"novel", 22}})
	if err != nil {
		t.Fatal(err)
	}
	if rank != 15 {
		t.Errorf("worst pair ranks %d, want 15", rank)
	}
	if _, err := p.Rank(ctx, [][]interface{}{{"kite", 55}}); err == nil {
		t.Error("wrong-size set should fail")
	}
	if _, err := e.Prepare("broken", WithK(2)); err == nil {
		t.Error("bad query should fail")
	}
}

func TestLambdaDefaultsToHalf(t *testing.T) {
	e := giftEngine(t)
	// With the default λ = 0.5 both relevance and diversity matter; with a
	// degenerate distance, FMS should still track relevance.
	sel, err := e.MustPrepare("Q(item, price) :- catalog(item, t, price, s)",
		WithK(1), WithObjective(MaxSum),
		WithRelevance(func(r Row) float64 { return float64(r.Get("price").(int64)) }),
	).Diversify(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sel.Rows[0].Get("item") != "kite" {
		t.Errorf("k=1 should pick the most relevant item, got %v", sel.Rows[0])
	}
	if math.IsNaN(sel.Value) {
		t.Error("value is NaN")
	}
}

func TestRowString(t *testing.T) {
	e := giftEngine(t)
	rs, err := e.Query("Q(item) :- catalog(item, t, p, s)")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(rs.Row(0).String(), "(") {
		t.Error("row rendering broken")
	}
}
