package diversification

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestAdmitCancelWhileQueued cancels a waiter after it is already parked in
// the admission queue (not before admit, which takes a different path
// through the select) and requires the queue-depth accounting to unwind.
func TestAdmitCancelWhileQueued(t *testing.T) {
	e := serviceEngine(t, 10)
	svc := NewService(e, ServiceConfig{MaxConcurrent: 1, MaxQueue: 2})
	hold, err := svc.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() {
		_, err := svc.admit(ctx)
		got <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for svc.Metrics().QueueDepth == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if d := svc.Metrics().QueueDepth; d != 1 {
		t.Fatalf("queue depth = %d, want 1 (waiter parked)", d)
	}
	cancel()
	select {
	case err := <-got:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("queued waiter returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled waiter never left the queue")
	}
	m := svc.Metrics()
	if m.QueueDepth != 0 {
		t.Fatalf("queue depth = %d after cancel, want 0", m.QueueDepth)
	}
	if m.Rejected != 0 {
		t.Fatalf("rejected = %d, want 0 (a cancel is not a shed)", m.Rejected)
	}
	if m.CanceledWaiting != 1 {
		t.Fatalf("canceled_waiting = %d, want 1 (the canceled waiter must land in a counter)", m.CanceledWaiting)
	}
	hold()
}

// TestMaxQueueNegativeDisablesQueueing pins the documented MaxQueue=-1
// semantics: with all slots busy, admit rejects immediately instead of
// parking — even when the caller's context would happily wait.
func TestMaxQueueNegativeDisablesQueueing(t *testing.T) {
	e := serviceEngine(t, 10)
	svc := NewService(e, ServiceConfig{MaxConcurrent: 1, MaxQueue: -1})
	hold, err := svc.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer hold()
	start := time.Now()
	if _, err := svc.admit(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("admit with queueing disabled returned %v, want ErrOverloaded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("rejection took %s: it must not wait", elapsed)
	}
	if m := svc.Metrics(); m.Rejected != 1 || m.QueuePeak != 0 || m.QueueDepth != 0 {
		// Nothing ever waits with queueing disabled, so the peak stays 0.
		t.Fatalf("metrics after no-queue rejection: %+v", m)
	}
}

// TestQueueMetricsConsistencyUnderHammer races admits, releases and
// Metrics() readers — including waiters whose contexts expire while
// parked in the queue — then requires the gauges to return to zero, the
// peak to respect the configured bound, and the outcome counters to be
// conserved: every arrival lands in exactly one of admitted, Rejected or
// CanceledWaiting. Run under -race in CI.
func TestQueueMetricsConsistencyUnderHammer(t *testing.T) {
	const (
		slots      = 2
		queue      = 64
		goroutines = 16
		iters      = 50
	)
	e := serviceEngine(t, 10)
	svc := NewService(e, ServiceConfig{MaxConcurrent: slots, MaxQueue: queue})
	var wg sync.WaitGroup
	stopReads := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stopReads:
				return
			default:
			}
			m := svc.Metrics()
			if m.InFlight < 0 || m.InFlight > slots {
				t.Errorf("in-flight gauge out of range: %d", m.InFlight)
				return
			}
			if m.QueueDepth < 0 || m.QueueDepth > queue {
				t.Errorf("queue-depth gauge out of range: %d", m.QueueDepth)
				return
			}
		}
	}()
	var admitted, rejected, canceled sync.Map
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			var a, r, c int
			for i := 0; i < iters; i++ {
				// Every third arrival carries a deadline tight enough to
				// sometimes expire while parked in the queue, exercising
				// the canceled-waiting path alongside admits and sheds.
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				if i%3 == 0 {
					ctx, cancel = context.WithTimeout(ctx, time.Duration(1+i%5)*100*time.Microsecond)
				}
				release, err := svc.admit(ctx)
				cancel()
				switch {
				case err == nil:
					a++
					time.Sleep(time.Microsecond)
					release()
				case errors.Is(err, ErrOverloaded):
					r++
				case errors.Is(err, context.DeadlineExceeded):
					c++
				default:
					t.Errorf("admit: %v", err)
					return
				}
			}
			admitted.Store(g, a)
			rejected.Store(g, r)
			canceled.Store(g, c)
		}()
	}
	wgDone := make(chan struct{})
	go func() { wg.Wait(); close(wgDone) }()
	go func() {
		// Stop the metrics reader once the admit goroutines are done; a
		// second Wait on the same group is fine.
		for g := 0; g < goroutines; g++ {
			for {
				if _, ok := admitted.Load(g); ok {
					break
				}
				time.Sleep(time.Millisecond)
			}
		}
		close(stopReads)
	}()
	select {
	case <-wgDone:
	case <-time.After(60 * time.Second):
		t.Fatal("hammer deadlocked")
	}
	m := svc.Metrics()
	if m.InFlight != 0 || m.QueueDepth != 0 {
		t.Fatalf("gauges leaked after drain: %+v", m)
	}
	if m.QueuePeak > queue {
		t.Fatalf("queue peak %d exceeds bound %d", m.QueuePeak, queue)
	}
	var totalAdmitted, totalRejected, totalCanceled int
	admitted.Range(func(_, v interface{}) bool { totalAdmitted += v.(int); return true })
	rejected.Range(func(_, v interface{}) bool { totalRejected += v.(int); return true })
	canceled.Range(func(_, v interface{}) bool { totalCanceled += v.(int); return true })
	if int64(totalRejected) != m.Rejected {
		t.Fatalf("rejected counter = %d, callers saw %d", m.Rejected, totalRejected)
	}
	if int64(totalCanceled) != m.CanceledWaiting {
		t.Fatalf("canceled_waiting counter = %d, callers saw %d", m.CanceledWaiting, totalCanceled)
	}
	// Conservation: every arrival is admitted, shed or canceled — no
	// fourth outcome, no double counting.
	if got := totalAdmitted + totalRejected + totalCanceled; got != goroutines*iters {
		t.Fatalf("outcomes = %d (admitted %d + rejected %d + canceled %d), want %d arrivals",
			got, totalAdmitted, totalRejected, totalCanceled, goroutines*iters)
	}
}

// TestServiceCloseDrains covers the shutdown contract: Close waits for
// in-flight work, and the moment it is called new admissions bounce with
// ErrOverloaded.
func TestServiceCloseDrains(t *testing.T) {
	e := serviceEngine(t, 10)
	svc := NewService(e, ServiceConfig{MaxConcurrent: 2})
	release, err := svc.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	closed := make(chan error, 1)
	go func() { closed <- svc.Close(context.Background()) }()
	// Close must be waiting on the in-flight request, not returning —
	// and must already reject new work.
	deadline := time.Now().Add(5 * time.Second)
	for !svc.closed.Load() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if _, err := svc.admit(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("admit during shutdown returned %v, want ErrOverloaded", err)
	}
	select {
	case err := <-closed:
		t.Fatalf("Close returned (%v) while a request was still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}
	release()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("Close after drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close never returned after the last request finished")
	}
	// Idempotent: a second Close of a drained service is an immediate nil.
	if err := svc.Close(context.Background()); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestServiceCloseGraceExpires(t *testing.T) {
	e := serviceEngine(t, 10)
	svc := NewService(e, ServiceConfig{MaxConcurrent: 1, ShutdownGrace: 20 * time.Millisecond})
	release, err := svc.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	start := time.Now()
	err = svc.Close(context.Background())
	if err == nil {
		t.Fatal("Close returned nil with a request still in flight")
	}
	if !strings.Contains(err.Error(), "1 in flight") {
		t.Fatalf("Close error %q does not name the stuck request", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Close took %s, want ~the 20ms grace", elapsed)
	}
}
