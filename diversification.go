// Package diversification is a library for query result diversification
// over relational data, reproducing the model and algorithms of Deng & Fan,
// "On the Complexity of Query Result Diversification" (VLDB 2013 / TODS
// 2014).
//
// Given a database D, a query Q (conjunctive queries through full
// first-order logic), a set size k and an objective function F built from a
// relevance function δrel, a distance function δdis and a trade-off
// λ ∈ [0,1], the library answers the paper's three questions:
//
//   - Diversify/Decide (QRD): find a best k-subset of Q(D) under F, or
//     decide whether one reaching a bound B exists.
//   - InTopR (DRP): decide whether a given k-subset ranks among the top r.
//   - Count (RDC): count the k-subsets reaching B.
//
// Solvers are selected per the paper's complexity map: exact
// branch-and-bound in the general (intractable) settings, the paper's
// polynomial algorithms in the tractable cells (mono-objective, λ=0,
// constant k), and greedy/local-search heuristics when asked. Compatibility
// constraints in the paper's class Cm restrict feasible sets (Section 9).
//
// The quickstart:
//
//	e := diversification.NewEngine()
//	e.MustCreateTable("items", "id", "category", "price")
//	e.MustInsert("items", 1, "book", 12)
//	...
//	sel, err := e.Diversify(diversification.Request{
//	    Query:     "Q(id, category, price) :- items(id, category, price), price <= 50",
//	    K:         3,
//	    Objective: "max-sum",
//	    Lambda:    0.5,
//	})
package diversification

import (
	"errors"
	"fmt"
	"math/big"

	"repro/internal/approx"
	"repro/internal/compat"
	"repro/internal/core"
	"repro/internal/objective"
	"repro/internal/online"
	"repro/internal/query/eval"
	"repro/internal/query/parse"
	"repro/internal/relation"
	"repro/internal/solver"
	"repro/internal/value"
)

// Engine owns a database and evaluates diversification requests against it.
type Engine struct {
	db *relation.Database
}

// NewEngine creates an engine with an empty database.
func NewEngine() *Engine {
	return &Engine{db: relation.NewDatabase()}
}

// CreateTable registers a relation schema.
func (e *Engine) CreateTable(name string, attrs ...string) error {
	if len(attrs) == 0 {
		return errors.New("diversification: table needs at least one attribute")
	}
	if e.db.Relation(name) != nil {
		return fmt.Errorf("diversification: table %q already exists", name)
	}
	e.db.Add(relation.NewRelation(relation.NewSchema(name, attrs...)))
	return nil
}

// MustCreateTable is CreateTable that panics on error.
func (e *Engine) MustCreateTable(name string, attrs ...string) {
	if err := e.CreateTable(name, attrs...); err != nil {
		panic(err)
	}
}

// Insert adds a row of Go values (int, int64, float64, string, bool).
func (e *Engine) Insert(table string, values ...interface{}) error {
	r := e.db.Relation(table)
	if r == nil {
		return fmt.Errorf("diversification: no table %q", table)
	}
	if len(values) != r.Schema().Arity() {
		return fmt.Errorf("diversification: table %q expects %d values, got %d",
			table, r.Schema().Arity(), len(values))
	}
	t := make(relation.Tuple, len(values))
	for i, v := range values {
		cv, err := toValue(v)
		if err != nil {
			return err
		}
		t[i] = cv
	}
	r.Insert(t)
	return nil
}

// MustInsert is Insert that panics on error.
func (e *Engine) MustInsert(table string, values ...interface{}) {
	if err := e.Insert(table, values...); err != nil {
		panic(err)
	}
}

func toValue(v interface{}) (value.Value, error) {
	switch x := v.(type) {
	case int:
		return value.Int(int64(x)), nil
	case int64:
		return value.Int(x), nil
	case float64:
		return value.Float(x), nil
	case string:
		return value.Str(x), nil
	case bool:
		return value.Bool(x), nil
	case value.Value:
		return x, nil
	default:
		return value.Value{}, fmt.Errorf("diversification: unsupported value type %T", v)
	}
}

// Row is one query answer with named attribute access.
type Row struct {
	schema relation.Schema
	tuple  relation.Tuple
}

// Get returns the named attribute's value as an interface (int64, float64,
// string or bool), or nil when absent.
func (r Row) Get(attr string) interface{} {
	i := r.schema.AttrIndex(attr)
	if i < 0 || i >= len(r.tuple) {
		return nil
	}
	v := r.tuple[i]
	switch v.Kind() {
	case value.KindInt:
		return v.AsInt()
	case value.KindFloat:
		return v.AsFloat()
	case value.KindBool:
		return v.AsBool()
	default:
		return v.AsString()
	}
}

// String renders the row.
func (r Row) String() string { return r.tuple.String() }

// ResultSet is a materialized query answer.
type ResultSet struct {
	schema relation.Schema
	rows   []relation.Tuple
}

// Len reports the number of answers.
func (rs *ResultSet) Len() int { return len(rs.rows) }

// Row returns the i-th answer.
func (rs *ResultSet) Row(i int) Row { return Row{schema: rs.schema, tuple: rs.rows[i]} }

// Query parses and evaluates a query, returning the full answer set.
func (e *Engine) Query(src string) (*ResultSet, error) {
	q, err := parse.Query(src)
	if err != nil {
		return nil, err
	}
	if err := eval.Validate(q, e.db); err != nil {
		return nil, err
	}
	res := eval.Evaluate(q, e.db)
	return &ResultSet{schema: res.Schema(), rows: res.Sorted()}, nil
}

// Language reports the minimal language class of a query text: "identity",
// "CQ", "UCQ", "∃FO+" or "FO".
func (e *Engine) Language(src string) (string, error) {
	q, err := parse.Query(src)
	if err != nil {
		return "", err
	}
	return q.Classify().String(), nil
}

// Request describes a diversification task. Query, K and Objective are
// required; the zero values of the rest select the paper's defaults
// (constant relevance 1, zero distance, λ = 0.5, exact solving).
type Request struct {
	// Query in the textual rule syntax, e.g.
	// "Q(x, y) :- R(x, z), S(z, y), x < 5".
	Query string
	// K is the number of results to select.
	K int
	// Objective is "max-sum" (FMS), "max-min" (FMM) or "mono" (Fmono).
	Objective string
	// Lambda balances relevance (0) against diversity (1); NaN or an
	// untouched zero-value Request means 0.5. Set LambdaSet to force 0.
	Lambda    float64
	LambdaSet bool
	// Relevance is δrel; nil means constant 1.
	Relevance func(Row) float64
	// Distance is δdis; nil means zero distance.
	Distance func(Row, Row) float64
	// Constraints are compatibility constraints in the Cm syntax, e.g.
	// `forall t (t.id = "CS450" -> exists p (p.id = "CS220"))`.
	Constraints []string
	// Bound is the B threshold for Decide and Count.
	Bound float64
	// Rank is the r threshold for InTopR.
	Rank int
	// Algorithm selects the solver: "auto" (default; the paper's PTIME
	// algorithm when the setting is tractable, exact search otherwise),
	// "exact", "greedy", "local-search", or "online" (anytime selection
	// maintained while the query evaluates; FMS/FMM only).
	Algorithm string
}

// Selection is a chosen k-set with its objective value.
type Selection struct {
	Rows  []Row
	Value float64
	// Method names the algorithm that produced the selection.
	Method string
}

// build translates a Request into a core.Instance.
func (e *Engine) build(req Request) (*core.Instance, error) {
	if req.K < 0 {
		return nil, errors.New("diversification: K must be non-negative")
	}
	q, err := parse.Query(req.Query)
	if err != nil {
		return nil, err
	}
	if err := eval.Validate(q, e.db); err != nil {
		return nil, err
	}
	schema := relation.NewSchema(q.Name, q.Head...)

	lambda := req.Lambda
	if !req.LambdaSet && lambda == 0 {
		lambda = 0.5
	}
	var kind objective.Kind
	switch req.Objective {
	case "max-sum", "FMS", "":
		kind = objective.MaxSum
	case "max-min", "FMM":
		kind = objective.MaxMin
	case "mono", "Fmono":
		kind = objective.Mono
	default:
		return nil, fmt.Errorf("diversification: unknown objective %q", req.Objective)
	}

	var rel objective.Relevance
	if req.Relevance != nil {
		f := req.Relevance
		rel = objective.RelevanceFunc(func(t relation.Tuple) float64 {
			return f(Row{schema: schema, tuple: t})
		})
	}
	var dis objective.Distance
	if req.Distance != nil {
		f := req.Distance
		dis = objective.DistanceFunc(func(s, t relation.Tuple) float64 {
			return f(Row{schema: schema, tuple: s}, Row{schema: schema, tuple: t})
		})
	}

	in := &core.Instance{
		Query: q,
		DB:    e.db,
		Obj:   objective.New(kind, rel, dis, lambda),
		K:     req.K,
		B:     req.Bound,
		R:     req.Rank,
	}
	if len(req.Constraints) > 0 {
		set := compat.NewSet(8)
		for _, src := range req.Constraints {
			c, err := compat.Parse(src)
			if err != nil {
				return nil, err
			}
			if err := c.Validate(schema); err != nil {
				return nil, err
			}
			if err := set.Add(c); err != nil {
				return nil, err
			}
		}
		in.Sigma = set
	}
	return in, nil
}

// Diversify finds a k-set maximizing the objective (the optimization form
// of QRD). Algorithm "auto" uses exact search (or the modular PTIME path
// for Fmono); "greedy" and "local-search" trade optimality for speed, as
// the paper's conclusion prescribes for the intractable cells.
func (e *Engine) Diversify(req Request) (*Selection, error) {
	in, err := e.build(req)
	if err != nil {
		return nil, err
	}
	schema := relation.NewSchema(in.Query.Name, in.Query.Head...)
	wrap := func(set []relation.Tuple, val float64, method string) *Selection {
		sel := &Selection{Value: val, Method: method}
		for _, t := range set {
			sel.Rows = append(sel.Rows, Row{schema: schema, tuple: t})
		}
		return sel
	}
	switch req.Algorithm {
	case "", "auto", "exact":
		res := solver.QRDBest(in)
		if !res.Exists {
			return nil, errors.New("diversification: no candidate set (too few answers or unsatisfiable constraints)")
		}
		return wrap(res.Witness, res.Value, "exact"), nil
	case "greedy":
		if in.Sigma.Len() > 0 {
			return nil, errors.New("diversification: greedy does not support constraints")
		}
		res := approx.Greedy(in)
		if len(res.Set) == 0 {
			return nil, errors.New("diversification: no candidate set")
		}
		return wrap(res.Set, res.Value, "greedy"), nil
	case "local-search":
		if in.Sigma.Len() > 0 {
			return nil, errors.New("diversification: local-search does not support constraints")
		}
		seed := approx.Greedy(in)
		if len(seed.Set) == 0 {
			return nil, errors.New("diversification: no candidate set")
		}
		res := approx.LocalSearchSwap(in, seed.Set)
		return wrap(res.Set, res.Value, "local-search"), nil
	case "online":
		// Anytime selection maintained while the query evaluates, the
		// paper's embed-diversification-in-evaluation mode (Section 1).
		res, err := online.Diversify(in)
		if err != nil {
			return nil, err
		}
		if !res.Exists {
			return nil, errors.New("diversification: no candidate set")
		}
		return wrap(res.Witness, res.Value, "online"), nil
	default:
		return nil, fmt.Errorf("diversification: unknown algorithm %q", req.Algorithm)
	}
}

// Decide answers QRD: does a k-subset of the query result with objective
// value at least Bound exist (satisfying the constraints, if any)?
func (e *Engine) Decide(req Request) (bool, error) {
	in, err := e.build(req)
	if err != nil {
		return false, err
	}
	// Use the paper's PTIME algorithm when it applies.
	if in.Obj.Kind == objective.Mono && in.Sigma.Len() == 0 {
		res, err := solver.QRDMonoPTime(in)
		if err == nil {
			return res.Exists, nil
		}
	}
	// For FMS/FMM without constraints, decide while evaluating the query and
	// stop at the first valid set (early termination, Section 1); the
	// procedure falls back to exact search on the full answer set when no
	// early witness appears, so the verdict is always exact.
	if res, err := online.QRD(in, online.Options{}); err == nil {
		return res.Exists, nil
	}
	return solver.QRDExact(in).Exists, nil
}

// Count answers RDC: how many valid k-subsets reach Bound?
func (e *Engine) Count(req Request) (*big.Int, error) {
	in, err := e.build(req)
	if err != nil {
		return nil, err
	}
	return solver.RDCExact(in).Count, nil
}

// InTopR answers DRP: does the given set (specified by attribute values per
// row, in schema order) rank among the top Rank candidate sets?
func (e *Engine) InTopR(req Request, set [][]interface{}) (bool, error) {
	in, err := e.build(req)
	if err != nil {
		return false, err
	}
	if req.Rank < 1 {
		return false, errors.New("diversification: Rank must be at least 1")
	}
	for _, rowVals := range set {
		t := make(relation.Tuple, len(rowVals))
		for i, v := range rowVals {
			cv, err := toValue(v)
			if err != nil {
				return false, err
			}
			t[i] = cv
		}
		in.U = append(in.U, t)
	}
	if in.Obj.Kind == objective.Mono && in.Sigma.Len() == 0 {
		if res, err := solver.DRPMonoPTime(in); err == nil {
			return res.InTopR, nil
		}
	}
	res, err := solver.DRPExact(in)
	if err != nil {
		return false, err
	}
	return res.InTopR, nil
}

// Rank computes rank(U) exactly: 1 + the number of candidate k-sets scoring
// strictly above F(U) (Section 4.1). It is the function-problem companion
// of InTopR; expect exponential cost in the general setting (Theorem 6.1)
// and polynomial cost for Fmono without constraints (Theorem 6.4 applies to
// the decision; the exact rank is computed by exhaustive counting here).
func (e *Engine) Rank(req Request, set [][]interface{}) (int, error) {
	req.Rank = int(^uint(0) >> 1) // count all better sets
	in, err := e.build(req)
	if err != nil {
		return 0, err
	}
	for _, rowVals := range set {
		t := make(relation.Tuple, len(rowVals))
		for i, v := range rowVals {
			cv, err := toValue(v)
			if err != nil {
				return 0, err
			}
			t[i] = cv
		}
		in.U = append(in.U, t)
	}
	res, err := solver.DRPExact(in)
	if err != nil {
		return 0, err
	}
	return res.Better + 1, nil
}

// ClassifyQuery exposes the language hierarchy for a parsed query, in
// support of the paper's guidance that language choice drives combined
// complexity.
func ClassifyQuery(src string) (string, error) {
	q, err := parse.Query(src)
	if err != nil {
		return "", err
	}
	return q.Classify().String(), nil
}
