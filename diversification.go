// Package diversification is a library for query result diversification
// over relational data, reproducing the model and algorithms of Deng & Fan,
// "On the Complexity of Query Result Diversification" (VLDB 2013 / TODS
// 2014).
//
// Given a database D, a query Q (conjunctive queries through full
// first-order logic), a set size k and an objective function F built from a
// relevance function δrel, a distance function δdis and a trade-off
// λ ∈ [0,1], the library answers the paper's three questions:
//
//   - Diversify/Decide (QRD): find a best k-subset of Q(D) under F, or
//     decide whether one reaching a bound B exists.
//   - InTopR (DRP): decide whether a given k-subset ranks among the top r.
//   - Count (RDC): count the k-subsets reaching B.
//
// # The prepared-query API
//
// The paper's complexity map (which problem, which language class, which
// objective) is decided entirely at build time, so the API separates the
// two phases: Engine.Prepare parses, classifies and validates the query
// once, binds the objective with typed options, and returns a Prepared
// handle whose solve methods reuse a cached materialized answer set across
// calls (maintained incrementally when the database changes):
//
//	e := diversification.NewEngine()
//	e.MustCreateTable("items", "id", "category", "price")
//	e.MustInsert("items", 1, "book", 12)
//	...
//	p, err := e.Prepare(
//	    "Q(id, category, price) :- items(id, category, price), price <= 50",
//	    diversification.WithK(3),
//	    diversification.WithObjective(diversification.MaxSum),
//	    diversification.WithLambda(0.5),
//	)
//	sel, err := p.Diversify(ctx)
//	sel, err = p.Diversify(ctx, diversification.WithK(5)) // per-call override
//
// Every solve method takes a context.Context: the exact solvers are
// exponential in the paper's intractable cells (Theorems 4.1–6.1), and ctx
// cancellation aborts them mid-search, as well as aborting a long-running
// query evaluation itself.
//
// # The request pipeline
//
// Underneath the five typed methods sits one execution path: each call
// compiles into a Request (problem kind, per-request overrides, candidate
// set), a plan stage resolves settings, constraints, snapshot and score
// plane exactly once and records what it chose, and a single execute
// dispatches to the exact, greedy or online solvers and assembles a
// unified Response (selection, boolean, count, rank, solver stats, refresh
// info, timing). The pipeline is public: Prepared.Do answers a Request
// directly, and Prepared.Plan exposes the resolution for observability —
// Plan.Explain reports the chosen route, snapshot generation and plane
// regime before anything runs:
//
//	resp, err := p.Do(ctx, diversification.Request{
//	    Problem: diversification.ProblemDecide,
//	    Options: []diversification.Option{diversification.WithBound(2)},
//	})
//	// resp.Exists, resp.Stats, resp.Refresh, resp.Explain ...
//
// Solvers are selected per the paper's complexity map: exact
// branch-and-bound in the general (intractable) settings, the paper's
// polynomial algorithms in the tractable cells (mono-objective, λ=0,
// constant k), and greedy/local-search heuristics when asked. Compatibility
// constraints in the paper's class Cm restrict feasible sets (Section 9).
//
// # Serving
//
// Service wraps an Engine for network-style serving: a named statement
// registry (Register compiles a query once under a name), per-request
// deadlines, and a bounded admission semaphore whose queue depth is
// exported through Metrics. The repro/httpapi package puts a JSON-over-HTTP
// facade (and a Go client) on top; cmd/divserve is the ready-made binary.
//
// The deprecated one-shot Request API of earlier versions (stringly typed
// fields, re-parsing every call) has been removed; Request now names the
// pipeline's typed per-request form above.
package diversification
