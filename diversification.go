// Package diversification is a library for query result diversification
// over relational data, reproducing the model and algorithms of Deng & Fan,
// "On the Complexity of Query Result Diversification" (VLDB 2013 / TODS
// 2014).
//
// Given a database D, a query Q (conjunctive queries through full
// first-order logic), a set size k and an objective function F built from a
// relevance function δrel, a distance function δdis and a trade-off
// λ ∈ [0,1], the library answers the paper's three questions:
//
//   - Diversify/Decide (QRD): find a best k-subset of Q(D) under F, or
//     decide whether one reaching a bound B exists.
//   - InTopR (DRP): decide whether a given k-subset ranks among the top r.
//   - Count (RDC): count the k-subsets reaching B.
//
// # The prepared-query API
//
// The paper's complexity map (which problem, which language class, which
// objective) is decided entirely at build time, so the API separates the
// two phases: Engine.Prepare parses, classifies and validates the query
// once, binds the objective with typed options, and returns a Prepared
// handle whose solve methods reuse a cached materialized answer set across
// calls (invalidated automatically when the database changes):
//
//	e := diversification.NewEngine()
//	e.MustCreateTable("items", "id", "category", "price")
//	e.MustInsert("items", 1, "book", 12)
//	...
//	p, err := e.Prepare(
//	    "Q(id, category, price) :- items(id, category, price), price <= 50",
//	    diversification.WithK(3),
//	    diversification.WithObjective(diversification.MaxSum),
//	    diversification.WithLambda(0.5),
//	)
//	sel, err := p.Diversify(ctx)
//	sel, err = p.Diversify(ctx, diversification.WithK(5)) // per-call override
//
// Every solve method takes a context.Context: the exact solvers are
// exponential in the paper's intractable cells (Theorems 4.1–6.1), and ctx
// cancellation aborts them mid-search, as well as aborting a long-running
// query evaluation itself.
//
// Solvers are selected per the paper's complexity map: exact
// branch-and-bound in the general (intractable) settings, the paper's
// polynomial algorithms in the tractable cells (mono-objective, λ=0,
// constant k), and greedy/local-search heuristics when asked. Compatibility
// constraints in the paper's class Cm restrict feasible sets (Section 9).
//
// # Deprecated one-shot API
//
// The Request struct and the Engine.Diversify/Decide/Count/InTopR/Rank
// methods taking it are retained as thin shims over Prepare; they re-parse,
// re-validate and re-evaluate the query on every call and use stringly
// typed objective/algorithm fields. New code should use Prepare and the
// typed options.
package diversification

import (
	"context"
	"math/big"
)

// Request describes a one-shot diversification task. Query, K and Objective
// are required; the zero values of the rest select the paper's defaults
// (constant relevance 1, zero distance, λ = 0.5, exact solving).
//
// Deprecated: use Engine.Prepare with the typed Objective/Algorithm enums
// and functional options (WithK, WithLambda, ...). Prepare performs the
// parse/classify/validate work once and caches the materialized answer set
// across calls; each Request-based call repeats all of it.
//
// One validation is stricter than the original one-shot API: Lambda outside
// [0,1] (or NaN), which previously flowed unchecked into the objective and
// produced meaningless scores, is now rejected with an error.
type Request struct {
	// Query in the textual rule syntax, e.g.
	// "Q(x, y) :- R(x, z), S(z, y), x < 5".
	Query string
	// K is the number of results to select.
	K int
	// Objective is "max-sum" (FMS), "max-min" (FMM) or "mono" (Fmono).
	Objective string
	// Lambda balances relevance (0) against diversity (1); an untouched
	// zero-value Request means 0.5. Set LambdaSet to force 0. (The typed
	// API has no such hack: WithLambda(0) means λ = 0.)
	Lambda    float64
	LambdaSet bool
	// Relevance is δrel; nil means constant 1.
	Relevance func(Row) float64
	// Distance is δdis; nil means zero distance.
	Distance func(Row, Row) float64
	// Constraints are compatibility constraints in the Cm syntax, e.g.
	// `forall t (t.id = "CS450" -> exists p (p.id = "CS220"))`.
	Constraints []string
	// Bound is the B threshold for Decide and Count.
	Bound float64
	// Rank is the r threshold for InTopR.
	Rank int
	// Algorithm selects the solver: "auto" (default), "exact", "greedy",
	// "local-search", or "online".
	Algorithm string
}

// options lowers the stringly-typed Request onto the typed option API.
// withAlgorithm controls whether Request.Algorithm is parsed: only the
// Diversify shim consults it, and the old API ignored (rather than
// rejected) a bogus Algorithm on the other methods — the shims preserve
// that.
func (r Request) options(withAlgorithm bool) ([]Option, error) {
	obj, err := ParseObjective(r.Objective)
	if err != nil {
		return nil, err
	}
	opts := []Option{
		WithK(r.K),
		WithObjective(obj),
		WithBound(r.Bound),
	}
	if withAlgorithm {
		alg, err := ParseAlgorithm(r.Algorithm)
		if err != nil {
			return nil, err
		}
		opts = append(opts, WithAlgorithm(alg))
	}
	if r.LambdaSet || r.Lambda != 0 {
		opts = append(opts, WithLambda(r.Lambda))
	}
	if r.Relevance != nil {
		opts = append(opts, WithRelevance(r.Relevance))
	}
	if r.Distance != nil {
		opts = append(opts, WithDistance(r.Distance))
	}
	if len(r.Constraints) > 0 {
		opts = append(opts, WithConstraints(r.Constraints...))
	}
	// Only a meaningful rank is forwarded: the old API ignored Rank on
	// every method but InTopR (which rejects rank < 1 itself), so a
	// negative Rank must not fail the methods that never read it.
	if r.Rank > 0 {
		opts = append(opts, WithRank(r.Rank))
	}
	return opts, nil
}

// prepare compiles the one-shot request into a Prepared handle.
func (e *Engine) prepare(req Request, withAlgorithm bool) (*Prepared, error) {
	opts, err := req.options(withAlgorithm)
	if err != nil {
		return nil, err
	}
	return e.Prepare(req.Query, opts...)
}

// Diversify finds a k-set maximizing the objective (the optimization form
// of QRD).
//
// Deprecated: use Engine.Prepare followed by Prepared.Diversify.
func (e *Engine) Diversify(req Request) (*Selection, error) {
	p, err := e.prepare(req, true)
	if err != nil {
		return nil, err
	}
	return p.Diversify(context.Background())
}

// Decide answers QRD: does a k-subset of the query result with objective
// value at least Bound exist (satisfying the constraints, if any)?
//
// Deprecated: use Engine.Prepare followed by Prepared.Decide.
func (e *Engine) Decide(req Request) (bool, error) {
	p, err := e.prepare(req, false)
	if err != nil {
		return false, err
	}
	return p.Decide(context.Background())
}

// Count answers RDC: how many valid k-subsets reach Bound?
//
// Deprecated: use Engine.Prepare followed by Prepared.Count.
func (e *Engine) Count(req Request) (*big.Int, error) {
	p, err := e.prepare(req, false)
	if err != nil {
		return nil, err
	}
	return p.Count(context.Background())
}

// InTopR answers DRP: does the given set (specified by attribute values per
// row, in schema order) rank among the top Rank candidate sets?
//
// Deprecated: use Engine.Prepare followed by Prepared.InTopR.
func (e *Engine) InTopR(req Request, set [][]interface{}) (bool, error) {
	p, err := e.prepare(req, false)
	if err != nil {
		return false, err
	}
	return p.InTopR(context.Background(), set)
}

// Rank computes rank(U) exactly: 1 + the number of candidate k-sets scoring
// strictly above F(U) (Section 4.1).
//
// Deprecated: use Engine.Prepare followed by Prepared.Rank.
func (e *Engine) Rank(req Request, set [][]interface{}) (int, error) {
	p, err := e.prepare(req, false)
	if err != nil {
		return 0, err
	}
	return p.Rank(context.Background(), set)
}
