package diversification_test

import (
	"context"
	"fmt"
	"log"

	diversification "repro"
)

// ExamplePrepared_DiversifyBatch sweeps the relevance/diversity trade-off λ
// in one batch call: the query is prepared once, the answer set and its
// score plane are materialized once, and the variants solve concurrently on
// a worker pool. results[i] always corresponds to items[i] and is identical
// to what a standalone Diversify call with the same options would return.
func ExamplePrepared_DiversifyBatch() {
	e := diversification.NewEngine()
	e.MustCreateTable("items", "id", "category", "price")
	rows := []struct {
		id       int
		category string
		price    int
	}{
		{1, "book", 12}, {2, "book", 18}, {3, "toy", 25},
		{4, "toy", 22}, {5, "jewelry", 48}, {6, "jewelry", 31},
		{7, "fashion", 27}, {8, "artsy", 20}, {9, "artsy", 45},
	}
	for _, r := range rows {
		e.MustInsert("items", r.id, r.category, r.price)
	}

	p := e.MustPrepare(
		"Q(id, category, price) :- items(id, category, price), price <= 50",
		diversification.WithK(3),
		diversification.WithAlgorithm(diversification.Exact),
		diversification.WithRelevance(func(r diversification.Row) float64 {
			return float64(50 - r.Get("price").(int64))
		}),
		diversification.WithDistance(func(a, b diversification.Row) float64 {
			if a.Get("category") == b.Get("category") {
				return 0
			}
			return 1
		}),
	)

	lambdas := []float64{0, 0.5, 1}
	items := make([]diversification.BatchItem, len(lambdas))
	for i, lambda := range lambdas {
		items[i] = diversification.BatchItem{Opts: []diversification.Option{
			diversification.WithLambda(lambda),
		}}
	}
	results, err := p.DiversifyBatch(context.Background(), items)
	if err != nil {
		log.Fatal(err)
	}
	for i, res := range results {
		if res.Err != nil {
			fmt.Printf("λ=%.1f: %v\n", lambdas[i], res.Err)
			continue
		}
		fmt.Printf("λ=%.1f: F = %.1f, %d rows\n", lambdas[i], res.Selection.Value, len(res.Selection.Rows))
	}
	// Output:
	// λ=0.0: F = 200.0, 3 rows
	// λ=0.5: F = 102.0, 3 rows
	// λ=1.0: F = 6.0, 3 rows
}
