package diversification

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/workload"
)

// scrubVolatile zeroes the per-call advisory fields so responses from the
// cached and uncached paths can be compared byte-for-byte: Elapsed is each
// call's own wall clock, Cached (and its Explain trailer) is the marker
// under test, and everything else — the answer — must match exactly.
func scrubVolatile(t *testing.T, r *Response) []byte {
	t.Helper()
	c := *r
	c.Elapsed = 0
	c.Cached = false
	if i := strings.Index(c.Explain, "cached:"); i >= 0 {
		c.Explain = c.Explain[:i]
	}
	b, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestCacheHitServesIdenticalResponse pins the cache's core contract: a
// repeat of a request at an unchanged generation is a hit, marked Cached,
// and — after scrubbing elapsed/cached — byte-identical to what an
// uncached service produces for the same repeat; a mutation invalidates.
func TestCacheHitServesIdenticalResponse(t *testing.T) {
	e := serviceEngine(t, 12)
	cached := NewService(e, ServiceConfig{})
	uncached := NewService(e, ServiceConfig{CacheEntries: -1})
	for _, svc := range []*Service{cached, uncached} {
		if err := svc.Register("hot", serviceQuery, serviceOpts(3)...); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	req := Request{Problem: ProblemDiversify}

	// First calls are misses/solves on both services; the repeats are what
	// we compare — same warm-snapshot state on both sides.
	if _, err := cached.Do(ctx, "hot", req); err != nil {
		t.Fatal(err)
	}
	if _, err := uncached.Do(ctx, "hot", req); err != nil {
		t.Fatal(err)
	}
	hit, err := cached.Do(ctx, "hot", req)
	if err != nil {
		t.Fatal(err)
	}
	miss, err := uncached.Do(ctx, "hot", req)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Cached {
		t.Error("repeat at an unchanged generation was not served from the cache")
	}
	if miss.Cached {
		t.Error("cache-disabled service marked a response Cached")
	}
	if got, want := scrubVolatile(t, hit), scrubVolatile(t, miss); string(got) != string(want) {
		t.Errorf("cached response diverges from the uncached repeat:\n  cached:   %s\n  uncached: %s", got, want)
	}
	m := cached.Metrics()
	if m.Cache.Hits != 1 || m.Cache.Misses != 1 || m.Cache.Entries != 1 {
		t.Errorf("cache counters after miss+hit: %+v", m.Cache)
	}
	if um := uncached.Metrics(); um.Cache != (CacheMetrics{}) {
		t.Errorf("disabled cache reported non-zero counters: %+v", um.Cache)
	}

	// A mutation advances the generation: the next call must re-solve, and
	// its store sweeps the now-unreachable entry.
	e.MustInsert("items", 500, "z", 15)
	resp, err := cached.Do(ctx, "hot", req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached {
		t.Error("response served from the cache across a generation change")
	}
	m = cached.Metrics()
	if m.Cache.Misses != 2 || m.Cache.Invalidations != 1 || m.Cache.Entries != 1 {
		t.Errorf("cache counters after invalidating mutation: %+v", m.Cache)
	}
}

// TestCacheExplainMarker: a hit on an explain-requested statement must say
// so in the report — the plan text describes the original solve, and the
// trailing marker is how a reader knows no solve ran for this call.
func TestCacheExplainMarker(t *testing.T) {
	e := serviceEngine(t, 10)
	svc := NewService(e, ServiceConfig{})
	if err := svc.Register("hot", serviceQuery, serviceOpts(3)...); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	req := Request{Problem: ProblemDiversify, Explain: true}
	first, err := svc.Do(ctx, "hot", req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Explain == "" || strings.Contains(first.Explain, "cached:") {
		t.Fatalf("first (solved) explain report wrong:\n%s", first.Explain)
	}
	second, err := svc.Do(ctx, "hot", req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached || !strings.Contains(second.Explain, "cached:    true") {
		t.Errorf("hit explain report lacks the cached marker (cached=%v):\n%s", second.Cached, second.Explain)
	}
	// Explain and non-explain spellings key separately (the flag is part of
	// the canonical key), so the earlier explain solve plus this hit is all
	// the traffic: no cross-contamination with the plain request.
	plain, err := svc.Do(ctx, "hot", Request{Problem: ProblemDiversify})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cached {
		t.Error("plain request hit the explain request's entry")
	}
}

// TestCacheUncacheableBypass: per-call function-valued overrides have no
// canonical form, so those requests must bypass the cache entirely — no
// stored entries, no counter movement.
func TestCacheUncacheableBypass(t *testing.T) {
	e := serviceEngine(t, 10)
	svc := NewService(e, ServiceConfig{})
	if err := svc.Register("hot", serviceQuery, serviceOpts(3)...); err != nil {
		t.Fatal(err)
	}
	req := Request{
		Problem: ProblemDiversify,
		Options: []Option{WithRelevance(func(r Row) float64 { return 1 })},
	}
	for i := 0; i < 2; i++ {
		resp, err := svc.Do(context.Background(), "hot", req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Cached {
			t.Fatal("function-override request served from the cache")
		}
	}
	if m := svc.Metrics(); m.Cache != (CacheMetrics{}) {
		t.Errorf("uncacheable requests moved the cache counters: %+v", m.Cache)
	}
}

// TestResultCacheEvictionAndSweep unit-tests the store itself: the LRU
// bound evicts (counted), a newer-generation store sweeps every older
// entry (counted as invalidations), and stale-generation stores are
// dropped rather than resurrected.
func TestResultCacheEvictionAndSweep(t *testing.T) {
	c := newResultCache(2)
	r := &Response{Generation: 1}
	c.put("g1|a", 1, r)
	c.put("g1|b", 1, r)
	if _, ok := c.get("g1|a"); !ok { // bump a's recency: b is now LRU
		t.Fatal("entry a missing before eviction")
	}
	c.put("g1|c", 1, r)
	if c.len() != 2 || c.evictions.Load() != 1 {
		t.Fatalf("len=%d evictions=%d after overflow, want 2/1", c.len(), c.evictions.Load())
	}
	if _, ok := c.get("g1|b"); ok {
		t.Error("LRU entry b survived the eviction")
	}
	c.put("g2|a", 2, &Response{Generation: 2})
	if c.len() != 1 || c.invalidations.Load() != 2 {
		t.Fatalf("len=%d invalidations=%d after generation sweep, want 1/2", c.len(), c.invalidations.Load())
	}
	c.put("g1|zombie", 1, r)
	if _, ok := c.get("g1|zombie"); ok || c.len() != 1 {
		t.Error("stale-generation store was accepted")
	}
}

// TestCacheCoalescing is the exactly-one-solve acceptance test: N
// concurrent identical misses must execute exactly one pipeline solve. The
// statement's relevance function is gated, so the leader is provably
// mid-solve while every other goroutine arrives — they can only coalesce
// onto its flight (or, if they arrive after the gate opens, hit the entry
// it stored). Misses are counted only where a solve is actually launched,
// so Misses==1 is the proof.
func TestCacheCoalescing(t *testing.T) {
	const n = 8
	e := serviceEngine(t, 12)
	svc := NewService(e, ServiceConfig{MaxConcurrent: 2})
	var once sync.Once
	started := make(chan struct{}) // closed when the leader's solve begins
	gate := make(chan struct{})    // closed to let the solve finish
	opts := []Option{
		WithK(3), WithObjective(MaxSum), WithLambda(0.6),
		WithRelevance(func(r Row) float64 {
			once.Do(func() { close(started) })
			<-gate
			return 100 - float64(r.Get("price").(int64))
		}),
		WithDistance(func(a, b Row) float64 {
			if a.Get("cat") == b.Get("cat") {
				return 0
			}
			return 1
		}),
	}
	if err := svc.Register("hot", serviceQuery, opts...); err != nil {
		t.Fatal(err)
	}

	resps := make([]*Response, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resps[i], errs[i] = svc.Do(context.Background(), "hot", Request{Problem: ProblemDiversify})
		}()
	}
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("no solve ever started")
	}
	// Give the remaining goroutines ample time to reach the flight map
	// while the leader is pinned inside its solve, then open the gate.
	time.Sleep(200 * time.Millisecond)
	close(gate)
	wg.Wait()

	var canon string
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		sel := fmt.Sprintf("g%d %v %g", resps[i].Generation, resps[i].Selection.Rows, resps[i].Selection.Value)
		if canon == "" {
			canon = sel
		} else if sel != canon {
			t.Fatalf("coalesced responses diverge:\n  %s\n  %s", canon, sel)
		}
	}
	m := svc.Metrics()
	if m.Cache.Misses != 1 {
		t.Errorf("misses = %d: %d identical concurrent requests ran more than one solve", m.Cache.Misses, n)
	}
	if m.Cache.Hits+m.Cache.Coalesced != n-1 {
		t.Errorf("hits(%d)+coalesced(%d) = %d, want %d followers served without a solve",
			m.Cache.Hits, m.Cache.Coalesced, m.Cache.Hits+m.Cache.Coalesced, n-1)
	}
	if m.Requests != n || m.Failures != 0 {
		t.Errorf("requests=%d failures=%d, want %d/0", m.Requests, m.Failures, n)
	}
}

// TestCacheExactlyOneSolvePerGeneration drives rounds of identical
// concurrent requests with engine mutations and refreshes between rounds,
// and requires the miss counter to equal the number of distinct
// generations queried: one solve per (key, generation), everything else a
// hit or a coalesced follower — plus full arrival conservation.
func TestCacheExactlyOneSolvePerGeneration(t *testing.T) {
	const (
		fanout = 8
		rounds = 24
	)
	e := serviceEngine(t, 18)
	svc := NewService(e, ServiceConfig{MaxConcurrent: 4, MaxQueue: fanout * rounds})
	if err := svc.Register("hot", serviceQuery, serviceOpts(3)...); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	var arrivals int64
	distinct := map[uint64]bool{}
	sels := map[uint64]string{}
	for r := 0; r < rounds; r++ {
		switch r % 3 {
		case 1: // advance the generation: the next round must re-solve
			e.MustInsert("items", 2000+r, "z", 15)
		case 2: // refresh warms the snapshot but leaves the generation alone
			if _, err := svc.Refresh(ctx, "hot"); err != nil {
				t.Fatal(err)
			}
			arrivals++
		}
		gen := e.Generation()
		distinct[gen] = true
		resps := make([]*Response, fanout)
		var wg sync.WaitGroup
		for i := 0; i < fanout; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, err := svc.Do(ctx, "hot", Request{Problem: ProblemDiversify})
				if err != nil {
					t.Error(err)
					return
				}
				resps[i] = resp
			}()
		}
		wg.Wait()
		arrivals += fanout
		for _, resp := range resps {
			if resp == nil {
				t.FailNow()
			}
			if resp.Generation != gen {
				// The engine is quiescent during the round, so every
				// response must be pinned to exactly this generation.
				t.Fatalf("round %d: response generation %d, engine at %d", r, resp.Generation, gen)
			}
			sel := fmt.Sprintf("%v %g", resp.Selection.Rows, resp.Selection.Value)
			if prev, ok := sels[gen]; !ok {
				sels[gen] = sel
			} else if prev != sel {
				t.Fatalf("generation %d served two different answers:\n  %s\n  %s", gen, prev, sel)
			}
		}
	}

	m := svc.Metrics()
	if want := int64(len(distinct)); m.Cache.Misses != want {
		t.Errorf("misses = %d, want %d (exactly one solve per generation queried)", m.Cache.Misses, want)
	}
	if want := int64(rounds*fanout - len(distinct)); m.Cache.Hits+m.Cache.Coalesced != want {
		t.Errorf("hits(%d)+coalesced(%d) = %d, want %d", m.Cache.Hits, m.Cache.Coalesced,
			m.Cache.Hits+m.Cache.Coalesced, want)
	}
	if m.Requests != arrivals || m.Rejected != 0 || m.CanceledWaiting != 0 || m.Failures != 0 {
		t.Errorf("arrival conservation broken: requests=%d rejected=%d canceled=%d failures=%d, want %d/0/0/0",
			m.Requests, m.Rejected, m.CanceledWaiting, m.Failures, arrivals)
	}
	if m.InFlight != 0 || m.QueueDepth != 0 {
		t.Errorf("gauges leaked: %+v", m)
	}
}

// TestCacheRaceHammer races identical requests through the cache against
// live Engine.Insert mutations and Service.Refresh calls — no quiescent
// windows. The instance is built so the optimum is unique and fully
// determined by the generation (each inserted row has strictly higher
// relevance than everything before it, all distances are 1), which turns
// every response into a checkable claim: the selection and FMS value a
// response reports must be exactly the optimum of the snapshot at
// resp.Generation. Any stale cache hit, torn read or mislabeled
// generation shows up as an oracle mismatch. Run under -race in CI.
func TestCacheRaceHammer(t *testing.T) {
	const (
		k          = 3
		lambda     = 0.5
		requesters = 6
		perG       = 80
		churnN     = 40
	)
	e := NewEngine()
	e.MustCreateTable("docs", "id", "grp")
	for i := 100; i < 120; i++ {
		e.MustInsert("docs", i, fmt.Sprintf("g%d", i))
	}
	svc := NewService(e, ServiceConfig{MaxConcurrent: 4, MaxQueue: requesters*perG + 256})
	rel := func(id int64) float64 { return 1.0 / float64(1+id) }
	opts := []Option{
		WithK(k), WithObjective(MaxSum), WithLambda(lambda),
		WithRelevance(func(r Row) float64 { return rel(r.Get("id").(int64)) }),
		WithDistance(func(a, b Row) float64 {
			if a.Get("grp") == b.Get("grp") {
				return 0
			}
			return 1
		}),
	}
	if err := svc.Register("hot", "H(id, grp) :- docs(id, grp)", opts...); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	baseGen := e.Generation()

	// Oracle: the m-th insert adds id 100-m, whose relevance tops every
	// earlier row, so at generation baseGen+m the unique optimum is the
	// three smallest ids present: {100-m, 101-m, 102-m}. All groups are
	// distinct, so the dispersion term is the same constant for every
	// k-set and relevance alone decides.
	expect := func(gen uint64) ([]int64, float64) {
		m := int64(gen - baseGen)
		ids := []int64{100 - m, 101 - m, 102 - m}
		var sum float64
		for _, id := range ids {
			sum += rel(id)
		}
		return ids, float64(k-1)*(1-lambda)*sum + 2*lambda*3
	}

	var work sync.WaitGroup // the finite goroutines: mutator + requesters
	stopRefresh := make(chan struct{})
	refresherDone := make(chan struct{})
	errc := make(chan error, requesters*perG+2)

	work.Add(1)
	go func() { // mutator: strictly monotone inserts, one generation each
		defer work.Done()
		for m := 1; m <= churnN; m++ {
			if err := e.Insert("docs", 100-m, fmt.Sprintf("g%d", 100-m)); err != nil {
				errc <- err
				return
			}
			time.Sleep(300 * time.Microsecond)
		}
	}()
	var refreshes int64
	go func() { // refresher: concurrent snapshot maintenance
		defer close(refresherDone)
		for {
			select {
			case <-stopRefresh:
				return
			default:
			}
			if _, err := svc.Refresh(ctx, "hot"); err != nil {
				errc <- err
				return
			}
			refreshes++
			time.Sleep(time.Millisecond)
		}
	}()
	for g := 0; g < requesters; g++ {
		work.Add(1)
		go func() {
			defer work.Done()
			for i := 0; i < perG; i++ {
				startGen := e.Generation()
				resp, err := svc.Do(ctx, "hot", Request{Problem: ProblemDiversify})
				if err != nil {
					errc <- err
					return
				}
				if resp.Generation < startGen || resp.Generation > baseGen+churnN {
					errc <- fmt.Errorf("stale response: generation %d, arrived at %d", resp.Generation, startGen)
					return
				}
				wantIDs, wantVal := expect(resp.Generation)
				if len(resp.Selection.Rows) != k {
					errc <- fmt.Errorf("selection has %d rows, want %d", len(resp.Selection.Rows), k)
					return
				}
				got := make([]int64, 0, k)
				for _, r := range resp.Selection.Rows {
					got = append(got, r.Get("id").(int64))
				}
				for _, want := range wantIDs {
					found := false
					for _, id := range got {
						if id == want {
							found = true
						}
					}
					if !found {
						errc <- fmt.Errorf("generation %d selected %v, oracle says %v", resp.Generation, got, wantIDs)
						return
					}
				}
				if math.Abs(resp.Selection.Value-wantVal) > 1e-9 {
					errc <- fmt.Errorf("generation %d value %g, oracle says %g", resp.Generation, resp.Selection.Value, wantVal)
					return
				}
			}
		}()
	}

	done := make(chan struct{})
	go func() { work.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("hammer deadlocked")
	}
	close(stopRefresh)
	select {
	case <-refresherDone:
	case <-time.After(30 * time.Second):
		t.Fatal("refresher never stopped")
	}
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	m := svc.Metrics()
	totalDo := int64(requesters * perG)
	if got := m.Cache.Hits + m.Cache.Coalesced + m.Cache.Misses; got != totalDo {
		t.Errorf("cache outcomes = %d (hits %d + coalesced %d + misses %d), want one per request = %d",
			got, m.Cache.Hits, m.Cache.Coalesced, m.Cache.Misses, totalDo)
	}
	if m.Requests != totalDo+refreshes || m.Rejected != 0 || m.CanceledWaiting != 0 || m.Failures != 0 {
		t.Errorf("arrival conservation broken: requests=%d rejected=%d canceled=%d failures=%d, want %d/0/0/0",
			m.Requests, m.Rejected, m.CanceledWaiting, m.Failures, totalDo+refreshes)
	}
	if m.InFlight != 0 || m.QueueDepth != 0 {
		t.Errorf("gauges leaked: %+v", m)
	}
	if m.Cache.Misses == 0 || m.Cache.Hits == 0 {
		t.Errorf("hammer never exercised both paths: %+v", m.Cache)
	}
}

// BenchmarkServiceCacheReplay measures Service.Do on a zipf-skewed replay
// of request shapes — the divbench -cache-replay experiment in benchmark
// form, so bench-smoke keeps the replay path compiling and running. The
// cached and uncached arms replay the identical stream.
func BenchmarkServiceCacheReplay(b *testing.B) {
	e := serviceEngine(b, 40)
	shapes := workload.ReplayShapes(12)
	mix := workload.ZipfMix(rand.New(rand.NewSource(1)), len(shapes), 256, 1.3)
	requests := make([]Request, len(shapes))
	for i, sh := range shapes {
		k, lambda := sh.K, sh.Lambda
		req := Request{K: &k, Lambda: &lambda}
		if sh.Problem == "decide" {
			bound := sh.Bound
			req.Problem = ProblemDecide
			req.Bound = &bound
		}
		requests[i] = req
	}
	for _, arm := range []struct {
		name    string
		entries int
	}{{"cached", 0}, {"uncached", -1}} {
		b.Run(arm.name, func(b *testing.B) {
			svc := NewService(e, ServiceConfig{CacheEntries: arm.entries})
			if err := svc.Register("hot", serviceQuery, serviceOpts(3)...); err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := svc.Do(ctx, "hot", requests[mix[i%len(mix)]]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
