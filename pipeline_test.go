package diversification

import (
	"context"
	"math"
	"strings"
	"testing"
)

// TestPlanExplain pins the observable plan resolution for each problem
// kind and plane regime: the route, snapshot and plane lines Explain
// reports are the fields operators alert on.
func TestPlanExplain(t *testing.T) {
	e := giftEngine(t)
	ctx := context.Background()
	p := e.MustPrepare("Q(item, type, price) :- catalog(item, type, price, s)",
		WithK(2), WithObjective(MaxSum), WithLambda(0.6),
		WithRelevance(priceRelevance), WithDistance(typeDistance))

	pl, err := p.Plan(ctx, Request{Problem: ProblemDiversify})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Route() != "exact" {
		t.Errorf("Route() = %q, want exact", pl.Route())
	}
	explain := pl.Explain()
	for _, want := range []string{
		"problem:   diversify",
		"language:  CQ",
		"objective: max-sum (λ=0.6, k=2)",
		"route:     exact",
		"sigma:     0 constraints",
		"snapshot:  generation",
		"plane:     shared, materialized matrix",
		"workers:   1",
	} {
		if !strings.Contains(explain, want) {
			t.Errorf("Explain() lacks %q:\n%s", want, explain)
		}
	}

	// Executing the plan answers against its pinned snapshot — twice, with
	// identical results.
	r1, err := pl.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := pl.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(r1.Selection.Value) != math.Float64bits(r2.Selection.Value) {
		t.Error("re-executing a plan changed the answer")
	}
	if r1.Generation != r2.Generation {
		t.Error("re-executing a plan changed the generation")
	}

	// A streaming route plans without a snapshot.
	online := Online
	pl, err = p.Plan(ctx, Request{Problem: ProblemDiversify, Algorithm: &online})
	if err != nil {
		t.Fatal(err)
	}
	explain = pl.Explain()
	if !strings.Contains(explain, "route:     online") || !strings.Contains(explain, "snapshot:  none (streaming route)") {
		t.Errorf("online Explain() malformed:\n%s", explain)
	}

	// A per-request scoring override bypasses the shared plane and says so.
	pl, err = p.Plan(ctx, Request{Problem: ProblemDiversify, Options: []Option{
		WithRelevance(func(r Row) float64 { return 1 }),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(pl.Explain(), "plane:     per-request") {
		t.Errorf("override Explain() lacks the bypass note:\n%s", pl.Explain())
	}

	// WithScorePlane(false) is reported as off.
	pl, err = p.Plan(ctx, Request{Problem: ProblemDiversify, Options: []Option{WithScorePlane(false)}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(pl.Explain(), "plane:     off") {
		t.Errorf("plane-off Explain() lacks the off note:\n%s", pl.Explain())
	}

	// Decide on a warm cache routes exact; the bound line is present.
	bound := 2.0
	pl, err = p.Plan(ctx, Request{Problem: ProblemDecide, Bound: &bound})
	if err != nil {
		t.Fatal(err)
	}
	explain = pl.Explain()
	if !strings.Contains(explain, "bound:     F >= 2") || !strings.Contains(explain, "route:     exact") {
		t.Errorf("decide Explain() malformed:\n%s", explain)
	}

	// In-top-r and rank report their candidate set size.
	rank := 1
	set := [][]interface{}{{"kite", "toy", 55}, {"scarf", "fashion", 30}}
	pl, err = p.Plan(ctx, Request{Problem: ProblemInTopR, Rank: &rank, Set: set})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(pl.Explain(), "rank:      r = 1, |set| = 2") {
		t.Errorf("in-top-r Explain() malformed:\n%s", pl.Explain())
	}
	pl, err = p.Plan(ctx, Request{Problem: ProblemRank, Set: set})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(pl.Explain(), "rank:      exact, |set| = 2") {
		t.Errorf("rank Explain() malformed:\n%s", pl.Explain())
	}
	resp, err := pl.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Rank < 1 {
		t.Errorf("rank = %d, want >= 1", resp.Rank)
	}
}

// TestPlanDecideColdStreams pins the cold-cache decide route: a fresh
// handle plans the streaming solver with an exact fallback, and the
// response reports the stream's own statistics.
func TestPlanDecideColdStreams(t *testing.T) {
	e := giftEngine(t)
	ctx := context.Background()
	p := e.MustPrepare("Q(item, type, price) :- catalog(item, type, price, s)",
		WithK(2), WithObjective(MaxSum), WithLambda(1), WithDistance(typeDistance))
	bound := 1.0
	pl, err := p.Plan(ctx, Request{Problem: ProblemDecide, Bound: &bound})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Route() != "online-stream" {
		t.Fatalf("cold decide routed %q, want online-stream", pl.Route())
	}
	if !strings.Contains(pl.Explain(), "fallback: exact") {
		t.Errorf("cold decide Explain() lacks the fallback:\n%s", pl.Explain())
	}
	resp, err := pl.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Decided() {
		t.Error("bound 1 should be reachable")
	}
	if resp.Route != "online-stream" || resp.Stats.Seen == 0 {
		t.Errorf("streamed decide response malformed: route=%q stats=%+v", resp.Route, resp.Stats)
	}

	// Mono decide routes through the PTIME shortcut.
	mono := Mono
	lambda0 := 0.0
	resp, err = p.Do(ctx, Request{Problem: ProblemDecide, Objective: &mono, Lambda: &lambda0, Bound: &bound,
		Options: []Option{WithRelevance(priceRelevance)}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Route != "mono-ptime" {
		t.Errorf("mono decide routed %q, want mono-ptime", resp.Route)
	}
}

// TestServiceEngineAccessor keeps the embedding path honest: mutations go
// through the same engine the service fronts.
func TestServiceEngineAccessor(t *testing.T) {
	e := giftEngine(t)
	svc := NewService(e, ServiceConfig{})
	if svc.Engine() != e {
		t.Error("Engine() must return the fronted engine")
	}
}
