// Crash-recovery tests: these exercise the real divserve binary over real
// HTTP, kill it (SIGKILL mid-traffic, SIGTERM for the graceful path) and
// assert the restarted process serves byte-identical answers — the
// durability subsystem's end-to-end contract.
//
// The file is an external test (package diversification_test) so it can use
// the httpapi client and the shared demo loader; the in-package test files
// cannot import either without a cycle.
package diversification_test

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	diversification "repro"
	"repro/httpapi"
	"repro/internal/load"
)

// scrubRE removes the two timing fields of the wire protocol; everything
// else — float bits, solver stats, generations — must be byte-stable.
var (
	scrubElapsedRE = regexp.MustCompile(`"elapsed_ns":[0-9]+`)
	scrubReplayRE  = regexp.MustCompile(`"replay_ns":[0-9]+`)
)

func scrub(s string) string {
	s = scrubElapsedRE.ReplaceAllString(s, `"elapsed_ns":0`)
	return scrubReplayRE.ReplaceAllString(s, `"replay_ns":0`)
}

// updatingGolden reads the -update flag registered by golden_test.go (the
// in-package and external test files share one flag set).
func updatingGolden() bool {
	f := flag.Lookup("update")
	return f != nil && f.Value.String() == "true"
}

// buildDivserve compiles the real binary once per test that needs it.
// Exec-ing the binary directly (rather than `go run`) lets the tests
// deliver signals to the server process itself.
func buildDivserve(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "divserve")
	build := exec.Command("go", "build", "-o", bin, "./cmd/divserve")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building divserve: %v\n%s", err, out)
	}
	return bin
}

// reserveAddr picks a free localhost port. A small race window between
// Close and the server's bind, tolerated exactly as TestServeGolden does.
func reserveAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// startDivserve launches the binary and waits for its health probe.
func startDivserve(t *testing.T, bin string, args ...string) (*exec.Cmd, *bytes.Buffer, string) {
	t.Helper()
	addr := reserveAddr(t)
	cmd := exec.Command(bin, append(args, "-addr", addr)...)
	cmd.Env = os.Environ()
	var logBuf bytes.Buffer
	cmd.Stdout, cmd.Stderr = &logBuf, &logBuf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr
	client := &http.Client{Timeout: 5 * time.Second}
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			return cmd, &logBuf, base
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
			t.Fatalf("divserve never became healthy: %v\nserver log:\n%s", err, logBuf.String())
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// bulkRow is the deterministic insert stream the crash test drives: item
// names are unique (every acknowledged insert advances the generation by
// exactly one) and prices stay inside the demo statement's `price <= 40`
// filter, so recovered rows are visible in the answers.
func bulkRow(i int) []interface{} {
	types := []string{"toy", "book", "jewelry", "artsy"}
	return []interface{}{
		fmt.Sprintf("bulk-%03d", i),
		types[i%len(types)],
		5 + (i*7)%35,
		1,
	}
}

// demoGen is the generation the -demo boot ends at: one CreateTable plus
// ten inserts.
const demoGen = 11

// demoStatementOpts mirrors the bindings cmd/divserve registers for the
// built-in "gifts" statement, so an in-process engine reproduces the
// server's responses exactly.
func demoStatementOpts() []diversification.Option {
	return []diversification.Option{
		diversification.WithK(3),
		diversification.WithObjective(diversification.MaxSum),
		diversification.WithLambda(0.7),
		diversification.WithAlgorithm(diversification.Auto),
		diversification.WithConstraints(),
		diversification.WithRelevance(diversification.AttrRelevance("price")),
		diversification.WithDistance(diversification.AttrDistance("type")),
	}
}

const demoStatement = "Q(item, type, price) :- catalog(item, type, price, s), price <= 40"

// queryRaw posts an empty query and returns the raw response body.
func queryRaw(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Post(base+"/v1/query/gifts", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d %s", resp.StatusCode, raw)
	}
	return strings.TrimSpace(string(raw))
}

// TestCrashRecoveryKillMidWrite is the headline durability test: drive a
// stream of acknowledged inserts into a real divserve running with
// -fsync always, SIGKILL it mid-traffic, restart on the same data
// directory, and require the restarted server's answer to be byte-identical
// (modulo elapsed time) to an in-process engine holding exactly the
// acknowledged state — same rows, same float bits, same solver stats, same
// generation.
func TestCrashRecoveryKillMidWrite(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real server")
	}
	bin := buildDivserve(t)
	dataDir := filepath.Join(t.TempDir(), "data")
	args := []string{"-demo", "-warm", "-data-dir", dataDir, "-fsync", "always"}
	cmd, logBuf, base := startDivserve(t, bin, args...)
	killed := false
	defer func() {
		if !killed {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	}()

	// Writer: serial acknowledged inserts until the kill severs the
	// connection. acked counts responses the client actually received —
	// under -fsync always each of those rows must survive.
	client := &httpapi.Client{BaseURL: base, HTTPClient: &http.Client{Timeout: 5 * time.Second}}
	ackedCh := make(chan int, 256)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for i := 0; ; i++ {
			if _, err := client.Insert(context.Background(), "catalog", [][]interface{}{bulkRow(i)}); err != nil {
				return
			}
			ackedCh <- i
		}
	}()
	for seen := 0; seen < 25; {
		select {
		case <-ackedCh:
			seen++
		case <-writerDone:
			t.Fatalf("writer died before the kill threshold\nserver log:\n%s", logBuf.String())
		}
	}
	// Kill while the writer is still mid-flight: whatever insert is in
	// progress may be torn on disk, which recovery must truncate.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait()
	killed = true
	<-writerDone
	// The writer has exited: drain the acks it delivered after the
	// threshold loop stopped reading.
	close(ackedCh)
	acked := 25 // consumed by the threshold loop
	for range ackedCh {
		acked++
	}

	// Restart on the same directory.
	cmd2, logBuf2, base2 := startDivserve(t, bin, args...)
	defer func() {
		_ = cmd2.Process.Kill()
		_ = cmd2.Wait()
	}()
	got := queryRaw(t, base2)

	var meta struct {
		Generation uint64 `json:"generation"`
	}
	if err := json.Unmarshal([]byte(got), &meta); err != nil {
		t.Fatalf("parsing restarted response: %v\n%s", err, got)
	}
	// Every acknowledged insert is durable; at most the single un-acked
	// in-flight insert may additionally have committed before the kill.
	minGen, maxGen := uint64(demoGen+acked), uint64(demoGen+acked+1)
	if meta.Generation < minGen || meta.Generation > maxGen {
		t.Fatalf("restarted generation %d outside [%d, %d] (acked %d)\nrestart log:\n%s",
			meta.Generation, minGen, maxGen, acked, logBuf2.String())
	}

	// Reference: an in-process engine holding the demo plus exactly the
	// rows the recovered generation says survived, queried through the
	// same register → warm → solve sequence divserve runs.
	ref := diversification.NewEngine()
	load.Demo(ref)
	for i := 0; i < int(meta.Generation)-demoGen; i++ {
		row := bulkRow(i)
		if err := ref.Insert("catalog", row...); err != nil {
			t.Fatal(err)
		}
	}
	p, err := ref.Prepare(demoStatement, demoStatementOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err := p.Do(context.Background(), diversification.Request{})
	if err != nil {
		t.Fatal(err)
	}
	wantRaw, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	if scrub(got) != scrub(string(wantRaw)) {
		t.Fatalf("restarted answer diverged from the acknowledged state\n got %s\nwant %s\nrestart log:\n%s",
			scrub(got), scrub(string(wantRaw)), logBuf2.String())
	}
}

// TestGracefulShutdown covers the SIGTERM path: in-flight work drains, the
// WAL flushes, the clean-shutdown marker lands, and the process exits 0.
func TestGracefulShutdown(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and signals a real server")
	}
	bin := buildDivserve(t)
	dataDir := filepath.Join(t.TempDir(), "data")
	cmd, logBuf, base := startDivserve(t, bin, "-demo", "-data-dir", dataDir, "-fsync", "interval", "-fsync-interval", "5ms")

	client := &httpapi.Client{BaseURL: base, HTTPClient: &http.Client{Timeout: 5 * time.Second}}
	for i := 0; i < 3; i++ {
		if _, err := client.Insert(context.Background(), "catalog", [][]interface{}{bulkRow(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("SIGTERM shutdown exited non-zero: %v\nserver log:\n%s", err, logBuf.String())
	}
	if _, err := os.Stat(filepath.Join(dataDir, "CLEAN")); err != nil {
		t.Fatalf("clean-shutdown marker missing: %v", err)
	}

	// The directory recovers to the exact post-traffic state, and reports
	// the shutdown as clean (interval fsync notwithstanding: Close syncs).
	e, rec, err := diversification.OpenEngine(diversification.DurabilityConfig{Dir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if !rec.CleanShutdown || rec.TornTail {
		t.Fatalf("recovery after graceful shutdown: %+v", rec)
	}
	if rec.Generation != demoGen+3 {
		t.Fatalf("recovered generation %d, want %d", rec.Generation, demoGen+3)
	}
}

// TestServeDurableGolden replays a fixed transcript against a durable
// divserve — mutations, a manual snapshot, a graceful restart — and diffs
// the whole exchange (both boots) against a golden file. The second boot's
// responses pin recovery semantics on the wire: the recovered generation,
// the replayed-entry count, the snapshot watermark.
func TestServeDurableGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real servers")
	}
	bin := buildDivserve(t)
	dataDir := filepath.Join(t.TempDir(), "data")
	args := []string{"-demo", "-data-dir", dataDir, "-fsync", "always"}
	httpClient := &http.Client{Timeout: 5 * time.Second}

	type step struct{ method, path, body string }
	run := func(base string, steps []step, transcript *strings.Builder) {
		for _, s := range steps {
			fmt.Fprintf(transcript, "$ %s %s %s\n", s.method, s.path, s.body)
			var resp *http.Response
			var err error
			if s.method == "GET" {
				resp, err = httpClient.Get(base + s.path)
			} else {
				resp, err = httpClient.Post(base+s.path, "application/json", strings.NewReader(s.body))
			}
			if err != nil {
				t.Fatalf("%s %s: %v", s.method, s.path, err)
			}
			raw, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			fmt.Fprintf(transcript, "%d %s\n", resp.StatusCode, scrub(strings.TrimSpace(string(raw))))
		}
	}

	var transcript strings.Builder
	cmd, logBuf, base := startDivserve(t, bin, args...)
	transcript.WriteString("--- boot 1 (empty data dir) ---\n")
	run(base, []step{
		{"GET", "/healthz", ""},
		{"POST", "/v1/insert/catalog", `{"rows":[["wool socks","apparel",12,6]]}`},
		{"POST", "/v1/query/gifts", `{}`},
		{"POST", "/v1/admin/snapshot", ""},
		{"POST", "/v1/delete/catalog", `{"rows":[["board game","toy",32,2]]}`},
		{"POST", "/v1/insert/nope", `{"rows":[[1]]}`},
		{"POST", "/v1/insert/catalog", `{"rows":[]}`},
		{"GET", "/metrics", ""},
	}, &transcript)
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("boot 1 shutdown: %v\nserver log:\n%s", err, logBuf.String())
	}

	cmd2, logBuf2, base2 := startDivserve(t, bin, args...)
	transcript.WriteString("--- boot 2 (recovered: snapshot gen 12 + 1 log entry) ---\n")
	run(base2, []step{
		{"GET", "/healthz", ""},
		{"POST", "/v1/query/gifts", `{}`},
		{"GET", "/metrics", ""},
	}, &transcript)
	if err := cmd2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd2.Wait(); err != nil {
		t.Fatalf("boot 2 shutdown: %v\nserver log:\n%s", err, logBuf2.String())
	}

	golden := filepath.Join("testdata", "golden", "serve-durable.txt")
	if updatingGolden() {
		if err := os.WriteFile(golden, []byte(transcript.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file %s (run `go test -run TestServeDurableGolden -update .`): %v", golden, err)
	}
	if string(want) != transcript.String() {
		t.Errorf("durable serve transcript diverged from %s\n--- want ---\n%s\n--- got ---\n%s",
			golden, want, transcript.String())
	}
}
