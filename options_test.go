package diversification

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// TestSettingsValidateTable exercises every validation branch of the
// option set and pins the typed ArgError each one produces: the field
// name is the wire contract the HTTP layer exposes in its 400 bodies.
func TestSettingsValidateTable(t *testing.T) {
	cases := []struct {
		name      string
		mutate    func(*settings)
		wantField string // "" means valid
	}{
		{"defaults are valid", func(s *settings) {}, ""},
		{"negative k", func(s *settings) { s.k = -1 }, "k"},
		{"zero k is valid", func(s *settings) { s.k = 0 }, ""},
		{"unknown objective", func(s *settings) { s.objective = Objective(42) }, "objective"},
		{"unknown algorithm", func(s *settings) { s.algorithm = Algorithm(42) }, "algorithm"},
		{"lambda below range", func(s *settings) { s.lambda = -0.1 }, "lambda"},
		{"lambda above range", func(s *settings) { s.lambda = 1.1 }, "lambda"},
		{"lambda NaN", func(s *settings) { s.lambda = math.NaN() }, "lambda"},
		{"lambda bounds are valid", func(s *settings) { s.lambda = 1 }, ""},
		{"negative rank", func(s *settings) { s.rank = -1 }, "rank"},
		{"negative plane limit", func(s *settings) { s.planeMaxBytes = -1 }, "plane-memory-limit"},
		{"negative parallelism", func(s *settings) { s.parallelism = -1 }, "parallelism"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := defaultSettings()
			tc.mutate(&s)
			err := s.validate()
			if tc.wantField == "" {
				if err != nil {
					t.Fatalf("expected valid, got %v", err)
				}
				return
			}
			var argErr *ArgError
			if !errors.As(err, &argErr) {
				t.Fatalf("expected *ArgError, got %T: %v", err, err)
			}
			if argErr.Field != tc.wantField {
				t.Errorf("field = %q, want %q", argErr.Field, tc.wantField)
			}
			if argErr.Reason == "" {
				t.Error("reason must describe the rejection")
			}
			if !strings.HasPrefix(err.Error(), "diversification: invalid "+tc.wantField+": ") {
				t.Errorf("Error() = %q lacks the canonical prefix", err.Error())
			}
		})
	}
}

// TestParseEnums covers the full textual enum surface: names, the paper's
// abbreviations, defaults and the typed rejection of unknowns.
func TestParseEnums(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Objective
	}{
		{"max-sum", MaxSum}, {"FMS", MaxSum}, {"", MaxSum},
		{"max-min", MaxMin}, {"FMM", MaxMin},
		{"mono", Mono}, {"Fmono", Mono},
	} {
		got, err := ParseObjective(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseObjective(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	var argErr *ArgError
	if _, err := ParseObjective("nope"); !errors.As(err, &argErr) || argErr.Field != "objective" {
		t.Errorf("ParseObjective(nope) = %v, want ArgError on objective", err)
	}

	for _, tc := range []struct {
		in   string
		want Algorithm
	}{
		{"auto", Auto}, {"", Auto}, {"exact", Exact}, {"greedy", Greedy},
		{"local-search", LocalSearch}, {"online", Online},
	} {
		got, err := ParseAlgorithm(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseAlgorithm(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseAlgorithm("nope"); !errors.As(err, &argErr) || argErr.Field != "algorithm" {
		t.Errorf("ParseAlgorithm(nope) = %v, want ArgError on algorithm", err)
	}

	for _, tc := range []struct {
		in   string
		want ProblemKind
	}{
		{"diversify", ProblemDiversify}, {"", ProblemDiversify},
		{"decide", ProblemDecide}, {"count", ProblemCount},
		{"in-top-r", ProblemInTopR}, {"intopr", ProblemInTopR},
		{"rank", ProblemRank},
	} {
		got, err := ParseProblem(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseProblem(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseProblem("nope"); !errors.As(err, &argErr) || argErr.Field != "problem" {
		t.Errorf("ParseProblem(nope) = %v, want ArgError on problem", err)
	}

	// String() round-trips every named constant, and falls back to a
	// numbered form for garbage values.
	for _, o := range []Objective{MaxSum, MaxMin, Mono} {
		if rt, err := ParseObjective(o.String()); err != nil || rt != o {
			t.Errorf("objective %v does not round-trip", o)
		}
	}
	for _, a := range []Algorithm{Auto, Exact, Greedy, LocalSearch, Online} {
		if rt, err := ParseAlgorithm(a.String()); err != nil || rt != a {
			t.Errorf("algorithm %v does not round-trip", a)
		}
	}
	for _, k := range []ProblemKind{ProblemDiversify, ProblemDecide, ProblemCount, ProblemInTopR, ProblemRank} {
		if rt, err := ParseProblem(k.String()); err != nil || rt != k {
			t.Errorf("problem %v does not round-trip", k)
		}
	}
	for _, s := range []string{Objective(9).String(), Algorithm(9).String(), ProblemKind(9).String()} {
		if !strings.Contains(s, "(9)") {
			t.Errorf("stringer fallback = %q", s)
		}
	}
}

// TestAttrScorers pins the shared attribute-based scorers: the single
// definition of numeric coercion and 0/1 inequality distance that the
// CLIs and the wire protocol all use.
func TestAttrScorers(t *testing.T) {
	e := NewEngine()
	e.MustCreateTable("m", "name", "count", "score", "ok")
	e.MustInsert("m", "a", 3, 2.5, true)
	e.MustInsert("m", "b", 4, 1.5, false)
	rs, err := e.Query("Q(name, count, score, ok) :- m(name, count, score, ok)")
	if err != nil {
		t.Fatal(err)
	}
	r0, r1 := rs.Row(0), rs.Row(1)
	cases := []struct {
		attr string
		row  Row
		want float64
	}{
		{"count", r0, 3}, {"score", r0, 2.5}, {"ok", r0, 1}, {"ok", r1, 0},
		{"name", r0, 0}, {"missing", r0, 0},
	}
	for _, tc := range cases {
		if got := AttrRelevance(tc.attr)(tc.row); got != tc.want {
			t.Errorf("AttrRelevance(%q) = %v, want %v", tc.attr, got, tc.want)
		}
	}
	if d := AttrDistance("name")(r0, r1); d != 1 {
		t.Errorf("distinct names should be distance 1, got %v", d)
	}
	if d := AttrDistance("name")(r0, r0); d != 0 {
		t.Errorf("equal names should be distance 0, got %v", d)
	}
}
