package diversification

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/faultfs"
)

// chaosOps are the write-path operation kinds a random schedule may break.
// Read-path ops stay healthy on purpose: the suite asserts solves never
// fail, which is only a fair demand while the failures are storage-write
// failures.
var chaosOps = []faultfs.Op{faultfs.OpWrite, faultfs.OpSync, faultfs.OpRename, faultfs.OpSyncDir}

// chaosQuery and its options mirror the service tests' statement shape over
// an items table the suite mutates throughout.
const chaosQuery = "Q(id, cat, price) :- items(id, cat, price), price <= 80"

// scrubResponse zeroes the wall-clock field and the advisory refresh
// report (a restarted statement rebuilds where a warm one was already
// current — cache provenance, not answer content) and returns the
// canonical JSON bytes of everything that must be identical.
func scrubResponse(t *testing.T, resp *Response) []byte {
	t.Helper()
	clone := *resp
	clone.Elapsed = 0
	clone.Refresh = RefreshInfo{}
	raw, err := json.Marshal(&clone)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestChaosWALSchedules is the storage half of the chaos suite: a seeded
// random fault schedule breaks and heals the WAL's filesystem while a
// mixed workload of mutations and solves runs. The invariants, checked
// throughout:
//
//   - solves never fail — a broken WAL degrades writes, never reads;
//   - every selected row is a row the mirror says is live, so no answer is
//     computed from corrupted state;
//   - every mutation outcome is classifiable: applied (nil error), refused
//     untouched (ErrReadOnly), or applied-in-memory with the WAL failure
//     reported (any other error) — never silent loss;
//
// and once the faults stop: the engine recovers to full (writable) service
// on its own, the database matches the mirror exactly, and a cold restart
// from the directory serves the byte-identical response.
func TestChaosWALSchedules(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChaosSchedule(t, seed)
		})
	}
}

func runChaosSchedule(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	dir := t.TempDir()
	fs := faultfs.Wrap(nil)
	e, _, err := OpenEngine(DurabilityConfig{
		Dir:           dir,
		FS:            fs,
		ProbeBackoff:  2 * time.Millisecond,
		SnapshotEvery: 25, // exercise the auto-snapshot path under faults too
	})
	if err != nil {
		t.Fatal(err)
	}
	closed := false
	defer func() {
		if !closed {
			e.Close()
		}
	}()
	if err := e.CreateTable("items", "id", "cat", "price"); err != nil {
		t.Fatal(err)
	}
	cats := []string{"a", "b", "c", "d", "e"}
	// mirror holds what a correct engine must contain: id -> (cat, price).
	type rowVal struct {
		cat   string
		price int
	}
	mirror := make(map[int]rowVal)
	nextID := 0
	// Seed a base the schedule cannot starve: a seed whose faults refuse
	// every loop mutation must still leave enough rows to solve over.
	for ; nextID < 8; nextID++ {
		v := rowVal{cat: cats[nextID%len(cats)], price: 10 + (nextID*13)%70}
		if err := e.Insert("items", nextID, v.cat, v.price); err != nil {
			t.Fatal(err)
		}
		mirror[nextID] = v
	}
	insert := func(applyErr error, id int, v rowVal) {
		switch {
		case applyErr == nil:
			mirror[id] = v
		case errors.Is(applyErr, ErrReadOnly):
			// Refused before touching the db: not applied.
		default:
			// The WAL failed while logging: the row is in memory and the
			// recovery snapshot will persist it.
			mirror[id] = v
		}
	}

	svc := NewService(e, ServiceConfig{})
	if err := svc.Register("items", chaosQuery, serviceOpts(3)...); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	for i := 0; i < 150; i++ {
		switch op := rng.Intn(10); {
		case op == 0:
			// (Re)arm a random schedule over a write-path op, anchored a few
			// occurrences ahead of the current count so it fires soon.
			kind := chaosOps[rng.Intn(len(chaosOps))]
			at := fs.Count(kind) + 1 + rng.Intn(3)
			if rng.Intn(2) == 0 {
				fs.SetInjector(faultfs.FailNth(kind, at, nil))
			} else {
				fs.SetInjector(faultfs.FailFrom(kind, at, nil))
			}
		case op == 1:
			fs.Heal()
		case op < 6:
			id := nextID
			nextID++
			v := rowVal{cat: cats[rng.Intn(len(cats))], price: 10 + rng.Intn(70)}
			insert(e.Insert("items", id, v.cat, v.price), id, v)
		case op == 6 && len(mirror) > 0:
			// Delete a random live row; iteration order is random enough.
			for id, v := range mirror {
				ok, err := e.Delete("items", id, v.cat, v.price)
				switch {
				case err == nil:
					if !ok {
						t.Fatalf("delete of live row %d reported absent", id)
					}
					delete(mirror, id)
				case errors.Is(err, ErrReadOnly):
					// Untouched.
				default:
					delete(mirror, id) // applied in memory, WAL failure reported
				}
				break
			}
		default:
			if len(mirror) == 0 {
				continue
			}
			resp, err := svc.Do(ctx, "items", Request{Problem: ProblemDiversify})
			if err != nil {
				if errors.Is(err, ErrNoCandidate) {
					continue // every live row may exceed the price bound
				}
				t.Fatalf("op %d: solve failed under storage faults: %v", i, err)
			}
			for _, row := range resp.Selection.Rows {
				id := int(row.Get("id").(int64))
				v, live := mirror[id]
				if !live {
					t.Fatalf("op %d: selection contains dead row %d", i, id)
				}
				if v.cat != row.Get("cat").(string) || int64(v.price) != row.Get("price").(int64) {
					t.Fatalf("op %d: row %v diverged from mirror value %v", i, row, v)
				}
			}
		}
	}

	// Faults over: the engine must restore full service on its own.
	fs.Heal()
	waitFor(t, "write mode restored", func() bool { return !e.ReadOnly() })
	id := nextID
	nextID++
	if err := e.Insert("items", id, "a", 50); err != nil {
		t.Fatalf("insert after recovery: %v", err)
	}
	mirror[id] = rowVal{cat: "a", price: 50}

	// The database must now be exactly the mirror.
	checkDB := func(eng *Engine, label string) {
		t.Helper()
		rs, err := eng.QueryContext(ctx, "Q(id, cat, price) :- items(id, cat, price)")
		if err != nil {
			t.Fatalf("%s: dump: %v", label, err)
		}
		if rs.Len() != len(mirror) {
			t.Fatalf("%s: %d rows, mirror has %d", label, rs.Len(), len(mirror))
		}
		for i := 0; i < rs.Len(); i++ {
			row := rs.Row(i)
			id := int(row.Get("id").(int64))
			v, live := mirror[id]
			if !live || v.cat != row.Get("cat").(string) || int64(v.price) != row.Get("price").(int64) {
				t.Fatalf("%s: row %v not in mirror (want %v, live=%v)", label, row, v, live)
			}
		}
	}
	checkDB(e, "recovered engine")

	if _, err := svc.Refresh(ctx, "items"); err != nil {
		t.Fatalf("post-recovery refresh: %v", err)
	}
	resp1, err := svc.Do(ctx, "items", Request{Problem: ProblemDiversify})
	if err != nil {
		t.Fatalf("post-recovery solve: %v", err)
	}
	want := scrubResponse(t, resp1)

	// Cold restart from the directory (clean filesystem): same bytes.
	if err := e.Close(); err != nil {
		t.Fatalf("close after recovery: %v", err)
	}
	closed = true
	e2, _, err := OpenEngine(DurabilityConfig{Dir: dir})
	if err != nil {
		t.Fatalf("reopen after chaos: %v", err)
	}
	defer e2.Close()
	checkDB(e2, "restarted engine")
	svc2 := NewService(e2, ServiceConfig{})
	if err := svc2.Register("items", chaosQuery, serviceOpts(3)...); err != nil {
		t.Fatal(err)
	}
	resp2, err := svc2.Do(ctx, "items", Request{Problem: ProblemDiversify})
	if err != nil {
		t.Fatalf("restarted solve: %v", err)
	}
	if got := scrubResponse(t, resp2); string(got) != string(want) {
		t.Fatalf("post-restart response diverged:\n before: %s\n after:  %s", want, got)
	}
}
