package diversification

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ErrUnknownStatement is returned by Service calls naming a statement that
// was never registered (or was deregistered). Serving layers map it to a
// not-found status.
var ErrUnknownStatement = errors.New("diversification: unknown statement")

// ErrOverloaded is returned when the admission queue is full: the
// concurrency limit is saturated and MaxQueue requests are already
// waiting. Serving layers map it to a retryable too-many-requests status —
// shedding load at the door is what keeps tail latency bounded for the
// requests that do get in.
var ErrOverloaded = errors.New("diversification: service overloaded (admission queue full)")

// ServiceConfig tunes a Service.
type ServiceConfig struct {
	// MaxConcurrent bounds how many requests execute simultaneously; 0
	// means GOMAXPROCS. Solves are CPU-bound, so admitting more than the
	// core count only adds contention.
	MaxConcurrent int
	// MaxQueue bounds how many admitted-but-waiting requests may queue for
	// an execution slot before new arrivals are rejected with
	// ErrOverloaded; 0 means 4×MaxConcurrent. Negative disables queueing
	// (full slots reject immediately).
	MaxQueue int
	// DefaultTimeout is applied to requests whose context carries no
	// deadline of its own; 0 leaves them unbounded. The deadline covers
	// queue wait plus execution, so a request cannot consume a slot
	// longer than the caller is still listening.
	DefaultTimeout time.Duration
	// ShutdownGrace bounds how long Close waits for in-flight requests to
	// drain before giving up (default 5s). A Close context with an earlier
	// deadline wins.
	ShutdownGrace time.Duration
	// CacheEntries bounds the generation-keyed result cache; 0 means the
	// default (1024 entries), negative disables caching and request
	// coalescing entirely. The cache is exact by construction — keys embed
	// the database generation, which every mutation advances — so the only
	// reason to disable it is measurement.
	CacheEntries int
}

// CacheMetrics is the result cache's counter block inside Metrics. All
// fields stay zero when the cache is disabled.
type CacheMetrics struct {
	Hits          int64 `json:"hits"`          // served from a stored response
	Misses        int64 `json:"misses"`        // cacheable requests that executed a solve
	Coalesced     int64 `json:"coalesced"`     // followers served by a concurrent identical solve
	Evictions     int64 `json:"evictions"`     // entries dropped by the LRU bound
	Entries       int64 `json:"entries"`       // entries currently stored
	Invalidations int64 `json:"invalidations"` // entries swept because their generation went stale
}

// Metrics is a point-in-time snapshot of the service counters, exported
// with stable JSON field names for the wire protocol.
type Metrics struct {
	Statements int   `json:"statements"`
	Requests   int64 `json:"requests"` // admitted calls, including refreshes
	Failures   int64 `json:"failures"` // calls that returned an error
	Rejected   int64 `json:"rejected"` // shed by the admission queue
	// CanceledWaiting counts requests whose context expired while they
	// were waiting — parked in the admission queue, or waiting on a
	// coalesced solve — so every arrival lands in exactly one of
	// Requests, Rejected or CanceledWaiting.
	CanceledWaiting int64 `json:"canceled_waiting"`
	InFlight        int64 `json:"in_flight"`   // currently executing
	QueueDepth      int64 `json:"queue_depth"` // currently waiting for a slot
	QueuePeak       int64 `json:"queue_peak"`  // high-water mark of QueueDepth

	// Cache is the generation-keyed result cache's counter block; all
	// zeros when caching is disabled (ServiceConfig.CacheEntries < 0).
	Cache CacheMetrics `json:"cache"`

	// Durability carries the write-ahead-log and recovery counters of a
	// durable engine; nil (and absent on the wire) for in-memory engines.
	Durability *DurabilityMetrics `json:"durability,omitempty"`

	// Plane aggregates the cached score planes across registered
	// statements; nil (and absent on the wire) while no statement has a
	// plane resident.
	Plane *PlaneMetrics `json:"plane,omitempty"`

	// Cluster carries a coordinator's shard fan-out counters; nil (and
	// absent on the wire) outside cluster-coordinator mode.
	Cluster *ClusterMetrics `json:"cluster,omitempty"`
}

// PlaneMetrics aggregates the score planes cached by the registered
// statements' published snapshots: how many are resident, how each serves
// distances (regime name -> count), the estimated bytes they hold, and the
// memo caches' entry/eviction counters.
type PlaneMetrics struct {
	Planes         int64            `json:"planes"`
	Regimes        map[string]int64 `json:"regimes,omitempty"`
	EstimatedBytes int64            `json:"estimated_bytes"`
	MemoEntries    int64            `json:"memo_entries"`
	MemoEvictions  int64            `json:"memo_evictions"`
}

// Service is the serving facade over one Engine: a named statement
// registry (prepare once under a name, query it forever), per-request
// deadlines, and a bounded admission semaphore so a traffic burst degrades
// into fast rejections instead of a convoy. It is the layer cmd/divserve
// exposes over HTTP; embedders can use it directly for the same admission
// discipline in-process.
//
// A Service is safe for concurrent use, including concurrently with
// Engine mutations: every query runs under the engine's read lock via the
// Prepared pipeline.
type Service struct {
	eng *Engine
	cfg ServiceConfig

	mu    sync.RWMutex
	stmts map[string]*Prepared

	sem chan struct{}

	// cache is the generation-keyed result cache, nil when disabled;
	// flights (guarded by fmu) coalesces concurrent identical-key misses
	// onto one pipeline execution.
	cache   *resultCache
	fmu     sync.Mutex
	flights map[string]*flight

	requests        atomic.Int64
	failures        atomic.Int64
	rejected        atomic.Int64
	canceledWaiting atomic.Int64
	inFlight        atomic.Int64
	queued          atomic.Int64
	peak            atomic.Int64

	// closed flips once in Close: new admissions are rejected while
	// in-flight requests drain.
	closed atomic.Bool
}

// NewService wraps an engine in a serving facade. Zero-value config fields
// take the documented defaults.
func NewService(e *Engine, cfg ServiceConfig) *Service {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = 4 * cfg.MaxConcurrent
	}
	if cfg.MaxQueue < 0 {
		cfg.MaxQueue = 0
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = defaultCacheEntries
	}
	s := &Service{
		eng:   e,
		cfg:   cfg,
		stmts: make(map[string]*Prepared),
		sem:   make(chan struct{}, cfg.MaxConcurrent),
	}
	if cfg.CacheEntries > 0 {
		s.cache = newResultCache(cfg.CacheEntries)
		s.flights = make(map[string]*flight)
	}
	return s
}

// Engine returns the engine the service fronts; mutations go through it.
func (s *Service) Engine() *Engine { return s.eng }

// Register compiles src under name: parse, validate, classify and bind the
// options once, exactly as Engine.Prepare does. Re-registering a name
// replaces its statement atomically; in-flight requests on the old handle
// finish against it. The error for an invalid query or option set is the
// Prepare error, typed (ArgError) where the argument was at fault.
func (s *Service) Register(name, src string, opts ...Option) error {
	if name == "" {
		return argErrorf("statement", "name must be non-empty")
	}
	p, err := s.eng.Prepare(src, opts...)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.stmts[name] = p
	s.mu.Unlock()
	return nil
}

// Deregister removes a named statement, reporting whether it existed.
func (s *Service) Deregister(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.stmts[name]
	delete(s.stmts, name)
	return ok
}

// Prepared returns the registered statement's handle, for callers that
// want the full Prepared surface (plans, batches) on a named statement.
func (s *Service) Prepared(name string) (*Prepared, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.stmts[name]
	return p, ok
}

// Statements lists the registered statement names, sorted.
func (s *Service) Statements() []string {
	s.mu.RLock()
	names := make([]string, 0, len(s.stmts))
	for name := range s.stmts {
		names = append(names, name)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Metrics snapshots the service counters.
func (s *Service) Metrics() Metrics {
	s.mu.RLock()
	n := len(s.stmts)
	stmts := make([]*Prepared, 0, n)
	for _, st := range s.stmts {
		stmts = append(stmts, st)
	}
	s.mu.RUnlock()
	m := Metrics{
		Statements:      n,
		Requests:        s.requests.Load(),
		Failures:        s.failures.Load(),
		Rejected:        s.rejected.Load(),
		CanceledWaiting: s.canceledWaiting.Load(),
		InFlight:        s.inFlight.Load(),
		QueueDepth:      s.queued.Load(),
		QueuePeak:       s.peak.Load(),
	}
	if s.cache != nil {
		m.Cache = CacheMetrics{
			Hits:          s.cache.hits.Load(),
			Misses:        s.cache.misses.Load(),
			Coalesced:     s.cache.coalesced.Load(),
			Evictions:     s.cache.evictions.Load(),
			Entries:       int64(s.cache.len()),
			Invalidations: s.cache.invalidations.Load(),
		}
	}
	if dm, ok := s.eng.durabilityMetrics(); ok {
		m.Durability = &dm
	}
	var pm PlaneMetrics
	for _, st := range stmts {
		regime, bytes, entries, evictions, ok := st.planeMetrics()
		if !ok {
			continue
		}
		pm.Planes++
		if pm.Regimes == nil {
			pm.Regimes = make(map[string]int64)
		}
		pm.Regimes[regime]++
		pm.EstimatedBytes += bytes
		pm.MemoEntries += entries
		pm.MemoEvictions += evictions
	}
	if pm.Planes > 0 {
		m.Plane = &pm
	}
	return m
}

// withDeadline applies the configured default timeout to contexts that
// carry no deadline of their own.
func (s *Service) withDeadline(ctx context.Context) (context.Context, context.CancelFunc) {
	if s.cfg.DefaultTimeout <= 0 {
		return ctx, func() {}
	}
	if _, ok := ctx.Deadline(); ok {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, s.cfg.DefaultTimeout)
}

// admit acquires an execution slot, queueing up to MaxQueue waiters and
// rejecting beyond that. The returned release func must be called when the
// request finishes. Waiting respects ctx: a caller that gives up (deadline,
// disconnect) leaves the queue immediately.
func (s *Service) admit(ctx context.Context) (func(), error) {
	if s.closed.Load() {
		s.rejected.Add(1)
		return nil, ErrOverloaded
	}
	select {
	case s.sem <- struct{}{}:
	default:
		// All slots busy: join the bounded queue.
		q := s.queued.Add(1)
		if q > int64(s.cfg.MaxQueue) {
			s.queued.Add(-1)
			s.rejected.Add(1)
			return nil, ErrOverloaded
		}
		for {
			peak := s.peak.Load()
			if q <= peak || s.peak.CompareAndSwap(peak, q) {
				break
			}
		}
		select {
		case s.sem <- struct{}{}:
			s.queued.Add(-1)
		case <-ctx.Done():
			// Neither admitted nor shed: without its own counter this
			// outcome would make Requests+Rejected undercount arrivals.
			s.queued.Add(-1)
			s.canceledWaiting.Add(1)
			return nil, ctx.Err()
		}
	}
	s.inFlight.Add(1)
	return func() {
		s.inFlight.Add(-1)
		<-s.sem
	}, nil
}

// Close drains the service for shutdown: new admissions are rejected with
// ErrOverloaded immediately, and Close waits — up to ctx's deadline or
// ShutdownGrace, whichever is earlier — for every in-flight and queued
// request to finish. It returns nil when the service drained, or an error
// naming how many requests were still running when the grace expired
// (they keep running; the caller decides whether to hard-stop). Close is
// idempotent; it does not close the engine.
func (s *Service) Close(ctx context.Context) error {
	s.closed.Store(true)
	grace := s.cfg.ShutdownGrace
	if grace <= 0 {
		grace = 5 * time.Second
	}
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, grace)
		defer cancel()
	}
	ticker := time.NewTicker(2 * time.Millisecond)
	defer ticker.Stop()
	for {
		inflight, queued := s.inFlight.Load(), s.queued.Load()
		if inflight == 0 && queued == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("diversification: shutdown grace expired with %d in flight, %d queued", inflight, queued)
		case <-ticker.C:
		}
	}
}

// Do answers a Request against a registered statement. The fast path is a
// hash lookup: with caching enabled, the request canonicalizes into a
// (statement, merged settings, database generation) key, and a stored
// response for that exact key is returned without touching the admission
// gate — the generation in the key proves it is not stale. Concurrent
// identical-key misses coalesce onto one pipeline execution; everything
// else goes through the admission gate (apply the default deadline, wait
// for or be refused an execution slot) and the statement's Request → Plan
// → Execute pipeline.
func (s *Service) Do(ctx context.Context, name string, req Request) (*Response, error) {
	p, ok := s.Prepared(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownStatement, name)
	}
	ctx, cancel := s.withDeadline(ctx)
	defer cancel()
	if s.cache == nil || s.closed.Load() {
		// No cache, or draining: the plain admission path (which rejects
		// closed services) handles it.
		return s.execute(ctx, p, req)
	}
	base, cacheable := p.requestKey(req)
	if !cacheable {
		return s.execute(ctx, p, req)
	}
	start := time.Now()
	key := fmt.Sprintf("g%d|%s", s.eng.Generation(), base)
	if resp, ok := s.cache.get(key); ok {
		s.requests.Add(1)
		return markCached(resp, time.Since(start)), nil
	}
	fl, leader := s.joinFlight(key)
	if !leader {
		select {
		case <-fl.done:
			if fl.err == nil && fl.resp != nil && !fl.resp.Degraded {
				s.requests.Add(1)
				s.cache.coalesced.Add(1)
				return markCached(cacheableCopy(fl.resp), time.Since(start)), nil
			}
			// The leader failed or answered approximately under its own
			// deadline pressure; neither outcome may poison this caller —
			// run our own solve under our own context.
			s.cache.misses.Add(1)
			return s.execute(ctx, p, req)
		case <-ctx.Done():
			s.canceledWaiting.Add(1)
			return nil, ctx.Err()
		}
	}
	// Double-checked lookup: a previous leader may have stored this key
	// between our miss and our flight registration. It stores before it
	// releases its flight, and flight handoff goes through fmu, so a hit
	// here observes the completed put — which makes "exactly one solve per
	// (key, generation)" a guarantee rather than best-effort suppression.
	if resp, ok := s.cache.get(key); ok {
		s.finishFlight(key, fl, resp, nil)
		s.requests.Add(1)
		return markCached(resp, time.Since(start)), nil
	}
	s.cache.misses.Add(1)
	var resp *Response
	var err error
	func() {
		// Store, then publish, inside a defer: the entry must be visible
		// before the flight closes (a request landing between the two
		// would otherwise re-solve), and followers must be woken even if
		// the pipeline panics.
		defer func() {
			if err == nil && resp != nil && !resp.Degraded && resp.DegradedFrom == "" && resp.Generation != 0 {
				// Store under the generation the solve actually ran at (a
				// mutation may have slipped between key computation and
				// the engine lock); degraded and deadline-shaped responses
				// are never stored.
				s.cache.put(fmt.Sprintf("g%d|%s", resp.Generation, base), resp.Generation, cacheableCopy(resp))
			}
			s.finishFlight(key, fl, resp, err)
		}()
		resp, err = s.execute(ctx, p, req)
	}()
	return resp, err
}

// execute runs one request through the admission gate and the pipeline,
// maintaining the request/failure counters. It is the single accounting
// point shared by cached and uncached paths.
func (s *Service) execute(ctx context.Context, p *Prepared, req Request) (*Response, error) {
	release, err := s.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	s.requests.Add(1)
	resp, err := p.Do(ctx, req)
	if err != nil {
		s.failures.Add(1)
		return nil, err
	}
	return resp, nil
}

// Refresh brings a registered statement's caches up to date (snapshot and
// eagerly materialized plane), through the same admission gate as queries:
// a refresh is rebuild-shaped work and must not bypass the concurrency
// bound.
func (s *Service) Refresh(ctx context.Context, name string) (RefreshInfo, error) {
	p, ok := s.Prepared(name)
	if !ok {
		return RefreshInfo{}, fmt.Errorf("%w: %q", ErrUnknownStatement, name)
	}
	ctx, cancel := s.withDeadline(ctx)
	defer cancel()
	release, err := s.admit(ctx)
	if err != nil {
		return RefreshInfo{}, err
	}
	defer release()
	s.requests.Add(1)
	info, err := p.Refresh(ctx)
	if err != nil {
		s.failures.Add(1)
	}
	return info, err
}

// SnapshotInfo is the wire form of a completed snapshot.
type SnapshotInfo struct {
	// Generation the snapshot captured; recovery from it replays only the
	// log records above this.
	Generation uint64 `json:"generation"`
}

// Snapshot persists the engine's full database and prunes the write-ahead
// log, through the same admission gate as queries — serializing the store
// is rebuild-shaped work and must not bypass the concurrency bound. It
// fails with ErrNotDurable on an in-memory engine.
func (s *Service) Snapshot(ctx context.Context) (SnapshotInfo, error) {
	ctx, cancel := s.withDeadline(ctx)
	defer cancel()
	release, err := s.admit(ctx)
	if err != nil {
		return SnapshotInfo{}, err
	}
	defer release()
	s.requests.Add(1)
	gen, err := s.eng.Snapshot(ctx)
	if err != nil {
		s.failures.Add(1)
		return SnapshotInfo{}, err
	}
	return SnapshotInfo{Generation: gen}, nil
}
