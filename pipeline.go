package diversification

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"strings"
	"time"

	"repro/internal/approx"
	"repro/internal/compat"
	"repro/internal/core"
	"repro/internal/objective"
	"repro/internal/online"
	"repro/internal/relation"
	"repro/internal/solver"
)

// Stats reports the work one solve performed, normalized across solver
// families: the exact branch-and-bound fields (Nodes/Leaves/Pruned/Frames/
// Warm), the heuristics' candidate-evaluation count (Steps) and the online
// procedures' stream progress (Seen/Exhausted). Fields that do not apply to
// the route taken are zero.
type Stats struct {
	Nodes     int  `json:"nodes,omitempty"`     // search-tree nodes visited
	Leaves    int  `json:"leaves,omitempty"`    // complete candidate sets evaluated
	Pruned    int  `json:"pruned,omitempty"`    // subtrees cut by the admissible bound
	Answers   int  `json:"answers,omitempty"`   // |Q(D)| the solver ran over
	Explored  bool `json:"explored,omitempty"`  // the search ran (vs a shortcut)
	Frames    int  `json:"frames,omitempty"`    // parallel search frames (0: sequential)
	Warm      bool `json:"warm,omitempty"`      // bound warm-started from a heuristic
	Steps     int  `json:"steps,omitempty"`     // heuristic candidate evaluations
	Seen      int  `json:"seen,omitempty"`      // answers streamed before stopping
	Exhausted bool `json:"exhausted,omitempty"` // the online stream saw all of Q(D)
}

// searchStats lowers the internal exact-search statistics into the public
// form, field for field.
func searchStats(s solver.Stats) Stats {
	return Stats{
		Nodes:    s.Nodes,
		Leaves:   s.Leaves,
		Pruned:   s.Pruned,
		Answers:  s.Answers,
		Explored: s.Explored,
		Frames:   s.Frames,
		Warm:     s.Warm,
	}
}

// ErrNoCandidate is the shared "no candidate set" failure of the selection
// methods: fewer than k answers, or constraints unsatisfiable. Serving
// layers map it to an unprocessable-request status rather than a server
// failure.
var ErrNoCandidate = errors.New("diversification: no candidate set (too few answers or unsatisfiable constraints)")

// Response is the unified outcome of a Request: which problem ran, which
// solver route answered it, the problem's answer field(s), the solver's
// work statistics, how the snapshot was brought up to date, and timing.
// Only the answer field matching the Problem is set — Selection for
// diversify, Exists for decide, Count for count, InTopR for in-top-r,
// Rank for rank. The boolean answers are pointers so the wire
// distinguishes "the answer is false" (field present) from "this problem
// carries no such answer" (field absent).
type Response struct {
	Problem ProblemKind `json:"problem"`
	// Route is the solver route that actually produced the answer (the
	// plan's primary route, or its recorded fallback when the primary
	// refused the instance).
	Route string `json:"route"`

	Selection *Selection `json:"selection,omitempty"`
	Exists    *bool      `json:"exists,omitempty"`
	InTopR    *bool      `json:"in_top_r,omitempty"`
	Count     *big.Int   `json:"count,omitempty"`
	Rank      int        `json:"rank,omitempty"`

	// Degraded marks the answer as approximate: deadline pressure made the
	// plan (or a mid-solve abort at the soft deadline) answer with the
	// greedy heuristic instead of the exact solver. A Degraded selection is
	// a valid candidate set with the heuristic's guarantees, not the
	// optimum.
	Degraded bool `json:"degraded,omitempty"`
	// DegradedFrom records the route chain abandoned under deadline
	// pressure (e.g. "exact" or "exact→parallel-exact"); non-empty whenever
	// the deadline changed the plan, even when the answer stayed exact
	// (the parallel downgrade).
	DegradedFrom string `json:"degraded_from,omitempty"`

	// Cached marks a response served by the Service result cache — a hit
	// at the same (statement, request, generation) key, or a coalesced
	// twin of a concurrent identical request — rather than a solve
	// executed for this call. The answer fields are byte-identical to what
	// the solve would have produced: the key embeds the database
	// generation, so a hit is never stale.
	Cached bool `json:"cached,omitempty"`

	Stats Stats `json:"stats"`
	// Refresh reports how the answer-set snapshot was brought up to date
	// for this request ("warm", "delta" or "rebuild"); zero for streaming
	// routes that never materialize one.
	Refresh RefreshInfo `json:"refresh"`
	// Generation is the database generation the answer is paired with.
	Generation uint64 `json:"generation,omitempty"`
	// Elapsed is the wall-clock time of plan + execute.
	Elapsed time.Duration `json:"elapsed_ns,omitempty"`
	// Explain is the plan's human-readable account of what it chose,
	// populated when the Request opted in (Request.Explain).
	Explain string `json:"explain,omitempty"`
}

// Decided returns the decide answer, false when absent.
func (r *Response) Decided() bool { return r.Exists != nil && *r.Exists }

// TopR returns the in-top-r answer, false when absent.
func (r *Response) TopR() bool { return r.InTopR != nil && *r.InTopR }

// Plan is a compiled Request: the per-request settings merged and
// validated, the constraint set compiled, the candidate set checked, the
// solver route chosen, and — for routes that run over the materialized
// answer set — the snapshot and score plane resolved and pinned. Explain
// reports every one of those choices; Execute runs the solvers against
// them.
//
// A materialized-route Plan pins the snapshot it resolved: executing it
// after further database mutations answers against the plan-time
// generation. The streaming routes (online diversify, cold-cache decide)
// have no snapshot to pin — they evaluate the live database at Execute
// time and report the generation they actually streamed. A Plan is not
// safe for concurrent use.
type Plan struct {
	p   *Prepared
	req Request

	s     settings
	sigma *compat.Set
	u     []relation.Tuple // checked candidate set (in-top-r, rank)

	route    string
	fallback string // secondary route when the primary can refuse, "" otherwise

	// Deadline degradation (see maybeDegrade): degraded marks the answer
	// approximate, degradedFrom records the abandoned route chain, and
	// degradeNote is Explain's account of the decision.
	degraded     bool
	degradedFrom string
	degradeNote  string

	// snap/plane/refresh/gen are resolved at plan time for materialized
	// routes; streaming routes leave snap nil and fill refresh/gen only if
	// execution falls back to a materialized solver.
	snap      *snapshot
	plane     *objective.Plane
	refresh   RefreshInfo
	gen       uint64
	planeNote string // Explain's account of the plane decision
}

// Plan compiles a Request against the handle without executing it: the
// same resolution Do performs, exposed for observability — inspect the
// outcome with Explain, run it with Execute.
func (p *Prepared) Plan(ctx context.Context, req Request) (*Plan, error) {
	p.eng.mu.RLock()
	defer p.eng.mu.RUnlock()
	return p.plan(ctx, req)
}

// Do answers a Request through the unified pipeline: plan (merge + validate
// settings, compile σ, resolve snapshot and plane, choose the route), then
// execute (dispatch the solvers, assemble the Response). Every public solve
// method is a shim over Do, so this is the one audited execution path.
func (p *Prepared) Do(ctx context.Context, req Request) (*Response, error) {
	start := time.Now()
	p.eng.mu.RLock()
	defer p.eng.mu.RUnlock()
	pl, err := p.plan(ctx, req)
	if err != nil {
		return nil, err
	}
	resp, err := pl.execute(ctx)
	if err != nil {
		return nil, err
	}
	resp.Elapsed = time.Since(start)
	return resp, nil
}

// Execute runs the plan's solvers and assembles the Response. It may be
// called more than once; each call re-runs the solve against the pinned
// snapshot.
func (pl *Plan) Execute(ctx context.Context) (*Response, error) {
	start := time.Now()
	pl.p.eng.mu.RLock()
	defer pl.p.eng.mu.RUnlock()
	resp, err := pl.execute(ctx)
	if err != nil {
		return nil, err
	}
	resp.Elapsed = time.Since(start)
	return resp, nil
}

// Route returns the primary solver route the plan chose.
func (pl *Plan) Route() string { return pl.route }

// plan resolves a Request into a Plan. Callers hold the engine's read
// lock. The resolution order mirrors the pre-pipeline methods exactly:
// settings merge + validation, problem-specific argument checks, σ
// compilation, then snapshot + plane acquisition for materialized routes.
func (p *Prepared) plan(ctx context.Context, req Request) (*Plan, error) {
	if !req.Problem.valid() {
		return nil, argErrorf("problem", "unknown problem %s", req.Problem)
	}
	s, err := p.call(req.callOptions())
	if err != nil {
		return nil, err
	}
	pl := &Plan{p: p, req: req, s: s}

	// Problem-specific argument checks, before any evaluation work.
	switch req.Problem {
	case ProblemInTopR:
		if s.rank < 1 {
			return nil, argErrorf("rank", "must be at least 1 for in-top-r (set it with WithRank), got %d", s.rank)
		}
		u, err := p.checkSet(req.Set, s.k)
		if err != nil {
			return nil, err
		}
		pl.u = u
	case ProblemRank:
		pl.s.rank = int(^uint(0) >> 1) // count all better sets
		u, err := p.checkSet(req.Set, s.k)
		if err != nil {
			return nil, err
		}
		pl.u = u
	}

	sigma, err := p.sigmaFor(s)
	if err != nil {
		return nil, err
	}
	pl.sigma = sigma

	// Route selection per the paper's complexity map, recorded so Explain
	// can say why. materialize mirrors which pre-pipeline paths attached
	// the cached answer set: everything except the streaming online routes.
	materialize := true
	switch req.Problem {
	case ProblemDiversify:
		switch s.algorithm {
		case Auto, Exact:
			pl.route = "exact"
		case Greedy:
			if sigma.Len() > 0 {
				return nil, errors.New("diversification: greedy does not support constraints")
			}
			pl.route = "greedy"
		case LocalSearch:
			if sigma.Len() > 0 {
				return nil, errors.New("diversification: local-search does not support constraints")
			}
			pl.route = "local-search"
		case Online:
			pl.route = "online"
			materialize = false
		default:
			return nil, argErrorf("algorithm", "unknown algorithm %s", s.algorithm)
		}
	case ProblemDecide:
		switch {
		case s.objective == Mono && len(s.constraints) == 0:
			// The paper's PTIME algorithm when it applies (Theorem 5.4).
			pl.route = "mono-ptime"
			pl.fallback = "exact"
		case p.current() == nil && !p.refreshableDelta():
			// With a cold cache (and no journal delta that would warm it
			// cheaply), stream the evaluation and stop at the first valid
			// set — the paper's early termination (Section 1).
			pl.route = "online-stream"
			pl.fallback = "exact"
			materialize = false
		default:
			pl.route = "exact"
		}
	case ProblemCount:
		pl.route = "exact"
	case ProblemInTopR:
		if s.objective == Mono && sigma.Len() == 0 {
			pl.route = "mono-ptime"
			pl.fallback = "exact"
		} else {
			pl.route = "exact"
		}
	case ProblemRank:
		pl.route = "exact"
	}

	if materialize {
		if err := pl.materialize(ctx); err != nil {
			return nil, err
		}
	} else {
		pl.planeNote = "streaming (the online procedures intern their own plane)"
	}
	if req.Problem == ProblemDiversify && pl.route == "exact" {
		pl.maybeDegrade(ctx)
	}
	return pl, nil
}

// degradeBudgetFraction is how much of the remaining deadline a predicted
// solve may consume before the plan downgrades the route; the same
// fraction sets the mid-solve soft deadline, leaving headroom to assemble
// and ship the fallback answer instead of timing out empty-handed.
const degradeBudgetFraction = 0.8

// maybeDegrade downgrades a deadline-pressured exact diversify route
// along the chain exact → parallel-exact → greedy. The parallel step
// still answers exactly (only DegradedFrom records it); the greedy step
// flags the answer Degraded. Constraints rule the greedy step out (the
// heuristic cannot honor σ), and with no cost signal at all the plan
// stands pat — the mid-solve soft-deadline abort in execDiversify still
// guards the deadline. Only diversify degrades: decide/count/rank answers
// have no meaningful approximate form.
func (pl *Plan) maybeDegrade(ctx context.Context) {
	deadline, has := ctx.Deadline()
	if !has || pl.snap == nil {
		return
	}
	budget := time.Until(deadline).Seconds() * degradeBudgetFraction
	if budget <= 0 {
		return
	}
	n := len(pl.snap.answers)
	exact, par, ok := pl.p.eng.cost.predictExactChain(n)
	if !ok {
		return
	}
	chain := costRouteKey(pl.s.workers())
	pred := exact
	if pl.s.workers() > 1 {
		pred = par
	}
	if pred <= budget {
		return
	}
	if pl.s.workers() == 1 && par <= budget {
		// The parallel search is predicted to fit: same exact answer,
		// faster route.
		pl.s.parallelism = 0 // auto: GOMAXPROCS workers
		pl.s.parallelSet = true
		pl.degradedFrom = chain
		pl.degradeNote = fmt.Sprintf("exact predicted %.3fs > %.3fs budget; running parallel (predicted %.3fs), answer still exact",
			exact, budget, par)
		return
	}
	if pl.s.workers() == 1 {
		chain += "→parallel-exact"
	}
	if pl.sigma.Len() > 0 {
		// Greedy cannot honor constraints; the mid-solve abort is the only
		// remaining guard.
		return
	}
	pl.route = "greedy"
	pl.degraded = true
	pl.degradedFrom = chain
	pl.degradeNote = fmt.Sprintf("%s predicted %.3fs > %.3fs budget; answering with the greedy heuristic",
		chain, pred, budget)
}

// materialize acquires the snapshot for the current generation and attaches
// the handle-cached score plane when this request's scoring bindings are
// the prepared ones; a per-request WithRelevance/WithDistance/
// WithPlaneMemoryLimit gets a fresh per-instance plane lazily instead, so
// it never observes scores baked from the wrong functions (or a matrix
// sized under the wrong memory limit). Also used by execute when a
// streaming route's solver refuses the instance and the plan falls back to
// a materialized one.
func (pl *Plan) materialize(ctx context.Context) error {
	snap, info, err := pl.p.snapshotAt(ctx)
	if err != nil {
		return err
	}
	pl.snap = snap
	pl.refresh = info
	pl.gen = snap.gen
	switch {
	case !pl.s.scorePlane:
		pl.planeNote = "off (WithScorePlane(false): solvers score through δrel/δdis directly)"
	case pl.s.dirty&(dirtyRelevance|dirtyDistance|dirtyPlaneLimit|dirtyPlaneRegime) != 0:
		pl.planeNote = "per-request (a scoring override bypasses the shared plane)"
	default:
		plane, err := pl.p.planeFor(ctx, snap, &pl.s)
		if err != nil {
			return err
		}
		pl.plane = plane
		pl.planeNote = fmt.Sprintf("shared, %s, ~%s (%d ids)",
			planeRegime(plane), formatBytes(plane.MemoryFootprint()), plane.Len())
	}
	return nil
}

// degradeChain appends the abandoned route to the chain DegradedFrom
// reports, avoiding a duplicate when the plan stage already recorded it.
func degradeChain(base, abandoned string) string {
	if base == "" {
		return abandoned
	}
	if strings.HasSuffix(base, abandoned) {
		return base
	}
	return base + "→" + abandoned
}

// planeRegime names how a plane serves distances: which of the four storage
// regimes the planner resolved for it.
func planeRegime(p *objective.Plane) string {
	switch p.Regime() {
	case objective.RegimeMaterialized:
		return "materialized matrix"
	case objective.RegimeTiled:
		return "tiled float32 matrix"
	case objective.RegimeIndexed:
		return "metric index"
	default:
		return "memoized cache"
	}
}

// formatBytes renders a byte count with a binary-prefix unit, one decimal
// place (e.g. "1.2 MiB"), for the plane footprint Explain reports.
func formatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// newInstance assembles the solver instance from the plan's resolved
// pieces. Nothing is re-resolved here: settings, σ, snapshot and plane all
// come from plan time.
func (pl *Plan) newInstance() *core.Instance {
	in := &core.Instance{
		Query: pl.p.q,
		DB:    pl.p.eng.db,
		Obj:   pl.p.objectiveFor(pl.s),
		K:     pl.s.k,
		B:     pl.s.bound,
		R:     pl.s.rank,
		Sigma: pl.sigma,
	}
	in.PlaneMaxBytes = pl.s.planeMaxBytes
	in.PlaneRegime = pl.s.planeRegime.toObjective()
	in.Parallelism = pl.s.workers()
	if !pl.s.scorePlane {
		in.PlaneOff = true
	}
	if pl.snap != nil {
		in.SetAnswers(pl.snap.answers)
		in.SetAnswerIndex(pl.snap.index)
		if pl.plane != nil {
			in.SetPlane(pl.plane)
		}
	}
	if pl.u != nil {
		in.U = pl.u
	}
	return in
}

// execute dispatches the plan to its solvers and assembles the Response.
// Callers hold the engine's read lock.
func (pl *Plan) execute(ctx context.Context) (*Response, error) {
	resp := &Response{
		Problem:      pl.req.Problem,
		Route:        pl.route,
		Degraded:     pl.degraded,
		DegradedFrom: pl.degradedFrom,
		Refresh:      pl.refresh,
		Generation:   pl.gen,
	}
	var err error
	switch pl.req.Problem {
	case ProblemDiversify:
		err = pl.execDiversify(ctx, resp)
	case ProblemDecide:
		err = pl.execDecide(ctx, resp)
	case ProblemCount:
		err = pl.execCount(ctx, resp)
	case ProblemInTopR:
		err = pl.execInTopR(ctx, resp)
	case ProblemRank:
		err = pl.execRank(ctx, resp)
	default:
		err = argErrorf("problem", "unknown problem %s", pl.req.Problem)
	}
	if err != nil {
		return nil, err
	}
	if pl.req.Explain {
		resp.Explain = pl.Explain()
	}
	return resp, nil
}

func (pl *Plan) execDiversify(ctx context.Context, resp *Response) error {
	p := pl.p
	in := pl.newInstance()
	switch pl.route {
	case "exact":
		// With a deadline, hold a greedy incumbent in hand and run the
		// search under a soft deadline at degradeBudgetFraction of the
		// remaining time: if the search cannot finish, the incumbent ships
		// as a flagged approximate answer instead of a 504 with nothing.
		softCtx := ctx
		var incumbent *approx.Result
		if deadline, has := ctx.Deadline(); has && pl.sigma.Len() == 0 && pl.snap != nil {
			if g, err := approx.GreedyContext(ctx, in); err == nil && len(g.Set) > 0 {
				incumbent = &g
				soft := time.Duration(float64(time.Until(deadline)) * degradeBudgetFraction)
				if soft > 0 {
					var cancel context.CancelFunc
					softCtx, cancel = context.WithTimeout(ctx, soft)
					defer cancel()
				}
			}
		}
		start := time.Now()
		res, err := solver.QRDBestContext(softCtx, in)
		if err != nil {
			if incumbent != nil && softCtx.Err() != nil && ctx.Err() == nil {
				// The soft deadline fired but the request is still alive:
				// answer approximately rather than time out.
				resp.Route = "greedy"
				resp.Degraded = true
				resp.DegradedFrom = degradeChain(pl.degradedFrom, costRouteKey(in.Parallelism))
				resp.Stats = Stats{Steps: incumbent.Steps, Answers: len(pl.snap.answers)}
				resp.Selection = newSelection(p.schema, incumbent.Set, incumbent.Value, "greedy")
				return nil
			}
			return err
		}
		p.eng.cost.observe(costRouteKey(in.Parallelism), res.Stats.Answers, time.Since(start).Seconds())
		resp.Stats = searchStats(res.Stats)
		if !res.Exists {
			return ErrNoCandidate
		}
		resp.Selection = newSelection(p.schema, res.Witness, res.Value, "exact")
	case "greedy":
		res, err := approx.GreedyContext(ctx, in)
		if err != nil {
			return err
		}
		resp.Stats = Stats{Steps: res.Steps, Answers: len(pl.snap.answers)}
		if len(res.Set) == 0 {
			return ErrNoCandidate
		}
		resp.Selection = newSelection(p.schema, res.Set, res.Value, "greedy")
	case "local-search":
		seed, err := approx.GreedyContext(ctx, in)
		if err != nil {
			return err
		}
		if len(seed.Set) == 0 {
			return ErrNoCandidate
		}
		res, err := approx.LocalSearchSwapContext(ctx, in, seed.Set)
		if err != nil {
			return err
		}
		resp.Stats = Stats{Steps: seed.Steps + res.Steps, Answers: len(pl.snap.answers)}
		resp.Selection = newSelection(p.schema, res.Set, res.Value, "local-search")
	case "online":
		gen := p.eng.db.Generation()
		// Replay a captured stream-order pool when one exists for this
		// generation: the (deterministic) evaluator would produce the same
		// arrival order, so the anytime selection is byte-identical and
		// the query evaluation is skipped. Collect the streamed pool
		// whenever none is captured yet: online Diversify always consumes
		// the full stream, so the materialized Q(D) is free to keep.
		pool := p.pooled()
		collect := pool == nil
		res, err := online.Diversify(ctx, in, online.Options{CollectAnswers: collect, Pool: pool, HavePool: pool != nil})
		if err != nil {
			return err
		}
		if collect && res.Exhausted {
			p.storePool(res.Answers, gen)
		}
		resp.Stats = Stats{Seen: res.Seen, Exhausted: res.Exhausted}
		resp.Generation = gen
		if !res.Exists {
			return ErrNoCandidate
		}
		resp.Selection = newSelection(p.schema, res.Witness, res.Value, "online")
	default:
		return fmt.Errorf("diversification: unknown route %q", pl.route)
	}
	return nil
}

func (pl *Plan) execDecide(ctx context.Context, resp *Response) error {
	p := pl.p
	switch pl.route {
	case "mono-ptime":
		res, err := solver.QRDMonoPTime(pl.newInstance())
		if err == nil {
			resp.Exists = &res.Exists
			resp.Stats = searchStats(res.Stats)
			return nil
		}
		// The shortcut refused the instance: fall back to exact search on
		// the already-materialized snapshot, as the pre-pipeline path did.
	case "online-stream":
		gen := p.eng.db.Generation()
		res, err := online.QRD(ctx, pl.newInstance(), online.Options{})
		if err == nil {
			if res.Exhausted {
				// The stream materialized all of Q(D) anyway; keep it so
				// the next request hits the warm-cache exact path instead
				// of re-evaluating the query.
				p.storePool(res.Answers, gen)
			}
			resp.Exists = &res.Exists
			resp.Stats = Stats{Seen: res.Seen, Exhausted: res.Exhausted}
			resp.Generation = gen
			return nil
		}
		// Only "online is inapplicable here" falls through to the exact
		// solver; cancellation and any other genuine failure surfaces.
		if !errors.Is(err, online.ErrMono) && !errors.Is(err, online.ErrConstrained) {
			return err
		}
		if err := pl.materialize(ctx); err != nil {
			return err
		}
		resp.Refresh = pl.refresh
		resp.Generation = pl.gen
	case "exact":
		// Fall through to the shared exact solve below.
	default:
		return fmt.Errorf("diversification: unknown route %q", pl.route)
	}
	resp.Route = "exact"
	res, err := solver.QRDExactContext(ctx, pl.newInstance())
	if err != nil {
		return err
	}
	resp.Exists = &res.Exists
	resp.Stats = searchStats(res.Stats)
	return nil
}

func (pl *Plan) execCount(ctx context.Context, resp *Response) error {
	res, err := solver.RDCExactContext(ctx, pl.newInstance())
	if err != nil {
		return err
	}
	resp.Count = res.Count
	resp.Stats = searchStats(res.Stats)
	return nil
}

func (pl *Plan) execInTopR(ctx context.Context, resp *Response) error {
	if pl.route == "mono-ptime" {
		if res, err := solver.DRPMonoPTime(pl.newInstance()); err == nil {
			resp.InTopR = &res.InTopR
			resp.Stats = searchStats(res.Stats)
			return nil
		}
		// The shortcut refused the instance: exact search decides.
	}
	resp.Route = "exact"
	res, err := solver.DRPExactContext(ctx, pl.newInstance())
	if err != nil {
		return err
	}
	resp.InTopR = &res.InTopR
	resp.Stats = searchStats(res.Stats)
	return nil
}

func (pl *Plan) execRank(ctx context.Context, resp *Response) error {
	res, err := solver.DRPExactContext(ctx, pl.newInstance())
	if err != nil {
		return err
	}
	resp.Rank = res.Better + 1
	resp.Stats = searchStats(res.Stats)
	return nil
}

// Explain reports, in a stable human-readable form, everything the plan
// resolved: the problem and its parameters, the query's language class,
// the route (and recorded fallback), the constraint count, how the
// snapshot was acquired and which plane regime serves scores. The output
// is for operators and logs; fields, not format, are the stable contract.
func (pl *Plan) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "problem:   %s\n", pl.req.Problem)
	fmt.Fprintf(&b, "query:     %s\n", pl.p.src)
	fmt.Fprintf(&b, "language:  %s\n", pl.p.lang)
	fmt.Fprintf(&b, "objective: %s (λ=%g, k=%d)\n", pl.s.objective, pl.s.lambda, pl.s.k)
	switch pl.req.Problem {
	case ProblemDecide, ProblemCount:
		fmt.Fprintf(&b, "bound:     F >= %g\n", pl.s.bound)
	case ProblemInTopR:
		fmt.Fprintf(&b, "rank:      r = %d, |set| = %d\n", pl.s.rank, len(pl.u))
	case ProblemRank:
		fmt.Fprintf(&b, "rank:      exact, |set| = %d\n", len(pl.u))
	}
	if pl.fallback != "" {
		fmt.Fprintf(&b, "route:     %s (fallback: %s)\n", pl.route, pl.fallback)
	} else {
		fmt.Fprintf(&b, "route:     %s\n", pl.route)
	}
	if pl.degradeNote != "" {
		fmt.Fprintf(&b, "degraded:  %s\n", pl.degradeNote)
	}
	fmt.Fprintf(&b, "sigma:     %d constraints\n", pl.sigma.Len())
	if pl.snap != nil {
		fmt.Fprintf(&b, "snapshot:  generation %d, %d answers, refresh %s\n",
			pl.snap.gen, len(pl.snap.answers), pl.refresh.Mode)
	} else {
		fmt.Fprintf(&b, "snapshot:  none (streaming route)\n")
	}
	fmt.Fprintf(&b, "plane:     %s\n", pl.planeNote)
	fmt.Fprintf(&b, "workers:   %d\n", pl.s.workers())
	return b.String()
}
