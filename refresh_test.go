package diversification

import (
	"context"
	"math"
	"testing"

	"repro/internal/solver"
)

// refreshEngine builds an items engine with n rows for the refresh tests.
func refreshEngine(t testing.TB, n int) *Engine {
	t.Helper()
	e := NewEngine()
	e.MustCreateTable("items", "id", "cat", "price")
	cats := []string{"a", "b", "c", "d", "e"}
	for i := 0; i < n; i++ {
		e.MustInsert("items", i, cats[i%len(cats)], 10+(i*37)%90)
	}
	return e
}

const refreshQuery = "Q(id, cat, price) :- items(id, cat, price), price <= 80"

// refreshOpts are the shared Prepare-time bindings of the refresh tests.
func refreshOpts(k int, obj Objective, alg Algorithm, extra ...Option) []Option {
	base := []Option{
		WithK(k), WithObjective(obj), WithAlgorithm(alg), WithLambda(0.6),
		WithRelevance(func(r Row) float64 { return 100 - float64(r.Get("price").(int64)) }),
		WithDistance(func(a, b Row) float64 {
			if a.Get("cat") == b.Get("cat") {
				return 0
			}
			return 1
		}),
	}
	return append(base, extra...)
}

// mutate applies a batch of inserts and deletes: some rows match the
// query's price filter, some do not, and two existing rows disappear.
func mutate(t testing.TB, e *Engine) {
	t.Helper()
	e.MustInsert("items", 1000, "f", 15)
	e.MustInsert("items", 1001, "a", 95) // filtered out by price <= 80
	e.MustInsert("items", 1002, "g", 33)
	e.MustInsert("items", 1003, "b", 78)
	for _, id := range []int{0, 7} {
		cats := []string{"a", "b", "c", "d", "e"}
		if ok, err := e.Delete("items", id, cats[id%len(cats)], int64(10+(id*37)%90)); err != nil || !ok {
			t.Fatalf("delete row %d: ok=%v err=%v", id, ok, err)
		}
	}
}

// sameSelection asserts two selections are byte-identical: same rows in the
// same order, same float bits.
func sameSelection(t *testing.T, label string, warm, cold *Selection) {
	t.Helper()
	if len(warm.Rows) != len(cold.Rows) {
		t.Fatalf("%s: warm selected %d rows, cold %d", label, len(warm.Rows), len(cold.Rows))
	}
	for i := range warm.Rows {
		if warm.Rows[i].String() != cold.Rows[i].String() {
			t.Errorf("%s: row %d warm %s, cold %s", label, i, warm.Rows[i], cold.Rows[i])
		}
	}
	if math.Float64bits(warm.Value) != math.Float64bits(cold.Value) {
		t.Errorf("%s: warm value %v (bits %x), cold %v (bits %x)",
			label, warm.Value, math.Float64bits(warm.Value), cold.Value, math.Float64bits(cold.Value))
	}
	if warm.Method != cold.Method {
		t.Errorf("%s: warm method %s, cold %s", label, warm.Method, cold.Method)
	}
}

// TestRefreshDifferentialMatrix is the acceptance suite: after a batch of
// inserts and deletes, a Refresh-maintained handle must return byte-
// identical selections, decisions and counts to a handle cold-prepared at
// the same generation — across every objective × algorithm × plane regime
// cell (Fmono × online excluded: the online procedures reject Fmono by
// design, warm and cold alike).
func TestRefreshDifferentialMatrix(t *testing.T) {
	ctx := context.Background()
	regimes := map[string][]Option{
		"materialized": nil,
		"memoized":     {WithPlaneMemoryLimit(64)}, // far below n(n-1)/2 cells
	}
	for _, obj := range []Objective{MaxSum, MaxMin, Mono} {
		for _, alg := range []Algorithm{Exact, Greedy, Online} {
			if obj == Mono && alg == Online {
				continue
			}
			for regime, extra := range regimes {
				name := obj.String() + "/" + alg.String() + "/" + regime
				t.Run(name, func(t *testing.T) {
					n, k := 30, 3
					e := refreshEngine(t, n)
					opts := refreshOpts(k, obj, alg, extra...)
					warm := e.MustPrepare(refreshQuery, opts...)
					if _, err := warm.Diversify(ctx); err != nil {
						t.Fatal(err)
					}
					mutate(t, e)
					info, err := warm.Refresh(ctx)
					if err != nil {
						t.Fatal(err)
					}
					if info.Mode != "delta" {
						t.Fatalf("Refresh mode = %q, want delta (added %d removed %d)", info.Mode, info.Added, info.Removed)
					}
					if info.Added == 0 || info.Removed == 0 {
						t.Fatalf("delta did not see the batch: %+v", info)
					}
					cold := e.MustPrepare(refreshQuery, opts...)

					warmSel, werr := warm.Diversify(ctx)
					coldSel, cerr := cold.Diversify(ctx)
					if (werr == nil) != (cerr == nil) {
						t.Fatalf("warm err %v, cold err %v", werr, cerr)
					}
					if werr == nil {
						sameSelection(t, "diversify", warmSel, coldSel)
					}

					// Decide and Count at a bound the warm optimum defines.
					if alg == Exact {
						bound := warmSel.Value
						wd, err := warm.Decide(ctx, WithBound(bound))
						if err != nil {
							t.Fatal(err)
						}
						cd, err := cold.Decide(ctx, WithBound(bound))
						if err != nil {
							t.Fatal(err)
						}
						if wd != cd {
							t.Errorf("Decide: warm %v, cold %v", wd, cd)
						}
						wc, err := warm.Count(ctx, WithBound(bound))
						if err != nil {
							t.Fatal(err)
						}
						cc, err := cold.Count(ctx, WithBound(bound))
						if err != nil {
							t.Fatal(err)
						}
						if wc.Cmp(cc) != 0 {
							t.Errorf("Count: warm %v, cold %v", wc, cc)
						}
					}
				})
			}
		}
	}
}

// TestRefreshStatsIdentical pins the strongest form of the differential: the
// exact search over a delta-refreshed snapshot visits the same tree — same
// nodes, leaves, prunes — as over a cold-built one, because answers, IDs
// and score bits all coincide.
func TestRefreshStatsIdentical(t *testing.T) {
	ctx := context.Background()
	e := refreshEngine(t, 30)
	opts := refreshOpts(3, MaxSum, Exact)
	warm := e.MustPrepare(refreshQuery, opts...)
	if _, err := warm.Diversify(ctx); err != nil {
		t.Fatal(err)
	}
	mutate(t, e)
	if info, err := warm.Refresh(ctx); err != nil || info.Mode != "delta" {
		t.Fatalf("refresh: %+v, %v", info, err)
	}
	cold := e.MustPrepare(refreshQuery, opts...)

	warmPl, err := warm.Plan(ctx, Request{Problem: ProblemDiversify})
	if err != nil {
		t.Fatal(err)
	}
	warmIn := warmPl.newInstance()
	coldPl, err := cold.Plan(ctx, Request{Problem: ProblemDiversify})
	if err != nil {
		t.Fatal(err)
	}
	coldIn := coldPl.newInstance()
	wres, err := solver.QRDBestContext(ctx, warmIn)
	if err != nil {
		t.Fatal(err)
	}
	cres, err := solver.QRDBestContext(ctx, coldIn)
	if err != nil {
		t.Fatal(err)
	}
	if wres.Stats != cres.Stats {
		t.Errorf("stats diverged:\n  warm %+v\n  cold %+v", wres.Stats, cres.Stats)
	}
	if math.Float64bits(wres.Value) != math.Float64bits(cres.Value) {
		t.Errorf("values diverged: %x vs %x", math.Float64bits(wres.Value), math.Float64bits(cres.Value))
	}
}

// TestRefreshModes exercises every refresh mode and fallback reason.
func TestRefreshModes(t *testing.T) {
	ctx := context.Background()

	t.Run("warm", func(t *testing.T) {
		e := refreshEngine(t, 20)
		p := e.MustPrepare(refreshQuery, refreshOpts(3, MaxSum, Greedy)...)
		if _, err := p.Diversify(ctx); err != nil {
			t.Fatal(err)
		}
		info, err := p.Refresh(ctx)
		if err != nil || info.Mode != "warm" {
			t.Errorf("Refresh on a current cache = %+v, %v; want warm", info, err)
		}
	})

	t.Run("cold-start-rebuild", func(t *testing.T) {
		e := refreshEngine(t, 20)
		p := e.MustPrepare(refreshQuery, refreshOpts(3, MaxSum, Greedy)...)
		info, err := p.Refresh(ctx)
		if err != nil || info.Mode != "rebuild" {
			t.Errorf("first Refresh = %+v, %v; want rebuild", info, err)
		}
		if info.Answers == 0 {
			t.Error("refresh reported an empty answer set")
		}
	})

	t.Run("journal-compacted-rebuild", func(t *testing.T) {
		e := refreshEngine(t, 20)
		e.SetJournalBound(4)
		p := e.MustPrepare(refreshQuery, refreshOpts(3, MaxSum, Greedy)...)
		if _, err := p.Refresh(ctx); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ { // overflow the 4-entry journal
			e.MustInsert("items", 2000+i, "z", 20+i)
		}
		info, err := p.Refresh(ctx)
		if err != nil || info.Mode != "rebuild" {
			t.Errorf("Refresh past a compacted journal = %+v, %v; want rebuild", info, err)
		}
		// The window fits again afterwards.
		e.MustInsert("items", 3000, "z", 21)
		info, err = p.Refresh(ctx)
		if err != nil || info.Mode != "delta" || info.Added != 1 {
			t.Errorf("Refresh within the journal window = %+v, %v; want delta +1", info, err)
		}
	})

	t.Run("non-capable-query-rebuild", func(t *testing.T) {
		e := refreshEngine(t, 20)
		// Negation makes the query non-monotone: never delta-maintained.
		src := "Q(id, cat, price) :- items(id, cat, price), not items(id, cat, price)"
		p := e.MustPrepare(src, WithK(0))
		if _, err := p.Refresh(ctx); err != nil {
			t.Fatal(err)
		}
		e.MustInsert("items", 2000, "z", 20)
		info, err := p.Refresh(ctx)
		if err != nil || info.Mode != "rebuild" {
			t.Errorf("Refresh of a non-monotone query = %+v, %v; want rebuild", info, err)
		}
	})

	t.Run("opt-out-rebuild", func(t *testing.T) {
		e := refreshEngine(t, 20)
		p := e.MustPrepare(refreshQuery, refreshOpts(3, MaxSum, Greedy, WithIncrementalRefresh(false))...)
		if _, err := p.Refresh(ctx); err != nil {
			t.Fatal(err)
		}
		e.MustInsert("items", 2000, "z", 20)
		info, err := p.Refresh(ctx)
		if err != nil || info.Mode != "rebuild" {
			t.Errorf("Refresh with WithIncrementalRefresh(false) = %+v, %v; want rebuild", info, err)
		}
	})

	t.Run("irrelevant-delta", func(t *testing.T) {
		e := refreshEngine(t, 20)
		e.MustCreateTable("other", "x")
		p := e.MustPrepare(refreshQuery, refreshOpts(3, MaxSum, Greedy)...)
		if _, err := p.Refresh(ctx); err != nil {
			t.Fatal(err)
		}
		e.MustInsert("other", 1)
		info, err := p.Refresh(ctx)
		if err != nil || info.Mode != "delta" || info.Added != 0 || info.Removed != 0 {
			t.Errorf("Refresh over an irrelevant insert = %+v, %v; want empty delta", info, err)
		}
	})
}

// TestRefreshOnlinePoolReplay proves warm online solves replay the captured
// evaluation stream — byte-identical results without re-evaluating — and
// that mutations invalidate the replay.
func TestRefreshOnlinePoolReplay(t *testing.T) {
	ctx := context.Background()
	e := refreshEngine(t, 40)
	p := e.MustPrepare(refreshQuery, refreshOpts(4, MaxSum, Online)...)
	first, err := p.Diversify(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if p.pooled() == nil {
		t.Fatal("first online solve must capture the stream pool")
	}
	replay, err := p.Diversify(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sameSelection(t, "replay", replay, first)

	// A mutation invalidates the pool; the next online solve re-streams
	// and agrees with a cold handle.
	e.MustInsert("items", 1000, "f", 15)
	if p.pooled() != nil {
		t.Fatal("a mutation must invalidate the captured pool")
	}
	warmSel, err := p.Diversify(ctx)
	if err != nil {
		t.Fatal(err)
	}
	coldSel, err := e.MustPrepare(refreshQuery, refreshOpts(4, MaxSum, Online)...).Diversify(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sameSelection(t, "post-mutation", warmSel, coldSel)
}

// TestRefreshRepeatedDeltas chains many single-tuple mutations with a solve
// after each, pinning the incremental path against a cold rebuild at every
// step.
func TestRefreshRepeatedDeltas(t *testing.T) {
	ctx := context.Background()
	e := refreshEngine(t, 25)
	opts := refreshOpts(3, MaxMin, Greedy)
	warm := e.MustPrepare(refreshQuery, opts...)
	if _, err := warm.Diversify(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if i%3 == 2 {
			if _, err := e.Delete("items", 1000+i-1, "q", int64(20+i-1)); err != nil {
				t.Fatal(err)
			}
		} else {
			e.MustInsert("items", 1000+i, "q", 20+i)
		}
		info, err := warm.Refresh(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if info.Mode != "delta" {
			t.Fatalf("step %d: mode %q, want delta", i, info.Mode)
		}
		warmSel, err := warm.Diversify(ctx)
		if err != nil {
			t.Fatal(err)
		}
		coldSel, err := e.MustPrepare(refreshQuery, opts...).Diversify(ctx)
		if err != nil {
			t.Fatal(err)
		}
		sameSelection(t, "step", warmSel, coldSel)
	}
}
