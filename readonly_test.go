package diversification

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/faultfs"
)

// openFaultyEngine boots a durable engine whose write path goes through a
// fault-injecting filesystem with a fast recovery probe.
func openFaultyEngine(t *testing.T) (*Engine, *faultfs.FS) {
	t.Helper()
	fs := faultfs.Wrap(nil)
	e, _, err := OpenEngine(DurabilityConfig{
		Dir:          t.TempDir(),
		FS:           fs,
		ProbeBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e, fs
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestReadOnlyModeAndRecovery drives the full degradation cycle: a WAL
// write failure trips read-only mode (mutations refused with ErrReadOnly,
// solves still served), the background probe restores write mode once the
// fault clears, and a restart recovers every acknowledged mutation.
func TestReadOnlyModeAndRecovery(t *testing.T) {
	e, fs := openFaultyEngine(t)
	e.MustCreateTable("points", "id")
	for i := 0; i < 6; i++ {
		e.MustInsert("points", i)
	}
	p, err := e.Prepare("Q(id) :- points(id)", WithK(2))
	if err != nil {
		t.Fatal(err)
	}

	// Break the disk: every write from now on fails.
	fs.SetInjector(faultfs.FailFrom(faultfs.OpWrite, 1, nil))
	err = e.Insert("points", 100)
	if err == nil {
		t.Fatal("insert with a broken WAL reported success")
	}
	if errors.Is(err, ErrReadOnly) {
		t.Fatalf("first failing mutation returned ErrReadOnly (%v); it was applied in memory and must report the durability loss instead", err)
	}
	if !e.ReadOnly() {
		t.Fatal("engine did not enter read-only mode after a WAL write failure")
	}
	if e.WALError() == nil {
		t.Error("read-only engine reports no WAL error")
	}

	// Subsequent mutations are refused up front, retryably.
	if err := e.Insert("points", 101); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("mutation in read-only mode returned %v, want ErrReadOnly", err)
	}
	if err := e.CreateTable("other", "x"); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("CreateTable in read-only mode returned %v, want ErrReadOnly", err)
	}
	if _, err := e.Snapshot(context.Background()); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Snapshot in read-only mode returned %v, want ErrReadOnly", err)
	}

	// Solves keep serving — including the row the failing insert applied.
	resp, err := p.Do(context.Background(), Request{Problem: ProblemDiversify})
	if err != nil {
		t.Fatalf("solve in read-only mode failed: %v", err)
	}
	if resp.Stats.Answers != 7 {
		t.Errorf("read-only solve saw %d answers, want 7 (the in-memory mutation stands)", resp.Stats.Answers)
	}

	// Fix the disk: the probe restores write mode on its own.
	fs.Heal()
	waitFor(t, "probe to restore write mode", func() bool { return !e.ReadOnly() })

	dm, ok := e.durabilityMetrics()
	if !ok {
		t.Fatal("durable engine reports no durability metrics")
	}
	if dm.WALFailures < 1 || dm.WALRecoveries != 1 || dm.ProbeAttempts < 1 {
		t.Errorf("metrics after recovery: failures=%d recoveries=%d probes=%d, want >=1/1/>=1",
			dm.WALFailures, dm.WALRecoveries, dm.ProbeAttempts)
	}
	if dm.ReadOnly {
		t.Error("metrics still report read-only after recovery")
	}

	// Mutations work again and everything — including the mutation that
	// straddled the failure — survives a restart.
	if err := e.Insert("points", 102); err != nil {
		t.Fatalf("mutation after recovery failed: %v", err)
	}
	wantGen := e.Generation()
	dir := e.walDir
	if err := e.Close(); err != nil {
		t.Fatalf("close after recovery: %v", err)
	}
	e2, rinfo, err := OpenEngine(DurabilityConfig{Dir: dir})
	if err != nil {
		t.Fatalf("reopen after recovery cycle: %v", err)
	}
	defer e2.Close()
	if rinfo.Generation != wantGen {
		t.Errorf("restart recovered generation %d, want %d", rinfo.Generation, wantGen)
	}
	rs, err := e2.Query("Q(id) :- points(id)")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 8 {
		t.Errorf("restart recovered %d rows, want 8", rs.Len())
	}
}

// TestReadOnlyProbeBackoffKeepsTrying: while the fault persists, the probe
// keeps attempting (with backoff) and the engine stays read-only.
func TestReadOnlyProbeBackoffKeepsTrying(t *testing.T) {
	e, fs := openFaultyEngine(t)
	e.MustCreateTable("points", "id")
	fs.SetInjector(faultfs.FailFrom(faultfs.OpWrite, 1, nil))
	if err := e.Insert("points", 1); err == nil {
		t.Fatal("insert with a broken WAL reported success")
	}
	waitFor(t, "at least two probe attempts", func() bool { return e.probeAttempts.Load() >= 2 })
	if !e.ReadOnly() {
		t.Error("engine left read-only mode while the disk is still broken")
	}
	fs.Heal()
	waitFor(t, "probe to restore write mode", func() bool { return !e.ReadOnly() })
	if err := e.Insert("points", 2); err != nil {
		t.Fatalf("mutation after delayed recovery failed: %v", err)
	}
}
