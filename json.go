package diversification

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/relation"
	"repro/internal/value"
)

// MarshalJSON renders the row as a JSON object of attribute→value pairs in
// schema order, e.g. {"item":"ring","price":28}. The ordering is part of
// the wire contract: a decoder reading keys in document order recovers the
// schema, which is what UnmarshalJSON does.
func (r Row) MarshalJSON() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte('{')
	for i, attr := range r.schema.Attrs {
		if i > 0 {
			buf.WriteByte(',')
		}
		name, err := json.Marshal(attr)
		if err != nil {
			return nil, err
		}
		buf.Write(name)
		buf.WriteByte(':')
		if i >= len(r.tuple) {
			buf.WriteString("null")
			continue
		}
		val, err := json.Marshal(r.Get(attr))
		if err != nil {
			return nil, err
		}
		buf.Write(val)
	}
	buf.WriteByte('}')
	return buf.Bytes(), nil
}

// UnmarshalJSON rebuilds a row from its attribute→value object form,
// reading keys in document order so the reconstructed schema preserves the
// attribute order MarshalJSON wrote. Numbers without a fraction or
// exponent decode as integers, so an int/float round trip is exact.
func (r *Row) UnmarshalJSON(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	tok, err := dec.Token()
	if err != nil {
		return err
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return fmt.Errorf("diversification: row JSON must be an object, got %v", tok)
	}
	var attrs []string
	var tuple relation.Tuple
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return err
		}
		key, ok := keyTok.(string)
		if !ok {
			return fmt.Errorf("diversification: row JSON key is %v, want a string", keyTok)
		}
		valTok, err := dec.Token()
		if err != nil {
			return err
		}
		v, err := tokenValue(valTok)
		if err != nil {
			return fmt.Errorf("diversification: row attribute %q: %w", key, err)
		}
		attrs = append(attrs, key)
		tuple = append(tuple, v)
	}
	if _, err := dec.Token(); err != nil { // consume the closing '}'
		return err
	}
	r.schema = relation.NewSchema("", attrs...)
	r.tuple = tuple
	return nil
}

// JSONNumberValue converts a json.Number to the Go value the engine
// stores: int64 when the literal has no fraction or exponent (and fits),
// float64 otherwise. It is the single definition of the wire's int/float
// boundary — candidate-set integers must compare equal to the integers in
// the database, so every decoder (Row JSON, the HTTP request set) shares
// this rule.
func JSONNumberValue(n json.Number) (interface{}, error) {
	if !strings.ContainsAny(n.String(), ".eE") {
		if i, err := n.Int64(); err == nil {
			return i, nil
		}
	}
	return n.Float64()
}

// tokenValue converts one decoded JSON scalar into a relation value.
func tokenValue(tok json.Token) (value.Value, error) {
	switch x := tok.(type) {
	case json.Number:
		v, err := JSONNumberValue(x)
		if err != nil {
			return value.Value{}, err
		}
		if i, ok := v.(int64); ok {
			return value.Int(i), nil
		}
		return value.Float(v.(float64)), nil
	case string:
		return value.Str(x), nil
	case bool:
		return value.Bool(x), nil
	case nil:
		return value.Value{}, fmt.Errorf("null is not a supported attribute value")
	default:
		return value.Value{}, fmt.Errorf("unsupported JSON value %v (want a scalar)", tok)
	}
}

// Values returns the row's attribute values in schema order, in the
// interface form Engine.Insert and Request.Set accept — the bridge from a
// decoded Selection back into candidate-set arguments.
func (r Row) Values() []interface{} {
	out := make([]interface{}, 0, len(r.schema.Attrs))
	for _, attr := range r.schema.Attrs {
		out = append(out, r.Get(attr))
	}
	return out
}
