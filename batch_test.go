package diversification

import (
	"context"
	"fmt"
	"math"
	"testing"
)

// batchEngine builds a catalog large enough that the exact search does real
// work, with numeric attributes for scoring.
func batchEngine(t testing.TB, n int) *Engine {
	t.Helper()
	e := NewEngine()
	e.MustCreateTable("catalog", "item", "type", "price", "inStock")
	types := []string{"jewelry", "book", "toy", "fashion", "artsy", "educational"}
	for i := 0; i < n; i++ {
		e.MustInsert("catalog",
			fmt.Sprintf("item%02d", i),
			types[(i*7)%len(types)],
			10+(i*13)%60,
			(i*3)%10,
		)
	}
	return e
}

func scoringOpts() []Option {
	return []Option{
		WithRelevance(func(r Row) float64 {
			return 40 - math.Abs(float64(r.Get("price").(int64))-30)
		}),
		WithDistance(func(a, b Row) float64 {
			if a.Get("type") == b.Get("type") {
				return 0
			}
			return 1 + math.Abs(float64(a.Get("price").(int64))-float64(b.Get("price").(int64)))/60
		}),
	}
}

const batchQuery = "Q(item, type, price) :- catalog(item, type, price, s), price <= 65"

// TestWithParallelismMatchesSequential is the public-API face of the
// determinism guarantee: WithParallelism(n) must return the same rows and
// score as the default sequential solve, for every objective and algorithm
// the exact search backs.
func TestWithParallelismMatchesSequential(t *testing.T) {
	e := batchEngine(t, 24)
	ctx := context.Background()
	for _, obj := range []Objective{MaxSum, MaxMin, Mono} {
		opts := append(scoringOpts(), WithK(5), WithObjective(obj), WithAlgorithm(Exact))
		seq := e.MustPrepare(batchQuery, opts...)
		par := e.MustPrepare(batchQuery, append(opts, WithParallelism(4))...)
		want, err := seq.Diversify(ctx)
		if err != nil {
			t.Fatal(err)
		}
		got, err := par.Diversify(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if want.Value != got.Value {
			t.Fatalf("%s: parallel value %v != sequential %v", obj, got.Value, want.Value)
		}
		ws, gs := selectionItems(want), selectionItems(got)
		for i := range ws {
			if ws[i] != gs[i] {
				t.Fatalf("%s: parallel rows %v != sequential %v", obj, gs, ws)
			}
		}

		// The decision and counting forms must agree too.
		bopt := WithBound(want.Value / 2)
		seqOK, err := seq.Decide(ctx, bopt)
		if err != nil {
			t.Fatal(err)
		}
		parOK, err := par.Decide(ctx, bopt)
		if err != nil {
			t.Fatal(err)
		}
		if seqOK != parOK {
			t.Fatalf("%s: parallel Decide %v != sequential %v", obj, parOK, seqOK)
		}
		seqN, err := seq.Count(ctx, bopt)
		if err != nil {
			t.Fatal(err)
		}
		parN, err := par.Count(ctx, bopt)
		if err != nil {
			t.Fatal(err)
		}
		if seqN.Cmp(parN) != 0 {
			t.Fatalf("%s: parallel Count %v != sequential %v", obj, parN, seqN)
		}
	}
}

func TestWithParallelismValidation(t *testing.T) {
	e := batchEngine(t, 6)
	if _, err := e.Prepare(batchQuery, WithParallelism(-1)); err == nil {
		t.Fatal("WithParallelism(-1) must be rejected")
	}
	// 0 means GOMAXPROCS, not an error.
	if _, err := e.Prepare(batchQuery, WithParallelism(0)); err != nil {
		t.Fatalf("WithParallelism(0): %v", err)
	}
}

// TestDiversifyBatchMatchesIndividual: a batch sweep over (k, λ, objective)
// variants must return, slot for slot, exactly what standalone Diversify
// calls with the same options return.
func TestDiversifyBatchMatchesIndividual(t *testing.T) {
	e := batchEngine(t, 20)
	ctx := context.Background()
	p := e.MustPrepare(batchQuery, append(scoringOpts(), WithK(3))...)
	var items []BatchItem
	for _, k := range []int{2, 3, 4} {
		for _, lambda := range []float64{0, 0.5, 1} {
			for _, obj := range []Objective{MaxSum, MaxMin, Mono} {
				items = append(items, BatchItem{Opts: []Option{
					WithK(k), WithLambda(lambda), WithObjective(obj), WithAlgorithm(Exact),
				}})
			}
		}
	}
	results, err := p.DiversifyBatch(ctx, items)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(items) {
		t.Fatalf("got %d results for %d items", len(results), len(items))
	}
	for i, item := range items {
		want, wantErr := p.Diversify(ctx, item.Opts...)
		got := results[i]
		if (wantErr == nil) != (got.Err == nil) {
			t.Fatalf("item %d: batch err %v, individual err %v", i, got.Err, wantErr)
		}
		if wantErr != nil {
			continue
		}
		if want.Value != got.Selection.Value {
			t.Fatalf("item %d: batch value %v != individual %v", i, got.Selection.Value, want.Value)
		}
		ws, gs := selectionItems(want), selectionItems(got.Selection)
		for j := range ws {
			if ws[j] != gs[j] {
				t.Fatalf("item %d: batch rows %v != individual %v", i, gs, ws)
			}
		}
	}
}

// TestDiversifyBatchScoringOverrides is the regression for the shared-plane
// bypass on the batch path: an item carrying per-call WithRelevance/
// WithDistance overrides must score through those functions — not the
// shared plane the warm-up just built from the prepared bindings — and
// agree bit-for-bit with a standalone Diversify under the same overrides,
// both before and after the shared plane exists.
func TestDiversifyBatchScoringOverrides(t *testing.T) {
	e := batchEngine(t, 20)
	ctx := context.Background()
	p := e.MustPrepare(batchQuery, append(scoringOpts(), WithK(3))...)

	// Overriding scorers chosen to disagree hard with the prepared ones,
	// so any leak of the shared plane's baked-in values changes the answer.
	flippedRel := WithRelevance(func(r Row) float64 {
		return math.Abs(float64(r.Get("price").(int64)) - 30)
	})
	priceDis := WithDistance(func(a, b Row) float64 {
		return math.Abs(float64(a.Get("price").(int64)) - float64(b.Get("price").(int64)))
	})
	items := []BatchItem{
		{},                           // prepared bindings: uses the shared plane
		{Opts: []Option{flippedRel}}, // relevance override
		{Opts: []Option{priceDis}},   // distance override
		{Opts: []Option{flippedRel, priceDis, WithLambda(0.3)}},
		{Opts: []Option{WithPlaneMemoryLimit(64)}}, // memo-regime override
	}
	// Compare twice: against a handle whose plane is cold (fresh prepare)
	// and then again over the now-warm shared plane, so both plane states
	// feed the same per-item bypass decision.
	for _, label := range []string{"cold", "warm"} {
		results, err := p.DiversifyBatch(ctx, items)
		if err != nil {
			t.Fatal(err)
		}
		for i, item := range items {
			single, err := p.Diversify(ctx, item.Opts...)
			if err != nil {
				t.Fatalf("%s pass item %d: %v", label, i, err)
			}
			if results[i].Err != nil {
				t.Fatalf("%s pass item %d batch error: %v", label, i, results[i].Err)
			}
			got, want := results[i].Selection, single
			if math.Float64bits(got.Value) != math.Float64bits(want.Value) {
				t.Errorf("%s pass item %d: batch value bits %x != single %x",
					label, i, math.Float64bits(got.Value), math.Float64bits(want.Value))
			}
			gs, ws := selectionItems(got), selectionItems(want)
			for j := range ws {
				if gs[j] != ws[j] {
					t.Errorf("%s pass item %d: batch rows %v != single %v", label, i, gs, ws)
				}
			}
		}
	}
}

// TestDiversifyBatchItemErrors: per-item failures land in their slot and do
// not poison the rest of the batch.
func TestDiversifyBatchItemErrors(t *testing.T) {
	e := batchEngine(t, 8)
	p := e.MustPrepare(batchQuery, append(scoringOpts(), WithK(3))...)
	results, err := p.DiversifyBatch(context.Background(), []BatchItem{
		{Opts: []Option{WithK(3)}},
		{Opts: []Option{WithK(100)}}, // more than |Q(D)|: no candidate set
		{Opts: []Option{WithK(-1)}},  // invalid
		{Opts: []Option{WithK(2)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || results[3].Err != nil {
		t.Fatalf("valid items errored: %v, %v", results[0].Err, results[3].Err)
	}
	if results[1].Err == nil {
		t.Error("k > |Q(D)| should report no candidate set")
	}
	if results[2].Err == nil {
		t.Error("negative k should be rejected")
	}
	if len(selectionItems(results[0].Selection)) != 3 || len(selectionItems(results[3].Selection)) != 2 {
		t.Error("valid slots must carry their selections")
	}
}

func TestDiversifyBatchEmpty(t *testing.T) {
	e := batchEngine(t, 4)
	p := e.MustPrepare(batchQuery, WithK(2))
	results, err := p.DiversifyBatch(context.Background(), nil)
	if err != nil || results != nil {
		t.Fatalf("empty batch: got (%v, %v)", results, err)
	}
}
