package diversification

import (
	"context"
	"math/big"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/compat"
	"repro/internal/objective"
	"repro/internal/query"
	"repro/internal/query/eval"
	"repro/internal/query/parse"
	"repro/internal/relation"
)

// Prepared is a compiled diversification query: the query text has been
// parsed, classified and validated against the engine's schema, the
// objective and constraints bound, and the materialized answer set Q(D) is
// cached across calls. When the database mutates, the cache is brought up
// to date incrementally where possible — the relation change journal yields
// the answer-set delta, the score plane is extended/retired instead of
// rebuilt, and the answer index is maintained alongside — falling back to
// a full rebuild when the journal was compacted, the query is not
// delta-maintainable, or WithIncrementalRefresh(false) disabled the path.
// Build work happens once in Prepare; the per-call cost of
// Diversify/Decide/Count/InTopR/Rank is the solver alone.
//
// Per-call options override the Prepare-time bindings for that call only:
//
//	p, _ := e.Prepare(src, diversification.WithK(3))
//	sel, _ := p.Diversify(ctx)                             // k = 3
//	sel, _ = p.Diversify(ctx, diversification.WithK(5))    // k = 5, once
//
// A Prepared handle is safe for concurrent use: any number of goroutines
// may solve against it, and engine mutations (Insert/Delete/CreateTable)
// serialize against in-flight solves behind the engine's read-write lock,
// so every response pairs answers, index and plane from one generation.
type Prepared struct {
	eng *Engine
	// id is unique per handle, from a process-wide counter: the Service
	// result cache keys on it so a re-registered statement (same name, new
	// bindings) can never serve the old handle's cached responses.
	id     uint64
	src    string
	q      *query.Query
	schema relation.Schema
	lang   query.Language
	base   settings
	sigma  *compat.Set // compiled Prepare-time constraints

	// deltaOK records, once at Prepare time, whether the query's answer
	// set can be maintained incrementally from the change journal
	// (positive and range-safe; see eval.DeltaCapable).
	deltaOK bool

	// mu guards snap. All derived state lives in one immutable snapshot
	// swapped atomically, so a reader can never pair answers from one
	// generation with a plane or index from another — the TOCTOU window of
	// the old per-field generation dance. snap.plane and snap.streamPool
	// are the two lazily attached fields; both transition nil → non-nil
	// exactly once, under mu.
	mu   sync.Mutex
	snap *snapshot
}

// snapshot is one consistent view of the state derived from the database at
// a single generation: the canonically sorted answer set, its key index,
// the interned score plane (attached lazily, under the handle's lock) and
// the stream-order pool an exhausted online evaluation produced (ditto).
// Snapshots are immutable apart from those two monotonic attachments;
// refreshing publishes a new snapshot rather than mutating the old one, so
// in-flight solves keep a coherent view.
type snapshot struct {
	gen     uint64
	answers []relation.Tuple
	index   map[string]int // Tuple.Key() -> answers position

	// plane bakes in the Prepare-time δrel/δdis bindings; calls overriding
	// them per-call bypass it. Guarded by Prepared.mu.
	plane *objective.Plane
	// streamPool is Q(D) in evaluation-stream order, kept when an online
	// procedure exhausted the stream at this generation: replaying it is
	// byte-identical to re-streaming the (deterministic) evaluator and
	// skips the query evaluation entirely. Guarded by Prepared.mu.
	streamPool []relation.Tuple
}

// indexAnswers builds the key index over a sorted answer slice.
func indexAnswers(answers []relation.Tuple) map[string]int {
	idx := make(map[string]int, len(answers))
	for i, t := range answers {
		idx[t.Key()] = i
	}
	return idx
}

// nextPreparedID issues the process-wide unique handle ids the Service
// result cache keys on.
var nextPreparedID atomic.Uint64

// maxRefreshAttempts bounds the evaluate-verify-retry loop of snapshotAt
// when the database is mutated concurrently with a refresh (which the
// engine contract already forbids); on exhaustion the freshest result is
// returned uncached.
const maxRefreshAttempts = 4

// Prepare compiles a query for repeated solving: it parses src, validates
// it against the engine's schema, classifies its language, applies the
// options and compiles any compatibility constraints. The returned handle
// performs none of that work again.
func (e *Engine) Prepare(src string, opts ...Option) (*Prepared, error) {
	q, err := parse.Query(src)
	if err != nil {
		return nil, err
	}
	e.mu.RLock()
	err = eval.Validate(q, e.db)
	e.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	s := defaultSettings()
	for _, o := range opts {
		o(&s)
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	schema := relation.NewSchema(q.Name, q.Head...)
	sigma, err := compileConstraints(s.constraints, schema)
	if err != nil {
		return nil, err
	}
	return &Prepared{
		eng:     e,
		id:      nextPreparedID.Add(1),
		src:     src,
		q:       q,
		schema:  schema,
		lang:    q.Classify(),
		base:    s,
		sigma:   sigma,
		deltaOK: eval.DeltaCapable(q),
	}, nil
}

// MustPrepare is Prepare that panics on error.
func (e *Engine) MustPrepare(src string, opts ...Option) *Prepared {
	p, err := e.Prepare(src, opts...)
	if err != nil {
		panic(err)
	}
	return p
}

// Source returns the query text the handle was prepared from.
func (p *Prepared) Source() string { return p.src }

// Language reports the minimal language class of the prepared query:
// "identity", "CQ", "UCQ", "∃FO+" or "FO".
func (p *Prepared) Language() string { return p.lang.String() }

// compileConstraints parses and schema-validates Cm constraint sources.
func compileConstraints(srcs []string, schema relation.Schema) (*compat.Set, error) {
	if len(srcs) == 0 {
		return nil, nil
	}
	set := compat.NewSet(8)
	for _, src := range srcs {
		c, err := compat.Parse(src)
		if err != nil {
			return nil, err
		}
		if err := c.Validate(schema); err != nil {
			return nil, err
		}
		if err := set.Add(c); err != nil {
			return nil, err
		}
	}
	return set, nil
}

// call merges per-call options over the Prepare-time settings and
// re-validates the result. The dirty mask is cleared first so it records
// exactly the scoring bindings this call overrides.
func (p *Prepared) call(opts []Option) (settings, error) {
	s := p.base
	s.dirty = 0
	for _, o := range opts {
		o(&s)
	}
	if err := s.validate(); err != nil {
		return s, err
	}
	return s, nil
}

// sigmaFor returns the compiled constraint set for a call: the Prepare-time
// compilation when the constraints are unchanged, a fresh compilation when
// a per-call WithConstraints replaced them.
func (p *Prepared) sigmaFor(s settings) (*compat.Set, error) {
	if slices.Equal(s.constraints, p.base.constraints) {
		return p.sigma, nil
	}
	return compileConstraints(s.constraints, p.schema)
}

// RefreshInfo reports how a snapshot was brought up to date. It marshals
// to JSON with stable field names for the wire protocol.
type RefreshInfo struct {
	// Mode is "warm" (nothing to do), "delta" (journal applied
	// incrementally) or "rebuild" (full re-evaluation).
	Mode string `json:"mode,omitempty"`
	// Added and Removed count the answer tuples the delta touched (zero
	// for warm and rebuild modes).
	Added   int `json:"added,omitempty"`
	Removed int `json:"removed,omitempty"`
	// Rechecked counts per-answer membership re-verifications the delta
	// performed for deletes.
	Rechecked int `json:"rechecked,omitempty"`
	// Answers is |Q(D)| after the refresh.
	Answers int `json:"answers,omitempty"`
}

// Refresh brings the handle's cached state up to date with the database:
// if the change journal still covers the handle's watermark and the query
// is delta-maintainable, the answer-set delta is applied and the score
// plane extended/retired in place of a rebuild; otherwise the answer set is
// re-evaluated from scratch. The score plane for the Prepare-time bindings
// is (re)built and materialized eagerly, so the next solve pays for the
// solver alone. Refresh is also implicit: every solve lazily revalidates
// through the same path — calling Refresh explicitly just moves the cost to
// a time of the caller's choosing and reports what happened.
func (p *Prepared) Refresh(ctx context.Context) (RefreshInfo, error) {
	p.eng.mu.RLock()
	defer p.eng.mu.RUnlock()
	return p.refresh(ctx)
}

// refresh is Refresh under an already-held engine read lock: the
// snapshot-acquisition and eager-plane work shared with the batch warm-up.
func (p *Prepared) refresh(ctx context.Context) (RefreshInfo, error) {
	snap, info, err := p.snapshotAt(ctx)
	if err != nil {
		return info, err
	}
	// Online solves never read the shared plane (they stream through
	// their own), so skip the O(n²) materialization for those handles.
	if p.base.scorePlane && p.base.algorithm != Online {
		s := p.base
		s.dirty = 0
		if _, err := p.planeFor(ctx, snap, &s); err != nil {
			return info, err
		}
	}
	info.Answers = len(snap.answers)
	return info, nil
}

// current returns the published snapshot if it matches the database
// generation, else nil.
func (p *Prepared) current() *snapshot {
	gen := p.eng.db.Generation()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.snap != nil && p.snap.gen == gen {
		return p.snap
	}
	return nil
}

// cacheWarm reports whether a snapshot for the current database generation
// is published.
func (p *Prepared) cacheWarm() bool { return p.current() != nil }

// snapshotFor returns a snapshot of the derived state consistent with the
// current database generation, refreshing (incrementally when possible)
// if the published one is stale.
func (p *Prepared) snapshotFor(ctx context.Context) (*snapshot, error) {
	snap, _, err := p.snapshotAt(ctx)
	return snap, err
}

// snapshotAt is snapshotFor plus the refresh mode report. The (possibly
// exponential) evaluation and the (possibly quadratic) plane rebase run
// outside the lock; the generation is re-read afterwards and the work
// retried if a mutation interleaved, so a published snapshot is always
// internally consistent — answers, index and plane from one generation.
func (p *Prepared) snapshotAt(ctx context.Context) (*snapshot, RefreshInfo, error) {
	var last *snapshot
	for attempt := 0; attempt < maxRefreshAttempts; attempt++ {
		gen := p.eng.db.Generation()
		p.mu.Lock()
		old := p.snap
		p.mu.Unlock()
		if old != nil && old.gen == gen {
			return old, RefreshInfo{Mode: "warm", Answers: len(old.answers)}, nil
		}
		snap, info, err := p.buildSnapshot(ctx, old, gen)
		if err != nil {
			return nil, info, err
		}
		last = snap
		if p.eng.db.Generation() != gen {
			continue // a mutation interleaved: the work may be torn, retry
		}
		p.mu.Lock()
		if p.snap == nil || p.snap.gen < gen {
			p.snap = snap
		} else {
			snap = p.snap // a racing refresh published first
		}
		p.mu.Unlock()
		return snap, info, nil
	}
	// The database is being mutated continuously (which the engine
	// contract forbids during solves): hand back the freshest result
	// without caching it.
	return last, RefreshInfo{Mode: "rebuild", Answers: len(last.answers)}, nil
}

// buildSnapshot computes the derived state for generation gen, applying
// the journal delta to old when the incremental path applies and falling
// back to full re-evaluation otherwise.
func (p *Prepared) buildSnapshot(ctx context.Context, old *snapshot, gen uint64) (*snapshot, RefreshInfo, error) {
	if old != nil && p.deltaOK && p.base.incremental {
		if changes, ok := p.eng.db.ChangesSince(old.gen); ok {
			d, ok, err := eval.Delta(ctx, p.q, p.eng.db, changes, old.answers)
			if err != nil {
				return nil, RefreshInfo{}, err
			}
			if ok {
				snap, err := p.applyDelta(ctx, old, d, gen)
				if err != nil {
					return nil, RefreshInfo{}, err
				}
				return snap, RefreshInfo{
					Mode:      "delta",
					Added:     len(d.Added),
					Removed:   len(d.Removed),
					Rechecked: d.Rechecked,
					Answers:   len(snap.answers),
				}, nil
			}
		}
	}
	res, err := eval.EvaluateContext(ctx, p.q, p.eng.db)
	if err != nil {
		return nil, RefreshInfo{}, err
	}
	answers := res.Sorted()
	return &snapshot{gen: gen, answers: answers, index: indexAnswers(answers)},
		RefreshInfo{Mode: "rebuild", Answers: len(answers)}, nil
}

// applyDelta merges an answer-set delta into a new snapshot: removed
// tuples drop out, added tuples merge in canonical order, the key index is
// maintained during the merge, and the score plane — when the old snapshot
// had built one — is rebased (surviving scores copied, only delta pairs
// evaluated) instead of rebuilt.
func (p *Prepared) applyDelta(ctx context.Context, old *snapshot, d eval.DeltaResult, gen uint64) (*snapshot, error) {
	removedIDs := make([]int, 0, len(d.Removed))
	dead := make(map[int]bool, len(d.Removed))
	for _, t := range d.Removed {
		if id, ok := old.index[t.Key()]; ok {
			removedIDs = append(removedIDs, id)
			dead[id] = true
		}
	}
	p.mu.Lock()
	oldPlane := old.plane
	p.mu.Unlock()
	var merged []relation.Tuple
	var pl *objective.Plane
	if oldPlane != nil {
		var err error
		pl, err = oldPlane.Rebase(ctx, d.Added, removedIDs)
		if err != nil {
			return nil, err
		}
		// Plane IDs must index the snapshot's answers exactly; taking the
		// rebased plane's own interned order makes that invariant
		// structural instead of relying on two merges staying in lockstep.
		merged = pl.Answers()
	} else {
		merged = mergeAnswers(old.answers, d.Added, dead)
	}
	return &snapshot{gen: gen, answers: merged, index: indexAnswers(merged), plane: pl}, nil
}

// mergeAnswers merges the sorted delta additions into the sorted answers,
// skipping tombstoned positions. It must order exactly as Plane.Rebase's
// provenance merge does — applyDelta uses it only when no plane exists to
// inherit the order from, but a later planeFor build over its output must
// still agree with what a rebase would have produced.
func mergeAnswers(answers []relation.Tuple, added []relation.Tuple, dead map[int]bool) []relation.Tuple {
	merged := make([]relation.Tuple, 0, len(answers)+len(added))
	i, j := 0, 0
	for i < len(answers) || j < len(added) {
		for i < len(answers) && dead[i] {
			i++
		}
		if i >= len(answers) && j >= len(added) {
			break // only tombstones remained
		}
		switch {
		case i >= len(answers):
			merged = append(merged, added[j])
			j++
		case j >= len(added) || answers[i].Compare(added[j]) < 0:
			merged = append(merged, answers[i])
			i++
		default:
			merged = append(merged, added[j])
			j++
		}
	}
	return merged
}

// storePool installs the stream-order pool an exhausted online evaluation
// produced at generation gen: as the current snapshot's streamPool when one
// is already published for gen, or as a fresh snapshot otherwise — the
// stream already paid for Q(D), so later calls skip re-evaluation. Dropped
// silently when the database has moved on.
func (p *Prepared) storePool(pool []relation.Tuple, gen uint64) {
	if p.eng.db.Generation() != gen {
		return // the database moved underneath the stream: stale
	}
	p.mu.Lock()
	if p.snap != nil && p.snap.gen == gen {
		if p.snap.streamPool == nil {
			p.snap.streamPool = pool
		}
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	sorted := append([]relation.Tuple(nil), pool...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Compare(sorted[j]) < 0 })
	snap := &snapshot{gen: gen, answers: sorted, index: indexAnswers(sorted), streamPool: pool}
	if p.eng.db.Generation() != gen {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.snap == nil || p.snap.gen < gen {
		p.snap = snap
	}
}

// refreshableDelta reports whether the handle holds a stale snapshot the
// change journal can patch incrementally — in which case re-evaluating the
// query from scratch (streaming or otherwise) would waste it.
func (p *Prepared) refreshableDelta() bool {
	if !p.deltaOK || !p.base.incremental {
		return false
	}
	p.mu.Lock()
	old := p.snap
	p.mu.Unlock()
	if old == nil {
		return false
	}
	_, ok := p.eng.db.ChangesSince(old.gen)
	return ok
}

// pooled returns the stream-order pool for the current generation, if an
// online evaluation captured one.
func (p *Prepared) pooled() []relation.Tuple {
	gen := p.eng.db.Generation()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.snap != nil && p.snap.gen == gen {
		return p.snap.streamPool
	}
	return nil
}

// objectiveFor builds the bound objective function for one call.
func (p *Prepared) objectiveFor(s settings) *objective.Objective {
	var kind objective.Kind
	switch s.objective {
	case MaxMin:
		kind = objective.MaxMin
	case Mono:
		kind = objective.Mono
	default:
		kind = objective.MaxSum
	}
	var rel objective.Relevance
	if s.relevance != nil {
		f := s.relevance
		rel = objective.RelevanceFunc(func(t relation.Tuple) float64 {
			return f(Row{schema: p.schema, tuple: t})
		})
	}
	var dis objective.Distance
	if s.distance != nil {
		f := s.distance
		dis = objective.DistanceFunc(func(a, b relation.Tuple) float64 {
			return f(Row{schema: p.schema, tuple: a}, Row{schema: p.schema, tuple: b})
		})
	}
	return objective.New(kind, rel, dis, s.lambda)
}

// planeFor returns the snapshot's score plane, building and materializing
// it on first use. The (possibly quadratic) build runs outside the lock; a
// plane is a pure function of the snapshot's answers, so a racing loser's
// identical plane is simply discarded. Delta refreshes pre-attach a rebased
// plane, making this a lock-and-load.
func (p *Prepared) planeFor(ctx context.Context, snap *snapshot, s *settings) (*objective.Plane, error) {
	p.mu.Lock()
	pl := snap.plane
	p.mu.Unlock()
	if pl != nil {
		return pl, nil
	}
	pl, err := objective.NewPlaneContext(ctx, p.objectiveFor(*s), snap.answers, objective.PlaneOptions{
		MaxMatrixBytes: s.planeMaxBytes,
		Regime:         s.planeRegime.toObjective(),
	})
	if err != nil {
		return nil, err
	}
	// Build the regime's store eagerly: a Prepared handle exists to be
	// solved against many times, so the fill (parallel matrix or tiles, or
	// the O(n log n) metric index) is paid once here rather than per solve.
	if err := pl.EnsureReadyContext(ctx); err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if snap.plane == nil {
		snap.plane = pl
	}
	return snap.plane, nil
}

// planeMetrics reports the score plane cached by the latest published
// snapshot, for the service's /metrics aggregation: the regime name, the
// estimated resident bytes and the memo cache counters. ok is false while
// no plane is cached (cold handle, or the snapshot was invalidated).
func (p *Prepared) planeMetrics() (regime string, bytes, entries, evictions int64, ok bool) {
	p.mu.Lock()
	var pl *objective.Plane
	if p.snap != nil {
		pl = p.snap.plane
	}
	p.mu.Unlock()
	if pl == nil {
		return "", 0, 0, 0, false
	}
	entries, evictions = pl.MemoStats()
	return pl.Regime().String(), pl.MemoryFootprint(), entries, evictions, true
}

// checkSet validates and converts a caller-provided candidate set: it must
// have exactly k rows, each matching the query head arity, with values of
// supported Go types. Failures are typed ArgErrors on the "set" field, so
// serving layers classify them as user errors.
func (p *Prepared) checkSet(set [][]interface{}, k int) ([]relation.Tuple, error) {
	if len(set) != k {
		return nil, argErrorf("set", "candidate set has %d rows, want exactly k = %d", len(set), k)
	}
	arity := p.q.Arity()
	out := make([]relation.Tuple, 0, len(set))
	for i, rowVals := range set {
		if len(rowVals) != arity {
			return nil, argErrorf("set", "candidate row %d has %d values, want the query head arity %d", i, len(rowVals), arity)
		}
		t := make(relation.Tuple, len(rowVals))
		for j, v := range rowVals {
			cv, err := toValue(v)
			if err != nil {
				return nil, argErrorf("set", "candidate row %d, column %d: %v", i, j, err)
			}
			t[j] = cv
		}
		out = append(out, t)
	}
	return out, nil
}

// The five problem-specific methods are thin shims over the unified
// Request → Plan → Execute pipeline (Do): each compiles its arguments into
// a Request and unwraps the matching Response field. They are retained as
// the convenient typed surface; Do is the single audited execution path
// underneath all of them.

// Diversify finds a k-set maximizing the objective (the optimization form
// of QRD). Auto and Exact run exact branch-and-bound; Greedy and
// LocalSearch trade optimality for speed, as the paper's conclusion
// prescribes for the intractable cells; Online maintains an anytime
// selection while the query evaluates. ctx cancels the (potentially
// exponential) exact search mid-flight.
func (p *Prepared) Diversify(ctx context.Context, opts ...Option) (*Selection, error) {
	resp, err := p.Do(ctx, Request{Problem: ProblemDiversify, Options: opts})
	if err != nil {
		return nil, err
	}
	return resp.Selection, nil
}

// Decide answers QRD: does a k-subset of the query result with objective
// value at least the bound exist (satisfying the constraints, if any)?
//
// The solver is chosen per the paper's complexity map: the PTIME modular
// algorithm for Fmono without constraints (Theorem 5.4); otherwise, with a
// cold answer-set cache, early-terminating online evaluation (Section 1);
// and exact search on the cached answer set in the remaining cases. Errors
// from an applicable solver are surfaced — only the online path's "this
// setting does not stream" refusals (Fmono, constraints) fall through to
// exact search.
func (p *Prepared) Decide(ctx context.Context, opts ...Option) (bool, error) {
	resp, err := p.Do(ctx, Request{Problem: ProblemDecide, Options: opts})
	if err != nil {
		return false, err
	}
	return resp.Decided(), nil
}

// Count answers RDC: how many valid k-subsets reach the bound?
func (p *Prepared) Count(ctx context.Context, opts ...Option) (*big.Int, error) {
	resp, err := p.Do(ctx, Request{Problem: ProblemCount, Options: opts})
	if err != nil {
		return nil, err
	}
	return resp.Count, nil
}

// InTopR answers DRP: does the given set (specified by attribute values per
// row, in schema order) rank among the top r candidate sets? The rank
// threshold comes from WithRank.
func (p *Prepared) InTopR(ctx context.Context, set [][]interface{}, opts ...Option) (bool, error) {
	resp, err := p.Do(ctx, Request{Problem: ProblemInTopR, Set: set, Options: opts})
	if err != nil {
		return false, err
	}
	return resp.TopR(), nil
}

// Rank computes rank(U) exactly: 1 + the number of candidate k-sets scoring
// strictly above F(U) (Section 4.1). It is the function-problem companion
// of InTopR; expect exponential cost in the general setting (Theorem 6.1)
// and polynomial cost for Fmono without constraints (Theorem 6.4 applies to
// the decision; the exact rank is computed by exhaustive counting here).
func (p *Prepared) Rank(ctx context.Context, set [][]interface{}, opts ...Option) (int, error) {
	resp, err := p.Do(ctx, Request{Problem: ProblemRank, Set: set, Options: opts})
	if err != nil {
		return 0, err
	}
	return resp.Rank, nil
}
