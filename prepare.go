package diversification

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"slices"
	"sort"
	"sync"

	"repro/internal/approx"
	"repro/internal/compat"
	"repro/internal/core"
	"repro/internal/objective"
	"repro/internal/online"
	"repro/internal/query"
	"repro/internal/query/eval"
	"repro/internal/query/parse"
	"repro/internal/relation"
	"repro/internal/solver"
)

// Prepared is a compiled diversification query: the query text has been
// parsed, classified and validated against the engine's schema, the
// objective and constraints bound, and the materialized answer set Q(D) is
// cached across calls — re-evaluated only when the database generation
// advances (Insert/CreateTable). Build work happens once in Prepare; the
// per-call cost of Diversify/Decide/Count/InTopR/Rank is the solver alone.
//
// Per-call options override the Prepare-time bindings for that call only:
//
//	p, _ := e.Prepare(src, diversification.WithK(3))
//	sel, _ := p.Diversify(ctx)                             // k = 3
//	sel, _ = p.Diversify(ctx, diversification.WithK(5))    // k = 5, once
//
// A Prepared handle is safe for concurrent solves as long as the engine's
// database is not being mutated concurrently.
type Prepared struct {
	eng    *Engine
	src    string
	q      *query.Query
	schema relation.Schema
	lang   query.Language
	base   settings
	sigma  *compat.Set // compiled Prepare-time constraints

	mu        sync.Mutex
	answers   []relation.Tuple
	gen       uint64
	haveCache bool

	// plane is the interned score plane over the cached answer set: dense
	// IDs, precomputed δrel vector and (memory-guard permitting) the
	// materialized pairwise δdis matrix, shared by every solve until the
	// database generation advances. It bakes in the Prepare-time δrel/δdis
	// bindings, so calls overriding them per-call bypass it.
	plane    *objective.Plane
	planeGen uint64
}

// Prepare compiles a query for repeated solving: it parses src, validates
// it against the engine's schema, classifies its language, applies the
// options and compiles any compatibility constraints. The returned handle
// performs none of that work again.
func (e *Engine) Prepare(src string, opts ...Option) (*Prepared, error) {
	q, err := parse.Query(src)
	if err != nil {
		return nil, err
	}
	if err := eval.Validate(q, e.db); err != nil {
		return nil, err
	}
	s := defaultSettings()
	for _, o := range opts {
		o(&s)
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	schema := relation.NewSchema(q.Name, q.Head...)
	sigma, err := compileConstraints(s.constraints, schema)
	if err != nil {
		return nil, err
	}
	return &Prepared{
		eng:    e,
		src:    src,
		q:      q,
		schema: schema,
		lang:   q.Classify(),
		base:   s,
		sigma:  sigma,
	}, nil
}

// MustPrepare is Prepare that panics on error.
func (e *Engine) MustPrepare(src string, opts ...Option) *Prepared {
	p, err := e.Prepare(src, opts...)
	if err != nil {
		panic(err)
	}
	return p
}

// Source returns the query text the handle was prepared from.
func (p *Prepared) Source() string { return p.src }

// Language reports the minimal language class of the prepared query:
// "identity", "CQ", "UCQ", "∃FO+" or "FO".
func (p *Prepared) Language() string { return p.lang.String() }

// compileConstraints parses and schema-validates Cm constraint sources.
func compileConstraints(srcs []string, schema relation.Schema) (*compat.Set, error) {
	if len(srcs) == 0 {
		return nil, nil
	}
	set := compat.NewSet(8)
	for _, src := range srcs {
		c, err := compat.Parse(src)
		if err != nil {
			return nil, err
		}
		if err := c.Validate(schema); err != nil {
			return nil, err
		}
		if err := set.Add(c); err != nil {
			return nil, err
		}
	}
	return set, nil
}

// call merges per-call options over the Prepare-time settings and
// re-validates the result. The dirty mask is cleared first so it records
// exactly the scoring bindings this call overrides.
func (p *Prepared) call(opts []Option) (settings, error) {
	s := p.base
	s.dirty = 0
	for _, o := range opts {
		o(&s)
	}
	if err := s.validate(); err != nil {
		return s, err
	}
	return s, nil
}

// sigmaFor returns the compiled constraint set for a call: the Prepare-time
// compilation when the constraints are unchanged, a fresh compilation when
// a per-call WithConstraints replaced them.
func (p *Prepared) sigmaFor(s settings) (*compat.Set, error) {
	if slices.Equal(s.constraints, p.base.constraints) {
		return p.sigma, nil
	}
	return compileConstraints(s.constraints, p.schema)
}

// cachedAnswers returns the memoized answer set Q(D) together with the
// database generation it corresponds to, re-evaluating it (interruptibly,
// under ctx) if the generation has advanced since it was materialized. The
// returned generation is the one the answers were evaluated at — derived
// state (the score plane) must be keyed on it, not on a fresh Generation()
// read, or a concurrent mutation could pair stale answers with a new
// generation.
func (p *Prepared) cachedAnswers(ctx context.Context) ([]relation.Tuple, uint64, error) {
	gen := p.eng.db.Generation()
	p.mu.Lock()
	if p.haveCache && p.gen == gen {
		answers := p.answers
		p.mu.Unlock()
		return answers, gen, nil
	}
	p.mu.Unlock()
	// Evaluate outside the lock: the evaluation may be exponential, and a
	// concurrent solve blocked on p.mu could not honour its own context.
	// Two goroutines racing a cold cache may both evaluate; the first to
	// finish fills the cache and the loser's result is discarded.
	res, err := eval.EvaluateContext(ctx, p.q, p.eng.db)
	if err != nil {
		return nil, 0, err
	}
	answers := res.Sorted()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.haveCache && p.gen == gen {
		return p.answers, p.gen, nil
	}
	p.answers = answers
	p.gen = gen
	p.haveCache = true
	return answers, gen, nil
}

// cacheWarm reports whether the memoized answer set is present and current.
func (p *Prepared) cacheWarm() bool {
	gen := p.eng.db.Generation()
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.haveCache && p.gen == gen
}

// storeAnswers installs an already-materialized Q(D) (e.g. the pool an
// exhausted online stream paid for) into the cache, provided the database
// generation has not moved since gen was read. The tuples are re-sorted to
// the canonical lexicographic order the solvers expect.
func (p *Prepared) storeAnswers(ts []relation.Tuple, gen uint64) {
	if p.eng.db.Generation() != gen {
		return // the database moved underneath the stream: stale
	}
	p.mu.Lock()
	if p.haveCache && p.gen == gen {
		p.mu.Unlock()
		return // already warm: skip the copy+sort entirely
	}
	p.mu.Unlock()
	sorted := append([]relation.Tuple(nil), ts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Compare(sorted[j]) < 0 })
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.haveCache && p.gen == gen {
		return
	}
	p.answers = sorted
	p.gen = gen
	p.haveCache = true
}

// objectiveFor builds the bound objective function for one call.
func (p *Prepared) objectiveFor(s settings) *objective.Objective {
	var kind objective.Kind
	switch s.objective {
	case MaxMin:
		kind = objective.MaxMin
	case Mono:
		kind = objective.Mono
	default:
		kind = objective.MaxSum
	}
	var rel objective.Relevance
	if s.relevance != nil {
		f := s.relevance
		rel = objective.RelevanceFunc(func(t relation.Tuple) float64 {
			return f(Row{schema: p.schema, tuple: t})
		})
	}
	var dis objective.Distance
	if s.distance != nil {
		f := s.distance
		dis = objective.DistanceFunc(func(a, b relation.Tuple) float64 {
			return f(Row{schema: p.schema, tuple: a}, Row{schema: p.schema, tuple: b})
		})
	}
	return objective.New(kind, rel, dis, s.lambda)
}

// instance assembles a solver instance for one call. When materialize is
// true the cached answer set is attached (filling the cache if cold); the
// streaming Online procedures leave it unmaterialized because they drive
// the evaluator directly (QRD may even terminate early) — they hand any
// fully-streamed pool back through Result.Answers for the caller to cache.
func (p *Prepared) instance(ctx context.Context, s settings, materialize bool) (*core.Instance, error) {
	sigma, err := p.sigmaFor(s)
	if err != nil {
		return nil, err
	}
	in := &core.Instance{
		Query: p.q,
		DB:    p.eng.db,
		Obj:   p.objectiveFor(s),
		K:     s.k,
		B:     s.bound,
		R:     s.rank,
		Sigma: sigma,
	}
	in.PlaneMaxBytes = s.planeMaxBytes
	in.Parallelism = s.workers()
	if !s.scorePlane {
		in.PlaneOff = true
	}
	if materialize {
		answers, gen, err := p.cachedAnswers(ctx)
		if err != nil {
			return nil, err
		}
		in.SetAnswers(answers)
		// Attach the handle-cached score plane when this call's scoring
		// bindings are the prepared ones; a per-call WithRelevance/
		// WithDistance/WithPlaneMemoryLimit gets a fresh per-instance plane
		// lazily instead, so it never observes scores baked from the wrong
		// functions (or a matrix sized under the wrong memory limit).
		if s.scorePlane && s.dirty&(dirtyRelevance|dirtyDistance|dirtyPlaneLimit) == 0 {
			pl, err := p.cachedPlane(ctx, in.Obj, s.planeMaxBytes, answers, gen)
			if err != nil {
				return nil, err
			}
			if pl != nil {
				in.SetPlane(pl)
			}
		}
	}
	return in, nil
}

// cachedPlane returns the handle's score plane for the cached answer set
// evaluated at generation gen, building and materializing it on first use
// and rebuilding it after the database generation advances. Like
// cachedAnswers, the (possibly quadratic) build runs outside the lock; a
// racing loser's plane is discarded, and a plane built over answers whose
// generation has since moved on is returned for this call but never cached.
func (p *Prepared) cachedPlane(ctx context.Context, o *objective.Objective, maxBytes int64, answers []relation.Tuple, gen uint64) (*objective.Plane, error) {
	p.mu.Lock()
	if p.plane != nil && p.planeGen == gen {
		pl := p.plane
		p.mu.Unlock()
		return pl, nil
	}
	p.mu.Unlock()
	pl, err := objective.NewPlaneContext(ctx, o, answers, objective.PlaneOptions{MaxMatrixBytes: maxBytes})
	if err != nil {
		return nil, err
	}
	// Materialize eagerly: a Prepared handle exists to be solved against
	// many times, so the O(n²) fill (parallel, memory-guarded) is paid once
	// here rather than per solve.
	if _, err := pl.MaterializeContext(ctx); err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.plane != nil && p.planeGen == gen {
		return p.plane, nil
	}
	if p.haveCache && p.gen == gen {
		p.plane, p.planeGen = pl, gen
	}
	return pl, nil
}

// errNoCandidate is the shared "no candidate set" failure of the selection
// methods: fewer than k answers, or constraints unsatisfiable.
var errNoCandidate = errors.New("diversification: no candidate set (too few answers or unsatisfiable constraints)")

// Diversify finds a k-set maximizing the objective (the optimization form
// of QRD). Auto and Exact run exact branch-and-bound; Greedy and
// LocalSearch trade optimality for speed, as the paper's conclusion
// prescribes for the intractable cells; Online maintains an anytime
// selection while the query evaluates. ctx cancels the (potentially
// exponential) exact search mid-flight.
func (p *Prepared) Diversify(ctx context.Context, opts ...Option) (*Selection, error) {
	s, err := p.call(opts)
	if err != nil {
		return nil, err
	}
	in, err := p.instance(ctx, s, s.algorithm != Online)
	if err != nil {
		return nil, err
	}
	switch s.algorithm {
	case Auto, Exact:
		res, err := solver.QRDBestContext(ctx, in)
		if err != nil {
			return nil, err
		}
		if !res.Exists {
			return nil, errNoCandidate
		}
		return newSelection(p.schema, res.Witness, res.Value, "exact"), nil
	case Greedy:
		if in.Sigma.Len() > 0 {
			return nil, errors.New("diversification: greedy does not support constraints")
		}
		res, err := approx.GreedyContext(ctx, in)
		if err != nil {
			return nil, err
		}
		if len(res.Set) == 0 {
			return nil, errNoCandidate
		}
		return newSelection(p.schema, res.Set, res.Value, "greedy"), nil
	case LocalSearch:
		if in.Sigma.Len() > 0 {
			return nil, errors.New("diversification: local-search does not support constraints")
		}
		seed, err := approx.GreedyContext(ctx, in)
		if err != nil {
			return nil, err
		}
		if len(seed.Set) == 0 {
			return nil, errNoCandidate
		}
		res, err := approx.LocalSearchSwapContext(ctx, in, seed.Set)
		if err != nil {
			return nil, err
		}
		return newSelection(p.schema, res.Set, res.Value, "local-search"), nil
	case Online:
		gen := p.eng.db.Generation()
		// Collect the streamed pool only on a cold cache: online Diversify
		// always consumes the full stream, so the materialized Q(D) is
		// free to keep and lets later calls skip re-evaluation.
		collect := !p.cacheWarm()
		res, err := online.Diversify(ctx, in, online.Options{CollectAnswers: collect})
		if err != nil {
			return nil, err
		}
		if collect && res.Exhausted {
			p.storeAnswers(res.Answers, gen)
		}
		if !res.Exists {
			return nil, errNoCandidate
		}
		return newSelection(p.schema, res.Witness, res.Value, "online"), nil
	default:
		return nil, fmt.Errorf("diversification: unknown algorithm %s", s.algorithm)
	}
}

// Decide answers QRD: does a k-subset of the query result with objective
// value at least the bound exist (satisfying the constraints, if any)?
//
// The solver is chosen per the paper's complexity map: the PTIME modular
// algorithm for Fmono without constraints (Theorem 5.4); otherwise, with a
// cold answer-set cache, early-terminating online evaluation (Section 1);
// and exact search on the cached answer set in the remaining cases. Errors
// from an applicable solver are surfaced — only the online path's "this
// setting does not stream" refusals (Fmono, constraints) fall through to
// exact search.
func (p *Prepared) Decide(ctx context.Context, opts ...Option) (bool, error) {
	s, err := p.call(opts)
	if err != nil {
		return false, err
	}
	// The paper's PTIME algorithm when it applies.
	if s.objective == Mono && len(s.constraints) == 0 {
		in, err := p.instance(ctx, s, true)
		if err != nil {
			return false, err
		}
		res, err := solver.QRDMonoPTime(in)
		if err == nil {
			return res.Exists, nil
		}
	}
	// With a cold cache, stream the evaluation and stop at the first valid
	// set (early termination, Section 1). A warm cache makes streaming a
	// re-evaluation, so exact search on the cached answers wins there.
	if !p.cacheWarm() {
		gen := p.eng.db.Generation()
		in, err := p.instance(ctx, s, false)
		if err != nil {
			return false, err
		}
		res, err := online.QRD(ctx, in, online.Options{})
		if err == nil {
			if res.Exhausted {
				// The stream materialized all of Q(D) anyway; keep it so
				// the next call hits the warm-cache exact path instead of
				// re-evaluating the query.
				p.storeAnswers(res.Answers, gen)
			}
			return res.Exists, nil
		}
		// Only "online is inapplicable here" falls through to the exact
		// solver; cancellation and any other genuine failure surfaces.
		if !errors.Is(err, online.ErrMono) && !errors.Is(err, online.ErrConstrained) {
			return false, err
		}
	}
	in, err := p.instance(ctx, s, true)
	if err != nil {
		return false, err
	}
	res, err := solver.QRDExactContext(ctx, in)
	if err != nil {
		return false, err
	}
	return res.Exists, nil
}

// Count answers RDC: how many valid k-subsets reach the bound?
func (p *Prepared) Count(ctx context.Context, opts ...Option) (*big.Int, error) {
	s, err := p.call(opts)
	if err != nil {
		return nil, err
	}
	in, err := p.instance(ctx, s, true)
	if err != nil {
		return nil, err
	}
	res, err := solver.RDCExactContext(ctx, in)
	if err != nil {
		return nil, err
	}
	return res.Count, nil
}

// checkSet validates and converts a caller-provided candidate set: it must
// have exactly k rows, each matching the query head arity, with values of
// supported Go types.
func (p *Prepared) checkSet(set [][]interface{}, k int) ([]relation.Tuple, error) {
	if len(set) != k {
		return nil, fmt.Errorf("diversification: candidate set has %d rows, want exactly K = %d", len(set), k)
	}
	arity := p.q.Arity()
	out := make([]relation.Tuple, 0, len(set))
	for i, rowVals := range set {
		if len(rowVals) != arity {
			return nil, fmt.Errorf("diversification: candidate row %d has %d values, want the query head arity %d", i, len(rowVals), arity)
		}
		t := make(relation.Tuple, len(rowVals))
		for j, v := range rowVals {
			cv, err := toValue(v)
			if err != nil {
				return nil, fmt.Errorf("diversification: candidate row %d, column %d: %w", i, j, err)
			}
			t[j] = cv
		}
		out = append(out, t)
	}
	return out, nil
}

// InTopR answers DRP: does the given set (specified by attribute values per
// row, in schema order) rank among the top r candidate sets? The rank
// threshold comes from WithRank.
func (p *Prepared) InTopR(ctx context.Context, set [][]interface{}, opts ...Option) (bool, error) {
	s, err := p.call(opts)
	if err != nil {
		return false, err
	}
	if s.rank < 1 {
		return false, errors.New("diversification: Rank must be at least 1 (set it with WithRank)")
	}
	u, err := p.checkSet(set, s.k)
	if err != nil {
		return false, err
	}
	in, err := p.instance(ctx, s, true)
	if err != nil {
		return false, err
	}
	in.U = u
	if in.Obj.Kind == objective.Mono && in.Sigma.Len() == 0 {
		if res, err := solver.DRPMonoPTime(in); err == nil {
			return res.InTopR, nil
		}
	}
	res, err := solver.DRPExactContext(ctx, in)
	if err != nil {
		return false, err
	}
	return res.InTopR, nil
}

// Rank computes rank(U) exactly: 1 + the number of candidate k-sets scoring
// strictly above F(U) (Section 4.1). It is the function-problem companion
// of InTopR; expect exponential cost in the general setting (Theorem 6.1)
// and polynomial cost for Fmono without constraints (Theorem 6.4 applies to
// the decision; the exact rank is computed by exhaustive counting here).
func (p *Prepared) Rank(ctx context.Context, set [][]interface{}, opts ...Option) (int, error) {
	s, err := p.call(opts)
	if err != nil {
		return 0, err
	}
	s.rank = int(^uint(0) >> 1) // count all better sets
	u, err := p.checkSet(set, s.k)
	if err != nil {
		return 0, err
	}
	in, err := p.instance(ctx, s, true)
	if err != nil {
		return 0, err
	}
	in.U = u
	res, err := solver.DRPExactContext(ctx, in)
	if err != nil {
		return 0, err
	}
	return res.Better + 1, nil
}
