package diversification

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"slices"
	"sort"
	"sync"

	"repro/internal/approx"
	"repro/internal/compat"
	"repro/internal/core"
	"repro/internal/objective"
	"repro/internal/online"
	"repro/internal/query"
	"repro/internal/query/eval"
	"repro/internal/query/parse"
	"repro/internal/relation"
	"repro/internal/solver"
)

// Prepared is a compiled diversification query: the query text has been
// parsed, classified and validated against the engine's schema, the
// objective and constraints bound, and the materialized answer set Q(D) is
// cached across calls. When the database mutates, the cache is brought up
// to date incrementally where possible — the relation change journal yields
// the answer-set delta, the score plane is extended/retired instead of
// rebuilt, and the answer index is maintained alongside — falling back to
// a full rebuild when the journal was compacted, the query is not
// delta-maintainable, or WithIncrementalRefresh(false) disabled the path.
// Build work happens once in Prepare; the per-call cost of
// Diversify/Decide/Count/InTopR/Rank is the solver alone.
//
// Per-call options override the Prepare-time bindings for that call only:
//
//	p, _ := e.Prepare(src, diversification.WithK(3))
//	sel, _ := p.Diversify(ctx)                             // k = 3
//	sel, _ = p.Diversify(ctx, diversification.WithK(5))    // k = 5, once
//
// A Prepared handle is safe for concurrent solves as long as the engine's
// database is not being mutated concurrently.
type Prepared struct {
	eng    *Engine
	src    string
	q      *query.Query
	schema relation.Schema
	lang   query.Language
	base   settings
	sigma  *compat.Set // compiled Prepare-time constraints

	// deltaOK records, once at Prepare time, whether the query's answer
	// set can be maintained incrementally from the change journal
	// (positive and range-safe; see eval.DeltaCapable).
	deltaOK bool

	// mu guards snap. All derived state lives in one immutable snapshot
	// swapped atomically, so a reader can never pair answers from one
	// generation with a plane or index from another — the TOCTOU window of
	// the old per-field generation dance. snap.plane and snap.streamPool
	// are the two lazily attached fields; both transition nil → non-nil
	// exactly once, under mu.
	mu   sync.Mutex
	snap *snapshot
}

// snapshot is one consistent view of the state derived from the database at
// a single generation: the canonically sorted answer set, its key index,
// the interned score plane (attached lazily, under the handle's lock) and
// the stream-order pool an exhausted online evaluation produced (ditto).
// Snapshots are immutable apart from those two monotonic attachments;
// refreshing publishes a new snapshot rather than mutating the old one, so
// in-flight solves keep a coherent view.
type snapshot struct {
	gen     uint64
	answers []relation.Tuple
	index   map[string]int // Tuple.Key() -> answers position

	// plane bakes in the Prepare-time δrel/δdis bindings; calls overriding
	// them per-call bypass it. Guarded by Prepared.mu.
	plane *objective.Plane
	// streamPool is Q(D) in evaluation-stream order, kept when an online
	// procedure exhausted the stream at this generation: replaying it is
	// byte-identical to re-streaming the (deterministic) evaluator and
	// skips the query evaluation entirely. Guarded by Prepared.mu.
	streamPool []relation.Tuple
}

// indexAnswers builds the key index over a sorted answer slice.
func indexAnswers(answers []relation.Tuple) map[string]int {
	idx := make(map[string]int, len(answers))
	for i, t := range answers {
		idx[t.Key()] = i
	}
	return idx
}

// maxRefreshAttempts bounds the evaluate-verify-retry loop of snapshotAt
// when the database is mutated concurrently with a refresh (which the
// engine contract already forbids); on exhaustion the freshest result is
// returned uncached.
const maxRefreshAttempts = 4

// Prepare compiles a query for repeated solving: it parses src, validates
// it against the engine's schema, classifies its language, applies the
// options and compiles any compatibility constraints. The returned handle
// performs none of that work again.
func (e *Engine) Prepare(src string, opts ...Option) (*Prepared, error) {
	q, err := parse.Query(src)
	if err != nil {
		return nil, err
	}
	if err := eval.Validate(q, e.db); err != nil {
		return nil, err
	}
	s := defaultSettings()
	for _, o := range opts {
		o(&s)
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	schema := relation.NewSchema(q.Name, q.Head...)
	sigma, err := compileConstraints(s.constraints, schema)
	if err != nil {
		return nil, err
	}
	return &Prepared{
		eng:     e,
		src:     src,
		q:       q,
		schema:  schema,
		lang:    q.Classify(),
		base:    s,
		sigma:   sigma,
		deltaOK: eval.DeltaCapable(q),
	}, nil
}

// MustPrepare is Prepare that panics on error.
func (e *Engine) MustPrepare(src string, opts ...Option) *Prepared {
	p, err := e.Prepare(src, opts...)
	if err != nil {
		panic(err)
	}
	return p
}

// Source returns the query text the handle was prepared from.
func (p *Prepared) Source() string { return p.src }

// Language reports the minimal language class of the prepared query:
// "identity", "CQ", "UCQ", "∃FO+" or "FO".
func (p *Prepared) Language() string { return p.lang.String() }

// compileConstraints parses and schema-validates Cm constraint sources.
func compileConstraints(srcs []string, schema relation.Schema) (*compat.Set, error) {
	if len(srcs) == 0 {
		return nil, nil
	}
	set := compat.NewSet(8)
	for _, src := range srcs {
		c, err := compat.Parse(src)
		if err != nil {
			return nil, err
		}
		if err := c.Validate(schema); err != nil {
			return nil, err
		}
		if err := set.Add(c); err != nil {
			return nil, err
		}
	}
	return set, nil
}

// call merges per-call options over the Prepare-time settings and
// re-validates the result. The dirty mask is cleared first so it records
// exactly the scoring bindings this call overrides.
func (p *Prepared) call(opts []Option) (settings, error) {
	s := p.base
	s.dirty = 0
	for _, o := range opts {
		o(&s)
	}
	if err := s.validate(); err != nil {
		return s, err
	}
	return s, nil
}

// sigmaFor returns the compiled constraint set for a call: the Prepare-time
// compilation when the constraints are unchanged, a fresh compilation when
// a per-call WithConstraints replaced them.
func (p *Prepared) sigmaFor(s settings) (*compat.Set, error) {
	if slices.Equal(s.constraints, p.base.constraints) {
		return p.sigma, nil
	}
	return compileConstraints(s.constraints, p.schema)
}

// RefreshInfo reports how a snapshot was brought up to date.
type RefreshInfo struct {
	// Mode is "warm" (nothing to do), "delta" (journal applied
	// incrementally) or "rebuild" (full re-evaluation).
	Mode string
	// Added and Removed count the answer tuples the delta touched (zero
	// for warm and rebuild modes).
	Added, Removed int
	// Rechecked counts per-answer membership re-verifications the delta
	// performed for deletes.
	Rechecked int
	// Answers is |Q(D)| after the refresh.
	Answers int
}

// Refresh brings the handle's cached state up to date with the database:
// if the change journal still covers the handle's watermark and the query
// is delta-maintainable, the answer-set delta is applied and the score
// plane extended/retired in place of a rebuild; otherwise the answer set is
// re-evaluated from scratch. The score plane for the Prepare-time bindings
// is (re)built and materialized eagerly, so the next solve pays for the
// solver alone. Refresh is also implicit: every solve lazily revalidates
// through the same path — calling Refresh explicitly just moves the cost to
// a time of the caller's choosing and reports what happened.
func (p *Prepared) Refresh(ctx context.Context) (RefreshInfo, error) {
	snap, info, err := p.snapshotAt(ctx)
	if err != nil {
		return info, err
	}
	// Online solves never read the shared plane (they stream through
	// their own), so skip the O(n²) materialization for those handles.
	if p.base.scorePlane && p.base.algorithm != Online {
		s := p.base
		s.dirty = 0
		if _, err := p.planeFor(ctx, snap, &s); err != nil {
			return info, err
		}
	}
	info.Answers = len(snap.answers)
	return info, nil
}

// current returns the published snapshot if it matches the database
// generation, else nil.
func (p *Prepared) current() *snapshot {
	gen := p.eng.db.Generation()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.snap != nil && p.snap.gen == gen {
		return p.snap
	}
	return nil
}

// cacheWarm reports whether a snapshot for the current database generation
// is published.
func (p *Prepared) cacheWarm() bool { return p.current() != nil }

// snapshotFor returns a snapshot of the derived state consistent with the
// current database generation, refreshing (incrementally when possible)
// if the published one is stale.
func (p *Prepared) snapshotFor(ctx context.Context) (*snapshot, error) {
	snap, _, err := p.snapshotAt(ctx)
	return snap, err
}

// snapshotAt is snapshotFor plus the refresh mode report. The (possibly
// exponential) evaluation and the (possibly quadratic) plane rebase run
// outside the lock; the generation is re-read afterwards and the work
// retried if a mutation interleaved, so a published snapshot is always
// internally consistent — answers, index and plane from one generation.
func (p *Prepared) snapshotAt(ctx context.Context) (*snapshot, RefreshInfo, error) {
	var last *snapshot
	for attempt := 0; attempt < maxRefreshAttempts; attempt++ {
		gen := p.eng.db.Generation()
		p.mu.Lock()
		old := p.snap
		p.mu.Unlock()
		if old != nil && old.gen == gen {
			return old, RefreshInfo{Mode: "warm", Answers: len(old.answers)}, nil
		}
		snap, info, err := p.buildSnapshot(ctx, old, gen)
		if err != nil {
			return nil, info, err
		}
		last = snap
		if p.eng.db.Generation() != gen {
			continue // a mutation interleaved: the work may be torn, retry
		}
		p.mu.Lock()
		if p.snap == nil || p.snap.gen < gen {
			p.snap = snap
		} else {
			snap = p.snap // a racing refresh published first
		}
		p.mu.Unlock()
		return snap, info, nil
	}
	// The database is being mutated continuously (which the engine
	// contract forbids during solves): hand back the freshest result
	// without caching it.
	return last, RefreshInfo{Mode: "rebuild", Answers: len(last.answers)}, nil
}

// buildSnapshot computes the derived state for generation gen, applying
// the journal delta to old when the incremental path applies and falling
// back to full re-evaluation otherwise.
func (p *Prepared) buildSnapshot(ctx context.Context, old *snapshot, gen uint64) (*snapshot, RefreshInfo, error) {
	if old != nil && p.deltaOK && p.base.incremental {
		if changes, ok := p.eng.db.ChangesSince(old.gen); ok {
			d, ok, err := eval.Delta(ctx, p.q, p.eng.db, changes, old.answers)
			if err != nil {
				return nil, RefreshInfo{}, err
			}
			if ok {
				snap, err := p.applyDelta(ctx, old, d, gen)
				if err != nil {
					return nil, RefreshInfo{}, err
				}
				return snap, RefreshInfo{
					Mode:      "delta",
					Added:     len(d.Added),
					Removed:   len(d.Removed),
					Rechecked: d.Rechecked,
					Answers:   len(snap.answers),
				}, nil
			}
		}
	}
	res, err := eval.EvaluateContext(ctx, p.q, p.eng.db)
	if err != nil {
		return nil, RefreshInfo{}, err
	}
	answers := res.Sorted()
	return &snapshot{gen: gen, answers: answers, index: indexAnswers(answers)},
		RefreshInfo{Mode: "rebuild", Answers: len(answers)}, nil
}

// applyDelta merges an answer-set delta into a new snapshot: removed
// tuples drop out, added tuples merge in canonical order, the key index is
// maintained during the merge, and the score plane — when the old snapshot
// had built one — is rebased (surviving scores copied, only delta pairs
// evaluated) instead of rebuilt.
func (p *Prepared) applyDelta(ctx context.Context, old *snapshot, d eval.DeltaResult, gen uint64) (*snapshot, error) {
	removedIDs := make([]int, 0, len(d.Removed))
	dead := make(map[int]bool, len(d.Removed))
	for _, t := range d.Removed {
		if id, ok := old.index[t.Key()]; ok {
			removedIDs = append(removedIDs, id)
			dead[id] = true
		}
	}
	p.mu.Lock()
	oldPlane := old.plane
	p.mu.Unlock()
	var merged []relation.Tuple
	var pl *objective.Plane
	if oldPlane != nil {
		var err error
		pl, err = oldPlane.Rebase(ctx, d.Added, removedIDs)
		if err != nil {
			return nil, err
		}
		// Plane IDs must index the snapshot's answers exactly; taking the
		// rebased plane's own interned order makes that invariant
		// structural instead of relying on two merges staying in lockstep.
		merged = pl.Answers()
	} else {
		merged = mergeAnswers(old.answers, d.Added, dead)
	}
	return &snapshot{gen: gen, answers: merged, index: indexAnswers(merged), plane: pl}, nil
}

// mergeAnswers merges the sorted delta additions into the sorted answers,
// skipping tombstoned positions. It must order exactly as Plane.Rebase's
// provenance merge does — applyDelta uses it only when no plane exists to
// inherit the order from, but a later planeFor build over its output must
// still agree with what a rebase would have produced.
func mergeAnswers(answers []relation.Tuple, added []relation.Tuple, dead map[int]bool) []relation.Tuple {
	merged := make([]relation.Tuple, 0, len(answers)+len(added))
	i, j := 0, 0
	for i < len(answers) || j < len(added) {
		for i < len(answers) && dead[i] {
			i++
		}
		if i >= len(answers) && j >= len(added) {
			break // only tombstones remained
		}
		switch {
		case i >= len(answers):
			merged = append(merged, added[j])
			j++
		case j >= len(added) || answers[i].Compare(added[j]) < 0:
			merged = append(merged, answers[i])
			i++
		default:
			merged = append(merged, added[j])
			j++
		}
	}
	return merged
}

// storePool installs the stream-order pool an exhausted online evaluation
// produced at generation gen: as the current snapshot's streamPool when one
// is already published for gen, or as a fresh snapshot otherwise — the
// stream already paid for Q(D), so later calls skip re-evaluation. Dropped
// silently when the database has moved on.
func (p *Prepared) storePool(pool []relation.Tuple, gen uint64) {
	if p.eng.db.Generation() != gen {
		return // the database moved underneath the stream: stale
	}
	p.mu.Lock()
	if p.snap != nil && p.snap.gen == gen {
		if p.snap.streamPool == nil {
			p.snap.streamPool = pool
		}
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	sorted := append([]relation.Tuple(nil), pool...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Compare(sorted[j]) < 0 })
	snap := &snapshot{gen: gen, answers: sorted, index: indexAnswers(sorted), streamPool: pool}
	if p.eng.db.Generation() != gen {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.snap == nil || p.snap.gen < gen {
		p.snap = snap
	}
}

// refreshableDelta reports whether the handle holds a stale snapshot the
// change journal can patch incrementally — in which case re-evaluating the
// query from scratch (streaming or otherwise) would waste it.
func (p *Prepared) refreshableDelta() bool {
	if !p.deltaOK || !p.base.incremental {
		return false
	}
	p.mu.Lock()
	old := p.snap
	p.mu.Unlock()
	if old == nil {
		return false
	}
	_, ok := p.eng.db.ChangesSince(old.gen)
	return ok
}

// pooled returns the stream-order pool for the current generation, if an
// online evaluation captured one.
func (p *Prepared) pooled() []relation.Tuple {
	gen := p.eng.db.Generation()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.snap != nil && p.snap.gen == gen {
		return p.snap.streamPool
	}
	return nil
}

// objectiveFor builds the bound objective function for one call.
func (p *Prepared) objectiveFor(s settings) *objective.Objective {
	var kind objective.Kind
	switch s.objective {
	case MaxMin:
		kind = objective.MaxMin
	case Mono:
		kind = objective.Mono
	default:
		kind = objective.MaxSum
	}
	var rel objective.Relevance
	if s.relevance != nil {
		f := s.relevance
		rel = objective.RelevanceFunc(func(t relation.Tuple) float64 {
			return f(Row{schema: p.schema, tuple: t})
		})
	}
	var dis objective.Distance
	if s.distance != nil {
		f := s.distance
		dis = objective.DistanceFunc(func(a, b relation.Tuple) float64 {
			return f(Row{schema: p.schema, tuple: a}, Row{schema: p.schema, tuple: b})
		})
	}
	return objective.New(kind, rel, dis, s.lambda)
}

// instance assembles a solver instance for one call. When materialize is
// true the cached answer set is attached (filling the cache if cold); the
// streaming Online procedures leave it unmaterialized because they drive
// the evaluator directly (QRD may even terminate early) — they hand any
// fully-streamed pool back through Result.Answers for the caller to cache.
func (p *Prepared) instance(ctx context.Context, s settings, materialize bool) (*core.Instance, error) {
	sigma, err := p.sigmaFor(s)
	if err != nil {
		return nil, err
	}
	in := &core.Instance{
		Query: p.q,
		DB:    p.eng.db,
		Obj:   p.objectiveFor(s),
		K:     s.k,
		B:     s.bound,
		R:     s.rank,
		Sigma: sigma,
	}
	in.PlaneMaxBytes = s.planeMaxBytes
	in.Parallelism = s.workers()
	if !s.scorePlane {
		in.PlaneOff = true
	}
	if materialize {
		snap, err := p.snapshotFor(ctx)
		if err != nil {
			return nil, err
		}
		in.SetAnswers(snap.answers)
		in.SetAnswerIndex(snap.index)
		// Attach the handle-cached score plane when this call's scoring
		// bindings are the prepared ones; a per-call WithRelevance/
		// WithDistance/WithPlaneMemoryLimit gets a fresh per-instance plane
		// lazily instead, so it never observes scores baked from the wrong
		// functions (or a matrix sized under the wrong memory limit).
		if s.scorePlane && s.dirty&(dirtyRelevance|dirtyDistance|dirtyPlaneLimit) == 0 {
			pl, err := p.planeFor(ctx, snap, &s)
			if err != nil {
				return nil, err
			}
			if pl != nil {
				in.SetPlane(pl)
			}
		}
	}
	return in, nil
}

// planeFor returns the snapshot's score plane, building and materializing
// it on first use. The (possibly quadratic) build runs outside the lock; a
// plane is a pure function of the snapshot's answers, so a racing loser's
// identical plane is simply discarded. Delta refreshes pre-attach a rebased
// plane, making this a lock-and-load.
func (p *Prepared) planeFor(ctx context.Context, snap *snapshot, s *settings) (*objective.Plane, error) {
	p.mu.Lock()
	pl := snap.plane
	p.mu.Unlock()
	if pl != nil {
		return pl, nil
	}
	pl, err := objective.NewPlaneContext(ctx, p.objectiveFor(*s), snap.answers, objective.PlaneOptions{MaxMatrixBytes: s.planeMaxBytes})
	if err != nil {
		return nil, err
	}
	// Materialize eagerly: a Prepared handle exists to be solved against
	// many times, so the O(n²) fill (parallel, memory-guarded) is paid once
	// here rather than per solve.
	if _, err := pl.MaterializeContext(ctx); err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if snap.plane == nil {
		snap.plane = pl
	}
	return snap.plane, nil
}

// errNoCandidate is the shared "no candidate set" failure of the selection
// methods: fewer than k answers, or constraints unsatisfiable.
var errNoCandidate = errors.New("diversification: no candidate set (too few answers or unsatisfiable constraints)")

// Diversify finds a k-set maximizing the objective (the optimization form
// of QRD). Auto and Exact run exact branch-and-bound; Greedy and
// LocalSearch trade optimality for speed, as the paper's conclusion
// prescribes for the intractable cells; Online maintains an anytime
// selection while the query evaluates. ctx cancels the (potentially
// exponential) exact search mid-flight.
func (p *Prepared) Diversify(ctx context.Context, opts ...Option) (*Selection, error) {
	s, err := p.call(opts)
	if err != nil {
		return nil, err
	}
	in, err := p.instance(ctx, s, s.algorithm != Online)
	if err != nil {
		return nil, err
	}
	switch s.algorithm {
	case Auto, Exact:
		res, err := solver.QRDBestContext(ctx, in)
		if err != nil {
			return nil, err
		}
		if !res.Exists {
			return nil, errNoCandidate
		}
		return newSelection(p.schema, res.Witness, res.Value, "exact"), nil
	case Greedy:
		if in.Sigma.Len() > 0 {
			return nil, errors.New("diversification: greedy does not support constraints")
		}
		res, err := approx.GreedyContext(ctx, in)
		if err != nil {
			return nil, err
		}
		if len(res.Set) == 0 {
			return nil, errNoCandidate
		}
		return newSelection(p.schema, res.Set, res.Value, "greedy"), nil
	case LocalSearch:
		if in.Sigma.Len() > 0 {
			return nil, errors.New("diversification: local-search does not support constraints")
		}
		seed, err := approx.GreedyContext(ctx, in)
		if err != nil {
			return nil, err
		}
		if len(seed.Set) == 0 {
			return nil, errNoCandidate
		}
		res, err := approx.LocalSearchSwapContext(ctx, in, seed.Set)
		if err != nil {
			return nil, err
		}
		return newSelection(p.schema, res.Set, res.Value, "local-search"), nil
	case Online:
		gen := p.eng.db.Generation()
		// Replay a captured stream-order pool when one exists for this
		// generation: the (deterministic) evaluator would produce the same
		// arrival order, so the anytime selection is byte-identical and the
		// query evaluation is skipped.
		pool := p.pooled()
		// Collect the streamed pool whenever none is captured yet: online
		// Diversify always consumes the full stream, so the materialized
		// Q(D) — and its arrival order, which future online calls replay —
		// is free to keep.
		collect := pool == nil
		res, err := online.Diversify(ctx, in, online.Options{CollectAnswers: collect, Pool: pool, HavePool: pool != nil})
		if err != nil {
			return nil, err
		}
		if collect && res.Exhausted {
			p.storePool(res.Answers, gen)
		}
		if !res.Exists {
			return nil, errNoCandidate
		}
		return newSelection(p.schema, res.Witness, res.Value, "online"), nil
	default:
		return nil, fmt.Errorf("diversification: unknown algorithm %s", s.algorithm)
	}
}

// Decide answers QRD: does a k-subset of the query result with objective
// value at least the bound exist (satisfying the constraints, if any)?
//
// The solver is chosen per the paper's complexity map: the PTIME modular
// algorithm for Fmono without constraints (Theorem 5.4); otherwise, with a
// cold answer-set cache, early-terminating online evaluation (Section 1);
// and exact search on the cached answer set in the remaining cases. Errors
// from an applicable solver are surfaced — only the online path's "this
// setting does not stream" refusals (Fmono, constraints) fall through to
// exact search.
func (p *Prepared) Decide(ctx context.Context, opts ...Option) (bool, error) {
	s, err := p.call(opts)
	if err != nil {
		return false, err
	}
	// The paper's PTIME algorithm when it applies.
	if s.objective == Mono && len(s.constraints) == 0 {
		in, err := p.instance(ctx, s, true)
		if err != nil {
			return false, err
		}
		res, err := solver.QRDMonoPTime(in)
		if err == nil {
			return res.Exists, nil
		}
	}
	// With a cold cache, stream the evaluation and stop at the first valid
	// set (early termination, Section 1). A warm cache makes streaming a
	// re-evaluation — and a stale cache the journal can patch costs only
	// the delta to warm up — so exact search on the cached answers wins in
	// both of those cases.
	if p.current() == nil && !p.refreshableDelta() {
		gen := p.eng.db.Generation()
		in, err := p.instance(ctx, s, false)
		if err != nil {
			return false, err
		}
		res, err := online.QRD(ctx, in, online.Options{})
		if err == nil {
			if res.Exhausted {
				// The stream materialized all of Q(D) anyway; keep it so
				// the next call hits the warm-cache exact path instead of
				// re-evaluating the query.
				p.storePool(res.Answers, gen)
			}
			return res.Exists, nil
		}
		// Only "online is inapplicable here" falls through to the exact
		// solver; cancellation and any other genuine failure surfaces.
		if !errors.Is(err, online.ErrMono) && !errors.Is(err, online.ErrConstrained) {
			return false, err
		}
	}
	in, err := p.instance(ctx, s, true)
	if err != nil {
		return false, err
	}
	res, err := solver.QRDExactContext(ctx, in)
	if err != nil {
		return false, err
	}
	return res.Exists, nil
}

// Count answers RDC: how many valid k-subsets reach the bound?
func (p *Prepared) Count(ctx context.Context, opts ...Option) (*big.Int, error) {
	s, err := p.call(opts)
	if err != nil {
		return nil, err
	}
	in, err := p.instance(ctx, s, true)
	if err != nil {
		return nil, err
	}
	res, err := solver.RDCExactContext(ctx, in)
	if err != nil {
		return nil, err
	}
	return res.Count, nil
}

// checkSet validates and converts a caller-provided candidate set: it must
// have exactly k rows, each matching the query head arity, with values of
// supported Go types.
func (p *Prepared) checkSet(set [][]interface{}, k int) ([]relation.Tuple, error) {
	if len(set) != k {
		return nil, fmt.Errorf("diversification: candidate set has %d rows, want exactly K = %d", len(set), k)
	}
	arity := p.q.Arity()
	out := make([]relation.Tuple, 0, len(set))
	for i, rowVals := range set {
		if len(rowVals) != arity {
			return nil, fmt.Errorf("diversification: candidate row %d has %d values, want the query head arity %d", i, len(rowVals), arity)
		}
		t := make(relation.Tuple, len(rowVals))
		for j, v := range rowVals {
			cv, err := toValue(v)
			if err != nil {
				return nil, fmt.Errorf("diversification: candidate row %d, column %d: %w", i, j, err)
			}
			t[j] = cv
		}
		out = append(out, t)
	}
	return out, nil
}

// InTopR answers DRP: does the given set (specified by attribute values per
// row, in schema order) rank among the top r candidate sets? The rank
// threshold comes from WithRank.
func (p *Prepared) InTopR(ctx context.Context, set [][]interface{}, opts ...Option) (bool, error) {
	s, err := p.call(opts)
	if err != nil {
		return false, err
	}
	if s.rank < 1 {
		return false, errors.New("diversification: Rank must be at least 1 (set it with WithRank)")
	}
	u, err := p.checkSet(set, s.k)
	if err != nil {
		return false, err
	}
	in, err := p.instance(ctx, s, true)
	if err != nil {
		return false, err
	}
	in.U = u
	if in.Obj.Kind == objective.Mono && in.Sigma.Len() == 0 {
		if res, err := solver.DRPMonoPTime(in); err == nil {
			return res.InTopR, nil
		}
	}
	res, err := solver.DRPExactContext(ctx, in)
	if err != nil {
		return false, err
	}
	return res.InTopR, nil
}

// Rank computes rank(U) exactly: 1 + the number of candidate k-sets scoring
// strictly above F(U) (Section 4.1). It is the function-problem companion
// of InTopR; expect exponential cost in the general setting (Theorem 6.1)
// and polynomial cost for Fmono without constraints (Theorem 6.4 applies to
// the decision; the exact rank is computed by exhaustive counting here).
func (p *Prepared) Rank(ctx context.Context, set [][]interface{}, opts ...Option) (int, error) {
	s, err := p.call(opts)
	if err != nil {
		return 0, err
	}
	s.rank = int(^uint(0) >> 1) // count all better sets
	u, err := p.checkSet(set, s.k)
	if err != nil {
		return 0, err
	}
	in, err := p.instance(ctx, s, true)
	if err != nil {
		return 0, err
	}
	in.U = u
	res, err := solver.DRPExactContext(ctx, in)
	if err != nil {
		return 0, err
	}
	return res.Better + 1, nil
}
