package httpapi

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestCoresetRoute covers the wire round trip of the cluster merge
// payload: the greedy k′-selection with scores and echoed settings, rows
// normalized back to engine value types.
func TestCoresetRoute(t *testing.T) {
	c, _ := testClient(t)
	ctx := context.Background()

	slack := 0
	cs, err := c.Coreset(ctx, "catalog", CoresetRequest{Slack: &slack})
	if err != nil {
		t.Fatal(err)
	}
	if cs.K != 3 || cs.KPrime != 3 || len(cs.Rows) != 3 || len(cs.Scores) != 3 {
		t.Fatalf("tight coreset: k=%d k'=%d rows=%d scores=%d", cs.K, cs.KPrime, len(cs.Rows), len(cs.Scores))
	}
	if cs.Objective != "max-sum" || cs.Lambda != 0.7 || cs.Answers != 6 {
		t.Fatalf("echoed settings wrong: %+v", cs)
	}
	if len(cs.Schema) != 3 || cs.Schema[0] != "item" {
		t.Fatalf("schema wrong: %v", cs.Schema)
	}
	// Wire normalization: the integer price must come back int64, not
	// float64 — re-inserting it into a coordinator engine must compare
	// equal to the shard's stored value.
	if _, ok := cs.Rows[0][2].(int64); !ok {
		t.Fatalf("price survived the wire as %T, want int64", cs.Rows[0][2])
	}

	// Default slack is k, and k′ clamps to |Q(D)|: k=3, slack=3 → 6 = all
	// six answers.
	cs, err = c.Coreset(ctx, "catalog", CoresetRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if cs.KPrime != 6 || len(cs.Rows) != 6 {
		t.Fatalf("default-slack coreset: k'=%d rows=%d, want 6", cs.KPrime, len(cs.Rows))
	}

	// Mono objectives are not coreset-mergeable: a typed 400, not a merge
	// that silently computes the wrong thing.
	mono := "mono"
	_, err = c.Coreset(ctx, "catalog", CoresetRequest{Objective: &mono})
	var serr *StatusError
	if !errors.As(err, &serr) || serr.Code != http.StatusBadRequest {
		t.Fatalf("mono coreset: want 400 StatusError, got %v", err)
	}

	// Unknown statements map to 404, like queries.
	if _, err = c.Coreset(ctx, "nope", CoresetRequest{}); !errors.As(err, &serr) || serr.Code != http.StatusNotFound {
		t.Fatalf("unknown statement: want 404, got %v", err)
	}
}

// TestClientConnReuse pins the shared-transport satellite: back-to-back
// calls over the default (shared, tuned) transport recycle the idle
// connection, and Stats counts both the first dial and the reuses.
func TestClientConnReuse(t *testing.T) {
	svc := testService(t)
	srv := httptest.NewServer(NewHandler(svc))
	t.Cleanup(srv.Close)
	c := &Client{BaseURL: srv.URL} // nil HTTPClient: the shared transport
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if _, err := c.Query(ctx, "catalog", QueryRequest{}); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.ConnsNew == 0 {
		t.Fatalf("no dial recorded: %+v", st)
	}
	if st.ConnsReused == 0 {
		t.Fatalf("4 sequential calls never reused a connection: %+v", st)
	}
}
