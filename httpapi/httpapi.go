// Package httpapi is the JSON-over-HTTP facade of the diversification
// service: the wire request/response types, an http.Handler serving them
// from a diversification.Service, and a small Go client. The protocol:
//
//	POST /v1/query/{name}     run a Request against a registered statement
//	POST /v1/coreset/{name}   extract a shard-local k′-coreset for cluster merge
//	POST /v1/refresh/{name}   bring a statement's caches up to date
//	POST /v1/insert/{table}   insert rows into a table
//	POST /v1/delete/{table}   delete rows from a table
//	POST /v1/admin/snapshot   persist the database, prune the WAL
//	GET  /healthz             liveness
//	GET  /metrics             service counters (admission, traffic, WAL)
//
// Responses are the library's own JSON forms (diversification.Response,
// RefreshInfo, Metrics, SnapshotInfo). Errors are {"error": ..., "field":
// ...} with the status mapping: invalid arguments 400, unknown statement
// or table 404, snapshot of a non-durable engine 409, no candidate set
// 422, admission queue full 429, deadline exceeded 504, anything else 500.
package httpapi

import (
	"encoding/json"
	"fmt"

	diversification "repro"
)

// QueryRequest is the wire form of one query against a named statement.
// Pointer fields are per-request overrides: absent means "use the
// statement's prepared binding", mirroring diversification.Request.
type QueryRequest struct {
	// Problem is "diversify" (default), "decide", "count", "in-top-r" or
	// "rank".
	Problem string `json:"problem,omitempty"`

	K         *int     `json:"k,omitempty"`
	Lambda    *float64 `json:"lambda,omitempty"`
	Objective *string  `json:"objective,omitempty"` // "max-sum" | "max-min" | "mono"
	Algorithm *string  `json:"algorithm,omitempty"` // "auto" | "exact" | "greedy" | "local-search" | "online"
	Bound     *float64 `json:"bound,omitempty"`
	Rank      *int     `json:"rank,omitempty"`

	// Set is the candidate set for in-top-r and rank: rows of attribute
	// values in schema order.
	Set [][]interface{} `json:"set,omitempty"`

	// RelevanceAttr names a numeric attribute used as δrel for this
	// request; DistanceAttr names an attribute whose inequality defines a
	// 0/1 δdis. They are the wire stand-ins for the in-process
	// WithRelevance/WithDistance closures and, like them, bypass the
	// statement's shared score plane.
	RelevanceAttr string `json:"relevance_attr,omitempty"`
	DistanceAttr  string `json:"distance_attr,omitempty"`

	// Constraints replace the statement's compatibility constraints (Cm
	// syntax) for this request.
	Constraints []string `json:"constraints,omitempty"`

	// TimeoutMillis bounds this request (queue wait + solve); 0 defers to
	// the server's default deadline.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`

	// Explain asks the response to include the plan's human-readable
	// resolution report. Off by default — it is per-request allocation and
	// payload most callers never read.
	Explain bool `json:"explain,omitempty"`
}

// ToRequest lowers the wire form onto the library's typed Request.
func (qr QueryRequest) ToRequest() (diversification.Request, error) {
	var req diversification.Request
	problem, err := diversification.ParseProblem(qr.Problem)
	if err != nil {
		return req, err
	}
	req.Problem = problem
	req.K = qr.K
	req.Lambda = qr.Lambda
	req.Bound = qr.Bound
	req.Rank = qr.Rank
	if qr.Objective != nil {
		obj, err := diversification.ParseObjective(*qr.Objective)
		if err != nil {
			return req, err
		}
		req.Objective = &obj
	}
	if qr.Algorithm != nil {
		alg, err := diversification.ParseAlgorithm(*qr.Algorithm)
		if err != nil {
			return req, err
		}
		req.Algorithm = &alg
	}
	if qr.Set != nil {
		set, err := decodeSet(qr.Set)
		if err != nil {
			return req, err
		}
		req.Set = set
	}
	if qr.RelevanceAttr != "" {
		req.Options = append(req.Options, diversification.WithRelevance(diversification.AttrRelevance(qr.RelevanceAttr)))
	}
	if qr.DistanceAttr != "" {
		req.Options = append(req.Options, diversification.WithDistance(diversification.AttrDistance(qr.DistanceAttr)))
	}
	if qr.Constraints != nil {
		req.Options = append(req.Options, diversification.WithConstraints(qr.Constraints...))
	}
	req.Explain = qr.Explain
	return req, nil
}

// CoresetRequest is the wire form of POST /v1/coreset/{name}: a cluster
// coordinator asking a shard for its k′-coreset. Pointer fields override
// the statement's prepared bindings exactly like QueryRequest; Slack sets
// k′ = k + slack (absent defers to the shard's default of slack = k).
type CoresetRequest struct {
	K         *int     `json:"k,omitempty"`
	Lambda    *float64 `json:"lambda,omitempty"`
	Objective *string  `json:"objective,omitempty"` // "max-sum" | "max-min" ("mono" is refused: not coreset-mergeable)
	Slack     *int     `json:"slack,omitempty"`

	// TimeoutMillis bounds the shard-side extraction; 0 defers to the
	// shard's default deadline.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
}

// ToSpec lowers the wire form onto the library's typed CoresetSpec.
func (cr CoresetRequest) ToSpec() (diversification.CoresetSpec, error) {
	spec := diversification.CoresetSpec{K: cr.K, Lambda: cr.Lambda, Slack: cr.Slack}
	if cr.Objective != nil {
		obj, err := diversification.ParseObjective(*cr.Objective)
		if err != nil {
			return spec, err
		}
		spec.Objective = &obj
	}
	return spec, nil
}

// NormalizeRows applies the wire scalar normalization to JSON-decoded rows
// of attribute values: json.Number and exactly-integral float64 values
// become int64 under the library's single int/float boundary rule. A
// cluster coordinator uses it to restore shard coreset rows to the value
// types the engine stores, so re-inserted rows compare equal to the
// originals.
func NormalizeRows(rows [][]interface{}) ([][]interface{}, error) {
	return decodeSet(rows)
}

// decodeSet normalizes JSON-decoded candidate rows: json.Number values
// (the handler decodes bodies with UseNumber) go through the library's
// shared int/float boundary rule, so integer attributes compare equal to
// the integers stored in the database. Failures are typed ArgErrors on
// the "set" field — they are user input, and must map to 400, not 500.
func decodeSet(set [][]interface{}) ([][]interface{}, error) {
	out := make([][]interface{}, len(set))
	for i, row := range set {
		out[i] = make([]interface{}, len(row))
		for j, v := range row {
			switch x := v.(type) {
			case json.Number:
				n, err := diversification.JSONNumberValue(x)
				if err != nil {
					return nil, &diversification.ArgError{Field: "set", Reason: fmt.Sprintf("row %d column %d: %v", i, j, err)}
				}
				out[i][j] = n
			case float64:
				// A body decoded without UseNumber: recover integers that
				// survived the float round trip exactly.
				if f := x; f == float64(int64(f)) {
					out[i][j] = int64(f)
				} else {
					out[i][j] = f
				}
			case string, bool, int64:
				out[i][j] = x
			default:
				return nil, &diversification.ArgError{Field: "set", Reason: fmt.Sprintf("row %d column %d: unsupported value %v (want a scalar)", i, j, v)}
			}
		}
	}
	return out, nil
}

// MutateRequest is the wire form of POST /v1/insert/{table} and
// /v1/delete/{table}: rows of attribute values in schema order. The same
// scalar normalization as candidate sets applies, so integers survive the
// JSON round trip as integers.
type MutateRequest struct {
	Rows [][]interface{} `json:"rows"`
}

// MutateBody is the response to a mutation: how many tuples actually
// changed (duplicate inserts and misses don't count) and the database
// generation after the batch — the watermark a caller can poll refreshes
// or replicate against.
type MutateBody struct {
	Applied    int    `json:"applied"`
	Generation uint64 `json:"generation"`
}

// ErrorBody is the wire form of a failed request.
type ErrorBody struct {
	Error string `json:"error"`
	// Field names the invalid argument when the failure was a typed
	// ArgError; empty otherwise.
	Field string `json:"field,omitempty"`
}

// HealthBody is the wire form of GET /healthz: Status is "ok" for full
// health or "degraded" when the engine is serving read-only after a WAL
// failure (solves fine, mutations refused until the recovery probe
// restores write mode).
type HealthBody struct {
	Status string `json:"status"`
	// ReadOnly mirrors Status == "degraded" for machine consumption.
	ReadOnly bool `json:"read_only,omitempty"`
}
