package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	diversification "repro"
)

// StatusError is a non-2xx response from the server, carrying the decoded
// error body when one was present.
type StatusError struct {
	Code int
	Body ErrorBody
}

// Error renders "httpapi: 400 Bad Request: diversification: invalid k: ...".
func (e *StatusError) Error() string {
	msg := e.Body.Error
	if msg == "" {
		msg = "(no error body)"
	}
	return fmt.Sprintf("httpapi: %d %s: %s", e.Code, http.StatusText(e.Code), msg)
}

// Client talks the diversification wire protocol to a divserve instance.
// The zero HTTPClient means http.DefaultClient; BaseURL is the server
// root, e.g. "http://127.0.0.1:8080".
type Client struct {
	BaseURL    string
	HTTPClient *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do issues one request and decodes the JSON response into out (unless
// out is nil). Non-2xx statuses decode into a StatusError.
func (c *Client) do(ctx context.Context, method, path string, body, out interface{}) error {
	var reader io.Reader
	if body != nil {
		payload, err := json.Marshal(body)
		if err != nil {
			return err
		}
		reader = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, strings.TrimSuffix(c.BaseURL, "/")+path, reader)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	// Responses are not bounded the way request bodies are (a wide
	// selection or an explain report can be large); cap defensively but
	// detect the cut instead of handing a truncated document to the JSON
	// decoder.
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes+1))
	if err != nil {
		return err
	}
	if len(raw) > maxResponseBytes {
		return fmt.Errorf("httpapi: response exceeds %d bytes", maxResponseBytes)
	}
	if resp.StatusCode/100 != 2 {
		serr := &StatusError{Code: resp.StatusCode}
		_ = json.Unmarshal(raw, &serr.Body)
		return serr
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

// Query runs a QueryRequest against the named statement.
func (c *Client) Query(ctx context.Context, name string, qr QueryRequest) (*diversification.Response, error) {
	var resp diversification.Response
	if err := c.do(ctx, http.MethodPost, "/v1/query/"+name, qr, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Refresh brings the named statement's caches up to date.
func (c *Client) Refresh(ctx context.Context, name string) (diversification.RefreshInfo, error) {
	var info diversification.RefreshInfo
	err := c.do(ctx, http.MethodPost, "/v1/refresh/"+name, nil, &info)
	return info, err
}

// Insert adds rows (attribute values in schema order) to a table.
func (c *Client) Insert(ctx context.Context, table string, rows [][]interface{}) (MutateBody, error) {
	var mb MutateBody
	err := c.do(ctx, http.MethodPost, "/v1/insert/"+table, MutateRequest{Rows: rows}, &mb)
	return mb, err
}

// Delete removes rows (attribute values in schema order) from a table.
func (c *Client) Delete(ctx context.Context, table string, rows [][]interface{}) (MutateBody, error) {
	var mb MutateBody
	err := c.do(ctx, http.MethodPost, "/v1/delete/"+table, MutateRequest{Rows: rows}, &mb)
	return mb, err
}

// Snapshot asks the server to persist its database and prune the WAL.
func (c *Client) Snapshot(ctx context.Context) (diversification.SnapshotInfo, error) {
	var si diversification.SnapshotInfo
	err := c.do(ctx, http.MethodPost, "/v1/admin/snapshot", nil, &si)
	return si, err
}

// Metrics fetches the service counters.
func (c *Client) Metrics(ctx context.Context) (diversification.Metrics, error) {
	var m diversification.Metrics
	err := c.do(ctx, http.MethodGet, "/metrics", nil, &m)
	return m, err
}

// Healthz reports whether the server answers its liveness probe.
func (c *Client) Healthz(ctx context.Context) error {
	var h HealthBody
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &h); err != nil {
		return err
	}
	if h.Status != "ok" {
		return fmt.Errorf("httpapi: health status %q", h.Status)
	}
	return nil
}
