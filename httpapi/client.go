package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptrace"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	diversification "repro"
)

// StatusError is a non-2xx response from the server, carrying the decoded
// error body when one was present and the server's Retry-After advice on
// 429/503.
type StatusError struct {
	Code int
	Body ErrorBody
	// RetryAfter is the parsed Retry-After header (zero when absent): how
	// long the server asks the client to wait before retrying.
	RetryAfter time.Duration
}

// Error renders "httpapi: 400 Bad Request: diversification: invalid k: ...".
func (e *StatusError) Error() string {
	msg := e.Body.Error
	if msg == "" {
		msg = "(no error body)"
	}
	return fmt.Sprintf("httpapi: %d %s: %s", e.Code, http.StatusText(e.Code), msg)
}

// RetryPolicy tunes the client's capped exponential backoff. The zero
// value means: 3 attempts, 50ms base delay, 2s cap. MaxAttempts 1
// disables retries; a negative BaseDelay retries immediately.
type RetryPolicy struct {
	MaxAttempts int
	BaseDelay   time.Duration
	MaxDelay    time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay == 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = 2 * time.Second
	}
	return p
}

// delay computes the wait before retry number attempt (0-based), honoring
// the server's Retry-After advice when the failure carried one and
// applying full jitter otherwise — a fleet of clients retrying a
// recovering server must not arrive in lockstep.
func (p RetryPolicy) delay(attempt int, err error) time.Duration {
	var serr *StatusError
	if errors.As(err, &serr) && serr.RetryAfter > 0 {
		if serr.RetryAfter > p.MaxDelay {
			return p.MaxDelay
		}
		return serr.RetryAfter
	}
	if p.BaseDelay < 0 {
		return 0
	}
	d := p.BaseDelay << attempt
	if d > p.MaxDelay || d <= 0 {
		d = p.MaxDelay
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// defaultClientTimeout bounds requests whose context carries no deadline,
// so a hung server cannot block a caller forever.
const defaultClientTimeout = 30 * time.Second

// latencyWindow is the ring of observed call latencies feeding the hedge
// threshold.
const latencyWindow = 64

// sharedTransport is the transport behind every Client whose HTTPClient is
// nil. Unlike http.DefaultTransport's 2 idle conns per host, it keeps a
// fan-out-sized idle pool: a cluster coordinator issues S concurrent calls
// per request to the same small set of shard hosts, and recycling those
// connections instead of re-dialing is the difference between a stable
// ephemeral-port footprint and churning one port per shard call.
var sharedTransport = &http.Transport{
	Proxy: http.ProxyFromEnvironment,
	DialContext: (&net.Dialer{
		Timeout:   30 * time.Second,
		KeepAlive: 30 * time.Second,
	}).DialContext,
	ForceAttemptHTTP2:     true,
	MaxIdleConns:          256,
	MaxIdleConnsPerHost:   64,
	IdleConnTimeout:       90 * time.Second,
	TLSHandshakeTimeout:   10 * time.Second,
	ExpectContinueTimeout: 1 * time.Second,
}

// sharedHTTPClient wraps sharedTransport; per-request deadlines come from
// contexts, so the client itself carries no timeout.
var sharedHTTPClient = &http.Client{Transport: sharedTransport}

// Client talks the diversification wire protocol to a divserve instance.
// The zero HTTPClient means a shared tuned transport (see sharedTransport);
// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
//
// Resilience: idempotent calls (Query, Refresh, Metrics, Healthz) are
// retried per Retry with capped exponential backoff plus jitter, honoring
// the server's Retry-After on 429/503. Mutations (Insert, Delete,
// Snapshot) retry only failures that prove the request was never applied —
// a refused connection, or a 429/503 rejection — keeping applied-counts
// exact. Setting HedgePercentile additionally hedges slow idempotent
// calls: when an attempt outlives that percentile of the observed latency
// window, a second concurrent attempt races it.
type Client struct {
	BaseURL    string
	HTTPClient *http.Client

	// DefaultTimeout bounds requests whose context has no deadline of its
	// own: zero means 30s, negative disables the bound.
	DefaultTimeout time.Duration

	// Retry tunes retries; the zero value retries idempotent calls 3 times
	// with 50ms..2s backoff.
	Retry RetryPolicy

	// HedgePercentile, in (0,1), enables hedging of idempotent calls at
	// that percentile of the observed latency window (e.g. 0.95). Zero
	// disables hedging.
	HedgePercentile float64
	// HedgeMinDelay floors the hedge threshold, and stands in for it until
	// the latency window has data (default 50ms).
	HedgeMinDelay time.Duration

	retries atomic.Int64
	hedges  atomic.Int64

	connsNew    atomic.Int64
	connsReused atomic.Int64

	latMu  sync.Mutex
	lats   []time.Duration
	latIdx int
}

// ClientStats counts the resilience machinery's interventions and the
// transport's connection economy.
type ClientStats struct {
	// Retries counts re-issued attempts (not first attempts).
	Retries int64 `json:"retries"`
	// Hedges counts hedged second attempts launched.
	Hedges int64 `json:"hedges"`
	// ConnsNew counts attempts served over a freshly dialed connection,
	// ConnsReused over one recycled from the idle pool. A healthy steady
	// state reuses nearly always; a rising ConnsNew under constant traffic
	// means the pool is undersized for the fan-out or the server is
	// closing connections.
	ConnsNew    int64 `json:"conns_new"`
	ConnsReused int64 `json:"conns_reused"`
}

// Stats snapshots the retry/hedge and connection-reuse counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Retries:     c.retries.Load(),
		Hedges:      c.hedges.Load(),
		ConnsNew:    c.connsNew.Load(),
		ConnsReused: c.connsReused.Load(),
	}
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return sharedHTTPClient
}

// withTimeout applies the default per-request timeout to contexts without
// a deadline of their own.
func (c *Client) withTimeout(ctx context.Context) (context.Context, context.CancelFunc) {
	if c.DefaultTimeout < 0 {
		return ctx, func() {}
	}
	if _, ok := ctx.Deadline(); ok {
		return ctx, func() {}
	}
	d := c.DefaultTimeout
	if d == 0 {
		d = defaultClientTimeout
	}
	return context.WithTimeout(ctx, d)
}

// observeLatency records a completed call in the hedge threshold window.
func (c *Client) observeLatency(d time.Duration) {
	c.latMu.Lock()
	defer c.latMu.Unlock()
	if len(c.lats) < latencyWindow {
		c.lats = append(c.lats, d)
		return
	}
	c.lats[c.latIdx] = d
	c.latIdx = (c.latIdx + 1) % latencyWindow
}

// hedgeDelay computes when a hedged second attempt fires: the configured
// percentile of the latency window, floored by HedgeMinDelay.
func (c *Client) hedgeDelay() time.Duration {
	min := c.HedgeMinDelay
	if min <= 0 {
		min = 50 * time.Millisecond
	}
	c.latMu.Lock()
	defer c.latMu.Unlock()
	if len(c.lats) == 0 {
		return min
	}
	sorted := append([]time.Duration(nil), c.lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(c.HedgePercentile * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	if d := sorted[idx]; d > min {
		return d
	}
	return min
}

// rtResult is one transport attempt's outcome.
type rtResult struct {
	status int
	raw    []byte
	err    error
}

// roundTrip issues one HTTP request and reads the full (bounded) body.
func (c *Client) roundTrip(ctx context.Context, method, path string, payload []byte) rtResult {
	var reader io.Reader
	if payload != nil {
		reader = bytes.NewReader(payload)
	}
	trace := &httptrace.ClientTrace{
		GotConn: func(info httptrace.GotConnInfo) {
			if info.Reused {
				c.connsReused.Add(1)
			} else {
				c.connsNew.Add(1)
			}
		},
	}
	req, err := http.NewRequestWithContext(httptrace.WithClientTrace(ctx, trace), method, strings.TrimSuffix(c.BaseURL, "/")+path, reader)
	if err != nil {
		return rtResult{err: err}
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return rtResult{err: err}
	}
	defer resp.Body.Close()
	// Responses are not bounded the way request bodies are (a wide
	// selection or an explain report can be large); cap defensively but
	// detect the cut instead of handing a truncated document to the JSON
	// decoder.
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes+1))
	if err != nil {
		return rtResult{err: err}
	}
	if len(raw) > maxResponseBytes {
		return rtResult{err: fmt.Errorf("httpapi: response exceeds %d bytes", maxResponseBytes)}
	}
	if resp.StatusCode/100 != 2 {
		serr := &StatusError{Code: resp.StatusCode}
		_ = json.Unmarshal(raw, &serr.Body)
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			serr.RetryAfter = parseRetryAfter(ra, time.Now())
		}
		return rtResult{status: resp.StatusCode, err: serr}
	}
	return rtResult{status: resp.StatusCode, raw: raw}
}

// parseRetryAfter parses a Retry-After header value per RFC 9110 §10.2.3:
// either delay-seconds or an HTTP-date (any of the three date formats
// http.ParseTime accepts). A date in the past — or on the boundary —
// means "retry now" and yields zero, same as an absent header: the retry
// policy then falls back to its own backoff. Unparseable values also
// yield zero rather than an error; the header is advice, not protocol.
func parseRetryAfter(value string, now time.Time) time.Duration {
	if secs, err := strconv.Atoi(value); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(value); err == nil {
		if d := at.Sub(now); d > 0 {
			return d
		}
	}
	return 0
}

// attempt runs one logical attempt: a plain round trip, or — for
// idempotent calls with hedging enabled — a round trip raced against a
// hedged twin launched at the hedge threshold. First completion wins; if
// the first completion failed while the twin is still in flight, the twin
// gets to finish and override.
func (c *Client) attempt(ctx context.Context, method, path string, payload []byte, idempotent bool) rtResult {
	if !idempotent || c.HedgePercentile <= 0 {
		return c.roundTrip(ctx, method, path, payload)
	}
	results := make(chan rtResult, 2)
	go func() { results <- c.roundTrip(ctx, method, path, payload) }()
	timer := time.NewTimer(c.hedgeDelay())
	defer timer.Stop()
	select {
	case r := <-results:
		return r
	case <-timer.C:
	}
	c.hedges.Add(1)
	go func() { results <- c.roundTrip(ctx, method, path, payload) }()
	r := <-results
	if r.err != nil {
		// The loser may still succeed; with both attempts failed, report
		// the first failure.
		if r2 := <-results; r2.err == nil {
			return r2
		}
	}
	return r
}

// retryable reports whether err may be retried for the given call class.
// Idempotent calls retry any transport failure and the retryable statuses;
// mutations retry only failures that prove the request was never applied:
// a refused connection (the server never saw it) or a 429/503 (the
// admission gate or read-only check rejected it before any mutation ran).
func retryable(err error, idempotent bool) bool {
	var serr *StatusError
	if errors.As(err, &serr) {
		return serr.Code == http.StatusTooManyRequests || serr.Code == http.StatusServiceUnavailable
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if idempotent {
		return true // any transport failure: the call has no side effects
	}
	return errors.Is(err, syscall.ECONNREFUSED)
}

// do issues one request with the client's resilience machinery and
// decodes the JSON response into out (unless out is nil). Non-2xx
// statuses decode into a StatusError.
func (c *Client) do(ctx context.Context, method, path string, body, out interface{}, idempotent bool) error {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return err
		}
	}
	ctx, cancel := c.withTimeout(ctx)
	defer cancel()
	policy := c.Retry.withDefaults()
	var res rtResult
	for attempt := 0; ; attempt++ {
		start := time.Now()
		res = c.attempt(ctx, method, path, payload, idempotent)
		if res.err == nil {
			c.observeLatency(time.Since(start))
			break
		}
		if attempt+1 >= policy.MaxAttempts || !retryable(res.err, idempotent) || ctx.Err() != nil {
			return res.err
		}
		select {
		case <-time.After(policy.delay(attempt, res.err)):
		case <-ctx.Done():
			return res.err
		}
		c.retries.Add(1)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(res.raw, out)
}

// Query runs a QueryRequest against the named statement.
func (c *Client) Query(ctx context.Context, name string, qr QueryRequest) (*diversification.Response, error) {
	var resp diversification.Response
	if err := c.do(ctx, http.MethodPost, "/v1/query/"+name, qr, &resp, true); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Coreset asks the server for the named statement's shard-local
// k′-coreset (see diversification.Coreset). Row values are normalized back
// through the wire scalar rule, so re-inserting them into a coordinator
// engine reproduces the shard's stored values exactly.
func (c *Client) Coreset(ctx context.Context, name string, cr CoresetRequest) (*diversification.Coreset, error) {
	var cs diversification.Coreset
	if err := c.do(ctx, http.MethodPost, "/v1/coreset/"+name, cr, &cs, true); err != nil {
		return nil, err
	}
	rows, err := NormalizeRows(cs.Rows)
	if err != nil {
		return nil, err
	}
	cs.Rows = rows
	return &cs, nil
}

// Refresh brings the named statement's caches up to date.
func (c *Client) Refresh(ctx context.Context, name string) (diversification.RefreshInfo, error) {
	var info diversification.RefreshInfo
	err := c.do(ctx, http.MethodPost, "/v1/refresh/"+name, nil, &info, true)
	return info, err
}

// Insert adds rows (attribute values in schema order) to a table.
func (c *Client) Insert(ctx context.Context, table string, rows [][]interface{}) (MutateBody, error) {
	var mb MutateBody
	err := c.do(ctx, http.MethodPost, "/v1/insert/"+table, MutateRequest{Rows: rows}, &mb, false)
	return mb, err
}

// Delete removes rows (attribute values in schema order) from a table.
func (c *Client) Delete(ctx context.Context, table string, rows [][]interface{}) (MutateBody, error) {
	var mb MutateBody
	err := c.do(ctx, http.MethodPost, "/v1/delete/"+table, MutateRequest{Rows: rows}, &mb, false)
	return mb, err
}

// Snapshot asks the server to persist its database and prune the WAL.
func (c *Client) Snapshot(ctx context.Context) (diversification.SnapshotInfo, error) {
	var si diversification.SnapshotInfo
	err := c.do(ctx, http.MethodPost, "/v1/admin/snapshot", nil, &si, false)
	return si, err
}

// Metrics fetches the service counters.
func (c *Client) Metrics(ctx context.Context) (diversification.Metrics, error) {
	var m diversification.Metrics
	err := c.do(ctx, http.MethodGet, "/metrics", nil, &m, true)
	return m, err
}

// Health fetches the liveness report, distinguishing a healthy server
// ("ok") from one serving read-only ("degraded").
func (c *Client) Health(ctx context.Context) (HealthBody, error) {
	var h HealthBody
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &h, true)
	return h, err
}

// Healthz reports whether the server answers its liveness probe with full
// (writable) health; a degraded server is an error carrying its status.
func (c *Client) Healthz(ctx context.Context) error {
	h, err := c.Health(ctx)
	if err != nil {
		return err
	}
	if h.Status != "ok" {
		return fmt.Errorf("httpapi: health status %q", h.Status)
	}
	return nil
}
