package httpapi

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	diversification "repro"
)

// chaosClient stands a Chaos-wrapped handler in front of the test service
// and returns a client with fast retry timing.
func chaosClient(t testing.TB, policy ChaosPolicy) (*Client, *diversification.Service) {
	t.Helper()
	svc := testService(t)
	srv := httptest.NewServer(Chaos(policy, NewHandler(svc)))
	t.Cleanup(srv.Close)
	return &Client{
		BaseURL:    srv.URL,
		HTTPClient: srv.Client(),
		Retry:      RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
	}, svc
}

func TestClientRetriesIdempotentOn503(t *testing.T) {
	client, _ := chaosClient(t, func(r *http.Request, n int) Fault {
		if n <= 2 {
			return Fault{Status: http.StatusServiceUnavailable}
		}
		return Fault{}
	})
	resp, err := client.Query(context.Background(), "catalog", QueryRequest{})
	if err != nil {
		t.Fatalf("query after two 503s: %v", err)
	}
	if resp.Selection == nil {
		t.Fatal("no selection in retried response")
	}
	if got := client.Stats().Retries; got != 2 {
		t.Fatalf("Stats().Retries = %d, want 2", got)
	}
}

func TestClientRetriesIdempotentOnDroppedConnection(t *testing.T) {
	client, _ := chaosClient(t, func(r *http.Request, n int) Fault {
		return Fault{Drop: n == 1}
	})
	if _, err := client.Query(context.Background(), "catalog", QueryRequest{}); err != nil {
		t.Fatalf("query after dropped connection: %v", err)
	}
	if got := client.Stats().Retries; got != 1 {
		t.Fatalf("Stats().Retries = %d, want 1", got)
	}
}

// TestMutationNotRetriedOnDroppedConnection pins the applied-counts-exact
// contract: a connection that dies mid-request proves nothing about whether
// the mutation ran, so the client must not re-issue it.
func TestMutationNotRetriedOnDroppedConnection(t *testing.T) {
	var requests atomic.Int64
	client, _ := chaosClient(t, func(r *http.Request, n int) Fault {
		requests.Add(1)
		return Fault{Drop: true}
	})
	_, err := client.Insert(context.Background(), "catalog", [][]interface{}{{"drum", "toy", 15}})
	if err == nil {
		t.Fatal("insert over a dropped connection succeeded")
	}
	if got := requests.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want 1 (no retry)", got)
	}
	if got := client.Stats().Retries; got != 0 {
		t.Fatalf("Stats().Retries = %d, want 0", got)
	}
}

// TestMutationRetriedOn503 is the provably-not-applied case: a 503 from
// the read-only gate (or a 429 from admission) rejects before any mutation
// runs, so re-issuing is safe and the row lands exactly once.
func TestMutationRetriedOn503(t *testing.T) {
	client, svc := chaosClient(t, func(r *http.Request, n int) Fault {
		if n == 1 {
			return Fault{Status: http.StatusServiceUnavailable, RetryAfter: 1}
		}
		return Fault{}
	})
	// RetryAfter: 1s would dominate the test; cap it below the policy max.
	client.Retry.MaxDelay = 5 * time.Millisecond
	before := svc.Engine().Generation()
	mb, err := client.Insert(context.Background(), "catalog", [][]interface{}{{"drum", "toy", 15}})
	if err != nil {
		t.Fatalf("insert after 503: %v", err)
	}
	if mb.Applied != 1 {
		t.Fatalf("Applied = %d, want 1", mb.Applied)
	}
	if got := client.Stats().Retries; got != 1 {
		t.Fatalf("Stats().Retries = %d, want 1", got)
	}
	if got := svc.Engine().Generation(); got != before+1 {
		t.Fatalf("generation = %d, want %d (exactly one insert applied)", got, before+1)
	}
}

func TestStatusErrorCarriesRetryAfter(t *testing.T) {
	client, _ := chaosClient(t, func(r *http.Request, n int) Fault {
		return Fault{Status: http.StatusTooManyRequests, RetryAfter: 7}
	})
	client.Retry = RetryPolicy{MaxAttempts: 1}
	_, err := client.Query(context.Background(), "catalog", QueryRequest{})
	var serr *StatusError
	if !errors.As(err, &serr) {
		t.Fatalf("got %v, want *StatusError", err)
	}
	if serr.Code != http.StatusTooManyRequests || serr.RetryAfter != 7*time.Second {
		t.Fatalf("StatusError = code %d retry-after %s, want 429 / 7s", serr.Code, serr.RetryAfter)
	}
}

func TestClientGivesUpAfterMaxAttempts(t *testing.T) {
	var requests atomic.Int64
	client, _ := chaosClient(t, func(r *http.Request, n int) Fault {
		requests.Add(1)
		return Fault{Status: http.StatusServiceUnavailable}
	})
	client.Retry = RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	_, err := client.Query(context.Background(), "catalog", QueryRequest{})
	var serr *StatusError
	if !errors.As(err, &serr) || serr.Code != http.StatusServiceUnavailable {
		t.Fatalf("got %v, want 503 StatusError", err)
	}
	if got := requests.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3", got)
	}
}

func TestClientNoRetryOn400(t *testing.T) {
	client, _ := testClient(t)
	client.Retry = RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond}
	k := -1
	_, err := client.Query(context.Background(), "catalog", QueryRequest{K: &k})
	var serr *StatusError
	if !errors.As(err, &serr) || serr.Code != http.StatusBadRequest {
		t.Fatalf("got %v, want 400 StatusError", err)
	}
	if got := client.Stats().Retries; got != 0 {
		t.Fatalf("Stats().Retries = %d, want 0 (client errors are not retryable)", got)
	}
}

func TestClientDefaultTimeout(t *testing.T) {
	// The delay outlives the client timeout by far, but stays short: the
	// server only notices the abandoned request when the delay expires, and
	// the httptest cleanup waits for it.
	client, _ := chaosClient(t, func(r *http.Request, n int) Fault {
		return Fault{Delay: 2 * time.Second}
	})
	client.Retry = RetryPolicy{MaxAttempts: 1}
	client.DefaultTimeout = 50 * time.Millisecond
	start := time.Now()
	// Background context carries no deadline: the client's own bound must
	// keep a hung server from blocking forever.
	_, err := client.Query(context.Background(), "catalog", QueryRequest{})
	if err == nil {
		t.Fatal("query against a hung server succeeded")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("took %s: default timeout did not bound the call", elapsed)
	}
}

func TestHedgedQueryBeatsSlowFirstAttempt(t *testing.T) {
	// The first attempt stalls well past the hedge threshold; the hedged
	// twin passes through untouched and must win the race.
	client, _ := chaosClient(t, func(r *http.Request, n int) Fault {
		if n == 1 {
			return Fault{Delay: time.Second}
		}
		return Fault{}
	})
	client.HedgePercentile = 0.95
	client.HedgeMinDelay = 10 * time.Millisecond
	start := time.Now()
	resp, err := client.Query(context.Background(), "catalog", QueryRequest{})
	if err != nil {
		t.Fatalf("hedged query: %v", err)
	}
	if resp.Selection == nil {
		t.Fatal("no selection in hedged response")
	}
	if elapsed := time.Since(start); elapsed >= time.Second {
		t.Fatalf("took %s: the hedge did not overtake the stalled attempt", elapsed)
	}
	if got := client.Stats().Hedges; got != 1 {
		t.Fatalf("Stats().Hedges = %d, want 1", got)
	}
}

// TestHedgeSurvivesFailedFirstCompletion exercises the
// failed-first-waits-for-twin path: the stalled first attempt is dropped
// (EOF) while the hedge succeeds, and the call must still return the
// hedge's answer.
func TestHedgeSurvivesFailedFirstCompletion(t *testing.T) {
	client, _ := chaosClient(t, func(r *http.Request, n int) Fault {
		if n == 1 {
			return Fault{Delay: 100 * time.Millisecond, Drop: true}
		}
		return Fault{Delay: 300 * time.Millisecond}
	})
	client.Retry = RetryPolicy{MaxAttempts: 1}
	client.HedgePercentile = 0.95
	client.HedgeMinDelay = 10 * time.Millisecond
	resp, err := client.Query(context.Background(), "catalog", QueryRequest{})
	if err != nil {
		t.Fatalf("query: %v (the twin's success should have overridden the drop)", err)
	}
	if resp.Selection == nil {
		t.Fatal("no selection in response")
	}
}

func TestHealthReportsDegraded(t *testing.T) {
	// A handcrafted handler standing in for a degraded server: the client
	// contract is about parsing, not about how the engine got degraded
	// (readonly_test.go covers that end).
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"status":"degraded","read_only":true}`))
	}))
	t.Cleanup(srv.Close)
	client := &Client{BaseURL: srv.URL, HTTPClient: srv.Client()}
	h, err := client.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "degraded" || !h.ReadOnly {
		t.Fatalf("Health = %+v, want degraded/read-only", h)
	}
	if err := client.Healthz(context.Background()); err == nil {
		t.Fatal("Healthz on a degraded server returned nil")
	}
}
