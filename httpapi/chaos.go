package httpapi

import (
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// Fault describes what the chaos middleware does to one request: delay
// it, replace its response with an error status, or drop the connection
// mid-flight. The zero Fault passes the request through untouched.
type Fault struct {
	// Delay sleeps before the request is handled (composes with the other
	// fields).
	Delay time.Duration
	// Status, when non-zero, short-circuits the handler with this status
	// and an empty body — the "load balancer answered for a dead backend"
	// failure.
	Status int
	// RetryAfter sets a Retry-After header (seconds) on a Status fault.
	RetryAfter int
	// Drop severs the connection without writing a response — the
	// "network ate it" failure the client sees as an EOF/reset. Takes
	// precedence over Status.
	Drop bool
}

// ChaosPolicy decides the fault for the n-th request (1-based) the
// middleware has seen. Policies must be safe for concurrent use.
type ChaosPolicy func(r *http.Request, n int) Fault

// Chaos wraps next with fault injection for resilience tests: the network
// half of the harness whose storage half is internal/faultfs. It is test
// middleware — composing it into a production stack is on you.
func Chaos(policy ChaosPolicy, next http.Handler) http.Handler {
	var n atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f := policy(r, int(n.Add(1)))
		if f.Delay > 0 {
			select {
			case <-time.After(f.Delay):
			case <-r.Context().Done():
				return
			}
		}
		switch {
		case f.Drop:
			if hj, ok := w.(http.Hijacker); ok {
				if conn, _, err := hj.Hijack(); err == nil {
					conn.Close()
					return
				}
			}
			// No hijack support (e.g. httptest.ResponseRecorder through
			// a non-server pipe): panicking with the sentinel is how
			// net/http aborts a response without writing one.
			panic(http.ErrAbortHandler)
		case f.Status != 0:
			if f.RetryAfter > 0 {
				w.Header().Set("Retry-After", strconv.Itoa(f.RetryAfter))
			}
			w.WriteHeader(f.Status)
		default:
			next.ServeHTTP(w, r)
		}
	})
}
