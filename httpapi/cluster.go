package httpapi

import (
	"context"
	"errors"
	"net/http"

	diversification "repro"
)

// ClusterBackend is what a cluster coordinator must implement to be served
// over the same wire protocol as a single-engine Service. It lives here —
// not in internal/cluster — so the coordinator can depend on httpapi for
// its shard clients without an import cycle: cluster implements this
// interface, cmd/divserve wires the two together.
//
// The contract mirrors NewHandler's routes: Do fans a query out and merges
// coresets, Refresh/Mutate/Snapshot fan control-plane calls to every (or
// the owning) shard, Metrics reports the coordinator's own counters with a
// populated Cluster block, Health aggregates shard liveness.
type ClusterBackend interface {
	Do(ctx context.Context, name string, qr QueryRequest) (*diversification.Response, error)
	Refresh(ctx context.Context, name string) (diversification.RefreshInfo, error)
	Mutate(ctx context.Context, table string, rows [][]interface{}, del bool) (MutateBody, error)
	Snapshot(ctx context.Context) (diversification.SnapshotInfo, error)
	Metrics() diversification.Metrics
	Health(ctx context.Context) HealthBody
}

// NewClusterHandler serves the diversification wire protocol from a
// cluster coordinator. Routes and status mapping match NewHandler, so
// clients (cmd/divquery, httpapi.Client) talk to a coordinator and a
// single engine identically; /v1/coreset is deliberately absent — the
// coordinator is the consumer of coresets, not a producer.
func NewClusterHandler(b ClusterBackend) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, b.Health(r.Context()))
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, b.Metrics())
	})
	mux.HandleFunc("POST /v1/query/{name}", func(w http.ResponseWriter, r *http.Request) {
		var qr QueryRequest
		if !readJSON(w, r, &qr) {
			return
		}
		ctx, cancel := requestContext(r.Context(), qr.TimeoutMillis)
		defer cancel()
		resp, err := b.Do(ctx, r.PathValue("name"), qr)
		if err != nil {
			writeClusterError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /v1/refresh/{name}", func(w http.ResponseWriter, r *http.Request) {
		info, err := b.Refresh(r.Context(), r.PathValue("name"))
		if err != nil {
			writeClusterError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, info)
	})
	mux.HandleFunc("POST /v1/insert/{table}", clusterMutateHandler(b, false))
	mux.HandleFunc("POST /v1/delete/{table}", clusterMutateHandler(b, true))
	mux.HandleFunc("POST /v1/admin/snapshot", func(w http.ResponseWriter, r *http.Request) {
		info, err := b.Snapshot(r.Context())
		if err != nil {
			writeClusterError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, info)
	})
	return mux
}

// clusterMutateHandler decodes a mutation batch and hands the normalized
// rows to the backend, which routes each row to its owning shard.
func clusterMutateHandler(b ClusterBackend, del bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var mr MutateRequest
		if !readJSON(w, r, &mr) {
			return
		}
		if len(mr.Rows) == 0 {
			writeClusterError(w, &diversification.ArgError{Field: "rows", Reason: "mutation needs at least one row"})
			return
		}
		rows, err := decodeSet(mr.Rows)
		if err != nil {
			writeClusterError(w, err)
			return
		}
		mb, err := b.Mutate(r.Context(), r.PathValue("table"), rows, del)
		if err != nil {
			writeClusterError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, mb)
	}
}

// writeClusterError maps coordinator failures onto the wire. Shard-side
// failures arrive as StatusErrors from the shard clients and are forwarded
// with their original status — an unknown statement is 404 whether one
// engine or eight said so; everything else takes the standard single-engine
// mapping.
func writeClusterError(w http.ResponseWriter, err error) {
	var serr *StatusError
	if errors.As(err, &serr) {
		if serr.RetryAfter > 0 {
			w.Header().Set("Retry-After", "1")
		}
		body := serr.Body
		if body.Error == "" {
			body.Error = err.Error()
		}
		writeJSON(w, serr.Code, body)
		return
	}
	writeError(w, err)
}
