package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"time"

	diversification "repro"
)

// maxBodyBytes bounds a request body: queries are small control messages,
// and a facade serving public traffic must not buffer arbitrary input.
const maxBodyBytes = 1 << 20

// maxResponseBytes bounds what the client buffers of a response — far
// looser than the request bound, since selections and explain reports
// have no small-message guarantee.
const maxResponseBytes = 64 << 20

// NewHandler serves the diversification wire protocol from svc. Routing
// uses the standard library mux only, so the facade composes under any
// outer middleware stack.
func NewHandler(svc *diversification.Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		h := HealthBody{Status: "ok"}
		if svc.Engine().ReadOnly() {
			// Still alive and serving queries — degraded says "stop
			// sending writes", not "take me out of rotation".
			h = HealthBody{Status: "degraded", ReadOnly: true}
		}
		writeJSON(w, http.StatusOK, h)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Metrics())
	})
	mux.HandleFunc("POST /v1/query/{name}", func(w http.ResponseWriter, r *http.Request) {
		var qr QueryRequest
		if !readJSON(w, r, &qr) {
			return
		}
		req, err := qr.ToRequest()
		if err != nil {
			writeError(w, err)
			return
		}
		ctx, cancel := requestContext(r.Context(), qr.TimeoutMillis)
		defer cancel()
		resp, err := svc.Do(ctx, r.PathValue("name"), req)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /v1/coreset/{name}", func(w http.ResponseWriter, r *http.Request) {
		var cr CoresetRequest
		if !readJSON(w, r, &cr) {
			return
		}
		spec, err := cr.ToSpec()
		if err != nil {
			writeError(w, err)
			return
		}
		ctx, cancel := requestContext(r.Context(), cr.TimeoutMillis)
		defer cancel()
		cs, err := svc.Coreset(ctx, r.PathValue("name"), spec)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, cs)
	})
	mux.HandleFunc("POST /v1/refresh/{name}", func(w http.ResponseWriter, r *http.Request) {
		info, err := svc.Refresh(r.Context(), r.PathValue("name"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, info)
	})
	mux.HandleFunc("POST /v1/insert/{table}", mutateHandler(svc, false))
	mux.HandleFunc("POST /v1/delete/{table}", mutateHandler(svc, true))
	mux.HandleFunc("POST /v1/admin/snapshot", func(w http.ResponseWriter, r *http.Request) {
		info, err := svc.Snapshot(r.Context())
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, info)
	})
	return mux
}

// mutateHandler serves the insert/delete routes: decode rows, apply them
// through the engine (each batch row is one engine mutation — WAL-logged
// and journal-stamped before the loop moves on), and report the applied
// count plus the generation the batch ended at. A bad row aborts the batch
// mid-way; rows before it are already committed, which the generation in
// the error-free prefix semantics makes observable rather than hidden.
func mutateHandler(svc *diversification.Service, del bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var mr MutateRequest
		if !readJSON(w, r, &mr) {
			return
		}
		if len(mr.Rows) == 0 {
			writeError(w, &diversification.ArgError{Field: "rows", Reason: "mutation needs at least one row"})
			return
		}
		rows, err := decodeSet(mr.Rows)
		if err != nil {
			writeError(w, err)
			return
		}
		eng := svc.Engine()
		table := r.PathValue("table")
		before := eng.Generation()
		for _, row := range rows {
			if del {
				_, err = eng.Delete(table, row...)
			} else {
				err = eng.Insert(table, row...)
			}
			if err != nil {
				writeError(w, err)
				return
			}
		}
		after := eng.Generation()
		writeJSON(w, http.StatusOK, MutateBody{Applied: int(after - before), Generation: after})
	}
}

// requestContext applies the wire-level per-request timeout, if any.
func requestContext(ctx context.Context, timeoutMillis int64) (context.Context, context.CancelFunc) {
	if timeoutMillis <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, time.Duration(timeoutMillis)*time.Millisecond)
}

// readJSON decodes the request body into dst (empty bodies decode as the
// zero value, so a bare POST runs the statement's prepared bindings).
// Numbers decode as json.Number so candidate-set integers stay integers.
func readJSON(w http.ResponseWriter, r *http.Request, dst interface{}) bool {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorBody{Error: "reading body: " + err.Error()})
		return false
	}
	if len(body) == 0 {
		return true
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.UseNumber()
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorBody{Error: "decoding request: " + err.Error()})
		return false
	}
	return true
}

// writeError maps a service/library error onto the wire: typed argument
// errors and their field to 400, unknown statements and tables to 404,
// snapshotting a non-durable engine to 409, "no candidate set" to 422,
// admission rejection to 429 (with Retry-After), a read-only degraded
// engine to 503 (with Retry-After — the recovery probe usually restores
// write mode within seconds), deadlines to 504, everything else to 500.
func writeError(w http.ResponseWriter, err error) {
	var argErr *diversification.ArgError
	switch {
	case errors.As(err, &argErr):
		writeJSON(w, http.StatusBadRequest, ErrorBody{Error: err.Error(), Field: argErr.Field})
	case errors.Is(err, diversification.ErrUnknownStatement),
		errors.Is(err, diversification.ErrUnknownTable):
		writeJSON(w, http.StatusNotFound, ErrorBody{Error: err.Error()})
	case errors.Is(err, diversification.ErrNotDurable):
		writeJSON(w, http.StatusConflict, ErrorBody{Error: err.Error()})
	case errors.Is(err, diversification.ErrNoCandidate):
		writeJSON(w, http.StatusUnprocessableEntity, ErrorBody{Error: err.Error()})
	case errors.Is(err, diversification.ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, ErrorBody{Error: err.Error()})
	case errors.Is(err, diversification.ErrReadOnly):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, ErrorBody{Error: err.Error()})
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		writeJSON(w, http.StatusGatewayTimeout, ErrorBody{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, ErrorBody{Error: err.Error()})
	}
}

func writeJSON(w http.ResponseWriter, status int, body interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(body)
}
