package httpapi

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestParseRetryAfter pins both RFC 9110 §10.2.3 forms of the header:
// delay-seconds and HTTP-date (all three date formats http.ParseTime
// accepts), plus the garbage/past-date cases that must fall back to zero.
func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name, value string
		want        time.Duration
	}{
		{"delay-seconds", "7", 7 * time.Second},
		{"delay-zero", "0", 0},
		{"delay-negative", "-3", 0},
		{"http-date-imf-fixdate", now.Add(30 * time.Second).Format(http.TimeFormat), 30 * time.Second},
		{"http-date-rfc850", now.Add(2 * time.Minute).Format("Monday, 02-Jan-06 15:04:05 GMT"), 2 * time.Minute},
		{"http-date-asctime", now.Add(45 * time.Second).Format(time.ANSIC), 45 * time.Second},
		{"http-date-past", now.Add(-time.Hour).Format(http.TimeFormat), 0},
		{"http-date-now", now.Format(http.TimeFormat), 0},
		{"garbage", "soon", 0},
		{"empty", "", 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := parseRetryAfter(tc.value, now)
			// Date forms lose sub-second precision to the wire format;
			// compare at second granularity.
			if got.Round(time.Second) != tc.want {
				t.Fatalf("parseRetryAfter(%q) = %s, want %s", tc.value, got, tc.want)
			}
		})
	}
}

// TestClientHonorsHTTPDateRetryAfter drives the date form end to end: a
// 503 carrying an HTTP-date Retry-After must surface as a non-zero
// StatusError.RetryAfter, not silently parse to zero and defeat the
// server's backoff advice.
func TestClientHonorsHTTPDateRetryAfter(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", time.Now().Add(30*time.Second).UTC().Format(http.TimeFormat))
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	client := &Client{
		BaseURL:    srv.URL,
		HTTPClient: srv.Client(),
		Retry:      RetryPolicy{MaxAttempts: 1},
	}
	_, err := client.Query(context.Background(), "catalog", QueryRequest{})
	var serr *StatusError
	if !errors.As(err, &serr) {
		t.Fatalf("query returned %v, want *StatusError", err)
	}
	if serr.RetryAfter <= 25*time.Second || serr.RetryAfter > 30*time.Second {
		t.Fatalf("RetryAfter = %s, want ~30s from the HTTP-date header", serr.RetryAfter)
	}
}
