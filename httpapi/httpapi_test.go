package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"math/big"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	diversification "repro"
)

// testService builds a service over a small catalog with one registered
// statement: k=3, FMS, λ=0.7, price relevance, type distance.
func testService(t testing.TB) *diversification.Service {
	t.Helper()
	e := diversification.NewEngine()
	e.MustCreateTable("catalog", "item", "type", "price")
	rows := []struct {
		item, typ string
		price     int
	}{
		{"ring", "jewelry", 28},
		{"novel", "book", 22},
		{"puzzle", "toy", 25},
		{"scarf", "fashion", 30},
		{"paints", "artsy", 21},
		{"kite", "toy", 38},
	}
	for _, r := range rows {
		e.MustInsert("catalog", r.item, r.typ, r.price)
	}
	svc := diversification.NewService(e, diversification.ServiceConfig{})
	err := svc.Register("catalog", "Q(item, type, price) :- catalog(item, type, price)",
		diversification.WithK(3),
		diversification.WithObjective(diversification.MaxSum),
		diversification.WithLambda(0.7),
		diversification.WithRelevance(func(r diversification.Row) float64 {
			return float64(r.Get("price").(int64))
		}),
		diversification.WithDistance(func(a, b diversification.Row) float64 {
			if a.Get("type") == b.Get("type") {
				return 0
			}
			return 1
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func testClient(t testing.TB) (*Client, *diversification.Service) {
	t.Helper()
	svc := testService(t)
	srv := httptest.NewServer(NewHandler(svc))
	t.Cleanup(srv.Close)
	return &Client{BaseURL: srv.URL, HTTPClient: srv.Client()}, svc
}

func TestEndToEndQuery(t *testing.T) {
	client, _ := testClient(t)
	ctx := context.Background()

	if err := client.Healthz(ctx); err != nil {
		t.Fatal(err)
	}

	resp, err := client.Query(ctx, "catalog", QueryRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Selection == nil || len(resp.Selection.Rows) != 3 {
		t.Fatalf("diversify response malformed: %+v", resp)
	}
	if resp.Route == "" || resp.Generation == 0 {
		t.Errorf("response lost its plan metadata: route=%q gen=%d", resp.Route, resp.Generation)
	}
	if resp.Explain != "" {
		t.Error("explain must be opt-in")
	}

	// Opting in carries the plan report across the wire.
	resp, err = client.Query(ctx, "catalog", QueryRequest{Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Explain, "route:     exact") {
		t.Errorf("explain=true response lacks the plan report: %q", resp.Explain)
	}

	// Decide with a typed override.
	bound := 1.0
	resp, err = client.Query(ctx, "catalog", QueryRequest{Problem: "decide", Bound: &bound})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Decided() {
		t.Error("bound 1 should be reachable")
	}

	// Count: C(6,3) = 20 at bound 0.
	k := 3
	resp, err = client.Query(ctx, "catalog", QueryRequest{Problem: "count", K: &k})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Count.Cmp(big.NewInt(20)) != 0 {
		t.Errorf("count = %v, want 20", resp.Count)
	}

	// In-top-r with a candidate set: integers must survive the JSON trip
	// and match the stored int64 attributes.
	k2, rank := 2, 1
	resp, err = client.Query(ctx, "catalog", QueryRequest{
		Problem: "in-top-r", K: &k2, Rank: &rank,
		Set: [][]interface{}{{"kite", "toy", 38}, {"scarf", "fashion", 30}},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Refresh and metrics round out the protocol.
	info, err := client.Refresh(ctx, "catalog")
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode != "warm" {
		t.Errorf("refresh after queries = %q, want warm", info.Mode)
	}
	m, err := client.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Statements != 1 || m.Requests == 0 {
		t.Errorf("metrics: %+v", m)
	}
}

func TestErrorMapping(t *testing.T) {
	client, _ := testClient(t)
	ctx := context.Background()

	cases := []struct {
		name      string
		stmt      string
		req       QueryRequest
		wantCode  int
		wantField string
	}{
		{"unknown statement", "missing", QueryRequest{}, http.StatusNotFound, ""},
		{"bad problem", "catalog", QueryRequest{Problem: "nope"}, http.StatusBadRequest, "problem"},
		{"bad objective", "catalog", QueryRequest{Objective: strPtr("nope")}, http.StatusBadRequest, "objective"},
		{"bad algorithm", "catalog", QueryRequest{Algorithm: strPtr("nope")}, http.StatusBadRequest, "algorithm"},
		{"negative k", "catalog", QueryRequest{K: intPtr(-1)}, http.StatusBadRequest, "k"},
		{"k too large", "catalog", QueryRequest{K: intPtr(100)}, http.StatusUnprocessableEntity, ""},
		{"bad set", "catalog", QueryRequest{Problem: "rank", Set: [][]interface{}{{"only", "one", 1}}}, http.StatusBadRequest, "set"},
		// Unsupported set values are user input: 400 with the field, never
		// a 500 from the decode layer.
		{"null set value", "catalog", QueryRequest{Problem: "rank", Set: [][]interface{}{{nil, nil, nil}, {nil, nil, nil}, {nil, nil, nil}}}, http.StatusBadRequest, "set"},
	}
	for _, tc := range cases {
		_, err := client.Query(ctx, tc.stmt, tc.req)
		var serr *StatusError
		if !errors.As(err, &serr) {
			t.Errorf("%s: got %v, want StatusError", tc.name, err)
			continue
		}
		if serr.Code != tc.wantCode {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, serr.Code, tc.wantCode, serr.Body.Error)
		}
		if serr.Body.Field != tc.wantField {
			t.Errorf("%s: field %q, want %q", tc.name, serr.Body.Field, tc.wantField)
		}
	}

	if _, err := client.Refresh(ctx, "missing"); err == nil {
		t.Error("refresh of unknown statement should fail")
	}
}

func TestWriteErrorStatuses(t *testing.T) {
	// The mappings not reachable deterministically over a live server.
	cases := []struct {
		err  error
		code int
	}{
		{diversification.ErrOverloaded, http.StatusTooManyRequests},
		{context.DeadlineExceeded, http.StatusGatewayTimeout},
		{context.Canceled, http.StatusGatewayTimeout},
		{errors.New("boom"), http.StatusInternalServerError},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		writeError(rec, tc.err)
		if rec.Code != tc.code {
			t.Errorf("writeError(%v) = %d, want %d", tc.err, rec.Code, tc.code)
		}
		if !strings.Contains(rec.Body.String(), "error") {
			t.Errorf("writeError(%v) body %q lacks an error field", tc.err, rec.Body.String())
		}
	}
}

func TestPerRequestTimeout(t *testing.T) {
	client, _ := testClient(t)
	// A 0ms wire timeout is "no override"; an (unrealistically) tiny one
	// must come back as a gateway-timeout class error.
	_, err := client.Query(context.Background(), "catalog", QueryRequest{TimeoutMillis: -1})
	if err != nil {
		t.Errorf("non-positive timeout must be ignored: %v", err)
	}
	start := time.Now()
	_, err = client.Query(context.Background(), "catalog", QueryRequest{TimeoutMillis: 1, Problem: "count", K: intPtr(3)})
	var serr *StatusError
	if err != nil && (!errors.As(err, &serr) || serr.Code != http.StatusGatewayTimeout) {
		t.Errorf("tiny timeout returned %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("timeout did not bound the request")
	}
}

func TestHandlerRejectsMalformedBody(t *testing.T) {
	svc := testService(t)
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v1/query/catalog", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body returned %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/v1/query/catalog", "application/json", strings.NewReader(`{"unknown_field":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field returned %d, want 400", resp.StatusCode)
	}
}

func TestWireScoringAttrs(t *testing.T) {
	// relevance_attr/distance_attr build per-request scorers that bypass
	// the statement's shared plane; the solve must still succeed and
	// reflect the overridden scoring.
	client, _ := testClient(t)
	k := 1
	resp, err := client.Query(context.Background(), "catalog", QueryRequest{
		K: &k, RelevanceAttr: "price", DistanceAttr: "type",
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Selection.Rows[0].Get("item"); got != "kite" {
		t.Errorf("price relevance should pick the kite, got %v", got)
	}
}

func TestStatusErrorRendering(t *testing.T) {
	withBody := &StatusError{Code: 400, Body: ErrorBody{Error: "diversification: invalid k: nope", Field: "k"}}
	if got := withBody.Error(); !strings.Contains(got, "400") || !strings.Contains(got, "invalid k") {
		t.Errorf("Error() = %q", got)
	}
	empty := &StatusError{Code: 502}
	if got := empty.Error(); !strings.Contains(got, "no error body") {
		t.Errorf("empty-body Error() = %q", got)
	}
}

func TestDecodeSetValueKinds(t *testing.T) {
	set, err := decodeSet([][]interface{}{{
		json.Number("42"), json.Number("2.5"), json.Number("1e3"),
		float64(7), float64(7.5), "s", true, int64(3),
	}})
	if err != nil {
		t.Fatal(err)
	}
	want := []interface{}{int64(42), 2.5, 1000.0, int64(7), 7.5, "s", true, int64(3)}
	for i, w := range want {
		if set[0][i] != w {
			t.Errorf("value %d decoded to %T %v, want %T %v", i, set[0][i], set[0][i], w, w)
		}
	}
	if _, err := decodeSet([][]interface{}{{struct{}{}}}); err == nil {
		t.Error("unsupported value should fail")
	}
	if _, err := decodeSet([][]interface{}{{json.Number("zz")}}); err == nil {
		t.Error("malformed number should fail")
	}
}

func strPtr(s string) *string { return &s }
func intPtr(i int) *int       { return &i }

func TestMutationRoutes(t *testing.T) {
	client, svc := testClient(t)
	ctx := context.Background()
	before := svc.Engine().Generation()

	// A two-row insert where one row is a duplicate: applied counts real
	// mutations, and the generation advances by exactly that many.
	mb, err := client.Insert(ctx, "catalog", [][]interface{}{
		{"globe", "toy", 19},
		{"ring", "jewelry", 28}, // already present
	})
	if err != nil {
		t.Fatal(err)
	}
	if mb.Applied != 1 || mb.Generation != before+1 {
		t.Fatalf("insert: %+v (before gen %d)", mb, before)
	}

	mb, err = client.Delete(ctx, "catalog", [][]interface{}{
		{"globe", "toy", 19},
		{"never", "was", 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if mb.Applied != 1 || mb.Generation != before+2 {
		t.Fatalf("delete: %+v", mb)
	}

	var serr *StatusError
	if _, err := client.Insert(ctx, "nope", [][]interface{}{{1}}); !errors.As(err, &serr) || serr.Code != http.StatusNotFound {
		t.Fatalf("insert into unknown table: %v", err)
	}
	if _, err := client.Insert(ctx, "catalog", nil); !errors.As(err, &serr) || serr.Code != http.StatusBadRequest || serr.Body.Field != "rows" {
		t.Fatalf("empty insert: %v", err)
	}
	if _, err := client.Insert(ctx, "catalog", [][]interface{}{{"x"}}); !errors.As(err, &serr) || serr.Code != http.StatusBadRequest {
		t.Fatalf("arity mismatch: %v", err)
	}
}

func TestSnapshotRoute(t *testing.T) {
	// In-memory engine: the admin snapshot maps ErrNotDurable to 409.
	client, _ := testClient(t)
	var serr *StatusError
	if _, err := client.Snapshot(context.Background()); !errors.As(err, &serr) || serr.Code != http.StatusConflict {
		t.Fatalf("snapshot of in-memory engine: %v", err)
	}

	// Durable engine: the snapshot reports the generation it captured.
	e, _, err := diversification.OpenEngine(diversification.DurabilityConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	e.MustCreateTable("p", "x")
	e.MustInsert("p", 1)
	svc := diversification.NewService(e, diversification.ServiceConfig{})
	srv := httptest.NewServer(NewHandler(svc))
	t.Cleanup(srv.Close)
	durable := &Client{BaseURL: srv.URL, HTTPClient: srv.Client()}
	si, err := durable.Snapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if si.Generation != e.Generation() {
		t.Fatalf("snapshot generation %d, want %d", si.Generation, e.Generation())
	}
	m, err := durable.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.Durability == nil || m.Durability.LastSnapshotGen != si.Generation {
		t.Fatalf("durability metrics missing or stale: %+v", m.Durability)
	}
}
