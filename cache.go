package diversification

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"
)

// defaultCacheEntries is the result cache's entry bound when
// ServiceConfig.CacheEntries is left zero. Entries are whole *Response
// values — a selection of k rows plus stats — so even the default bound
// stays small next to the answer-set snapshots the engine already holds.
const defaultCacheEntries = 1024

// resultCache is the Service's generation-keyed response cache. Keys embed
// the database generation (see Service.cacheKey), so a lookup can only ever
// find a response computed against the exact database state the caller
// sees: Engine.Insert/Delete advance the generation and thereby invalidate
// every prior entry by construction — no heuristic TTLs, no explicit
// invalidation hooks, no stale hits.
//
// Entries at dead generations are reclaimed two ways: the LRU bound evicts
// them under capacity pressure like any other entry, and a store at a newer
// generation sweeps them eagerly (counted as invalidations) so a burst of
// mutations cannot leave the cache full of unreachable responses.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	lru     *list.List // front = most recently used
	lastGen uint64     // newest generation ever stored

	hits          atomic.Int64
	misses        atomic.Int64
	coalesced     atomic.Int64
	evictions     atomic.Int64
	invalidations atomic.Int64
}

// cacheEntry is one stored response: the key it lives under, the
// generation baked into that key (for the stale-generation sweep) and the
// immutable normalized response.
type cacheEntry struct {
	key  string
	gen  uint64
	resp *Response
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:     capacity,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}
}

// get returns the stored response for key, bumping its recency. The
// returned response is the immutable stored copy; callers must mark and
// stamp it via markCached before handing it out.
func (c *resultCache) get(key string) (*Response, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*cacheEntry).resp, true
}

// put stores a normalized response copy under key at generation gen,
// sweeping entries from older generations and evicting past the LRU bound.
// Stores for generations older than the newest ever stored are dropped:
// they are already invalidated.
func (c *resultCache) put(key string, gen uint64, resp *Response) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen < c.lastGen {
		return
	}
	if gen > c.lastGen {
		c.lastGen = gen
		var next *list.Element
		for el := c.lru.Front(); el != nil; el = next {
			next = el.Next()
			e := el.Value.(*cacheEntry)
			if e.gen < gen {
				c.lru.Remove(el)
				delete(c.entries, e.key)
				c.invalidations.Add(1)
			}
		}
	}
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).resp = resp
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, gen: gen, resp: resp})
	for c.lru.Len() > c.cap {
		el := c.lru.Back()
		e := el.Value.(*cacheEntry)
		c.lru.Remove(el)
		delete(c.entries, e.key)
		c.evictions.Add(1)
	}
}

// len reports the current entry count.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// cacheableCopy normalizes a freshly computed response into its stored
// form: a shallow copy (the answer fields — Selection rows, Count — are
// immutable by contract and shared) with the per-request advisory fields
// rewritten to what a repeat of the same request would observe. Elapsed is
// cleared (hits stamp their own lookup time) and Refresh collapses to
// "warm": by construction a hit means the snapshot for this generation was
// already materialized, however the original miss acquired it.
func cacheableCopy(r *Response) *Response {
	c := *r
	c.Elapsed = 0
	if c.Refresh.Mode != "" {
		c.Refresh = RefreshInfo{Mode: "warm", Answers: r.Refresh.Answers}
	}
	return &c
}

// markCached produces the response a cache hit (or a coalesced follower)
// hands out: a shallow copy of the stored response flagged Cached, with
// the caller's own elapsed time and — when the request asked for an
// explain report — a trailing line recording that no solve ran for this
// call. The stored response is never handed out directly, so a caller
// mutating its copy cannot poison later hits.
func markCached(r *Response, elapsed time.Duration) *Response {
	c := *r
	c.Cached = true
	c.Elapsed = elapsed
	if c.Explain != "" {
		c.Explain += "cached:    true (served from the generation-keyed result cache)\n"
	}
	return &c
}

// flight is one in-progress solve shared by coalesced identical requests:
// the leader executes and publishes resp/err before closing done; the
// followers wait on done (or their own context) instead of solving.
type flight struct {
	done chan struct{}
	resp *Response
	err  error
}

// joinFlight returns the in-progress flight for key, creating it (leader =
// true) when none exists. The caller that created the flight must complete
// it with finishFlight.
func (s *Service) joinFlight(key string) (*flight, bool) {
	s.fmu.Lock()
	defer s.fmu.Unlock()
	if fl, ok := s.flights[key]; ok {
		return fl, false
	}
	fl := &flight{done: make(chan struct{})}
	s.flights[key] = fl
	return fl, true
}

// finishFlight publishes the leader's outcome and wakes the followers. The
// flight is removed from the map first, so a request arriving after the
// outcome is published starts a fresh flight (or hits the cache) instead
// of observing a completed one.
func (s *Service) finishFlight(key string, fl *flight, resp *Response, err error) {
	s.fmu.Lock()
	delete(s.flights, key)
	s.fmu.Unlock()
	fl.resp, fl.err = resp, err
	close(fl.done)
}
