package diversification

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// BatchItem is one variant in a DiversifyBatch call: the per-item options
// are applied over the Prepare-time settings exactly as a Diversify call's
// options would be, so a batch sweeps (λ, k, objective, constraint, …)
// variants of one prepared query.
type BatchItem struct {
	Opts []Option
}

// BatchResult pairs one BatchItem's selection with its error. Exactly one
// of Selection and Err is non-nil.
type BatchResult struct {
	Selection *Selection
	Err       error
}

// DiversifyBatch solves many variants of the prepared query concurrently
// over one shared answer set and score plane: the cached Q(D) (and its
// interned relevance/distance plane) is materialized once, then the items
// are distributed across a worker pool. Every item routes through the same
// Request → Plan → Execute pipeline as a standalone call, so results[i]
// always corresponds to items[i], regardless of scheduling, and each item's
// outcome is identical to a standalone Diversify(ctx, items[i].Opts...)
// call — the concurrency changes wall-clock, not answers. In particular an
// item overriding WithRelevance/WithDistance/WithPlaneMemoryLimit bypasses
// the shared plane exactly as a single call does.
//
// The pool size is the handle's WithParallelism setting when given
// (WithParallelism(0) and the default both mean GOMAXPROCS here). Item
// solves themselves run sequentially — the pool already spends the worker
// budget, and inheriting a Prepare-time WithParallelism(n) per item would
// oversubscribe n×n — unless an item's own Opts carry WithParallelism.
//
// The returned error reports failures of the shared evaluation (query
// evaluation or plane build); per-item failures (including "no candidate
// set") land in their slot's Err.
func (p *Prepared) DiversifyBatch(ctx context.Context, items []BatchItem) ([]BatchResult, error) {
	if len(items) == 0 {
		return nil, nil
	}
	// Warm the shared answer-set and plane caches once, so the concurrent
	// item solves share one plane instead of racing to build duplicates.
	// This is the same snapshot + eager-plane acquisition Refresh performs
	// for the Prepare-time bindings; items whose options override the
	// scoring bindings plan their own per-instance plane regardless.
	if p.base.algorithm != Online {
		p.eng.mu.RLock()
		_, err := p.refresh(ctx)
		p.eng.mu.RUnlock()
		if err != nil {
			return nil, err
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if p.base.parallelSet && p.base.parallelism > 0 {
		workers = p.base.parallelism
	}
	if workers > len(items) {
		workers = len(items)
	}
	results := make([]BatchResult, len(items))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(items) {
					return
				}
				// Item solves run sequentially unless the item itself opts
				// in: the pool already uses the handle's worker budget, and
				// inheriting a Prepare-time WithParallelism(n) here would
				// oversubscribe n×n.
				opts := append([]Option{WithParallelism(1)}, items[i].Opts...)
				resp, err := p.Do(ctx, Request{Problem: ProblemDiversify, Options: opts})
				if err != nil {
					results[i] = BatchResult{Err: err}
					continue
				}
				results[i] = BatchResult{Selection: resp.Selection}
			}
		}()
	}
	wg.Wait()
	return results, nil
}
