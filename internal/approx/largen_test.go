// The large-n acceptance test: greedy FMS and FMM over 100k candidates in
// the indexed regime, the workload the metric index exists for. Wall-clock
// is asserted by the CI job's timeout (machines vary too much for an
// in-test stopwatch); what the test itself pins is correctness at scale and
// the O(n) memory claim. Skipped under -short.
package approx_test

import (
	"math/rand"
	"testing"
	"time"

	. "repro/internal/approx"

	"repro/internal/objective"
)

func TestLargeNIndexedRegime(t *testing.T) {
	if testing.Short() {
		t.Skip("large-n indexed smoke skipped in -short mode")
	}
	const n, dim, k = 100_000, 2, 10
	rng := rand.New(rand.NewSource(7))
	pts := regimePoints(rng, n, dim, 1_000_000)

	inSum := regimeInstance(t, pts, dim, objective.EuclideanDistance(), objective.MaxSum, 0.5, k, objective.RegimeAuto)
	plane := inSum.Plane()
	if plane == nil {
		t.Fatal("no plane")
	}
	// Auto must resolve to the index here: the matrix needs ~40 GB and the
	// tile store ~20 GB against a 64 MiB guard.
	if got := plane.Regime(); got != objective.RegimeIndexed {
		t.Fatalf("auto regime at n=%d is %v, want indexed", plane.Len(), got)
	}

	start := time.Now()
	sum := GreedyMaxSum(inSum)
	sumElapsed := time.Since(start)
	if len(sum.Set) != k {
		t.Fatalf("FMS picked %d of %d", len(sum.Set), k)
	}

	inMin := regimeInstance(t, pts, dim, objective.EuclideanDistance(), objective.MaxMin, 0.5, k, objective.RegimeAuto)
	inMin.SetAnswers(plane.Answers())
	inMin.SetPlane(plane) // share the built index across both solves
	start = time.Now()
	min := GreedyMaxMin(inMin)
	minElapsed := time.Since(start)
	if len(min.Set) != k {
		t.Fatalf("FMM picked %d of %d", len(min.Set), k)
	}
	t.Logf("n=%d k=%d: FMS %v, FMM %v", plane.Len(), k, sumElapsed, minElapsed)

	// The O(n) plane memory claim: index + memo + score vectors must stay
	// within a small linear envelope — far under the quadratic stores
	// (the float64 matrix alone would be ~40 GB).
	foot := plane.MemoryFootprint()
	if bound := int64(512)*int64(plane.Len()) + (1 << 20); foot > bound {
		t.Fatalf("plane footprint %d bytes exceeds the O(n) envelope %d", foot, bound)
	}
	t.Logf("plane footprint: %.1f MiB (%.0f B/answer)", float64(foot)/(1<<20), float64(foot)/float64(plane.Len()))
}
