// Indexed-regime variants of the greedy heuristics: the same selection
// loops as the plane variants in approx.go, with the O(n) per-round work
// routed through the plane's metric index instead of stored pairs. Both are
// engineered to reproduce the flat scans' results bit for bit — the index
// only skips work it can prove is a no-op (max-min) or cannot win the
// current round (max-sum), and every evaluation it does perform uses the
// identical expressions in the identical order. The differential tests in
// regime_diff_test.go pin that equivalence.
package approx

import (
	"math"

	"repro/internal/core"
	"repro/internal/ctxpoll"
	"repro/internal/objective"
)

// greedyMaxSumIndexed is greedyMaxSumPlane with LAESA-style gain bounds:
// instead of updating every candidate's running gain after each pick
// (Θ(n·k) distance evaluations), candidates lag behind and each round's
// scan first asks the index for an upper bound on what a lagging
// candidate's gain could be; only candidates whose bound beats the round's
// incumbent are refined (replaying their missed updates in pick order, so
// refined gains are bit-identical to the flat loop's). Selection therefore
// matches the flat greedy's tie-break order exactly whenever the bounds are
// sound, which the pruneSlack margin guarantees up to ulp-level rounding.
func greedyMaxSumIndexed(c *ctxpoll.Poller, in *core.Instance, p *objective.Plane, ix *objective.MetricIndex) (Result, error) {
	var res Result
	o := in.Obj
	n := p.Len()
	k := in.K
	base := make([]float64, n)
	for i := range base {
		base[i] = float64(k-1) * (1 - o.Lambda) * p.Rel(i)
	}
	st := ix.NewMaxSumState(base, o.Lambda)
	used := make([]bool, n)
	ids := make([]int, 0, k)
	for len(ids) < k {
		bestIdx, bestGain := -1, math.Inf(-1)
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			if c.Stop() {
				return res, c.Err()
			}
			res.Steps++
			// A candidate whose upper bound cannot strictly beat the
			// incumbent cannot change bestIdx (the flat loop's comparison
			// is strict, so ties keep the earlier index): skip refining it.
			if bestIdx >= 0 && st.UpperBound(i) <= bestGain {
				continue
			}
			if g := st.Refine(i); g > bestGain {
				bestGain, bestIdx = g, i
			}
		}
		if bestIdx < 0 {
			break
		}
		used[bestIdx] = true
		ids = append(ids, bestIdx)
		st.Push(bestIdx)
	}
	res.Set = planeTuples(p, ids)
	res.Value = o.EvalIDs(p, ids)
	return res, nil
}

// greedyMaxMinIndexed is greedyMaxMinPlane with the min-distance update
// routed through the vantage-point tree: Take folds the new center into
// every unchosen candidate's minDis, pruning subtrees the triangle
// inequality proves unaffected. The maintained minDis array — and with it
// every score, comparison and tie-break of the selection scan — is
// bit-identical to the flat variant's.
func greedyMaxMinIndexed(c *ctxpoll.Poller, in *core.Instance, p *objective.Plane, ix *objective.MetricIndex) (Result, error) {
	var res Result
	o := in.Obj
	n := p.Len()
	k := in.K
	used := make([]bool, n)
	seed, seedRel := -1, math.Inf(-1)
	for i := 0; i < n; i++ {
		res.Steps++
		if r := p.Rel(i); r > seedRel {
			seedRel, seed = r, i
		}
	}
	st := ix.NewMaxMinState()
	ids := make([]int, 0, k)
	take := func(idx int) {
		used[idx] = true
		ids = append(ids, idx)
		st.Take(idx)
	}
	take(seed)
	for len(ids) < k {
		bestIdx, bestScore := -1, math.Inf(-1)
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			if c.Stop() {
				return res, c.Err()
			}
			res.Steps++
			score := (1-o.Lambda)*p.Rel(i) + o.Lambda*st.MinDis[i]
			if score > bestScore {
				bestScore, bestIdx = score, i
			}
		}
		if bestIdx < 0 {
			break
		}
		take(bestIdx)
	}
	res.Set = planeTuples(p, ids)
	res.Value = o.EvalIDs(p, ids)
	return res, nil
}
