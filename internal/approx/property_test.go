// Property-based tests: the approximation guarantees Section 10 leans on,
// asserted over randomized instance families with fixed seeds (so failures
// are reproducible, not flaky). The instances use Euclidean distance over
// integer points — a metric, as the 2-approximation analysis requires — and
// non-negative relevance.
package approx_test

import (
	"math/rand"
	"testing"

	. "repro/internal/approx"

	"repro/internal/core"
	"repro/internal/objective"
	"repro/internal/relation"
	"repro/internal/solver"
)

// randomInstance draws a metric instance: n points in a 40×40 grid,
// relevance = x-coordinate (non-negative).
func randomInstance(rng *rand.Rand, n, k int, kind objective.Kind, lambda float64) *core.Instance {
	pts := make([][2]int64, n)
	for i := range pts {
		pts[i] = [2]int64{rng.Int63n(40), rng.Int63n(40)}
	}
	return pointsInstance(pts, kind, lambda, k)
}

// propSlack is the float tolerance for comparing values computed through
// different accumulation orders.
func propSlack(x float64) float64 {
	if x < 0 {
		x = -x
	}
	return 1e-9 * (1 + x)
}

// TestPropertyGreedyMaxSumTwoApproximation: on metric instances the max-sum
// dispersion greedy must stay within the paper's factor-2 guarantee of the
// exact optimum — 2·F(greedy) >= F(opt).
func TestPropertyGreedyMaxSumTwoApproximation(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 60; trial++ {
		n := 6 + rng.Intn(6)
		k := 2 + rng.Intn(3)
		lambda := []float64{0, 0.3, 0.5, 0.8, 1}[rng.Intn(5)]
		in := randomInstance(rng, n, k, objective.MaxSum, lambda)
		greedy := GreedyMaxSum(in)
		if len(greedy.Set) != k {
			t.Fatalf("trial %d: greedy picked %d of %d", trial, len(greedy.Set), k)
		}
		best := solver.QRDBest(in)
		if !best.Exists {
			t.Fatalf("trial %d: no exact optimum", trial)
		}
		if 2*greedy.Value < best.Value-propSlack(best.Value) {
			t.Errorf("trial %d (n=%d k=%d λ=%v): greedy %v is below half the optimum %v",
				trial, n, k, lambda, greedy.Value, best.Value)
		}
	}
}

// TestPropertyHeuristicNeverBeatsExact: a heuristic's score can never
// exceed the exact optimum, for all three objectives — the heuristics pick
// candidate sets, and the optimum is the maximum over all of them.
func TestPropertyHeuristicNeverBeatsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	kinds := []objective.Kind{objective.MaxSum, objective.MaxMin, objective.Mono}
	for trial := 0; trial < 40; trial++ {
		n := 5 + rng.Intn(6)
		k := 2 + rng.Intn(3)
		lambda := float64(rng.Intn(101)) / 100
		kind := kinds[trial%len(kinds)]
		in := randomInstance(rng, n, k, kind, lambda)
		best := solver.QRDBest(in)
		if !best.Exists {
			t.Fatalf("trial %d: no exact optimum", trial)
		}
		check := func(name string, r Result) {
			if len(r.Set) == 0 {
				return
			}
			if r.Value > best.Value+propSlack(best.Value) {
				t.Errorf("trial %d (%s, %s, λ=%v): heuristic %v exceeds exact optimum %v",
					trial, name, kind, lambda, r.Value, best.Value)
			}
		}
		greedy := Greedy(in)
		check("greedy", greedy)
		check("local-search", LocalSearchSwap(in, greedy.Set))
		check("mmr", MMR(in))
	}
}

// TestPropertyLocalSearchNeverDecreases: hill climbing from any seed — not
// just a greedy one — must end at least as high as it started.
func TestPropertyLocalSearchNeverDecreases(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	kinds := []objective.Kind{objective.MaxSum, objective.MaxMin, objective.Mono}
	for trial := 0; trial < 60; trial++ {
		n := 5 + rng.Intn(6)
		k := 2 + rng.Intn(3)
		lambda := float64(rng.Intn(101)) / 100
		kind := kinds[trial%len(kinds)]
		in := randomInstance(rng, n, k, kind, lambda)
		answers := in.Answers()
		seed := rng.Perm(len(answers))[:k]
		seedTuples := make([]relation.Tuple, k)
		for i, idx := range seed {
			seedTuples[i] = answers[idx]
		}
		start := in.Eval(seedTuples)
		res := LocalSearchSwap(in, seedTuples)
		if res.Value < start-propSlack(start) {
			t.Errorf("trial %d (%s, λ=%v): local search decreased %v -> %v",
				trial, kind, lambda, start, res.Value)
		}
		if !in.IsCandidate(res.Set) {
			t.Errorf("trial %d: local search left the candidate space: %v", trial, res.Set)
		}
	}
}

// TestPropertyGreedyMaxMinTwoApproximation: the farthest-point greedy on
// the pure-diversity side (λ=1) is Gonzalez's 2-approximation for max-min
// dispersion.
func TestPropertyGreedyMaxMinTwoApproximation(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 60; trial++ {
		n := 6 + rng.Intn(6)
		k := 2 + rng.Intn(3)
		in := randomInstance(rng, n, k, objective.MaxMin, 1)
		greedy := GreedyMaxMin(in)
		if len(greedy.Set) != k {
			t.Fatalf("trial %d: greedy picked %d of %d", trial, len(greedy.Set), k)
		}
		best := solver.QRDBest(in)
		if !best.Exists {
			t.Fatalf("trial %d: no exact optimum", trial)
		}
		if 2*greedy.Value < best.Value-propSlack(best.Value) {
			t.Errorf("trial %d (n=%d k=%d): farthest-point %v is below half the optimum %v",
				trial, n, k, greedy.Value, best.Value)
		}
	}
}

// TestPropertyQualityRatioBounds: Quality is a ratio in [0, 1] across the
// heuristic/optimum pairs the suite generates.
func TestPropertyQualityRatioBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 30; trial++ {
		in := randomInstance(rng, 5+rng.Intn(5), 2+rng.Intn(2), objective.MaxSum, 0.5)
		greedy := GreedyMaxSum(in)
		best := solver.QRDBest(in)
		q := Quality(greedy.Value, best.Value)
		if q < 0 || q > 1+1e-9 {
			t.Errorf("trial %d: quality ratio %v outside [0, 1] (greedy %v, best %v)",
				trial, q, greedy.Value, best.Value)
		}
	}
}
