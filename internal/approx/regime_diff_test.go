// Differential tests for the plane regimes: the tiled and indexed regimes
// must reproduce the materialized plane's greedy selections — byte-identical
// sets, values and step counts for greedy max-min (the tentpole guarantee),
// byte-identical selections for greedy max-sum under the LAESA bounds, and
// float32-exact equality for the tiled regime whenever δdis is
// integer-valued. Rebase must land on the same plane a cold build at the new
// generation would produce, in every regime.
package approx_test

import (
	"context"
	"math/rand"
	"testing"

	. "repro/internal/approx"

	"repro/internal/core"
	"repro/internal/objective"
	"repro/internal/query"
	"repro/internal/relation"
)

// regimePoints draws n random dim-column integer points on a side×side grid.
func regimePoints(rng *rand.Rand, n, dim, side int) []relation.Tuple {
	cols := make([]string, dim)
	for i := range cols {
		cols[i] = string(rune('a' + i))
	}
	pts := make([]relation.Tuple, n)
	for i := range pts {
		vals := make([]int64, dim)
		for d := range vals {
			vals[d] = rng.Int63n(int64(side))
		}
		pts[i] = relation.Ints(vals...)
	}
	return pts
}

// regimeInstance builds an identity-query instance over pts with the given
// distance, forcing the requested plane regime and building its store (an
// instance-level plane is lazy by default; without EnsureReadyContext the
// matrix and tile regimes would silently serve from the memo cache and the
// differential tests would compare nothing).
func regimeInstance(t *testing.T, pts []relation.Tuple, dim int, dis objective.Distance, kind objective.Kind, lambda float64, k int, regime objective.Regime) *core.Instance {
	t.Helper()
	cols := make([]string, dim)
	for i := range cols {
		cols[i] = string(rune('a' + i))
	}
	r := relation.NewRelation(relation.NewSchema("P", cols...))
	for _, t := range pts {
		r.Insert(t)
	}
	db := relation.NewDatabase().Add(r)
	obj := objective.New(kind, objective.AttrRelevance(0, 0.01), dis, lambda)
	in := &core.Instance{
		Query:       query.IdentityQuery("P", dim),
		DB:          db,
		Obj:         obj,
		K:           k,
		PlaneRegime: regime,
	}
	p, err := in.PlaneContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.EnsureReadyContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	if regime != objective.RegimeAuto && p.Regime() != regime {
		t.Fatalf("requested regime %v resolved to %v", regime, p.Regime())
	}
	return in
}

// assertSameResult requires two heuristic results to agree bit for bit:
// same tuples in the same pick order, the exact same float value, the same
// number of candidate evaluations.
func assertSameResult(t *testing.T, label string, want, got Result) {
	t.Helper()
	if len(want.Set) != len(got.Set) {
		t.Fatalf("%s: set size %d != %d", label, len(got.Set), len(want.Set))
	}
	for i := range want.Set {
		if want.Set[i].Compare(got.Set[i]) != 0 {
			t.Fatalf("%s: pick %d is %v, want %v", label, i, got.Set[i], want.Set[i])
		}
	}
	if want.Value != got.Value {
		t.Fatalf("%s: value %v != %v (must be bit-identical)", label, got.Value, want.Value)
	}
	if want.Steps != got.Steps {
		t.Fatalf("%s: steps %d != %d (scan accounting must match)", label, got.Steps, want.Steps)
	}
}

func TestIndexedGreedyMaxMinByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 8; trial++ {
		n := []int{60, 300, 1200}[trial%3]
		dim := 2 + trial%3
		lambda := []float64{0, 0.3, 0.7, 1}[trial%4]
		k := 2 + trial%9
		pts := regimePoints(rng, n, dim, 50)
		flat := GreedyMaxMin(regimeInstance(t, pts, dim, objective.EuclideanDistance(), objective.MaxMin, lambda, k, objective.RegimeMaterialized))
		idx := GreedyMaxMin(regimeInstance(t, pts, dim, objective.EuclideanDistance(), objective.MaxMin, lambda, k, objective.RegimeIndexed))
		assertSameResult(t, "max-min indexed", flat, idx)
	}
}

func TestIndexedGreedyMaxSumByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	for trial := 0; trial < 8; trial++ {
		n := []int{60, 300, 1200}[trial%3]
		dim := 2 + trial%3
		lambda := []float64{0, 0.3, 0.7, 1}[trial%4]
		k := 2 + trial%9
		pts := regimePoints(rng, n, dim, 50)
		flat := GreedyMaxSum(regimeInstance(t, pts, dim, objective.EuclideanDistance(), objective.MaxSum, lambda, k, objective.RegimeMaterialized))
		idx := GreedyMaxSum(regimeInstance(t, pts, dim, objective.EuclideanDistance(), objective.MaxSum, lambda, k, objective.RegimeIndexed))
		assertSameResult(t, "max-sum indexed", flat, idx)
	}
}

func TestTiledGreedyByteIdenticalOnIntegerDistances(t *testing.T) {
	// Hamming distances are small integers, exactly representable in
	// float32, so the tiled regime's rounding is the identity and both
	// greedy procedures must be bit-equal to the materialized plane.
	rng := rand.New(rand.NewSource(93))
	for trial := 0; trial < 6; trial++ {
		n := 80 + 40*trial
		const dim = 4
		lambda := []float64{0, 0.5, 1}[trial%3]
		k := 3 + trial
		pts := regimePoints(rng, n, dim, 5)
		ham := objective.HammingDistance()
		flatSum := GreedyMaxSum(regimeInstance(t, pts, dim, ham, objective.MaxSum, lambda, k, objective.RegimeMaterialized))
		tileSum := GreedyMaxSum(regimeInstance(t, pts, dim, ham, objective.MaxSum, lambda, k, objective.RegimeTiled))
		assertSameResult(t, "max-sum tiled", flatSum, tileSum)
		flatMin := GreedyMaxMin(regimeInstance(t, pts, dim, ham, objective.MaxMin, lambda, k, objective.RegimeMaterialized))
		tileMin := GreedyMaxMin(regimeInstance(t, pts, dim, ham, objective.MaxMin, lambda, k, objective.RegimeTiled))
		assertSameResult(t, "max-min tiled", flatMin, tileMin)
	}
}

func TestTiledGreedyEuclideanWithinBound(t *testing.T) {
	// Real-valued distances round to float32 in the tile store: the
	// selection may legitimately differ on near-ties, but the achieved
	// objective value must stay within float32 relative error of the
	// materialized plane's (the documented bound for the tiled regime).
	rng := rand.New(rand.NewSource(94))
	for trial := 0; trial < 6; trial++ {
		n := 100 + 60*trial
		const dim = 3
		lambda := 0.6
		k := 5
		pts := regimePoints(rng, n, dim, 1000)
		flat := GreedyMaxSum(regimeInstance(t, pts, dim, objective.EuclideanDistance(), objective.MaxSum, lambda, k, objective.RegimeMaterialized))
		tile := GreedyMaxSum(regimeInstance(t, pts, dim, objective.EuclideanDistance(), objective.MaxSum, lambda, k, objective.RegimeTiled))
		diff := flat.Value - tile.Value
		if diff < 0 {
			diff = -diff
		}
		if bound := 1e-5 * (1 + flat.Value); diff > bound {
			t.Fatalf("trial %d: tiled value %v vs materialized %v differ by %v > %v",
				trial, tile.Value, flat.Value, diff, bound)
		}
	}
}

// TestRebaseEquivalentToColdBuildPerRegime: after insert and delete
// batches, a rebased plane must drive the greedy solvers to the exact
// results of a plane built cold over the merged answer set — in each of the
// four non-streaming regimes.
func TestRebaseEquivalentToColdBuildPerRegime(t *testing.T) {
	for _, regime := range []objective.Regime{
		objective.RegimeMaterialized, objective.RegimeTiled, objective.RegimeIndexed, objective.RegimeMemoized,
	} {
		rng := rand.New(rand.NewSource(95))
		const n, dim, k = 240, 3, 7
		pts := regimePoints(rng, n, dim, 40)
		in := regimeInstance(t, pts, dim, objective.EuclideanDistance(), objective.MaxMin, 0.5, k, regime)
		base, err := in.PlaneContext(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		answers := base.Answers()

		// Retire every 5th answer and add a batch of fresh sorted tuples.
		var retired []int
		for id := 0; id < len(answers); id += 5 {
			retired = append(retired, id)
		}
		addSet := relation.NewRelation(relation.NewSchema("A", "a", "b", "c"))
		for _, tp := range regimePoints(rng, 60, dim, 40) {
			addSet.Insert(tp)
		}
		added := addSet.Sorted() // sorted + deduped, as Rebase requires
		rebased, err := base.Rebase(context.Background(), added, retired)
		if err != nil {
			t.Fatal(err)
		}

		// The cold arm: an instance over exactly the rebased answer set.
		cold := regimeInstance(t, rebased.Answers(), dim, objective.EuclideanDistance(), objective.MaxMin, 0.5, k, regime)
		coldPlane, err := cold.PlaneContext(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if got, want := rebased.Regime(), coldPlane.Regime(); got != want {
			t.Fatalf("%v: rebased regime %v != cold %v", regime, got, want)
		}

		// The rebased arm: same answers, the rebased plane injected.
		warm := regimeInstance(t, rebased.Answers(), dim, objective.EuclideanDistance(), objective.MaxMin, 0.5, k, regime)
		warm.SetAnswers(rebased.Answers())
		warm.SetPlane(rebased)

		coldMin, err := GreedyMaxMinContext(context.Background(), cold)
		if err != nil {
			t.Fatal(err)
		}
		warmMin, err := GreedyMaxMinContext(context.Background(), warm)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, "rebase "+regime.String()+" max-min", coldMin, warmMin)

		inSum := regimeInstance(t, rebased.Answers(), dim, objective.EuclideanDistance(), objective.MaxSum, 0.5, k, regime)
		inSum.SetAnswers(rebased.Answers())
		inSum.SetPlane(rebased)
		coldSum := regimeInstance(t, rebased.Answers(), dim, objective.EuclideanDistance(), objective.MaxSum, 0.5, k, regime)
		a, err := GreedyMaxSumContext(context.Background(), coldSum)
		if err != nil {
			t.Fatal(err)
		}
		b, err := GreedyMaxSumContext(context.Background(), inSum)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, "rebase "+regime.String()+" max-sum", a, b)
	}
}
