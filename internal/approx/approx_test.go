// The external test package breaks the import cycle that the solver's
// warm-started incumbent introduced: solver imports approx for the greedy
// incumbent, and these tests compare heuristics against the exact solver.
package approx_test

import (
	"math"
	"testing"
	"testing/quick"

	. "repro/internal/approx"

	"repro/internal/core"
	"repro/internal/objective"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/solver"
)

// pointsInstance builds an identity-query instance over 2-column integer
// points with Euclidean distance and relevance = first coordinate.
func pointsInstance(pts [][2]int64, kind objective.Kind, lambda float64, k int) *core.Instance {
	r := relation.NewRelation(relation.NewSchema("P", "x", "y"))
	for _, p := range pts {
		r.Insert(relation.Ints(p[0], p[1]))
	}
	db := relation.NewDatabase().Add(r)
	obj := objective.New(kind, objective.AttrRelevance(0, 1), objective.EuclideanDistance(), lambda)
	return &core.Instance{Query: query.IdentityQuery("P", 2), DB: db, Obj: obj, K: k}
}

var testPoints = [][2]int64{
	{0, 0}, {10, 0}, {0, 10}, {10, 10}, {5, 5}, {1, 1}, {9, 9}, {2, 8},
}

func TestGreedyMaxSumSelectsValidSet(t *testing.T) {
	in := pointsInstance(testPoints, objective.MaxSum, 0.5, 3)
	res := GreedyMaxSum(in)
	if len(res.Set) != 3 {
		t.Fatalf("selected %d tuples, want 3", len(res.Set))
	}
	if math.Abs(res.Value-in.Eval(res.Set)) > 1e-9 {
		t.Errorf("reported value %v != evaluated %v", res.Value, in.Eval(res.Set))
	}
	// All selected tuples distinct and from Q(D).
	if !in.IsCandidate(res.Set) {
		t.Error("greedy set is not a candidate set")
	}
}

func TestGreedyMaxSumApproximationQuality(t *testing.T) {
	in := pointsInstance(testPoints, objective.MaxSum, 0.7, 3)
	greedy := GreedyMaxSum(in)
	best := solver.QRDBest(in)
	q := Quality(greedy.Value, best.Value)
	// The metric max-sum greedy guarantees 1/2; it usually does far better.
	if q < 0.5-1e-9 {
		t.Errorf("greedy quality %v below the 2-approximation bound", q)
	}
}

func TestGreedyMaxMinApproximationQuality(t *testing.T) {
	in := pointsInstance(testPoints, objective.MaxMin, 1, 3)
	greedy := GreedyMaxMin(in)
	best := solver.QRDBest(in)
	q := Quality(greedy.Value, best.Value)
	if q < 0.5-1e-9 {
		t.Errorf("farthest-point quality %v below the 2-approximation bound", q)
	}
}

func TestGreedyMaxMinSeedsWithMostRelevant(t *testing.T) {
	in := pointsInstance(testPoints, objective.MaxMin, 0, 1)
	res := GreedyMaxMin(in)
	// λ=0, k=1: must pick the most relevant tuple (x=10).
	if res.Set[0][0].AsInt() != 10 {
		t.Errorf("seed = %v, want x=10", res.Set[0])
	}
}

func TestMMRMatchesGreedyMaxMin(t *testing.T) {
	in := pointsInstance(testPoints, objective.MaxMin, 0.5, 3)
	a, b := MMR(in), GreedyMaxMin(in)
	if a.Value != b.Value {
		t.Errorf("MMR %v != farthest-point %v", a.Value, b.Value)
	}
}

func TestLocalSearchImprovesSeed(t *testing.T) {
	in := pointsInstance(testPoints, objective.MaxSum, 1, 3)
	answers := in.Answers()
	// Deliberately bad seed: three clustered points.
	var seed []relation.Tuple
	for _, a := range answers {
		if a[0].AsInt() <= 2 && a[1].AsInt() <= 2 {
			seed = append(seed, a)
		}
	}
	if len(seed) < 3 {
		seed = answers[:3]
	}
	seed = seed[:3]
	start := in.Eval(seed)
	res := LocalSearchSwap(in, seed)
	if res.Value < start {
		t.Errorf("local search worsened the seed: %v -> %v", start, res.Value)
	}
	if !in.IsCandidate(res.Set) {
		t.Error("local search produced a non-candidate set")
	}
}

func TestLocalSearchOptimalForMono(t *testing.T) {
	in := pointsInstance(testPoints, objective.Mono, 0.5, 3)
	seed := in.Answers()[:3]
	res := LocalSearchSwap(in, seed)
	best := solver.QRDBest(in)
	if math.Abs(res.Value-best.Value) > 1e-9 {
		t.Errorf("local search on modular objective = %v, optimum = %v", res.Value, best.Value)
	}
}

func TestGreedyDispatch(t *testing.T) {
	for _, kind := range []objective.Kind{objective.MaxSum, objective.MaxMin, objective.Mono} {
		in := pointsInstance(testPoints, kind, 0.5, 3)
		res := Greedy(in)
		if len(res.Set) != 3 {
			t.Errorf("%v: selected %d tuples", kind, len(res.Set))
		}
	}
}

func TestGreedyMonoIsExact(t *testing.T) {
	in := pointsInstance(testPoints, objective.Mono, 0.4, 4)
	res := Greedy(in)
	best := solver.QRDBest(in)
	if math.Abs(res.Value-best.Value) > 1e-9 {
		t.Errorf("mono greedy = %v, optimum = %v", res.Value, best.Value)
	}
}

func TestEdgeCases(t *testing.T) {
	in := pointsInstance(testPoints, objective.MaxSum, 0.5, 0)
	if res := GreedyMaxSum(in); len(res.Set) != 0 {
		t.Error("k=0 should select nothing")
	}
	in2 := pointsInstance(testPoints[:2], objective.MaxSum, 0.5, 5)
	if res := GreedyMaxSum(in2); len(res.Set) != 0 {
		t.Error("k > |Q(D)| should select nothing")
	}
	in3 := pointsInstance(testPoints[:2], objective.MaxMin, 0.5, 5)
	if res := GreedyMaxMin(in3); len(res.Set) != 0 {
		t.Error("k > |Q(D)| should select nothing (max-min)")
	}
	if res := LocalSearchSwap(in, nil); len(res.Set) != 0 {
		t.Error("empty seed should return empty result")
	}
}

func TestQuality(t *testing.T) {
	if Quality(5, 10) != 0.5 || Quality(0, 0) != 1 || Quality(1, 0) != 0 {
		t.Error("Quality misbehaves")
	}
}

// Property: on random point sets the greedy heuristics never exceed the
// exact optimum and local search never decreases the greedy value.
func TestHeuristicSandwichProperty(t *testing.T) {
	f := func(raw [6][2]int8) bool {
		pts := make([][2]int64, 0, len(raw))
		seen := map[[2]int64]bool{}
		for _, p := range raw {
			q := [2]int64{int64(p[0] % 8), int64(p[1] % 8)}
			if !seen[q] {
				seen[q] = true
				pts = append(pts, q)
			}
		}
		if len(pts) < 3 {
			return true
		}
		for _, kind := range []objective.Kind{objective.MaxSum, objective.MaxMin} {
			in := pointsInstance(pts, kind, 0.6, 3)
			g := Greedy(in)
			best := solver.QRDBest(in)
			if g.Value > best.Value+1e-9 {
				return false // heuristic beat the optimum: impossible
			}
			ls := LocalSearchSwap(in, g.Set)
			if ls.Value < g.Value-1e-9 {
				return false // local search made it worse
			}
			if ls.Value > best.Value+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
