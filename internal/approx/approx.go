// Package approx provides the heuristic and approximation algorithms that
// Section 10 of the paper calls for: since QRD is intractable for FMS and
// FMM even in data complexity, practical systems use polynomial heuristics.
// We implement the classical ones the diversification literature (Gollapudi
// & Sharma 2009; Vieira et al. 2011) builds on:
//
//   - GreedyMaxSum — the max-sum dispersion greedy: repeatedly add the tuple
//     with the largest marginal FMS gain. A 2-approximation for metric
//     distances on the dispersion core.
//   - GreedyMaxMin — Gonzalez-style farthest-point greedy for max-min
//     dispersion: start from the most relevant tuple and repeatedly add the
//     tuple maximizing the minimum weighted distance/relevance to the chosen
//     set. A 2-approximation for metric distances.
//   - MMR — Maximal Marginal Relevance, the classic trade-off heuristic:
//     each step picks argmax (1-λ)·δrel(t) + λ·min over chosen δdis(t, ·).
//   - LocalSearchSwap — hill climbing by single-tuple swaps from any seed,
//     for any objective, the paper's "heuristic algorithms" workhorse.
//
// All run in polynomial time; Quality measures their objective ratio
// against the exact optimum for ablation experiments. Every procedure has a
// Context variant that polls a cancellation context along its scan loops —
// the heuristics are polynomial but still quadratic-or-worse in |Q(D)|, so
// a production caller wants them interruptible too.
package approx

import (
	"context"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/ctxpoll"
	"repro/internal/objective"
	"repro/internal/relation"
)

// Result is a heuristic's selected set with its objective value.
type Result struct {
	Set   []relation.Tuple
	Value float64
	Steps int // number of candidate evaluations, for cost accounting
}

// GreedyMaxSum selects k answers greedily by marginal FMS gain.
func GreedyMaxSum(in *core.Instance) Result {
	res, _ := GreedyMaxSumContext(context.Background(), in)
	return res
}

// GreedyMaxSumContext is GreedyMaxSum under a cancellation context.
func GreedyMaxSumContext(ctx context.Context, in *core.Instance) (Result, error) {
	var res Result
	answers, err := in.AnswersContext(ctx)
	if err != nil {
		return res, err
	}
	k := in.K
	if k <= 0 || k > len(answers) {
		return res, nil
	}
	c := ctxpoll.New(ctx)
	if p, err := in.PlaneContext(ctx); err != nil {
		return res, err
	} else if p != nil {
		// In the indexed regime the plane serves the greedy loops through
		// its metric index (nil for every other regime).
		if ix, err := p.IndexContext(ctx); err != nil {
			return res, err
		} else if ix != nil {
			return greedyMaxSumIndexed(c, in, p, ix)
		}
		return greedyMaxSumPlane(c, in, p)
	}
	chosen := make([]relation.Tuple, 0, k)
	used := make([]bool, len(answers))
	for len(chosen) < k {
		bestIdx, bestGain := -1, math.Inf(-1)
		for i, t := range answers {
			if used[i] {
				continue
			}
			if c.Stop() {
				return res, c.Err()
			}
			res.Steps++
			g := in.Obj.MaxSumDelta(chosen, t, k)
			if g > bestGain {
				bestGain, bestIdx = g, i
			}
		}
		if bestIdx < 0 {
			break
		}
		used[bestIdx] = true
		chosen = append(chosen, answers[bestIdx])
	}
	res.Set = chosen
	res.Value = in.Eval(chosen)
	return res, nil
}

// greedyMaxSumPlane is the interned-ID variant of the max-sum greedy: it
// maintains each candidate's running marginal gain, so a round is one O(n)
// array scan plus an O(n) gain update against the newly chosen ID, instead
// of the O(n·k) re-scoring of the interface path. Gains accumulate in
// chosen order, matching MaxSumDelta bit-for-bit.
func greedyMaxSumPlane(c *ctxpoll.Poller, in *core.Instance, p *objective.Plane) (Result, error) {
	var res Result
	o := in.Obj
	n := p.Len()
	k := in.K
	gain := make([]float64, n)
	for i := range gain {
		gain[i] = float64(k-1) * (1 - o.Lambda) * p.Rel(i)
	}
	used := make([]bool, n)
	ids := make([]int, 0, k)
	for len(ids) < k {
		bestIdx, bestGain := -1, math.Inf(-1)
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			if c.Stop() {
				return res, c.Err()
			}
			res.Steps++
			if gain[i] > bestGain {
				bestGain, bestIdx = gain[i], i
			}
		}
		if bestIdx < 0 {
			break
		}
		used[bestIdx] = true
		ids = append(ids, bestIdx)
		for i := 0; i < n; i++ {
			if !used[i] {
				gain[i] += o.Lambda * 2 * p.Dis(bestIdx, i)
			}
		}
	}
	res.Set = planeTuples(p, ids)
	res.Value = o.EvalIDs(p, ids)
	return res, nil
}

// planeTuples materializes the tuples interned as ids.
func planeTuples(p *objective.Plane, ids []int) []relation.Tuple {
	out := make([]relation.Tuple, len(ids))
	for i, id := range ids {
		out[i] = p.Tuple(id)
	}
	return out
}

// GreedyMaxMin selects k answers farthest-point style: seed with the most
// relevant answer, then repeatedly add the answer maximizing
// (1-λ)·δrel(t) + λ·min_{s∈chosen} δdis(t, s).
func GreedyMaxMin(in *core.Instance) Result {
	res, _ := GreedyMaxMinContext(context.Background(), in)
	return res
}

// GreedyMaxMinContext is GreedyMaxMin under a cancellation context.
func GreedyMaxMinContext(ctx context.Context, in *core.Instance) (Result, error) {
	var res Result
	answers, err := in.AnswersContext(ctx)
	if err != nil {
		return res, err
	}
	k := in.K
	if k <= 0 || k > len(answers) {
		return res, nil
	}
	c := ctxpoll.New(ctx)
	o := in.Obj
	if p, err := in.PlaneContext(ctx); err != nil {
		return res, err
	} else if p != nil {
		if ix, err := p.IndexContext(ctx); err != nil {
			return res, err
		} else if ix != nil {
			return greedyMaxMinIndexed(c, in, p, ix)
		}
		return greedyMaxMinPlane(c, in, p)
	}
	used := make([]bool, len(answers))
	seed, seedRel := -1, math.Inf(-1)
	for i, t := range answers {
		res.Steps++
		if r := o.Rel.Rel(t); r > seedRel {
			seedRel, seed = r, i
		}
	}
	chosen := []relation.Tuple{answers[seed]}
	used[seed] = true
	for len(chosen) < k {
		bestIdx, bestScore := -1, math.Inf(-1)
		for i, t := range answers {
			if used[i] {
				continue
			}
			if c.Stop() {
				return res, c.Err()
			}
			res.Steps++
			minDis := math.Inf(1)
			for _, s := range chosen {
				if d := o.Dis.Dis(s, t); d < minDis {
					minDis = d
				}
			}
			score := (1-o.Lambda)*o.Rel.Rel(t) + o.Lambda*minDis
			if score > bestScore {
				bestScore, bestIdx = score, i
			}
		}
		if bestIdx < 0 {
			break
		}
		used[bestIdx] = true
		chosen = append(chosen, answers[bestIdx])
	}
	res.Set = chosen
	res.Value = in.Eval(chosen)
	return res, nil
}

// greedyMaxMinPlane is the interned-ID variant of the farthest-point
// greedy: it maintains each candidate's running min-distance to the chosen
// set, so a round is an O(n) scan plus an O(n) min update against the new
// member instead of an O(n·k) rescan through the interfaces.
func greedyMaxMinPlane(c *ctxpoll.Poller, in *core.Instance, p *objective.Plane) (Result, error) {
	var res Result
	o := in.Obj
	n := p.Len()
	k := in.K
	used := make([]bool, n)
	seed, seedRel := -1, math.Inf(-1)
	for i := 0; i < n; i++ {
		res.Steps++
		if r := p.Rel(i); r > seedRel {
			seedRel, seed = r, i
		}
	}
	minDis := make([]float64, n)
	for i := range minDis {
		minDis[i] = math.Inf(1)
	}
	ids := make([]int, 0, k)
	take := func(idx int) {
		used[idx] = true
		ids = append(ids, idx)
		for i := 0; i < n; i++ {
			if !used[i] {
				if d := p.Dis(idx, i); d < minDis[i] {
					minDis[i] = d
				}
			}
		}
	}
	take(seed)
	for len(ids) < k {
		bestIdx, bestScore := -1, math.Inf(-1)
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			if c.Stop() {
				return res, c.Err()
			}
			res.Steps++
			score := (1-o.Lambda)*p.Rel(i) + o.Lambda*minDis[i]
			if score > bestScore {
				bestScore, bestIdx = score, i
			}
		}
		if bestIdx < 0 {
			break
		}
		take(bestIdx)
	}
	res.Set = planeTuples(p, ids)
	res.Value = o.EvalIDs(p, ids)
	return res, nil
}

// MMR is Maximal Marginal Relevance: identical selection loop to
// GreedyMaxMin but seeded by pure relevance and scoring candidates with the
// classic MMR formula. Kept separate because benchmarks compare both.
func MMR(in *core.Instance) Result {
	// MMR and the farthest-point greedy share their iteration structure;
	// the distinction in the literature is the seeding and that MMR is
	// usually stated for max-marginal relevance over a similarity rather
	// than distance. With δdis as dissimilarity they coincide.
	return GreedyMaxMin(in)
}

// LocalSearchSwap improves a seed set by hill climbing: repeatedly apply the
// single best swap (one chosen tuple out, one unchosen in) while the
// objective strictly improves. Works for all three objectives; for Fmono it
// converges to the optimum because the objective is modular.
func LocalSearchSwap(in *core.Instance, seed []relation.Tuple) Result {
	res, _ := LocalSearchSwapContext(context.Background(), in, seed)
	return res
}

// LocalSearchSwapContext is LocalSearchSwap under a cancellation context; a
// cancelled climb returns the best set reached so far along with ctx's
// error (hill climbing is anytime, so the partial set is still a valid —
// just possibly non-local-optimal — selection).
func LocalSearchSwapContext(ctx context.Context, in *core.Instance, seed []relation.Tuple) (Result, error) {
	var res Result
	answers, err := in.AnswersContext(ctx)
	if err != nil {
		return res, err
	}
	if len(seed) == 0 || len(seed) > len(answers) {
		return res, nil
	}
	c := ctxpoll.New(ctx)
	if p, err := in.PlaneContext(ctx); err != nil {
		return res, err
	} else if p != nil {
		if ids, ok := internSeed(in, seed); ok {
			return localSearchSwapPlane(c, in, p, ids)
		}
	}
	current := append([]relation.Tuple(nil), seed...)
	chosenKeys := make(map[string]bool, len(current))
	for _, t := range current {
		chosenKeys[t.Key()] = true
	}
	cur := in.Eval(current)
	improved := true
	for improved {
		improved = false
		bestVal := cur
		bestI, bestJ := -1, -1
		for i := range current {
			for j, t := range answers {
				if chosenKeys[t.Key()] {
					continue
				}
				if c.Stop() {
					res.Set = current
					res.Value = cur
					return res, c.Err()
				}
				res.Steps++
				old := current[i]
				current[i] = t
				if v := in.Eval(current); v > bestVal {
					bestVal, bestI, bestJ = v, i, j
				}
				current[i] = old
			}
		}
		if bestI >= 0 {
			delete(chosenKeys, current[bestI].Key())
			current[bestI] = answers[bestJ]
			chosenKeys[current[bestI].Key()] = true
			cur = bestVal
			improved = true
		}
	}
	res.Set = current
	res.Value = cur
	return res, nil
}

// internSeed maps a seed set onto answer IDs via the instance's memoized
// key index; a seed tuple outside Q(D) (legal for the public API) reports
// false, sending the caller down the direct-interface path.
func internSeed(in *core.Instance, seed []relation.Tuple) ([]int, bool) {
	idx := in.AnswerIndex()
	ids := make([]int, len(seed))
	for i, t := range seed {
		id, ok := idx[t.Key()]
		if !ok {
			return nil, false
		}
		ids[i] = id
	}
	return ids, true
}

// localSearchSwapPlane is the interned-ID variant of the swap hill climb:
// membership tests are a bool-slice load and every candidate evaluation is
// EvalIDs over the plane instead of an Eval through the interfaces.
func localSearchSwapPlane(c *ctxpoll.Poller, in *core.Instance, p *objective.Plane, seed []int) (Result, error) {
	var res Result
	o := in.Obj
	n := p.Len()
	current := append([]int(nil), seed...)
	inSet := make([]bool, n)
	for _, id := range current {
		inSet[id] = true
	}
	cur := o.EvalIDs(p, current)
	improved := true
	for improved {
		improved = false
		bestVal := cur
		bestI, bestJ := -1, -1
		for i := range current {
			for j := 0; j < n; j++ {
				if inSet[j] {
					continue
				}
				if c.Stop() {
					res.Set = planeTuples(p, current)
					res.Value = cur
					return res, c.Err()
				}
				res.Steps++
				old := current[i]
				current[i] = j
				if v := o.EvalIDs(p, current); v > bestVal {
					bestVal, bestI, bestJ = v, i, j
				}
				current[i] = old
			}
		}
		if bestI >= 0 {
			inSet[current[bestI]] = false
			current[bestI] = bestJ
			inSet[bestJ] = true
			cur = bestVal
			improved = true
		}
	}
	res.Set = planeTuples(p, current)
	res.Value = cur
	return res, nil
}

// Greedy picks the heuristic matched to the instance's objective kind:
// GreedyMaxSum for FMS, GreedyMaxMin for FMM, and exact top-k scores for
// Fmono (optimal thanks to modularity).
func Greedy(in *core.Instance) Result {
	res, _ := GreedyContext(context.Background(), in)
	return res
}

// GreedyContext is Greedy under a cancellation context.
func GreedyContext(ctx context.Context, in *core.Instance) (Result, error) {
	switch in.Obj.Kind {
	case objective.MaxSum:
		return GreedyMaxSumContext(ctx, in)
	case objective.MaxMin:
		return GreedyMaxMinContext(ctx, in)
	default:
		return monoTopK(ctx, in)
	}
}

// monoTopK selects the k answers with the largest Fmono scores — exact for
// the modular objective.
func monoTopK(ctx context.Context, in *core.Instance) (Result, error) {
	var res Result
	answers, err := in.AnswersContext(ctx)
	if err != nil {
		return res, err
	}
	if in.K <= 0 || in.K > len(answers) {
		return res, nil
	}
	var scores []float64
	plane, err := in.PlaneContext(ctx)
	if err != nil {
		return res, err
	}
	if plane != nil {
		scores = in.Obj.MonoScoresPlane(plane)
	} else {
		scores = in.Obj.MonoScores(answers)
	}
	type pair struct {
		idx   int
		score float64
	}
	ps := make([]pair, len(scores))
	for i, s := range scores {
		ps[i] = pair{i, s}
	}
	// Selection of top k by partial sort.
	for i := 0; i < in.K; i++ {
		best := i
		for j := i + 1; j < len(ps); j++ {
			res.Steps++
			if ps[j].score > ps[best].score {
				best = j
			}
		}
		ps[i], ps[best] = ps[best], ps[i]
	}
	set := make([]relation.Tuple, in.K)
	ids := make([]int, in.K)
	for i := 0; i < in.K; i++ {
		set[i] = answers[ps[i].idx]
		ids[i] = ps[i].idx
	}
	res.Set = set
	if plane != nil {
		res.Value = in.Obj.EvalIDs(plane, ids)
	} else {
		res.Value = in.Eval(set)
	}
	return res, nil
}

// Incumbent runs the objective-matched greedy heuristic and returns the
// chosen answers as ascending answer indices — the warm-start incumbent
// the exact branch-and-bound search seeds its pruning bound from, so
// pruning bites from the first node instead of only after the walk finds
// its own first good set. ok is false when no heuristic incumbent is
// available: constraints are present (a greedy set could violate them,
// which would make its score an unsound pruning bound), or the heuristic
// could not produce a full k-set.
func Incumbent(ctx context.Context, in *core.Instance) (ids []int, ok bool, err error) {
	if in.Sigma.Len() > 0 || in.K <= 0 {
		return nil, false, nil
	}
	res, err := GreedyContext(ctx, in)
	if err != nil {
		return nil, false, err
	}
	if len(res.Set) != in.K {
		return nil, false, nil
	}
	ids, ok = internSeed(in, res.Set)
	if !ok {
		return nil, false, nil
	}
	sort.Ints(ids)
	return ids, true, nil
}

// Quality compares a heuristic value against the exact optimum, returning
// the ratio heuristic/optimum in [0, 1] (1 when the optimum is 0 and the
// heuristic matched it). The exactOpt argument is typically
// solver.QRDBest(in).Value.
func Quality(heuristic, exactOpt float64) float64 {
	if exactOpt == 0 {
		if heuristic == 0 {
			return 1
		}
		return 0
	}
	return heuristic / exactOpt
}
