// Package sat implements the Boolean-satisfiability machinery the paper's
// lower bounds are built from: CNF formulas, a DPLL satisfiability solver
// (3SAT, Thm 5.1), exhaustive model counting (#SAT, Thm 7.4; #Σ1SAT,
// Thm 7.1), quantified Boolean formula evaluation (Q3SAT, Thm 5.2; #QBF,
// Thm 7.1/7.2), and random instance generation for the benchmark harness.
//
// Variables are 1-based integers; a literal is +v or -v.
package sat

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Clause is a disjunction of literals.
type Clause []int

// CNF is a conjunction of clauses over variables 1..NumVars.
type CNF struct {
	NumVars int
	Clauses []Clause
}

// NewCNF builds a formula, computing NumVars from the literals.
func NewCNF(clauses ...Clause) *CNF {
	f := &CNF{Clauses: clauses}
	for _, c := range clauses {
		for _, lit := range c {
			v := lit
			if v < 0 {
				v = -v
			}
			if v > f.NumVars {
				f.NumVars = v
			}
		}
	}
	return f
}

// Clone deep-copies the formula.
func (f *CNF) Clone() *CNF {
	g := &CNF{NumVars: f.NumVars, Clauses: make([]Clause, len(f.Clauses))}
	for i, c := range f.Clauses {
		g.Clauses[i] = append(Clause(nil), c...)
	}
	return g
}

// String renders the CNF as (a ∨ ¬b) ∧ ....
func (f *CNF) String() string {
	parts := make([]string, len(f.Clauses))
	for i, c := range f.Clauses {
		lits := make([]string, len(c))
		for j, l := range c {
			if l < 0 {
				lits[j] = fmt.Sprintf("¬x%d", -l)
			} else {
				lits[j] = fmt.Sprintf("x%d", l)
			}
		}
		parts[i] = "(" + strings.Join(lits, " ∨ ") + ")"
	}
	return strings.Join(parts, " ∧ ")
}

// Assignment maps variables to truth values; missing variables are
// unassigned.
type Assignment map[int]bool

// Eval reports whether the assignment (which must cover all variables in
// the clause set) satisfies the formula.
func (f *CNF) Eval(a Assignment) bool {
	for _, c := range f.Clauses {
		sat := false
		for _, l := range c {
			v := l
			neg := false
			if v < 0 {
				v, neg = -v, true
			}
			if val, ok := a[v]; ok && val != neg {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

// Solve decides satisfiability by DPLL with unit propagation and pure
// literal elimination, returning a model if satisfiable.
func (f *CNF) Solve() (Assignment, bool) {
	a := make(Assignment)
	if f.dpll(f.Clauses, a) {
		return a, true
	}
	return nil, false
}

// Satisfiable is Solve without the model.
func (f *CNF) Satisfiable() bool {
	_, ok := f.Solve()
	return ok
}

func (f *CNF) dpll(clauses []Clause, a Assignment) bool {
	clauses, ok := simplify(clauses, a)
	if !ok {
		return false
	}
	if len(clauses) == 0 {
		return true
	}
	// Unit propagation.
	for _, c := range clauses {
		if len(c) == 1 {
			v, val := litVar(c[0])
			a[v] = val
			if f.dpll(clauses, a) {
				return true
			}
			delete(a, v)
			return false
		}
	}
	// Branch on the first variable of the first clause.
	v, _ := litVar(clauses[0][0])
	for _, val := range []bool{true, false} {
		a[v] = val
		if f.dpll(clauses, a) {
			return true
		}
		delete(a, v)
	}
	return false
}

// simplify removes satisfied clauses and false literals under a; reports
// false when a clause became empty (conflict).
func simplify(clauses []Clause, a Assignment) ([]Clause, bool) {
	out := make([]Clause, 0, len(clauses))
	for _, c := range clauses {
		var nc Clause
		sat := false
		for _, l := range c {
			v, pos := litVar(l)
			val, ok := a[v]
			if !ok {
				nc = append(nc, l)
				continue
			}
			if val == pos {
				sat = true
				break
			}
		}
		if sat {
			continue
		}
		if len(nc) == 0 {
			return nil, false
		}
		out = append(out, nc)
	}
	return out, true
}

// litVar decodes a literal into (variable, polarity).
func litVar(l int) (int, bool) {
	if l < 0 {
		return -l, false
	}
	return l, true
}

// CountModels counts satisfying assignments over variables 1..NumVars by
// exhaustive branching with early clause checks — the #SAT oracle of
// Theorem 7.4.
func (f *CNF) CountModels() int64 {
	a := make(Assignment)
	return f.countRec(1, a)
}

func (f *CNF) countRec(v int, a Assignment) int64 {
	if _, ok := simplify(f.Clauses, a); !ok {
		return 0
	}
	if v > f.NumVars {
		return 1
	}
	var total int64
	for _, val := range []bool{false, true} {
		a[v] = val
		total += f.countRec(v+1, a)
		delete(a, v)
	}
	return total
}

// CountProjected counts, over assignments of the projection variables, how
// many can be extended by some assignment of the remaining variables to a
// model — the #Σ1SAT oracle of Theorem 7.1 (project onto Y, existentially
// quantify X).
func (f *CNF) CountProjected(project []int) int64 {
	rest := make([]int, 0, f.NumVars)
	inProj := make(map[int]bool, len(project))
	for _, v := range project {
		inProj[v] = true
	}
	for v := 1; v <= f.NumVars; v++ {
		if !inProj[v] {
			rest = append(rest, v)
		}
	}
	a := make(Assignment)
	var count int64
	var walk func(i int)
	walk = func(i int) {
		if i == len(project) {
			if f.existsExtension(rest, 0, a) {
				count++
			}
			return
		}
		for _, val := range []bool{false, true} {
			a[project[i]] = val
			walk(i + 1)
			delete(a, project[i])
		}
	}
	walk(0)
	return count
}

func (f *CNF) existsExtension(rest []int, i int, a Assignment) bool {
	if _, ok := simplify(f.Clauses, a); !ok {
		return false
	}
	if i == len(rest) {
		return true
	}
	for _, val := range []bool{false, true} {
		a[rest[i]] = val
		ok := f.existsExtension(rest, i+1, a)
		delete(a, rest[i])
		if ok {
			return true
		}
	}
	return false
}

// Quantifier marks a QBF block as existential or universal.
type Quantifier bool

// The two quantifiers.
const (
	Exists Quantifier = true
	ForAll Quantifier = false
)

// String renders the quantifier.
func (q Quantifier) String() string {
	if q == Exists {
		return "∃"
	}
	return "∀"
}

// QBF is a prenex quantified Boolean formula P1 x1 ... Pm xm ψ with ψ in
// CNF; Prefix[i] quantifies variable i+1. Variables beyond the prefix are
// free (used by #QBF, which counts assignments of the free block).
type QBF struct {
	Prefix []Quantifier // Prefix[i] quantifies variable i+1
	Matrix *CNF
}

// Eval decides the sentence when every matrix variable is quantified,
// recursing over the prefix (the Q3SAT oracle of Theorem 5.2).
func (q *QBF) Eval() bool {
	a := make(Assignment)
	return q.evalFrom(1, a)
}

// EvalUnder decides the formula under an assignment of free (unquantified
// leading) variables: used when the prefix covers variables f+1..m and
// 1..f are provided in a.
func (q *QBF) EvalUnder(a Assignment, firstQuantified int) bool {
	cp := make(Assignment, len(a))
	for k, v := range a {
		cp[k] = v
	}
	return q.evalFromAt(firstQuantified, cp)
}

func (q *QBF) evalFrom(v int, a Assignment) bool { return q.evalFromAt(v, a) }

func (q *QBF) evalFromAt(v int, a Assignment) bool {
	if _, ok := simplify(q.Matrix.Clauses, a); !ok {
		return false
	}
	idx := v - 1
	if idx >= len(q.Prefix) || v > q.Matrix.NumVars {
		// All quantified variables assigned: matrix must be satisfied by
		// the (complete) assignment; any remaining variables are
		// unconstrained, so check satisfiability of the residue.
		rest := make([]int, 0)
		for u := v; u <= q.Matrix.NumVars; u++ {
			rest = append(rest, u)
		}
		return q.Matrix.existsExtension(rest, 0, a)
	}
	if q.Prefix[idx] == Exists {
		for _, val := range []bool{true, false} {
			a[v] = val
			if q.evalFromAt(v+1, a) {
				delete(a, v)
				return true
			}
			delete(a, v)
		}
		return false
	}
	for _, val := range []bool{true, false} {
		a[v] = val
		if !q.evalFromAt(v+1, a) {
			delete(a, v)
			return false
		}
		delete(a, v)
	}
	return true
}

// CountFreeModels counts assignments of the free variables 1..numFree that
// make the quantified remainder true — the #QBF oracle of Ladner used in
// Theorems 7.1/7.2 (ϕ = ∃X ∀y1 P2 y2 ... ψ counts X-assignments).
func (q *QBF) CountFreeModels(numFree int) int64 {
	a := make(Assignment)
	var count int64
	var walk func(v int)
	walk = func(v int) {
		if v > numFree {
			if q.EvalUnder(a, numFree+1) {
				count++
			}
			return
		}
		for _, val := range []bool{false, true} {
			a[v] = val
			walk(v + 1)
			delete(a, v)
		}
	}
	walk(1)
	return count
}

// Random3SAT generates a uniform random 3-CNF with the given variable and
// clause counts — the scaling family for combined-complexity experiments.
func Random3SAT(rng *rand.Rand, numVars, numClauses int) *CNF {
	f := &CNF{NumVars: numVars}
	width := 3
	if numVars < width {
		width = numVars // fewer than 3 variables: clauses shrink to fit
	}
	for i := 0; i < numClauses; i++ {
		c := make(Clause, 0, 3)
		seen := map[int]bool{}
		for len(c) < width {
			v := rng.Intn(numVars) + 1
			if seen[v] {
				continue
			}
			seen[v] = true
			if rng.Intn(2) == 0 {
				v = -v
			}
			c = append(c, v)
		}
		sort.Ints(c)
		f.Clauses = append(f.Clauses, c)
	}
	return f
}

// RandomQBF generates a random prenex QBF: a random 3-CNF matrix with a
// random quantifier prefix whose first block is existential.
func RandomQBF(rng *rand.Rand, numVars, numClauses int) *QBF {
	prefix := make([]Quantifier, numVars)
	for i := range prefix {
		prefix[i] = Quantifier(rng.Intn(2) == 0)
	}
	if numVars > 0 {
		prefix[0] = Exists
	}
	return &QBF{Prefix: prefix, Matrix: Random3SAT(rng, numVars, numClauses)}
}

// Vars returns the sorted variables appearing in the formula.
func (f *CNF) Vars() []int {
	seen := map[int]bool{}
	for _, c := range f.Clauses {
		for _, l := range c {
			v, _ := litVar(l)
			seen[v] = true
		}
	}
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}
