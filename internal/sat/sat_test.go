package sat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewCNFComputesNumVars(t *testing.T) {
	f := NewCNF(Clause{1, -3}, Clause{2})
	if f.NumVars != 3 {
		t.Errorf("NumVars = %d, want 3", f.NumVars)
	}
}

func TestEval(t *testing.T) {
	f := NewCNF(Clause{1, 2}, Clause{-1, 3})
	cases := []struct {
		a    Assignment
		want bool
	}{
		{Assignment{1: true, 2: false, 3: true}, true},
		{Assignment{1: true, 2: false, 3: false}, false},
		{Assignment{1: false, 2: true, 3: false}, true},
		{Assignment{1: false, 2: false, 3: true}, false},
	}
	for _, c := range cases {
		if got := f.Eval(c.a); got != c.want {
			t.Errorf("Eval(%v) = %v, want %v", c.a, got, c.want)
		}
	}
}

func TestSolveSatisfiable(t *testing.T) {
	f := NewCNF(Clause{1, 2, 3}, Clause{-1, -2, 3}, Clause{-3, 1})
	model, ok := f.Solve()
	if !ok {
		t.Fatal("formula is satisfiable")
	}
	// The returned model may be partial; complete it arbitrarily and check.
	for v := 1; v <= f.NumVars; v++ {
		if _, assigned := model[v]; !assigned {
			model[v] = false
		}
	}
	if !f.Eval(model) {
		t.Errorf("model %v does not satisfy %v", model, f)
	}
}

func TestSolveUnsatisfiable(t *testing.T) {
	// (x) ∧ (¬x).
	f := NewCNF(Clause{1}, Clause{-1})
	if f.Satisfiable() {
		t.Error("contradiction reported satisfiable")
	}
	// Classic pigeonhole-ish unsat core.
	g := NewCNF(Clause{1, 2}, Clause{1, -2}, Clause{-1, 2}, Clause{-1, -2})
	if g.Satisfiable() {
		t.Error("all-sign square is unsatisfiable")
	}
}

func TestEmptyCNFIsSatisfiable(t *testing.T) {
	if !NewCNF().Satisfiable() {
		t.Error("empty CNF is vacuously satisfiable")
	}
	if got := NewCNF().CountModels(); got != 1 {
		t.Errorf("empty CNF has %d models over zero vars, want 1", got)
	}
}

func TestCountModels(t *testing.T) {
	// (x1 ∨ x2): 3 of 4 assignments.
	f := NewCNF(Clause{1, 2})
	if got := f.CountModels(); got != 3 {
		t.Errorf("models = %d, want 3", got)
	}
	// (x1) ∧ (¬x2): exactly 1.
	g := NewCNF(Clause{1}, Clause{-2})
	if got := g.CountModels(); got != 1 {
		t.Errorf("models = %d, want 1", got)
	}
	// x3 unconstrained: multiplies by 2.
	h := NewCNF(Clause{1, 2})
	h.NumVars = 3
	if got := h.CountModels(); got != 6 {
		t.Errorf("models = %d, want 6", got)
	}
}

func TestCountModelsBruteForceAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		f := Random3SAT(rng, 5, 3+rng.Intn(8))
		f.NumVars = 5
		var brute int64
		a := make(Assignment)
		var walk func(v int)
		walk = func(v int) {
			if v > 5 {
				if f.Eval(a) {
					brute++
				}
				return
			}
			for _, val := range []bool{false, true} {
				a[v] = val
				walk(v + 1)
				delete(a, v)
			}
		}
		walk(1)
		if got := f.CountModels(); got != brute {
			t.Fatalf("trial %d: CountModels=%d brute=%d for %v", trial, got, brute, f)
		}
		if f.Satisfiable() != (brute > 0) {
			t.Fatalf("trial %d: Satisfiable disagrees with count", trial)
		}
	}
}

func TestCountProjected(t *testing.T) {
	// ϕ(X={1}, Y={2,3}) = (x1 ∨ y2) ∧ (¬x1 ∨ y3).
	// Project onto Y={2,3}: count Y-assignments with some x1 extension.
	// y2=0,y3=0: x1 must satisfy (x1)(¬x1): no. y2=0,y3=1: x1=1 works.
	// y2=1,y3=0: x1=0 works. y2=1,y3=1: both work -> counts once.
	f := NewCNF(Clause{1, 2}, Clause{-1, 3})
	if got := f.CountProjected([]int{2, 3}); got != 3 {
		t.Errorf("projected count = %d, want 3", got)
	}
}

func TestCountProjectedAllVars(t *testing.T) {
	// Projecting onto all variables degenerates to #SAT.
	f := NewCNF(Clause{1, 2})
	if got := f.CountProjected([]int{1, 2}); got != f.CountModels() {
		t.Errorf("full projection %d != #SAT %d", got, f.CountModels())
	}
}

func TestQBFEval(t *testing.T) {
	// ∀x1 ∃x2 (x1 ∨ x2) ∧ (¬x1 ∨ ¬x2): true (pick x2 = ¬x1).
	q := &QBF{Prefix: []Quantifier{ForAll, Exists},
		Matrix: NewCNF(Clause{1, 2}, Clause{-1, -2})}
	if !q.Eval() {
		t.Error("∀x∃y XOR-ish formula should be true")
	}
	// ∃x1 ∀x2 (x1 ∨ x2) ∧ (¬x1 ∨ ¬x2): false.
	q2 := &QBF{Prefix: []Quantifier{Exists, ForAll},
		Matrix: NewCNF(Clause{1, 2}, Clause{-1, -2})}
	if q2.Eval() {
		t.Error("∃x∀y XOR-ish formula should be false")
	}
}

func TestQBFEvalPaperExample(t *testing.T) {
	// Figure 2's sentence: ϕ = ∃x1 ∀x2 ∃x3 ∀x4 ψ,
	// ψ = (x1 ∨ x2 ∨ ¬x3) ∧ (¬x2 ∨ ¬x3 ∨ x4).
	q := &QBF{
		Prefix: []Quantifier{Exists, ForAll, Exists, ForAll},
		Matrix: NewCNF(Clause{1, 2, -3}, Clause{-2, -3, 4}),
	}
	// x1=1: ∀x2: need ∃x3 ∀x4. Take x3=0: clause1 = x1∨x2∨1 ✓ (¬x3 true);
	// clause2 = ¬x2∨1∨x4 ✓. So the sentence is true.
	if !q.Eval() {
		t.Error("the Figure 2 sentence should be true")
	}
}

func TestQBFAllForAll(t *testing.T) {
	// ∀x1 ∀x2 (x1 ∨ x2): false.
	q := &QBF{Prefix: []Quantifier{ForAll, ForAll}, Matrix: NewCNF(Clause{1, 2})}
	if q.Eval() {
		t.Error("should be false at x1=x2=0")
	}
	// ∀x1 ∀x2 (x1 ∨ ¬x1): true.
	q2 := &QBF{Prefix: []Quantifier{ForAll, ForAll}, Matrix: NewCNF(Clause{1, -1})}
	if !q2.Eval() {
		t.Error("tautology should be true")
	}
}

func TestQBFBruteForceAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		q := RandomQBF(rng, 4, 3+rng.Intn(5))
		q.Matrix.NumVars = 4
		if got, want := q.Eval(), bruteQBF(q, 1, make(Assignment)); got != want {
			t.Fatalf("trial %d: Eval=%v brute=%v for %v %v", trial, got, want, q.Prefix, q.Matrix)
		}
	}
}

// bruteQBF evaluates the QBF by unoptimized recursion directly over Eval.
func bruteQBF(q *QBF, v int, a Assignment) bool {
	if v > q.Matrix.NumVars {
		return q.Matrix.Eval(a)
	}
	t := func(val bool) bool {
		a[v] = val
		defer delete(a, v)
		return bruteQBF(q, v+1, a)
	}
	if v-1 < len(q.Prefix) && q.Prefix[v-1] == ForAll {
		return t(false) && t(true)
	}
	return t(false) || t(true)
}

func TestCountFreeModels(t *testing.T) {
	// ϕ = ∃-free x1; then ∀x2 (x1 ∨ x2 has no universal witness unless x1).
	// Count x1-assignments such that ∀x2 (x1 ∨ x2): only x1=1. Prefix covers
	// variable 2 onwards.
	q := &QBF{Prefix: []Quantifier{Exists, ForAll}, Matrix: NewCNF(Clause{1, 2})}
	// Free block: variable 1. Prefix index is positional; EvalUnder starts
	// at firstQuantified=2, whose prefix entry is Prefix[1] = ForAll.
	if got := q.CountFreeModels(1); got != 1 {
		t.Errorf("free models = %d, want 1", got)
	}
}

func TestRandom3SATShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := Random3SAT(rng, 10, 20)
	if len(f.Clauses) != 20 {
		t.Errorf("%d clauses, want 20", len(f.Clauses))
	}
	for _, c := range f.Clauses {
		if len(c) != 3 {
			t.Errorf("clause %v is not ternary", c)
		}
		vars := map[int]bool{}
		for _, l := range c {
			v, _ := litVar(l)
			if v < 1 || v > 10 {
				t.Errorf("variable %d out of range", v)
			}
			if vars[v] {
				t.Errorf("clause %v repeats a variable", c)
			}
			vars[v] = true
		}
	}
}

func TestVars(t *testing.T) {
	f := NewCNF(Clause{3, -1}, Clause{5})
	got := f.Vars()
	want := []int{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("Vars = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Vars = %v, want %v", got, want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	f := NewCNF(Clause{1, 2})
	g := f.Clone()
	g.Clauses[0][0] = 9
	if f.Clauses[0][0] != 1 {
		t.Error("Clone should deep-copy clauses")
	}
}

func TestStringRendering(t *testing.T) {
	f := NewCNF(Clause{1, -2})
	if got := f.String(); got != "(x1 ∨ ¬x2)" {
		t.Errorf("String = %q", got)
	}
}

// Property: DPLL agrees with brute-force satisfiability on small random
// formulas.
func TestSolveBruteAgreementProperty(t *testing.T) {
	f := func(seed int64, clausesRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nc := int(clausesRaw%12) + 1
		cnf := Random3SAT(rng, 4, nc)
		cnf.NumVars = 4
		return cnf.Satisfiable() == (cnf.CountModels() > 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuantifierString(t *testing.T) {
	if Exists.String() != "∃" || ForAll.String() != "∀" {
		t.Errorf("quantifier rendering: ∃=%q ∀=%q", Exists.String(), ForAll.String())
	}
}

// TestSolveTable pins DPLL on a table of formulas with known satisfiability
// and, where satisfiable, verifies the returned assignment actually models
// the formula (a round-trip through Eval rather than trusting the flag).
func TestSolveTable(t *testing.T) {
	cases := []struct {
		name string
		f    *CNF
		sat  bool
	}{
		{"empty", NewCNF(), true},
		{"unit", NewCNF(Clause{1}), true},
		{"unit-conflict", NewCNF(Clause{1}, Clause{-1}), false},
		{"chain-implication", NewCNF(Clause{1}, Clause{-1, 2}, Clause{-2, 3}, Clause{-3, 4}), true},
		{"horn-unsat", NewCNF(Clause{1}, Clause{2}, Clause{-1, -2}), false},
		{"two-of-three", NewCNF(Clause{1, 2}, Clause{-1, 3}, Clause{-2, -3}), true},
		{"full-cube-blocked", NewCNF(
			Clause{1, 2}, Clause{1, -2}, Clause{-1, 2}, Clause{-1, -2}), false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a, ok := c.f.Solve()
			if ok != c.sat {
				t.Fatalf("Solve = %v, want %v", ok, c.sat)
			}
			if ok && !c.f.Eval(a) {
				t.Errorf("Solve's assignment %v does not satisfy %s", a, c.f)
			}
			if got := c.f.CountModels() > 0; got != c.sat {
				t.Errorf("CountModels positivity = %v, want %v", got, c.sat)
			}
		})
	}
}

// TestCountProjectedTable pins projected counting on hand-checkable cases.
func TestCountProjectedTable(t *testing.T) {
	// f = (x1 ∨ x2): 3 models over {x1,x2}.
	f := NewCNF(Clause{1, 2})
	cases := []struct {
		name    string
		project []int
		want    int64
	}{
		{"onto-x1", []int{1}, 2},      // x1=0 (x2=1 extends), x1=1
		{"onto-x2", []int{2}, 2},      // symmetric
		{"onto-both", []int{1, 2}, 3}, // full model count
		{"onto-none", []int{}, 1},     // satisfiable: one empty projection
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := f.CountProjected(c.project); got != c.want {
				t.Errorf("CountProjected(%v) = %d, want %d", c.project, got, c.want)
			}
		})
	}
}
