// Recovery: newest snapshot, then log-over-snapshot replay. Every record
// carries the generation it advanced the database to and records are
// contiguous, so replay is self-verifying — a gap or a mismatched
// generation after applying a record is corruption, not something to paper
// over. A torn final record in the newest segment is the one expected crash
// artifact: it is truncated away (the mutation it held was never
// acknowledged under FsyncAlways) unless the clean-shutdown marker says no
// crash happened, in which case it too is corruption.
package wal

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/fsio"
	"repro/internal/relation"
)

// RecoverInfo reports what recovery found and did.
type RecoverInfo struct {
	// SnapshotGen is the generation of the snapshot loaded (0 when none).
	SnapshotGen uint64
	// SnapshotLoaded distinguishes "no snapshot" from "snapshot at gen 0".
	SnapshotLoaded bool
	// Replayed counts the log records applied over the snapshot.
	Replayed int
	// TornTail reports that a truncated/corrupt final record was cut from
	// the newest segment.
	TornTail bool
	// CleanShutdown reports the clean marker was present: the previous
	// process Closed its log properly.
	CleanShutdown bool
	// Generation is the database generation recovery ended at.
	Generation uint64
}

// Recover reconstructs the database persisted in dir. A missing or empty
// directory yields a fresh empty database — first boot is not an error.
// The returned database has no tap installed; the caller attaches a new
// Log (Create) after recovery so replayed records are not re-logged.
func Recover(dir string) (*relation.Database, RecoverInfo, error) {
	info := RecoverInfo{}
	if _, err := os.Stat(dir); os.IsNotExist(err) {
		return relation.NewDatabase(), info, nil
	}
	if _, err := os.Stat(filepath.Join(dir, cleanMarker)); err == nil {
		info.CleanShutdown = true
	}

	db := relation.NewDatabase()
	snaps, err := listSnapshots(fsio.Default, dir)
	if err != nil {
		return nil, info, err
	}
	if len(snaps) > 0 {
		newest := snaps[len(snaps)-1]
		loaded, gen, err := loadSnapshot(newest.path)
		if err != nil {
			// A snapshot is renamed into place only after a successful
			// fsync, so a bad one is real corruption: refuse to serve a
			// silently older state.
			return nil, info, err
		}
		db = loaded
		info.SnapshotGen, info.SnapshotLoaded = gen, true
	}

	segs, err := listSegments(fsio.Default, dir)
	if err != nil {
		return nil, info, err
	}
	for i, seg := range segs {
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return nil, info, err
		}
		if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
			return nil, info, fmt.Errorf("wal: %s: bad segment header", seg.path)
		}
		recs, validEnd, torn, err := scanFrames(data[len(segMagic):])
		if err != nil {
			return nil, info, fmt.Errorf("wal: %s: %v", seg.path, err)
		}
		for _, rec := range recs {
			switch {
			case rec.gen <= db.Generation():
				// Covered by the snapshot (or a segment overlap from a
				// crash between snapshot write and segment pruning).
				continue
			case rec.gen != db.Generation()+1:
				return nil, info, fmt.Errorf("wal: %s: generation gap (have %d, record %d)",
					seg.path, db.Generation(), rec.gen)
			}
			if err := apply(db, rec); err != nil {
				return nil, info, fmt.Errorf("wal: %s: %v", seg.path, err)
			}
			if db.Generation() != rec.gen {
				return nil, info, fmt.Errorf("wal: %s: replay desync at generation %d", seg.path, rec.gen)
			}
			info.Replayed++
		}
		if torn {
			if i != len(segs)-1 {
				return nil, info, fmt.Errorf("wal: %s: torn record in a non-final segment", seg.path)
			}
			if info.CleanShutdown {
				return nil, info, fmt.Errorf("wal: %s: torn record after a clean shutdown", seg.path)
			}
			// The residue of a crash mid-append: the record was never
			// acknowledged as durable, so cutting it loses nothing that was
			// promised. Truncate so the next recovery reads a clean file.
			if err := os.Truncate(seg.path, int64(len(segMagic)+validEnd)); err != nil {
				return nil, info, err
			}
			info.TornTail = true
		}
	}
	info.Generation = db.Generation()
	return db, info, nil
}

// apply replays one record through the database's normal mutation paths,
// so generation accounting and journaling behave exactly as they did when
// the record was first written.
func apply(db *relation.Database, rec record) error {
	switch rec.kind {
	case recAddRelation:
		r := relation.NewRelation(rec.schema)
		for _, t := range rec.tuples {
			r.Insert(t)
		}
		db.Add(r)
		return nil
	case recInsert:
		r := db.Relation(rec.rel)
		if r == nil {
			return fmt.Errorf("insert into unknown relation %q", rec.rel)
		}
		if !r.Insert(rec.tuple) {
			return fmt.Errorf("replayed insert into %q was a duplicate", rec.rel)
		}
		return nil
	case recDelete:
		r := db.Relation(rec.rel)
		if r == nil {
			return fmt.Errorf("delete from unknown relation %q", rec.rel)
		}
		if !r.Delete(rec.tuple) {
			return fmt.Errorf("replayed delete from %q found no tuple", rec.rel)
		}
		return nil
	default:
		return fmt.Errorf("unknown record kind %d", rec.kind)
	}
}
