// Package wal is the durability subsystem: a write-ahead log plus periodic
// snapshots for the relational substrate, so a restarted process recovers
// its full database — and the exact generation counter — from disk instead
// of cold-rebuilding.
//
// The design is the classic log-over-snapshot pairing. A Log is an
// append-only sequence of segment files receiving one checksummed record
// per committed mutation (the Log implements relation.Tap, so every tuple
// insert/delete and structural relation Add streams to disk before the
// mutation returns). A snapshot serializes the whole database at a recorded
// generation; once one is durable, every older segment and snapshot is
// redundant and pruned. Recovery loads the newest snapshot, replays the
// records above its generation, truncates a torn tail record (the expected
// residue of a crash mid-append) and hands back a database bit-identical to
// the crashed process's last durable state.
//
// A data directory owned by this package contains:
//
//	wal-00000042.log   append-only segments, one per boot or rotation
//	snap-…0001337.snap full database image at generation 1337
//	CLEAN              present only after a clean Close (skips torn-tail
//	                   tolerance: with the marker, a torn record is
//	                   corruption, not an expected crash artifact)
package wal

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fsio"
	"repro/internal/relation"
)

const (
	segMagic    = "DIVWAL01"
	snapMagic   = "DIVSNAP1"
	cleanMarker = "CLEAN"
)

// FsyncPolicy says when appended records are forced to stable storage.
type FsyncPolicy string

const (
	// FsyncAlways syncs after every append: an acknowledged mutation is
	// durable, at the cost of one fsync per mutation.
	FsyncAlways FsyncPolicy = "always"
	// FsyncInterval syncs on a timer (Options.FsyncEvery): a crash loses at
	// most one interval of acknowledged mutations.
	FsyncInterval FsyncPolicy = "interval"
	// FsyncOff never syncs explicitly; the OS flushes when it pleases.
	// Fastest, loses the page cache on power failure, survives process
	// crashes (the kernel still has the writes).
	FsyncOff FsyncPolicy = "off"
)

// ParseFsyncPolicy maps the flag spelling onto a policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch FsyncPolicy(s) {
	case FsyncAlways, FsyncInterval, FsyncOff:
		return FsyncPolicy(s), nil
	default:
		return "", fmt.Errorf("wal: unknown fsync policy %q (want always, interval or off)", s)
	}
}

// Options tunes a Log. The zero value means: fsync always, 100ms interval
// (if the interval policy is chosen), 64 MiB segments, the real filesystem.
type Options struct {
	Fsync        FsyncPolicy
	FsyncEvery   time.Duration // FsyncInterval period
	SegmentBytes int64         // rotation threshold
	// FS is the filesystem the write path goes through; nil means the real
	// one. Fault-injection harnesses (internal/faultfs) interpose here.
	FS fsio.FS
}

func (o Options) withDefaults() Options {
	if o.Fsync == "" {
		o.Fsync = FsyncAlways
	}
	if o.FsyncEvery <= 0 {
		o.FsyncEvery = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.FS == nil {
		o.FS = fsio.Default
	}
	return o
}

// Metrics is a point-in-time snapshot of the log's counters.
type Metrics struct {
	Bytes           int64  // record bytes appended (framing included)
	Records         int64  // records appended
	Fsyncs          int64  // explicit syncs issued
	LastSnapshotGen uint64 // generation of the newest durable snapshot
}

// Log is the append-only segment writer. It implements relation.Tap, so
// installing it with Database.SetTap streams every committed mutation to
// disk synchronously — the record is on the write buffer (and, under
// FsyncAlways, on stable storage) before the mutation call returns.
//
// Appends cannot return an error through the Tap interface; failures are
// sticky and surfaced by Err, which the owning engine checks after every
// mutation. After the first failure the log drops subsequent records — the
// on-disk prefix stays valid, and the engine refuses further mutations.
type Log struct {
	dir  string
	opts Options
	fs   fsio.FS

	mu    sync.Mutex
	f     fsio.File
	w     *bufio.Writer
	seq   uint64 // current segment sequence number
	size  int64  // bytes appended to the current segment
	err   error  // sticky first failure
	dirty bool   // unsynced appends pending (interval policy)

	bytes    atomic.Int64
	records  atomic.Int64
	fsyncs   atomic.Int64
	lastSnap atomic.Uint64

	stop chan struct{} // closes the interval flusher
	done chan struct{}
}

// Create opens a log for appending in dir, creating the directory if
// needed. It always starts a fresh segment (never appends to an old one, so
// a truncated predecessor is left untouched as evidence), removes the
// clean-shutdown marker — from here on, a crash is a crash — and seeds the
// last-snapshot watermark from the newest snapshot on disk.
func Create(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	fs := opts.FS
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if err := fs.Remove(filepath.Join(dir, cleanMarker)); err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	segs, err := listSegments(fs, dir)
	if err != nil {
		return nil, err
	}
	var seq uint64 = 1
	if len(segs) > 0 {
		seq = segs[len(segs)-1].seq + 1
	}
	l := &Log{dir: dir, opts: opts, fs: fs, seq: seq}
	if snaps, err := listSnapshots(fs, dir); err == nil && len(snaps) > 0 {
		l.lastSnap.Store(snaps[len(snaps)-1].gen)
	}
	if err := l.openSegment(); err != nil {
		return nil, err
	}
	if opts.Fsync == FsyncInterval {
		l.stop = make(chan struct{})
		l.done = make(chan struct{})
		go l.flushLoop()
	}
	return l, nil
}

// Dir returns the data directory the log writes to.
func (l *Log) Dir() string { return l.dir }

// segmentName renders "wal-%08d.log"; zero-padding keeps lexical and
// numeric order identical.
func segmentName(seq uint64) string { return fmt.Sprintf("wal-%08d.log", seq) }

// snapshotName renders "snap-%020d.snap" (20 digits: a full uint64).
func snapshotName(gen uint64) string { return fmt.Sprintf("snap-%020d.snap", gen) }

type segmentFile struct {
	path string
	seq  uint64
}

type snapshotFile struct {
	path string
	gen  uint64
}

// listSegments returns the wal-*.log files in ascending sequence order.
func listSegments(fs fsio.FS, dir string) ([]segmentFile, error) {
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segmentFile
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 10, 64)
		if err != nil {
			continue // not ours
		}
		segs = append(segs, segmentFile{path: filepath.Join(dir, name), seq: seq})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	return segs, nil
}

// listSnapshots returns the snap-*.snap files in ascending generation order.
func listSnapshots(fs fsio.FS, dir string) ([]snapshotFile, error) {
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var snaps []snapshotFile
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".snap") {
			continue
		}
		gen, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap"), 10, 64)
		if err != nil {
			continue
		}
		snaps = append(snaps, snapshotFile{path: filepath.Join(dir, name), gen: gen})
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].gen < snaps[j].gen })
	return snaps, nil
}

// openSegment starts segment l.seq: magic header, synced so the file exists
// durably before any record lands in it. Caller holds l.mu (or is Create).
func (l *Log) openSegment() error {
	f, err := l.fs.OpenFile(filepath.Join(l.dir, segmentName(l.seq)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	l.fsyncs.Add(1)
	if err := l.fs.SyncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.w = bufio.NewWriter(f)
	l.size = 0
	return nil
}

// TapChange implements relation.Tap: one journaled tuple mutation.
func (l *Log) TapChange(c relation.Change) {
	kind := recInsert
	if c.Op == relation.OpDelete {
		kind = recDelete
	}
	l.append(record{kind: kind, gen: c.Gen, rel: c.Rel, tuple: c.Tuple})
}

// TapAdd implements relation.Tap: a structural relation Add, carrying the
// schema and whatever rows the relation arrived with.
func (l *Log) TapAdd(gen uint64, r *relation.Relation) {
	l.append(record{kind: recAddRelation, gen: gen, schema: r.Schema(), tuples: r.Tuples()})
}

// append frames, writes and (policy permitting) syncs one record, rotating
// the segment first when it has outgrown the threshold.
func (l *Log) append(rec record) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return
	}
	if l.size >= l.opts.SegmentBytes {
		if l.err = l.rotateLocked(); l.err != nil {
			return
		}
	}
	framed := frame(encodePayload(rec))
	if _, err := l.w.Write(framed); err != nil {
		l.err = err
		return
	}
	l.size += int64(len(framed))
	l.bytes.Add(int64(len(framed)))
	l.records.Add(1)
	l.dirty = true
	if l.opts.Fsync == FsyncAlways {
		l.err = l.syncLocked()
	}
}

// syncLocked flushes the buffer and fsyncs the segment. Caller holds l.mu.
func (l *Log) syncLocked() error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.fsyncs.Add(1)
	l.dirty = false
	return nil
}

// Sync forces buffered records to stable storage, whatever the policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	l.err = l.syncLocked()
	return l.err
}

// Err reports the sticky append/sync failure, if any.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// rotateLocked seals the current segment and opens the next. Caller holds
// l.mu.
func (l *Log) rotateLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	l.seq++
	return l.openSegment()
}

// flushLoop is the FsyncInterval policy's timer: sync dirty buffers every
// FsyncEvery until Close.
func (l *Log) flushLoop() {
	defer close(l.done)
	ticker := time.NewTicker(l.opts.FsyncEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			l.mu.Lock()
			if l.err == nil && l.dirty {
				l.err = l.syncLocked()
			}
			l.mu.Unlock()
		case <-l.stop:
			return
		}
	}
}

// Snapshot serializes db — which the caller must hold still (the engine
// calls this under its database lock) — to a durable snapshot file at the
// current generation, rotates to a fresh segment, and prunes every older
// segment and snapshot: with the mutation stream frozen, everything the log
// held is below the snapshot's generation, so the snapshot subsumes it.
// It returns the snapshot's generation.
func (l *Log) Snapshot(db *relation.Database) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	// Everything appended so far must be durable before the old segments'
	// fate rests on the snapshot file.
	if err := l.syncLocked(); err != nil {
		l.err = err
		return 0, err
	}
	gen := db.Generation()
	if err := writeSnapshot(l.fs, l.dir, db, gen, &l.fsyncs); err != nil {
		return 0, err
	}
	l.lastSnap.Store(gen)
	if err := l.f.Close(); err != nil {
		l.err = err
		return 0, err
	}
	l.seq++
	if err := l.openSegment(); err != nil {
		l.err = err
		return 0, err
	}
	// Prune: older segments are all <= gen (the stream was frozen), older
	// snapshots are subsumed. Failures here are cosmetic — recovery skips
	// covered records — so they are ignored.
	if segs, err := listSegments(l.fs, l.dir); err == nil {
		for _, s := range segs {
			if s.seq < l.seq {
				l.fs.Remove(s.path)
			}
		}
	}
	if snaps, err := listSnapshots(l.fs, l.dir); err == nil {
		for _, s := range snaps {
			if s.gen < gen {
				l.fs.Remove(s.path)
			}
		}
	}
	return gen, nil
}

// Metrics snapshots the counters.
func (l *Log) Metrics() Metrics {
	return Metrics{
		Bytes:           l.bytes.Load(),
		Records:         l.records.Load(),
		Fsyncs:          l.fsyncs.Load(),
		LastSnapshotGen: l.lastSnap.Load(),
	}
}

// Close flushes and fsyncs outstanding records, writes the clean-shutdown
// marker — recovery will then treat a torn tail as corruption rather than
// an expected crash artifact — and closes the segment. The log is unusable
// afterwards.
func (l *Log) Close() error {
	if l.stop != nil {
		close(l.stop)
		<-l.done
		l.stop = nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return l.err
	}
	err := l.syncLocked()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	if err == nil {
		err = writeFileDurable(l.fs, filepath.Join(l.dir, cleanMarker), []byte("clean\n"), &l.fsyncs)
	}
	if l.err == nil {
		l.err = fmt.Errorf("wal: log closed")
		return err
	}
	return l.err
}

// writeFileDurable writes a small file and syncs both it and its directory.
func writeFileDurable(fs fsio.FS, path string, data []byte, fsyncs *atomic.Int64) error {
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if fsyncs != nil {
		fsyncs.Add(1)
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fs.SyncDir(filepath.Dir(path))
}
