// Snapshots: a full serialization of the database at one generation, so
// recovery replays only the log suffix above it instead of the whole
// mutation history. The file is a single checksummed blob written to a
// temporary name and renamed into place — it either exists completely or
// not at all, which is what lets the log prune everything older the moment
// the rename lands.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync/atomic"

	"repro/internal/fsio"
	"repro/internal/relation"
)

// encodeSnapshot renders the database body (after the magic):
//
//	uvarint gen | uvarint #relations |
//	  per relation (registration order): schema | uvarint #tuples | tuples
//
// followed by a uint32 CRC-32C of magic+body. Tuples are written in
// insertion order so the reconstructed relations iterate identically.
func encodeSnapshot(db *relation.Database, gen uint64) []byte {
	b := make([]byte, 0, 1<<16)
	b = append(b, snapMagic...)
	b = binary.AppendUvarint(b, gen)
	names := db.Names()
	b = binary.AppendUvarint(b, uint64(len(names)))
	for _, name := range names {
		r := db.Relation(name)
		b = appendSchema(b, r.Schema())
		b = binary.AppendUvarint(b, uint64(r.Len()))
		for _, t := range r.Tuples() {
			b = appendTuple(b, t)
		}
	}
	return binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, crcTable))
}

// writeSnapshot durably writes the snapshot file for gen: temp file, fsync,
// rename, directory fsync.
func writeSnapshot(fs fsio.FS, dir string, db *relation.Database, gen uint64, fsyncs *atomic.Int64) error {
	data := encodeSnapshot(db, gen)
	tmp, err := fs.CreateTemp(dir, "snap-*.tmp")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		fs.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		fs.Remove(tmpName)
		return err
	}
	if fsyncs != nil {
		fsyncs.Add(1)
	}
	if err := tmp.Close(); err != nil {
		fs.Remove(tmpName)
		return err
	}
	if err := fs.Rename(tmpName, filepath.Join(dir, snapshotName(gen))); err != nil {
		fs.Remove(tmpName)
		return err
	}
	return fs.SyncDir(dir)
}

// loadSnapshot reads and verifies a snapshot file and reconstructs the
// database, restoring the recorded generation so log replay resumes the
// exact sequence.
func loadSnapshot(path string) (*relation.Database, uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	if len(data) < len(snapMagic)+4 || string(data[:len(snapMagic)]) != snapMagic {
		return nil, 0, fmt.Errorf("wal: %s: not a snapshot file", path)
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, crcTable) != sum {
		return nil, 0, fmt.Errorf("wal: %s: snapshot checksum mismatch", path)
	}
	r := &byteReader{b: body, off: len(snapMagic)}
	gen := r.uvarint()
	nrels := r.uvarint()
	if r.err != nil || nrels > uint64(len(body)) {
		return nil, 0, fmt.Errorf("wal: %s: corrupt snapshot header", path)
	}
	db := relation.NewDatabase()
	for i := uint64(0); i < nrels; i++ {
		name := r.str()
		nattrs := r.uvarint()
		if r.err != nil || nattrs > uint64(len(body)) {
			return nil, 0, fmt.Errorf("wal: %s: corrupt schema in snapshot", path)
		}
		attrs := make([]string, 0, nattrs)
		for j := uint64(0); j < nattrs && r.err == nil; j++ {
			attrs = append(attrs, r.str())
		}
		if r.err != nil {
			return nil, 0, fmt.Errorf("wal: %s: %v", path, r.err)
		}
		rel := relation.NewRelation(relation.NewSchema(name, attrs...))
		ntuples := r.uvarint()
		if r.err != nil || ntuples > uint64(len(body)) {
			return nil, 0, fmt.Errorf("wal: %s: corrupt tuple count in snapshot", path)
		}
		for j := uint64(0); j < ntuples && r.err == nil; j++ {
			rel.Insert(r.tuple())
		}
		db.Add(rel)
	}
	if r.err != nil {
		return nil, 0, fmt.Errorf("wal: %s: %v", path, r.err)
	}
	if r.off != len(body) {
		return nil, 0, fmt.Errorf("wal: %s: %d trailing bytes in snapshot", path, len(body)-r.off)
	}
	db.RestoreGeneration(gen)
	return db, gen, nil
}
