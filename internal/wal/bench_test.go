package wal

import (
	"testing"

	"repro/internal/relation"
	"repro/internal/value"
)

// BenchmarkWALAppend measures the per-mutation durability tax: one framed
// record through TapChange under each fsync policy. The off arm is the
// encoding+buffering cost alone; the always arm adds the fsync every
// acknowledged mutation pays, which is the price of the "acked means
// durable" contract and dominated by the storage device.
func BenchmarkWALAppend(b *testing.B) {
	tuple := relation.Tuple{value.Int(12345), value.Float(0.125), value.Str("bench-item"), value.Bool(true)}
	for _, policy := range []FsyncPolicy{FsyncOff, FsyncAlways} {
		b.Run(string(policy), func(b *testing.B) {
			l, err := Create(b.TempDir(), Options{Fsync: policy})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l.TapChange(relation.Change{Gen: uint64(i + 1), Op: relation.OpInsert, Rel: "p", Tuple: tuple})
			}
			b.StopTimer()
			if err := l.Err(); err != nil {
				b.Fatal(err)
			}
			m := l.Metrics()
			b.ReportMetric(float64(m.Bytes)/float64(m.Records), "bytes/record")
		})
	}
}
