package wal

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/fsio"
	"repro/internal/relation"
	"repro/internal/value"
)

// mixedTuple exercises every wire value kind, with a float chosen so that
// anything but bit-exact round-tripping shows.
func mixedTuple() relation.Tuple {
	return relation.Tuple{
		value.Int(-42),
		value.Float(math.Pi),
		value.Str("snowglobe"),
		value.Bool(true),
	}
}

func TestRecordRoundTrip(t *testing.T) {
	schema := relation.NewSchema("items", "id", "score", "name", "active")
	recs := []record{
		{kind: recAddRelation, gen: 1, schema: schema, tuples: []relation.Tuple{mixedTuple()}},
		{kind: recAddRelation, gen: 2, schema: relation.NewSchema("empty", "x")},
		{kind: recInsert, gen: 3, rel: "items", tuple: mixedTuple()},
		{kind: recDelete, gen: 4, rel: "items", tuple: relation.Tuple{value.Int(0), value.Float(math.Inf(-1)), value.Str(""), value.Bool(false)}},
	}
	for _, in := range recs {
		out, err := decodePayload(encodePayload(in))
		if err != nil {
			t.Fatalf("decode gen %d: %v", in.gen, err)
		}
		if out.kind != in.kind || out.gen != in.gen || out.rel != in.rel {
			t.Fatalf("round trip mismatch: got %+v want %+v", out, in)
		}
		if !reflect.DeepEqual(out.tuple, in.tuple) {
			t.Fatalf("tuple mismatch: got %v want %v", out.tuple, in.tuple)
		}
		if in.kind == recAddRelation {
			if !reflect.DeepEqual(out.schema, in.schema) || len(out.tuples) != len(in.tuples) {
				t.Fatalf("schema record mismatch: got %+v want %+v", out, in)
			}
			for i := range in.tuples {
				if !reflect.DeepEqual(out.tuples[i], in.tuples[i]) {
					t.Fatalf("schema record tuple %d: got %v want %v", i, out.tuples[i], in.tuples[i])
				}
			}
		}
	}
}

func TestScanFramesTornAtEveryOffset(t *testing.T) {
	full := append(
		frame(encodePayload(record{kind: recInsert, gen: 1, rel: "r", tuple: mixedTuple()})),
		frame(encodePayload(record{kind: recInsert, gen: 2, rel: "r", tuple: mixedTuple()}))...)
	firstLen := len(frame(encodePayload(record{kind: recInsert, gen: 1, rel: "r", tuple: mixedTuple()})))
	for cut := 0; cut < len(full); cut++ {
		recs, validEnd, torn, err := scanFrames(full[:cut])
		if err != nil {
			t.Fatalf("cut %d: unexpected error %v", cut, err)
		}
		wantRecs := 0
		if cut >= firstLen {
			wantRecs = 1
		}
		if len(recs) != wantRecs {
			t.Fatalf("cut %d: got %d records, want %d", cut, len(recs), wantRecs)
		}
		if wantTorn := cut != 0 && cut != firstLen; torn != wantTorn {
			t.Fatalf("cut %d: torn=%v, want %v", cut, torn, wantTorn)
		}
		if wantEnd := wantRecs * firstLen; validEnd != wantEnd {
			t.Fatalf("cut %d: validEnd=%d, want %d", cut, validEnd, wantEnd)
		}
	}
	// The uncut body parses whole.
	recs, _, torn, err := scanFrames(full)
	if err != nil || torn || len(recs) != 2 {
		t.Fatalf("full scan: recs=%d torn=%v err=%v", len(recs), torn, err)
	}
}

func TestScanFramesCorruptCRC(t *testing.T) {
	body := frame(encodePayload(record{kind: recInsert, gen: 1, rel: "r", tuple: mixedTuple()}))
	body[len(body)-1] ^= 0xff // flip a payload byte after the CRC was computed
	recs, validEnd, torn, err := scanFrames(body)
	if err != nil || !torn || len(recs) != 0 || validEnd != 0 {
		t.Fatalf("corrupt CRC: recs=%d validEnd=%d torn=%v err=%v", len(recs), validEnd, torn, err)
	}
}

func TestScanFramesMalformedPayloadIsError(t *testing.T) {
	// A frame whose checksum is fine but whose payload is garbage must be a
	// hard error (encoder bug or tampering), not a silently truncated tail.
	body := frame([]byte{0x7f, 0x01})
	_, _, torn, err := scanFrames(body)
	if err == nil || torn {
		t.Fatalf("malformed payload: torn=%v err=%v, want hard error", torn, err)
	}
}

// buildDir runs a tapped database through a scripted history and returns
// without closing the log, simulating a crash (FsyncAlways keeps every
// acknowledged record on disk).
func buildDir(t *testing.T, dir string, opts Options, script func(db *relation.Database)) *Log {
	t.Helper()
	l, err := Create(dir, opts)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	db := relation.NewDatabase()
	db.SetTap(l)
	script(db)
	if err := l.Err(); err != nil {
		t.Fatalf("log error: %v", err)
	}
	return l
}

func seedItems(db *relation.Database) {
	db.Add(relation.NewRelation(relation.NewSchema("items", "id", "score", "name", "active")))
	r := db.Relation("items")
	for i := 0; i < 5; i++ {
		r.Insert(relation.Tuple{
			value.Int(int64(i)),
			value.Float(float64(i) / 3),
			value.Str(string(rune('a' + i))),
			value.Bool(i%2 == 0),
		})
	}
	r.Delete(relation.Tuple{value.Int(2), value.Float(2.0 / 3), value.Str("c"), value.Bool(true)})
}

// equalDB compares two databases structurally: names, generation, and each
// relation's tuples in insertion order (bit-exact values via Key).
func equalDB(t *testing.T, got, want *relation.Database) {
	t.Helper()
	if got.Generation() != want.Generation() {
		t.Fatalf("generation: got %d want %d", got.Generation(), want.Generation())
	}
	if !reflect.DeepEqual(got.Names(), want.Names()) {
		t.Fatalf("names: got %v want %v", got.Names(), want.Names())
	}
	for _, name := range want.Names() {
		g, w := got.Relation(name), want.Relation(name)
		if g.Len() != w.Len() {
			t.Fatalf("%s: got %d tuples, want %d", name, g.Len(), w.Len())
		}
		for i, wt := range w.Tuples() {
			if g.Tuples()[i].Key() != wt.Key() {
				t.Fatalf("%s[%d]: got %v want %v", name, i, g.Tuples()[i], wt)
			}
		}
	}
}

func TestRecoverReplaysLog(t *testing.T) {
	dir := t.TempDir()
	ref := relation.NewDatabase()
	seedItems(ref)
	buildDir(t, dir, Options{}, seedItems) // no Close: crash

	db, info, err := Recover(dir)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if info.CleanShutdown || info.TornTail || info.SnapshotLoaded {
		t.Fatalf("unexpected info %+v", info)
	}
	if info.Replayed != int(ref.Generation()) {
		t.Fatalf("replayed %d, want %d", info.Replayed, ref.Generation())
	}
	equalDB(t, db, ref)
}

func TestRecoverMissingDirIsFreshBoot(t *testing.T) {
	db, info, err := Recover(filepath.Join(t.TempDir(), "never-created"))
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if db.Generation() != 0 || info.Replayed != 0 || info.SnapshotLoaded {
		t.Fatalf("fresh boot: gen=%d info=%+v", db.Generation(), info)
	}
}

func TestRecoverTornTailTruncates(t *testing.T) {
	dir := t.TempDir()
	buildDir(t, dir, Options{}, seedItems)
	segs, err := listSegments(fsio.Default, dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("listSegments: %v (%d)", err, len(segs))
	}
	last := segs[len(segs)-1]
	fi, _ := os.Stat(last.path)
	if err := os.Truncate(last.path, fi.Size()-3); err != nil {
		t.Fatalf("truncate: %v", err)
	}

	db, info, err := Recover(dir)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if !info.TornTail {
		t.Fatalf("expected torn tail, info %+v", info)
	}
	ref := relation.NewDatabase()
	seedItems(ref)
	if db.Generation() != ref.Generation()-1 {
		t.Fatalf("generation: got %d, want %d (last record cut)", db.Generation(), ref.Generation()-1)
	}

	// The torn bytes were cut from the file: a second recovery is clean and
	// lands at the same state.
	db2, info2, err := Recover(dir)
	if err != nil {
		t.Fatalf("second Recover: %v", err)
	}
	if info2.TornTail {
		t.Fatalf("torn tail persisted after truncation: %+v", info2)
	}
	equalDB(t, db2, db)
}

func TestCleanShutdownMarker(t *testing.T) {
	dir := t.TempDir()
	l := buildDir(t, dir, Options{}, seedItems)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, cleanMarker)); err != nil {
		t.Fatalf("clean marker missing: %v", err)
	}

	db, info, err := Recover(dir)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if !info.CleanShutdown {
		t.Fatalf("clean shutdown not reported: %+v", info)
	}
	ref := relation.NewDatabase()
	seedItems(ref)
	equalDB(t, db, ref)

	// A new log removes the marker: from here on a crash is a crash again.
	l2, err := Create(dir, Options{})
	if err != nil {
		t.Fatalf("re-Create: %v", err)
	}
	defer l2.Close()
	if _, err := os.Stat(filepath.Join(dir, cleanMarker)); !os.IsNotExist(err) {
		t.Fatalf("marker survived Create: %v", err)
	}
}

func TestTornTailAfterCleanShutdownIsCorruption(t *testing.T) {
	dir := t.TempDir()
	l := buildDir(t, dir, Options{}, seedItems)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs, _ := listSegments(fsio.Default, dir)
	f, err := os.OpenFile(segs[len(segs)-1].path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatalf("open segment: %v", err)
	}
	f.Write([]byte{1, 2, 3})
	f.Close()
	if _, _, err := Recover(dir); err == nil {
		t.Fatal("expected corruption error: torn record under a clean marker")
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	// Tiny threshold: every record lands past it, so each append rotates.
	buildDir(t, dir, Options{SegmentBytes: 1}, seedItems)
	segs, err := listSegments(fsio.Default, dir)
	if err != nil {
		t.Fatalf("listSegments: %v", err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(segs))
	}
	ref := relation.NewDatabase()
	seedItems(ref)
	db, _, err := Recover(dir)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	equalDB(t, db, ref)
}

func TestSnapshotPrunesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, Options{})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	db := relation.NewDatabase()
	db.SetTap(l)
	seedItems(db)

	gen, err := l.Snapshot(db)
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if gen != db.Generation() {
		t.Fatalf("snapshot gen %d, want %d", gen, db.Generation())
	}
	segs, _ := listSegments(fsio.Default, dir)
	if len(segs) != 1 {
		t.Fatalf("pre-snapshot segments not pruned: %d remain", len(segs))
	}
	if m := l.Metrics(); m.LastSnapshotGen != gen {
		t.Fatalf("LastSnapshotGen %d, want %d", m.LastSnapshotGen, gen)
	}

	// Mutations after the snapshot land in the fresh segment and replay over
	// the snapshot image on recovery.
	db.Relation("items").Insert(relation.Tuple{value.Int(99), value.Float(0.5), value.Str("z"), value.Bool(false)})
	if err := l.Err(); err != nil {
		t.Fatalf("post-snapshot append: %v", err)
	}

	got, info, err := Recover(dir)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if !info.SnapshotLoaded || info.SnapshotGen != gen {
		t.Fatalf("snapshot not used: %+v", info)
	}
	if info.Replayed != 1 {
		t.Fatalf("replayed %d records over snapshot, want 1", info.Replayed)
	}
	equalDB(t, got, db)

	// A second snapshot at the higher generation prunes the first.
	if _, err := l.Snapshot(db); err != nil {
		t.Fatalf("second Snapshot: %v", err)
	}
	snaps, _ := listSnapshots(fsio.Default, dir)
	if len(snaps) != 1 || snaps[0].gen != db.Generation() {
		t.Fatalf("old snapshot not pruned: %+v", snaps)
	}
	l.Close()
}

func TestCorruptSnapshotIsFatal(t *testing.T) {
	dir := t.TempDir()
	l := buildDir(t, dir, Options{}, seedItems)
	db, _, err := Recover(dir)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if _, err := l.Snapshot(db); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	l.Close()
	snaps, _ := listSnapshots(fsio.Default, dir)
	data, _ := os.ReadFile(snaps[0].path)
	data[len(data)-1] ^= 0xff
	os.WriteFile(snaps[0].path, data, 0o644)
	if _, _, err := Recover(dir); err == nil {
		t.Fatal("expected corrupt snapshot to fail recovery, not silently serve older state")
	}
}

// writeSegment hand-crafts a segment file from records, for corruption
// scenarios the writer itself never produces.
func writeSegment(t *testing.T, dir string, seq uint64, recs ...record) {
	t.Helper()
	body := []byte(segMagic)
	for _, r := range recs {
		body = append(body, frame(encodePayload(r))...)
	}
	if err := os.WriteFile(filepath.Join(dir, segmentName(seq)), body, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverGenerationGapIsError(t *testing.T) {
	dir := t.TempDir()
	schema := relation.NewSchema("r", "x")
	writeSegment(t, dir, 1,
		record{kind: recAddRelation, gen: 1, schema: schema},
		record{kind: recInsert, gen: 3, rel: "r", tuple: relation.Ints(7)},
	)
	if _, _, err := Recover(dir); err == nil {
		t.Fatal("expected generation-gap error")
	}
}

func TestRecoverDuplicateInsertIsError(t *testing.T) {
	dir := t.TempDir()
	schema := relation.NewSchema("r", "x")
	writeSegment(t, dir, 1,
		record{kind: recAddRelation, gen: 1, schema: schema, tuples: []relation.Tuple{relation.Ints(7)}},
		record{kind: recInsert, gen: 2, rel: "r", tuple: relation.Ints(7)},
	)
	if _, _, err := Recover(dir); err == nil {
		t.Fatal("expected duplicate-insert corruption error")
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for _, ok := range []string{"always", "interval", "off"} {
		if _, err := ParseFsyncPolicy(ok); err != nil {
			t.Fatalf("%s: %v", ok, err)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("expected error for unknown policy")
	}
}

func TestFsyncIntervalPolicy(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, Options{Fsync: FsyncInterval, FsyncEvery: time.Millisecond})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	db := relation.NewDatabase()
	db.SetTap(l)
	seedItems(db)
	// The flusher runs on its own timer; Sync forces the point determinis-
	// tically rather than sleeping for it.
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	ref := relation.NewDatabase()
	seedItems(ref)
	got, _, err := Recover(dir)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	equalDB(t, got, ref)
}

func TestMetricsCounters(t *testing.T) {
	dir := t.TempDir()
	l := buildDir(t, dir, Options{}, seedItems)
	defer l.Close()
	m := l.Metrics()
	ref := relation.NewDatabase()
	seedItems(ref)
	if m.Records != int64(ref.Generation()) {
		t.Fatalf("records %d, want %d", m.Records, ref.Generation())
	}
	if m.Bytes <= 0 || m.Fsyncs < m.Records {
		t.Fatalf("counters off: %+v (FsyncAlways syncs every record)", m)
	}
}

func TestCloseIsSticky(t *testing.T) {
	dir := t.TempDir()
	l := buildDir(t, dir, Options{}, seedItems)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l.TapChange(relation.Change{Gen: 99, Op: relation.OpInsert, Rel: "r", Tuple: relation.Ints(1)})
	if err := l.Err(); err == nil {
		t.Fatal("append after Close must surface an error")
	}
}
