// Record encoding: every entry the write-ahead log persists — relation
// schemas (with any pre-populated rows) and journaled tuple mutations — is
// one length-prefixed, CRC-checksummed binary frame:
//
//	uint32 LE payload length | uint32 LE CRC-32C(payload) | payload
//
// The checksum is what makes a torn tail detectable: a record cut short by
// a crash fails the length or CRC check and recovery truncates the file at
// the last valid frame instead of ingesting garbage. Payloads are
// self-describing (a kind byte, then varint/length-prefixed fields), so the
// format needs no external schema and stays byte-stable across releases
// that only append new kinds.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/relation"
	"repro/internal/value"
)

// crcTable is CRC-32C (Castagnoli), the polynomial storage systems use for
// its hardware support and error-detection properties.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// recordKind discriminates payloads.
type recordKind byte

const (
	// recAddRelation is a structural Add: a schema plus the rows the
	// relation already carried when it was registered.
	recAddRelation recordKind = 1
	// recInsert and recDelete are journaled tuple mutations.
	recInsert recordKind = 2
	recDelete recordKind = 3
)

// record is one decoded WAL entry. Exactly one generation step of the
// source database: replaying records in order reproduces the generation
// sequence exactly.
type record struct {
	kind recordKind
	gen  uint64

	// recInsert / recDelete
	rel   string
	tuple relation.Tuple

	// recAddRelation
	schema relation.Schema
	tuples []relation.Tuple
}

// value kind tags on the wire (decoupled from value.Kind's iota so the
// in-memory enum can evolve without breaking persisted logs).
const (
	wireInt    byte = 1
	wireFloat  byte = 2
	wireString byte = 3
	wireBool   byte = 4
)

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendValue(b []byte, v value.Value) []byte {
	switch v.Kind() {
	case value.KindInt:
		b = append(b, wireInt)
		return binary.AppendVarint(b, v.AsInt())
	case value.KindFloat:
		b = append(b, wireFloat)
		return binary.LittleEndian.AppendUint64(b, math.Float64bits(v.AsFloat()))
	case value.KindString:
		b = append(b, wireString)
		return appendString(b, v.AsString())
	default:
		b = append(b, wireBool)
		if v.AsBool() {
			return append(b, 1)
		}
		return append(b, 0)
	}
}

func appendTuple(b []byte, t relation.Tuple) []byte {
	b = binary.AppendUvarint(b, uint64(len(t)))
	for _, v := range t {
		b = appendValue(b, v)
	}
	return b
}

func appendSchema(b []byte, s relation.Schema) []byte {
	b = appendString(b, s.Name)
	b = binary.AppendUvarint(b, uint64(len(s.Attrs)))
	for _, a := range s.Attrs {
		b = appendString(b, a)
	}
	return b
}

// encodePayload renders the record's payload (kind byte onward).
func encodePayload(rec record) []byte {
	b := make([]byte, 0, 64)
	b = append(b, byte(rec.kind))
	b = binary.AppendUvarint(b, rec.gen)
	switch rec.kind {
	case recAddRelation:
		b = appendSchema(b, rec.schema)
		b = binary.AppendUvarint(b, uint64(len(rec.tuples)))
		for _, t := range rec.tuples {
			b = appendTuple(b, t)
		}
	default:
		b = appendString(b, rec.rel)
		b = appendTuple(b, rec.tuple)
	}
	return b
}

// frame wraps a payload in the length+CRC header.
func frame(payload []byte) []byte {
	out := make([]byte, 8, 8+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.Checksum(payload, crcTable))
	return append(out, payload...)
}

// byteReader is a cursor over a payload with sticky error handling; the
// final err check subsumes every intermediate bounds check.
type byteReader struct {
	b   []byte
	off int
	err error
}

func (r *byteReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("wal: truncated %s at offset %d", what, r.off)
	}
}

func (r *byteReader) byte() byte {
	if r.err != nil || r.off >= len(r.b) {
		r.fail("byte")
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *byteReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("uvarint")
		return 0
	}
	r.off += n
	return v
}

func (r *byteReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail("varint")
		return 0
	}
	r.off += n
	return v
}

func (r *byteReader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if uint64(len(r.b)-r.off) < n {
		r.fail("string")
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *byteReader) value() value.Value {
	switch r.byte() {
	case wireInt:
		return value.Int(r.varint())
	case wireFloat:
		if r.err != nil || len(r.b)-r.off < 8 {
			r.fail("float")
			return value.Value{}
		}
		bits := binary.LittleEndian.Uint64(r.b[r.off:])
		r.off += 8
		return value.Float(math.Float64frombits(bits))
	case wireString:
		return value.Str(r.str())
	case wireBool:
		return value.Bool(r.byte() != 0)
	default:
		if r.err == nil {
			r.err = fmt.Errorf("wal: unknown value kind at offset %d", r.off-1)
		}
		return value.Value{}
	}
}

func (r *byteReader) tuple() relation.Tuple {
	n := r.uvarint()
	if r.err != nil || n > uint64(len(r.b)-r.off) {
		// Each value takes >= 1 byte, so arity can never exceed the bytes
		// that remain; the guard bounds allocation on corrupt input.
		r.fail("tuple")
		return nil
	}
	t := make(relation.Tuple, 0, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		t = append(t, r.value())
	}
	return t
}

// decodePayload parses a CRC-verified payload into a record.
func decodePayload(payload []byte) (record, error) {
	r := &byteReader{b: payload}
	rec := record{kind: recordKind(r.byte()), gen: r.uvarint()}
	switch rec.kind {
	case recAddRelation:
		name := r.str()
		nattrs := r.uvarint()
		if r.err != nil || nattrs > uint64(len(payload)) {
			return rec, fmt.Errorf("wal: corrupt schema record")
		}
		attrs := make([]string, 0, nattrs)
		for i := uint64(0); i < nattrs && r.err == nil; i++ {
			attrs = append(attrs, r.str())
		}
		if r.err != nil {
			return rec, r.err
		}
		rec.schema = relation.NewSchema(name, attrs...)
		ntuples := r.uvarint()
		if r.err != nil || ntuples > uint64(len(payload)) {
			return rec, fmt.Errorf("wal: corrupt schema record row count")
		}
		rec.tuples = make([]relation.Tuple, 0, ntuples)
		for i := uint64(0); i < ntuples && r.err == nil; i++ {
			rec.tuples = append(rec.tuples, r.tuple())
		}
	case recInsert, recDelete:
		rec.rel = r.str()
		rec.tuple = r.tuple()
	default:
		return rec, fmt.Errorf("wal: unknown record kind %d", rec.kind)
	}
	if r.err != nil {
		return rec, r.err
	}
	if r.off != len(payload) {
		return rec, fmt.Errorf("wal: %d trailing bytes in record payload", len(payload)-r.off)
	}
	return rec, nil
}

// scanFrames walks the framed records in a segment body (the bytes after
// the magic header). It returns the decoded records, the offset just past
// the last valid frame (relative to the start of data), and whether
// trailing bytes remained that did not form a valid frame — a torn tail
// from a crash mid-append, or corruption.
func scanFrames(data []byte) (recs []record, validEnd int, torn bool, err error) {
	off := 0
	for off < len(data) {
		if len(data)-off < 8 {
			return recs, off, true, nil
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n < 0 || len(data)-off-8 < n {
			return recs, off, true, nil
		}
		payload := data[off+8 : off+8+n]
		if crc32.Checksum(payload, crcTable) != sum {
			return recs, off, true, nil
		}
		rec, derr := decodePayload(payload)
		if derr != nil {
			// The frame checksummed clean but the payload is malformed:
			// that is not a torn write, it is an encoder/decoder bug or
			// deliberate tampering — surface it instead of truncating data.
			return recs, off, false, derr
		}
		recs = append(recs, rec)
		off += 8 + n
	}
	return recs, off, false, nil
}
