package workload

import (
	"math/rand"
	"testing"

	"repro/internal/objective"
	"repro/internal/query"
	"repro/internal/query/eval"
	"repro/internal/solver"
)

func TestGiftShopShape(t *testing.T) {
	db := GiftShop(rand.New(rand.NewSource(1)), 40, 60)
	if db.Relation("catalog").Len() != 40 {
		t.Errorf("catalog size = %d", db.Relation("catalog").Len())
	}
	if db.Relation("history").Len() == 0 {
		t.Error("history empty")
	}
	// Prices within [5, 99].
	for _, tu := range db.Relation("catalog").Tuples() {
		if p := tu[2].AsInt(); p < 5 || p > 99 {
			t.Errorf("price %d out of range", p)
		}
	}
}

func TestGiftShopDeterministic(t *testing.T) {
	a := GiftShop(rand.New(rand.NewSource(5)), 10, 10)
	b := GiftShop(rand.New(rand.NewSource(5)), 10, 10)
	as, bs := a.Relation("catalog").Sorted(), b.Relation("catalog").Sorted()
	for i := range as {
		if !as[i].Equal(bs[i]) {
			t.Fatal("same seed should give same database")
		}
	}
}

func TestGiftQueryClassification(t *testing.T) {
	if got := GiftQuery("b", "r", 20, 30).Classify(); got != query.FO {
		t.Errorf("gift query should be FO, got %v", got)
	}
	if got := GiftCQQuery(20, 30).Classify(); got != query.CQ {
		t.Errorf("CQ gift query should be CQ, got %v", got)
	}
}

func TestGiftQueryExcludesPastGifts(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	db := GiftShop(rng, 30, 80)
	// Pick a (buyer, recipient, item) from history; that item must not be
	// recommended for that pair when in price range.
	h := db.Relation("history").Tuples()[0]
	item, buyer, recipient := h[0].AsString(), h[1].AsString(), h[2].AsString()
	q := GiftQuery(buyer, recipient, 5, 99)
	res := eval.Evaluate(q, db)
	for _, tu := range res.Tuples() {
		if tu[0].AsString() == item {
			t.Errorf("item %s was already given by %s to %s", item, buyer, recipient)
		}
	}
	// And the unfiltered CQ query does include it.
	cq := eval.Evaluate(GiftCQQuery(5, 99), db)
	found := false
	for _, tu := range cq.Tuples() {
		if tu[0].AsString() == item {
			found = true
		}
	}
	if !found {
		t.Error("CQ query should include the purchased item")
	}
}

func TestGiftRelevanceUsesHistory(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := GiftShop(rng, 20, 100)
	rel := GiftRelevance(db, "holiday", 8, 70)
	// Some item should deviate from the default 2.5.
	deviates := false
	for _, tu := range db.Relation("catalog").Tuples() {
		if rel.Rel(tu) != 2.5 {
			deviates = true
		}
	}
	if !deviates {
		t.Error("no item picked up a history-derived relevance")
	}
}

func TestGiftDistanceProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	db := GiftShop(rng, 25, 10)
	dis := GiftDistance(db)
	items := db.Relation("catalog").Tuples()
	for i := 0; i < len(items) && i < 10; i++ {
		if dis.Dis(items[i], items[i]) != 0 {
			t.Error("self distance must be 0")
		}
		for j := i + 1; j < len(items) && j < 10; j++ {
			a, b := dis.Dis(items[i], items[j]), dis.Dis(items[j], items[i])
			if a != b {
				t.Error("distance must be symmetric")
			}
			if a < 0 || a > 2 {
				t.Errorf("distance %v out of range", a)
			}
		}
	}
}

func TestGiftInstanceSolvable(t *testing.T) {
	in := GiftInstance(rand.New(rand.NewSource(6)), 25, 60, 3, objective.MaxSum, 0.5)
	if len(in.Answers()) < 3 {
		t.Skip("too few answers with this seed")
	}
	best := solver.QRDBest(in)
	if !best.Exists || len(best.Witness) != 3 {
		t.Fatal("gift instance should have a best 3-set")
	}
}

func TestPointsInstance(t *testing.T) {
	in := Points(rand.New(rand.NewSource(7)), 30, 2, 100, objective.MaxMin, 0.7, 4)
	if got := len(in.Answers()); got != 30 {
		t.Errorf("|Q(D)| = %d, want 30", got)
	}
	if in.Language() != query.Identity {
		t.Errorf("points instance should use an identity query, got %v", in.Language())
	}
	res := solver.QRDBest(in)
	if !res.Exists {
		t.Fatal("best set should exist")
	}
}

func TestClusteredInstance(t *testing.T) {
	in := Clustered(rand.New(rand.NewSource(8)), 4, 8, 1000, 10, objective.MaxSum, 1, 4)
	if len(in.Answers()) == 0 {
		t.Fatal("clustered instance empty")
	}
	// Diversity-only best set should pick points far apart: its value should
	// comfortably exceed a same-cluster baseline.
	best := solver.QRDBest(in)
	ans := in.Answers()
	worst := in.Eval(ans[:4])
	if best.Value < worst {
		t.Errorf("best %v should be at least the first-four baseline %v", best.Value, worst)
	}
}

func TestCoursesScenario(t *testing.T) {
	db, prereqs := Courses()
	if db.Relation("courses").Len() != 8 {
		t.Errorf("course catalog size = %d", db.Relation("courses").Len())
	}
	if len(prereqs) != 4 {
		t.Errorf("prerequisite constraints = %d", len(prereqs))
	}
}

func TestTeamRoster(t *testing.T) {
	db := TeamRoster(rand.New(rand.NewSource(9)), 20)
	if db.Relation("players").Len() != 20 {
		t.Errorf("roster size = %d", db.Relation("players").Len())
	}
	for _, tu := range db.Relation("players").Tuples() {
		if s := tu[2].AsInt(); s < 50 || s > 99 {
			t.Errorf("skill %d out of range", s)
		}
	}
}

func TestDynamicPointsStream(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	db, updates := DynamicPoints(rng, 50, 12, 4, 2, 300)
	rel := db.Relation("P")
	if rel.Len() != 50 {
		t.Fatalf("base relation has %d rows, want 50", rel.Len())
	}
	inserts, checkpoints := 0, 0
	for _, u := range updates {
		if u.Checkpoint {
			checkpoints++
			continue
		}
		if u.Delete || u.Rel != "P" || len(u.Tuple) != 2 {
			t.Fatalf("unexpected update %+v", u)
		}
		if rel.Contains(u.Tuple) {
			t.Errorf("stream tuple %v already in the base set", u.Tuple)
		}
		if !rel.Insert(u.Tuple) {
			t.Errorf("stream tuple %v repeated within the stream", u.Tuple)
		}
		inserts++
	}
	if inserts != 12 || checkpoints != 3 {
		t.Errorf("stream has %d inserts / %d checkpoints, want 12 / 3", inserts, checkpoints)
	}
}

func TestDynamicGiftStream(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	db, updates := DynamicGift(rng, 20, 40, 6, 2)
	cat := db.Relation("catalog")
	if cat.Len() != 20 {
		t.Fatalf("base catalog has %d rows, want 20", cat.Len())
	}
	inserts := 0
	for _, u := range updates {
		if u.Checkpoint {
			continue
		}
		if u.Rel != "catalog" || len(u.Tuple) != cat.Schema().Arity() {
			t.Fatalf("unexpected update %+v", u)
		}
		if !cat.Insert(u.Tuple) {
			t.Errorf("stream item %v collides with the catalog", u.Tuple)
		}
		inserts++
	}
	if inserts != 6 {
		t.Errorf("stream has %d inserts, want 6", inserts)
	}
}

func TestDynamicPointsExhaustedDomain(t *testing.T) {
	// side^dim = 4 total points; base takes 2, so at most 2 fresh stream
	// inserts exist — the generator must truncate, not spin forever.
	rng := rand.New(rand.NewSource(1))
	_, updates := DynamicPoints(rng, 2, 10, 1, 1, 4)
	inserts := 0
	for _, u := range updates {
		if !u.Checkpoint {
			inserts++
		}
	}
	if inserts > 2 {
		t.Errorf("exhausted domain produced %d inserts, want <= 2", inserts)
	}
}
