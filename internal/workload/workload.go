// Package workload generates the databases, queries and scoring functions
// the examples and benchmarks run on: the gift-recommendation scenario of
// Examples 1.1/3.1, the course-selection and team-formation scenarios of
// Example 9.1, and synthetic point databases for scaling experiments.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/objective"
	"repro/internal/query"
	"repro/internal/query/parse"
	"repro/internal/relation"
	"repro/internal/tsvio"
	"repro/internal/value"
)

// Gift item types, loosely following Example 3.1's categories.
var giftTypes = []string{
	"jewelry", "book", "toy", "fashion", "artsy", "educational", "electronics", "sports",
}

// Events and relationships for history rows.
var (
	giftEvents = []string{"birthday", "wedding", "holiday", "graduation"}
	giftRels   = []string{"uncle", "aunt", "parent", "friend", "sibling"}
)

// GiftShop builds the FindGift database of Example 1.1 with nCatalog items
// and nHistory purchase records, deterministically from rng.
//
//	catalog(item, type, price, inStock)
//	history(item, buyer, recipient, gender, age, rel, event, rating)
func GiftShop(rng *rand.Rand, nCatalog, nHistory int) *relation.Database {
	catalog := relation.NewRelation(relation.NewSchema("catalog", "item", "type", "price", "inStock"))
	items := make([]string, nCatalog)
	for i := 0; i < nCatalog; i++ {
		items[i] = fmt.Sprintf("item%03d", i)
		catalog.Insert(relation.Tuple{
			value.Str(items[i]),
			value.Str(giftTypes[rng.Intn(len(giftTypes))]),
			value.Int(int64(5 + rng.Intn(95))),
			value.Int(int64(rng.Intn(20))),
		})
	}
	history := relation.NewRelation(relation.NewSchema("history",
		"item", "buyer", "recipient", "gender", "age", "rel", "event", "rating"))
	for i := 0; i < nHistory && nCatalog > 0; i++ {
		gender := "f"
		if rng.Intn(2) == 0 {
			gender = "m"
		}
		history.Insert(relation.Tuple{
			value.Str(items[rng.Intn(nCatalog)]),
			value.Str(fmt.Sprintf("buyer%02d", rng.Intn(20))),
			value.Str(fmt.Sprintf("recipient%02d", rng.Intn(30))),
			value.Str(gender),
			value.Int(int64(8 + rng.Intn(60))),
			value.Str(giftRels[rng.Intn(len(giftRels))]),
			value.Str(giftEvents[rng.Intn(len(giftEvents))]),
			value.Int(int64(1 + rng.Intn(5))),
		})
	}
	return relation.NewDatabase().Add(catalog).Add(history)
}

// GiftQuery builds Example 3.1's Q0: items in [lo, hi] that buyer has not
// already given to recipient — an FO query (negation over history).
func GiftQuery(buyer, recipient string, lo, hi int64) *query.Query {
	src := fmt.Sprintf(
		`Q0(n) :- exists t, p, s (catalog(n, t, p, s), p >= %d, p <= %d,
			forall n2, b, r, g, a, x, e, y (
				not (history(n2, b, r, g, a, x, e, y), b = %q, r = %q, n = n2)))`,
		lo, hi, buyer, recipient)
	return parse.MustQuery(src)
}

// GiftCQQuery is the CQ fragment of the same request (no purchase-history
// negation): items in the price range.
func GiftCQQuery(lo, hi int64) *query.Query {
	return parse.MustQuery(fmt.Sprintf(
		`Qcq(n) :- catalog(n, t, p, s), p >= %d, p <= %d`, lo, hi))
}

// GiftRelevance scores an item by its purchase history, as Example 3.1
// sketches: the mean rating of purchases for recipients in the target age
// band for the target event, with a default for unseen items.
func GiftRelevance(db *relation.Database, event string, ageLo, ageHi int64) objective.Relevance {
	scores := make(map[string]float64)
	counts := make(map[string]int)
	hist := db.Relation("history")
	if hist != nil {
		for _, t := range hist.Tuples() {
			age := t[4].AsInt()
			if t[6].AsString() != event || age < ageLo || age > ageHi {
				continue
			}
			item := t[0].AsString()
			scores[item] += float64(t[7].AsInt())
			counts[item]++
		}
	}
	return objective.RelevanceFunc(func(t relation.Tuple) float64 {
		item := t[0].AsString()
		if counts[item] > 0 {
			return scores[item] / float64(counts[item])
		}
		return 2.5 // default mid-scale rating
	})
}

// GiftDistance measures item dissimilarity by type difference, Example
// 3.1's δdis: distance 2 across type categories, 1 within related types,
// 0 for identical types. The catalog is consulted for each item's type.
func GiftDistance(db *relation.Database) objective.Distance {
	types := make(map[string]string)
	if cat := db.Relation("catalog"); cat != nil {
		for _, t := range cat.Tuples() {
			types[t[0].AsString()] = t[1].AsString()
		}
	}
	related := map[[2]string]bool{
		{"jewelry", "fashion"}: true, {"book", "educational"}: true,
		{"toy", "sports"}: true, {"artsy", "fashion"}: true,
	}
	return objective.DistanceFunc(func(s, t relation.Tuple) float64 {
		a, b := types[s[0].AsString()], types[t[0].AsString()]
		switch {
		case a == b:
			if s.Equal(t) {
				return 0
			}
			return 0.5 // same type, different item
		case related[[2]string{a, b}] || related[[2]string{b, a}]:
			return 1
		default:
			return 2
		}
	})
}

// GiftInstance assembles Example 3.2's full scenario: Peter shopping for
// Grace, k items, balanced objective.
func GiftInstance(rng *rand.Rand, nCatalog, nHistory, k int, kind objective.Kind, lambda float64) *core.Instance {
	db := GiftShop(rng, nCatalog, nHistory)
	q := GiftQuery("buyer00", "recipient00", 20, 80)
	return &core.Instance{
		Query: q,
		DB:    db,
		Obj: objective.New(kind,
			GiftRelevance(db, "holiday", 11, 16),
			GiftDistance(db), lambda),
		K: k,
	}
}

// Points builds an identity-query instance over n random integer points in
// [0, side)^dim, with relevance = first coordinate (scaled to [0,1]) and
// Euclidean distance — the standard dispersion-style workload.
func Points(rng *rand.Rand, n, dim int, side int64, kind objective.Kind, lambda float64, k int) *core.Instance {
	attrs := make([]string, dim)
	for i := range attrs {
		attrs[i] = fmt.Sprintf("c%d", i)
	}
	r := relation.NewRelation(relation.NewSchema("P", attrs...))
	for r.Len() < n {
		t := make(relation.Tuple, dim)
		for i := range t {
			t[i] = value.Int(rng.Int63n(side))
		}
		r.Insert(t)
	}
	db := relation.NewDatabase().Add(r)
	return &core.Instance{
		Query: query.IdentityQueryNamed("P", attrs),
		DB:    db,
		Obj: objective.New(kind,
			objective.AttrRelevance(0, 1/float64(side)),
			objective.EuclideanDistance(), lambda),
		K: k,
	}
}

// DynamicPoints builds a dynamic variant of the Points workload: the base
// database plus a timed stream of nStream fresh point inserts, a solve
// checkpoint after every batch. Replaying the stream between solves (divcli
// -updates) exercises the incremental refresh path end to end; the
// rebuild-vs-incremental benchmarks replay it with and without the change
// journal. Points are unique across base and stream, so every insert is a
// real mutation; when the side^dim domain cannot supply nStream fresh
// points the stream is truncated rather than drawn forever.
func DynamicPoints(rng *rand.Rand, nBase, nStream, batch, dim int, side int64) (*relation.Database, []tsvio.Update) {
	in := Points(rng, nBase, dim, side, 0, 0.5, 1)
	db := in.DB
	rel := db.Relation("P")
	seen := make(map[string]bool, nBase+nStream)
	for _, t := range rel.Tuples() {
		seen[t.Key()] = true
	}
	if batch <= 0 {
		batch = 1
	}
	// Clamp the stream to the fresh points the finite domain still holds:
	// side^dim total, minus the base set (computed with an overflow guard —
	// once the capacity exceeds what we need, the exact value is moot).
	capacity := int64(1)
	for i := 0; i < dim && capacity <= int64(nBase+nStream); i++ {
		capacity *= side
	}
	if free := capacity - int64(len(seen)); capacity <= int64(nBase+nStream) && int64(nStream) > free {
		nStream = int(free)
		if nStream < 0 {
			nStream = 0
		}
	}
	var updates []tsvio.Update
	inBatch, emitted := 0, 0
	for emitted < nStream {
		t := make(relation.Tuple, dim)
		for i := range t {
			t[i] = value.Int(rng.Int63n(side))
		}
		if seen[t.Key()] {
			continue
		}
		seen[t.Key()] = true
		updates = append(updates, tsvio.Update{Rel: "P", Tuple: t})
		emitted++
		if inBatch++; inBatch == batch {
			updates = append(updates, tsvio.Update{Checkpoint: true})
			inBatch = 0
		}
	}
	return db, updates
}

// DynamicGift builds a dynamic gift-shop workload: the Example 1.1 base
// database plus a stream of fresh catalog items arriving in batches.
func DynamicGift(rng *rand.Rand, nCatalog, nHistory, nStream, batch int) (*relation.Database, []tsvio.Update) {
	db := GiftShop(rng, nCatalog, nHistory)
	if batch <= 0 {
		batch = 1
	}
	var updates []tsvio.Update
	inBatch := 0
	for i := 0; i < nStream; i++ {
		updates = append(updates, tsvio.Update{Rel: "catalog", Tuple: relation.Tuple{
			value.Str(fmt.Sprintf("item%03d", nCatalog+i)),
			value.Str(giftTypes[rng.Intn(len(giftTypes))]),
			value.Int(int64(5 + rng.Intn(95))),
			value.Int(int64(rng.Intn(20))),
		}})
		if inBatch++; inBatch == batch {
			updates = append(updates, tsvio.Update{Checkpoint: true})
			inBatch = 0
		}
	}
	return db, updates
}

// Clustered builds an identity-query instance whose points form c clusters
// of per points each, spread tightly within a cluster — the workload where
// diversification visibly beats plain top-k.
func Clustered(rng *rand.Rand, c, per int, side, spread int64, kind objective.Kind, lambda float64, k int) *core.Instance {
	r := relation.NewRelation(relation.NewSchema("P", "c0", "c1"))
	for i := 0; i < c; i++ {
		cx, cy := rng.Int63n(side), rng.Int63n(side)
		for j := 0; j < per; j++ {
			x := cx + rng.Int63n(2*spread+1) - spread
			y := cy + rng.Int63n(2*spread+1) - spread
			r.Insert(relation.Ints(x, y))
		}
	}
	db := relation.NewDatabase().Add(r)
	return &core.Instance{
		Query: query.IdentityQueryNamed("P", []string{"c0", "c1"}),
		DB:    db,
		Obj: objective.New(kind,
			objective.AttrRelevance(0, 1/float64(side)),
			objective.EuclideanDistance(), lambda),
		K: k,
	}
}

// Courses builds the course-selection scenario of Example 9.1: a catalog of
// courses with ids, titles and levels, plus a prerequisite edge list used
// to generate constraints.
func Courses() (*relation.Database, []string) {
	courses := relation.NewRelation(relation.NewSchema("courses", "id", "title", "level", "credits"))
	rows := [][4]interface{}{
		{"CS101", "Programming", 1, 10},
		{"CS110", "Discrete Math", 1, 10},
		{"CS220", "Data Structures", 2, 10},
		{"CS230", "Systems", 2, 10},
		{"CS350", "Databases", 3, 10},
		{"CS360", "Networks", 3, 10},
		{"CS450", "Advanced Databases", 4, 20},
		{"CS460", "Distributed Systems", 4, 20},
	}
	for _, row := range rows {
		courses.Insert(relation.Tuple{
			value.Str(row[0].(string)), value.Str(row[1].(string)),
			value.Int(int64(row[2].(int))), value.Int(int64(row[3].(int))),
		})
	}
	prereqs := []string{
		`forall t (t.id = "CS220" -> exists p (p.id = "CS101"))`,
		`forall t (t.id = "CS350" -> exists p (p.id = "CS220"))`,
		`forall t (t.id = "CS450" -> exists p1, p2 (p1.id = "CS220", p2.id = "CS350"))`,
		`forall t (t.id = "CS460" -> exists p (p.id = "CS230"))`,
	}
	return relation.NewDatabase().Add(courses), prereqs
}

// TeamRoster builds the basketball team-formation scenario of Example 9.1:
// players with positions and skill ratings.
func TeamRoster(rng *rand.Rand, n int) *relation.Database {
	positions := []string{"center", "forward", "guard"}
	r := relation.NewRelation(relation.NewSchema("players", "id", "position", "skill"))
	for i := 0; i < n; i++ {
		r.Insert(relation.Tuple{
			value.Int(int64(i + 1)),
			value.Str(positions[rng.Intn(len(positions))]),
			value.Int(int64(50 + rng.Intn(50))),
		})
	}
	return relation.NewDatabase().Add(r)
}

// RequestShape is one distinct cacheable request in a serving replay
// stream: the tuple of per-request parameters that, together with the
// statement, forms a result-cache key. A replay stream is a sequence of
// shape indices; how often each shape repeats is what decides the
// achievable cache hit-rate.
type RequestShape struct {
	Problem string  // "diversify" or "decide"
	K       int     // selection size
	Lambda  float64 // relevance/diversity trade-off
	Bound   float64 // decide threshold (ignored for diversify)
}

// ReplayShapes builds a deterministic universe of n distinct request
// shapes: diversify and decide requests alternating over a small grid of
// k and λ values, with decide bounds spread so shapes never collide.
func ReplayShapes(n int) []RequestShape {
	ks := []int{2, 3, 4}
	lambdas := []float64{0.3, 0.5, 0.7}
	shapes := make([]RequestShape, 0, n)
	for i := 0; len(shapes) < n; i++ {
		s := RequestShape{
			Problem: "diversify",
			K:       ks[i%len(ks)],
			Lambda:  lambdas[(i/len(ks))%len(lambdas)],
		}
		if i%2 == 1 {
			s.Problem = "decide"
			s.Bound = float64(1 + i) // distinct per decide shape
		}
		shapes = append(shapes, s)
	}
	return shapes
}

// ZipfMix draws n shape indices from a zipf(s) distribution over
// [0, shapes): index 0 is the most popular shape, and the skew s > 1
// controls how hard the head dominates — the access pattern under which a
// result cache earns its keep. s <= 1 falls back to a uniform mix (the
// zipf generator requires s > 1), which is the cache's worst case.
func ZipfMix(rng *rand.Rand, shapes, n int, s float64) []int {
	mix := make([]int, n)
	if shapes <= 1 {
		return mix
	}
	if s <= 1 {
		for i := range mix {
			mix[i] = rng.Intn(shapes)
		}
		return mix
	}
	z := rand.NewZipf(rng, s, 1, uint64(shapes-1))
	for i := range mix {
		mix[i] = int(z.Uint64())
	}
	return mix
}

// ChainJoin builds a three-relation chain-join workload: R(a,b), S(b,c),
// T(c,d) with n rows each over join keys drawn from a domain of size dom,
// and the query
//
//	Q(a, d) :- R(a, b), S(b, c), T(c, d), d = 0
//
// whose best evaluation probes indexes on the join columns and runs the
// selective d-filter early. It exercises the evaluator-optimizer ablation.
func ChainJoin(rng *rand.Rand, n int, dom int64) (*relation.Database, *query.Query) {
	db := relation.NewDatabase()
	r := relation.NewRelation(relation.NewSchema("R", "a", "b"))
	s := relation.NewRelation(relation.NewSchema("S", "b", "c"))
	t := relation.NewRelation(relation.NewSchema("T", "c", "d"))
	for i := 0; i < n; i++ {
		r.Insert(relation.Tuple{value.Int(int64(i)), value.Int(rng.Int63n(dom))})
		s.Insert(relation.Tuple{value.Int(rng.Int63n(dom)), value.Int(rng.Int63n(dom))})
		t.Insert(relation.Tuple{value.Int(rng.Int63n(dom)), value.Int(rng.Int63n(8))})
	}
	db.Add(r).Add(s).Add(t)
	q := query.MustNew("Q", []string{"a", "d"}, &query.And{Fs: []query.Formula{
		&query.Atom{Rel: "R", Args: []query.Term{query.V("a"), query.V("b")}},
		&query.Atom{Rel: "S", Args: []query.Term{query.V("b"), query.V("c")}},
		&query.Atom{Rel: "T", Args: []query.Term{query.V("c"), query.V("d")}},
		&query.Cmp{Op: query.EQ, L: query.V("d"), R: query.CInt(0)},
	}})
	return db, q
}
