package relation

import "testing"

func TestDeleteRemovesAndReindexes(t *testing.T) {
	r := NewRelation(NewSchema("R", "x"))
	for i := int64(0); i < 5; i++ {
		r.Insert(Ints(i))
	}
	if !r.Delete(Ints(2)) {
		t.Fatal("Delete of a present tuple must report true")
	}
	if r.Delete(Ints(2)) {
		t.Error("Delete of an absent tuple must report false")
	}
	if r.Len() != 4 || r.Contains(Ints(2)) {
		t.Fatalf("after delete: len=%d contains(2)=%v", r.Len(), r.Contains(Ints(2)))
	}
	// Insertion order of the survivors is preserved and the index still
	// answers membership for every one of them.
	want := []int64{0, 1, 3, 4}
	for i, tu := range r.Tuples() {
		if tu[0].AsInt() != want[i] {
			t.Errorf("tuple %d = %v, want %d", i, tu, want[i])
		}
		if !r.Contains(tu) {
			t.Errorf("index lost tuple %v after delete", tu)
		}
	}
	// Re-inserting the deleted tuple works (appends at the end).
	if !r.Insert(Ints(2)) {
		t.Error("re-insert after delete must succeed")
	}
}

func TestJournalRecordsInsertsAndDeletes(t *testing.T) {
	db := NewDatabase()
	r := NewRelation(NewSchema("R", "x"))
	db.Add(r)
	g0 := db.Generation()
	r.Insert(Ints(1))
	r.Insert(Ints(2))
	r.Delete(Ints(1))
	changes, ok := db.ChangesSince(g0)
	if !ok {
		t.Fatal("journal must cover the span since registration")
	}
	if len(changes) != 3 {
		t.Fatalf("got %d changes, want 3", len(changes))
	}
	wantOps := []Op{OpInsert, OpInsert, OpDelete}
	wantVals := []int64{1, 2, 1}
	for i, c := range changes {
		if c.Op != wantOps[i] || c.Rel != "R" || c.Tuple[0].AsInt() != wantVals[i] {
			t.Errorf("change %d = {%s %s %v}, want {%s R (%d)}", i, c.Op, c.Rel, c.Tuple, wantOps[i], wantVals[i])
		}
		if c.Gen != g0+uint64(i)+1 {
			t.Errorf("change %d Gen = %d, want %d", i, c.Gen, g0+uint64(i)+1)
		}
	}
	// A watermark at the head yields an empty, covered delta.
	if cs, ok := db.ChangesSince(db.Generation()); !ok || len(cs) != 0 {
		t.Errorf("ChangesSince(head) = %v, %v; want empty, true", cs, ok)
	}
	// Partial suffix.
	if cs, ok := db.ChangesSince(g0 + 2); !ok || len(cs) != 1 || cs[0].Op != OpDelete {
		t.Errorf("ChangesSince(g0+2) = %v, %v; want the delete only", cs, ok)
	}
}

func TestJournalTruncatedByAdd(t *testing.T) {
	db := NewDatabase()
	r := NewRelation(NewSchema("R", "x"))
	db.Add(r)
	g0 := db.Generation()
	r.Insert(Ints(1))
	// A structural change (registering another relation, possibly
	// pre-populated) cannot be expressed as tuple deltas: consumers with
	// older watermarks must rebuild.
	s := NewRelation(NewSchema("S", "y"))
	s.Insert(Ints(9)) // pre-registration insert: not journaled anywhere
	db.Add(s)
	if _, ok := db.ChangesSince(g0); ok {
		t.Error("ChangesSince across an Add must report not-covered")
	}
	// But the new watermark is serviceable again.
	g1 := db.Generation()
	s.Insert(Ints(10))
	if cs, ok := db.ChangesSince(g1); !ok || len(cs) != 1 || cs[0].Rel != "S" {
		t.Errorf("ChangesSince(g1) = %v, %v; want the S insert", cs, ok)
	}
}

func TestJournalCompactionBound(t *testing.T) {
	db := NewDatabase()
	r := NewRelation(NewSchema("R", "x"))
	db.Add(r)
	db.SetJournalBound(8)
	g0 := db.Generation()
	for i := int64(0); i < 100; i++ {
		r.Insert(Ints(i))
	}
	// Memory is O(bound), not O(history).
	if db.JournalLen() != 8 {
		t.Fatalf("JournalLen = %d, want the bound 8", db.JournalLen())
	}
	if _, ok := db.ChangesSince(g0); ok {
		t.Error("a compacted-away watermark must report not-covered")
	}
	// The retained window is exactly the last 8 mutations.
	head := db.Generation()
	if cs, ok := db.ChangesSince(head - 8); !ok || len(cs) != 8 {
		t.Fatalf("ChangesSince(head-8) = %d changes, %v; want 8, true", len(cs), ok)
	}
	if cs, ok := db.ChangesSince(head - 9); ok {
		t.Errorf("ChangesSince(head-9) = %d changes, covered; want not-covered", len(cs))
	}
	if cs, ok := db.ChangesSince(head - 3); !ok || len(cs) != 3 {
		t.Errorf("ChangesSince(head-3) = %d changes, %v; want 3, true", len(cs), ok)
	}
	// Shrinking the bound compacts immediately.
	db.SetJournalBound(2)
	if db.JournalLen() != 2 {
		t.Errorf("JournalLen after shrink = %d, want 2", db.JournalLen())
	}
	if cs, ok := db.ChangesSince(head - 2); !ok || len(cs) != 2 {
		t.Errorf("after shrink ChangesSince(head-2) = %d changes, %v; want 2, true", len(cs), ok)
	}
}

func TestJournalDeltaReplayReconstructs(t *testing.T) {
	// Property: replaying ChangesSince(g) over a clone taken at g
	// reconstructs the current relation contents exactly.
	db := NewDatabase()
	r := NewRelation(NewSchema("R", "x", "y"))
	db.Add(r)
	r.Insert(Ints(1, 1))
	r.Insert(Ints(2, 2))
	snapshot := r.Clone()
	g := db.Generation()
	r.Insert(Ints(3, 3))
	r.Delete(Ints(1, 1))
	r.Insert(Ints(4, 4))
	r.Delete(Ints(4, 4))
	changes, ok := db.ChangesSince(g)
	if !ok {
		t.Fatal("journal must cover the span")
	}
	for _, c := range changes {
		if c.Rel != "R" {
			t.Fatalf("unexpected relation %q", c.Rel)
		}
		switch c.Op {
		case OpInsert:
			snapshot.Insert(c.Tuple)
		case OpDelete:
			snapshot.Delete(c.Tuple)
		}
	}
	if snapshot.String() != r.String() {
		t.Errorf("replay mismatch:\n  replayed %s\n  actual   %s", snapshot, r)
	}
}

func TestOpString(t *testing.T) {
	if OpInsert.String() != "insert" || OpDelete.String() != "delete" {
		t.Errorf("Op rendering: %q, %q", OpInsert, OpDelete)
	}
}
