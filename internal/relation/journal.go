// The change journal: instead of a bare generation counter that only says
// "something changed", the database keeps a bounded log of tuple-level
// mutations, each stamped with the generation it produced. Consumers that
// cache state derived from the database (materialized answer sets, score
// planes) record the generation their cache was built at and later ask
// "what changed since?" — receiving either the exact delta to apply
// incrementally, or a refusal when the journal no longer covers their
// watermark (compacted away, or a structural change occurred), in which
// case they rebuild from scratch. The journal is bounded: memory stays
// O(delta bound), never O(mutation history).
package relation

// Op is the kind of a journaled mutation.
type Op uint8

const (
	// OpInsert records a tuple added to a registered relation.
	OpInsert Op = iota
	// OpDelete records a tuple removed from a registered relation.
	OpDelete
)

// String returns "insert" or "delete".
func (op Op) String() string {
	if op == OpDelete {
		return "delete"
	}
	return "insert"
}

// Change is one journaled mutation: the generation it advanced the database
// to, the relation it touched, and the tuple inserted or deleted. The tuple
// is the relation's own (cloned-on-insert) copy; consumers must not mutate
// it.
type Change struct {
	Gen   uint64
	Op    Op
	Rel   string
	Tuple Tuple
}

// DefaultJournalBound is the default maximum number of retained journal
// entries. When the journal grows past the bound it compacts from the old
// end: consumers whose watermark predates the retained window fall back to
// a full rebuild. The bound keeps journal memory O(bound) regardless of how
// many mutations the database has ever seen.
const DefaultJournalBound = 4096

// journal is the bounded mutation log owned by a Database.
type journal struct {
	entries []Change // ascending Gen; contiguous (one entry per generation step)
	bound   int      // max retained entries; <= 0 means DefaultJournalBound
	// floor is the newest generation NOT covered by the journal: every
	// mutation with Gen > floor is present in entries. A consumer whose
	// watermark g satisfies g >= floor can be served the exact suffix; one
	// with g < floor has lost history and must rebuild.
	floor uint64
}

func (j *journal) cap() int {
	if j.bound <= 0 {
		return DefaultJournalBound
	}
	return j.bound
}

// record appends a journaled mutation, compacting from the old end when the
// bound is exceeded. Compaction advances floor past the dropped entries.
func (j *journal) record(c Change) {
	j.entries = append(j.entries, c)
	if over := len(j.entries) - j.cap(); over > 0 {
		j.floor = j.entries[over-1].Gen
		// Slide in place so the backing array is reused instead of growing
		// without bound across repeated compactions.
		n := copy(j.entries, j.entries[over:])
		j.entries = j.entries[:n]
	}
}

// truncate discards the whole journal after a structural (non-journalable)
// change at generation gen: every consumer with an older watermark must
// rebuild.
func (j *journal) truncate(gen uint64) {
	j.entries = j.entries[:0]
	j.floor = gen
}

// since returns the entries with Gen > g, and whether the journal covers
// that span. ok is false when g predates the retained window; the returned
// slice aliases the journal and is invalidated by the next mutation —
// callers consume it immediately (or copy).
func (j *journal) since(g uint64) ([]Change, bool) {
	if g < j.floor {
		return nil, false
	}
	// Entries are contiguous in Gen, so the suffix starts len-(gen-g) from
	// the end; guard against a watermark from the future.
	if len(j.entries) == 0 {
		return nil, true
	}
	last := j.entries[len(j.entries)-1].Gen
	if g >= last {
		return nil, true
	}
	start := len(j.entries) - int(last-g)
	if start < 0 {
		start = 0
	}
	return j.entries[start:], true
}

// SetJournalBound caps the retained journal entries (minimum 1; values <= 0
// restore DefaultJournalBound). Shrinking the bound compacts immediately.
func (d *Database) SetJournalBound(n int) {
	d.log.bound = n
	if over := len(d.log.entries) - d.log.cap(); over > 0 {
		d.log.floor = d.log.entries[over-1].Gen
		m := copy(d.log.entries, d.log.entries[over:])
		d.log.entries = d.log.entries[:m]
	}
}

// JournalLen reports the number of retained journal entries (for tests and
// memory accounting).
func (d *Database) JournalLen() int { return len(d.log.entries) }

// ChangesSince returns the tuple-level mutations that advanced the database
// from generation g to Generation(), oldest first, and whether the journal
// still covers that span. ok is false when g predates the retained window
// (compacted away) or a structural change — Add of a whole relation —
// occurred after g; the caller must then rebuild derived state from
// scratch. The returned slice aliases the journal: it is valid until the
// next mutation.
func (d *Database) ChangesSince(g uint64) (changes []Change, ok bool) {
	return d.log.since(g)
}
