package relation

import (
	"testing"
	"testing/quick"

	"repro/internal/value"
)

func TestTupleKeyUniqueness(t *testing.T) {
	a := Ints(1, 2, 3)
	b := Ints(1, 2, 3)
	c := Ints(1, 2, 4)
	if a.Key() != b.Key() {
		t.Error("equal tuples must share keys")
	}
	if a.Key() == c.Key() {
		t.Error("distinct tuples must have distinct keys")
	}
}

func TestTupleKeyNoSeparatorCollision(t *testing.T) {
	// (12, 3) vs (1, 23): naive concatenation would collide.
	a := Ints(12, 3)
	b := Ints(1, 23)
	if a.Key() == b.Key() {
		t.Error("separator failed to prevent collision")
	}
	// ("a", "b") vs ("ab",): arity differences must matter too.
	c := Tuple{value.Str("a"), value.Str("b")}
	d := Tuple{value.Str("ab")}
	if c.Key() == d.Key() {
		t.Error("arity-differing tuples collided")
	}
}

func TestTupleEqualAndCompare(t *testing.T) {
	a, b := Ints(1, 2), Ints(1, 3)
	if !a.Equal(Ints(1, 2)) || a.Equal(b) || a.Equal(Ints(1)) {
		t.Error("Equal misbehaves")
	}
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(Ints(1, 2)) != 0 {
		t.Error("Compare misbehaves")
	}
	if Ints(1).Compare(Ints(1, 0)) != -1 {
		t.Error("shorter tuple should order first on shared prefix")
	}
}

func TestTupleCloneIndependence(t *testing.T) {
	a := Ints(1, 2)
	c := a.Clone()
	c[0] = value.Int(99)
	if a[0].AsInt() != 1 {
		t.Error("Clone should be independent")
	}
}

func TestTupleString(t *testing.T) {
	got := Tuple{value.Int(1), value.Str("x")}.String()
	if got != "(1, x)" {
		t.Errorf("String() = %q", got)
	}
}

func TestSchemaBasics(t *testing.T) {
	s := NewSchema("R", "a", "b", "c")
	if s.Arity() != 3 {
		t.Errorf("Arity = %d", s.Arity())
	}
	if s.AttrIndex("b") != 1 || s.AttrIndex("z") != -1 {
		t.Error("AttrIndex misbehaves")
	}
	if s.String() != "R(a, b, c)" {
		t.Errorf("String() = %q", s.String())
	}
}

func TestSchemaRejectsDuplicateAttrs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for duplicate attribute")
		}
	}()
	NewSchema("R", "a", "a")
}

func TestRelationSetSemantics(t *testing.T) {
	r := NewRelation(NewSchema("R", "x", "y"))
	if !r.Insert(Ints(1, 2)) {
		t.Error("first insert should be new")
	}
	if r.Insert(Ints(1, 2)) {
		t.Error("duplicate insert should be ignored")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}
	if !r.Contains(Ints(1, 2)) || r.Contains(Ints(2, 1)) {
		t.Error("Contains misbehaves")
	}
}

func TestRelationArityCheck(t *testing.T) {
	r := NewRelation(NewSchema("R", "x"))
	defer func() {
		if recover() == nil {
			t.Error("expected panic for wrong arity")
		}
	}()
	r.Insert(Ints(1, 2))
}

func TestRelationInsertAllAndSorted(t *testing.T) {
	r := NewRelation(NewSchema("R", "x"))
	n := r.InsertAll(Ints(3), Ints(1), Ints(2), Ints(1))
	if n != 3 {
		t.Errorf("InsertAll = %d, want 3", n)
	}
	s := r.Sorted()
	for i, want := range []int64{1, 2, 3} {
		if s[i][0].AsInt() != want {
			t.Errorf("Sorted[%d] = %v, want %d", i, s[i], want)
		}
	}
}

func TestRelationCloneIndependence(t *testing.T) {
	r := NewRelation(NewSchema("R", "x"))
	r.Insert(Ints(1))
	c := r.Clone()
	c.Insert(Ints(2))
	if r.Len() != 1 || c.Len() != 2 {
		t.Error("Clone not independent")
	}
}

func TestDatabaseBasics(t *testing.T) {
	d := NewDatabase()
	r1 := NewRelation(NewSchema("R", "x"))
	r1.Insert(Ints(1))
	r2 := NewRelation(NewSchema("S", "y", "z"))
	r2.InsertAll(Ints(2, 3), Ints(4, 5))
	d.Add(r1).Add(r2)

	if d.Relation("R") != r1 || d.Relation("S") != r2 || d.Relation("T") != nil {
		t.Error("Relation lookup misbehaves")
	}
	names := d.Names()
	if len(names) != 2 || names[0] != "R" || names[1] != "S" {
		t.Errorf("Names = %v", names)
	}
	if d.Size() != 3 {
		t.Errorf("Size = %d, want 3", d.Size())
	}
}

func TestDatabaseActiveDomain(t *testing.T) {
	d := NewDatabase()
	r := NewRelation(NewSchema("R", "x", "y"))
	r.InsertAll(Ints(3, 1), Ints(1, 2))
	d.Add(r)
	dom := d.ActiveDomain()
	if len(dom) != 3 {
		t.Fatalf("ActiveDomain size = %d, want 3", len(dom))
	}
	for i, want := range []int64{1, 2, 3} {
		if dom[i].AsInt() != want {
			t.Errorf("dom[%d] = %v, want %d", i, dom[i], want)
		}
	}
}

func TestDatabaseReplaceKeepsOrder(t *testing.T) {
	d := NewDatabase()
	d.Add(NewRelation(NewSchema("A", "x")))
	d.Add(NewRelation(NewSchema("B", "x")))
	repl := NewRelation(NewSchema("A", "x"))
	repl.Insert(Ints(7))
	d.Add(repl)
	if got := d.Names(); len(got) != 2 || got[0] != "A" {
		t.Errorf("Names after replace = %v", got)
	}
	if d.Relation("A").Len() != 1 {
		t.Error("replacement instance not installed")
	}
}

func TestDatabaseCloneIsDeep(t *testing.T) {
	d := NewDatabase()
	r := NewRelation(NewSchema("R", "x"))
	r.Insert(Ints(1))
	d.Add(r)
	c := d.Clone()
	c.Relation("R").Insert(Ints(2))
	if d.Relation("R").Len() != 1 {
		t.Error("Clone should deep-copy relations")
	}
}

// Property: tuple Key is injective on integer tuples of equal arity.
func TestTupleKeyInjectiveProperty(t *testing.T) {
	f := func(a, b [3]int64) bool {
		ta := Ints(a[0], a[1], a[2])
		tb := Ints(b[0], b[1], b[2])
		return (ta.Key() == tb.Key()) == ta.Equal(tb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Compare defines a total order consistent with Equal.
func TestTupleCompareConsistencyProperty(t *testing.T) {
	f := func(a, b [2]int64) bool {
		ta, tb := Ints(a[0], a[1]), Ints(b[0], b[1])
		c := ta.Compare(tb)
		return c == -tb.Compare(ta) && (c == 0) == ta.Equal(tb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: inserting the same multiset of tuples in any two orders yields
// relations with identical sorted contents and Len.
func TestRelationOrderInsensitivityProperty(t *testing.T) {
	f := func(xs []int64) bool {
		fwd := NewRelation(NewSchema("R", "x"))
		rev := NewRelation(NewSchema("R", "x"))
		for _, x := range xs {
			fwd.Insert(Ints(x))
		}
		for i := len(xs) - 1; i >= 0; i-- {
			rev.Insert(Ints(xs[i]))
		}
		if fwd.Len() != rev.Len() {
			return false
		}
		fs, rs := fwd.Sorted(), rev.Sorted()
		for i := range fs {
			if !fs[i].Equal(rs[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDatabaseGeneration(t *testing.T) {
	db := NewDatabase()
	g0 := db.Generation()
	r := NewRelation(NewSchema("R", "x"))
	db.Add(r)
	g1 := db.Generation()
	if g1 == g0 {
		t.Error("Add must advance the generation")
	}
	// Inserts through a registered relation advance it too.
	r.Insert(Ints(1))
	g2 := db.Generation()
	if g2 == g1 {
		t.Error("Insert into a registered relation must advance the generation")
	}
	// Duplicate inserts are no-ops and must not advance it.
	r.Insert(Ints(1))
	if db.Generation() != g2 {
		t.Error("duplicate Insert must not advance the generation")
	}
	// A cloned database gets its own counter wired to its own relations.
	c := db.Clone()
	cg := c.Generation()
	c.Relation("R").Insert(Ints(2))
	if c.Generation() == cg {
		t.Error("clone's relations must advance the clone's generation")
	}
	if db.Generation() != g2 {
		t.Error("clone mutations must not advance the original's generation")
	}
}
