// Package relation implements the relational substrate of the paper's model:
// named relation schemas over fixed attribute lists, set-semantics relation
// instances, and databases D = (R1, ..., Rn) with an active domain. Query
// evaluation, diversification and the lower-bound gadget constructions all
// operate on these types.
package relation

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/value"
)

// Tuple is an ordered list of constants. Tuples of the same arity compare
// lexicographically; a tuple's Key canonically encodes it for set membership.
type Tuple []value.Value

// Key returns a canonical encoding of the tuple, unique per tuple content.
func (t Tuple) Key() string {
	var b strings.Builder
	for i, v := range t {
		if i > 0 {
			b.WriteByte(0x1f) // unit separator: cannot collide with payloads
		}
		b.WriteString(v.Key())
	}
	return b.String()
}

// Equal reports whether t and u have the same arity and equal fields.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if !value.Equal(t[i], u[i]) {
			return false
		}
	}
	return true
}

// Compare lexicographically orders tuples; shorter tuples order first on a
// shared prefix.
func (t Tuple) Compare(u Tuple) int {
	n := len(t)
	if len(u) < n {
		n = len(u)
	}
	for i := 0; i < n; i++ {
		if c := value.Compare(t[i], u[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(t) < len(u):
		return -1
	case len(t) > len(u):
		return 1
	default:
		return 0
	}
}

// Clone returns an independent copy of the tuple.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// String renders the tuple as (v1, v2, ...).
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Ints builds a tuple of integer values; a convenience heavily used by the
// Boolean gadget constructions, where tuples encode truth assignments.
func Ints(xs ...int64) Tuple {
	t := make(Tuple, len(xs))
	for i, x := range xs {
		t[i] = value.Int(x)
	}
	return t
}

// Schema names a relation and its attributes.
type Schema struct {
	Name  string
	Attrs []string
}

// NewSchema constructs a schema. Attribute names must be distinct.
func NewSchema(name string, attrs ...string) Schema {
	seen := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		if seen[a] {
			panic(fmt.Sprintf("relation: schema %s repeats attribute %q", name, a))
		}
		seen[a] = true
	}
	return Schema{Name: name, Attrs: append([]string(nil), attrs...)}
}

// Arity returns the number of attributes.
func (s Schema) Arity() int { return len(s.Attrs) }

// AttrIndex returns the position of the named attribute, or -1.
func (s Schema) AttrIndex(name string) int {
	for i, a := range s.Attrs {
		if a == name {
			return i
		}
	}
	return -1
}

// String renders the schema as Name(attr1, attr2, ...).
func (s Schema) String() string {
	return s.Name + "(" + strings.Join(s.Attrs, ", ") + ")"
}

// Relation is a set of tuples under a schema. Insertion order is preserved
// for deterministic iteration; duplicates are ignored (set semantics).
type Relation struct {
	schema Schema
	tuples []Tuple
	index  map[string]int

	// onMutate, when set, is invoked after every successful Insert or
	// Delete with the stored tuple. The owning Database installs it so that
	// tuple-level mutations advance the database generation counter and are
	// recorded in its change journal; a relation belongs to at most one
	// database at a time.
	onMutate func(op Op, t Tuple)
}

// NewRelation creates an empty relation instance of the schema.
func NewRelation(schema Schema) *Relation {
	return &Relation{schema: schema, index: make(map[string]int)}
}

// Schema returns the relation's schema.
func (r *Relation) Schema() Schema { return r.schema }

// Len reports the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Insert adds a tuple, ignoring duplicates. It reports whether the tuple was
// new. Inserting a tuple of the wrong arity is a programming error.
func (r *Relation) Insert(t Tuple) bool {
	if len(t) != r.schema.Arity() {
		panic(fmt.Sprintf("relation: tuple arity %d does not match schema %s", len(t), r.schema))
	}
	k := t.Key()
	if _, ok := r.index[k]; ok {
		return false
	}
	r.index[k] = len(r.tuples)
	stored := t.Clone()
	r.tuples = append(r.tuples, stored)
	if r.onMutate != nil {
		r.onMutate(OpInsert, stored)
	}
	return true
}

// Delete removes a tuple, reporting whether it was present. Later tuples
// keep their relative (insertion) order; removal from the middle is O(n)
// because the position index of every following tuple shifts down.
func (r *Relation) Delete(t Tuple) bool {
	k := t.Key()
	pos, ok := r.index[k]
	if !ok {
		return false
	}
	stored := r.tuples[pos]
	delete(r.index, k)
	copy(r.tuples[pos:], r.tuples[pos+1:])
	r.tuples[len(r.tuples)-1] = nil
	r.tuples = r.tuples[:len(r.tuples)-1]
	for i := pos; i < len(r.tuples); i++ {
		r.index[r.tuples[i].Key()] = i
	}
	if r.onMutate != nil {
		r.onMutate(OpDelete, stored)
	}
	return true
}

// InsertAll inserts every tuple, returning the count of new tuples.
func (r *Relation) InsertAll(ts ...Tuple) int {
	n := 0
	for _, t := range ts {
		if r.Insert(t) {
			n++
		}
	}
	return n
}

// Contains reports membership of t.
func (r *Relation) Contains(t Tuple) bool {
	_, ok := r.index[t.Key()]
	return ok
}

// Tuples returns the tuples in insertion order. The slice is shared; callers
// must not mutate it.
func (r *Relation) Tuples() []Tuple { return r.tuples }

// Sorted returns the tuples in lexicographic order (a fresh slice).
func (r *Relation) Sorted() []Tuple {
	out := append([]Tuple(nil), r.tuples...)
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Clone returns a deep copy of the relation.
func (r *Relation) Clone() *Relation {
	c := NewRelation(r.schema)
	for _, t := range r.tuples {
		c.Insert(t)
	}
	return c
}

// String renders the relation with its schema header and sorted tuples.
func (r *Relation) String() string {
	var b strings.Builder
	b.WriteString(r.schema.String())
	b.WriteString(" {")
	for i, t := range r.Sorted() {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	b.WriteString("}")
	return b.String()
}

// Tap observes every committed mutation of a Database, for durability
// layers that persist the relational state: TapChange fires after each
// journaled tuple insert or delete, TapAdd after each structural relation
// Add. Both are invoked synchronously inside the mutation, before it
// returns to the caller — a write-ahead log implementing Tap therefore has
// the entry on its buffer before the mutation is acknowledged. A tap must
// not mutate the database reentrantly, and must not retain the *Relation
// passed to TapAdd beyond the call.
type Tap interface {
	TapChange(c Change)
	TapAdd(gen uint64, r *Relation)
}

// Database is a named collection of relations, the D in Q(D).
type Database struct {
	relations map[string]*Relation
	order     []string
	gen       uint64
	log       journal
	tap       Tap
}

// NewDatabase creates an empty database.
func NewDatabase() *Database {
	return &Database{relations: make(map[string]*Relation)}
}

// Add registers a relation instance. Re-adding a name replaces the instance
// but keeps its position. Adding advances the database generation and — as
// a structural change the journal cannot express tuple-by-tuple (the
// relation may arrive pre-populated) — truncates the change journal, so
// every consumer with an older watermark rebuilds. The relation is hooked
// so that subsequent tuple inserts and deletes are journaled.
func (d *Database) Add(r *Relation) *Database {
	name := r.Schema().Name
	if _, ok := d.relations[name]; !ok {
		d.order = append(d.order, name)
	}
	d.relations[name] = r
	r.onMutate = func(op Op, t Tuple) { d.record(op, name, t) }
	d.gen++
	d.log.truncate(d.gen)
	if d.tap != nil {
		d.tap.TapAdd(d.gen, r)
	}
	return d
}

// SetTap installs (or, with nil, removes) the mutation observer. The tap
// sees every subsequent mutation; installing one does not replay history —
// durability layers snapshot the current state first, then tap the stream.
func (d *Database) SetTap(t Tap) { d.tap = t }

// RestoreGeneration force-sets the generation counter and resets the change
// journal to an empty window at that generation. It exists for recovery: a
// database reconstructed from a snapshot must resume the exact generation
// sequence the snapshot was taken at, so that replaying the log's
// per-generation entries lands every consumer watermark where it was.
func (d *Database) RestoreGeneration(gen uint64) {
	d.gen = gen
	d.log.truncate(gen)
}

// Generation returns a counter that advances on every mutation of the
// database — CreateTable-style Adds and tuple Inserts/Deletes on registered
// relations alike. Callers that cache derived state (materialized answer
// sets, prepared plans) compare generations to detect staleness, and ask
// ChangesSince for the delta between their watermark and the present.
func (d *Database) Generation() uint64 { return d.gen }

// record advances the generation for one tuple-level mutation and journals
// it, keeping the invariant that every generation step above the journal
// floor has exactly one entry.
func (d *Database) record(op Op, rel string, t Tuple) {
	d.gen++
	c := Change{Gen: d.gen, Op: op, Rel: rel, Tuple: t}
	d.log.record(c)
	if d.tap != nil {
		d.tap.TapChange(c)
	}
}

// Relation returns the named relation, or nil.
func (d *Database) Relation(name string) *Relation { return d.relations[name] }

// Names lists relation names in registration order.
func (d *Database) Names() []string { return append([]string(nil), d.order...) }

// Size returns the total number of tuples across all relations.
func (d *Database) Size() int {
	n := 0
	for _, r := range d.relations {
		n += r.Len()
	}
	return n
}

// ActiveDomain returns the distinct constants appearing anywhere in the
// database, in deterministic (sorted) order. Queries with quantifiers are
// evaluated under active-domain semantics over this set (plus the query's
// own constants).
func (d *Database) ActiveDomain() []value.Value {
	seen := make(map[string]value.Value)
	for _, name := range d.order {
		for _, t := range d.relations[name].Tuples() {
			for _, v := range t {
				seen[v.Key()] = v
			}
		}
	}
	out := make([]value.Value, 0, len(seen))
	for _, v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return value.Less(out[i], out[j]) })
	return out
}

// Clone deep-copies the database.
func (d *Database) Clone() *Database {
	c := NewDatabase()
	for _, name := range d.order {
		c.Add(d.relations[name].Clone())
	}
	return c
}
