package relation

import (
	"reflect"
	"testing"
)

// recordingTap logs every Tap callback as a compact event, asserting the
// observer contract: fired synchronously, in mutation order, with the
// generation the mutation advanced the database to.
type recordingTap struct {
	events []tapEvent
}

type tapEvent struct {
	kind string // "add", "insert", "delete"
	gen  uint64
	rel  string
	key  string // tuple key for changes
}

func (rt *recordingTap) TapChange(c Change) {
	kind := "insert"
	if c.Op == OpDelete {
		kind = "delete"
	}
	rt.events = append(rt.events, tapEvent{kind: kind, gen: c.Gen, rel: c.Rel, key: c.Tuple.Key()})
}

func (rt *recordingTap) TapAdd(gen uint64, r *Relation) {
	rt.events = append(rt.events, tapEvent{kind: "add", gen: gen, rel: r.Schema().Name})
}

func TestTapObservesMutationStream(t *testing.T) {
	d := NewDatabase()
	rt := &recordingTap{}
	d.SetTap(rt)

	d.Add(NewRelation(NewSchema("r", "x")))
	r := d.Relation("r")
	r.Insert(Ints(1))
	r.Insert(Ints(2))
	r.Insert(Ints(1)) // duplicate: no mutation, no tap event
	r.Delete(Ints(1))
	r.Delete(Ints(9)) // miss: no event

	want := []tapEvent{
		{kind: "add", gen: 1, rel: "r"},
		{kind: "insert", gen: 2, rel: "r", key: Ints(1).Key()},
		{kind: "insert", gen: 3, rel: "r", key: Ints(2).Key()},
		{kind: "delete", gen: 4, rel: "r", key: Ints(1).Key()},
	}
	if !reflect.DeepEqual(rt.events, want) {
		t.Fatalf("tap stream:\n got %+v\nwant %+v", rt.events, want)
	}
	if d.Generation() != 4 {
		t.Fatalf("generation %d, want 4", d.Generation())
	}
}

func TestTapInstallDoesNotReplayHistory(t *testing.T) {
	d := NewDatabase()
	d.Add(NewRelation(NewSchema("r", "x")))
	d.Relation("r").Insert(Ints(1))

	rt := &recordingTap{}
	d.SetTap(rt)
	if len(rt.events) != 0 {
		t.Fatalf("installing a tap replayed history: %+v", rt.events)
	}
	d.Relation("r").Insert(Ints(2))
	if len(rt.events) != 1 || rt.events[0].gen != 3 {
		t.Fatalf("post-install mutation not observed correctly: %+v", rt.events)
	}

	d.SetTap(nil)
	d.Relation("r").Insert(Ints(3))
	if len(rt.events) != 1 {
		t.Fatalf("removed tap still fired: %+v", rt.events)
	}
}

func TestRestoreGeneration(t *testing.T) {
	d := NewDatabase()
	d.Add(NewRelation(NewSchema("r", "x")))
	d.RestoreGeneration(41)
	if d.Generation() != 41 {
		t.Fatalf("generation %d, want 41", d.Generation())
	}

	// The next mutation continues the restored sequence and the journal
	// window restarts at the restored point: a consumer at watermark 41
	// sees exactly the new change.
	d.Relation("r").Insert(Ints(7))
	if d.Generation() != 42 {
		t.Fatalf("generation %d, want 42", d.Generation())
	}
	changes, ok := d.ChangesSince(41)
	if !ok || len(changes) != 1 || changes[0].Gen != 42 {
		t.Fatalf("ChangesSince(41) = %+v, %v; want the single gen-42 change", changes, ok)
	}
	// History below the restore point is gone, as documented.
	if _, ok := d.ChangesSince(40); ok {
		t.Fatal("ChangesSince below the restore point should report a truncated window")
	}
}
