// Package ctxpoll provides the shared throttled context-poll used by every
// hot loop that must stay interruptible — the solver's subset search, the
// query evaluator's backtracking join, and the approximation heuristics'
// scan loops. Polling ctx.Err() on every iteration would dominate the tight
// loops, so the poller samples once per interval and latches the first
// error it sees.
package ctxpoll

import "context"

// interval is the poll throttle: ctx.Err() is sampled every interval calls
// (must be a power of two). At the >10⁶ iterations/s of the loops using it,
// this bounds cancellation latency well under a millisecond.
const interval = 1024

// Poller samples a context's error at a throttled rate. The zero value (and
// New(nil) / New(context.Background())) is inert and never stops.
type Poller struct {
	ctx context.Context
	ops uint
	err error
}

// New returns a poller for ctx. A nil or Background context yields an inert
// poller with zero per-call cost beyond a nil check. The first Stop call
// samples the context immediately (ops starts one shy of the interval), so
// an already-cancelled context aborts even computations whose loops never
// reach a full interval — the cancellation contract must not depend on
// workload size.
func New(ctx context.Context) *Poller {
	if ctx == nil || ctx == context.Background() {
		return &Poller{}
	}
	return &Poller{ctx: ctx, ops: interval - 1}
}

// Stop reports whether the computation must abort. Once true it stays true;
// the cause is in Err.
func (p *Poller) Stop() bool {
	if p.ctx == nil {
		return false
	}
	if p.err != nil {
		return true
	}
	if p.ops++; p.ops&(interval-1) != 0 {
		return false
	}
	p.err = p.ctx.Err()
	return p.err != nil
}

// Err returns the context error that stopped the computation, or nil.
func (p *Poller) Err() error { return p.err }
