package compat

import (
	"testing"

	"repro/internal/relation"
	"repro/internal/value"
)

// itemSchema and tuples model the shopping scenario of Example 9.1 (ρ1).
var itemSchema = relation.NewSchema("RQ1", "item", "price")

func item(name string, price int64) relation.Tuple {
	return relation.Tuple{value.Str(name), value.Int(price)}
}

// rho1: if items a and b are both picked, c must be too.
func rho1() *Constraint {
	return &Constraint{
		Forall: []string{"t1", "t2"},
		Exists: []string{"s"},
		Cond: []Pred{
			{Op: Eq, L: Ref("t1", "item"), R: Lit(value.Str("a"))},
			{Op: Eq, L: Ref("t2", "item"), R: Lit(value.Str("b"))},
		},
		Conc: []Pred{{Op: Eq, L: Ref("s", "item"), R: Lit(value.Str("c"))}},
	}
}

func TestRho1Semantics(t *testing.T) {
	c := rho1()
	if err := c.Validate(itemSchema); err != nil {
		t.Fatal(err)
	}
	withAB := []relation.Tuple{item("a", 1), item("b", 2)}
	if c.Satisfies(withAB, itemSchema) {
		t.Error("a and b without c should violate ρ1")
	}
	withABC := []relation.Tuple{item("a", 1), item("b", 2), item("c", 3)}
	if !c.Satisfies(withABC, itemSchema) {
		t.Error("a, b and c should satisfy ρ1")
	}
	onlyA := []relation.Tuple{item("a", 1), item("x", 9)}
	if !c.Satisfies(onlyA, itemSchema) {
		t.Error("without b the implication is vacuous")
	}
	if !c.Satisfies(nil, itemSchema) {
		t.Error("empty set satisfies vacuously")
	}
}

// rho2: course CS450 requires its prerequisites CS220 and CS350
// (Example 9.1).
func TestRho2CoursePrerequisites(t *testing.T) {
	schema := relation.NewSchema("RQ2", "id", "title")
	course := func(id string) relation.Tuple {
		return relation.Tuple{value.Str(id), value.Str("title-" + id)}
	}
	c := MustParse(`forall t (t.id = "CS450" -> exists p1, p2 (p1.id = "CS220", p2.id = "CS350"))`)
	if err := c.Validate(schema); err != nil {
		t.Fatal(err)
	}
	if c.Satisfies([]relation.Tuple{course("CS450"), course("CS220")}, schema) {
		t.Error("missing CS350 should violate ρ2")
	}
	if !c.Satisfies([]relation.Tuple{course("CS450"), course("CS220"), course("CS350")}, schema) {
		t.Error("all prerequisites present should satisfy ρ2")
	}
	if !c.Satisfies([]relation.Tuple{course("CS101")}, schema) {
		t.Error("no CS450 means vacuous satisfaction")
	}
}

// rho3: at most two centers on the team (Example 9.1). Three pairwise
// distinct centers force a contradiction in the conclusion.
func TestRho3AtMostTwoCenters(t *testing.T) {
	schema := relation.NewSchema("RQ3", "id", "position")
	player := func(id int64, pos string) relation.Tuple {
		return relation.Tuple{value.Int(id), value.Str(pos)}
	}
	c := &Constraint{
		Forall: []string{"t1", "t2", "t3"},
		Cond: []Pred{
			{Op: Eq, L: Ref("t1", "position"), R: Lit(value.Str("center"))},
			{Op: Eq, L: Ref("t2", "position"), R: Lit(value.Str("center"))},
			{Op: Eq, L: Ref("t3", "position"), R: Lit(value.Str("center"))},
			{Op: Ne, L: Ref("t1", "id"), R: Ref("t2", "id")},
			{Op: Ne, L: Ref("t1", "id"), R: Ref("t3", "id")},
			{Op: Ne, L: Ref("t2", "id"), R: Ref("t3", "id")},
		},
		// Unsatisfiable conclusion: no set with three distinct centers passes.
		Conc: []Pred{{Op: Ne, L: Ref("t1", "id"), R: Ref("t1", "id")}},
	}
	if err := c.Validate(schema); err != nil {
		t.Fatal(err)
	}
	two := []relation.Tuple{player(1, "center"), player(2, "center"), player(3, "guard")}
	if !c.Satisfies(two, schema) {
		t.Error("two centers should be allowed")
	}
	three := []relation.Tuple{player(1, "center"), player(2, "center"), player(3, "center")}
	if c.Satisfies(three, schema) {
		t.Error("three centers should be rejected")
	}
}

func TestUnconditionalExists(t *testing.T) {
	c := MustParse(`exists s (s.item = "card")`)
	if c.Width() != 1 || len(c.Forall) != 0 {
		t.Fatalf("parsed shape wrong: %+v", c)
	}
	with := []relation.Tuple{item("card", 3)}
	without := []relation.Tuple{item("gift", 25)}
	if !c.Satisfies(with, itemSchema) || c.Satisfies(without, itemSchema) {
		t.Error("unconditional exists misbehaves")
	}
}

func TestSameTupleMayBindMultipleVariables(t *testing.T) {
	// forall t1, t2 with t1=t2 allowed: a single tuple binds both.
	c := MustParse(`forall t1, t2 (t1.item = "a", t2.item = "a" -> exists s (s.item = "b"))`)
	if c.Satisfies([]relation.Tuple{item("a", 1)}, itemSchema) {
		t.Error("single 'a' tuple binds both variables; 'b' is required")
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []*Constraint{
		{Forall: []string{"t", "t"}},                   // dup var
		{Forall: []string{"t"}, Exists: []string{"t"}}, // dup across blocks
		{Forall: []string{"t"}, Cond: []Pred{{Op: Eq, L: Ref("u", "item"), R: Lit(value.Int(1))}}}, // undeclared
		{Forall: []string{"t"}, Exists: []string{"s"},
			Cond: []Pred{{Op: Eq, L: Ref("s", "item"), R: Lit(value.Int(1))}}}, // existential in condition
		{Forall: []string{"t"}, Cond: []Pred{{Op: Eq, L: Ref("t", "nope"), R: Lit(value.Int(1))}}}, // bad attr
	}
	for i, c := range cases {
		if err := c.Validate(itemSchema); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestSetWidthBound(t *testing.T) {
	s := NewSet(2)
	wide := &Constraint{Forall: []string{"a", "b"}, Exists: []string{"c"}}
	if err := s.Add(wide); err == nil {
		t.Error("width-3 constraint should exceed m=2")
	}
	ok := &Constraint{Forall: []string{"a"}, Exists: []string{"b"}}
	if err := s.Add(ok); err != nil {
		t.Errorf("width-2 constraint rejected: %v", err)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
	if NewSet(0).M != 2 {
		t.Error("m should be raised to 2")
	}
}

func TestSetSatisfiesAll(t *testing.T) {
	s := NewSet(3)
	s.MustAdd(MustParse(`forall t (t.item = "a" -> exists x (x.item = "b"))`))
	s.MustAdd(MustParse(`forall t (t.item = "b" -> exists x (x.item = "c"))`))
	u := []relation.Tuple{item("a", 1), item("b", 2)}
	if s.Satisfies(u, itemSchema) {
		t.Error("chain requires c")
	}
	u = append(u, item("c", 3))
	if !s.Satisfies(u, itemSchema) {
		t.Error("full chain should satisfy")
	}
	var nilSet *Set
	if !nilSet.Satisfies(u, itemSchema) || nilSet.Len() != 0 {
		t.Error("nil set should be trivially satisfied")
	}
}

func TestParseVariants(t *testing.T) {
	srcs := []string{
		`forall t1, t2 (t1.item = "a", t2.item = "b" -> exists s (s.item = "c"))`,
		`forall t (true -> exists s (s.item = "c"))`,
		`forall t (t.price != 5 -> t.item != "z")`,
		`exists s (s.price = 10)`,
		`forall t (t.item = "x")`, // unconditional universal conclusion
	}
	for _, src := range srcs {
		c, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		if err := c.Validate(itemSchema); err != nil {
			t.Errorf("Validate(%q): %v", src, err)
		}
	}
}

func TestParseNumbersAndBooleans(t *testing.T) {
	c := MustParse(`forall t (t.price = -3 -> exists s (s.price = 2.5))`)
	if c.Cond[0].R.Const.AsInt() != -3 {
		t.Error("negative int literal")
	}
	if c.Conc[0].R.Const.AsFloat() != 2.5 {
		t.Error("float literal")
	}
	c2 := MustParse(`forall t (t.price = true -> t.price = false)`)
	if !c2.Cond[0].R.Const.AsBool() || c2.Conc[0].R.Const.AsBool() {
		t.Error("boolean literals")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`forall (x.a = 1)`,
		`forall t x.a = 1`,
		`forall t (t.a = )`,
		`forall t (t.a ~ 1)`,
		`forall t (t.a = 1`,
		`exists s (s.a = "unterminated)`,
		`forall t (t.a = 1) trailing`,
		`forall t (t = 1)`, // missing .attr
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		`forall t1, t2 (t1.item = "a", t2.item = "b" -> exists s (s.item = "c"))`,
		`exists s (s.item = "card")`,
	}
	for _, src := range srcs {
		c1 := MustParse(src)
		c2, err := Parse(c1.String())
		if err != nil {
			t.Fatalf("reparse of %q failed: %v", c1.String(), err)
		}
		if c1.String() != c2.String() {
			t.Errorf("round trip changed %q -> %q", c1.String(), c2.String())
		}
	}
}

func TestUnconditionalGroundConstraint(t *testing.T) {
	// Width 0: constant-only predicates.
	c := MustParse(`true`)
	if !c.Satisfies(nil, itemSchema) {
		t.Error("empty constraint should hold")
	}
}
