package compat

import (
	"fmt"
	"strings"

	"repro/internal/value"
)

// Parse reads a constraint in the textual notation mirroring the paper:
//
//	forall t1, t2 (t1.item = "a", t2.item = "b" -> exists s (s.item = "c"))
//	forall t (t.id = "CS450" -> exists p1, p2 (p1.id = "CS220", p2.id = "CS350"))
//	exists s (s.kind = "card")
//	forall t1, t2 (t1.pos = "center", t2.pos = "center", t1.id != t2.id -> t1.id = t2.id)
//
// Both quantifier blocks are optional; "true" may stand for an empty
// predicate list. Predicates are comma- or "and"-separated.
func Parse(src string) (*Constraint, error) {
	p := &cparser{src: src}
	c, err := p.constraint()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("compat: trailing input at offset %d", p.pos)
	}
	return c, nil
}

// MustParse is Parse that panics on error.
func MustParse(src string) *Constraint {
	c, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return c
}

type cparser struct {
	src string
	pos int
}

func (p *cparser) skipSpace() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *cparser) keyword(kw string) bool {
	p.skipSpace()
	if strings.HasPrefix(p.src[p.pos:], kw) {
		end := p.pos + len(kw)
		if end == len(p.src) || !isWordChar(p.src[end]) {
			p.pos = end
			return true
		}
	}
	return false
}

func (p *cparser) punct(c byte) bool {
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

func (p *cparser) arrow() bool {
	p.skipSpace()
	if strings.HasPrefix(p.src[p.pos:], "->") {
		p.pos += 2
		return true
	}
	return false
}

func isWordChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}

func (p *cparser) ident() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && isWordChar(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", fmt.Errorf("compat: expected identifier at offset %d", start)
	}
	return p.src[start:p.pos], nil
}

func (p *cparser) varList() ([]string, error) {
	var vars []string
	for {
		v, err := p.ident()
		if err != nil {
			return nil, err
		}
		vars = append(vars, v)
		if !p.punct(',') {
			return vars, nil
		}
	}
}

func (p *cparser) constraint() (*Constraint, error) {
	c := &Constraint{}
	if p.keyword("forall") {
		vars, err := p.varList()
		if err != nil {
			return nil, err
		}
		c.Forall = vars
		if !p.punct('(') {
			return nil, fmt.Errorf("compat: expected ( after forall variables at offset %d", p.pos)
		}
		cond, err := p.predList()
		if err != nil {
			return nil, err
		}
		if p.arrow() {
			c.Cond = cond
			if err := p.conclusion(c); err != nil {
				return nil, err
			}
		} else {
			// No arrow: the whole body is an unconditional conclusion.
			c.Conc = cond
		}
		if !p.punct(')') {
			return nil, fmt.Errorf("compat: expected closing ) at offset %d", p.pos)
		}
		return c, nil
	}
	// No universal block: unconditional conclusion.
	if err := p.conclusion(c); err != nil {
		return nil, err
	}
	return c, nil
}

func (p *cparser) conclusion(c *Constraint) error {
	if p.keyword("exists") {
		vars, err := p.varList()
		if err != nil {
			return err
		}
		c.Exists = vars
		if !p.punct('(') {
			return fmt.Errorf("compat: expected ( after exists variables at offset %d", p.pos)
		}
		conc, err := p.predList()
		if err != nil {
			return err
		}
		c.Conc = conc
		if !p.punct(')') {
			return fmt.Errorf("compat: expected ) closing exists block at offset %d", p.pos)
		}
		return nil
	}
	conc, err := p.predList()
	if err != nil {
		return err
	}
	c.Conc = conc
	return nil
}

func (p *cparser) predList() ([]Pred, error) {
	if p.keyword("true") {
		return nil, nil
	}
	var preds []Pred
	for {
		pr, err := p.pred()
		if err != nil {
			return nil, err
		}
		preds = append(preds, pr)
		if p.punct(',') || p.keyword("and") {
			continue
		}
		return preds, nil
	}
}

func (p *cparser) pred() (Pred, error) {
	l, err := p.operand()
	if err != nil {
		return Pred{}, err
	}
	op, err := p.op()
	if err != nil {
		return Pred{}, err
	}
	r, err := p.operand()
	if err != nil {
		return Pred{}, err
	}
	return Pred{Op: op, L: l, R: r}, nil
}

func (p *cparser) op() (Op, error) {
	p.skipSpace()
	if strings.HasPrefix(p.src[p.pos:], "!=") {
		p.pos += 2
		return Ne, nil
	}
	if p.pos < len(p.src) && p.src[p.pos] == '=' {
		p.pos++
		return Eq, nil
	}
	return Eq, fmt.Errorf("compat: expected = or != at offset %d", p.pos)
}

func (p *cparser) operand() (Operand, error) {
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == '"' {
		end := strings.IndexByte(p.src[p.pos+1:], '"')
		if end < 0 {
			return Operand{}, fmt.Errorf("compat: unterminated string at offset %d", p.pos)
		}
		s := p.src[p.pos+1 : p.pos+1+end]
		p.pos += end + 2
		return Lit(value.Str(s)), nil
	}
	if p.pos < len(p.src) && (p.src[p.pos] == '-' || p.src[p.pos] >= '0' && p.src[p.pos] <= '9') {
		start := p.pos
		if p.src[p.pos] == '-' {
			p.pos++
		}
		for p.pos < len(p.src) && (p.src[p.pos] >= '0' && p.src[p.pos] <= '9' || p.src[p.pos] == '.') {
			p.pos++
		}
		return Lit(value.Parse(p.src[start:p.pos])), nil
	}
	name, err := p.ident()
	if err != nil {
		return Operand{}, err
	}
	switch name {
	case "true":
		return Lit(value.Bool(true)), nil
	case "false":
		return Lit(value.Bool(false)), nil
	}
	if !p.punct('.') {
		return Operand{}, fmt.Errorf("compat: expected .attr after variable %q at offset %d", name, p.pos)
	}
	attr, err := p.ident()
	if err != nil {
		return Operand{}, err
	}
	return Ref(name, attr), nil
}
