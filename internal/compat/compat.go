// Package compat implements the class Cm of compatibility constraints from
// Section 9. A constraint has the form
//
//	∀ t1, ..., tl : RQ ( χ(t1..tl) → ∃ s1, ..., sh : RQ ξ(t1..tl, s1..sh) )
//
// where l, h ≤ m for a predefined constant m ≥ 2, and χ, ξ are conjunctions
// of predicates ρ[A] = ̺[B], ρ[A] != ̺[B], ρ[A] = c or ρ[A] != c. Such
// constraints express "take these together" and "these conflict"
// requirements (Example 9.1), and — as the paper stresses — are validated in
// PTIME: Satisfies runs in O(|U|^(l+h) · |preds|) for the fixed bound m.
package compat

import (
	"fmt"
	"strings"

	"repro/internal/relation"
	"repro/internal/value"
)

// Op is a predicate comparison: Cm allows only equality and inequality.
type Op int

// The two predicate operators of Cm.
const (
	Eq Op = iota
	Ne
)

// String renders the operator.
func (o Op) String() string {
	if o == Eq {
		return "="
	}
	return "!="
}

// Operand is one side of a predicate: either a tuple-variable attribute
// reference v.attr or a constant.
type Operand struct {
	Var   string // tuple variable name; empty for constants
	Attr  string // attribute name when Var != ""
	Const value.Value
}

// Ref makes an attribute-reference operand.
func Ref(variable, attr string) Operand { return Operand{Var: variable, Attr: attr} }

// Lit makes a constant operand.
func Lit(v value.Value) Operand { return Operand{Const: v} }

// IsRef reports whether the operand references a tuple variable.
func (o Operand) IsRef() bool { return o.Var != "" }

// String renders the operand.
func (o Operand) String() string {
	if o.IsRef() {
		return o.Var + "." + o.Attr
	}
	if o.Const.Kind() == value.KindString {
		return fmt.Sprintf("%q", o.Const.AsString())
	}
	return o.Const.String()
}

// Pred is a single predicate L op R.
type Pred struct {
	Op   Op
	L, R Operand
}

// String renders the predicate.
func (p Pred) String() string { return p.L.String() + " " + p.Op.String() + " " + p.R.String() }

// Constraint is one constraint of Cm.
type Constraint struct {
	Forall []string // universal tuple variables t1..tl (l may be 0)
	Exists []string // existential tuple variables s1..sh (h may be 0)
	Cond   []Pred   // χ: over universal variables only
	Conc   []Pred   // ξ: over universal and existential variables
}

// Width returns l + h, the number of tuple variables; constraints belong to
// Cm when Width() ≤ m.
func (c *Constraint) Width() int { return len(c.Forall) + len(c.Exists) }

// ForallOnly reports whether the constraint has no existential block. Such
// constraints are violation-monotone: once a set violates one, every
// superset violates it too, which licenses pruning partial selections
// during search.
func (c *Constraint) ForallOnly() bool { return len(c.Exists) == 0 }

// String renders the constraint in the paper's notation.
func (c *Constraint) String() string {
	var b strings.Builder
	if len(c.Forall) > 0 {
		b.WriteString("forall ")
		b.WriteString(strings.Join(c.Forall, ", "))
		b.WriteString(" (")
	}
	// A bare existential requirement has no condition part at all; writing
	// "true" without a forall block would not reparse.
	if len(c.Forall) > 0 || len(c.Cond) > 0 {
		b.WriteString(predList(c.Cond))
		b.WriteString(" -> ")
	}
	if len(c.Exists) > 0 {
		b.WriteString("exists ")
		b.WriteString(strings.Join(c.Exists, ", "))
		b.WriteString(" (")
	}
	b.WriteString(predList(c.Conc))
	if len(c.Exists) > 0 {
		b.WriteString(")")
	}
	if len(c.Forall) > 0 {
		b.WriteString(")")
	}
	return b.String()
}

func predList(ps []Pred) string {
	if len(ps) == 0 {
		return "true"
	}
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = p.String()
	}
	return strings.Join(parts, ", ")
}

// Validate checks the constraint's well-formedness against a result schema:
// every referenced attribute must exist, condition predicates may reference
// only universal variables, and conclusion predicates only declared
// variables.
func (c *Constraint) Validate(schema relation.Schema) error {
	declared := make(map[string]bool)
	for _, v := range c.Forall {
		if declared[v] {
			return fmt.Errorf("compat: duplicate variable %q", v)
		}
		declared[v] = true
	}
	univ := make(map[string]bool, len(c.Forall))
	for _, v := range c.Forall {
		univ[v] = true
	}
	for _, v := range c.Exists {
		if declared[v] {
			return fmt.Errorf("compat: duplicate variable %q", v)
		}
		declared[v] = true
	}
	check := func(ps []Pred, allowExistential bool) error {
		for _, p := range ps {
			for _, o := range []Operand{p.L, p.R} {
				if !o.IsRef() {
					continue
				}
				if !declared[o.Var] {
					return fmt.Errorf("compat: undeclared variable %q in %s", o.Var, p)
				}
				if !allowExistential && !univ[o.Var] {
					return fmt.Errorf("compat: condition references existential variable %q", o.Var)
				}
				if schema.AttrIndex(o.Attr) < 0 {
					return fmt.Errorf("compat: unknown attribute %q in %s (schema %s)", o.Attr, p, schema)
				}
			}
		}
		return nil
	}
	if err := check(c.Cond, false); err != nil {
		return err
	}
	return check(c.Conc, true)
}

// Satisfies reports whether the set U of tuples (under the given schema)
// satisfies the constraint: for every binding of the universal variables to
// tuples of U making χ true, some binding of the existential variables to
// tuples of U makes ξ true. Tuple variables may bind the same tuple, which
// is why ρ3 of Example 9.1 states distinctness predicates explicitly.
func (c *Constraint) Satisfies(u []relation.Tuple, schema relation.Schema) bool {
	binding := make(map[string]relation.Tuple, c.Width())
	return c.forallHolds(0, u, schema, binding)
}

func (c *Constraint) forallHolds(i int, u []relation.Tuple, schema relation.Schema, b map[string]relation.Tuple) bool {
	if i == len(c.Forall) {
		if !evalPreds(c.Cond, b, schema) {
			return true // condition not met; implication holds vacuously
		}
		return c.existsHolds(0, u, schema, b)
	}
	for _, t := range u {
		b[c.Forall[i]] = t
		if !c.forallHolds(i+1, u, schema, b) {
			delete(b, c.Forall[i])
			return false
		}
	}
	delete(b, c.Forall[i])
	return true
}

func (c *Constraint) existsHolds(j int, u []relation.Tuple, schema relation.Schema, b map[string]relation.Tuple) bool {
	if j == len(c.Exists) {
		return evalPreds(c.Conc, b, schema)
	}
	for _, t := range u {
		b[c.Exists[j]] = t
		if c.existsHolds(j+1, u, schema, b) {
			delete(b, c.Exists[j])
			return true
		}
	}
	delete(b, c.Exists[j])
	return false
}

func evalPreds(ps []Pred, b map[string]relation.Tuple, schema relation.Schema) bool {
	for _, p := range ps {
		l, ok := operandValue(p.L, b, schema)
		if !ok {
			return false
		}
		r, ok := operandValue(p.R, b, schema)
		if !ok {
			return false
		}
		eq := value.Equal(l, r)
		if (p.Op == Eq) != eq {
			return false
		}
	}
	return true
}

func operandValue(o Operand, b map[string]relation.Tuple, schema relation.Schema) (value.Value, bool) {
	if !o.IsRef() {
		return o.Const, true
	}
	t, ok := b[o.Var]
	if !ok {
		return value.Value{}, false
	}
	idx := schema.AttrIndex(o.Attr)
	if idx < 0 || idx >= len(t) {
		return value.Value{}, false
	}
	return t[idx], true
}

// Set is a collection Σ of constraints with the Cm width bound m.
type Set struct {
	M           int
	Constraints []*Constraint
}

// NewSet creates a constraint set with bound m (m < 2 is raised to 2, the
// smallest bound the paper considers).
func NewSet(m int) *Set {
	if m < 2 {
		m = 2
	}
	return &Set{M: m}
}

// Add appends a constraint, rejecting those wider than m.
func (s *Set) Add(c *Constraint) error {
	if c.Width() > s.M {
		return fmt.Errorf("compat: constraint width %d exceeds class bound m=%d", c.Width(), s.M)
	}
	s.Constraints = append(s.Constraints, c)
	return nil
}

// MustAdd is Add that panics on error.
func (s *Set) MustAdd(c *Constraint) *Set {
	if err := s.Add(c); err != nil {
		panic(err)
	}
	return s
}

// Validate checks every constraint against the schema.
func (s *Set) Validate(schema relation.Schema) error {
	for _, c := range s.Constraints {
		if err := c.Validate(schema); err != nil {
			return err
		}
	}
	return nil
}

// Satisfies reports U ⊨ Σ: whether U satisfies every constraint. This is
// the PTIME validation step the paper relies on (Section 9).
func (s *Set) Satisfies(u []relation.Tuple, schema relation.Schema) bool {
	if s == nil {
		return true
	}
	for _, c := range s.Constraints {
		if !c.Satisfies(u, schema) {
			return false
		}
	}
	return true
}

// Len reports the number of constraints.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return len(s.Constraints)
}

// ForallOnly reports whether every constraint in the set is universal-only,
// i.e. the whole set is violation-monotone under set extension.
func (s *Set) ForallOnly() bool {
	if s == nil {
		return true
	}
	for _, c := range s.Constraints {
		if !c.ForallOnly() {
			return false
		}
	}
	return true
}
