package bench

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/objective"
	"repro/internal/online"
	"repro/internal/query"
	"repro/internal/query/eval"
	"repro/internal/reduction"
	"repro/internal/relation"
	"repro/internal/sat"
	"repro/internal/solver"
	"repro/internal/value"
	"repro/internal/wal"
	"repro/internal/workload"
)

// Experiment is one empirical cell: a setting, a size sweep, and a runner
// that builds and solves an instance of the given size, reporting cost.
type Experiment struct {
	ID      string
	Table   string // "I", "II", "III", "ablation"
	Setting core.Setting
	Sizes   []int
	Run     func(n int) Measurement
}

// Result pairs an experiment with its sweep and classification.
type Result struct {
	Experiment *Experiment
	Series     Series
	Fit        Fit
	Bound      Bound
	Theorem    string
}

// Execute runs the sweep, stopping early if a single size exceeds budget.
func (e *Experiment) Execute(budget time.Duration) Result {
	var series Series
	for _, n := range e.Sizes {
		start := time.Now()
		m := e.Run(n)
		if m.Secs == 0 {
			m.Secs = time.Since(start).Seconds()
		}
		m.N = n
		series = append(series, m)
		if time.Since(start) > budget {
			break
		}
	}
	bound, thm := ProvedBound(e.Setting)
	return Result{Experiment: e, Series: series, Fit: Classify(series), Bound: bound, Theorem: thm}
}

// timed wraps a solve call, returning a Measurement carrying wall-clock and
// the solver's node count as machine-independent work.
func timed(f func() solver.Stats) Measurement {
	start := time.Now()
	st := f()
	return Measurement{Secs: time.Since(start).Seconds(), Work: float64(st.Nodes)}
}

// Catalog returns the experiment suite regenerating every table's empirical
// story. Each table cell with a distinct mechanism gets one experiment; the
// registry supplies the proved bound it is compared against.
func Catalog() []*Experiment {
	var exps []*Experiment

	// ---- Table I: data complexity ----

	// QRD(LQ, FMS) data: NP-complete. Dispersion-style search with an
	// unreachable bound forces full (pruned) exploration.
	exps = append(exps, &Experiment{
		ID:      "I/QRD-FMS-data",
		Table:   "I",
		Setting: core.Setting{Problem: core.QRD, Language: query.Identity, Objective: objective.MaxSum, Data: true},
		Sizes:   []int{8, 10, 12, 14, 16, 18},
		Run: func(n int) Measurement {
			rng := rand.New(rand.NewSource(int64(n)))
			in := workload.Points(rng, n, 2, 64, objective.MaxSum, 1, n/2)
			best := solver.QRDBest(in)
			in.B = best.Value + 1 // unreachable: the decision must refute
			return timed(func() solver.Stats { return solver.QRDExact(in).Stats })
		},
	})

	// QRD(LQ, Fmono) data: PTIME (Thm 5.4).
	exps = append(exps, &Experiment{
		ID:      "I/QRD-Fmono-data",
		Table:   "I",
		Setting: core.Setting{Problem: core.QRD, Language: query.Identity, Objective: objective.Mono, Data: true},
		Sizes:   []int{128, 256, 512, 1024, 2048},
		Run: func(n int) Measurement {
			rng := rand.New(rand.NewSource(int64(n)))
			in := workload.Points(rng, n, 2, 1<<20, objective.Mono, 0.5, 8)
			in.B = 1
			start := time.Now()
			if _, err := solver.QRDMonoPTime(in); err != nil {
				panic(err)
			}
			return Measurement{Secs: time.Since(start).Seconds()}
		},
	})

	// DRP(LQ, FMS) data: coNP-complete. Count sets beating a mid-quality U.
	exps = append(exps, &Experiment{
		ID:      "I/DRP-FMS-data",
		Table:   "I",
		Setting: core.Setting{Problem: core.DRP, Language: query.Identity, Objective: objective.MaxSum, Data: true},
		Sizes:   []int{8, 10, 12, 14, 16},
		Run: func(n int) Measurement {
			rng := rand.New(rand.NewSource(int64(n)))
			in := workload.Points(rng, n, 2, 64, objective.MaxSum, 1, n/2)
			in.U = in.Answers()[:n/2] // an arbitrary candidate set
			in.R = 1 << 30            // force counting every better set
			return timed(func() solver.Stats {
				res, err := solver.DRPExact(in)
				if err != nil {
					panic(err)
				}
				return res.Stats
			})
		},
	})

	// DRP(LQ, Fmono) data: PTIME (Thm 6.4).
	exps = append(exps, &Experiment{
		ID:      "I/DRP-Fmono-data",
		Table:   "I",
		Setting: core.Setting{Problem: core.DRP, Language: query.Identity, Objective: objective.Mono, Data: true},
		Sizes:   []int{128, 256, 512, 1024},
		Run: func(n int) Measurement {
			rng := rand.New(rand.NewSource(int64(n)))
			in := workload.Points(rng, n, 2, 1<<20, objective.Mono, 0.5, 6)
			in.U = in.Answers()[:6]
			in.R = 10
			start := time.Now()
			if _, err := solver.DRPMonoPTime(in); err != nil {
				panic(err)
			}
			return Measurement{Secs: time.Since(start).Seconds()}
		},
	})

	// RDC(LQ, FMS) data: #P-complete — count everything above a low bound.
	exps = append(exps, &Experiment{
		ID:      "I/RDC-FMS-data",
		Table:   "I",
		Setting: core.Setting{Problem: core.RDC, Language: query.Identity, Objective: objective.MaxSum, Data: true},
		Sizes:   []int{8, 10, 12, 14, 16},
		Run: func(n int) Measurement {
			rng := rand.New(rand.NewSource(int64(n)))
			in := workload.Points(rng, n, 2, 64, objective.MaxSum, 1, n/2)
			in.B = 0
			return timed(func() solver.Stats { return solver.RDCExact(in).Stats })
		},
	})

	// ---- Table I: combined complexity ----

	// QRD(CQ, FMS) combined: NP-complete via the Thm 5.1 3SAT gadget.
	exps = append(exps, &Experiment{
		ID:      "I/QRD-CQ-FMS-combined",
		Table:   "I",
		Setting: core.Setting{Problem: core.QRD, Language: query.CQ, Objective: objective.MaxSum},
		Sizes:   []int{3, 4, 5, 6, 7, 8},
		Run: func(n int) Measurement {
			rng := rand.New(rand.NewSource(int64(n) * 7))
			f := sat.Random3SAT(rng, n, 3*n)
			in := reduction.ThreeSATToQRDMaxSum(f)
			return timed(func() solver.Stats { return solver.QRDExact(in).Stats })
		},
	})

	// QRD(CQ, Fmono) combined: PSPACE-complete via the Thm 5.2 Q3SAT gadget
	// (the cube query makes |Q(D)| = 2^n from constant-size D).
	exps = append(exps, &Experiment{
		ID:      "I/QRD-CQ-Fmono-combined",
		Table:   "I",
		Setting: core.Setting{Problem: core.QRD, Language: query.CQ, Objective: objective.Mono},
		Sizes:   []int{4, 5, 6, 7, 8, 9, 10},
		Run: func(n int) Measurement {
			rng := rand.New(rand.NewSource(int64(n) * 11))
			q := sat.RandomQBF(rng, n, 2*n)
			q.Matrix.NumVars = n
			in := reduction.Q3SATToQRDMono(q)
			// The exponential cost is the cube query's 2^n answer space and
			// the Fmono distance sums over it, not the handful of search
			// nodes (k = 1); classify on wall-clock, with the answer count
			// as the work measure.
			start := time.Now()
			solver.QRDExact(in)
			return Measurement{Secs: time.Since(start).Seconds(), Work: float64(len(in.Answers()))}
		},
	})

	// QRD(FO, FMS) combined: PSPACE-complete — FO evaluation with a deep
	// quantifier chain dominates.
	exps = append(exps, &Experiment{
		ID:      "I/QRD-FO-FMS-combined",
		Table:   "I",
		Setting: core.Setting{Problem: core.QRD, Language: query.FO, Objective: objective.MaxSum},
		Sizes:   []int{8, 11, 14, 17, 20},
		Run: func(n int) Measurement {
			in := deepFOInstance(n)
			// The exponential cost is evaluating the n-deep alternating
			// quantifier chain (2^n branches over the Boolean domain); the
			// subset search on the two-tuple answer is constant. Classify
			// on wall-clock.
			start := time.Now()
			solver.QRDExact(in)
			return Measurement{Secs: time.Since(start).Seconds()}
		},
	})

	// DRP(CQ, FMS) combined: coNP-complete via the Theorem 6.1 co-3SAT
	// gadget — deciding rank(U) ≤ 1 refutes satisfiability.
	exps = append(exps, &Experiment{
		ID:      "I/DRP-CQ-FMS-combined",
		Table:   "I",
		Setting: core.Setting{Problem: core.DRP, Language: query.CQ, Objective: objective.MaxSum},
		Sizes:   []int{3, 4, 5},
		Run: func(n int) Measurement {
			rng := rand.New(rand.NewSource(int64(n) * 17))
			f := sat.Random3SAT(rng, n, 3*n)
			in, err := reduction.CoThreeSATToDRPMaxSum(f)
			if err != nil {
				panic(err)
			}
			return timed(func() solver.Stats {
				res, derr := solver.DRPExact(in)
				if derr != nil {
					panic(derr)
				}
				return res.Stats
			})
		},
	})

	// RDC(CQ, FMS) combined: #·NP-complete — counting the Theorem 7.4
	// instance counts satisfying assignments (#SAT embedded in RDC).
	exps = append(exps, &Experiment{
		ID:      "I/RDC-CQ-FMS-combined",
		Table:   "I",
		Setting: core.Setting{Problem: core.RDC, Language: query.CQ, Objective: objective.MaxSum},
		Sizes:   []int{3, 4, 5},
		Run: func(n int) Measurement {
			rng := rand.New(rand.NewSource(int64(n) * 19))
			f := sat.Random3SAT(rng, n, 2*n)
			in := reduction.SATToRDCCount(f, false)
			return timed(func() solver.Stats { return solver.RDCExact(in).Stats })
		},
	})

	// ---- Table II: special cases ----

	// λ=0 data: PTIME (Thm 8.2).
	exps = append(exps, &Experiment{
		ID:      "II/QRD-lambda0-data",
		Table:   "II",
		Setting: core.Setting{Problem: core.QRD, Language: query.Identity, Objective: objective.MaxSum, Data: true, Lambda0: true},
		Sizes:   []int{128, 256, 512, 1024, 2048},
		Run: func(n int) Measurement {
			rng := rand.New(rand.NewSource(int64(n)))
			in := workload.Points(rng, n, 2, 1<<20, objective.MaxSum, 0, 8)
			in.B = 1
			start := time.Now()
			if _, err := solver.QRDRelevanceOnlyPTime(in); err != nil {
				panic(err)
			}
			return Measurement{Secs: time.Since(start).Seconds()}
		},
	})

	// λ=0 FMM RDC data: FP (Thm 8.2).
	exps = append(exps, &Experiment{
		ID:      "II/RDC-FMM-lambda0-data",
		Table:   "II",
		Setting: core.Setting{Problem: core.RDC, Language: query.Identity, Objective: objective.MaxMin, Data: true, Lambda0: true},
		Sizes:   []int{256, 512, 1024, 2048, 4096},
		Run: func(n int) Measurement {
			rng := rand.New(rand.NewSource(int64(n)))
			in := workload.Points(rng, n, 2, 1<<20, objective.MaxMin, 0, 8)
			in.B = 0.25
			start := time.Now()
			if _, err := solver.RDCMaxMinRelevanceOnlyFP(in); err != nil {
				panic(err)
			}
			return Measurement{Secs: time.Since(start).Seconds()}
		},
	})

	// Constant k data: FP for RDC (Cor 8.4) — O(n^k) enumeration.
	exps = append(exps, &Experiment{
		ID:      "II/RDC-constk-data",
		Table:   "II",
		Setting: core.Setting{Problem: core.RDC, Language: query.Identity, Objective: objective.MaxSum, Data: true, ConstantK: true},
		Sizes:   []int{32, 64, 128, 256},
		Run: func(n int) Measurement {
			rng := rand.New(rand.NewSource(int64(n)))
			in := workload.Points(rng, n, 2, 64, objective.MaxSum, 0.5, 2)
			in.B = 0
			return timed(func() solver.Stats { return solver.RDCConstantK(in).Stats })
		},
	})

	// ---- Table III: compatibility constraints ----

	// Fmono data + Σ: NP-complete (Thm 9.3) via the fixed-Σ 3SAT gadget.
	exps = append(exps, &Experiment{
		ID:      "III/QRD-Fmono-constrained-data",
		Table:   "III",
		Setting: core.Setting{Problem: core.QRD, Language: query.Identity, Objective: objective.Mono, Data: true, Constraints: true},
		// The refutation family doubles the consistent witness combinations
		// per size step while the database grows linearly — the blow-up IS
		// the Theorem 9.3 story (a PTIME cell turned NP-complete by Σ).
		Sizes: []int{4, 6, 8, 10, 12},
		Run: func(n int) Measurement {
			in := reduction.HardConstrainedRefutation(n)
			return timed(func() solver.Stats { return solver.QRDExact(in).Stats })
		},
	})

	// Constant k data + Σ: still PTIME (Cor 9.7).
	exps = append(exps, &Experiment{
		ID:      "III/QRD-constk-constrained-data",
		Table:   "III",
		Setting: core.Setting{Problem: core.QRD, Language: query.Identity, Objective: objective.Mono, Data: true, ConstantK: true, Constraints: true},
		Sizes:   []int{32, 64, 128, 256},
		Run: func(n int) Measurement {
			rng := rand.New(rand.NewSource(int64(n)))
			in := workload.Points(rng, n, 2, 64, objective.Mono, 0.5, 2)
			in.B = 0
			in.Sigma = reduction.ConstrainedSigma()
			// The points schema has no cid/var/val attributes, so Σ is
			// vacuous here; what is measured is constrained-search cost.
			return timed(func() solver.Stats { return solver.QRDExact(in).Stats })
		},
	})

	// ---- Ablation: early termination (Section 1 motivation) ----

	// Embedding diversification in query evaluation and stopping at the
	// first valid set, against materializing Q(D) and solving afterwards.
	// With a comfortably reachable bound the online procedure should touch
	// a small prefix of the answers.
	earlyInstance := func(n int) *core.Instance {
		rng := rand.New(rand.NewSource(int64(n) * 3))
		in := workload.GiftInstance(rng, n, 2*n, 3, objective.MaxSum, 1)
		best := solver.QRDBest(in)
		fresh := workload.GiftInstance(rand.New(rand.NewSource(int64(n)*3)), n, 2*n, 3, objective.MaxSum, 1)
		fresh.B = best.Value / 2
		return fresh
	}
	exps = append(exps, &Experiment{
		ID:      "ablation/QRD-early-termination",
		Table:   "ablation",
		Setting: core.Setting{Problem: core.QRD, Language: query.FO, Objective: objective.MaxSum, Data: true},
		Sizes:   []int{20, 40, 80, 160},
		Run: func(n int) Measurement {
			in := earlyInstance(n)
			start := time.Now()
			res, err := online.QRD(context.Background(), in, online.Options{CheckInterval: 4})
			if err != nil {
				panic(err)
			}
			return Measurement{Secs: time.Since(start).Seconds(), Work: float64(res.Seen)}
		},
	})
	exps = append(exps, &Experiment{
		ID:      "ablation/QRD-materialize-then-solve",
		Table:   "ablation",
		Setting: core.Setting{Problem: core.QRD, Language: query.FO, Objective: objective.MaxSum, Data: true},
		Sizes:   []int{20, 40, 80, 160},
		Run: func(n int) Measurement {
			in := earlyInstance(n)
			start := time.Now()
			answers := in.Answers()
			solver.QRDExact(in)
			return Measurement{Secs: time.Since(start).Seconds(), Work: float64(len(answers))}
		},
	})

	// ---- Ablation: parallel branch-and-bound (warm-started incumbent) ----

	// The sequential exact search against the frame-parallel one with the
	// greedy warm start, on the FMM dispersion family where the incumbent
	// bound bites hardest. Work counts visited nodes, so the ablation shows
	// the pruning gain even on single-core hosts; wall-clock additionally
	// shows the frame parallelism on multi-core ones. Both paths return
	// byte-identical results (asserted by the differential/fuzz suites).
	parallelInstance := func(n int, workers int) *core.Instance {
		rng := rand.New(rand.NewSource(int64(n)))
		in := workload.Points(rng, n, 2, 64, objective.MaxMin, 0.5, 8)
		in.Parallelism = workers
		return in
	}
	exps = append(exps, &Experiment{
		ID:      "ablation/QRD-sequential-search",
		Table:   "ablation",
		Setting: core.Setting{Problem: core.QRD, Language: query.Identity, Objective: objective.MaxMin, Data: true},
		Sizes:   []int{16, 20, 24, 28, 32},
		Run: func(n int) Measurement {
			in := parallelInstance(n, 1)
			in.Answers()
			return timed(func() solver.Stats { return solver.QRDBest(in).Stats })
		},
	})
	exps = append(exps, &Experiment{
		ID:      "ablation/QRD-parallel-search",
		Table:   "ablation",
		Setting: core.Setting{Problem: core.QRD, Language: query.Identity, Objective: objective.MaxMin, Data: true},
		Sizes:   []int{16, 20, 24, 28, 32},
		Run: func(n int) Measurement {
			// At least 2 workers even on single-core hosts: Parallelism <= 1
			// would fall back to the sequential walk and the ablation would
			// measure nothing. With 2+ the warm-started shared incumbent is
			// active regardless of how many frames truly run simultaneously.
			workers := runtime.GOMAXPROCS(0)
			if workers < 2 {
				workers = 2
			}
			in := parallelInstance(n, workers)
			in.Answers()
			return timed(func() solver.Stats { return solver.QRDBest(in).Stats })
		},
	})

	// ---- Ablation: incremental refresh vs rebuild-on-mutation ----

	// A warm cache (sorted answers + materialized plane) absorbing a burst
	// of single-tuple inserts: the incremental path patches the answer set
	// via the change journal and extends the plane (only pairs touching a
	// new tuple evaluate δdis), the rebuild path re-evaluates and refills
	// from scratch after every insert — the pre-journal behavior. Work
	// counts δdis evaluations, the dominant cost, so the O(n·updates) vs
	// O(n²·updates) gap shows machine-independently.
	const refreshUpdates = 8
	exps = append(exps, &Experiment{
		ID:      "ablation/refresh-incremental",
		Table:   "ablation",
		Setting: core.Setting{Problem: core.QRD, Language: query.Identity, Objective: objective.MaxSum, Data: true},
		Sizes:   []int{200, 400, 800, 1600},
		Run: func(n int) Measurement {
			db, q, o, cd := refreshWorkload(n)
			ctx := context.Background()
			answers := eval.Evaluate(q, db).Sorted()
			plane := objective.NewPlane(o, answers, objective.PlaneOptions{})
			plane.Materialize()
			cd.calls = 0
			start := time.Now()
			gen := db.Generation()
			rng := rand.New(rand.NewSource(99))
			for u := 0; u < refreshUpdates; u++ {
				insertFreshPoint(db, rng)
				changes, ok := db.ChangesSince(gen)
				if !ok {
					panic("bench: journal must cover a single insert")
				}
				d, ok, err := eval.Delta(ctx, q, db, changes, answers)
				if err != nil || !ok {
					panic(fmt.Sprintf("bench: delta refused: %v", err))
				}
				answers = mergeSorted(answers, d.Added)
				var err2 error
				plane, err2 = plane.Extend(ctx, d.Added)
				if err2 != nil {
					panic(err2)
				}
				gen = db.Generation()
			}
			return Measurement{Secs: time.Since(start).Seconds(), Work: float64(cd.calls)}
		},
	})
	exps = append(exps, &Experiment{
		ID:      "ablation/refresh-rebuild",
		Table:   "ablation",
		Setting: core.Setting{Problem: core.QRD, Language: query.Identity, Objective: objective.MaxSum, Data: true},
		Sizes:   []int{200, 400, 800, 1600},
		Run: func(n int) Measurement {
			db, q, o, cd := refreshWorkload(n)
			eval.Evaluate(q, db) // warm, as the incremental arm is
			cd.calls = 0
			start := time.Now()
			rng := rand.New(rand.NewSource(99))
			for u := 0; u < refreshUpdates; u++ {
				insertFreshPoint(db, rng)
				answers := eval.Evaluate(q, db).Sorted()
				plane := objective.NewPlane(o, answers, objective.PlaneOptions{})
				plane.Materialize()
			}
			return Measurement{Secs: time.Since(start).Seconds(), Work: float64(cd.calls)}
		},
	})

	// ---- Ablation: warm restart (WAL replay / snapshot) vs cold rebuild ----

	// Restart cost for an n-row points database under the durability
	// subsystem. The replay arm recovers from a log alone (a crash before
	// any checkpoint: every mutation re-runs through the relation layer
	// plus frame decoding), the snapshot arm from a checkpoint at the head
	// generation (the fast path the snapshot cadence buys), and the rebuild
	// arm re-inserts everything in memory — the only option before the WAL
	// existed, and one that silently loses any state not re-derivable from
	// the driver. Work counts tuples restored, so all arms share a unit.
	exps = append(exps, &Experiment{
		ID:      "durability/recovery-replay",
		Table:   "ablation",
		Setting: core.Setting{Problem: core.QRD, Language: query.Identity, Objective: objective.MaxSum, Data: true},
		Sizes:   []int{200, 400, 800, 1600},
		Run:     func(n int) Measurement { return recoverDir(durableDir(n, false), n) },
	})
	exps = append(exps, &Experiment{
		ID:      "durability/recovery-snapshot",
		Table:   "ablation",
		Setting: core.Setting{Problem: core.QRD, Language: query.Identity, Objective: objective.MaxSum, Data: true},
		Sizes:   []int{200, 400, 800, 1600},
		Run:     func(n int) Measurement { return recoverDir(durableDir(n, true), n) },
	})
	exps = append(exps, &Experiment{
		ID:      "durability/recovery-rebuild",
		Table:   "ablation",
		Setting: core.Setting{Problem: core.QRD, Language: query.Identity, Objective: objective.MaxSum, Data: true},
		Sizes:   []int{200, 400, 800, 1600},
		Run: func(n int) Measurement {
			start := time.Now()
			db := relation.NewDatabase()
			insertRecoveryRows(db, n)
			return Measurement{Secs: time.Since(start).Seconds(), Work: float64(db.Size())}
		},
	})

	return exps
}

// insertRecoveryRows drives the recovery ablation's mutation history: a
// schema Add plus n mixed int/float inserts, mirroring the points workloads.
func insertRecoveryRows(db *relation.Database, n int) {
	db.Add(relation.NewRelation(relation.NewSchema("P", "c0", "c1")))
	r := db.Relation("P")
	for i := 0; i < n; i++ {
		r.Insert(relation.Tuple{value.Int(int64(i * 37 % (1 << 20))), value.Float(float64(i) / 7)})
	}
}

// durableDir materializes the recovery ablation's on-disk state: a WAL
// directory holding an n-row history, optionally checkpointed at the head
// generation so recovery loads the snapshot and replays nothing.
func durableDir(n int, snapshot bool) string {
	dir, err := os.MkdirTemp("", "divbench-wal-")
	if err != nil {
		panic(err)
	}
	l, err := wal.Create(dir, wal.Options{Fsync: wal.FsyncOff})
	if err != nil {
		panic(err)
	}
	db := relation.NewDatabase()
	db.SetTap(l)
	insertRecoveryRows(db, n)
	if snapshot {
		if _, err := l.Snapshot(db); err != nil {
			panic(err)
		}
	}
	if err := l.Close(); err != nil {
		panic(err)
	}
	return dir
}

// recoverDir times one wal.Recover of dir, then removes it.
func recoverDir(dir string, n int) Measurement {
	defer os.RemoveAll(dir)
	start := time.Now()
	db, _, err := wal.Recover(dir)
	if err != nil {
		panic(err)
	}
	secs := time.Since(start).Seconds()
	if db.Size() != n {
		panic(fmt.Sprintf("bench: recovered %d tuples, want %d", db.Size(), n))
	}
	return Measurement{Secs: secs, Work: float64(db.Size())}
}

// countingDistance wraps a Distance counting evaluations, the work unit of
// the refresh ablation.
type countingDistance struct {
	inner objective.Distance
	calls int
}

func (c *countingDistance) Dis(s, t relation.Tuple) float64 {
	c.calls++
	return c.inner.Dis(s, t)
}

// refreshWorkload builds the dynamic-points refresh ablation's pieces: a
// points database, its identity query, and an FMS objective whose distance
// evaluations are counted.
func refreshWorkload(n int) (*relation.Database, *query.Query, *objective.Objective, *countingDistance) {
	rng := rand.New(rand.NewSource(int64(n)))
	in := workload.Points(rng, n, 2, 1<<20, objective.MaxSum, 0.5, 8)
	cd := &countingDistance{inner: objective.EuclideanDistance()}
	o := objective.New(objective.MaxSum, objective.AttrRelevance(0, 1.0/(1<<20)), cd, 0.5)
	return in.DB, in.Query, o, cd
}

// insertFreshPoint inserts one previously absent 2-D point.
func insertFreshPoint(db *relation.Database, rng *rand.Rand) {
	rel := db.Relation("P")
	for {
		t := relation.Ints(rng.Int63n(1<<20), rng.Int63n(1<<20))
		if rel.Insert(t) {
			return
		}
	}
}

// mergeSorted merges a sorted delta into a sorted answer slice.
func mergeSorted(answers, added []relation.Tuple) []relation.Tuple {
	if len(added) == 0 {
		return answers
	}
	out := make([]relation.Tuple, 0, len(answers)+len(added))
	i, j := 0, 0
	for i < len(answers) || j < len(added) {
		switch {
		case i >= len(answers):
			out = append(out, added[j])
			j++
		case j >= len(added) || answers[i].Compare(added[j]) < 0:
			out = append(out, answers[i])
			i++
		default:
			out = append(out, added[j])
			j++
		}
	}
	return out
}

// deepFOInstance builds a QRD instance whose FO query carries an
// n-deep alternating quantifier chain over the Boolean domain:
// Q(x) :- R01(x) ∧ ∀y1 ∃y2 ∀y3 ... (R01(yi) → yi = yi).
func deepFOInstance(n int) *core.Instance {
	var chain query.Formula = &query.Cmp{Op: query.EQ, L: query.V("x"), R: query.V("x")}
	for i := n; i >= 1; i-- {
		v := fmt.Sprintf("y%d", i)
		guarded := &query.Or{Fs: []query.Formula{
			&query.Not{F: &query.Atom{Rel: reduction.RelBool, Args: []query.Term{query.V(v)}}},
			&query.And{Fs: []query.Formula{chain, &query.Cmp{Op: query.EQ, L: query.V(v), R: query.V(v)}}},
		}}
		if i%2 == 1 {
			chain = &query.ForAll{Vars: []string{v}, F: guarded}
		} else {
			chain = &query.Exists{Vars: []string{v}, F: &query.And{Fs: []query.Formula{
				&query.Atom{Rel: reduction.RelBool, Args: []query.Term{query.V(v)}}, chain,
			}}}
		}
	}
	q := query.MustNew("DeepFO", []string{"x"},
		&query.And{Fs: []query.Formula{
			&query.Atom{Rel: reduction.RelBool, Args: []query.Term{query.V("x")}},
			chain,
		}})
	db := reduction.GadgetDatabase()
	return &core.Instance{
		Query: q,
		DB:    db,
		Obj:   objective.New(objective.MaxSum, objective.ConstRelevance(1), objective.HammingDistance(), 0.5),
		K:     1,
		B:     0,
	}
}
