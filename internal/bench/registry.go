// Package bench is the experiment harness that regenerates the paper's
// tables and figures. It has two halves:
//
//   - An analytical registry (this file): every cell of Tables I, II and III
//     — the proved combined/data complexity of QRD, DRP and RDC across
//     query languages, objectives, special cases and constraints — encoded
//     as a function from core.Setting to the proved bound and its theorem.
//     Figures 1, 3 and 4 are renderings of the same registry per problem.
//
//   - An empirical runner (fit.go, run.go): instance families per cell,
//     timed sweeps, and growth classification (polynomial vs exponential),
//     confirming that tractable cells scale polynomially and intractable
//     ones blow up on reduction-hard inputs.
package bench

import (
	"repro/internal/core"
	"repro/internal/objective"
	"repro/internal/query"
)

// Bound is a proved complexity bound label, matching the paper's tables.
type Bound string

// The bounds appearing across Tables I-III.
const (
	PTime           Bound = "PTIME"
	FP              Bound = "FP"
	NPC             Bound = "NP-complete"
	CoNPC           Bound = "coNP-complete"
	PSpaceC         Bound = "PSPACE-complete"
	SharpNPC        Bound = "#·NP-complete"
	SharpPSpaceC    Bound = "#·PSPACE-complete"
	SharpPTuring    Bound = "#P-complete (Turing)"
	SharpPParsimony Bound = "#P-complete (parsimonious)"
)

// Tractable reports whether the bound is a polynomial-time (or FP) cell.
func (b Bound) Tractable() bool { return b == PTime || b == FP }

// ProvedBound returns the paper's bound for a setting together with the
// theorem or corollary establishing it. It encodes Tables I, II and III and
// Figures 1, 3 and 4.
func ProvedBound(s core.Setting) (Bound, string) {
	// Corollary 8.4 / 9.7: constant k makes data complexity tractable,
	// with or without constraints.
	if s.ConstantK && s.Data {
		if s.Problem == core.RDC {
			return FP, "Cor 8.4/9.7"
		}
		return PTime, "Cor 8.4/9.7"
	}

	if s.Constraints {
		return constrainedBound(s)
	}

	// Identity queries: combined and data complexity coincide (Cor 8.1).
	if s.Language == query.Identity {
		d := s
		d.Data = true
		d.Language = query.CQ
		b, _ := ProvedBound(d)
		return b, "Cor 8.1"
	}

	if s.Data {
		return dataBound(s)
	}
	return combinedBound(s)
}

// dataBound covers the data-complexity half of Tables I and II without
// constraints.
func dataBound(s core.Setting) (Bound, string) {
	mono := s.Objective == objective.Mono
	switch {
	case s.Lambda0 && !mono:
		// Theorem 8.2: relevance-only FMS/FMM data complexity.
		switch s.Problem {
		case core.QRD, core.DRP:
			return PTime, "Thm 8.2"
		default:
			if s.Objective == objective.MaxMin {
				return FP, "Thm 8.2"
			}
			return SharpPTuring, "Thm 8.2"
		}
	case mono:
		// Theorem 5.4 / 6.4 / 7.5 (λ=0 and λ=1 leave these unchanged).
		switch s.Problem {
		case core.QRD, core.DRP:
			return PTime, "Thm 5.4/6.4"
		default:
			return SharpPTuring, "Thm 7.5"
		}
	default:
		// Theorem 5.4 / 6.4 / 7.4 for FMS and FMM (λ=1 unchanged, Thm 8.3).
		switch s.Problem {
		case core.QRD:
			return NPC, "Thm 5.4"
		case core.DRP:
			return CoNPC, "Thm 6.4"
		default:
			return SharpPParsimony, "Thm 7.4"
		}
	}
}

// combinedBound covers the combined-complexity half of Tables I and II
// without constraints.
func combinedBound(s core.Setting) (Bound, string) {
	mono := s.Objective == objective.Mono
	foLike := s.Language == query.FO
	if mono {
		if s.Lambda0 {
			// Theorem 8.2: dropping δdis tames Fmono to the FMS/FMM level.
			if foLike {
				switch s.Problem {
				case core.QRD, core.DRP:
					return PSpaceC, "Thm 8.2"
				default:
					return SharpPSpaceC, "Thm 8.2"
				}
			}
			switch s.Problem {
			case core.QRD:
				return NPC, "Thm 8.2"
			case core.DRP:
				return CoNPC, "Thm 8.2"
			default:
				return SharpNPC, "Thm 8.2"
			}
		}
		// Theorems 5.2, 6.2, 7.2: Fmono dominates every language.
		switch s.Problem {
		case core.QRD, core.DRP:
			return PSpaceC, "Thm 5.2/6.2"
		default:
			return SharpPSpaceC, "Thm 7.2"
		}
	}
	// FMS / FMM: language-driven (Thm 5.1, 6.1, 7.1; λ extremes unchanged
	// per Thm 8.2/8.3 for combined complexity).
	if foLike {
		switch s.Problem {
		case core.QRD, core.DRP:
			return PSpaceC, "Thm 5.1/6.1"
		default:
			return SharpPSpaceC, "Thm 7.1"
		}
	}
	switch s.Problem {
	case core.QRD:
		return NPC, "Thm 5.1"
	case core.DRP:
		return CoNPC, "Thm 6.1"
	default:
		return SharpNPC, "Thm 7.1"
	}
}

// constrainedBound covers Table III: the presence of Cm constraints.
func constrainedBound(s core.Setting) (Bound, string) {
	mono := s.Objective == objective.Mono
	// Corollary 9.2: combined complexity is unchanged by constraints.
	if !s.Data && s.Language != query.Identity {
		u := s
		u.Constraints = false
		b, _ := ProvedBound(u)
		return b, "Cor 9.2"
	}
	// Identity queries with Fmono flip to intractable (Cor 9.4); with
	// FMS/FMM they match the (already intractable) data bounds (Cor 9.4).
	if s.Language == query.Identity && !mono && !s.Lambda0 {
		d := s
		d.Data = true
		d.Language = query.CQ
		d.Constraints = false
		b, _ := ProvedBound(d)
		return b, "Cor 9.4"
	}
	// Data complexity under constraints.
	switch {
	case mono, s.Lambda0:
		// Thm 9.3 (Fmono), Cor 9.5 (λ=0, all objectives),
		// Cor 9.6 (λ=1 Fmono), Cor 9.4 (identity + Fmono).
		switch s.Problem {
		case core.QRD:
			return NPC, "Thm 9.3/Cor 9.4-9.6"
		case core.DRP:
			return CoNPC, "Thm 9.3/Cor 9.4-9.6"
		default:
			return SharpPParsimony, "Thm 9.3/Cor 9.4-9.6"
		}
	default:
		// FMS/FMM at general λ or λ=1: unchanged from Table I data rows.
		switch s.Problem {
		case core.QRD:
			return NPC, "Thm 9.3"
		case core.DRP:
			return CoNPC, "Thm 9.3"
		default:
			return SharpPParsimony, "Thm 9.3"
		}
	}
}
