package bench

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/objective"
	"repro/internal/query"
)

func setting(p core.Problem, l query.Language, k objective.Kind, mods ...func(*core.Setting)) core.Setting {
	s := core.Setting{Problem: p, Language: l, Objective: k}
	for _, m := range mods {
		m(&s)
	}
	return s
}

func data(s *core.Setting)    { s.Data = true }
func lambda0(s *core.Setting) { s.Lambda0 = true }
func lambda1(s *core.Setting) { s.Lambda1 = true }
func constK(s *core.Setting)  { s.ConstantK = true }
func sigma(s *core.Setting)   { s.Constraints = true }

// TestTableIBounds pins every cell of Table I.
func TestTableIBounds(t *testing.T) {
	cases := []struct {
		s    core.Setting
		want Bound
	}{
		// Combined, FMS/FMM.
		{setting(core.QRD, query.CQ, objective.MaxSum), NPC},
		{setting(core.QRD, query.UCQ, objective.MaxMin), NPC},
		{setting(core.QRD, query.EFOPlus, objective.MaxSum), NPC},
		{setting(core.QRD, query.FO, objective.MaxSum), PSpaceC},
		{setting(core.DRP, query.CQ, objective.MaxMin), CoNPC},
		{setting(core.DRP, query.FO, objective.MaxMin), PSpaceC},
		{setting(core.RDC, query.CQ, objective.MaxSum), SharpNPC},
		{setting(core.RDC, query.FO, objective.MaxSum), SharpPSpaceC},
		// Combined, Fmono: language-independent.
		{setting(core.QRD, query.CQ, objective.Mono), PSpaceC},
		{setting(core.QRD, query.FO, objective.Mono), PSpaceC},
		{setting(core.DRP, query.UCQ, objective.Mono), PSpaceC},
		{setting(core.RDC, query.EFOPlus, objective.Mono), SharpPSpaceC},
		// Data, FMS/FMM.
		{setting(core.QRD, query.CQ, objective.MaxSum, data), NPC},
		{setting(core.QRD, query.FO, objective.MaxMin, data), NPC},
		{setting(core.DRP, query.FO, objective.MaxSum, data), CoNPC},
		{setting(core.RDC, query.CQ, objective.MaxMin, data), SharpPParsimony},
		// Data, Fmono.
		{setting(core.QRD, query.FO, objective.Mono, data), PTime},
		{setting(core.DRP, query.CQ, objective.Mono, data), PTime},
		{setting(core.RDC, query.FO, objective.Mono, data), SharpPTuring},
	}
	for _, c := range cases {
		got, thm := ProvedBound(c.s)
		if got != c.want {
			t.Errorf("%v: got %s, want %s (%s)", c.s, got, c.want, thm)
		}
	}
}

// TestTableIIBounds pins the special-case cells of Table II.
func TestTableIIBounds(t *testing.T) {
	cases := []struct {
		s    core.Setting
		want Bound
	}{
		// Identity queries with Fmono: PTIME / PTIME / #P (Turing), both
		// combined and data (Cor 8.1).
		{setting(core.QRD, query.Identity, objective.Mono), PTime},
		{setting(core.DRP, query.Identity, objective.Mono), PTime},
		{setting(core.RDC, query.Identity, objective.Mono), SharpPTuring},
		{setting(core.QRD, query.Identity, objective.Mono, data), PTime},
		// Identity with FMS/FMM stays intractable (Cor 8.1).
		{setting(core.QRD, query.Identity, objective.MaxSum), NPC},
		{setting(core.RDC, query.Identity, objective.MaxMin), SharpPParsimony},
		// λ=0 data (Thm 8.2).
		{setting(core.QRD, query.CQ, objective.MaxSum, data, lambda0), PTime},
		{setting(core.DRP, query.FO, objective.MaxMin, data, lambda0), PTime},
		{setting(core.RDC, query.CQ, objective.MaxSum, data, lambda0), SharpPTuring},
		{setting(core.RDC, query.CQ, objective.MaxMin, data, lambda0), FP},
		// λ=0 combined for Fmono drops to the NP level (Thm 8.2).
		{setting(core.QRD, query.CQ, objective.Mono, lambda0), NPC},
		{setting(core.DRP, query.EFOPlus, objective.Mono, lambda0), CoNPC},
		{setting(core.RDC, query.UCQ, objective.Mono, lambda0), SharpNPC},
		{setting(core.QRD, query.FO, objective.Mono, lambda0), PSpaceC},
		// λ=0 combined for FMS/FMM unchanged (Thm 8.2).
		{setting(core.QRD, query.CQ, objective.MaxSum, lambda0), NPC},
		{setting(core.QRD, query.FO, objective.MaxMin, lambda0), PSpaceC},
		// λ=1 behaves like the general case (Thm 8.3).
		{setting(core.QRD, query.CQ, objective.MaxSum, data, lambda1), NPC},
		{setting(core.RDC, query.CQ, objective.Mono, data, lambda1), SharpPTuring},
		// Constant k data: tractable across the board (Cor 8.4).
		{setting(core.QRD, query.FO, objective.MaxSum, data, constK), PTime},
		{setting(core.DRP, query.CQ, objective.Mono, data, constK), PTime},
		{setting(core.RDC, query.FO, objective.MaxMin, data, constK), FP},
		// Constant k combined: unchanged (Cor 8.4).
		{setting(core.QRD, query.CQ, objective.MaxSum, constK), NPC},
		{setting(core.QRD, query.CQ, objective.Mono, constK), PSpaceC},
	}
	for _, c := range cases {
		got, thm := ProvedBound(c.s)
		if got != c.want {
			t.Errorf("%v: got %s, want %s (%s)", c.s, got, c.want, thm)
		}
	}
}

// TestTableIIIBounds pins the constrained cells of Table III.
func TestTableIIIBounds(t *testing.T) {
	cases := []struct {
		s    core.Setting
		want Bound
	}{
		// Fmono data + Σ flips to intractable (Thm 9.3).
		{setting(core.QRD, query.CQ, objective.Mono, data, sigma), NPC},
		{setting(core.DRP, query.FO, objective.Mono, data, sigma), CoNPC},
		{setting(core.RDC, query.CQ, objective.Mono, data, sigma), SharpPParsimony},
		// Identity + Fmono + Σ: intractable both ways (Cor 9.4).
		{setting(core.QRD, query.Identity, objective.Mono, sigma), NPC},
		{setting(core.RDC, query.Identity, objective.Mono, sigma), SharpPParsimony},
		// Identity + FMS + Σ: as without constraints (Cor 9.4).
		{setting(core.QRD, query.Identity, objective.MaxSum, sigma), NPC},
		// λ=0 data + Σ: intractable for every objective (Cor 9.5).
		{setting(core.QRD, query.CQ, objective.MaxSum, data, lambda0, sigma), NPC},
		{setting(core.DRP, query.CQ, objective.MaxMin, data, lambda0, sigma), CoNPC},
		{setting(core.RDC, query.FO, objective.MaxSum, data, lambda0, sigma), SharpPParsimony},
		// λ=1 data + Σ: FMS/FMM unchanged, Fmono flips (Cor 9.6).
		{setting(core.QRD, query.CQ, objective.MaxSum, data, lambda1, sigma), NPC},
		{setting(core.QRD, query.CQ, objective.Mono, data, lambda1, sigma), NPC},
		// Combined + Σ: unchanged (Cor 9.2).
		{setting(core.QRD, query.CQ, objective.MaxSum, sigma), NPC},
		{setting(core.QRD, query.FO, objective.Mono, sigma), PSpaceC},
		{setting(core.RDC, query.CQ, objective.Mono, sigma), SharpPSpaceC},
		// Constant k + Σ: still tractable (Cor 9.7).
		{setting(core.QRD, query.CQ, objective.Mono, data, constK, sigma), PTime},
		{setting(core.RDC, query.CQ, objective.MaxSum, data, constK, sigma), FP},
	}
	for _, c := range cases {
		got, thm := ProvedBound(c.s)
		if got != c.want {
			t.Errorf("%v: got %s, want %s (%s)", c.s, got, c.want, thm)
		}
	}
}

func TestBoundTractable(t *testing.T) {
	if !PTime.Tractable() || !FP.Tractable() {
		t.Error("PTIME and FP are tractable")
	}
	for _, b := range []Bound{NPC, CoNPC, PSpaceC, SharpNPC, SharpPSpaceC, SharpPTuring, SharpPParsimony} {
		if b.Tractable() {
			t.Errorf("%s should not be tractable", b)
		}
	}
}

func TestClassifyPolynomial(t *testing.T) {
	var s Series
	for _, n := range []int{64, 128, 256, 512, 1024} {
		s = append(s, Measurement{N: n, Work: float64(n) * float64(n) * 3})
	}
	f := Classify(s)
	if f.Kind != Polynomial {
		t.Fatalf("quadratic series classified as %v", f)
	}
	if math.Abs(f.Degree-2) > 0.1 {
		t.Errorf("degree = %v, want ≈2", f.Degree)
	}
}

func TestClassifyExponential(t *testing.T) {
	var s Series
	for _, n := range []int{4, 6, 8, 10, 12, 14} {
		s = append(s, Measurement{N: n, Work: math.Pow(2, float64(n))})
	}
	f := Classify(s)
	if f.Kind != Exponential {
		t.Fatalf("2^n series classified as %v", f)
	}
	if math.Abs(f.Base-2) > 0.2 {
		t.Errorf("base = %v, want ≈2", f.Base)
	}
}

func TestClassifyFlatAndDegenerate(t *testing.T) {
	if f := Classify(Series{{N: 1, Work: 5}, {N: 2, Work: 5}}); f.Kind != Flat {
		t.Errorf("two points should be Flat, got %v", f)
	}
	var s Series
	for _, n := range []int{10, 20, 40, 80} {
		s = append(s, Measurement{N: n, Work: 7})
	}
	if f := Classify(s); f.Kind != Flat {
		t.Errorf("constant series should be Flat, got %v", f)
	}
	if f := Classify(nil); f.Kind != Flat {
		t.Errorf("empty series should be Flat, got %v", f)
	}
}

func TestClassifyFallsBackToSeconds(t *testing.T) {
	var s Series
	for _, n := range []int{64, 128, 256, 512} {
		s = append(s, Measurement{N: n, Secs: float64(n)})
	}
	if f := Classify(s); f.Kind != Polynomial {
		t.Errorf("linear seconds should classify polynomial, got %v", f)
	}
}

func TestRenderTables(t *testing.T) {
	t1 := RenderTableI()
	for _, want := range []string{"NP-complete", "PSPACE-complete", "PTIME", "#·NP-complete", "FMS and FMM", "Fmono"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table I missing %q:\n%s", want, t1)
		}
	}
	t2 := RenderTableII()
	for _, want := range []string{"identity queries", "constant k", "FP"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table II missing %q", want)
		}
	}
	t3 := RenderTableIII()
	for _, want := range []string{"Fmono", "#P-complete (parsimonious)", "NP-complete"} {
		if !strings.Contains(t3, want) {
			t.Errorf("Table III missing %q", want)
		}
	}
}

func TestRenderFigures(t *testing.T) {
	for _, p := range []core.Problem{core.QRD, core.DRP, core.RDC} {
		fig := RenderFigure(p)
		if !strings.Contains(fig, p.String()) {
			t.Errorf("figure for %v missing its title", p)
		}
		if !strings.Contains(fig, "combined") || !strings.Contains(fig, "FMS") {
			t.Errorf("figure for %v missing structure:\n%s", p, fig)
		}
	}
}

func TestCatalogExperimentsRunSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test is slow")
	}
	for _, e := range Catalog() {
		t.Log(e.ID)
		// Run only the smallest size of each experiment as a smoke test.
		small := &Experiment{ID: e.ID, Table: e.Table, Setting: e.Setting, Sizes: e.Sizes[:1], Run: e.Run}
		res := small.Execute(30 * time.Second)
		if len(res.Series) != 1 {
			t.Errorf("%s: expected one measurement, got %d", e.ID, len(res.Series))
		}
		if res.Theorem == "" {
			t.Errorf("%s: missing theorem reference", e.ID)
		}
		out := RenderResult(res)
		if !strings.Contains(out, e.ID) {
			t.Errorf("%s: render missing id", e.ID)
		}
	}
}

func TestCatalogIDsUniqueAndTabled(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Catalog() {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Table == "" || len(e.Sizes) < 3 {
			t.Errorf("%s: table/sizes malformed", e.ID)
		}
	}
	if len(seen) < 10 {
		t.Errorf("catalog has only %d experiments", len(seen))
	}
}
