package bench

import (
	"fmt"
	"math"
)

// Measurement is one point of a scaling sweep: problem size against cost.
// Work is a machine-independent cost (search nodes, answer counts) used
// when wall-clock noise would obscure the trend.
type Measurement struct {
	N    int
	Secs float64
	Work float64
}

// Series is a scaling sweep ordered by N.
type Series []Measurement

// GrowthKind labels the better-fitting growth model.
type GrowthKind string

// The growth classifications the harness distinguishes.
const (
	Polynomial  GrowthKind = "polynomial"
	Exponential GrowthKind = "exponential"
	Flat        GrowthKind = "flat"
)

// Fit is the outcome of growth classification.
type Fit struct {
	Kind GrowthKind
	// Degree is the fitted exponent for polynomial growth (t ~ n^Degree).
	Degree float64
	// Base is the fitted per-unit factor for exponential growth (t ~ Base^n).
	Base float64
	// R2Poly and R2Exp report each model's goodness of fit.
	R2Poly, R2Exp float64
}

// String renders the fit compactly.
func (f Fit) String() string {
	switch f.Kind {
	case Polynomial:
		return fmt.Sprintf("polynomial (deg≈%.1f)", f.Degree)
	case Exponential:
		return fmt.Sprintf("exponential (base≈%.2f)", f.Base)
	default:
		return "flat"
	}
}

// Classify fits log-cost against log-n (polynomial) and against n
// (exponential) by least squares on the Work column (falling back to Secs
// when Work is zero), and picks the model with the higher R². Series with
// under three points or no growth classify as Flat.
func Classify(s Series) Fit {
	xsPoly, xsExp, ys := make([]float64, 0, len(s)), make([]float64, 0, len(s)), make([]float64, 0, len(s))
	for _, m := range s {
		cost := m.Work
		if cost <= 0 {
			cost = m.Secs
		}
		if cost <= 0 || m.N <= 0 {
			continue
		}
		xsPoly = append(xsPoly, math.Log(float64(m.N)))
		xsExp = append(xsExp, float64(m.N))
		ys = append(ys, math.Log(cost))
	}
	if len(ys) < 3 {
		return Fit{Kind: Flat}
	}
	spread := maxOf(ys) - minOf(ys)
	if spread < 0.2 {
		return Fit{Kind: Flat}
	}
	bPoly, r2Poly := linfit(xsPoly, ys)
	bExp, r2Exp := linfit(xsExp, ys)
	f := Fit{Degree: bPoly, Base: math.Exp(bExp), R2Poly: r2Poly, R2Exp: r2Exp}
	if r2Exp > r2Poly {
		f.Kind = Exponential
	} else {
		f.Kind = Polynomial
	}
	// A per-unit factor this close to 1 is polynomial noise, not doubling
	// behaviour: exponential growth in these experiments multiplies cost per
	// step, not per mille. (This keeps timer jitter on fast FP cells from
	// winning the R² tie with base ≈ 1.00.)
	if f.Kind == Exponential && f.Base < 1.04 {
		f.Kind = Polynomial
	}
	return f
}

// PredictAt extrapolates a series' wall-clock cost (the Secs column) to
// problem size n, fitting both growth models the way Classify does and
// predicting through the better one. ok is false when the series has too
// few usable points to fit (under three) — callers fall back to their own
// cold-start estimates.
func PredictAt(s Series, n int) (secs float64, ok bool) {
	if n <= 0 {
		return 0, false
	}
	xsPoly, xsExp, ys := make([]float64, 0, len(s)), make([]float64, 0, len(s)), make([]float64, 0, len(s))
	for _, m := range s {
		if m.Secs <= 0 || m.N <= 0 {
			continue
		}
		xsPoly = append(xsPoly, math.Log(float64(m.N)))
		xsExp = append(xsExp, float64(m.N))
		ys = append(ys, math.Log(m.Secs))
	}
	if len(ys) < 3 {
		return 0, false
	}
	slopeP, interceptP, r2Poly := linfitFull(xsPoly, ys)
	slopeE, interceptE, r2Exp := linfitFull(xsExp, ys)
	// Same model choice as Classify, including the base guard that keeps
	// timer jitter from masquerading as exponential growth.
	if r2Exp > r2Poly && math.Exp(slopeE) >= 1.04 {
		return math.Exp(interceptE + slopeE*float64(n)), true
	}
	return math.Exp(interceptP + slopeP*math.Log(float64(n))), true
}

// linfit returns the least-squares slope of y on x and the fit's R².
func linfit(xs, ys []float64) (slope, r2 float64) {
	slope, _, r2 = linfitFull(xs, ys)
	return slope, r2
}

// linfitFull is linfit exposing the intercept, for absolute predictions.
func linfitFull(xs, ys []float64) (slope, intercept, r2 float64) {
	n := float64(len(xs))
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, 0
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	var ssRes, ssTot float64
	meanY := sy / n
	for i := range xs {
		pred := intercept + slope*xs[i]
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
	}
	if ssTot == 0 {
		return slope, intercept, 1
	}
	return slope, intercept, 1 - ssRes/ssTot
}

func maxOf(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func minOf(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}
