package bench

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/objective"
	"repro/internal/query"
)

// langs are the columns of Table I's language axis.
var tableLangs = []query.Language{query.CQ, query.UCQ, query.EFOPlus, query.FO}

// problems in table order.
var tableProblems = []core.Problem{core.QRD, core.DRP, core.RDC}

// RenderTableI reproduces Table I: combined and data complexity of the
// three problems for FMS/FMM versus Fmono across the query languages.
func RenderTableI() string {
	var b strings.Builder
	b.WriteString("Table I — combined complexity and data complexity\n\n")
	for _, half := range []bool{false, true} {
		if half {
			b.WriteString("\nData complexity\n")
		} else {
			b.WriteString("Combined complexity\n")
		}
		writeHeader(&b)
		for _, obj := range []struct {
			label string
			kind  objective.Kind
		}{{"FMS and FMM", objective.MaxSum}, {"Fmono", objective.Mono}} {
			row := make([]string, 0, len(tableProblems))
			// Languages with identical bounds collapse, as in the paper;
			// render one row per language group.
			groups := groupLanguages(obj.kind, half)
			for _, g := range groups {
				row = row[:0]
				for _, p := range tableProblems {
					bound, _ := ProvedBound(core.Setting{
						Problem: p, Language: g.rep, Objective: obj.kind, Data: half,
					})
					row = append(row, string(bound))
				}
				fmt.Fprintf(&b, "%-14s %-18s %-22s %-22s %-26s\n",
					obj.label, g.label, row[0], row[1], row[2])
			}
		}
	}
	return b.String()
}

type langGroup struct {
	label string
	rep   query.Language
}

// groupLanguages collapses language columns with identical bounds, echoing
// the paper's "CQ, UCQ, ∃FO+" vs "FO" rows.
func groupLanguages(kind objective.Kind, data bool) []langGroup {
	if data {
		return []langGroup{{"CQ,UCQ,∃FO+,FO", query.CQ}}
	}
	if kind == objective.Mono {
		return []langGroup{{"CQ,UCQ,∃FO+,FO", query.CQ}}
	}
	return []langGroup{
		{"CQ,UCQ,∃FO+", query.CQ},
		{"FO", query.FO},
	}
}

func writeHeader(b *strings.Builder) {
	fmt.Fprintf(b, "%-14s %-18s %-22s %-22s %-26s\n", "Objective", "Languages", "QRD", "DRP", "RDC")
}

// RenderTableII reproduces Table II: the special cases of Section 8.
func RenderTableII() string {
	type row struct {
		cond    string
		setting core.Setting
		kind    string // "Combined" or "Data"
	}
	rows := []row{
		{"identity queries; F=Fmono", core.Setting{Language: query.Identity, Objective: objective.Mono}, "Combined"},
		{"λ=0; F=FMS", core.Setting{Language: query.CQ, Objective: objective.MaxSum, Lambda0: true, Data: true}, "Data"},
		{"λ=0; F=FMM", core.Setting{Language: query.CQ, Objective: objective.MaxMin, Lambda0: true, Data: true}, "Data"},
		{"λ=0; CQ..∃FO+; F=Fmono", core.Setting{Language: query.CQ, Objective: objective.Mono, Lambda0: true}, "Combined"},
		{"constant k; any F", core.Setting{Language: query.CQ, Objective: objective.MaxSum, ConstantK: true, Data: true}, "Data"},
	}
	var b strings.Builder
	b.WriteString("Table II — special cases\n\n")
	fmt.Fprintf(&b, "%-26s %-10s %-14s %-14s %-26s\n", "Conditions", "Complexity", "QRD", "DRP", "RDC")
	for _, r := range rows {
		var cells []string
		for _, p := range tableProblems {
			s := r.setting
			s.Problem = p
			bound, _ := ProvedBound(s)
			cells = append(cells, string(bound))
		}
		fmt.Fprintf(&b, "%-26s %-10s %-14s %-14s %-26s\n", r.cond, r.kind, cells[0], cells[1], cells[2])
	}
	return b.String()
}

// RenderTableIII reproduces Table III: the cells whose complexity changes
// in the presence of compatibility constraints.
func RenderTableIII() string {
	type row struct {
		cond    string
		setting core.Setting
		kind    string
	}
	rows := []row{
		{"F=Fmono", core.Setting{Language: query.CQ, Objective: objective.Mono, Data: true, Constraints: true}, "Data"},
		{"identity; F=Fmono", core.Setting{Language: query.Identity, Objective: objective.Mono, Constraints: true}, "Comb/Data"},
		{"λ=0; any F", core.Setting{Language: query.CQ, Objective: objective.MaxSum, Lambda0: true, Data: true, Constraints: true}, "Data"},
		{"λ=1; F=Fmono", core.Setting{Language: query.CQ, Objective: objective.Mono, Lambda1: true, Data: true, Constraints: true}, "Data"},
	}
	var b strings.Builder
	b.WriteString("Table III — complexity in the presence of compatibility constraints\n\n")
	fmt.Fprintf(&b, "%-22s %-10s %-14s %-16s %-28s\n", "Conditions", "Complexity", "QRD", "DRP", "RDC")
	for _, r := range rows {
		var cells []string
		for _, p := range tableProblems {
			s := r.setting
			s.Problem = p
			bound, _ := ProvedBound(s)
			cells = append(cells, string(bound))
		}
		fmt.Fprintf(&b, "%-22s %-10s %-14s %-16s %-28s\n", r.cond, r.kind, cells[0], cells[1], cells[2])
	}
	return b.String()
}

// RenderFigure reproduces Figures 1 (QRD), 3 (DRP) and 4 (RDC): the
// bound map of one problem across settings, with the reduction arrows
// ("→" reads "restricting the setting lowers the complexity to").
func RenderFigure(p core.Problem) string {
	var b strings.Builder
	num := map[core.Problem]string{core.QRD: "1", core.DRP: "3", core.RDC: "4"}[p]
	fmt.Fprintf(&b, "Figure %s — the complexity bounds of %s\n\n", num, p)

	line := func(label string, s core.Setting) {
		s.Problem = p
		bound, thm := ProvedBound(s)
		fmt.Fprintf(&b, "  %-34s %-28s (%s)\n", label, string(bound), thm)
	}
	b.WriteString("(a) F is FMS or FMM\n")
	line("FO, combined", core.Setting{Language: query.FO, Objective: objective.MaxSum})
	line("CQ/∃FO+, combined", core.Setting{Language: query.CQ, Objective: objective.MaxSum})
	line("  ↓ fix the query", core.Setting{Language: query.CQ, Objective: objective.MaxSum, Data: true})
	line("  ↓ λ=0", core.Setting{Language: query.CQ, Objective: objective.MaxSum, Lambda0: true, Data: true})
	line("  ↓ constant k", core.Setting{Language: query.CQ, Objective: objective.MaxSum, ConstantK: true, Data: true})
	b.WriteString("\n(b) F is Fmono\n")
	line("CQ/FO, combined", core.Setting{Language: query.CQ, Objective: objective.Mono})
	line("  ↓ fix the query", core.Setting{Language: query.CQ, Objective: objective.Mono, Data: true})
	line("  ↓ identity queries", core.Setting{Language: query.Identity, Objective: objective.Mono})
	line("  ↓ λ=0, combined", core.Setting{Language: query.CQ, Objective: objective.Mono, Lambda0: true})
	return b.String()
}

// RenderResult formats one empirical result against its proved bound.
func RenderResult(r Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-36s proved: %-26s [%s]\n", r.Experiment.ID, string(r.Bound), r.Theorem)
	fmt.Fprintf(&b, "    observed: %s", r.Fit)
	agree := "✓ shape agrees"
	switch {
	case r.Experiment.Table == "ablation":
		// Ablations compare algorithm variants, not a complexity bound.
		agree = "(ablation: bound comparison n/a)"
	case r.Bound.Tractable() != (r.Fit.Kind != Exponential):
		agree = "✗ shape disagrees"
	}
	fmt.Fprintf(&b, "  %s\n", agree)
	for _, m := range r.Series {
		fmt.Fprintf(&b, "      n=%-6d %10.4fms  work=%.0f\n", m.N, m.Secs*1000, m.Work)
	}
	return b.String()
}
