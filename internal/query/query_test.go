package query

import (
	"testing"

	"repro/internal/value"
)

func atom(rel string, vars ...string) *Atom {
	args := make([]Term, len(vars))
	for i, v := range vars {
		args[i] = V(v)
	}
	return &Atom{Rel: rel, Args: args}
}

func TestLanguageOrderingAndNames(t *testing.T) {
	if !FO.Includes(CQ) || CQ.Includes(FO) || !CQ.Includes(Identity) {
		t.Error("Includes misbehaves")
	}
	names := map[Language]string{Identity: "identity", CQ: "CQ", UCQ: "UCQ", EFOPlus: "∃FO+", FO: "FO"}
	for l, want := range names {
		if l.String() != want {
			t.Errorf("%d.String() = %q, want %q", l, l.String(), want)
		}
	}
}

func TestTermBasics(t *testing.T) {
	v := V("x")
	if !v.IsVar() || v.String() != "x" {
		t.Error("variable term misbehaves")
	}
	c := CInt(5)
	if c.IsVar() || c.String() != "5" {
		t.Error("constant term misbehaves")
	}
	if CStr("a").String() != `"a"` {
		t.Errorf("string constant renders as %q", CStr("a").String())
	}
}

func TestCmpOpEval(t *testing.T) {
	two, three := value.Int(2), value.Int(3)
	cases := []struct {
		op   CmpOp
		a, b value.Value
		want bool
	}{
		{EQ, two, two, true}, {EQ, two, three, false},
		{NE, two, three, true}, {NE, two, two, false},
		{LT, two, three, true}, {LT, three, two, false},
		{LE, two, two, true}, {LE, three, two, false},
		{GT, three, two, true}, {GT, two, two, false},
		{GE, two, two, true}, {GE, two, three, false},
	}
	for _, c := range cases {
		if got := c.op.Eval(c.a, c.b); got != c.want {
			t.Errorf("%v %v %v = %v, want %v", c.a, c.op, c.b, got, c.want)
		}
	}
}

func TestFreeVars(t *testing.T) {
	// exists y (R(x, y) and y < z)
	f := &Exists{Vars: []string{"y"}, F: &And{Fs: []Formula{
		atom("R", "x", "y"),
		&Cmp{Op: LT, L: V("y"), R: V("z")},
	}}}
	got := FreeVars(f)
	if len(got) != 2 || got[0] != "x" || got[1] != "z" {
		t.Errorf("FreeVars = %v, want [x z]", got)
	}
}

func TestFreeVarsShadowing(t *testing.T) {
	// R(x) and exists x S(x): x is free (from the first conjunct).
	f := &And{Fs: []Formula{
		atom("R", "x"),
		&Exists{Vars: []string{"x"}, F: atom("S", "x")},
	}}
	got := FreeVars(f)
	if len(got) != 1 || got[0] != "x" {
		t.Errorf("FreeVars = %v, want [x]", got)
	}
	// forall-only occurrence is bound.
	g := &ForAll{Vars: []string{"x"}, F: atom("R", "x")}
	if len(FreeVars(g)) != 0 {
		t.Errorf("FreeVars(forall x R(x)) = %v, want []", FreeVars(g))
	}
}

func TestNewValidatesHead(t *testing.T) {
	if _, err := New("Q", []string{"x", "x"}, atom("R", "x")); err == nil {
		t.Error("expected error for repeated head variable")
	}
	if _, err := New("Q", []string{"y"}, atom("R", "x")); err == nil {
		t.Error("expected error for head variable not free in body")
	}
	if _, err := New("Q", []string{"x"}, atom("R", "x")); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
}

func TestIdentityQueryConstruction(t *testing.T) {
	q := IdentityQuery("R", 3)
	if q.Arity() != 3 {
		t.Errorf("arity = %d", q.Arity())
	}
	if q.Classify() != Identity {
		t.Errorf("Classify = %v, want identity", q.Classify())
	}
}

func TestClassify(t *testing.T) {
	cq := MustNew("Q", []string{"x"}, &Exists{Vars: []string{"y"}, F: &And{Fs: []Formula{
		atom("R", "x", "y"), &Cmp{Op: LT, L: V("x"), R: CInt(5)},
	}}})
	ucq := MustNew("Q", []string{"x"}, &Or{Fs: []Formula{atom("R", "x"), atom("S", "x")}})
	efo := MustNew("Q", []string{"x"}, &And{Fs: []Formula{
		atom("R", "x"),
		&Or{Fs: []Formula{atom("S", "x"), atom("T", "x")}},
	}})
	fo := MustNew("Q", []string{"x"}, &And{Fs: []Formula{
		atom("R", "x"), &Not{F: atom("S", "x")},
	}})
	forall := MustNew("Q", []string{"x"}, &And{Fs: []Formula{
		atom("R", "x"),
		&ForAll{Vars: []string{"y"}, F: atom("R", "y")},
	}})

	cases := []struct {
		q    *Query
		want Language
	}{
		{IdentityQuery("R", 2), Identity},
		{cq, CQ},
		{ucq, UCQ},
		{efo, EFOPlus},
		{fo, FO},
		{forall, FO},
	}
	for _, c := range cases {
		if got := c.q.Classify(); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestClassifyIdentityRequiresExactShape(t *testing.T) {
	// Head order differs from atom order: a projection/permutation, not identity.
	q := MustNew("Q", []string{"y", "x"}, atom("R", "x", "y"))
	if q.Classify() != CQ {
		t.Errorf("permuted head should classify as CQ, got %v", q.Classify())
	}
	// Constant in atom: selection, not identity.
	q2 := MustNew("Q", []string{"x"}, &Atom{Rel: "R", Args: []Term{V("x"), CInt(1)}})
	if q2.Classify() != CQ {
		t.Errorf("selection should classify as CQ, got %v", q2.Classify())
	}
}

func TestExistsOverUnionIsUCQ(t *testing.T) {
	q := MustNew("Q", []string{"x"}, &Exists{Vars: []string{"y"}, F: &Or{Fs: []Formula{
		atom("R", "x", "y"), atom("S", "x", "y"),
	}}})
	if got := q.Classify(); got != UCQ {
		t.Errorf("Classify = %v, want UCQ", got)
	}
	// Conjunction above a disjunction is ∃FO+ but not UCQ (not a union of CQs
	// syntactically).
	q2 := MustNew("Q", []string{"x"}, &And{Fs: []Formula{
		atom("T", "x"),
		&Or{Fs: []Formula{atom("R", "x"), atom("S", "x")}},
	}})
	if got := q2.Classify(); got != EFOPlus {
		t.Errorf("Classify = %v, want ∃FO+", got)
	}
}

func TestConstants(t *testing.T) {
	q := MustNew("Q", []string{"x"}, &And{Fs: []Formula{
		&Atom{Rel: "R", Args: []Term{V("x"), CInt(7)}},
		&Cmp{Op: GE, L: V("x"), R: CInt(3)},
		&Not{F: &Atom{Rel: "S", Args: []Term{CStr("a")}}},
	}})
	consts := q.Constants()
	if len(consts) != 3 {
		t.Fatalf("Constants = %v, want 3 values", consts)
	}
	if consts[0].AsInt() != 3 || consts[1].AsInt() != 7 || consts[2].AsString() != "a" {
		t.Errorf("Constants = %v", consts)
	}
}

func TestQueryString(t *testing.T) {
	q := MustNew("Q", []string{"x"}, &And{Fs: []Formula{
		atom("R", "x"),
		&Cmp{Op: LT, L: V("x"), R: CInt(5)},
	}})
	want := "Q(x) :- (R(x) and x < 5)"
	if got := q.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestFormulaStrings(t *testing.T) {
	f := &ForAll{Vars: []string{"y"}, F: &Or{Fs: []Formula{
		&Not{F: atom("R", "y")},
		&Exists{Vars: []string{"z"}, F: atom("S", "y", "z")},
	}}}
	want := "forall y ((not R(y) or exists z (S(y, z))))"
	if got := f.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
