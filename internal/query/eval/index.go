// Hash indexes and conjunct ordering for the evaluator. A relation atom
// with at least one argument bound by the current assignment probes a
// lazily built hash index on that column instead of scanning the relation;
// conjunctions evaluate their most-bound, cheapest conjunct first. Both are
// pure optimizations: results are identical with or without them (a
// property the tests check), only the join order and per-atom cost change.
package eval

import (
	"repro/internal/query"
	"repro/internal/relation"
)

// colIndex maps a column's value keys to the tuples carrying that value.
type colIndex map[string][]relation.Tuple

// indexKey identifies a (relation, column) index.
type indexKey struct {
	rel string
	col int
}

// index returns the hash index for the column, building and caching it on
// first use. Index construction is O(|R|); every subsequent probe is O(1)
// plus the matching bucket.
func (e *Evaluator) index(rel *relation.Relation, col int) colIndex {
	if e.indexes == nil {
		e.indexes = make(map[indexKey]colIndex)
	}
	key := indexKey{rel.Schema().Name, col}
	if idx, ok := e.indexes[key]; ok {
		return idx
	}
	idx := make(colIndex, rel.Len())
	for _, t := range rel.Tuples() {
		k := t[col].Key()
		idx[k] = append(idx[k], t)
	}
	e.indexes[key] = idx
	return idx
}

// probe returns the scan list for an atom under the current binding: the
// bucket of a bound column when one exists (preferring the smallest bucket
// among bound columns), or the full relation otherwise.
func (e *Evaluator) probe(a *query.Atom, rel *relation.Relation) []relation.Tuple {
	if e.noIndex {
		return rel.Tuples()
	}
	slots := e.argSlotsOf(a)
	best := rel.Tuples()
	probed := false
	for i, arg := range a.Args {
		s := slots[i]
		var k string
		switch {
		case s < 0:
			k = arg.Value.Key()
		case e.bound[s]:
			k = e.vals[s].Key()
		default:
			continue
		}
		bucket := e.index(rel, i)[k]
		if !probed || len(bucket) < len(best) {
			best = bucket
			probed = true
		}
		if len(best) == 0 {
			break
		}
	}
	return best
}

// conjunctCost estimates how constrained a conjunct is under the current
// binding; lower runs first. Fully bound filters are free prunes; relation
// atoms cost by expected scan size shrunk per bound argument; composites
// cost by their unbound variable count, after atoms.
func (e *Evaluator) conjunctCost(f query.Formula) float64 {
	sim := make(map[int]bool)
	for _, s := range e.freeSlotsOf(f) {
		if e.bound[s] {
			sim[s] = true
		}
	}
	return e.conjunctCostSim(f, sim)
}

// conjunctCostSim is conjunctCost against an explicit simulated bound-set,
// used by the planner to cost conjuncts under hypothetical bindings.
func (e *Evaluator) conjunctCostSim(f query.Formula, simBound map[int]bool) float64 {
	unbound := 0
	for _, s := range e.freeSlotsOf(f) {
		if !simBound[s] {
			unbound++
		}
	}
	switch n := f.(type) {
	case *query.Cmp:
		if unbound == 0 {
			return 0 // immediate filter
		}
		// An unbound comparison enumerates the domain: run it last.
		return 1e9 + float64(unbound)
	case *query.Not, *query.ForAll:
		if unbound == 0 {
			return 1 // cheap truth test
		}
		return 1e9 + float64(unbound)
	case *query.Atom:
		rel := e.db.Relation(n.Rel)
		if rel == nil {
			return 0 // empty: refutes instantly
		}
		size := float64(rel.Len())
		slots := e.argSlotsOf(n)
		for _, s := range slots {
			if s < 0 || simBound[s] {
				size /= 4
			}
		}
		return 2 + size
	default:
		// Composite generators (And/Or/Exists) after atoms of similar
		// breadth, ordered by how many variables they must produce.
		return 1e6 + float64(unbound)
	}
}

// nextConjunct picks the cheapest remaining conjunct under the simulated
// bound-set. The done slice marks consumed conjuncts.
func (e *Evaluator) nextConjunct(fs []query.Formula, done []bool, simBound map[int]bool) int {
	best, bestCost := -1, 0.0
	for i, f := range fs {
		if done[i] {
			continue
		}
		c := e.conjunctCostSim(f, simBound)
		if best == -1 || c < bestCost {
			best, bestCost = i, c
		}
	}
	return best
}

// plan returns the conjunct evaluation order for an And node under the
// current binding pattern, memoized per (node, pattern). The order is the
// greedy cheapest-first sequence assuming each chosen conjunct binds all
// its free variables — exactly what relation atoms do on success — so one
// plan serves every visit of the node under the same outer pattern.
func (e *Evaluator) plan(n *query.And) []query.Formula {
	slots := e.freeSlotsOf(n)
	key := make([]byte, len(slots))
	for i, s := range slots {
		if e.bound[s] {
			key[i] = '1'
		} else {
			key[i] = '0'
		}
	}
	if e.plans == nil {
		e.plans = make(map[*query.And]map[string][]query.Formula)
	}
	byPattern := e.plans[n]
	if byPattern == nil {
		byPattern = make(map[string][]query.Formula)
		e.plans[n] = byPattern
	}
	if order, ok := byPattern[string(key)]; ok {
		return order
	}
	simBound := make(map[int]bool, len(slots))
	for _, s := range slots {
		if e.bound[s] {
			simBound[s] = true
		}
	}
	done := make([]bool, len(n.Fs))
	order := make([]query.Formula, 0, len(n.Fs))
	for len(order) < len(n.Fs) {
		i := e.nextConjunct(n.Fs, done, simBound)
		done[i] = true
		order = append(order, n.Fs[i])
		for _, s := range e.freeSlotsOf(n.Fs[i]) {
			simBound[s] = true
		}
	}
	byPattern[string(key)] = order
	return order
}
