package eval

import (
	"context"
	"testing"
	"time"

	"repro/internal/query"
	"repro/internal/query/parse"
	"repro/internal/relation"
	"repro/internal/value"
)

// testDB builds a small database:
//
//	R(x, y): (1,2), (2,3), (3,4)
//	S(x):    (2), (4)
//	T(x):    (1)
func testDB() *relation.Database {
	r := relation.NewRelation(relation.NewSchema("R", "x", "y"))
	r.InsertAll(relation.Ints(1, 2), relation.Ints(2, 3), relation.Ints(3, 4))
	s := relation.NewRelation(relation.NewSchema("S", "x"))
	s.InsertAll(relation.Ints(2), relation.Ints(4))
	tt := relation.NewRelation(relation.NewSchema("T", "x"))
	tt.Insert(relation.Ints(1))
	return relation.NewDatabase().Add(r).Add(s).Add(tt)
}

func results(t *testing.T, src string, db *relation.Database) []relation.Tuple {
	t.Helper()
	q, err := parse.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	return Evaluate(q, db).Sorted()
}

func wantTuples(t *testing.T, got []relation.Tuple, want ...relation.Tuple) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d tuples %v, want %d %v", len(got), got, len(want), want)
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Errorf("tuple %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEvaluateIdentity(t *testing.T) {
	got := results(t, "Q(x, y) :- R(x, y)", testDB())
	wantTuples(t, got, relation.Ints(1, 2), relation.Ints(2, 3), relation.Ints(3, 4))
}

func TestEvaluateJoin(t *testing.T) {
	// R(x,z) join R(z,y): paths of length two.
	got := results(t, "Q(x, y) :- R(x, z), R(z, y)", testDB())
	wantTuples(t, got, relation.Ints(1, 3), relation.Ints(2, 4))
}

func TestEvaluateSelection(t *testing.T) {
	got := results(t, "Q(x) :- R(x, y), x > 1", testDB())
	wantTuples(t, got, relation.Ints(2), relation.Ints(3))
}

func TestEvaluateConstantInAtom(t *testing.T) {
	got := results(t, "Q(x) :- R(x, 3)", testDB())
	wantTuples(t, got, relation.Ints(2))
}

func TestEvaluateProjectionDeduplicates(t *testing.T) {
	// Both (2,3) and (2, anything) project to x=2 only once.
	r := relation.NewRelation(relation.NewSchema("R", "x", "y"))
	r.InsertAll(relation.Ints(2, 3), relation.Ints(2, 4))
	db := relation.NewDatabase().Add(r)
	got := results(t, "Q(x) :- R(x, y)", db)
	wantTuples(t, got, relation.Ints(2))
}

func TestEvaluateUnion(t *testing.T) {
	got := results(t, "Q(x) :- S(x) or T(x)", testDB())
	wantTuples(t, got, relation.Ints(1), relation.Ints(2), relation.Ints(4))
}

func TestEvaluateUnionDisjunctMissingHeadVar(t *testing.T) {
	// Q(x) :- S(x) or T(1). T(1) holds, so every active-domain value
	// satisfies the body: active-domain semantics.
	got := results(t, "Q(x) :- S(x) or T(1)", testDB())
	if len(got) != 4 {
		t.Fatalf("got %v, want all 4 active-domain values", got)
	}
}

func TestEvaluateNegation(t *testing.T) {
	got := results(t, "Q(x) :- R(x, y), not S(x)", testDB())
	wantTuples(t, got, relation.Ints(1), relation.Ints(3))
}

func TestEvaluateForAll(t *testing.T) {
	// Values x in S such that all R-successors of x are in S.
	// R: 1->2, 2->3, 3->4. S = {2,4}. x=2 has successor 3 ∉ S -> excluded.
	// x=4 has no successors -> vacuously true.
	got := results(t, "Q(x) :- S(x), forall y (R(x, y) -> S(y))", testDB())
	wantTuples(t, got, relation.Ints(4))
}

func TestEvaluateNestedQuantifiers(t *testing.T) {
	// exists z with R(x,z) and R(z,y): same as join but via explicit exists.
	got := results(t, "Q(x, y) :- exists z (R(x, z), R(z, y))", testDB())
	wantTuples(t, got, relation.Ints(1, 3), relation.Ints(2, 4))
}

func TestEvaluateImplicitExistential(t *testing.T) {
	// Non-head free variable y acts as existentially quantified.
	got := results(t, "Q(x) :- R(x, y)", testDB())
	wantTuples(t, got, relation.Ints(1), relation.Ints(2), relation.Ints(3))
}

func TestEvaluateComparisonOnlyQuery(t *testing.T) {
	// Pure comparison bodies range over the active domain.
	got := results(t, "Q(x) :- x >= 3", testDB())
	wantTuples(t, got, relation.Ints(3), relation.Ints(4))
}

func TestEvaluateMissingRelationIsEmpty(t *testing.T) {
	got := results(t, "Q(x) :- Missing(x)", testDB())
	if len(got) != 0 {
		t.Errorf("missing relation should evaluate empty, got %v", got)
	}
}

func TestEvaluateEmptyDatabase(t *testing.T) {
	db := relation.NewDatabase()
	got := results(t, "Q(x) :- R(x, y)", db)
	if len(got) != 0 {
		t.Errorf("empty db should give empty result, got %v", got)
	}
}

func TestMemberAgainstEvaluate(t *testing.T) {
	db := testDB()
	srcs := []string{
		"Q(x, y) :- R(x, z), R(z, y)",
		"Q(x) :- S(x) or T(x)",
		"Q(x) :- R(x, y), not S(x)",
		"Q(x) :- S(x), forall y (R(x, y) -> S(y))",
	}
	for _, src := range srcs {
		q := parse.MustQuery(src)
		ev := New(q, db)
		res := ev.Result()
		// Every evaluated tuple is a member.
		for _, tup := range res.Tuples() {
			if !ev.Member(tup) {
				t.Errorf("%s: %v should be a member", src, tup)
			}
		}
		// Probe some non-members.
		probe := relation.Ints(99)
		if q.Arity() == 2 {
			probe = relation.Ints(99, 99)
		}
		if ev.Member(probe) {
			t.Errorf("%s: %v should not be a member", src, probe)
		}
	}
}

func TestMemberWrongArity(t *testing.T) {
	q := parse.MustQuery("Q(x) :- S(x)")
	if Member(q, testDB(), relation.Ints(2, 3)) {
		t.Error("wrong-arity tuple cannot be a member")
	}
}

func TestDomainIncludesQueryConstants(t *testing.T) {
	q := parse.MustQuery("Q(x) :- R(x, y), x != 77")
	ev := New(q, testDB())
	found := false
	for _, v := range ev.Domain() {
		if v.AsInt() == 77 {
			found = true
		}
	}
	if !found {
		t.Error("domain should include query constant 77")
	}
}

func TestEvaluateVariableShadowing(t *testing.T) {
	// exists y shadows outer y: Q(y) :- S(y) and exists y (T(y)).
	q := parse.MustQuery("Q(y) :- S(y), exists y (T(y))")
	got := Evaluate(q, testDB()).Sorted()
	wantTuples(t, got, relation.Ints(2), relation.Ints(4))
}

func TestEvaluateBooleanGadget(t *testing.T) {
	// The Q(x1..xm) = R01(x1) ∧ ... ∧ R01(xm) query from Theorem 5.2
	// generates all truth assignments.
	r01 := relation.NewRelation(relation.NewSchema("R01", "X"))
	r01.InsertAll(relation.Ints(0), relation.Ints(1))
	db := relation.NewDatabase().Add(r01)
	q := parse.MustQuery("Q(x1, x2, x3) :- R01(x1), R01(x2), R01(x3)")
	got := Evaluate(q, db)
	if got.Len() != 8 {
		t.Errorf("Boolean cube has %d tuples, want 8", got.Len())
	}
}

func TestEvaluateFOGiftQuery(t *testing.T) {
	// Example 3.1's Q0: gifts in [20,30] not previously bought by Peter for
	// Grace.
	catalog := relation.NewRelation(relation.NewSchema("catalog", "item", "type", "price", "inStock"))
	catalog.InsertAll(
		relation.Tuple{value.Str("book1"), value.Str("book"), value.Int(25), value.Int(3)},
		relation.Tuple{value.Str("ring1"), value.Str("jewelry"), value.Int(28), value.Int(1)},
		relation.Tuple{value.Str("toy1"), value.Str("toy"), value.Int(10), value.Int(5)},
	)
	history := relation.NewRelation(relation.NewSchema("history",
		"item", "buyer", "recipient", "gender", "age", "rel", "event", "rating"))
	history.Insert(relation.Tuple{
		value.Str("book1"), value.Str("peter"), value.Str("Grace"), value.Str("f"),
		value.Int(13), value.Str("uncle"), value.Str("birthday"), value.Int(5),
	})
	db := relation.NewDatabase().Add(catalog).Add(history)

	q := parse.MustQuery(`Q0(n) :- exists t, p, s (catalog(n, t, p, s), p <= 30, p >= 20,
		forall n2, b, r, g, a, x, e, y (
			not (history(n2, b, r, g, a, x, e, y), b = "peter", r = "Grace", n = n2)))`)
	got := Evaluate(q, db).Sorted()
	// book1 excluded (already bought), toy1 excluded (price), ring1 remains.
	if len(got) != 1 || got[0][0].AsString() != "ring1" {
		t.Errorf("gift query result = %v, want [ring1]", got)
	}
}

func TestEvaluatorStopsEarlyViaYield(t *testing.T) {
	// Member uses truth, which short-circuits; make sure satisfy also stops
	// when yield returns false (exercised through Result on a large cube by
	// constructing the evaluator directly).
	r01 := relation.NewRelation(relation.NewSchema("R01", "X"))
	r01.InsertAll(relation.Ints(0), relation.Ints(1))
	db := relation.NewDatabase().Add(r01)
	q := parse.MustQuery("Q(x1, x2) :- R01(x1), R01(x2)")
	ev := New(q, db)
	count := 0
	ev.satisfy(q.Body, func() bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("enumeration did not stop early: %d yields", count)
	}
}

func TestMemberEmbedsFOMembershipProblem(t *testing.T) {
	// The membership problem for FO (Thm 5.1's reduction source): verify on
	// a query with negation that membership matches evaluation.
	db := testDB()
	q := parse.MustQuery("Q(x) :- R(x, y), not T(x)")
	ev := New(q, db)
	want := map[int64]bool{2: true, 3: true}
	for x := int64(0); x < 6; x++ {
		got := ev.Member(relation.Ints(x))
		if got != want[x] {
			t.Errorf("Member(%d) = %v, want %v", x, got, want[x])
		}
	}
}

func TestOrderConjunctsKeepsAll(t *testing.T) {
	fs := []query.Formula{
		&query.Cmp{Op: query.LT, L: query.V("x"), R: query.CInt(5)},
		&query.Atom{Rel: "R", Args: []query.Term{query.V("x")}},
		&query.Not{F: &query.Atom{Rel: "S", Args: []query.Term{query.V("x")}}},
	}
	got := orderConjuncts(fs)
	if len(got) != 3 {
		t.Fatalf("lost conjuncts: %v", got)
	}
	if _, ok := got[0].(*query.Atom); !ok {
		t.Error("atom should be ordered first")
	}
}

// TestContextCancelsEvaluation cancels an FO evaluation whose universal
// quantifiers force repeated active-domain enumeration: the cross product
// R × R × ∀-checks over a few hundred tuples is large enough that the
// deadline fires mid-evaluation.
func TestContextCancelsEvaluation(t *testing.T) {
	r := relation.NewRelation(relation.NewSchema("R", "x", "y"))
	for i := int64(0); i < 400; i++ {
		r.Insert(relation.Ints(i, (i*7)%400))
	}
	db := relation.NewDatabase().Add(r)
	q, err := parse.Query("Q(x, y, u, v) :- R(x, y), R(u, v), forall a (forall b (not R(a, b) or a >= 0))")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := EvaluateContext(ctx, q, db); err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("cancellation did not stop evaluation promptly")
	}

	// A background context evaluates to completion and matches Evaluate.
	small, err := parse.Query("Q(x, y) :- R(x, y), x < 5")
	if err != nil {
		t.Fatal(err)
	}
	res, err := EvaluateContext(context.Background(), small, db)
	if err != nil {
		t.Fatal(err)
	}
	if want := Evaluate(small, db); res.Len() != want.Len() {
		t.Errorf("context variant found %d answers, legacy %d", res.Len(), want.Len())
	}
}
