package eval

import (
	"context"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/query/parse"
	"repro/internal/relation"
)

func TestDeltaCapable(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"Q(x, y) :- R(x, y)", true},
		{"Q(x) :- R(x, y), S(y)", true},
		{"Q(x) :- R(x, y), y >= 2", true},
		{"Q(x) :- R(x, y) or R(y, x)", true},
		{"Q(x) :- exists y (R(x, y), S(y))", true},
		// Negation: not monotone.
		{"Q(x) :- R(x, y), not S(x)", false},
		// Universal quantification: not monotone.
		{"Q(x) :- S(x), forall y (not R(x, y) or y >= 0)", false},
		// Comparison-only variable: answer depends on the active domain.
		{"Q(x) :- S(y), x >= y", false},
		// A disjunct that leaves a variable to the domain.
		{"Q(x) :- R(x, y) or x = 5", false},
		// Quantified variable constrained only by a comparison.
		{"Q(x) :- S(x), exists y (y >= x)", false},
	}
	for _, c := range cases {
		q := parse.MustQuery(c.src)
		if got := DeltaCapable(q); got != c.want {
			t.Errorf("DeltaCapable(%s) = %v, want %v", c.src, got, c.want)
		}
	}
}

// applyDelta merges a DeltaResult into a sorted answer set the way a cache
// maintainer would, returning the new sorted answers.
func applyDelta(old []relation.Tuple, d DeltaResult) []relation.Tuple {
	dead := make(map[string]bool, len(d.Removed))
	for _, t := range d.Removed {
		dead[t.Key()] = true
	}
	out := make([]relation.Tuple, 0, len(old)+len(d.Added))
	for _, t := range old {
		if !dead[t.Key()] {
			out = append(out, t)
		}
	}
	out = append(out, d.Added...)
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// checkDelta asserts that Delta across the journal suffix reproduces a full
// re-evaluation exactly.
func checkDelta(t *testing.T, src string, db *relation.Database, old []relation.Tuple, gen uint64) DeltaResult {
	t.Helper()
	q := parse.MustQuery(src)
	changes, ok := db.ChangesSince(gen)
	if !ok {
		t.Fatal("journal does not cover the test span")
	}
	d, ok, err := Delta(context.Background(), q, db, changes, old)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("Delta refused a capable query %s", src)
	}
	got := applyDelta(old, d)
	want := Evaluate(q, db).Sorted()
	if len(got) != len(want) {
		t.Fatalf("delta answers = %v, full eval = %v", got, want)
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("delta answers = %v, full eval = %v", got, want)
		}
	}
	return d
}

func TestDeltaInsertIdentity(t *testing.T) {
	db := testDB()
	src := "Q(x, y) :- R(x, y)"
	old := results(t, src, db)
	gen := db.Generation()
	db.Relation("R").Insert(relation.Ints(9, 9))
	d := checkDelta(t, src, db, old, gen)
	if len(d.Added) != 1 || len(d.Removed) != 0 {
		t.Errorf("delta = +%d/-%d, want +1/-0", len(d.Added), len(d.Removed))
	}
}

func TestDeltaInsertJoinBothSides(t *testing.T) {
	db := testDB()
	src := "Q(x, y) :- R(x, z), R(z, y)"
	old := results(t, src, db)
	gen := db.Generation()
	// (4,5) extends the chain on both atom positions: new answers (3,5)
	// via R(3,4),R(4,5) — the inserted tuple matching the second atom.
	db.Relation("R").Insert(relation.Ints(4, 5))
	d := checkDelta(t, src, db, old, gen)
	if len(d.Added) == 0 {
		t.Error("expected join answers from the inserted tuple")
	}
}

func TestDeltaInsertIrrelevantRelation(t *testing.T) {
	db := testDB()
	src := "Q(x) :- S(x)"
	old := results(t, src, db)
	gen := db.Generation()
	db.Relation("R").Insert(relation.Ints(7, 7)) // not mentioned by Q
	d := checkDelta(t, src, db, old, gen)
	if len(d.Added) != 0 || len(d.Removed) != 0 || d.Rechecked != 0 {
		t.Errorf("irrelevant insert produced work: %+v", d)
	}
}

func TestDeltaDeleteRemovesAnswers(t *testing.T) {
	db := testDB()
	src := "Q(x) :- R(x, y), S(y)"
	old := results(t, src, db) // (1) via S(2), (2) via... R(2,3) S(3)? no: S={2,4}; (1,2)->S(2) yes; (3,4)->S(4) yes
	gen := db.Generation()
	db.Relation("S").Delete(relation.Ints(2))
	d := checkDelta(t, src, db, old, gen)
	if len(d.Removed) == 0 {
		t.Error("expected the delete to remove answers")
	}
	if d.Rechecked != len(old) {
		t.Errorf("Rechecked = %d, want %d", d.Rechecked, len(old))
	}
}

func TestDeltaDeleteKeepsAlternateDerivations(t *testing.T) {
	db := testDB()
	// Q(y) over two derivations for y=2: R(1,2) and S(2). (The unbound
	// side of the disjunction is quantified so each disjunct binds every
	// free variable — the range-safety the delta path demands.)
	src := "Q(y) :- exists x (R(x, y)) or S(y)"
	old := results(t, src, db)
	gen := db.Generation()
	db.Relation("R").Delete(relation.Ints(1, 2)) // S(2) still derives y=2
	d := checkDelta(t, src, db, old, gen)
	for _, r := range d.Removed {
		if r[0].AsInt() == 2 {
			t.Error("answer 2 still has a derivation through S and must not be removed")
		}
	}
}

func TestDeltaMixedBatch(t *testing.T) {
	db := testDB()
	src := "Q(x, y) :- R(x, y)"
	old := results(t, src, db)
	gen := db.Generation()
	r := db.Relation("R")
	r.Insert(relation.Ints(5, 6))
	r.Delete(relation.Ints(1, 2))
	r.Insert(relation.Ints(6, 7))
	r.Delete(relation.Ints(5, 6)) // inserted then deleted within the batch
	checkDelta(t, src, db, old, gen)
}

func TestDeltaRefusesNonMonotone(t *testing.T) {
	db := testDB()
	q := parse.MustQuery("Q(x) :- R(x, y), not S(x)")
	gen := db.Generation()
	db.Relation("R").Insert(relation.Ints(8, 8))
	changes, _ := db.ChangesSince(gen)
	_, ok, err := Delta(context.Background(), q, db, changes, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("Delta must refuse non-monotone queries")
	}
}

func TestDeltaExistentialAndConstants(t *testing.T) {
	db := testDB()
	src := "Q(x) :- exists y (R(x, y), S(y)), x >= 1"
	old := results(t, src, db)
	gen := db.Generation()
	db.Relation("S").Insert(relation.Ints(3)) // R(2,3) now derives x=2
	d := checkDelta(t, src, db, old, gen)
	if len(d.Added) != 1 || d.Added[0][0].AsInt() != 2 {
		t.Errorf("Added = %v, want [(2)]", d.Added)
	}
}

// TestDeltaRandomizedAgainstFullEval drives random insert/delete batches
// through a set of capable queries and checks every delta against a full
// re-evaluation — the differential property the incremental path must hold.
func TestDeltaRandomizedAgainstFullEval(t *testing.T) {
	queries := []string{
		"Q(x, y) :- R(x, y)",
		"Q(x) :- R(x, y), S(y)",
		"Q(x, y) :- R(x, z), R(z, y)",
		"Q(y) :- exists x (R(x, y)) or S(y)",
		"Q(x) :- exists y (R(x, y), S(y)), x >= 0",
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		db := relation.NewDatabase()
		r := relation.NewRelation(relation.NewSchema("R", "x", "y"))
		s := relation.NewRelation(relation.NewSchema("S", "x"))
		db.Add(r).Add(s)
		for i := 0; i < 15; i++ {
			r.Insert(relation.Ints(rng.Int63n(8), rng.Int63n(8)))
			s.Insert(relation.Ints(rng.Int63n(8)))
		}
		src := queries[trial%len(queries)]
		old := results(t, src, db)
		gen := db.Generation()
		for i := 0; i < 6; i++ {
			switch rng.Intn(3) {
			case 0:
				r.Insert(relation.Ints(rng.Int63n(10), rng.Int63n(10)))
			case 1:
				s.Insert(relation.Ints(rng.Int63n(10)))
			default:
				ts := r.Tuples()
				if len(ts) > 0 {
					r.Delete(ts[rng.Intn(len(ts))])
				}
			}
		}
		checkDelta(t, src, db, old, gen)
	}
}

func TestDeltaCancellation(t *testing.T) {
	db := testDB()
	q := parse.MustQuery("Q(x, y) :- R(x, y)")
	gen := db.Generation()
	db.Relation("R").Insert(relation.Ints(11, 11))
	changes, _ := db.ChangesSince(gen)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := Delta(ctx, q, db, changes, []relation.Tuple{relation.Ints(1, 2)})
	// A pre-cancelled context may or may not be observed on a tiny
	// instance (the poller is throttled); what matters is that an error,
	// when reported, is the context's.
	if err != nil && err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled or nil", err)
	}
}
