// Query/database compatibility checks, surfaced as errors before
// evaluation. The evaluator itself treats a mismatched atom as an internal
// invariant violation (panic); callers that accept user input validate
// first.
package eval

import (
	"fmt"

	"repro/internal/query"
	"repro/internal/relation"
)

// Validate reports whether q can be evaluated over db: every relation atom
// must reference an existing relation with matching arity. (An unknown
// relation is an error rather than an empty answer: in the facade's usage a
// missing table is a user mistake, not a semantic choice.)
func Validate(q *query.Query, db *relation.Database) error {
	return validateFormula(q.Body, db)
}

func validateFormula(f query.Formula, db *relation.Database) error {
	switch n := f.(type) {
	case *query.Atom:
		rel := db.Relation(n.Rel)
		if rel == nil {
			return fmt.Errorf("eval: query references unknown relation %q", n.Rel)
		}
		if got, want := len(n.Args), rel.Schema().Arity(); got != want {
			return fmt.Errorf("eval: atom %s has %d arguments, relation %q has arity %d",
				n.Rel, got, n.Rel, want)
		}
		return nil
	case *query.Cmp:
		return nil
	case *query.And:
		for _, g := range n.Fs {
			if err := validateFormula(g, db); err != nil {
				return err
			}
		}
		return nil
	case *query.Or:
		for _, g := range n.Fs {
			if err := validateFormula(g, db); err != nil {
				return err
			}
		}
		return nil
	case *query.Not:
		return validateFormula(n.F, db)
	case *query.Exists:
		return validateFormula(n.F, db)
	case *query.ForAll:
		return validateFormula(n.F, db)
	default:
		return fmt.Errorf("eval: unknown formula %T", f)
	}
}
