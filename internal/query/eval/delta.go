// Delta evaluation: given the answer set Q(D) materialized at some database
// generation and the journal of tuple-level changes since, compute the
// added/removed answer tuples without re-evaluating the query from scratch.
//
// The incremental path applies to the monotone registered-relation case:
// positive queries (no negation or universal quantification — Identity, CQ,
// UCQ, ∃FO+) that are additionally range-safe, meaning every variable is
// bound by a relation atom so the active-domain fallback never determines
// an answer. For such queries the result is independent of the active
// domain beyond the tuples themselves, inserting base tuples can only add
// answers, and deleting base tuples can only remove them. Added answers
// come from seminaive evaluation — every new derivation must pass through
// at least one inserted tuple, so binding each query atom over a changed
// relation to each inserted tuple and satisfying the rest of the body
// enumerates all of them. Removed answers come from re-checking membership
// of the cached answers, which deletes can only have invalidated.
//
// Everything else — non-monotone queries, domain-dependent comparisons,
// structural changes — reports "not applicable" and the caller falls back
// to full re-evaluation.
package eval

import (
	"context"
	"sort"

	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/value"
)

// DeltaCapable reports whether q's answer set can be maintained
// incrementally from tuple-level change journals. It holds when the query
// is positive (no Not/ForAll anywhere) and range-safe: every variable is
// guaranteed a binding from a relation atom, in every disjunct and under
// every quantifier, so no answer depends on active-domain enumeration. The
// check is static — evaluate it once per prepared query.
func DeltaCapable(q *query.Query) bool {
	bound, ok := rangeSafe(q.Body)
	if !ok {
		return false
	}
	for _, v := range query.FreeVars(q.Body) {
		if !bound[v] {
			return false
		}
	}
	return true
}

// rangeSafe returns the set of variables guaranteed to be bound by relation
// atoms whenever the formula yields an assignment, and whether the formula
// is positive and never resorts to active-domain enumeration for a variable
// that could influence the result.
func rangeSafe(f query.Formula) (map[string]bool, bool) {
	switch n := f.(type) {
	case *query.Atom:
		bound := make(map[string]bool, len(n.Args))
		for _, a := range n.Args {
			if a.IsVar() {
				bound[a.Name] = true
			}
		}
		return bound, true
	case *query.Cmp:
		// Binds nothing itself; its variables must be covered by sibling
		// atoms, which the enclosing scope's free-variable check enforces.
		return map[string]bool{}, true
	case *query.And:
		bound := make(map[string]bool)
		for _, g := range n.Fs {
			gb, ok := rangeSafe(g)
			if !ok {
				return nil, false
			}
			for v := range gb {
				bound[v] = true
			}
		}
		// Every free variable of the conjunction — including those of Cmp
		// conjuncts — must be atom-bound by some conjunct.
		for _, v := range query.FreeVars(n) {
			if !bound[v] {
				return nil, false
			}
		}
		return bound, true
	case *query.Or:
		// Each disjunct must bind every free variable of the disjunction:
		// a variable one branch leaves to the domain makes the result
		// domain-dependent.
		free := query.FreeVars(n)
		var bound map[string]bool
		for _, g := range n.Fs {
			gb, ok := rangeSafe(g)
			if !ok {
				return nil, false
			}
			for _, v := range free {
				if !gb[v] {
					return nil, false
				}
			}
			if bound == nil {
				bound = make(map[string]bool, len(free))
				for _, v := range free {
					bound[v] = true
				}
			}
		}
		if bound == nil {
			bound = map[string]bool{}
		}
		return bound, true
	case *query.Exists:
		inner, ok := rangeSafe(n.F)
		if !ok {
			return nil, false
		}
		for _, v := range n.Vars {
			if !inner[v] {
				return nil, false
			}
		}
		bound := make(map[string]bool, len(inner))
		for v := range inner {
			bound[v] = true
		}
		for _, v := range n.Vars {
			delete(bound, v)
		}
		return bound, true
	default:
		// Not, ForAll, or an unknown node: not monotone.
		return nil, false
	}
}

// DeltaResult is the answer-set delta computed by Delta: tuples that joined
// Q(D) and cached tuples that left it. Added is sorted lexicographically
// and disjoint from old; Removed preserves old's order.
type DeltaResult struct {
	Added   []relation.Tuple
	Removed []relation.Tuple
	// Rechecked counts membership re-verifications performed for deletes,
	// for cost accounting.
	Rechecked int
}

// Delta computes the delta of Q(D) across the journaled changes, given the
// answer set old materialized before them. It reports ok = false — and does
// no work — when the incremental path does not apply: the query is not
// DeltaCapable, or a change touches a relation in a way the seminaive step
// cannot handle. On ok, applying the delta to old yields exactly the
// current Q(D): old − Removed + Added (Added sorted, disjoint from old).
//
// Cost: O(Σ per-insert restricted evaluations) for inserts — each binds one
// atom to the inserted tuple and joins the rest of the body, so selective
// queries pay far less than a full re-evaluation — plus, only when deletes
// touch a relation the query mentions, one membership re-check per cached
// answer.
func Delta(ctx context.Context, q *query.Query, db *relation.Database, changes []relation.Change, old []relation.Tuple) (DeltaResult, bool, error) {
	var res DeltaResult
	if !DeltaCapable(q) {
		return res, false, nil
	}
	atomsByRel := collectAtoms(q.Body)
	// Partition the journal. Inserts into relations the query never
	// mentions cannot create answers (range-safety makes the result
	// domain-independent), and deletes there cannot remove any.
	var inserts []relation.Change
	deletes := false
	for _, c := range changes {
		if len(atomsByRel[c.Rel]) == 0 {
			continue
		}
		switch c.Op {
		case relation.OpInsert:
			inserts = append(inserts, c)
		case relation.OpDelete:
			deletes = true
		default:
			return res, false, nil
		}
	}

	e := New(q, db).WithContext(ctx)

	// Removals: deletes can only shrink a monotone answer set, and any
	// cached answer may have lost its last derivation — re-verify each.
	removedKeys := map[string]bool{}
	if deletes {
		for _, t := range old {
			res.Rechecked++
			if !e.Member(t) {
				if err := e.Err(); err != nil {
					return DeltaResult{}, false, err
				}
				res.Removed = append(res.Removed, t)
				removedKeys[t.Key()] = true
			}
		}
		if err := e.Err(); err != nil {
			return DeltaResult{}, false, err
		}
	}

	// Additions: seminaive step. Any answer new since the watermark has a
	// derivation through at least one inserted tuple; force each atom over
	// the tuple's relation to that tuple and enumerate the rest.
	if len(inserts) > 0 {
		oldKeys := make(map[string]bool, len(old))
		for _, t := range old {
			oldKeys[t.Key()] = true
		}
		seen := map[string]bool{}
		for _, c := range inserts {
			for _, a := range atomsByRel[c.Rel] {
				ok := e.bindAtom(a, c.Tuple, func(t relation.Tuple) bool {
					k := t.Key()
					if seen[k] || (oldKeys[k] && !removedKeys[k]) {
						return true
					}
					seen[k] = true
					res.Added = append(res.Added, t.Clone())
					return true
				})
				if !ok {
					if err := e.Err(); err != nil {
						return DeltaResult{}, false, err
					}
				}
			}
		}
		sort.Slice(res.Added, func(i, j int) bool { return res.Added[i].Compare(res.Added[j]) < 0 })
	}
	return res, true, nil
}

// collectAtoms groups the body's relation atoms by relation name.
func collectAtoms(f query.Formula) map[string][]*query.Atom {
	out := make(map[string][]*query.Atom)
	var walk func(query.Formula)
	walk = func(f query.Formula) {
		switch n := f.(type) {
		case *query.Atom:
			out[n.Rel] = append(out[n.Rel], n)
		case *query.And:
			for _, g := range n.Fs {
				walk(g)
			}
		case *query.Or:
			for _, g := range n.Fs {
				walk(g)
			}
		case *query.Not:
			walk(n.F)
		case *query.Exists:
			walk(n.F)
		case *query.ForAll:
			walk(n.F)
		}
	}
	walk(f)
	return out
}

// bindAtom pre-binds atom a's variable arguments to tuple t's fields and
// enumerates satisfying assignments of the whole query body under that
// restriction, emitting the head tuple of each. Constant or already-bound
// arguments that mismatch t make the restriction unsatisfiable (no
// derivation routes t through a) and emit nothing. Variables quantified
// above a are shadowed inside their quantifier, so the restriction may
// under-constrain there — the enumeration then yields a superset of the
// derivations through (a, t), which is sound: every yield satisfies the
// body. It reports whether enumeration ran to completion.
func (e *Evaluator) bindAtom(a *query.Atom, t relation.Tuple, emit func(relation.Tuple) bool) bool {
	if len(a.Args) != len(t) {
		return true
	}
	slots := e.argSlotsOf(a)
	var newly []int
	defer func() {
		for _, s := range newly {
			e.bound[s] = false
		}
	}()
	for i, arg := range a.Args {
		s := slots[i]
		if s < 0 {
			if !value.Equal(arg.Value, t[i]) {
				return true
			}
			continue
		}
		if e.bound[s] {
			if !value.Equal(e.vals[s], t[i]) {
				return true
			}
			continue
		}
		e.vals[s] = t[i]
		e.bound[s] = true
		newly = append(newly, s)
	}
	return e.satisfy(e.q.Body, func() bool {
		return emit(e.headTuple())
	})
}
