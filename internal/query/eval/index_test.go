package eval

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/value"
)

// randomJoinDB builds relations R(a,b), S(b,c), T(c) with random integer
// data in a small domain so joins hit and miss.
func randomJoinDB(rng *rand.Rand, n, dom int) *relation.Database {
	db := relation.NewDatabase()
	r := relation.NewRelation(relation.NewSchema("R", "a", "b"))
	s := relation.NewRelation(relation.NewSchema("S", "b", "c"))
	tt := relation.NewRelation(relation.NewSchema("T", "c"))
	for i := 0; i < n; i++ {
		r.Insert(relation.Tuple{value.Int(int64(rng.Intn(dom))), value.Int(int64(rng.Intn(dom)))})
		s.Insert(relation.Tuple{value.Int(int64(rng.Intn(dom))), value.Int(int64(rng.Intn(dom)))})
		tt.Insert(relation.Tuple{value.Int(int64(rng.Intn(dom)))})
	}
	return db.Add(r).Add(s).Add(tt)
}

// randomQuery produces one of several shapes exercising joins, filters,
// disjunction, negation and quantifiers.
func randomQuery(rng *rand.Rand) *query.Query {
	c := int64(rng.Intn(6))
	switch rng.Intn(6) {
	case 0: // chain join
		return query.MustNew("Q", []string{"a", "c"}, &query.And{Fs: []query.Formula{
			&query.Atom{Rel: "R", Args: []query.Term{query.V("a"), query.V("b")}},
			&query.Atom{Rel: "S", Args: []query.Term{query.V("b"), query.V("c")}},
		}})
	case 1: // join with comparison filter
		return query.MustNew("Q", []string{"a"}, &query.And{Fs: []query.Formula{
			&query.Atom{Rel: "R", Args: []query.Term{query.V("a"), query.V("b")}},
			&query.Cmp{Op: query.LE, L: query.V("b"), R: query.CInt(c)},
		}})
	case 2: // triangle-ish with constant
		return query.MustNew("Q", []string{"b"}, &query.And{Fs: []query.Formula{
			&query.Atom{Rel: "R", Args: []query.Term{query.CInt(c), query.V("b")}},
			&query.Atom{Rel: "S", Args: []query.Term{query.V("b"), query.V("c")}},
			&query.Atom{Rel: "T", Args: []query.Term{query.V("c")}},
		}})
	case 3: // union
		return query.MustNew("Q", []string{"x"}, &query.Or{Fs: []query.Formula{
			&query.Exists{Vars: []string{"y"}, F: &query.Atom{Rel: "R", Args: []query.Term{query.V("x"), query.V("y")}}},
			&query.Atom{Rel: "T", Args: []query.Term{query.V("x")}},
		}})
	case 4: // negation (FO)
		return query.MustNew("Q", []string{"a", "b"}, &query.And{Fs: []query.Formula{
			&query.Atom{Rel: "R", Args: []query.Term{query.V("a"), query.V("b")}},
			&query.Not{F: &query.Atom{Rel: "S", Args: []query.Term{query.V("a"), query.V("b")}}},
		}})
	default: // universal guard (FO)
		return query.MustNew("Q", []string{"a"}, &query.And{Fs: []query.Formula{
			&query.Atom{Rel: "R", Args: []query.Term{query.V("a"), query.V("b")}},
			&query.ForAll{Vars: []string{"z"}, F: &query.Not{F: &query.And{Fs: []query.Formula{
				&query.Atom{Rel: "T", Args: []query.Term{query.V("z")}},
				&query.Cmp{Op: query.EQ, L: query.V("z"), R: query.V("a")},
			}}}},
		}})
	}
}

// TestOptimizerEquivalence is the optimizer's safety property: for random
// databases and query shapes, the fully optimized evaluator, the
// index-only, the reorder-only and the naive evaluator produce identical
// answer sets.
func TestOptimizerEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	configs := []Options{
		{},
		{NoIndex: true},
		{NoReorder: true},
		{NoIndex: true, NoReorder: true},
	}
	for trial := 0; trial < 60; trial++ {
		db := randomJoinDB(rng, 4+rng.Intn(24), 2+rng.Intn(6))
		q := randomQuery(rng)
		var baseline []relation.Tuple
		for ci, opts := range configs {
			got := NewWithOptions(q, db, opts).Result().Sorted()
			if ci == 0 {
				baseline = got
				continue
			}
			if len(got) != len(baseline) {
				t.Fatalf("trial %d config %+v: %d answers, baseline %d (query %s)",
					trial, opts, len(got), len(baseline), q)
			}
			for i := range got {
				if !got[i].Equal(baseline[i]) {
					t.Fatalf("trial %d config %+v: answer %d differs: %v vs %v",
						trial, opts, i, got[i], baseline[i])
				}
			}
		}
	}
}

func TestIndexProbeUsesSmallestBucket(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := randomJoinDB(rng, 200, 4)
	e := New(query.IdentityQueryNamed("R", []string{"a", "b"}), db)
	rel := db.Relation("R")
	a := &query.Atom{Rel: "R", Args: []query.Term{query.V("x"), query.V("y")}}
	// Unbound: full scan.
	if got := e.probe(a, rel); len(got) != rel.Len() {
		t.Errorf("unbound probe = %d tuples, want full %d", len(got), rel.Len())
	}
	// Bound first column: only that bucket.
	bindVar(e, "x", value.Int(1))
	bucket := e.probe(a, rel)
	if len(bucket) == 0 || len(bucket) >= rel.Len() {
		t.Fatalf("bound probe = %d of %d", len(bucket), rel.Len())
	}
	for _, tp := range bucket {
		if !value.Equal(tp[0], value.Int(1)) {
			t.Errorf("bucket tuple %v does not match binding", tp)
		}
	}
	// A constant argument also probes.
	ac := &query.Atom{Rel: "R", Args: []query.Term{query.CInt(2), query.V("y")}}
	unbindVar(e, "x")
	for _, tp := range e.probe(ac, rel) {
		if !value.Equal(tp[0], value.Int(2)) {
			t.Errorf("constant probe leaked %v", tp)
		}
	}
}

func TestIndexMissYieldsEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	db := randomJoinDB(rng, 10, 3)
	e := New(query.IdentityQueryNamed("R", []string{"a", "b"}), db)
	a := &query.Atom{Rel: "R", Args: []query.Term{query.V("x"), query.V("y")}}
	bindVar(e, "x", value.Int(999))
	if got := e.probe(a, db.Relation("R")); len(got) != 0 {
		t.Errorf("missing key returned %d tuples", len(got))
	}
}

func TestConjunctCostOrdersFiltersFirst(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	db := randomJoinDB(rng, 50, 4)
	e := New(query.IdentityQueryNamed("R", []string{"a", "b"}), db)
	boundCmp := &query.Cmp{Op: query.LT, L: query.V("x"), R: query.CInt(3)}
	atom := &query.Atom{Rel: "R", Args: []query.Term{query.V("x"), query.V("y")}}
	bindVar(e, "x", value.Int(1))
	if e.conjunctCost(boundCmp) >= e.conjunctCost(atom) {
		t.Error("bound comparison should cost less than an atom scan")
	}
	// Unbound comparisons are domain enumerations: dead last.
	unboundCmp := &query.Cmp{Op: query.LT, L: query.V("w"), R: query.CInt(3)}
	if e.conjunctCost(unboundCmp) <= e.conjunctCost(atom) {
		t.Error("unbound comparison should cost more than an atom scan")
	}
	fs := []query.Formula{unboundCmp, atom, boundCmp}
	sim := map[int]bool{e.slot("x"): true}
	if i := e.nextConjunct(fs, make([]bool, 3), sim); i != 2 {
		t.Errorf("nextConjunct picked %d, want the bound filter (2)", i)
	}
	// The memoized planner must produce the same order on repeat visits.
	and := &query.And{Fs: fs}
	first := e.plan(and)
	second := e.plan(and)
	if len(first) != 3 || &first[0] == nil || len(second) != 3 {
		t.Fatal("planner broke")
	}
	for i := range first {
		if first[i] != second[i] {
			t.Error("plan not memoized deterministically")
		}
	}
	if first[0] != query.Formula(boundCmp) {
		t.Errorf("plan starts with %T, want the bound filter", first[0])
	}
}

func TestNewWithOptionsDisables(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	db := randomJoinDB(rng, 20, 4)
	q := query.IdentityQueryNamed("R", []string{"a", "b"})
	e := NewWithOptions(q, db, Options{NoIndex: true, NoReorder: true})
	if !e.noIndex || !e.noReorder {
		t.Error("options not applied")
	}
	// probe must fall back to a full scan.
	a := &query.Atom{Rel: "R", Args: []query.Term{query.V("x"), query.V("y")}}
	bindVar(e, "x", value.Int(1))
	if got := e.probe(a, db.Relation("R")); len(got) != db.Relation("R").Len() {
		t.Error("NoIndex probe should scan fully")
	}
}

// TestIndexedJoinMatchesNestedLoopOnChain pins a concrete join: R ⋈ S on b.
func TestIndexedJoinMatchesNestedLoopOnChain(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.NewRelation(relation.NewSchema("R", "a", "b"))
	s := relation.NewRelation(relation.NewSchema("S", "b", "c"))
	for i := int64(0); i < 5; i++ {
		r.Insert(relation.Tuple{value.Int(i), value.Int(i % 3)})
		s.Insert(relation.Tuple{value.Int(i % 3), value.Int(10 + i)})
	}
	db.Add(r).Add(s)
	q := query.MustNew("Q", []string{"a", "c"}, &query.And{Fs: []query.Formula{
		&query.Atom{Rel: "R", Args: []query.Term{query.V("a"), query.V("b")}},
		&query.Atom{Rel: "S", Args: []query.Term{query.V("b"), query.V("c")}},
	}})
	want := make(map[string]bool)
	for _, rt := range r.Tuples() {
		for _, st := range s.Tuples() {
			if value.Equal(rt[1], st[0]) {
				want[fmt.Sprintf("%v|%v", rt[0], st[1])] = true
			}
		}
	}
	got := Evaluate(q, db).Sorted()
	if len(got) != len(want) {
		t.Fatalf("join produced %d tuples, want %d", len(got), len(want))
	}
	for _, tp := range got {
		if !want[fmt.Sprintf("%v|%v", tp[0], tp[1])] {
			t.Errorf("unexpected join tuple %v", tp)
		}
	}
}

// bindVar pins a variable to a constant in the evaluator's slot table,
// interning the name if needed (test helper).
func bindVar(e *Evaluator, name string, v value.Value) {
	s := e.slot(name)
	e.vals[s] = v
	e.bound[s] = true
}

// unbindVar clears a variable's binding (test helper).
func unbindVar(e *Evaluator, name string) {
	if s, ok := e.slots[name]; ok {
		e.bound[s] = false
	}
}
