// Package eval evaluates queries over databases. It implements the
// semantics the paper assumes: set answers Q(D), active-domain semantics for
// quantifiers (variables range over the constants of D plus those of Q), and
// the membership test t ∈ Q(D) used throughout the upper-bound proofs.
//
// The evaluator is generative where it can be — relation atoms bind
// variables by scanning tuples (through per-column hash indexes when an
// argument is already bound), so conjunctive queries evaluate as
// backtracking joins — and falls back to active-domain enumeration for
// variables constrained only by comparisons, negation or universal
// quantification. This mirrors the paper's complexity landscape: CQ/UCQ/∃FO+
// evaluation explores joins (NP combined complexity), while full FO may
// enumerate the domain per quantifier (PSPACE combined complexity), and any
// fixed query is polynomial in |D| (the data-complexity setting).
//
// Variable assignments live in a slot array indexed by a per-query variable
// table, mutated and restored along the backtracking search; no maps are
// allocated on the evaluation path.
package eval

import (
	"context"
	"fmt"

	"repro/internal/ctxpoll"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/value"
)

// Evaluator evaluates queries against one database. It precomputes the
// evaluation domain (active domain of D extended with the query constants)
// and a slot table assigning each variable name a position in the binding
// array.
type Evaluator struct {
	db     *relation.Database
	q      *query.Query
	domain []value.Value
	extra  []string // free body variables not in the head: implicitly ∃

	slots     map[string]int // variable name → binding slot
	vals      []value.Value  // slot values (valid where bound)
	bound     []bool         // slot bound flags
	headSlots []int

	// indexes caches lazily built per-column hash indexes (see index.go).
	indexes map[indexKey]colIndex
	// freeVars memoizes free-variable slot lists per formula node for the
	// conjunct-ordering cost model and for grounding.
	freeVars map[query.Formula][]int
	// atomSlots memoizes per-atom argument slots (-1 for constants).
	atomSlots map[*query.Atom][]int
	// plans memoizes per-And conjunct orders keyed by the bound pattern of
	// the node's free variables (see plan in index.go).
	plans map[*query.And]map[string][]query.Formula

	// noIndex and noReorder disable the index probes and dynamic conjunct
	// ordering; used by tests and the optimizer ablation benchmarks.
	noIndex, noReorder bool

	// poller is sampled along the backtracking search so that exponential
	// evaluations (deep quantifier nesting, large domains) can be
	// cancelled. A cancelled evaluation stops enumerating; the cause is in
	// poller.Err.
	poller *ctxpoll.Poller
}

// Options configures an Evaluator; the zero value enables all
// optimizations.
type Options struct {
	// NoIndex forces full relation scans for every atom.
	NoIndex bool
	// NoReorder evaluates conjuncts in the static generators-then-filters
	// order instead of the dynamic most-bound-first order.
	NoReorder bool
}

// New prepares an evaluator for q over db.
func New(q *query.Query, db *relation.Database) *Evaluator {
	seen := make(map[string]bool)
	dom := db.ActiveDomain()
	for _, v := range dom {
		seen[v.Key()] = true
	}
	for _, v := range q.Constants() {
		if !seen[v.Key()] {
			seen[v.Key()] = true
			dom = append(dom, v)
		}
	}
	head := make(map[string]bool, len(q.Head))
	for _, h := range q.Head {
		head[h] = true
	}
	var extra []string
	for _, v := range query.FreeVars(q.Body) {
		if !head[v] {
			extra = append(extra, v)
		}
	}
	e := &Evaluator{db: db, q: q, domain: dom, extra: extra, slots: make(map[string]int)}
	for _, h := range q.Head {
		e.slot(h)
	}
	collectVars(q.Body, e.slot)
	e.vals = make([]value.Value, len(e.slots))
	e.bound = make([]bool, len(e.slots))
	e.headSlots = make([]int, len(q.Head))
	for i, h := range q.Head {
		e.headSlots[i] = e.slots[h]
	}
	e.freeVars = make(map[query.Formula][]int)
	e.atomSlots = make(map[*query.Atom][]int)
	return e
}

// NewWithOptions prepares an evaluator with explicit optimizer settings.
func NewWithOptions(q *query.Query, db *relation.Database, opts Options) *Evaluator {
	e := New(q, db)
	e.noIndex = opts.NoIndex
	e.noReorder = opts.NoReorder
	return e
}

// slot interns a variable name, allocating its binding slot on first sight.
// Names interned after construction (formulas not part of the query, as the
// tests build) grow the binding arrays.
func (e *Evaluator) slot(name string) int {
	if s, ok := e.slots[name]; ok {
		return s
	}
	s := len(e.slots)
	e.slots[name] = s
	if e.vals != nil {
		e.vals = append(e.vals, value.Value{})
		e.bound = append(e.bound, false)
	}
	return s
}

// collectVars walks the formula calling add for every variable occurrence,
// including quantified ones (shadowing shares the slot; quantifier
// save/restore keeps the semantics straight).
func collectVars(f query.Formula, add func(string) int) {
	switch n := f.(type) {
	case *query.Atom:
		for _, a := range n.Args {
			if a.IsVar() {
				add(a.Name)
			}
		}
	case *query.Cmp:
		if n.L.IsVar() {
			add(n.L.Name)
		}
		if n.R.IsVar() {
			add(n.R.Name)
		}
	case *query.And:
		for _, g := range n.Fs {
			collectVars(g, add)
		}
	case *query.Or:
		for _, g := range n.Fs {
			collectVars(g, add)
		}
	case *query.Not:
		collectVars(n.F, add)
	case *query.Exists:
		for _, v := range n.Vars {
			add(v)
		}
		collectVars(n.F, add)
	case *query.ForAll:
		for _, v := range n.Vars {
			add(v)
		}
		collectVars(n.F, add)
	default:
		panic(fmt.Sprintf("eval: unknown formula %T", f))
	}
}

// freeSlotsOf returns the slots of the formula's free variables, memoized
// per formula node.
func (e *Evaluator) freeSlotsOf(f query.Formula) []int {
	if fv, ok := e.freeVars[f]; ok {
		return fv
	}
	names := query.FreeVars(f)
	fv := make([]int, len(names))
	for i, n := range names {
		fv[i] = e.slot(n)
	}
	e.freeVars[f] = fv
	return fv
}

// argSlotsOf returns the atom's argument slots (-1 for constants),
// memoized per atom node.
func (e *Evaluator) argSlotsOf(a *query.Atom) []int {
	if s, ok := e.atomSlots[a]; ok {
		return s
	}
	s := make([]int, len(a.Args))
	for i, arg := range a.Args {
		if arg.IsVar() {
			s[i] = e.slot(arg.Name)
		} else {
			s[i] = -1
		}
	}
	e.atomSlots[a] = s
	return s
}

// term resolves a term to a constant under the current binding.
func (e *Evaluator) term(t query.Term) (value.Value, bool) {
	if !t.IsVar() {
		return t.Value, true
	}
	s, ok := e.slots[t.Name]
	if !ok || !e.bound[s] {
		return value.Value{}, false
	}
	return e.vals[s], true
}

// WithContext arms the evaluator with a cancellation context, polled
// periodically along the backtracking search. It returns the evaluator for
// chaining. After a run, Err reports whether the context cut it short.
func (e *Evaluator) WithContext(ctx context.Context) *Evaluator {
	e.poller = ctxpoll.New(ctx)
	return e
}

// Err returns the context error that interrupted the last run, or nil when
// the run was completed (or never cancelled).
func (e *Evaluator) Err() error {
	if e.poller == nil {
		return nil
	}
	return e.poller.Err()
}

// interrupted reports whether evaluation must stop.
func (e *Evaluator) interrupted() bool {
	return e.poller != nil && e.poller.Stop()
}

// Evaluate computes the full answer set Q(D) as a relation whose schema has
// one attribute per head variable.
func Evaluate(q *query.Query, db *relation.Database) *relation.Relation {
	return New(q, db).Result()
}

// EvaluateContext computes Q(D) under a cancellation context; it returns
// ctx's error (and no relation) when evaluation was interrupted.
func EvaluateContext(ctx context.Context, q *query.Query, db *relation.Database) (*relation.Relation, error) {
	e := New(q, db).WithContext(ctx)
	res := e.Result()
	if err := e.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// Result computes Q(D).
func (e *Evaluator) Result() *relation.Relation {
	out := relation.NewRelation(relation.NewSchema(e.q.Name, e.q.Head...))
	e.satisfy(e.q.Body, func() bool {
		out.Insert(e.headTuple())
		return true
	})
	return out
}

// headTuple materializes the current binding of the head variables.
func (e *Evaluator) headTuple() relation.Tuple {
	t := make(relation.Tuple, len(e.headSlots))
	for i, s := range e.headSlots {
		if !e.bound[s] {
			panic(fmt.Sprintf("eval: head variable %q unbound by satisfy", e.q.Head[i]))
		}
		t[i] = e.vals[s]
	}
	return t
}

// Stream enumerates distinct answers of Q(D) as they are discovered,
// without materializing the full answer set, invoking yield for each new
// tuple. yield returning false stops evaluation — the hook that lets
// diversification terminate early once a satisfactory set is found, the
// paper's Section 1 motivation for taking (Q, D) rather than Q(D) as input.
// It reports whether enumeration ran to completion.
func (e *Evaluator) Stream(yield func(relation.Tuple) bool) bool {
	seen := make(map[string]bool)
	return e.satisfy(e.q.Body, func() bool {
		t := e.headTuple()
		k := t.Key()
		if seen[k] {
			return true
		}
		seen[k] = true
		return yield(t)
	})
}

// Member reports whether t ∈ Q(D) without materializing the full answer.
// Non-head free variables of the body are existentially quantified.
func (e *Evaluator) Member(t relation.Tuple) bool {
	if len(t) != e.q.Arity() {
		return false
	}
	for i, s := range e.headSlots {
		e.vals[s] = t[i]
		e.bound[s] = true
	}
	defer func() {
		for _, s := range e.headSlots {
			e.bound[s] = false
		}
	}()
	body := e.q.Body
	if len(e.extra) > 0 {
		body = &query.Exists{Vars: e.extra, F: body}
	}
	return e.truth(body)
}

// Member is a convenience wrapper constructing a one-shot evaluator.
func Member(q *query.Query, db *relation.Database, t relation.Tuple) bool {
	return New(q, db).Member(t)
}

// Domain exposes the evaluation domain (active domain plus query constants).
func (e *Evaluator) Domain() []value.Value { return e.domain }

// satisfy enumerates assignments over the free variables of f, extending
// the current binding, that satisfy f, invoking yield for each. yield
// returning false stops the enumeration; satisfy reports whether
// enumeration ran to completion. The binding is restored before satisfy
// returns.
func (e *Evaluator) satisfy(f query.Formula, yield func() bool) bool {
	switch n := f.(type) {
	case *query.Atom:
		return e.satisfyAtom(n, yield)
	case *query.Cmp:
		return e.bindFree(f, func() bool {
			l, _ := e.term(n.L)
			r, _ := e.term(n.R)
			if n.Op.Eval(l, r) {
				return yield()
			}
			return true
		})
	case *query.And:
		if e.noReorder {
			return e.satisfyAnd(orderConjuncts(n.Fs), 0, yield)
		}
		return e.satisfyAnd(e.plan(n), 0, yield)
	case *query.Or:
		for _, g := range n.Fs {
			ok := e.satisfy(g, func() bool {
				// Assign the disjunction's remaining free variables so
				// every yielded assignment covers all free vars of f.
				return e.bindFree(f, yield)
			})
			if !ok {
				return false
			}
		}
		return true
	case *query.Not, *query.ForAll:
		// Pure filters: ground the free variables, then test truth.
		return e.bindFree(f, func() bool {
			if e.truth(f) {
				return yield()
			}
			return true
		})
	case *query.Exists:
		return e.satisfyExists(n, yield)
	default:
		panic(fmt.Sprintf("eval: unknown formula %T", f))
	}
}

func (e *Evaluator) satisfyAtom(a *query.Atom, yield func() bool) bool {
	rel := e.db.Relation(a.Rel)
	if rel == nil {
		return true // empty relation: no satisfying assignments
	}
	if len(a.Args) != rel.Schema().Arity() {
		panic(fmt.Sprintf("eval: atom %s has arity %d, relation has %d", a.Rel, len(a.Args), rel.Schema().Arity()))
	}
	slots := e.argSlotsOf(a)
	var newly []int // slots bound by this atom, to unbind per tuple
scan:
	for _, t := range e.probe(a, rel) {
		if e.interrupted() {
			return false
		}
		newly = newly[:0]
		ok := true
		for i, arg := range a.Args {
			s := slots[i]
			if s < 0 {
				if !value.Equal(arg.Value, t[i]) {
					ok = false
					break
				}
				continue
			}
			if e.bound[s] {
				if !value.Equal(e.vals[s], t[i]) {
					ok = false
					break
				}
				continue
			}
			e.vals[s] = t[i]
			e.bound[s] = true
			newly = append(newly, s)
		}
		if !ok {
			for _, s := range newly {
				e.bound[s] = false
			}
			continue scan
		}
		cont := yield()
		for _, s := range newly {
			e.bound[s] = false
		}
		if !cont {
			return false
		}
	}
	return true
}

func (e *Evaluator) satisfyAnd(fs []query.Formula, i int, yield func() bool) bool {
	if i == len(fs) {
		return yield()
	}
	return e.satisfy(fs[i], func() bool {
		return e.satisfyAnd(fs, i+1, yield)
	})
}

// satisfyExists enumerates witnesses of the quantified body. Quantified
// variables shadow outer bindings: the outer slot state is saved and
// cleared for the inner enumeration, and restored — with the inner
// witnesses hidden — around each yield to the continuation.
func (e *Evaluator) satisfyExists(n *query.Exists, yield func() bool) bool {
	outer := e.saveSlots(n.Vars)
	e.clearSlots(n.Vars)
	ok := e.satisfy(n.F, func() bool {
		inner := e.saveSlots(n.Vars)
		e.restoreSlots(n.Vars, outer)
		cont := yield()
		e.restoreSlots(n.Vars, inner)
		return cont
	})
	e.restoreSlots(n.Vars, outer)
	return ok
}

// slotState is a saved (value, bound) snapshot for quantifier shadowing.
type slotState struct {
	vals  []value.Value
	bound []bool
}

func (e *Evaluator) saveSlots(vars []string) slotState {
	st := slotState{vals: make([]value.Value, len(vars)), bound: make([]bool, len(vars))}
	for i, v := range vars {
		s := e.slots[v]
		st.vals[i] = e.vals[s]
		st.bound[i] = e.bound[s]
	}
	return st
}

func (e *Evaluator) clearSlots(vars []string) {
	for _, v := range vars {
		e.bound[e.slots[v]] = false
	}
}

func (e *Evaluator) restoreSlots(vars []string, st slotState) {
	for i, v := range vars {
		s := e.slots[v]
		e.vals[s] = st.vals[i]
		e.bound[s] = st.bound[i]
	}
}

// bindFree extends the binding with active-domain values for every free
// variable of f not yet bound, invoking yield for each grounding, and
// restores the binding afterwards.
func (e *Evaluator) bindFree(f query.Formula, yield func() bool) bool {
	var unbound []int
	for _, s := range e.freeSlotsOf(f) {
		if !e.bound[s] {
			unbound = append(unbound, s)
		}
	}
	if len(unbound) == 0 {
		return yield()
	}
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(unbound) {
			return yield()
		}
		s := unbound[i]
		e.bound[s] = true
		for _, v := range e.domain {
			if e.interrupted() {
				e.bound[s] = false
				return false
			}
			e.vals[s] = v
			if !rec(i + 1) {
				e.bound[s] = false
				return false
			}
		}
		e.bound[s] = false
		return true
	}
	return rec(0)
}

// truth decides f under a binding that covers all of f's free variables.
func (e *Evaluator) truth(f query.Formula) bool {
	switch n := f.(type) {
	case *query.Atom:
		rel := e.db.Relation(n.Rel)
		if rel == nil {
			return false
		}
		t := make(relation.Tuple, len(n.Args))
		for i, arg := range n.Args {
			v, ok := e.term(arg)
			if !ok {
				panic(fmt.Sprintf("eval: truth of %s with unbound %s", f, arg.Name))
			}
			t[i] = v
		}
		return rel.Contains(t)
	case *query.Cmp:
		l, lok := e.term(n.L)
		r, rok := e.term(n.R)
		if !lok || !rok {
			panic(fmt.Sprintf("eval: truth of %s with unbound term", f))
		}
		return n.Op.Eval(l, r)
	case *query.And:
		for _, g := range n.Fs {
			if !e.truth(g) {
				return false
			}
		}
		return true
	case *query.Or:
		for _, g := range n.Fs {
			if e.truth(g) {
				return true
			}
		}
		return false
	case *query.Not:
		return !e.truth(n.F)
	case *query.Exists:
		// Evaluate generatively: satisfy drives quantified variables from
		// relation atoms where possible instead of grounding domain^|vars|.
		return e.witness(n.Vars, n.F)
	case *query.ForAll:
		// ∀x̄ φ ≡ ¬∃x̄ ¬φ; negate eliminates a double negation so the
		// common guard pattern ∀x̄ ¬(R(x̄) ∧ ...) evaluates as a join scan.
		return !e.witness(n.Vars, negate(n.F))
	default:
		panic(fmt.Sprintf("eval: unknown formula %T", f))
	}
}

// witness reports whether some assignment of vars (over the evaluation
// domain) extends the current binding to satisfy f. It reuses the
// generative satisfy machinery, which binds variables from relation tuples
// when atoms mention them and falls back to active-domain enumeration
// otherwise.
func (e *Evaluator) witness(vars []string, f query.Formula) bool {
	outer := e.saveSlots(vars)
	e.clearSlots(vars)
	found := false
	e.satisfy(f, func() bool {
		found = true
		return false
	})
	e.restoreSlots(vars, outer)
	return found
}

// negate returns ¬f, simplifying a leading negation away.
func negate(f query.Formula) query.Formula {
	if n, ok := f.(*query.Not); ok {
		return n.F
	}
	return &query.Not{F: f}
}

// orderConjuncts places generator formulas (atoms and positive composites)
// before filters (comparisons, negation, universals) so the backtracking
// join binds variables cheaply before testing them. Purely a performance
// reordering; filters enumerate the active domain for any variable still
// unbound, so correctness does not depend on order.
func orderConjuncts(fs []query.Formula) []query.Formula {
	gens := make([]query.Formula, 0, len(fs))
	var filters []query.Formula
	for _, f := range fs {
		switch f.(type) {
		case *query.Cmp, *query.Not, *query.ForAll:
			filters = append(filters, f)
		default:
			gens = append(gens, f)
		}
	}
	return append(gens, filters...)
}
