package eval

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/query"
)

func TestValidateAcceptsWellFormed(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	db := randomJoinDB(rng, 5, 3)
	for trial := 0; trial < 12; trial++ {
		q := randomQuery(rng)
		if err := Validate(q, db); err != nil {
			t.Errorf("well-formed query rejected: %v (%s)", err, q)
		}
	}
}

func TestValidateRejectsUnknownRelation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	db := randomJoinDB(rng, 5, 3)
	q := query.MustNew("Q", []string{"x"},
		&query.Atom{Rel: "Nope", Args: []query.Term{query.V("x")}})
	err := Validate(q, db)
	if err == nil || !strings.Contains(err.Error(), "unknown relation") {
		t.Errorf("unknown relation not rejected: %v", err)
	}
}

func TestValidateRejectsArityMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := randomJoinDB(rng, 5, 3)
	q := query.MustNew("Q", []string{"x"},
		&query.Atom{Rel: "R", Args: []query.Term{query.V("x")}}) // R is binary
	err := Validate(q, db)
	if err == nil || !strings.Contains(err.Error(), "arity") {
		t.Errorf("arity mismatch not rejected: %v", err)
	}
}

func TestValidateDescendsIntoComposites(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	db := randomJoinDB(rng, 5, 3)
	bad := &query.Atom{Rel: "R", Args: []query.Term{query.V("x")}}
	shapes := []query.Formula{
		&query.And{Fs: []query.Formula{bad}},
		&query.Or{Fs: []query.Formula{bad}},
		&query.Not{F: bad},
		&query.Exists{Vars: []string{"x"}, F: bad},
		&query.ForAll{Vars: []string{"x"}, F: bad},
	}
	for _, f := range shapes {
		q := query.MustNew("Q", []string{"y"}, &query.And{Fs: []query.Formula{
			&query.Atom{Rel: "T", Args: []query.Term{query.V("y")}}, f,
		}})
		if Validate(q, db) == nil {
			t.Errorf("mismatch not caught under %T", f)
		}
	}
}
