// Package query defines the abstract syntax of the four relational query
// languages studied in the paper — conjunctive queries (CQ), unions of
// conjunctive queries (UCQ), positive existential FO (∃FO+), and first-order
// logic (FO) — all with the built-in predicates =, !=, <, <=, >, >=, plus the
// identity queries of Section 8. It also classifies a query into the least
// expressive of those languages, which is what parameterizes every
// complexity result in the paper.
package query

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/value"
)

// Language enumerates the query language classes of Section 4.1, ordered by
// expressiveness. Identity ⊂ CQ ⊂ UCQ ⊂ ∃FO+ ⊂ FO.
type Language int

// The language classes.
const (
	Identity Language = iota
	CQ
	UCQ
	EFOPlus
	FO
)

// String returns the paper's name for the language.
func (l Language) String() string {
	switch l {
	case Identity:
		return "identity"
	case CQ:
		return "CQ"
	case UCQ:
		return "UCQ"
	case EFOPlus:
		return "∃FO+"
	case FO:
		return "FO"
	default:
		return fmt.Sprintf("Language(%d)", int(l))
	}
}

// Includes reports whether language l contains language m (every m-query is
// an l-query).
func (l Language) Includes(m Language) bool { return m <= l }

// Term is a variable or constant argument of an atom or comparison.
type Term struct {
	// Name is non-empty for variables.
	Name string
	// Value holds the constant when Name is empty.
	Value value.Value
}

// V makes a variable term.
func V(name string) Term { return Term{Name: name} }

// C makes a constant term.
func C(v value.Value) Term { return Term{Value: v} }

// CInt makes an integer constant term.
func CInt(i int64) Term { return C(value.Int(i)) }

// CStr makes a string constant term.
func CStr(s string) Term { return C(value.Str(s)) }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Name != "" }

// String renders the term.
func (t Term) String() string {
	if t.IsVar() {
		return t.Name
	}
	if t.Value.Kind() == value.KindString {
		return fmt.Sprintf("%q", t.Value.AsString())
	}
	return t.Value.String()
}

// CmpOp is a built-in comparison predicate.
type CmpOp int

// The six built-in predicates available in all languages.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

// String renders the operator.
func (op CmpOp) String() string {
	switch op {
	case EQ:
		return "="
	case NE:
		return "!="
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	default:
		return "?"
	}
}

// Eval applies the comparison to two constants.
func (op CmpOp) Eval(a, b value.Value) bool {
	c := value.Compare(a, b)
	switch op {
	case EQ:
		return c == 0
	case NE:
		return c != 0
	case LT:
		return c < 0
	case LE:
		return c <= 0
	case GT:
		return c > 0
	case GE:
		return c >= 0
	default:
		return false
	}
}

// Formula is a node of a query body. The concrete types are Atom, Cmp, And,
// Or, Not, Exists and ForAll.
type Formula interface {
	fmt.Stringer
	// freeVars adds the node's free variables to the set.
	freeVars(bound map[string]bool, out map[string]bool)
}

// Atom is a relation atom R(t1, ..., tn).
type Atom struct {
	Rel  string
	Args []Term
}

// Cmp is a built-in comparison t1 op t2.
type Cmp struct {
	Op   CmpOp
	L, R Term
}

// And is a conjunction of one or more formulas.
type And struct{ Fs []Formula }

// Or is a disjunction of one or more formulas.
type Or struct{ Fs []Formula }

// Not is negation.
type Not struct{ F Formula }

// Exists is existential quantification over one or more variables.
type Exists struct {
	Vars []string
	F    Formula
}

// ForAll is universal quantification over one or more variables.
type ForAll struct {
	Vars []string
	F    Formula
}

func (a *Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Rel + "(" + strings.Join(parts, ", ") + ")"
}

func (c *Cmp) String() string { return c.L.String() + " " + c.Op.String() + " " + c.R.String() }

func joinFormulas(fs []Formula, sep string) string {
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = f.String()
	}
	return "(" + strings.Join(parts, sep) + ")"
}

func (a *And) String() string { return joinFormulas(a.Fs, " and ") }
func (o *Or) String() string  { return joinFormulas(o.Fs, " or ") }
func (n *Not) String() string { return "not " + n.F.String() }

func (e *Exists) String() string {
	return "exists " + strings.Join(e.Vars, ", ") + " (" + e.F.String() + ")"
}

func (f *ForAll) String() string {
	return "forall " + strings.Join(f.Vars, ", ") + " (" + f.F.String() + ")"
}

func (a *Atom) freeVars(bound, out map[string]bool) {
	for _, t := range a.Args {
		if t.IsVar() && !bound[t.Name] {
			out[t.Name] = true
		}
	}
}

func (c *Cmp) freeVars(bound, out map[string]bool) {
	for _, t := range []Term{c.L, c.R} {
		if t.IsVar() && !bound[t.Name] {
			out[t.Name] = true
		}
	}
}

func (a *And) freeVars(bound, out map[string]bool) {
	for _, f := range a.Fs {
		f.freeVars(bound, out)
	}
}

func (o *Or) freeVars(bound, out map[string]bool) {
	for _, f := range o.Fs {
		f.freeVars(bound, out)
	}
}

func (n *Not) freeVars(bound, out map[string]bool) { n.F.freeVars(bound, out) }

func quantFreeVars(vars []string, f Formula, bound, out map[string]bool) {
	saved := make([]string, 0, len(vars))
	for _, v := range vars {
		if !bound[v] {
			bound[v] = true
			saved = append(saved, v)
		}
	}
	f.freeVars(bound, out)
	for _, v := range saved {
		delete(bound, v)
	}
}

func (e *Exists) freeVars(bound, out map[string]bool) { quantFreeVars(e.Vars, e.F, bound, out) }
func (f *ForAll) freeVars(bound, out map[string]bool) { quantFreeVars(f.Vars, f.F, bound, out) }

// FreeVars returns the free variables of a formula in sorted order.
func FreeVars(f Formula) []string {
	out := make(map[string]bool)
	f.freeVars(make(map[string]bool), out)
	vars := make([]string, 0, len(out))
	for v := range out {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	return vars
}

// Query is a named query with an ordered head of output variables and a
// body formula. The schema of the query result RQ has one attribute per
// head variable.
type Query struct {
	Name string
	Head []string
	Body Formula
}

// New constructs a query and validates that head variables are distinct and
// free in the body.
func New(name string, head []string, body Formula) (*Query, error) {
	q := &Query{Name: name, Head: append([]string(nil), head...), Body: body}
	seen := make(map[string]bool, len(head))
	for _, h := range head {
		if seen[h] {
			return nil, fmt.Errorf("query %s: repeated head variable %q", name, h)
		}
		seen[h] = true
	}
	free := make(map[string]bool)
	for _, v := range FreeVars(body) {
		free[v] = true
	}
	for _, h := range head {
		if !free[h] {
			return nil, fmt.Errorf("query %s: head variable %q is not free in the body", name, h)
		}
	}
	return q, nil
}

// MustNew is New that panics on error; for statically known-correct queries.
func MustNew(name string, head []string, body Formula) *Query {
	q, err := New(name, head, body)
	if err != nil {
		panic(err)
	}
	return q
}

// IdentityQuery builds the identity query Q(x̄) = R(x̄) of Section 8 for a
// relation of the given arity, with head variables x1..xn.
func IdentityQuery(rel string, arity int) *Query {
	head := make([]string, arity)
	for i := range head {
		head[i] = fmt.Sprintf("x%d", i+1)
	}
	return IdentityQueryNamed(rel, head)
}

// IdentityQueryNamed builds the identity query over rel with the given head
// variable names — typically the relation's attribute names, so that the
// result schema RQ mirrors R and compatibility constraints can reference
// attributes by their natural names.
func IdentityQueryNamed(rel string, attrs []string) *Query {
	args := make([]Term, len(attrs))
	for i, a := range attrs {
		args[i] = V(a)
	}
	return MustNew("Q_"+rel, attrs, &Atom{Rel: rel, Args: args})
}

// Arity returns the number of head variables.
func (q *Query) Arity() int { return len(q.Head) }

// String renders the query as Name(head) :- body.
func (q *Query) String() string {
	return q.Name + "(" + strings.Join(q.Head, ", ") + ") :- " + q.Body.String()
}

// Constants returns the distinct constants mentioned in the query, used to
// extend the active domain during evaluation.
func (q *Query) Constants() []value.Value {
	seen := make(map[string]value.Value)
	var walk func(Formula)
	addTerm := func(t Term) {
		if !t.IsVar() {
			seen[t.Value.Key()] = t.Value
		}
	}
	walk = func(f Formula) {
		switch n := f.(type) {
		case *Atom:
			for _, t := range n.Args {
				addTerm(t)
			}
		case *Cmp:
			addTerm(n.L)
			addTerm(n.R)
		case *And:
			for _, g := range n.Fs {
				walk(g)
			}
		case *Or:
			for _, g := range n.Fs {
				walk(g)
			}
		case *Not:
			walk(n.F)
		case *Exists:
			walk(n.F)
		case *ForAll:
			walk(n.F)
		}
	}
	walk(q.Body)
	out := make([]value.Value, 0, len(seen))
	for _, v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return value.Less(out[i], out[j]) })
	return out
}

// Classify returns the least expressive language class containing the query.
func (q *Query) Classify() Language {
	if isIdentity(q) {
		return Identity
	}
	switch {
	case isCQ(q.Body):
		return CQ
	case isUCQ(q.Body):
		return UCQ
	case isEFOPlus(q.Body):
		return EFOPlus
	default:
		return FO
	}
}

// isIdentity recognizes Q(x1..xn) :- R(x1..xn) with distinct variables in
// head order.
func isIdentity(q *Query) bool {
	a, ok := q.Body.(*Atom)
	if !ok || len(a.Args) != len(q.Head) {
		return false
	}
	for i, t := range a.Args {
		if !t.IsVar() || t.Name != q.Head[i] {
			return false
		}
	}
	return true
}

// isCQ: atoms, comparisons, conjunction, existential quantification.
func isCQ(f Formula) bool {
	switch n := f.(type) {
	case *Atom, *Cmp:
		return true
	case *And:
		for _, g := range n.Fs {
			if !isCQ(g) {
				return false
			}
		}
		return true
	case *Exists:
		return isCQ(n.F)
	default:
		return false
	}
}

// isUCQ: a disjunction of CQ formulas, a single CQ, or existential
// quantifiers over such a disjunction (prenex union form).
func isUCQ(f Formula) bool {
	if isCQ(f) {
		return true
	}
	switch n := f.(type) {
	case *Or:
		for _, g := range n.Fs {
			if !isCQ(g) {
				return false
			}
		}
		return true
	case *Exists:
		return isUCQ(n.F)
	default:
		return false
	}
}

// isEFOPlus: positive existential FO — no negation, no universal
// quantification.
func isEFOPlus(f Formula) bool {
	switch n := f.(type) {
	case *Atom, *Cmp:
		return true
	case *And:
		for _, g := range n.Fs {
			if !isEFOPlus(g) {
				return false
			}
		}
		return true
	case *Or:
		for _, g := range n.Fs {
			if !isEFOPlus(g) {
				return false
			}
		}
		return true
	case *Exists:
		return isEFOPlus(n.F)
	default:
		return false
	}
}
