// Package parse turns a textual rule syntax into query ASTs. The syntax
// covers all four languages of the paper:
//
//	Q(x, y) :- R(x, z), S(z, y), x < 5                         (CQ)
//	Q(x) :- R(x) or S(x)                                       (UCQ)
//	Q(x) :- exists y (R(x, y) and (S(y) or T(y)))              (∃FO+)
//	Q(n) :- C(n, p), p >= 20, not exists b (H(n, b), b = 1)    (FO)
//
// Connectives: "," / "and" / "&" for conjunction, "or" / "|" for
// disjunction, "not" / "!" for negation, "implies" / "->" for implication
// (desugared to not/or), and "exists v1, v2 (...)" / "forall v (...)" for
// quantifiers. Comparisons use = != < <= > >=. Constants are integers,
// floats, double-quoted strings, true and false.
package parse

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/query"
	"repro/internal/value"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // ( ) ,
	tokOp    // = != < <= > >= :- -> | & !
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '(' || c == ')' || c == ',':
			l.emit(tokPunct, string(c), 1)
		case c == '"':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case isIdentStart(rune(c)):
			l.lexIdent()
		case c >= '0' && c <= '9' || c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
			l.lexNumber()
		default:
			if err := l.lexOp(); err != nil {
				return nil, err
			}
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
	return l.toks, nil
}

func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '\''
}

func (l *lexer) emit(kind tokenKind, text string, width int) {
	l.toks = append(l.toks, token{kind: kind, text: text, pos: l.pos})
	l.pos += width
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexNumber() {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '.') {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '"' {
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		if c == '\\' && l.pos+1 < len(l.src) {
			l.pos++
			c = l.src[l.pos]
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("parse: unterminated string at offset %d", start)
}

func (l *lexer) lexOp() error {
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "!=", "<=", ">=", ":-", "->":
		l.emit(tokOp, two, 2)
		return nil
	}
	switch c := l.src[l.pos]; c {
	case '=', '<', '>', '|', '&', '!':
		l.emit(tokOp, string(c), 1)
		return nil
	default:
		return fmt.Errorf("parse: unexpected character %q at offset %d", c, l.pos)
	}
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }
func (p *parser) at(kind tokenKind, text string) bool {
	t := p.peek()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if !p.at(kind, text) {
		got := p.peek()
		return token{}, fmt.Errorf("parse: expected %q at offset %d, got %q", text, got.pos, got.text)
	}
	return p.next(), nil
}

// Query parses a complete query definition "Name(v1, ..., vn) :- body".
func Query(src string) (*query.Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, fmt.Errorf("parse: query must start with a name: %v", err)
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	var head []string
	for !p.at(tokPunct, ")") {
		v, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		head = append(head, v.text)
		if p.at(tokPunct, ",") {
			p.next()
		}
	}
	p.next() // ')'
	if !p.at(tokOp, ":-") && !p.at(tokOp, "=") {
		return nil, fmt.Errorf("parse: expected :- after query head at offset %d", p.peek().pos)
	}
	p.next()
	body, err := p.formula()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, fmt.Errorf("parse: trailing input at offset %d: %q", p.peek().pos, p.peek().text)
	}
	return query.New(name.text, head, body)
}

// MustQuery parses a query, panicking on error; for statically known text.
func MustQuery(src string) *query.Query {
	q, err := Query(src)
	if err != nil {
		panic(err)
	}
	return q
}

// Formula parses a standalone formula (used by tests and the CLI).
func Formula(src string) (query.Formula, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f, err := p.formula()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, fmt.Errorf("parse: trailing input at offset %d: %q", p.peek().pos, p.peek().text)
	}
	return f, nil
}

// formula := implication (lowest precedence).
func (p *parser) formula() (query.Formula, error) { return p.implies() }

func (p *parser) implies() (query.Formula, error) {
	left, err := p.disjunction()
	if err != nil {
		return nil, err
	}
	if p.at(tokOp, "->") || p.at(tokIdent, "implies") {
		p.next()
		right, err := p.implies() // right associative
		if err != nil {
			return nil, err
		}
		return &query.Or{Fs: []query.Formula{&query.Not{F: left}, right}}, nil
	}
	return left, nil
}

func (p *parser) disjunction() (query.Formula, error) {
	first, err := p.conjunction()
	if err != nil {
		return nil, err
	}
	fs := []query.Formula{first}
	for p.at(tokOp, "|") || p.at(tokIdent, "or") {
		p.next()
		f, err := p.conjunction()
		if err != nil {
			return nil, err
		}
		fs = append(fs, f)
	}
	if len(fs) == 1 {
		return first, nil
	}
	return &query.Or{Fs: fs}, nil
}

func (p *parser) conjunction() (query.Formula, error) {
	first, err := p.unary()
	if err != nil {
		return nil, err
	}
	fs := []query.Formula{first}
	for p.at(tokPunct, ",") || p.at(tokOp, "&") || p.at(tokIdent, "and") {
		p.next()
		f, err := p.unary()
		if err != nil {
			return nil, err
		}
		fs = append(fs, f)
	}
	if len(fs) == 1 {
		return first, nil
	}
	return &query.And{Fs: fs}, nil
}

func (p *parser) unary() (query.Formula, error) {
	switch {
	case p.at(tokOp, "!") || p.at(tokIdent, "not"):
		p.next()
		f, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &query.Not{F: f}, nil
	case p.at(tokIdent, "exists"), p.at(tokIdent, "forall"):
		kw := p.next().text
		vars, err := p.varList()
		if err != nil {
			return nil, err
		}
		f, err := p.unary()
		if err != nil {
			return nil, err
		}
		if kw == "exists" {
			return &query.Exists{Vars: vars, F: f}, nil
		}
		return &query.ForAll{Vars: vars, F: f}, nil
	default:
		return p.primary()
	}
}

// varList parses "v1, v2, ..., vk" after a quantifier keyword, stopping at
// the formula that follows (an opening parenthesis, another quantifier or
// negation, or the last identifier when it begins an atom).
func (p *parser) varList() ([]string, error) {
	var vars []string
	for {
		if !p.at(tokIdent, "") {
			return nil, fmt.Errorf("parse: expected quantified variable at offset %d", p.peek().pos)
		}
		vars = append(vars, p.next().text)
		if p.at(tokPunct, ",") {
			p.next()
			continue
		}
		return vars, nil
	}
}

func (p *parser) primary() (query.Formula, error) {
	if p.at(tokPunct, "(") {
		p.next()
		f, err := p.formula()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return f, nil
	}
	// Either an atom R(...) or a comparison term op term.
	if p.at(tokIdent, "") && p.toks[p.i+1].kind == tokPunct && p.toks[p.i+1].text == "(" {
		return p.atom()
	}
	left, err := p.term()
	if err != nil {
		return nil, err
	}
	op, err := p.cmpOp()
	if err != nil {
		return nil, err
	}
	right, err := p.term()
	if err != nil {
		return nil, err
	}
	return &query.Cmp{Op: op, L: left, R: right}, nil
}

func (p *parser) atom() (query.Formula, error) {
	name := p.next().text
	p.next() // '('
	var args []query.Term
	for !p.at(tokPunct, ")") {
		t, err := p.term()
		if err != nil {
			return nil, err
		}
		args = append(args, t)
		if p.at(tokPunct, ",") {
			p.next()
		}
	}
	p.next() // ')'
	return &query.Atom{Rel: name, Args: args}, nil
}

func (p *parser) term() (query.Term, error) {
	t := p.peek()
	switch t.kind {
	case tokIdent:
		p.next()
		switch t.text {
		case "true":
			return query.C(value.Bool(true)), nil
		case "false":
			return query.C(value.Bool(false)), nil
		}
		return query.V(t.text), nil
	case tokNumber:
		p.next()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return query.Term{}, fmt.Errorf("parse: bad number %q at offset %d", t.text, t.pos)
			}
			return query.C(value.Float(f)), nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return query.Term{}, fmt.Errorf("parse: bad number %q at offset %d", t.text, t.pos)
		}
		return query.C(value.Int(i)), nil
	case tokString:
		p.next()
		return query.C(value.Str(t.text)), nil
	default:
		return query.Term{}, fmt.Errorf("parse: expected term at offset %d, got %q", t.pos, t.text)
	}
}

func (p *parser) cmpOp() (query.CmpOp, error) {
	t := p.peek()
	if t.kind != tokOp {
		return 0, fmt.Errorf("parse: expected comparison operator at offset %d, got %q", t.pos, t.text)
	}
	p.next()
	switch t.text {
	case "=":
		return query.EQ, nil
	case "!=":
		return query.NE, nil
	case "<":
		return query.LT, nil
	case "<=":
		return query.LE, nil
	case ">":
		return query.GT, nil
	case ">=":
		return query.GE, nil
	default:
		return 0, fmt.Errorf("parse: %q is not a comparison operator (offset %d)", t.text, t.pos)
	}
}
