package parse

import (
	"strings"
	"testing"

	"repro/internal/query"
)

func TestParseCQ(t *testing.T) {
	q, err := Query("Q(x, y) :- R(x, z), S(z, y), x < 5")
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != "Q" || len(q.Head) != 2 {
		t.Errorf("head parsed wrong: %v", q)
	}
	if got := q.Classify(); got != query.CQ {
		t.Errorf("Classify = %v, want CQ", got)
	}
}

func TestParseIdentity(t *testing.T) {
	q := MustQuery("Q(x, y) :- R(x, y)")
	if got := q.Classify(); got != query.Identity {
		t.Errorf("Classify = %v, want identity", got)
	}
}

func TestParseUCQ(t *testing.T) {
	q := MustQuery("Q(x) :- R(x) or S(x)")
	if got := q.Classify(); got != query.UCQ {
		t.Errorf("Classify = %v, want UCQ", got)
	}
}

func TestParseEFOPlus(t *testing.T) {
	q := MustQuery("Q(x) :- T(x) and (R(x) or S(x))")
	if got := q.Classify(); got != query.EFOPlus {
		t.Errorf("Classify = %v, want ∃FO+", got)
	}
}

func TestParseFO(t *testing.T) {
	q := MustQuery("Q(x) :- R(x), not S(x), forall y (R(y) -> y >= 0)")
	if got := q.Classify(); got != query.FO {
		t.Errorf("Classify = %v, want FO", got)
	}
}

func TestParseQuantifiers(t *testing.T) {
	q := MustQuery("Q(x) :- exists y, z (R(x, y, z))")
	ex, ok := q.Body.(*query.Exists)
	if !ok {
		t.Fatalf("body is %T, want Exists", q.Body)
	}
	if len(ex.Vars) != 2 || ex.Vars[0] != "y" || ex.Vars[1] != "z" {
		t.Errorf("quantified vars = %v", ex.Vars)
	}
}

func TestParseImpliesDesugars(t *testing.T) {
	f, err := Formula("R(x) -> S(x)")
	if err != nil {
		t.Fatal(err)
	}
	or, ok := f.(*query.Or)
	if !ok || len(or.Fs) != 2 {
		t.Fatalf("implies should desugar to Or, got %v", f)
	}
	if _, ok := or.Fs[0].(*query.Not); !ok {
		t.Errorf("left of desugared implies should be negated, got %v", or.Fs[0])
	}
}

func TestParseImpliesRightAssociative(t *testing.T) {
	f, err := Formula("A(x) -> B(x) -> C(x)")
	if err != nil {
		t.Fatal(err)
	}
	// A -> (B -> C): outer Or's second disjunct is itself an Or.
	or := f.(*query.Or)
	if _, ok := or.Fs[1].(*query.Or); !ok {
		t.Errorf("implies should be right associative, got %v", f)
	}
}

func TestParsePrecedence(t *testing.T) {
	// and binds tighter than or.
	f, err := Formula("A(x) or B(x) and C(x)")
	if err != nil {
		t.Fatal(err)
	}
	or, ok := f.(*query.Or)
	if !ok || len(or.Fs) != 2 {
		t.Fatalf("got %v, want top-level Or", f)
	}
	if _, ok := or.Fs[1].(*query.And); !ok {
		t.Errorf("second disjunct should be And, got %v", or.Fs[1])
	}
}

func TestParseConstants(t *testing.T) {
	q := MustQuery(`Q(x) :- R(x, 42, 2.5, "name", true)`)
	a := q.Body.(*query.Atom)
	if len(a.Args) != 5 {
		t.Fatalf("args = %v", a.Args)
	}
	if a.Args[1].Value.AsInt() != 42 {
		t.Error("int constant wrong")
	}
	if a.Args[2].Value.AsFloat() != 2.5 {
		t.Error("float constant wrong")
	}
	if a.Args[3].Value.AsString() != "name" {
		t.Error("string constant wrong")
	}
	if !a.Args[4].Value.AsBool() {
		t.Error("bool constant wrong")
	}
}

func TestParseNegativeNumber(t *testing.T) {
	f, err := Formula("x > -3")
	if err != nil {
		t.Fatal(err)
	}
	c := f.(*query.Cmp)
	if c.R.Value.AsInt() != -3 {
		t.Errorf("got %v", c.R)
	}
}

func TestParseComparisonOps(t *testing.T) {
	for _, src := range []string{"x = y", "x != y", "x < y", "x <= y", "x > y", "x >= y"} {
		f, err := Formula(src)
		if err != nil {
			t.Fatalf("Formula(%q): %v", src, err)
		}
		if _, ok := f.(*query.Cmp); !ok {
			t.Errorf("Formula(%q) = %T, want Cmp", src, f)
		}
	}
}

func TestParseStringEscapes(t *testing.T) {
	f, err := Formula(`x = "a\"b"`)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.(*query.Cmp).R.Value.AsString(); got != `a"b` {
		t.Errorf("escaped string = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",                      // no name
		"Q(x)",                  // missing :- body
		"Q(x) :- R(x",           // unclosed paren
		"Q(x) :- R(x) trailing", // trailing junk
		"Q(x) :- ",              // empty body
		`Q(x) :- x = "unterm`,   // unterminated string
		"Q(x) :- x ~ y",         // bad operator
		"Q(x, x) :- R(x, x)",    // repeated head var
		"Q(y) :- R(x)",          // head var not in body
		"Q(x) :- exists (R(x))", // missing quantified var
	}
	for _, src := range bad {
		if _, err := Query(src); err == nil {
			t.Errorf("Query(%q) should fail", src)
		}
	}
}

func TestMustQueryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustQuery should panic on bad input")
		}
	}()
	MustQuery("not a query")
}

func TestParseRoundTripThroughString(t *testing.T) {
	srcs := []string{
		"Q(x, y) :- R(x, z), S(z, y), x < 5",
		"Q(x) :- exists y (R(x, y) and (S(y) or T(y)))",
		"Q(x) :- R(x), not S(x)",
		"Q(n) :- C(n, p), p >= 20, p <= 30",
	}
	for _, src := range srcs {
		q1 := MustQuery(src)
		q2, err := Query(q1.String())
		if err != nil {
			t.Fatalf("reparse of %q (%q) failed: %v", src, q1.String(), err)
		}
		if q1.String() != q2.String() {
			t.Errorf("round trip changed: %q -> %q", q1.String(), q2.String())
		}
		if q1.Classify() != q2.Classify() {
			t.Errorf("round trip changed classification of %q", src)
		}
	}
}

func TestParseGiftQuery(t *testing.T) {
	// Example 3.1's Q0, transliterated to the textual syntax.
	src := `Q0(n) :- exists t, p, s (catalog(n, t, p, s) and p <= 30 and p >= 20 and
		forall n2, b, r, g, a, x, e, y (
			not (history(n2, b, r, g, a, x, e, y) and b = "peter" and r = "Grace" and n = n2)))`
	q, err := Query(strings.ReplaceAll(src, "\n", " "))
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Classify(); got != query.FO {
		t.Errorf("gift query should be FO, got %v", got)
	}
}
