// The interned score plane: answer tuples are interned into dense int IDs
// at prepare time, the relevance vector δrel is precomputed per ID, and the
// symmetric pairwise distance matrix δdis is served under one of four
// regimes (see regime.go): materialized as a packed triangular []float64
// (filled in parallel across GOMAXPROCS workers), block-tiled as float32
// (tiles.go), indexed by a vantage-point tree with O(n) memory (index.go),
// or — when nothing else fits the memory guard — from a sharded,
// entry-capped memoizing cache. Every solver then runs on IDs and
// contiguous float loads instead of interface dispatch plus Tuple.Key()
// string hashing per lookup: the same compute-shared-subexpressions-once
// discipline that factorised databases (Bakibayev et al., FDB) apply to
// query plans, applied here to scoring — and, in the indexed regime, the
// complementary discipline of never materializing pairs evaluation won't
// touch.
//
// The plane assumes the paper's contract for δdis: symmetric with a zero
// diagonal. Pair values are evaluated once in canonical (lower ID, higher
// ID) argument order; an asymmetric distance function would be observed in
// canonical order only.
package objective

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/ctxpoll"
	"repro/internal/relation"
)

// DefaultMaxMatrixBytes is the default memory guard for the materialized
// distance matrix: planes whose packed triangle would exceed it fall back to
// the sharded memoizing cache. 64 MiB holds n ≈ 4096 answers.
const DefaultMaxMatrixBytes = 64 << 20

// memoShards is the number of lock shards in the fallback cache; a power of
// two so the hash can mask.
const memoShards = 64

// PlaneOptions tune plane construction.
type PlaneOptions struct {
	// MaxMatrixBytes caps the pair stores (matrix or tiles); 0 means
	// DefaultMaxMatrixBytes. Materialize refuses (and the plane falls back
	// per its regime) when the store would exceed it.
	MaxMatrixBytes int64
	// Regime requests a distance-storage strategy; RegimeAuto (the zero
	// value) resolves from n and MaxMatrixBytes. See resolveRegime for the
	// fallback rules when an explicit request does not fit the guard.
	Regime Regime
	// Streaming builds an appendable plane for online procedures: IDs are
	// assigned in arrival order via Append, distances are always served
	// from the memoizing cache, and Materialize is a no-op.
	Streaming bool
}

// Plane is the interned score plane over one answer set. It holds only the
// λ-independent score data (relevance vector, pairwise distances, cached
// row sums), so a single plane serves solves under any Kind and λ as long
// as the δrel/δdis functions are unchanged; Objective.EvalIDs and friends
// combine it with the per-call Kind and λ.
//
// A plane is safe for concurrent readers (including concurrent lazy
// materialization and memo fills); Append is single-writer.
type Plane struct {
	answers []relation.Tuple
	rel     []float64
	maxRel  float64
	keys    []string // precomputed Tuple.Key()s when a Keyed impl is present

	relFn     Relevance
	disFn     Distance
	keyedRel  KeyedRelevance // non-nil when relFn accepts precomputed keys
	keyedDis  KeyedDistance  // non-nil when disFn accepts precomputed keys
	maxBytes  int64
	streaming bool
	want      Regime // the caller's requested regime (for Rebase carry-over)
	regime    Regime // the resolved serving regime, fixed at construction

	triReady atomic.Bool
	tri      []float64 // packed lower triangle, index(i<j) = j(j-1)/2 + i

	tilesReady atomic.Bool
	tiles      []float32 // blocked lower triangle, see tiles.go

	idx atomic.Pointer[MetricIndex] // lazily built in RegimeIndexed

	shards []memoShard
	// shardCap bounds each memo shard by entries (total budget ≈ the
	// matrix guard for the memoized regime, O(n) for the indexed regime);
	// a full shard evicts one victim per insert — Go's randomized map
	// iteration order is the eviction policy — so a long-lived plane
	// serving on-demand pairs cannot grow O(n²) memory over its lifetime.
	shardCap      int
	memoEvictions atomic.Int64

	mu         sync.Mutex // guards materialization and the lazy scalars below
	haveMaxDis bool
	maxDis     float64
	maxDisN    int // the n maxDis was computed at (streaming planes grow)
	rowSums    []float64
}

type memoShard struct {
	mu sync.Mutex
	m  map[uint64]float64
}

// memoShardCap derives the per-shard entry cap. The memoized regime keeps
// roughly the matrix guard's byte budget (entries are ~16 bytes of key+value
// before map overhead); the indexed regime — whose whole point is O(n)
// memory — caps the memo at ~4 entries per answer, enough to absorb the
// incidental Dis calls of quality evaluation and local search without
// re-growing a quadratic cache behind the index's back.
func memoShardCap(regime Regime, n int, maxBytes int64) int {
	cap := maxBytes / 16
	if regime == RegimeIndexed {
		if byN := int64(4*n) + 1024; byN < cap {
			cap = byN
		}
	}
	perShard := cap / memoShards
	if perShard < 1 {
		perShard = 1
	}
	return int(perShard)
}

// NewPlane builds a plane over answers. Distances are not computed yet:
// materialization (or memoization on demand) happens on first use, so
// relevance-only consumers pay O(n) and nothing more.
func NewPlane(o *Objective, answers []relation.Tuple, opts PlaneOptions) *Plane {
	p, _ := NewPlaneContext(context.Background(), o, answers, opts)
	return p
}

// NewPlaneContext is NewPlane under a cancellation context (the O(n)
// relevance fill polls it).
func NewPlaneContext(ctx context.Context, o *Objective, answers []relation.Tuple, opts PlaneOptions) (*Plane, error) {
	maxBytes := opts.MaxMatrixBytes
	if maxBytes <= 0 {
		maxBytes = DefaultMaxMatrixBytes
	}
	regime := resolveRegime(opts.Regime, len(answers), maxBytes, opts.Streaming)
	p := &Plane{
		answers:   answers,
		relFn:     o.Rel,
		disFn:     o.Dis,
		maxBytes:  maxBytes,
		streaming: opts.Streaming,
		want:      opts.Regime,
		regime:    regime,
		shardCap:  memoShardCap(regime, len(answers), maxBytes),
		shards:    make([]memoShard, memoShards),
	}
	if kr, ok := o.Rel.(KeyedRelevance); ok {
		p.keyedRel = kr
	}
	if kd, ok := o.Dis.(KeyedDistance); ok {
		p.keyedDis = kd
	}
	poll := ctxpoll.New(ctx)
	if p.keyedRel != nil || p.keyedDis != nil {
		p.keys = make([]string, len(answers))
		for i, t := range answers {
			if poll.Stop() {
				return nil, poll.Err()
			}
			p.keys[i] = t.Key()
		}
	}
	p.rel = make([]float64, len(answers))
	for i := range answers {
		if poll.Stop() {
			return nil, poll.Err()
		}
		r := p.rawRel(i)
		p.rel[i] = r
		if r > p.maxRel {
			p.maxRel = r
		}
	}
	return p, nil
}

// Len reports the number of interned answers.
func (p *Plane) Len() int { return len(p.answers) }

// Tuple returns the answer tuple interned as id.
func (p *Plane) Tuple(id int) relation.Tuple { return p.answers[id] }

// Answers returns the interned answer slice in ID order (shared; do not
// mutate).
func (p *Plane) Answers() []relation.Tuple { return p.answers }

// Rel returns δrel of the answer interned as id.
func (p *Plane) Rel(id int) float64 { return p.rel[id] }

// MaxRel returns max δrel over the interned answers (0 when empty, matching
// the solvers' optimistic-bound seed).
func (p *Plane) MaxRel() float64 { return p.maxRel }

// Materialized reports whether the packed distance matrix is filled.
func (p *Plane) Materialized() bool { return p.triReady.Load() }

// Tiled reports whether the blocked float32 tile store is filled.
func (p *Plane) Tiled() bool { return p.tilesReady.Load() }

// Regime reports the plane's resolved serving regime.
func (p *Plane) Regime() Regime { return p.regime }

// MemoStats reports the memo cache's resident entry count and the number of
// evictions its entry cap has forced so far.
func (p *Plane) MemoStats() (entries, evictions int64) {
	for s := range p.shards {
		shard := &p.shards[s]
		shard.mu.Lock()
		entries += int64(len(shard.m))
		shard.mu.Unlock()
	}
	return entries, p.memoEvictions.Load()
}

// MemoryFootprint estimates the plane's resident bytes: the per-answer
// score state plus whatever the regime stores (matrix, tiles, index, memo
// entries at ~48 bytes each with map overhead). An estimate for operators
// and planners, not an allocator-exact accounting.
func (p *Plane) MemoryFootprint() int64 {
	n := int64(len(p.answers))
	b := n * 8 // relevance vector
	b += n * 8 // answer slice headers (tuples themselves are shared)
	if p.keys != nil {
		b += n * 16 // string headers; backing bytes are shared with tuples
	}
	if p.triReady.Load() {
		b += int64(len(p.tri)) * 8
	}
	if p.tilesReady.Load() {
		b += int64(len(p.tiles)) * 4
	}
	if ix := p.idx.Load(); ix != nil {
		b += ix.Bytes()
	}
	entries, _ := p.MemoStats()
	b += entries * 48
	return b
}

// rawRel evaluates δrel for id through the keyed fast path when available.
func (p *Plane) rawRel(id int) float64 {
	if p.keyedRel != nil {
		return p.keyedRel.RelKey(p.keys[id])
	}
	return p.relFn.Rel(p.answers[id])
}

// rawDis evaluates δdis for i < j in canonical argument order, through the
// keyed fast path when available. It does not consult or fill any cache.
func (p *Plane) rawDis(i, j int) float64 {
	if p.keyedDis != nil {
		return p.keyedDis.DisKeys(p.keys[i], p.keys[j])
	}
	return p.disFn.Dis(p.answers[i], p.answers[j])
}

// triIndex packs the lower triangle row-by-row: cell (i, j) with i < j lives
// at j(j-1)/2 + i. The packing is independent of n, so streaming planes
// could grow it row-by-row.
func triIndex(i, j int) int { return j*(j-1)/2 + i }

// Dis returns δdis between the answers interned as i and j: a contiguous
// float load when a pair store (matrix or tiles) is filled, a memoized
// evaluation otherwise, and 0 on the diagonal.
func (p *Plane) Dis(i, j int) float64 {
	if i == j {
		return 0
	}
	if i > j {
		i, j = j, i
	}
	if p.triReady.Load() {
		return p.tri[triIndex(i, j)]
	}
	if p.tilesReady.Load() {
		return float64(p.tiles[tileIndex(i, j)])
	}
	return p.memoDis(i, j)
}

// memoDis serves a pair from the sharded cache, computing and storing it on
// a miss. The user function runs outside the shard lock (it may be slow); a
// racing duplicate computation stores the same deterministic value. A full
// shard evicts one resident entry before storing — the victim is whatever
// Go's randomized map iteration yields first, a zero-bookkeeping stand-in
// for random replacement — so the cache stays capped while still following
// the working set of long request streams.
func (p *Plane) memoDis(i, j int) float64 {
	key := uint64(i)<<32 | uint64(j)
	s := &p.shards[(key*0x9E3779B97F4A7C15)>>(64-6)]
	s.mu.Lock()
	if d, ok := s.m[key]; ok {
		s.mu.Unlock()
		return d
	}
	s.mu.Unlock()
	d := p.rawDis(i, j)
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[uint64]float64)
	}
	if _, ok := s.m[key]; !ok && len(s.m) >= p.shardCap {
		for victim := range s.m {
			delete(s.m, victim)
			break
		}
		p.memoEvictions.Add(1)
	}
	s.m[key] = d
	s.mu.Unlock()
	return d
}

// Materialize is MaterializeContext under context.Background.
func (p *Plane) Materialize() bool {
	ok, _ := p.MaterializeContext(context.Background())
	return ok
}

// MaterializeContext fills the plane's pair store — the packed triangular
// float64 matrix or, in the tiled regime, the blocked float32 triangle — in
// parallel across GOMAXPROCS workers. Planes whose regime keeps no pair
// store (indexed, memoized, streaming) report false and keep serving on
// demand. It is idempotent and safe under concurrent readers: until the
// fill completes, Dis keeps answering from the cache.
func (p *Plane) MaterializeContext(ctx context.Context) (bool, error) {
	n := len(p.answers)
	switch p.regime {
	case RegimeMaterialized:
		p.mu.Lock()
		defer p.mu.Unlock()
		if p.triReady.Load() {
			return true, nil
		}
		tri := make([]float64, n*(n-1)/2)
		maxDis, err := p.fillParallel(ctx, tri)
		if err != nil {
			return false, err
		}
		p.tri = tri
		p.maxDis, p.haveMaxDis, p.maxDisN = maxDis, true, n
		p.triReady.Store(true)
		return true, nil
	case RegimeTiled:
		p.mu.Lock()
		defer p.mu.Unlock()
		if p.tilesReady.Load() {
			return true, nil
		}
		tiles := make([]float32, tiledBytes(n)/4)
		maxDis, err := p.fillTilesParallel(ctx, tiles)
		if err != nil {
			return false, err
		}
		p.tiles = tiles
		p.maxDis, p.haveMaxDis, p.maxDisN = maxDis, true, n
		p.tilesReady.Store(true)
		return true, nil
	default:
		return false, nil
	}
}

// EnsureReadyContext builds whatever the plane's regime serves from — the
// matrix, the tile store, or the metric index — so prepare-time eager
// construction pays the build cost once instead of on the first solve.
// Memoized (and streaming) planes have nothing to build.
func (p *Plane) EnsureReadyContext(ctx context.Context) error {
	switch p.regime {
	case RegimeMaterialized, RegimeTiled:
		_, err := p.MaterializeContext(ctx)
		return err
	case RegimeIndexed:
		_, err := p.IndexContext(ctx)
		return err
	default:
		return nil
	}
}

// fillParallel computes every (i < j) cell of tri, striping whole rows
// across workers via an atomic row counter, and returns the maximum cell.
// Each cell is a pure function of its pair, so the result is deterministic
// regardless of scheduling; the max merge is order-independent.
func (p *Plane) fillParallel(ctx context.Context, tri []float64) (float64, error) {
	n := len(p.answers)
	if n < 2 {
		return 0, nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n-1 {
		workers = n - 1
	}
	if workers < 1 {
		workers = 1
	}
	const rowChunk = 8
	var next atomic.Int64
	next.Store(1) // row j ranges over [1, n)
	maxes := make([]float64, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			poll := ctxpoll.New(ctx)
			localMax := 0.0
			for {
				lo := int(next.Add(rowChunk)) - rowChunk
				if lo >= n {
					break
				}
				hi := lo + rowChunk
				if hi > n {
					hi = n
				}
				for j := lo; j < hi; j++ {
					if poll.Stop() {
						errs[w] = poll.Err()
						return
					}
					off := j * (j - 1) / 2
					for i := 0; i < j; i++ {
						d := p.rawDis(i, j)
						tri[off+i] = d
						if d > localMax {
							localMax = d
						}
					}
				}
			}
			maxes[w] = localMax
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	maxDis := 0.0
	for _, m := range maxes {
		if m > maxDis {
			maxDis = m
		}
	}
	return maxDis, nil
}

// MaxDis is MaxDisContext under context.Background.
func (p *Plane) MaxDis() float64 {
	v, _ := p.MaxDisContext(context.Background())
	return v
}

// MaxDisContext returns max pairwise δdis over the interned answers (0 when
// fewer than two). It materializes the matrix when the guard allows — the
// scan pays for every pair anyway — and otherwise scans without storing, so
// the memory guard holds even for this O(n²) pass.
func (p *Plane) MaxDisContext(ctx context.Context) (float64, error) {
	n := len(p.answers)
	p.mu.Lock()
	if p.haveMaxDis && p.maxDisN == n {
		v := p.maxDis
		p.mu.Unlock()
		return v, nil
	}
	p.mu.Unlock()
	if ok, err := p.MaterializeContext(ctx); err != nil {
		return 0, err
	} else if ok {
		p.mu.Lock()
		defer p.mu.Unlock()
		return p.maxDis, nil
	}
	// Memoized regime: scan through Dis so the pairs this pass pays for
	// warm the cache (bounded by memoCap) for the search walk that follows.
	poll := ctxpoll.New(ctx)
	maxDis := 0.0
	for j := 1; j < n; j++ {
		if poll.Stop() {
			return 0, poll.Err()
		}
		for i := 0; i < j; i++ {
			if d := p.Dis(i, j); d > maxDis {
				maxDis = d
			}
		}
	}
	p.mu.Lock()
	p.maxDis, p.haveMaxDis, p.maxDisN = maxDis, true, n
	p.mu.Unlock()
	return maxDis, nil
}

// MaxDisBoundContext returns an admissible upper bound on the maximum
// pairwise δdis: the exact maximum where it is already known or cheap (a
// filled pair store computes it during the fill), and in the indexed regime
// the O(n) triangle-inequality bound 2·max δdis(pivot₀, ·) — so the exact
// search's optimistic bound never pays the O(n²) scan a large indexed plane
// exists to avoid. A looser bound only weakens pruning, never correctness.
func (p *Plane) MaxDisBoundContext(ctx context.Context) (float64, error) {
	p.mu.Lock()
	if p.haveMaxDis && p.maxDisN == len(p.answers) {
		v := p.maxDis
		p.mu.Unlock()
		return v, nil
	}
	p.mu.Unlock()
	if p.regime == RegimeIndexed {
		ix, err := p.IndexContext(ctx)
		if err != nil {
			return 0, err
		}
		return ix.MaxDisUpperBound(), nil
	}
	return p.MaxDisContext(ctx)
}

// RowSums returns, for each id, Σ over all answers of δdis(id, ·) — the
// shared subexpression of every Fmono score — accumulated in ascending ID
// order for reproducible floating point. The result is cached; in the
// memoized regime the scan computes pairs directly without storing them, so
// the memory guard holds.
func (p *Plane) RowSums() []float64 {
	n := len(p.answers)
	p.mu.Lock()
	if p.rowSums != nil && len(p.rowSums) == n {
		sums := p.rowSums
		p.mu.Unlock()
		return sums
	}
	p.mu.Unlock()
	p.MaterializeContext(context.Background())
	dis := p.Dis
	if !p.triReady.Load() && !p.tilesReady.Load() {
		dis = func(i, j int) float64 {
			if i == j {
				return 0
			}
			if i > j {
				i, j = j, i
			}
			return p.rawDis(i, j)
		}
	}
	sums := make([]float64, n)
	for i := 0; i < n; i++ {
		g := 0.0
		for j := 0; j < n; j++ {
			if j != i {
				g += dis(i, j)
			}
		}
		sums[i] = g
	}
	p.mu.Lock()
	if p.rowSums == nil || len(p.rowSums) != n {
		p.rowSums = sums
	} else {
		sums = p.rowSums
	}
	p.mu.Unlock()
	return sums
}

// appendAnswer interns one more answer — the shared growth step behind the
// streaming Append and the incremental Extend/Rebase: the tuple (and its
// precomputed key, when a Keyed scorer is present) joins the ID space, its
// relevance is evaluated once, and the running max is maintained.
func (p *Plane) appendAnswer(t relation.Tuple) int {
	id := len(p.answers)
	p.answers = append(p.answers, t)
	if p.keys != nil {
		p.keys = append(p.keys, t.Key())
	}
	p.rel = append(p.rel, 0)
	r := p.rawRel(id)
	p.rel[id] = r
	if r > p.maxRel {
		p.maxRel = r
	}
	return id
}

// appendCopied interns the answer src interned as oldID, carrying its
// already-evaluated relevance (and key) over instead of recomputing them.
func (p *Plane) appendCopied(src *Plane, oldID int) int {
	id := len(p.answers)
	p.answers = append(p.answers, src.answers[oldID])
	if p.keys != nil {
		p.keys = append(p.keys, src.keys[oldID])
	}
	r := src.rel[oldID]
	p.rel = append(p.rel, r)
	if r > p.maxRel {
		p.maxRel = r
	}
	return id
}

// Append interns a new answer on a streaming plane, returning its ID.
// Distances to it are memoized on first use, so an append is O(1) beyond
// its relevance evaluation. Single-writer: the streaming procedures append
// from the evaluation goroutine only.
func (p *Plane) Append(t relation.Tuple) int {
	if !p.streaming {
		panic("objective: Append on a non-streaming plane")
	}
	return p.appendAnswer(t)
}

// Extend returns a new plane over the old answers plus added (which must be
// sorted ascending by Tuple.Compare and disjoint from the old answers, as
// the old answers themselves must be sorted). See Rebase.
func (p *Plane) Extend(ctx context.Context, added []relation.Tuple) (*Plane, error) {
	return p.Rebase(ctx, added, nil)
}

// Retire returns a new plane with the given interned IDs tombstoned out of
// the answer set. See Rebase.
func (p *Plane) Retire(ctx context.Context, retired []int) (*Plane, error) {
	return p.Rebase(ctx, nil, retired)
}

// Rebase builds the plane for an incrementally maintained answer set: the
// current answers minus the retired IDs, merged with the added tuples in
// canonical order. Score state is carried over instead of recomputed —
// relevance values and keys are copied for surviving IDs, and when a pair
// store is filled (matrix or tiles, with the regime re-resolved at the new
// size) every surviving pair is a float copy, so only the O(n·|added|)
// pairs touching a new tuple evaluate δdis. In the memoized and indexed
// regimes nothing is precomputed, exactly as on a cold build — the metric
// index rebuilds lazily over the merged answers — and the cache entries of
// surviving pairs are carried across under their new IDs.
//
// The result is bit-identical to a plane built from scratch over the new
// answer set: δrel/δdis are pure per-pair functions, so copied values equal
// recomputed ones, and the derived scalars (maxRel, maxDis) are rescanned.
// The receiver is left untouched and remains valid — in-flight solves keep
// reading the old plane while the caller swaps the new one in.
//
// Contract: the plane is non-streaming, its answers are sorted ascending by
// Tuple.Compare, and added is sorted and disjoint from the surviving
// answers. Retired IDs must be valid; duplicates are tolerated.
func (p *Plane) Rebase(ctx context.Context, added []relation.Tuple, retired []int) (*Plane, error) {
	if p.streaming {
		panic("objective: Rebase on a streaming plane")
	}
	n := len(p.answers)
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	dead := 0
	for _, id := range retired {
		if alive[id] {
			alive[id] = false
			dead++
		}
	}
	m := n - dead + len(added)
	// The regime is re-resolved at the new size: insert batches can push a
	// materialized plane over the guard (it degrades) and retire batches
	// can bring an oversized one back under it (it re-materializes), each
	// matching what a cold build at the new size would pick.
	newRegime := resolveRegime(p.want, m, p.maxBytes, false)
	q := &Plane{
		answers:  make([]relation.Tuple, 0, m),
		rel:      make([]float64, 0, m),
		relFn:    p.relFn,
		disFn:    p.disFn,
		keyedRel: p.keyedRel,
		keyedDis: p.keyedDis,
		maxBytes: p.maxBytes,
		want:     p.want,
		regime:   newRegime,
		shardCap: memoShardCap(newRegime, m, p.maxBytes),
		shards:   make([]memoShard, memoShards),
	}
	if p.keys != nil {
		q.keys = make([]string, 0, m)
	}
	// Merge surviving old IDs with the added tuples in ascending order,
	// recording each new ID's provenance (old ID, or -1 for added).
	poll := ctxpoll.New(ctx)
	fromOld := make([]int, 0, m)
	i, j := 0, 0
	for i < n || j < len(added) {
		if poll.Stop() {
			return nil, poll.Err()
		}
		for i < n && !alive[i] {
			i++
		}
		if i >= n && j >= len(added) {
			break // only tombstones remained
		}
		switch {
		case i >= n:
			q.appendAnswer(added[j])
			fromOld = append(fromOld, -1)
			j++
		case j >= len(added) || p.answers[i].Compare(added[j]) < 0:
			q.appendCopied(p, i)
			fromOld = append(fromOld, i)
			i++
		default:
			q.appendAnswer(added[j])
			fromOld = append(fromOld, -1)
			j++
		}
	}
	// The retire path can lower the max relevance: rescan so the bound
	// matches a cold build exactly.
	if dead > 0 {
		q.maxRel = 0
		for _, r := range q.rel {
			if r > q.maxRel {
				q.maxRel = r
			}
		}
	}
	if q.regime == RegimeMaterialized && p.triReady.Load() {
		// Matrix → matrix: copy surviving pairs, evaluate pairs that
		// touch an added tuple, and track the running max like the cold
		// fill does.
		tri := make([]float64, m*(m-1)/2)
		maxDis := 0.0
		for b := 1; b < m; b++ {
			if poll.Stop() {
				return nil, poll.Err()
			}
			off := b * (b - 1) / 2
			ob := fromOld[b]
			for a := 0; a < b; a++ {
				var d float64
				if oa := fromOld[a]; oa >= 0 && ob >= 0 {
					d = p.tri[triIndex(oa, ob)]
				} else {
					d = q.rawDis(a, b)
				}
				tri[off+a] = d
				if d > maxDis {
					maxDis = d
				}
			}
		}
		q.tri = tri
		q.maxDis, q.haveMaxDis, q.maxDisN = maxDis, true, m
		q.triReady.Store(true)
		return q, nil
	}
	if q.regime == RegimeTiled && p.tilesReady.Load() {
		// Tiles → tiles: the float32 roundings of surviving pairs are
		// copied verbatim — float32(rawDis) for a pure δdis is the same
		// bits a cold fill would store — and only pairs touching an added
		// tuple evaluate δdis.
		tiles := make([]float32, tiledBytes(m)/4)
		maxDis := 0.0
		for b := 1; b < m; b++ {
			if poll.Stop() {
				return nil, poll.Err()
			}
			ob := fromOld[b]
			for a := 0; a < b; a++ {
				var d float32
				if oa := fromOld[a]; oa >= 0 && ob >= 0 {
					oi, oj := oa, ob
					if oi > oj {
						oi, oj = oj, oi
					}
					d = p.tiles[tileIndex(oi, oj)]
				} else {
					d = float32(q.rawDis(a, b))
				}
				tiles[tileIndex(a, b)] = d
				if fd := float64(d); fd > maxDis {
					maxDis = fd
				}
			}
		}
		q.tiles = tiles
		q.maxDis, q.haveMaxDis, q.maxDisN = maxDis, true, m
		q.tilesReady.Store(true)
		return q, nil
	}
	// No pair store to carry (indexed and memoized regimes, or a store
	// whose source wasn't filled): distances stay on demand and — in the
	// indexed regime — the index rebuilds lazily on first use, which is
	// trivially identical to a cold build since it is a pure function of
	// the merged answer set. Carry cached pairs of surviving IDs across
	// under their new IDs so the memo warmth survives the rebase, holding
	// the new plane's per-shard cap (no evictions during carry: cold pairs
	// just stay uncarried).
	if !p.triReady.Load() && !p.tilesReady.Load() {
		old2new := make([]int, n)
		for k := range old2new {
			old2new[k] = -1
		}
		for newID, oldID := range fromOld {
			if oldID >= 0 {
				old2new[oldID] = newID
			}
		}
		for s := range p.shards {
			shard := &p.shards[s]
			shard.mu.Lock()
			for key, d := range shard.m {
				oi, oj := int(key>>32), int(key&0xffffffff)
				ni, nj := old2new[oi], old2new[oj]
				if ni < 0 || nj < 0 {
					continue
				}
				if ni > nj {
					ni, nj = nj, ni
				}
				nkey := uint64(ni)<<32 | uint64(nj)
				ns := &q.shards[(nkey*0x9E3779B97F4A7C15)>>(64-6)]
				if ns.m == nil {
					ns.m = make(map[uint64]float64)
				}
				if len(ns.m) >= q.shardCap {
					continue
				}
				ns.m[nkey] = d
			}
			shard.mu.Unlock()
		}
	}
	return q, nil
}

// EvalIDs computes F(U) for a candidate set given by plane IDs, mirroring
// Eval's accumulation order exactly so the two paths agree to the last bit
// (for symmetric δdis with a zero diagonal, per the paper's contract).
func (o *Objective) EvalIDs(p *Plane, ids []int) float64 {
	switch o.Kind {
	case MaxSum:
		k := len(ids)
		if k == 0 {
			return 0
		}
		relSum := 0.0
		for _, id := range ids {
			relSum += p.rel[id]
		}
		disSum := 0.0
		for a := range ids {
			for b := a + 1; b < len(ids); b++ {
				disSum += p.Dis(ids[a], ids[b])
			}
		}
		return float64(k-1)*(1-o.Lambda)*relSum + o.Lambda*2*disSum
	case MaxMin:
		if len(ids) == 0 {
			return 0
		}
		minRel := infPos()
		for _, id := range ids {
			if r := p.rel[id]; r < minRel {
				minRel = r
			}
		}
		minDis := 0.0
		if len(ids) >= 2 {
			minDis = infPos()
			for a := range ids {
				for b := a + 1; b < len(ids); b++ {
					if d := p.Dis(ids[a], ids[b]); d < minDis {
						minDis = d
					}
				}
			}
		}
		return (1-o.Lambda)*minRel + o.Lambda*minDis
	case Mono:
		n := p.Len()
		var sums []float64
		if n > 1 && o.Lambda != 0 {
			sums = p.RowSums()
		}
		sum := 0.0
		for _, id := range ids {
			sum += (1 - o.Lambda) * p.rel[id]
			if sums != nil {
				sum += o.Lambda / float64(n-1) * sums[id]
			}
		}
		return sum
	default:
		return 0
	}
}

// MonoScoresPlane is MonoScores on the interned plane: v(t) per answer from
// the precomputed relevance vector and cached distance row sums. After the
// first call the per-solve cost drops from O(n²) interface calls to O(n)
// float arithmetic.
func (o *Objective) MonoScoresPlane(p *Plane) []float64 {
	n := p.Len()
	var sums []float64
	if n > 1 && o.Lambda != 0 {
		sums = p.RowSums()
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		v := (1 - o.Lambda) * p.rel[i]
		if sums != nil {
			v += o.Lambda / float64(n-1) * sums[i]
		}
		out[i] = v
	}
	return out
}

// MaxSumDeltaIDs is MaxSumDelta on plane IDs: the FMS gain of adding cand
// to the chosen IDs at target size k, accumulated in chosen order to match
// the tuple path bit-for-bit.
func (o *Objective) MaxSumDeltaIDs(p *Plane, chosen []int, cand, k int) float64 {
	d := float64(k-1) * (1 - o.Lambda) * p.rel[cand]
	for _, id := range chosen {
		d += o.Lambda * 2 * p.Dis(id, cand)
	}
	return d
}

func infPos() float64 { return math.Inf(1) }
