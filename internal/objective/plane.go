// The interned score plane: answer tuples are interned into dense int IDs
// at prepare time, the relevance vector δrel is precomputed per ID, and the
// symmetric pairwise distance matrix δdis is either materialized as a packed
// triangular []float64 (filled in parallel across GOMAXPROCS workers) or —
// above a memory-guard threshold — served from a sharded memoizing cache.
// Every solver then runs on IDs and contiguous float loads instead of
// interface dispatch plus Tuple.Key() string hashing per lookup: the same
// compute-shared-subexpressions-once discipline that factorised databases
// (Bakibayev et al., FDB) apply to query plans, applied here to scoring.
//
// The plane assumes the paper's contract for δdis: symmetric with a zero
// diagonal. Pair values are evaluated once in canonical (lower ID, higher
// ID) argument order; an asymmetric distance function would be observed in
// canonical order only.
package objective

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/ctxpoll"
	"repro/internal/relation"
)

// DefaultMaxMatrixBytes is the default memory guard for the materialized
// distance matrix: planes whose packed triangle would exceed it fall back to
// the sharded memoizing cache. 64 MiB holds n ≈ 4096 answers.
const DefaultMaxMatrixBytes = 64 << 20

// memoShards is the number of lock shards in the fallback cache; a power of
// two so the hash can mask.
const memoShards = 64

// PlaneOptions tune plane construction.
type PlaneOptions struct {
	// MaxMatrixBytes caps the packed triangular matrix; 0 means
	// DefaultMaxMatrixBytes. Materialize refuses (and the plane stays on
	// the memoizing cache) when n(n-1)/2 float64 cells would exceed it.
	MaxMatrixBytes int64
	// Streaming builds an appendable plane for online procedures: IDs are
	// assigned in arrival order via Append, distances are always served
	// from the memoizing cache, and Materialize is a no-op.
	Streaming bool
}

// Plane is the interned score plane over one answer set. It holds only the
// λ-independent score data (relevance vector, pairwise distances, cached
// row sums), so a single plane serves solves under any Kind and λ as long
// as the δrel/δdis functions are unchanged; Objective.EvalIDs and friends
// combine it with the per-call Kind and λ.
//
// A plane is safe for concurrent readers (including concurrent lazy
// materialization and memo fills); Append is single-writer.
type Plane struct {
	answers []relation.Tuple
	rel     []float64
	maxRel  float64
	keys    []string // precomputed Tuple.Key()s when a Keyed impl is present

	relFn     Relevance
	disFn     Distance
	keyedRel  KeyedRelevance // non-nil when relFn accepts precomputed keys
	keyedDis  KeyedDistance  // non-nil when disFn accepts precomputed keys
	maxBytes  int64
	streaming bool

	triReady atomic.Bool
	tri      []float64 // packed lower triangle, index(i<j) = j(j-1)/2 + i

	shards []memoShard
	// memoCap bounds the fallback cache to roughly the same byte budget as
	// the matrix guard (entries are ~16 bytes of key+value before map
	// overhead); once reached, further pairs are recomputed instead of
	// stored, so the memoized regime — including streaming planes, which
	// never materialize — cannot grow without bound.
	memoCap   int64
	memoCount atomic.Int64

	mu         sync.Mutex // guards materialization and the lazy scalars below
	haveMaxDis bool
	maxDis     float64
	maxDisN    int // the n maxDis was computed at (streaming planes grow)
	rowSums    []float64
}

type memoShard struct {
	mu sync.Mutex
	m  map[uint64]float64
}

// NewPlane builds a plane over answers. Distances are not computed yet:
// materialization (or memoization on demand) happens on first use, so
// relevance-only consumers pay O(n) and nothing more.
func NewPlane(o *Objective, answers []relation.Tuple, opts PlaneOptions) *Plane {
	p, _ := NewPlaneContext(context.Background(), o, answers, opts)
	return p
}

// NewPlaneContext is NewPlane under a cancellation context (the O(n)
// relevance fill polls it).
func NewPlaneContext(ctx context.Context, o *Objective, answers []relation.Tuple, opts PlaneOptions) (*Plane, error) {
	maxBytes := opts.MaxMatrixBytes
	if maxBytes <= 0 {
		maxBytes = DefaultMaxMatrixBytes
	}
	p := &Plane{
		answers:   answers,
		relFn:     o.Rel,
		disFn:     o.Dis,
		maxBytes:  maxBytes,
		memoCap:   maxBytes / 16,
		streaming: opts.Streaming,
		shards:    make([]memoShard, memoShards),
	}
	if kr, ok := o.Rel.(KeyedRelevance); ok {
		p.keyedRel = kr
	}
	if kd, ok := o.Dis.(KeyedDistance); ok {
		p.keyedDis = kd
	}
	poll := ctxpoll.New(ctx)
	if p.keyedRel != nil || p.keyedDis != nil {
		p.keys = make([]string, len(answers))
		for i, t := range answers {
			if poll.Stop() {
				return nil, poll.Err()
			}
			p.keys[i] = t.Key()
		}
	}
	p.rel = make([]float64, len(answers))
	for i := range answers {
		if poll.Stop() {
			return nil, poll.Err()
		}
		r := p.rawRel(i)
		p.rel[i] = r
		if r > p.maxRel {
			p.maxRel = r
		}
	}
	return p, nil
}

// Len reports the number of interned answers.
func (p *Plane) Len() int { return len(p.answers) }

// Tuple returns the answer tuple interned as id.
func (p *Plane) Tuple(id int) relation.Tuple { return p.answers[id] }

// Answers returns the interned answer slice in ID order (shared; do not
// mutate).
func (p *Plane) Answers() []relation.Tuple { return p.answers }

// Rel returns δrel of the answer interned as id.
func (p *Plane) Rel(id int) float64 { return p.rel[id] }

// MaxRel returns max δrel over the interned answers (0 when empty, matching
// the solvers' optimistic-bound seed).
func (p *Plane) MaxRel() float64 { return p.maxRel }

// Materialized reports whether the packed distance matrix is filled.
func (p *Plane) Materialized() bool { return p.triReady.Load() }

// rawRel evaluates δrel for id through the keyed fast path when available.
func (p *Plane) rawRel(id int) float64 {
	if p.keyedRel != nil {
		return p.keyedRel.RelKey(p.keys[id])
	}
	return p.relFn.Rel(p.answers[id])
}

// rawDis evaluates δdis for i < j in canonical argument order, through the
// keyed fast path when available. It does not consult or fill any cache.
func (p *Plane) rawDis(i, j int) float64 {
	if p.keyedDis != nil {
		return p.keyedDis.DisKeys(p.keys[i], p.keys[j])
	}
	return p.disFn.Dis(p.answers[i], p.answers[j])
}

// triIndex packs the lower triangle row-by-row: cell (i, j) with i < j lives
// at j(j-1)/2 + i. The packing is independent of n, so streaming planes
// could grow it row-by-row.
func triIndex(i, j int) int { return j*(j-1)/2 + i }

// Dis returns δdis between the answers interned as i and j: a contiguous
// float load when materialized, a memoized evaluation otherwise, and 0 on
// the diagonal.
func (p *Plane) Dis(i, j int) float64 {
	if i == j {
		return 0
	}
	if i > j {
		i, j = j, i
	}
	if p.triReady.Load() {
		return p.tri[triIndex(i, j)]
	}
	return p.memoDis(i, j)
}

// memoDis serves a pair from the sharded cache, computing and storing it on
// a miss. The user function runs outside the shard lock (it may be slow); a
// racing duplicate computation stores the same deterministic value.
func (p *Plane) memoDis(i, j int) float64 {
	key := uint64(i)<<32 | uint64(j)
	s := &p.shards[(key*0x9E3779B97F4A7C15)>>(64-6)]
	s.mu.Lock()
	if d, ok := s.m[key]; ok {
		s.mu.Unlock()
		return d
	}
	s.mu.Unlock()
	d := p.rawDis(i, j)
	// The count may overshoot the cap slightly under concurrent misses;
	// it is a memory guard, not an exact quota.
	if p.memoCount.Load() < p.memoCap {
		p.memoCount.Add(1)
		s.mu.Lock()
		if s.m == nil {
			s.m = make(map[uint64]float64)
		}
		s.m[key] = d
		s.mu.Unlock()
	}
	return d
}

// Materialize is MaterializeContext under context.Background.
func (p *Plane) Materialize() bool {
	ok, _ := p.MaterializeContext(context.Background())
	return ok
}

// MaterializeContext fills the packed triangular distance matrix in
// parallel across GOMAXPROCS workers, unless the plane is streaming or the
// matrix would exceed the memory guard (in which case it reports false and
// the plane keeps serving from the memoizing cache). It is idempotent and
// safe under concurrent readers: until the fill completes, Dis keeps
// answering from the cache.
func (p *Plane) MaterializeContext(ctx context.Context) (bool, error) {
	if p.streaming {
		return false, nil
	}
	n := len(p.answers)
	pairs := n * (n - 1) / 2
	if int64(pairs)*8 > p.maxBytes {
		return false, nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.triReady.Load() {
		return true, nil
	}
	tri := make([]float64, pairs)
	maxDis, err := p.fillParallel(ctx, tri)
	if err != nil {
		return false, err
	}
	p.tri = tri
	p.maxDis, p.haveMaxDis, p.maxDisN = maxDis, true, n
	p.triReady.Store(true)
	return true, nil
}

// fillParallel computes every (i < j) cell of tri, striping whole rows
// across workers via an atomic row counter, and returns the maximum cell.
// Each cell is a pure function of its pair, so the result is deterministic
// regardless of scheduling; the max merge is order-independent.
func (p *Plane) fillParallel(ctx context.Context, tri []float64) (float64, error) {
	n := len(p.answers)
	if n < 2 {
		return 0, nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n-1 {
		workers = n - 1
	}
	if workers < 1 {
		workers = 1
	}
	const rowChunk = 8
	var next atomic.Int64
	next.Store(1) // row j ranges over [1, n)
	maxes := make([]float64, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			poll := ctxpoll.New(ctx)
			localMax := 0.0
			for {
				lo := int(next.Add(rowChunk)) - rowChunk
				if lo >= n {
					break
				}
				hi := lo + rowChunk
				if hi > n {
					hi = n
				}
				for j := lo; j < hi; j++ {
					if poll.Stop() {
						errs[w] = poll.Err()
						return
					}
					off := j * (j - 1) / 2
					for i := 0; i < j; i++ {
						d := p.rawDis(i, j)
						tri[off+i] = d
						if d > localMax {
							localMax = d
						}
					}
				}
			}
			maxes[w] = localMax
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	maxDis := 0.0
	for _, m := range maxes {
		if m > maxDis {
			maxDis = m
		}
	}
	return maxDis, nil
}

// MaxDis is MaxDisContext under context.Background.
func (p *Plane) MaxDis() float64 {
	v, _ := p.MaxDisContext(context.Background())
	return v
}

// MaxDisContext returns max pairwise δdis over the interned answers (0 when
// fewer than two). It materializes the matrix when the guard allows — the
// scan pays for every pair anyway — and otherwise scans without storing, so
// the memory guard holds even for this O(n²) pass.
func (p *Plane) MaxDisContext(ctx context.Context) (float64, error) {
	n := len(p.answers)
	p.mu.Lock()
	if p.haveMaxDis && p.maxDisN == n {
		v := p.maxDis
		p.mu.Unlock()
		return v, nil
	}
	p.mu.Unlock()
	if ok, err := p.MaterializeContext(ctx); err != nil {
		return 0, err
	} else if ok {
		p.mu.Lock()
		defer p.mu.Unlock()
		return p.maxDis, nil
	}
	// Memoized regime: scan through Dis so the pairs this pass pays for
	// warm the cache (bounded by memoCap) for the search walk that follows.
	poll := ctxpoll.New(ctx)
	maxDis := 0.0
	for j := 1; j < n; j++ {
		if poll.Stop() {
			return 0, poll.Err()
		}
		for i := 0; i < j; i++ {
			if d := p.Dis(i, j); d > maxDis {
				maxDis = d
			}
		}
	}
	p.mu.Lock()
	p.maxDis, p.haveMaxDis, p.maxDisN = maxDis, true, n
	p.mu.Unlock()
	return maxDis, nil
}

// RowSums returns, for each id, Σ over all answers of δdis(id, ·) — the
// shared subexpression of every Fmono score — accumulated in ascending ID
// order for reproducible floating point. The result is cached; in the
// memoized regime the scan computes pairs directly without storing them, so
// the memory guard holds.
func (p *Plane) RowSums() []float64 {
	n := len(p.answers)
	p.mu.Lock()
	if p.rowSums != nil && len(p.rowSums) == n {
		sums := p.rowSums
		p.mu.Unlock()
		return sums
	}
	p.mu.Unlock()
	p.MaterializeContext(context.Background())
	dis := p.Dis
	if !p.triReady.Load() {
		dis = func(i, j int) float64 {
			if i == j {
				return 0
			}
			if i > j {
				i, j = j, i
			}
			return p.rawDis(i, j)
		}
	}
	sums := make([]float64, n)
	for i := 0; i < n; i++ {
		g := 0.0
		for j := 0; j < n; j++ {
			if j != i {
				g += dis(i, j)
			}
		}
		sums[i] = g
	}
	p.mu.Lock()
	if p.rowSums == nil || len(p.rowSums) != n {
		p.rowSums = sums
	} else {
		sums = p.rowSums
	}
	p.mu.Unlock()
	return sums
}

// Append interns a new answer on a streaming plane, returning its ID.
// Distances to it are memoized on first use, so an append is O(1) beyond
// its relevance evaluation. Single-writer: the streaming procedures append
// from the evaluation goroutine only.
func (p *Plane) Append(t relation.Tuple) int {
	if !p.streaming {
		panic("objective: Append on a non-streaming plane")
	}
	id := len(p.answers)
	p.answers = append(p.answers, t)
	if p.keys != nil {
		p.keys = append(p.keys, t.Key())
	}
	p.rel = append(p.rel, 0)
	r := p.rawRel(id)
	p.rel[id] = r
	if r > p.maxRel {
		p.maxRel = r
	}
	return id
}

// EvalIDs computes F(U) for a candidate set given by plane IDs, mirroring
// Eval's accumulation order exactly so the two paths agree to the last bit
// (for symmetric δdis with a zero diagonal, per the paper's contract).
func (o *Objective) EvalIDs(p *Plane, ids []int) float64 {
	switch o.Kind {
	case MaxSum:
		k := len(ids)
		if k == 0 {
			return 0
		}
		relSum := 0.0
		for _, id := range ids {
			relSum += p.rel[id]
		}
		disSum := 0.0
		for a := range ids {
			for b := a + 1; b < len(ids); b++ {
				disSum += p.Dis(ids[a], ids[b])
			}
		}
		return float64(k-1)*(1-o.Lambda)*relSum + o.Lambda*2*disSum
	case MaxMin:
		if len(ids) == 0 {
			return 0
		}
		minRel := infPos()
		for _, id := range ids {
			if r := p.rel[id]; r < minRel {
				minRel = r
			}
		}
		minDis := 0.0
		if len(ids) >= 2 {
			minDis = infPos()
			for a := range ids {
				for b := a + 1; b < len(ids); b++ {
					if d := p.Dis(ids[a], ids[b]); d < minDis {
						minDis = d
					}
				}
			}
		}
		return (1-o.Lambda)*minRel + o.Lambda*minDis
	case Mono:
		n := p.Len()
		var sums []float64
		if n > 1 && o.Lambda != 0 {
			sums = p.RowSums()
		}
		sum := 0.0
		for _, id := range ids {
			sum += (1 - o.Lambda) * p.rel[id]
			if sums != nil {
				sum += o.Lambda / float64(n-1) * sums[id]
			}
		}
		return sum
	default:
		return 0
	}
}

// MonoScoresPlane is MonoScores on the interned plane: v(t) per answer from
// the precomputed relevance vector and cached distance row sums. After the
// first call the per-solve cost drops from O(n²) interface calls to O(n)
// float arithmetic.
func (o *Objective) MonoScoresPlane(p *Plane) []float64 {
	n := p.Len()
	var sums []float64
	if n > 1 && o.Lambda != 0 {
		sums = p.RowSums()
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		v := (1 - o.Lambda) * p.rel[i]
		if sums != nil {
			v += o.Lambda / float64(n-1) * sums[i]
		}
		out[i] = v
	}
	return out
}

// MaxSumDeltaIDs is MaxSumDelta on plane IDs: the FMS gain of adding cand
// to the chosen IDs at target size k, accumulated in chosen order to match
// the tuple path bit-for-bit.
func (o *Objective) MaxSumDeltaIDs(p *Plane, chosen []int, cand, k int) float64 {
	d := float64(k-1) * (1 - o.Lambda) * p.rel[cand]
	for _, id := range chosen {
		d += o.Lambda * 2 * p.Dis(id, cand)
	}
	return d
}

func infPos() float64 { return math.Inf(1) }
