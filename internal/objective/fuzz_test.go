package objective

import (
	"testing"

	"repro/internal/relation"
)

// fuzzInstance decodes the fuzz input into a small scored answer set: up to
// 12 two-column integer points, a λ, an objective kind, and a candidate
// subset. The decoding never fails — malformed inputs just wrap around —
// so every input exercises the equivalence property.
func fuzzInstance(data []byte) (o *Objective, answers []relation.Tuple, ids []int) {
	if len(data) < 4 {
		return nil, nil, nil
	}
	n := 2 + int(data[0])%11
	kind := Kind(int(data[1]) % 3)
	lambda := float64(data[2]%101) / 100
	k := 1 + int(data[3])%n
	rest := data[4:]
	at := func(i int) int64 {
		if len(rest) == 0 {
			return int64(i)
		}
		return int64(int8(rest[i%len(rest)]))
	}
	seen := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		t := relation.Ints(at(2*i), at(2*i+1))
		if seen[t.Key()] {
			continue // answer sets are sets
		}
		seen[t.Key()] = true
		answers = append(answers, t)
	}
	if k > len(answers) {
		k = len(answers)
	}
	// Pick k distinct IDs, spread by a decoded stride. The decoded bytes are
	// signed, so normalize both into [0, len).
	mod := func(x int64) int {
		m := int(x) % len(answers)
		if m < 0 {
			m += len(answers)
		}
		return m
	}
	stride := 1 + mod(at(2*n))
	used := make([]bool, len(answers))
	id := mod(at(2*n + 1))
	for len(ids) < k {
		for used[id] {
			id = (id + 1) % len(answers)
		}
		used[id] = true
		ids = append(ids, id)
		id = (id + stride) % len(answers)
	}
	return New(kind, AttrRelevance(0, 1), EuclideanDistance(), lambda), answers, ids
}

// FuzzObjectiveEquivalence asserts the PR 2 contract under adversarial
// inputs: scoring through the interned plane — materialized or memoized —
// must agree bit-for-bit with scoring through the δrel/δdis interfaces,
// for full evaluations, per-answer mono scores and greedy marginal gains.
func FuzzObjectiveEquivalence(f *testing.F) {
	f.Add([]byte{5, 0, 50, 2, 1, 9, 3, 7, 2, 8, 6, 4})
	f.Add([]byte{11, 1, 100, 4, 250, 3, 17, 99, 5, 5, 5, 6, 120, 0})
	f.Add([]byte{3, 2, 0, 1, 1, 2, 3, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		o, answers, ids := fuzzInstance(data)
		if o == nil {
			return
		}
		u := make([]relation.Tuple, len(ids))
		for i, id := range ids {
			u[i] = answers[id]
		}
		want := o.Eval(u, answers)
		for _, plane := range []*Plane{
			NewPlane(o, answers, PlaneOptions{}),
			// A 64-byte matrix budget forces the sharded memoizing fallback.
			NewPlane(o, answers, PlaneOptions{MaxMatrixBytes: 64}),
		} {
			plane.Materialize()
			if got := o.EvalIDs(plane, ids); got != want {
				t.Fatalf("EvalIDs (materialized=%v) = %v, Eval = %v (kind %v, λ=%v, n=%d, ids %v)",
					plane.Materialized(), got, want, o.Kind, o.Lambda, len(answers), ids)
			}
			direct := o.MonoScores(answers)
			viaPlane := o.MonoScoresPlane(plane)
			for i := range direct {
				if direct[i] != viaPlane[i] {
					t.Fatalf("MonoScores[%d]: plane %v != direct %v", i, viaPlane[i], direct[i])
				}
			}
			chosen := u[:len(u)-1]
			chosenIDs := ids[:len(ids)-1]
			cand := ids[len(ids)-1]
			dWant := o.MaxSumDelta(chosen, answers[cand], len(ids))
			if dGot := o.MaxSumDeltaIDs(plane, chosenIDs, cand, len(ids)); dGot != dWant {
				t.Fatalf("MaxSumDeltaIDs = %v, MaxSumDelta = %v", dGot, dWant)
			}
			for i, id := range ids {
				if plane.Rel(id) != o.Rel.Rel(answers[id]) {
					t.Fatalf("Rel(%d): plane %v != direct %v", id, plane.Rel(id), o.Rel.Rel(answers[id]))
				}
				for _, jd := range ids[i+1:] {
					if plane.Dis(id, jd) != plane.Dis(jd, id) {
						t.Fatalf("Dis(%d,%d) asymmetric through the plane", id, jd)
					}
					if plane.Dis(id, jd) != o.Dis.Dis(answers[id], answers[jd]) {
						t.Fatalf("Dis(%d,%d): plane %v != direct %v", id, jd,
							plane.Dis(id, jd), o.Dis.Dis(answers[id], answers[jd]))
					}
				}
			}
		}
	})
}
