package objective

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/relation"
)

func tuples(xs ...int64) []relation.Tuple {
	out := make([]relation.Tuple, len(xs))
	for i, x := range xs {
		out[i] = relation.Ints(x)
	}
	return out
}

func TestKindString(t *testing.T) {
	if MaxSum.String() != "FMS" || MaxMin.String() != "FMM" || Mono.String() != "Fmono" {
		t.Error("Kind names wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Error("unknown kind name wrong")
	}
}

func TestNewDefaultsAndClamping(t *testing.T) {
	o := New(MaxSum, nil, nil, -0.5)
	if o.Lambda != 0 {
		t.Errorf("lambda should clamp to 0, got %v", o.Lambda)
	}
	if o.Rel.Rel(relation.Ints(1)) != 1 {
		t.Error("default relevance should be constant 1")
	}
	if o.Dis.Dis(relation.Ints(1), relation.Ints(2)) != 0 {
		t.Error("default distance should be zero")
	}
	if New(MaxSum, nil, nil, 1.5).Lambda != 1 {
		t.Error("lambda should clamp to 1")
	}
}

func TestConstRelevanceAndZeroDistance(t *testing.T) {
	r := ConstRelevance(3.5)
	if r.Rel(relation.Ints(1)) != 3.5 {
		t.Error("ConstRelevance wrong")
	}
	d := ZeroDistance()
	if d.Dis(relation.Ints(1), relation.Ints(2)) != 0 {
		t.Error("ZeroDistance wrong")
	}
}

func TestTableRelevance(t *testing.T) {
	tr := (&TableRelevance{Default: 0.5}).Set(relation.Ints(1), 4)
	if tr.Rel(relation.Ints(1)) != 4 {
		t.Error("stored score missed")
	}
	if tr.Rel(relation.Ints(2)) != 0.5 {
		t.Error("default score missed")
	}
}

func TestAttrRelevance(t *testing.T) {
	r := AttrRelevance(1, 2.0)
	if got := r.Rel(relation.Ints(9, 3)); got != 6 {
		t.Errorf("AttrRelevance = %v, want 6", got)
	}
	if got := r.Rel(relation.Ints(9)); got != 0 {
		t.Errorf("out-of-range column should score 0, got %v", got)
	}
	if got := r.Rel(relation.Ints(9, -3)); got != 0 {
		t.Errorf("negative scores clamp to 0, got %v", got)
	}
}

func TestHammingDistance(t *testing.T) {
	d := HammingDistance()
	if got := d.Dis(relation.Ints(1, 2, 3), relation.Ints(1, 9, 9)); got != 2 {
		t.Errorf("Hamming = %v, want 2", got)
	}
	if got := d.Dis(relation.Ints(1, 2), relation.Ints(1, 2)); got != 0 {
		t.Errorf("identical tuples distance = %v, want 0", got)
	}
}

func TestWeightedHamming(t *testing.T) {
	d := WeightedHamming([]float64{5, 1})
	if got := d.Dis(relation.Ints(0, 0), relation.Ints(1, 1)); got != 6 {
		t.Errorf("weighted = %v, want 6", got)
	}
}

func TestEuclideanDistance(t *testing.T) {
	d := EuclideanDistance()
	if got := d.Dis(relation.Ints(0, 0), relation.Ints(3, 4)); got != 5 {
		t.Errorf("euclidean = %v, want 5", got)
	}
}

func TestTableDistance(t *testing.T) {
	a, b, c := relation.Ints(1), relation.Ints(2), relation.Ints(3)
	td := NewTableDistance(0.25).Set(a, b, 7)
	if td.Dis(a, b) != 7 || td.Dis(b, a) != 7 {
		t.Error("TableDistance should be symmetric")
	}
	if td.Dis(a, c) != 0.25 {
		t.Error("default distance missed")
	}
	if td.Dis(a, a) != 0 {
		t.Error("self distance must be 0")
	}
}

func TestMaxSumEval(t *testing.T) {
	// k=3 tuples, rel=1 each, all pairwise distances 1, λ=0.5:
	// (k-1)(1-λ)·3 + λ·2·3 = 2·0.5·3 + 0.5·6 = 3 + 3 = 6.
	o := New(MaxSum, ConstRelevance(1), DistanceFunc(func(s, t relation.Tuple) float64 {
		if s.Equal(t) {
			return 0
		}
		return 1
	}), 0.5)
	u := tuples(1, 2, 3)
	if got := o.Eval(u, u); got != 6 {
		t.Errorf("FMS = %v, want 6", got)
	}
}

func TestMaxSumMatchesTheorem51Bound(t *testing.T) {
	// λ=1, l tuples with all pairwise distances 1: FMS = l(l-1), the bound
	// B used in the Thm 5.1 reduction.
	l := 5
	o := New(MaxSum, ConstRelevance(1), DistanceFunc(func(s, t relation.Tuple) float64 {
		if s.Equal(t) {
			return 0
		}
		return 1
	}), 1)
	u := tuples(1, 2, 3, 4, 5)
	if got, want := o.Eval(u, u), float64(l*(l-1)); got != want {
		t.Errorf("FMS = %v, want %v", got, want)
	}
}

func TestMaxMinEval(t *testing.T) {
	rel := &TableRelevance{Default: 0}
	rel.Set(relation.Ints(1), 3).Set(relation.Ints(2), 5).Set(relation.Ints(3), 4)
	dis := NewTableDistance(0)
	dis.Set(relation.Ints(1), relation.Ints(2), 2)
	dis.Set(relation.Ints(1), relation.Ints(3), 8)
	dis.Set(relation.Ints(2), relation.Ints(3), 6)
	o := New(MaxMin, rel, dis, 0.5)
	// min rel = 3, min dis = 2: 0.5·3 + 0.5·2 = 2.5.
	if got := o.Eval(tuples(1, 2, 3), nil); got != 2.5 {
		t.Errorf("FMM = %v, want 2.5", got)
	}
}

func TestMaxMinSingleton(t *testing.T) {
	o := New(MaxMin, ConstRelevance(4), nil, 0.5)
	// |U|=1: diversity term is 0 by convention.
	if got := o.Eval(tuples(1), nil); got != 2 {
		t.Errorf("FMM singleton = %v, want 2", got)
	}
}

func TestEmptySetEvaluatesZero(t *testing.T) {
	for _, k := range []Kind{MaxSum, MaxMin, Mono} {
		o := New(k, ConstRelevance(1), HammingDistance(), 0.5)
		if got := o.Eval(nil, tuples(1, 2)); got != 0 {
			t.Errorf("%v(∅) = %v, want 0", k, got)
		}
	}
}

func TestMonoEval(t *testing.T) {
	// Answers {1,2,3}, U = {1}. Hamming distance on 1-column ints: distance
	// 1 between distinct. λ=1: Fmono({1}) = 1/(3-1)·(0+1+1) = 1.
	o := New(Mono, ConstRelevance(1), HammingDistance(), 1)
	ans := tuples(1, 2, 3)
	if got := o.Eval(tuples(1), ans); got != 1 {
		t.Errorf("Fmono = %v, want 1", got)
	}
	// λ=0: pure relevance sum.
	o0 := New(Mono, ConstRelevance(2), HammingDistance(), 0)
	if got := o0.Eval(tuples(1, 2), ans); got != 4 {
		t.Errorf("Fmono λ=0 = %v, want 4", got)
	}
}

func TestMonoSingletonAnswerSpace(t *testing.T) {
	// |Q(D)| = 1: normalized diversity term defined as 0.
	o := New(Mono, ConstRelevance(3), HammingDistance(), 0.5)
	if got := o.Eval(tuples(1), tuples(1)); got != 1.5 {
		t.Errorf("Fmono singleton space = %v, want 1.5", got)
	}
}

func TestMonoScoresModularity(t *testing.T) {
	o := New(Mono, AttrRelevance(0, 1), HammingDistance(), 0.3)
	ans := tuples(1, 2, 3, 4)
	scores := o.MonoScores(ans)
	// Fmono(U) must equal the sum of per-tuple scores for any U.
	u := []relation.Tuple{ans[0], ans[2]}
	want := scores[0] + scores[2]
	if got := o.Eval(u, ans); math.Abs(got-want) > 1e-12 {
		t.Errorf("Fmono = %v, want modular sum %v", got, want)
	}
}

func TestMaxSumDeltaConsistency(t *testing.T) {
	o := New(MaxSum, AttrRelevance(0, 1), HammingDistance(), 0.4)
	u := tuples(1, 2)
	t3 := relation.Ints(3)
	k := 3
	full := append(append([]relation.Tuple{}, u...), t3)
	got := o.Eval(u, nil) + o.MaxSumDelta(u, t3, k)
	// Eval(u) uses k=len(u)=2 for the relevance scaling, so recompute the
	// base with scaling (k-1): delta consistency holds for fixed-k scaling.
	base := 0.0
	for _, s := range u {
		base += float64(k-1) * (1 - o.Lambda) * o.Rel.Rel(s)
	}
	base += o.Lambda * 2 * o.Dis.Dis(u[0], u[1])
	want := o.Eval(full, nil)
	if math.Abs(base+o.MaxSumDelta(u, t3, k)-want) > 1e-12 {
		t.Errorf("delta-built = %v, direct = %v", base+o.MaxSumDelta(u, t3, k), want)
	}
	_ = got
}

// Property: λ=0 FMS reduces to scaled relevance sum; λ=1 FMS ignores
// relevance entirely.
func TestLambdaExtremesProperty(t *testing.T) {
	f := func(xs [4]int64) bool {
		u := tuples(xs[0], xs[1], xs[2], xs[3])
		rel := AttrRelevance(0, 1)
		dis := HammingDistance()
		o0 := New(MaxSum, rel, dis, 0)
		sum := 0.0
		for _, tt := range u {
			sum += rel.Rel(tt)
		}
		if math.Abs(o0.Eval(u, nil)-float64(len(u)-1)*sum) > 1e-9 {
			return false
		}
		o1a := New(MaxSum, rel, dis, 1)
		o1b := New(MaxSum, ConstRelevance(99), dis, 1)
		return math.Abs(o1a.Eval(u, nil)-o1b.Eval(u, nil)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: FMM is monotone non-increasing under adding tuples (the min can
// only fall), for constant relevance.
func TestMaxMinMonotoneProperty(t *testing.T) {
	f := func(xs []int64) bool {
		if len(xs) < 2 {
			return true
		}
		o := New(MaxMin, ConstRelevance(1), EuclideanDistance(), 1)
		u := tuples(xs...)
		return o.Eval(u, nil) <= o.Eval(u[:len(u)-1], nil)+1e-9 || len(u[:len(u)-1]) < 2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Fmono is modular — Eval(U) equals the sum of MonoScores.
func TestMonoModularProperty(t *testing.T) {
	f := func(xs [5]int64, pick [5]bool) bool {
		ans := tuples(xs[0], xs[1], xs[2], xs[3], xs[4])
		// Deduplicate answers (answer sets are sets).
		seen := map[string]bool{}
		var uniq []relation.Tuple
		for _, tt := range ans {
			if !seen[tt.Key()] {
				seen[tt.Key()] = true
				uniq = append(uniq, tt)
			}
		}
		o := New(Mono, AttrRelevance(0, 1), HammingDistance(), 0.5)
		scores := o.MonoScores(uniq)
		var u []relation.Tuple
		want := 0.0
		for i, tt := range uniq {
			if pick[i%len(pick)] {
				u = append(u, tt)
				want += scores[i]
			}
		}
		return math.Abs(o.Eval(u, uniq)-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
