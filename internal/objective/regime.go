// Plane regimes: how a score plane stores (or avoids storing) the n(n-1)/2
// pairwise δdis values. The regime is resolved once per plane from the answer
// count, the memory guard and the caller's request, and recorded so planners
// and metrics can report it.
package objective

import "fmt"

// Regime selects the distance-storage strategy of a score plane.
type Regime int

const (
	// RegimeAuto picks from n and the memory guard: the materialized
	// float64 triangle when it fits, the float32 tile store when that fits
	// instead, the metric index above both (for n >= IndexedMinN), and the
	// memoizing cache for small answer sets whose guard is tighter than
	// either store.
	RegimeAuto Regime = iota
	// RegimeMaterialized is the packed triangular []float64 filled in
	// parallel — O(n²) memory, O(1) exact lookups. Falls back to
	// RegimeMemoized when the triangle would exceed the memory guard.
	RegimeMaterialized
	// RegimeTiled is the block-tiled []float32 store: half the bytes per
	// pair (doubling the guard's effective ceiling), distances rounded to
	// float32 on store. Falls back to RegimeMemoized above the guard.
	RegimeTiled
	// RegimeIndexed stores no pairs at all: a vantage-point tree plus a
	// pivot table (O(n) memory) serve the greedy solvers through exact
	// triangle-inequality pruning, and everything else evaluates pairs on
	// demand through a small capped memo. Pruning assumes δdis satisfies
	// the triangle inequality (the same metric assumption under which the
	// greedy procedures carry their 2-approximation guarantees); for a
	// non-metric δdis, force RegimeMemoized instead.
	RegimeIndexed
	// RegimeMemoized serves every pair on demand from the sharded,
	// entry-capped memo cache — the regime that assumes nothing about δdis.
	RegimeMemoized
)

// IndexedMinN is the answer count below which RegimeAuto never picks the
// metric index: under it, the guard-constrained fallback stays the memoizing
// cache (index construction would cost more than it saves, and small planes
// are where non-metric distance tables show up in practice).
const IndexedMinN = 4096

// String returns the lowercase regime name.
func (r Regime) String() string {
	switch r {
	case RegimeAuto:
		return "auto"
	case RegimeMaterialized:
		return "materialized"
	case RegimeTiled:
		return "tiled"
	case RegimeIndexed:
		return "indexed"
	case RegimeMemoized:
		return "memoized"
	default:
		return fmt.Sprintf("Regime(%d)", int(r))
	}
}

// ParseRegime maps the textual regime names to the enum; the empty string
// selects RegimeAuto.
func ParseRegime(s string) (Regime, error) {
	switch s {
	case "auto", "":
		return RegimeAuto, nil
	case "materialized":
		return RegimeMaterialized, nil
	case "tiled":
		return RegimeTiled, nil
	case "indexed":
		return RegimeIndexed, nil
	case "memoized":
		return RegimeMemoized, nil
	default:
		return 0, fmt.Errorf("objective: unknown plane regime %q", s)
	}
}

// resolveRegime turns a requested regime into the one that will actually
// serve, holding the memory guard: an explicit materialized/tiled request
// that does not fit degrades to memoized (matching Materialize's historical
// refusal), streaming planes always memoize (IDs grow, stores cannot), and
// auto walks materialized → tiled → indexed by footprint, keeping small
// answer sets on the assumption-free memo cache.
func resolveRegime(want Regime, n int, maxBytes int64, streaming bool) Regime {
	if streaming {
		return RegimeMemoized
	}
	pairs := int64(n) * int64(n-1) / 2
	switch want {
	case RegimeMaterialized:
		if pairs*8 <= maxBytes {
			return RegimeMaterialized
		}
		return RegimeMemoized
	case RegimeTiled:
		if tiledBytes(n) <= maxBytes {
			return RegimeTiled
		}
		return RegimeMemoized
	case RegimeIndexed:
		return RegimeIndexed
	case RegimeMemoized:
		return RegimeMemoized
	}
	if pairs*8 <= maxBytes {
		return RegimeMaterialized
	}
	if n >= IndexedMinN {
		if tiledBytes(n) <= maxBytes {
			return RegimeTiled
		}
		return RegimeIndexed
	}
	return RegimeMemoized
}
