package objective

import (
	"context"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/relation"
)

// sortedTuples returns tuples in ascending canonical order.
func sortedTuples(ts []relation.Tuple) []relation.Tuple {
	out := append([]relation.Tuple(nil), ts...)
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// checkPlaneEqual asserts p and q expose bit-identical score state over the
// same answer set.
func checkPlaneEqual(t *testing.T, name string, got, want *Plane) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: Len = %d, want %d", name, got.Len(), want.Len())
	}
	n := want.Len()
	for i := 0; i < n; i++ {
		if !got.Tuple(i).Equal(want.Tuple(i)) {
			t.Fatalf("%s: Tuple(%d) = %v, want %v", name, i, got.Tuple(i), want.Tuple(i))
		}
		if got.Rel(i) != want.Rel(i) {
			t.Fatalf("%s: Rel(%d) = %v, want %v", name, i, got.Rel(i), want.Rel(i))
		}
		for j := i + 1; j < n; j++ {
			if got.Dis(i, j) != want.Dis(i, j) {
				t.Fatalf("%s: Dis(%d,%d) = %v, want %v", name, i, j, got.Dis(i, j), want.Dis(i, j))
			}
		}
	}
	if got.MaxRel() != want.MaxRel() {
		t.Fatalf("%s: MaxRel = %v, want %v", name, got.MaxRel(), want.MaxRel())
	}
	if got.MaxDis() != want.MaxDis() {
		t.Fatalf("%s: MaxDis = %v, want %v", name, got.MaxDis(), want.MaxDis())
	}
	gs, ws := got.RowSums(), want.RowSums()
	for i := range ws {
		if gs[i] != ws[i] {
			t.Fatalf("%s: RowSums[%d] = %v, want %v", name, i, gs[i], ws[i])
		}
	}
}

// countingDistance wraps EuclideanDistance counting evaluations, to assert
// the rebase recomputes only delta pairs.
type countingDistance struct {
	inner Distance
	calls int
}

func (c *countingDistance) Dis(s, t relation.Tuple) float64 {
	c.calls++
	return c.inner.Dis(s, t)
}

func TestRebaseExtendMatchesColdBuild(t *testing.T) {
	for name, opts := range map[string]PlaneOptions{
		"materialized": {},
		"memoized":     {MaxMatrixBytes: 8},
	} {
		rng := rand.New(rand.NewSource(3))
		base := make([]relation.Tuple, 0, 40)
		for i := 0; i < 40; i++ {
			base = append(base, relation.Ints(rng.Int63n(1000), rng.Int63n(1000)))
		}
		base = sortedTuples(base)
		o := New(MaxSum, AttrRelevance(0, 1e-3), EuclideanDistance(), 0.5)
		p := NewPlane(o, base, opts)
		p.Materialize()

		added := sortedTuples([]relation.Tuple{
			relation.Ints(-5, 3), relation.Ints(500, 500), relation.Ints(2000, 1),
		})
		merged := sortedTuples(append(append([]relation.Tuple(nil), base...), added...))

		got, err := p.Extend(context.Background(), added)
		if err != nil {
			t.Fatal(err)
		}
		cold := NewPlane(o, merged, opts)
		cold.Materialize()
		if m := got.Materialized(); m != cold.Materialized() {
			t.Fatalf("%s: Materialized = %v, want %v", name, m, cold.Materialized())
		}
		checkPlaneEqual(t, name+"/extend", got, cold)

		// The old plane is untouched and still serves its own answer set.
		if p.Len() != len(base) {
			t.Fatalf("%s: Rebase mutated the receiver (Len %d)", name, p.Len())
		}
	}
}

func TestRebaseRetireMatchesColdBuild(t *testing.T) {
	for name, opts := range map[string]PlaneOptions{
		"materialized": {},
		"memoized":     {MaxMatrixBytes: 8},
	} {
		base := planeAnswers(30)
		base = sortedTuples(base)
		o := New(MaxMin, AttrRelevance(0, 1.0/30), EuclideanDistance(), 0.5)
		p := NewPlane(o, base, opts)
		p.Materialize()
		// Warm the memo regime so carried-over entries are exercised.
		for i := 0; i < 10; i++ {
			p.Dis(i, i+5)
		}

		retired := []int{0, 7, 19, 19} // duplicate tolerated
		survivors := make([]relation.Tuple, 0, len(base))
		dead := map[int]bool{0: true, 7: true, 19: true}
		for i, tu := range base {
			if !dead[i] {
				survivors = append(survivors, tu)
			}
		}
		got, err := p.Retire(context.Background(), retired)
		if err != nil {
			t.Fatal(err)
		}
		cold := NewPlane(o, survivors, opts)
		cold.Materialize()
		checkPlaneEqual(t, name+"/retire", got, cold)
	}
}

func TestRebaseMixedRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		opts := PlaneOptions{}
		if trial%2 == 1 {
			opts.MaxMatrixBytes = 8
		}
		n := 20 + rng.Intn(30)
		base := make([]relation.Tuple, 0, n)
		seen := map[string]bool{}
		for len(base) < n {
			tu := relation.Ints(rng.Int63n(500), rng.Int63n(500))
			if !seen[tu.Key()] {
				seen[tu.Key()] = true
				base = append(base, tu)
			}
		}
		base = sortedTuples(base)
		o := New(Mono, AttrRelevance(0, 1e-2), EuclideanDistance(), 0.7)
		p := NewPlane(o, base, opts)
		p.Materialize()

		var retired []int
		for i := range base {
			if rng.Intn(4) == 0 {
				retired = append(retired, i)
			}
		}
		var added []relation.Tuple
		for i := 0; i < rng.Intn(5)+1; i++ {
			tu := relation.Ints(rng.Int63n(500)+500, rng.Int63n(500))
			if !seen[tu.Key()] {
				seen[tu.Key()] = true
				added = append(added, tu)
			}
		}
		added = sortedTuples(added)

		dead := map[int]bool{}
		for _, id := range retired {
			dead[id] = true
		}
		want := make([]relation.Tuple, 0, len(base)+len(added))
		for i, tu := range base {
			if !dead[i] {
				want = append(want, tu)
			}
		}
		want = sortedTuples(append(want, added...))

		got, err := p.Rebase(context.Background(), added, retired)
		if err != nil {
			t.Fatal(err)
		}
		cold := NewPlane(o, want, opts)
		cold.Materialize()
		checkPlaneEqual(t, "mixed", got, cold)
	}
}

func TestRebaseRecomputesOnlyDeltaPairs(t *testing.T) {
	n := 50
	base := sortedTuples(planeAnswers(n))
	cd := &countingDistance{inner: EuclideanDistance()}
	o := New(MaxSum, ConstRelevance(1), cd, 0.5)
	p := NewPlane(o, base, PlaneOptions{})
	p.Materialize()
	built := cd.calls
	if built != n*(n-1)/2 {
		t.Fatalf("cold build evaluated %d pairs, want %d", built, n*(n-1)/2)
	}
	added := []relation.Tuple{relation.Ints(1000, 1000)}
	q, err := p.Extend(context.Background(), added)
	if err != nil {
		t.Fatal(err)
	}
	delta := cd.calls - built
	if delta != n {
		t.Errorf("extend by one tuple evaluated %d pairs, want exactly %d", delta, n)
	}
	if !q.Materialized() {
		t.Error("extended plane must stay materialized")
	}
}

func TestRebaseGuardOverflowFallsToMemo(t *testing.T) {
	// A plane just under the matrix guard loses materialization when the
	// extension pushes the triangle past it — exactly as a cold build at
	// the new size would.
	base := sortedTuples(planeAnswers(20))
	o := New(MaxSum, ConstRelevance(1), EuclideanDistance(), 0.5)
	pairsAfter := int64(21 * 20 / 2 * 8)
	p := NewPlane(o, base, PlaneOptions{MaxMatrixBytes: pairsAfter - 8})
	if !p.Materialize() {
		t.Fatal("base plane should materialize under the guard")
	}
	q, err := p.Extend(context.Background(), []relation.Tuple{relation.Ints(999, 999)})
	if err != nil {
		t.Fatal(err)
	}
	if q.Materialized() {
		t.Error("extension past the guard must fall back to the memoized regime")
	}
	if got, want := q.Dis(0, q.Len()-1), o.Dis.Dis(q.Tuple(0), q.Tuple(q.Len()-1)); got != want {
		t.Errorf("memoized Dis = %v, want %v", got, want)
	}
}

func TestRebaseOnStreamingPlanePanics(t *testing.T) {
	o := New(MaxSum, ConstRelevance(1), ZeroDistance(), 0.5)
	p := NewPlane(o, nil, PlaneOptions{Streaming: true})
	defer func() {
		if recover() == nil {
			t.Error("Rebase on a streaming plane must panic")
		}
	}()
	p.Rebase(context.Background(), nil, nil)
}
