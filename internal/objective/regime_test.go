package objective

import (
	"context"
	"testing"
)

func TestRegimeStringParseRoundTrip(t *testing.T) {
	for _, r := range []Regime{RegimeAuto, RegimeMaterialized, RegimeTiled, RegimeIndexed, RegimeMemoized} {
		got, err := ParseRegime(r.String())
		if err != nil || got != r {
			t.Fatalf("round-trip %v: got %v, %v", r, got, err)
		}
	}
	if r, err := ParseRegime(""); err != nil || r != RegimeAuto {
		t.Fatalf("empty string: got %v, %v, want auto", r, err)
	}
	if _, err := ParseRegime("bogus"); err == nil {
		t.Fatal("ParseRegime accepted an unknown name")
	}
	if s := Regime(99).String(); s != "Regime(99)" {
		t.Fatalf("out-of-range String() = %q", s)
	}
}

// TestResolveRegime pins the planner's selection table: the guard bands of
// the auto walk and the degradation rules for explicit requests.
func TestResolveRegime(t *testing.T) {
	const guard = DefaultMaxMatrixBytes // 64 MiB
	cases := []struct {
		name      string
		want      Regime
		n         int
		maxBytes  int64
		streaming bool
		expect    Regime
	}{
		{"streaming always memoizes", RegimeMaterialized, 100, guard, true, RegimeMemoized},
		{"auto small n fits matrix", RegimeAuto, 1000, guard, false, RegimeMaterialized},
		{"auto tiled band", RegimeAuto, 5000, guard, false, RegimeTiled},
		{"auto indexed above tiles", RegimeAuto, 20000, guard, false, RegimeIndexed},
		{"auto small n tight guard memoizes", RegimeAuto, 100, 8, false, RegimeMemoized},
		{"explicit matrix fits", RegimeMaterialized, 1000, guard, false, RegimeMaterialized},
		{"explicit matrix over guard degrades", RegimeMaterialized, 5000, guard, false, RegimeMemoized},
		{"explicit tiles fit", RegimeTiled, 1000, guard, false, RegimeTiled},
		{"explicit tiles over guard degrade", RegimeTiled, 20000, guard, false, RegimeMemoized},
		{"explicit index honored below IndexedMinN", RegimeIndexed, 100, guard, false, RegimeIndexed},
		{"explicit memo honored", RegimeMemoized, 1000, guard, false, RegimeMemoized},
	}
	for _, c := range cases {
		if got := resolveRegime(c.want, c.n, c.maxBytes, c.streaming); got != c.expect {
			t.Fatalf("%s: resolveRegime(%v, n=%d, guard=%d, streaming=%v) = %v, want %v",
				c.name, c.want, c.n, c.maxBytes, c.streaming, got, c.expect)
		}
	}
}

func TestTiledBytesAndIndex(t *testing.T) {
	if b := tiledBytes(0); b != 0 {
		t.Fatalf("tiledBytes(0) = %d", b)
	}
	if b := tiledBytes(1); b != 0 {
		t.Fatalf("tiledBytes(1) = %d", b)
	}
	// One 128-wide block row: a single diagonal block.
	if b, want := tiledBytes(128), int64(tileCells*4); b != want {
		t.Fatalf("tiledBytes(128) = %d, want %d", b, want)
	}
	// 129 points span two block rows: 3 blocks of the lower triangle.
	if b, want := tiledBytes(129), int64(3*tileCells*4); b != want {
		t.Fatalf("tiledBytes(129) = %d, want %d", b, want)
	}
	// Every canonical pair must land on a distinct cell, and tileIndex must
	// stay inside the tiledBytes allocation.
	const n = 300
	cells := int(tiledBytes(n) / 4)
	seen := make(map[int64]bool)
	for j := 1; j < n; j++ {
		for i := 0; i < j; i++ {
			c := tileIndex(i, j)
			if c < 0 || c >= int64(cells) {
				t.Fatalf("tileIndex(%d,%d) = %d out of [0,%d)", i, j, c, cells)
			}
			if seen[c] {
				t.Fatalf("tileIndex(%d,%d) = %d collides", i, j, c)
			}
			seen[c] = true
		}
	}
}

// TestIndexedMaxDisBound pins the indexed regime's O(n) max-distance bound:
// admissible (never under the true maximum) and within the triangle
// inequality's factor 2.
func TestIndexedMaxDisBound(t *testing.T) {
	const n = 500
	answers := planeAnswers(n)
	o := New(MaxSum, nil, EuclideanDistance(), 0.5)
	p := NewPlane(o, answers, PlaneOptions{Regime: RegimeIndexed})
	if p.Regime() != RegimeIndexed {
		t.Fatalf("regime = %v", p.Regime())
	}
	bound, err := p.MaxDisBoundContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	trueMax := 0.0
	for j := 1; j < n; j++ {
		for i := 0; i < j; i++ {
			if d := o.Dis.Dis(answers[i], answers[j]); d > trueMax {
				trueMax = d
			}
		}
	}
	if bound < trueMax {
		t.Fatalf("indexed max-dis bound %v < true max %v (not admissible)", bound, trueMax)
	}
	if trueMax > 0 && bound > 2*trueMax {
		t.Fatalf("indexed max-dis bound %v looser than 2x the true max %v", bound, trueMax)
	}
	// A filled store knows the exact maximum; the bound must return it.
	q := NewPlane(o, answers, PlaneOptions{Regime: RegimeMaterialized})
	if _, err := q.MaterializeContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	exact, err := q.MaxDisBoundContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if exact != trueMax {
		t.Fatalf("materialized max-dis bound %v != true max %v", exact, trueMax)
	}
}

// TestTiledPlaneServesFloat32 pins the tile store's contract directly at
// the objective layer: after EnsureReady, Dis returns float64(float32(d))
// for every pair, and the footprint includes the tile bytes.
func TestTiledPlaneServesFloat32(t *testing.T) {
	const n = 200
	answers := planeAnswers(n)
	o := planeObjective(n)
	p := NewPlane(o, answers, PlaneOptions{Regime: RegimeTiled})
	if err := p.EnsureReadyContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !p.Tiled() {
		t.Fatal("tiles not ready after EnsureReadyContext")
	}
	for j := 1; j < n; j++ {
		for i := 0; i < j; i++ {
			want := float64(float32(o.Dis.Dis(answers[i], answers[j])))
			if got := p.Dis(i, j); got != want {
				t.Fatalf("Dis(%d,%d) = %v, want float32-rounded %v", i, j, got, want)
			}
		}
	}
	if foot := p.MemoryFootprint(); foot < tiledBytes(n) {
		t.Fatalf("footprint %d < tile bytes %d", foot, tiledBytes(n))
	}
}
