// The indexed plane regime: a vantage-point tree plus a small pivot table
// over the interned answers, O(n) memory in place of the O(n²) pair stores.
// The index exploits only the triangle inequality of δdis — the same metric
// assumption under which the paper's greedy procedures carry their
// approximation guarantees — and is built once per plane, immutable, and
// shared by concurrent solves; all per-solve mutable state lives in the
// MaxMinState/MaxSumState values the solvers allocate.
//
// Two query modes match the two greedy hot loops:
//
//   - MaxMinState.Take(c) folds a newly chosen center c into every
//     unchosen candidate's min-distance-to-selection, pruning subtrees whose
//     triangle-inequality lower bound on δdis(c, ·) already exceeds the
//     subtree's best possible improvement. Skipped evaluations are provably
//     no-ops, so the maintained minDis array is bit-identical to the flat
//     O(n·k) recomputation and greedy max-min selects the exact same set in
//     the exact same tie-break order.
//
//   - MaxSumState bounds each candidate's accumulated gain from above using
//     per-pivot cumulative center distances (a LAESA-style bound): a round
//     scan skips candidates whose upper bound cannot beat the incumbent and
//     refines the rest through the same incremental accumulation as the
//     flat path, so refined gains are bit-identical and the skip test is
//     conservative.
package objective

import (
	"context"
	"math"
	"runtime"
	"sync"

	"repro/internal/ctxpoll"
)

const (
	// vpLeafSize caps leaf segments: below it, a linear scan beats the
	// bookkeeping of another split.
	vpLeafSize = 16
	// vpSpawnSize is the minimum segment size worth a goroutine during the
	// parallel build.
	vpSpawnSize = 2048
	// numPivots is the pivot-table width for the max-sum bounds: enough
	// rows that min-over-pivots tracks the true tail sums closely, small
	// enough that the table stays O(n).
	numPivots = 8
	// pruneSlack is the relative margin shaved off every triangle-
	// inequality lower bound before it is compared against a pruning
	// threshold (and added to every upper bound before a skip). Computed
	// distances carry ulp-level rounding, so a mathematically valid bound
	// can exceed the stored value by a few ulps; 1e-9 is ~10⁶ ulps of
	// headroom while remaining far below any meaningful distance gap.
	pruneSlack = 1e-9
)

// vpNode is one vantage-point tree node over the permutation segment
// perm[lo:hi]. The vantage is perm[lo]; inner/outer are child node indices
// (-1 for leaves, whose whole segment is scanned directly). radius is the
// median distance-to-vantage of the rest of the segment (inner: d ≤ radius;
// outer: d > radius) and maxDist its maximum, both used for lower bounds on
// the distance from a query to anything under the node.
type vpNode struct {
	vantage      int32
	inner, outer int32
	lo, hi       int32
	radius       float64
	maxDist      float64
}

// MetricIndex is the immutable index over one plane's answers.
type MetricIndex struct {
	p     *Plane
	perm  []int32  // answer IDs grouped into tree segments
	nodes []vpNode // nodes[0] is the root
	// pivots/pd back the max-sum bounds: pd[q][i] = δdis(pivots[q], i).
	// maxPivot0 is max over pd[0], giving the O(n) admissible bound
	// 2·maxPivot0 ≥ max pairwise δdis used by the exact search.
	pivots    []int32
	pd        [][]float64
	maxPivot0 float64
}

// dis evaluates δdis(a, b) in the plane's canonical pair order, bypassing
// the memo cache: index traversals touch too many transient pairs to be
// worth storing, and the raw evaluation returns the identical value Dis
// would (the memo stores this same pure function's results).
func (ix *MetricIndex) dis(a, b int) float64 {
	if a == b {
		return 0
	}
	if a > b {
		a, b = b, a
	}
	return ix.p.rawDis(a, b)
}

// Bytes reports the index's memory footprint: the permutation, the node
// array and the pivot table — O(n) with a small constant (~70 bytes per
// answer at the default pivot width).
func (ix *MetricIndex) Bytes() int64 {
	b := int64(len(ix.perm)) * 4
	b += int64(len(ix.nodes)) * int64(48) // sizeof(vpNode) with padding
	b += int64(len(ix.pivots)) * 4
	for _, row := range ix.pd {
		b += int64(len(row)) * 8
	}
	return b
}

// MaxDisUpperBound is an admissible (never under) estimate of the maximum
// pairwise δdis: by the triangle inequality every δdis(i, j) is at most
// δdis(p0, i) + δdis(p0, j) ≤ 2·max over the first pivot's row.
func (ix *MetricIndex) MaxDisUpperBound() float64 { return 2 * ix.maxPivot0 }

// IndexContext returns the plane's metric index, building it on first use
// (idempotent, concurrency-safe). Planes not in RegimeIndexed return nil —
// the index's pruning is only sound for metric δdis, and only the indexed
// regime declares that assumption.
func (p *Plane) IndexContext(ctx context.Context) (*MetricIndex, error) {
	if p.regime != RegimeIndexed {
		return nil, nil
	}
	if ix := p.idx.Load(); ix != nil {
		return ix, nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if ix := p.idx.Load(); ix != nil {
		return ix, nil
	}
	ix, err := buildIndex(ctx, p)
	if err != nil {
		return nil, err
	}
	p.idx.Store(ix)
	return ix, nil
}

// buildIndex constructs the tree and the pivot table. Both are deterministic
// functions of the answer set — the quickselect splits tie-break on answer
// ID and subtree node blocks are concatenated in DFS order regardless of
// which goroutine built them — so two builds over equal planes are
// byte-identical, which the Rebase-equivalence guarantee relies on.
func buildIndex(ctx context.Context, p *Plane) (*MetricIndex, error) {
	n := len(p.answers)
	ix := &MetricIndex{p: p}
	poll := ctxpoll.New(ctx)

	if n > 0 {
		perm := make([]int32, n)
		for i := range perm {
			perm[i] = int32(i)
		}
		b := &vpBuilder{ix: ix, ctx: ctx}
		nodes, err := b.build(perm, 0, runtime.GOMAXPROCS(0))
		if err != nil {
			return nil, err
		}
		ix.perm = perm
		ix.nodes = nodes
	}

	// Pivot table: pivot 0 is answer 0; each further pivot is the answer
	// farthest (max-min, ties to the lowest ID) from those already chosen —
	// the same spread heuristic as the greedy max-min seed, giving rows
	// that straddle the set's diameter.
	m := numPivots
	if m > n {
		m = n
	}
	minToPivots := make([]float64, n)
	for i := range minToPivots {
		minToPivots[i] = math.Inf(1)
	}
	fill := func(row []float64, pivot int) error {
		workers := runtime.GOMAXPROCS(0)
		if workers > n {
			workers = n
		}
		if workers < 1 {
			workers = 1
		}
		chunk := (n + workers - 1) / workers
		errs := make([]error, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > n {
				hi = n
			}
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				wpoll := ctxpoll.New(ctx)
				for i := lo; i < hi; i++ {
					if wpoll.Stop() {
						errs[w] = wpoll.Err()
						return
					}
					row[i] = ix.dis(pivot, i)
				}
			}(w, lo, hi)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}
	for q := 0; q < m; q++ {
		pivot := 0
		if q > 0 {
			best := math.Inf(-1)
			for i := 0; i < n; i++ {
				if minToPivots[i] > best {
					best, pivot = minToPivots[i], i
				}
			}
		}
		if poll.Stop() {
			return nil, poll.Err()
		}
		row := make([]float64, n)
		if err := fill(row, pivot); err != nil {
			return nil, err
		}
		ix.pivots = append(ix.pivots, int32(pivot))
		ix.pd = append(ix.pd, row)
		for i := 0; i < n; i++ {
			if row[i] < minToPivots[i] {
				minToPivots[i] = row[i]
			}
		}
	}
	if len(ix.pd) > 0 {
		for _, d := range ix.pd[0] {
			if d > ix.maxPivot0 {
				ix.maxPivot0 = d
			}
		}
	}
	return ix, nil
}

// vpBuilder carries the shared state of one tree construction.
type vpBuilder struct {
	ix  *MetricIndex
	ctx context.Context
}

// build constructs the subtree over seg (a slice of the shared perm array at
// absolute offset base) and returns its nodes with the root at index 0 and
// child pointers relative to the returned slice; the caller offsets them
// into the final array. Large child segments build concurrently (they own
// disjoint perm slices), and the merge order is fixed, so node numbering is
// deterministic.
func (b *vpBuilder) build(seg []int32, base int32, budget int) ([]vpNode, error) {
	poll := ctxpoll.New(b.ctx)
	n := len(seg)
	nd := vpNode{vantage: seg[0], inner: -1, outer: -1, lo: base, hi: base + int32(n)}
	if n <= vpLeafSize {
		if poll.Stop() {
			return nil, poll.Err()
		}
		return []vpNode{nd}, nil
	}
	v := int(seg[0])
	rest := seg[1:]
	dists := make([]float64, len(rest))
	maxDist := 0.0
	for i, id := range rest {
		if poll.Stop() {
			return nil, poll.Err()
		}
		d := b.ix.dis(v, int(id))
		dists[i] = d
		if d > maxDist {
			maxDist = d
		}
	}
	// Median split by strict (distance, ID) order: quickselect the k-th
	// smallest so positions [0, k] go inner. The ID tie-break makes the
	// partition — and with it the whole tree — a pure function of the
	// answer set, and guarantees both children are non-empty even when all
	// distances are equal.
	k := len(rest) / 2
	radius := selectKth(dists, rest, k)
	inner := k + 1 // dists[0..k] ≤ radius after selection
	nd.radius, nd.maxDist = radius, maxDist

	innerSeg, outerSeg := rest[:inner], rest[inner:]
	var innerNodes, outerNodes []vpNode
	var innerErr, outerErr error
	if budget > 1 && len(innerSeg) >= vpSpawnSize && len(outerSeg) >= vpSpawnSize {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			innerNodes, innerErr = b.build(innerSeg, base+1, budget/2)
		}()
		outerNodes, outerErr = b.build(outerSeg, base+1+int32(inner), budget-budget/2)
		wg.Wait()
	} else {
		innerNodes, innerErr = b.build(innerSeg, base+1, budget)
		if innerErr == nil {
			outerNodes, outerErr = b.build(outerSeg, base+1+int32(inner), budget)
		}
	}
	if innerErr != nil {
		return nil, innerErr
	}
	if outerErr != nil {
		return nil, outerErr
	}
	nodes := make([]vpNode, 0, 1+len(innerNodes)+len(outerNodes))
	nd.inner = 1
	nd.outer = int32(1 + len(innerNodes))
	nodes = append(nodes, nd)
	off := int32(1)
	for _, c := range innerNodes {
		if c.inner >= 0 {
			c.inner += off
			c.outer += off
		}
		nodes = append(nodes, c)
	}
	off = int32(1 + len(innerNodes))
	for _, c := range outerNodes {
		if c.inner >= 0 {
			c.inner += off
			c.outer += off
		}
		nodes = append(nodes, c)
	}
	return nodes, nil
}

// selectKth partitions dists (and ids alongside) so that positions [0, k]
// hold the k+1 smallest elements under the strict (dist, id) order and
// returns dists[k]. Deterministic: the pivot is the median-of-three by the
// same total order, so equal distances cannot produce scheduling-dependent
// layouts.
func selectKth(dists []float64, ids []int32, k int) float64 {
	lo, hi := 0, len(dists)-1
	less := func(a, b int) bool {
		if dists[a] != dists[b] {
			return dists[a] < dists[b]
		}
		return ids[a] < ids[b]
	}
	swap := func(a, b int) {
		dists[a], dists[b] = dists[b], dists[a]
		ids[a], ids[b] = ids[b], ids[a]
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		if less(mid, lo) {
			swap(mid, lo)
		}
		if less(hi, lo) {
			swap(hi, lo)
		}
		if less(hi, mid) {
			swap(hi, mid)
		}
		swap(mid, hi-1)
		if hi-lo < 3 {
			if less(hi, lo) {
				swap(lo, hi)
			}
			break
		}
		pivot := hi - 1
		i := lo
		for j := lo; j < pivot; j++ {
			if less(j, pivot) {
				swap(i, j)
				i++
			}
		}
		swap(i, pivot)
		switch {
		case i == k:
			return dists[k]
		case i < k:
			lo = i + 1
		default:
			hi = i - 1
		}
	}
	return dists[k]
}

// MaxMinState is one greedy max-min solve's view of the index: the running
// min-distance-to-selection per candidate and the per-node aggregate that
// drives pruning. Not safe for concurrent use; allocate one per solve.
type MaxMinState struct {
	ix *MetricIndex
	// MinDis[i] = min over taken centers of δdis(center, i); +Inf before
	// the first Take. Maintained bit-identically to the flat recomputation.
	MinDis []float64
	used   []bool
	// agg[node] upper-bounds max over unused answers under the node of
	// MinDis — the most any of them could gain from a new center. Pruned
	// subtrees keep a stale (higher) value, which stays a valid bound.
	agg []float64
	// Evals counts δdis evaluations, the index's unit of work.
	Evals int64
}

// NewMaxMinState allocates the per-solve max-min state.
func (ix *MetricIndex) NewMaxMinState() *MaxMinState {
	n := len(ix.perm)
	st := &MaxMinState{
		ix:     ix,
		MinDis: make([]float64, n),
		used:   make([]bool, n),
		agg:    make([]float64, len(ix.nodes)),
	}
	for i := range st.MinDis {
		st.MinDis[i] = math.Inf(1)
	}
	for i := range st.agg {
		st.agg[i] = math.Inf(1)
	}
	return st
}

// Take marks c as chosen and folds δdis(c, ·) into MinDis for every unchosen
// answer, descending the tree and skipping subtrees whose lower bound on
// δdis(c, ·) (minus the float slack) already meets or exceeds the subtree's
// aggregate MinDis bound — every skipped update would have been a no-op, so
// the resulting MinDis array equals the unpruned scan's bit for bit.
func (st *MaxMinState) Take(c int) {
	st.used[c] = true
	if len(st.ix.nodes) > 0 {
		st.update(0, c)
	}
}

func (st *MaxMinState) update(node int32, c int) float64 {
	ix := st.ix
	nd := &ix.nodes[node]
	v := int(nd.vantage)
	a := math.Inf(-1)
	if nd.inner < 0 {
		// Leaf: scan the whole segment directly.
		for _, id32 := range ix.perm[nd.lo:nd.hi] {
			id := int(id32)
			if st.used[id] {
				continue
			}
			d := ix.dis(c, id)
			st.Evals++
			if d < st.MinDis[id] {
				st.MinDis[id] = d
			}
			if st.MinDis[id] > a {
				a = st.MinDis[id]
			}
		}
		st.agg[node] = a
		return a
	}
	dcv := ix.dis(c, v)
	st.Evals++
	if !st.used[v] {
		if dcv < st.MinDis[v] {
			st.MinDis[v] = dcv
		}
		a = st.MinDis[v]
	}
	// Lower bounds on δdis(c, x) for x under each child, by the triangle
	// inequality through the vantage: inner has d(v, x) ≤ radius, outer has
	// radius < d(v, x) ≤ maxDist.
	innerLB := dcv - nd.radius
	outerLB := nd.radius - dcv
	if lb := dcv - nd.maxDist; lb > outerLB {
		outerLB = lb
	}
	ia := st.agg[nd.inner]
	if shave(innerLB) < ia {
		ia = st.update(nd.inner, c)
	}
	oa := st.agg[nd.outer]
	if shave(outerLB) < oa {
		oa = st.update(nd.outer, c)
	}
	if ia > a {
		a = ia
	}
	if oa > a {
		a = oa
	}
	st.agg[node] = a
	return a
}

// shave discounts a lower bound by the float slack so ulp-level rounding in
// computed distances can never turn a should-visit into a skip.
func shave(lb float64) float64 {
	if lb <= 0 {
		return lb
	}
	return lb * (1 - pruneSlack)
}

// MaxSumState is one greedy max-sum solve's bound state: exact accumulated
// gains per candidate (through the round each was last refined at) plus
// per-pivot cumulative center distances backing the upper bounds. Not safe
// for concurrent use; allocate one per solve.
type MaxSumState struct {
	ix     *MetricIndex
	lambda float64
	// exact[i] is the candidate's gain accumulated through round round[i],
	// built by the same incremental updates as the flat greedy loop.
	exact []float64
	round []int32
	// centers holds the chosen IDs in pick order; cum[q][r] = Σ over the
	// first r centers of pd[q][center], so a candidate skipped for several
	// rounds can bound its missing tail in O(pivots) regardless of how far
	// behind it is.
	centers []int32
	cum     [][]float64
	// Evals counts δdis evaluations spent in refinement.
	Evals int64
}

// NewMaxSumState allocates per-solve max-sum bound state. base[i] must be
// the flat greedy loop's initial gain for candidate i (the relevance term);
// the state takes ownership of the slice. lambda is the objective's λ.
func (ix *MetricIndex) NewMaxSumState(base []float64, lambda float64) *MaxSumState {
	return &MaxSumState{
		ix:     ix,
		lambda: lambda,
		exact:  base,
		round:  make([]int32, len(base)),
		cum:    make([][]float64, len(ix.pd)),
	}
}

// UpperBound returns a value ≥ the gain Refine(i) would report, inflated by
// the float slack. The tail a lagging candidate is missing — λ·2·Σ δdis over
// centers picked since its last refinement — is bounded per pivot q by
// Σ (pd[q][center] + pd[q][i]) via the triangle inequality, and the minimum
// over pivots is taken.
func (st *MaxSumState) UpperBound(i int) float64 {
	cur := int32(len(st.centers))
	er := st.round[i]
	if er == cur {
		return st.exact[i]
	}
	tail := math.Inf(1)
	for q, row := range st.ix.pd {
		t := (st.cum[q][cur] - st.cum[q][er]) + float64(cur-er)*row[i]
		if t < tail {
			tail = t
		}
	}
	ub := st.exact[i] + st.lambda*2*tail
	return ub + pruneSlack*math.Abs(ub) + 1e-300
}

// Refine brings candidate i's exact gain up to the current round and returns
// it, replaying the missed centers in pick order with the identical
// accumulation expression as the flat loop — so a refined gain is bit-equal
// to what the unindexed greedy would hold for i at this round.
func (st *MaxSumState) Refine(i int) float64 {
	g := st.exact[i]
	for r := st.round[i]; r < int32(len(st.centers)); r++ {
		g += st.lambda * 2 * st.ix.dis(int(st.centers[r]), i)
		st.Evals++
	}
	st.exact[i] = g
	st.round[i] = int32(len(st.centers))
	return g
}

// Push records a newly chosen center and extends the per-pivot cumulative
// sums that future UpperBound calls difference against.
func (st *MaxSumState) Push(center int) {
	r := len(st.centers)
	st.centers = append(st.centers, int32(center))
	for q, row := range st.ix.pd {
		if r == 0 {
			st.cum[q] = append(st.cum[q], 0)
		}
		st.cum[q] = append(st.cum[q], st.cum[q][r]+row[center])
	}
}
