// The tiled plane regime: the lower triangle of the δdis matrix stored as
// float32 in 128×128 blocks. Half the bytes per pair of the materialized
// float64 triangle (so the same memory guard reaches ~√2·n further), with
// block-local addressing that keeps a greedy round's column walk inside a
// handful of cache-resident tiles.
package objective

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/ctxpoll"
)

const (
	// tileShift fixes the tile side at 128: a 128×128 float32 block is
	// 64 KiB — two blocks per typical L2 slice, so a column sweep streams
	// block-by-block instead of striding the whole triangle.
	tileShift = 7
	tileSide  = 1 << tileShift
	tileMask  = tileSide - 1
	tileCells = tileSide * tileSide
)

// tiledBytes is the tile store's footprint for n answers: the blocked lower
// triangle rounds n up to whole tiles and keeps full diagonal blocks (half of
// each is dead space — the price of uniform addressing, bounded by a factor
// ~(1+1/b) for b = ⌈n/128⌉ block rows).
func tiledBytes(n int) int64 {
	if n < 2 {
		return 0
	}
	b := int64(n+tileMask) >> tileShift
	return b * (b + 1) / 2 * tileCells * 4
}

// tileIndex addresses pair (i, j), i < j, inside the blocked triangle:
// block (I, J) with I ≤ J lives at slot J(J+1)/2 + I, and within a block the
// cell is column-major in j so a fixed-j row scan over i is contiguous.
func tileIndex(i, j int) int64 {
	bi := int64(i) >> tileShift
	bj := int64(j) >> tileShift
	block := bj*(bj+1)/2 + bi
	return block*tileCells + int64(j&tileMask)<<tileShift + int64(i&tileMask)
}

// fillTilesParallel computes every pair once in canonical (low, high) order
// and stores the float32 rounding, mirroring fillParallel's row-striped
// worker pool; the returned max is over the rounded values (what Dis will
// serve), so MaxDis stays consistent with lookups.
func (p *Plane) fillTilesParallel(ctx context.Context, tiles []float32) (float64, error) {
	n := len(p.answers)
	if n < 2 {
		return 0, nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n-1 {
		workers = n - 1
	}
	if workers < 1 {
		workers = 1
	}

	const rowChunk = 8
	var next atomic.Int64
	next.Store(1) // row j ranges over [1, n)
	maxes := make([]float64, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			poll := ctxpoll.New(ctx)
			localMax := 0.0
			for {
				lo := int(next.Add(rowChunk)) - rowChunk
				if lo >= n {
					break
				}
				hi := lo + rowChunk
				if hi > n {
					hi = n
				}
				for j := lo; j < hi; j++ {
					if poll.Stop() {
						errs[w] = poll.Err()
						return
					}
					for i := 0; i < j; i++ {
						d := float32(p.rawDis(i, j))
						tiles[tileIndex(i, j)] = d
						if fd := float64(d); fd > localMax {
							localMax = fd
						}
					}
				}
			}
			maxes[w] = localMax
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	max := 0.0
	for _, m := range maxes {
		if m > max {
			max = m
		}
	}
	return max, nil
}
